package transer

import (
	"testing"
)

func tinyTask() TransferTask {
	tasks := PaperTasks(0.05)
	return tasks[0] // DBLP-ACM -> DBLP-Scholar
}

func TestNewDomain(t *testing.T) {
	task := tinyTask()
	d, err := NewDomain(task.Source.A, task.Source.B)
	if err != nil {
		t.Fatalf("NewDomain: %v", err)
	}
	if d.NumPairs() == 0 {
		t.Fatal("no candidate pairs from blocking")
	}
	if !d.Labelled() {
		t.Fatal("generated data should be labelled")
	}
	if d.NumFeatures() != 4 {
		t.Errorf("bibliographic feature space width %d, want 4", d.NumFeatures())
	}
	if mf := d.MatchFraction(); mf <= 0 || mf >= 1 {
		t.Errorf("match fraction %v implausible", mf)
	}
	if len(d.X) != d.NumPairs() || len(d.Y) != d.NumPairs() {
		t.Errorf("matrix/labels misaligned with pairs")
	}
}

func TestNewDomainValidation(t *testing.T) {
	task := tinyTask()
	if _, err := NewDomain(nil, task.Source.B); err == nil {
		t.Errorf("nil database accepted")
	}
	other := PaperTasks(0.05)[2] // music schema
	if _, err := NewDomain(task.Source.A, other.Source.B); err == nil {
		t.Errorf("schema mismatch accepted")
	}
}

func TestNewDomainOptions(t *testing.T) {
	task := tinyTask()
	d, err := NewDomain(task.Source.A, task.Source.B,
		WithName("custom"), WithoutLabels(),
		WithBlocking(BlockingConfig{NumHashes: 32, Bands: 8, Seed: 5}))
	if err != nil {
		t.Fatalf("NewDomain with options: %v", err)
	}
	if d.Name != "custom" {
		t.Errorf("name = %q", d.Name)
	}
	if d.Labelled() {
		t.Errorf("WithoutLabels ignored")
	}
}

func TestTransferEndToEnd(t *testing.T) {
	src, tgt, err := BuildDomains(tinyTask())
	if err != nil {
		t.Fatalf("BuildDomains: %v", err)
	}
	res, err := Transfer(src, tgt)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if len(res.Labels) != tgt.NumPairs() {
		t.Fatalf("output size %d, want %d", len(res.Labels), tgt.NumPairs())
	}
	m := res.Evaluate(tgt)
	if m.FStar <= 0 {
		t.Errorf("F* = %v — transfer learned nothing", m.FStar)
	}
	if res.Stats.Selected == 0 {
		t.Errorf("no instances selected")
	}
	matches := res.Matches(tgt)
	ones := 0
	for _, l := range res.Labels {
		ones += l
	}
	if len(matches) != ones {
		t.Errorf("Matches() size %d != predicted match count %d", len(matches), ones)
	}
}

func TestTransferRequiresLabelledSource(t *testing.T) {
	task := tinyTask()
	src, err := NewDomain(task.Source.A, task.Source.B, WithoutLabels())
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := NewDomain(task.Target.A, task.Target.B)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Transfer(src, tgt); err == nil {
		t.Errorf("unlabelled source accepted")
	}
	if _, err := Transfer(nil, tgt); err == nil {
		t.Errorf("nil source accepted")
	}
}

func TestTransferWithOptions(t *testing.T) {
	src, tgt, err := BuildDomains(tinyTask())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.K = 5
	res, err := Transfer(src, tgt, WithConfig(cfg), WithClassifier(StandardClassifiers(1)[3].New))
	if err != nil {
		t.Fatalf("Transfer with options: %v", err)
	}
	if len(res.Labels) != tgt.NumPairs() {
		t.Errorf("wrong output size")
	}
}

func TestEvaluatePanicsOnUnlabelledTarget(t *testing.T) {
	task := tinyTask()
	src, _ := NewDomain(task.Source.A, task.Source.B)
	tgt, _ := NewDomain(task.Target.A, task.Target.B, WithoutLabels())
	res, err := Transfer(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Evaluate on unlabelled target should panic")
		}
	}()
	res.Evaluate(tgt)
}

func TestStandardClassifiers(t *testing.T) {
	cs := StandardClassifiers(1)
	if len(cs) != 4 {
		t.Fatalf("expected 4 classifiers, got %d", len(cs))
	}
	names := map[string]bool{}
	for _, c := range cs {
		names[c.Name] = true
		if c.New == nil {
			t.Errorf("classifier %s has nil factory", c.Name)
		}
	}
	for _, want := range []string{"svm", "rf", "logreg", "dtree"} {
		if !names[want] {
			t.Errorf("missing classifier %q", want)
		}
	}
}

func TestMethodsAndByName(t *testing.T) {
	ms := Methods(1)
	if len(ms) != 7 {
		t.Fatalf("expected 7 methods, got %d", len(ms))
	}
	for _, m := range ms {
		got, err := MethodByName(m.Name(), 1)
		if err != nil {
			t.Errorf("MethodByName(%q): %v", m.Name(), err)
		}
		if got.Name() != m.Name() {
			t.Errorf("round trip name mismatch")
		}
	}
	if _, err := MethodByName("nope", 1); err == nil {
		t.Errorf("unknown method accepted")
	}
}

func TestEvaluateMethodProtocol(t *testing.T) {
	src, tgt, err := BuildDomains(tinyTask())
	if err != nil {
		t.Fatal(err)
	}
	me, err := EvaluateMethod(TransERWithConfig(DefaultConfig()), src, tgt, StandardClassifiers(1)[:2])
	if err != nil {
		t.Fatalf("EvaluateMethod: %v", err)
	}
	if len(me.PerClassifier) != 2 {
		t.Errorf("per-classifier runs = %d", len(me.PerClassifier))
	}
	if me.Runtime <= 0 {
		t.Errorf("runtime not measured")
	}
	if me.Aggregate.FStar.Mean <= 0 {
		t.Errorf("aggregate F* = %v", me.Aggregate.FStar.Mean)
	}
	// Unlabelled target rejected.
	tgtU, _ := NewDomain(tinyTask().Target.A, tinyTask().Target.B, WithoutLabels())
	if _, err := EvaluateMethod(TransERWithConfig(DefaultConfig()), src, tgtU, nil); err == nil {
		t.Errorf("unlabelled target accepted by EvaluateMethod")
	}
}

func TestRunMethodNaive(t *testing.T) {
	src, tgt, err := BuildDomains(tinyTask())
	if err != nil {
		t.Fatal(err)
	}
	m, err := MethodByName("Naive", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMethod(m, src, tgt, DefaultClassifier())
	if err != nil {
		t.Fatalf("RunMethod: %v", err)
	}
	if len(res.Labels) != tgt.NumPairs() {
		t.Errorf("wrong output size")
	}
}

func TestGenerateCustomSpec(t *testing.T) {
	pair := Generate(GeneratorSpec{
		Name: "custom", Kind: 0, Seed: 42, NumEntities: 120,
		FracA: 0.8, FracB: 0.8, AmbiguityFrac: 0.1,
	})
	if pair.A.NumRecords() == 0 || pair.B.NumRecords() == 0 {
		t.Errorf("custom generation produced empty databases")
	}
	if len(pair.Truth()) == 0 {
		t.Errorf("custom generation produced no matches")
	}
}

func TestPRCurvePublicAPI(t *testing.T) {
	src, tgt, err := BuildDomains(tinyTask())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Transfer(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	curve := PRCurve(res, tgt)
	if len(curve) == 0 {
		t.Fatal("empty PR curve")
	}
	ap := AveragePrecision(res, tgt)
	if ap <= 0 || ap > 1 {
		t.Errorf("average precision %v out of range", ap)
	}
	thr, f := BestFStar(res, tgt)
	if thr < 0 || thr > 1 || f <= 0 || f > 1 {
		t.Errorf("best F* = %v @ %v implausible", f, thr)
	}
}
