package transer

import (
	"fmt"

	"transer/internal/datagen"
)

// DomainPair is two generated databases forming one ER domain, as
// produced by the built-in synthetic data set generators.
type DomainPair = datagen.DomainPair

// TransferTask is one source→target experiment row.
type TransferTask = datagen.TransferTask

// GeneratorSpec fully describes a synthetic domain; see the paper
// reproduction notes in DESIGN.md Section 1.4.
type GeneratorSpec = datagen.Spec

// Built-in data set stand-ins mirroring the paper's seven data sets
// (Table 1). The scale parameter multiplies the entity universe size;
// scale 1.0 is the laptop-scale default used by cmd/experiments.
var (
	// DBLPACM is the clean bibliographic pair.
	DBLPACM = datagen.DBLPACM
	// DBLPScholar is the noisy bibliographic pair.
	DBLPScholar = datagen.DBLPScholar
	// MSD is the Million-Songs-like music pair.
	MSD = datagen.MSD
	// MB is the Musicbrainz-like (highly ambiguous) music pair.
	MB = datagen.MB
	// IOSBpDp is the smaller 8-attribute demographic pair.
	IOSBpDp = datagen.IOSBpDp
	// KILBpDp is the larger 8-attribute demographic pair.
	KILBpDp = datagen.KILBpDp
	// IOSBpBp is the 11-attribute Isle-of-Skye demographic pair.
	IOSBpBp = datagen.IOSBpBp
	// KILBpBp is the largest 11-attribute demographic pair.
	KILBpBp = datagen.KILBpBp
)

// DatasetKeys returns the stable identities of the built-in data set
// stand-ins in Table 1 order — the keys DomainStore.Domain accepts.
func DatasetKeys() []string {
	builtins := datagen.Builtins()
	out := make([]string, len(builtins))
	for i, b := range builtins {
		out[i] = b.Key
	}
	return out
}

// PaperTasks returns the eight source→target pairs of the paper's
// Table 2 at the given scale.
func PaperTasks(scale float64) []TransferTask { return datagen.PaperTasks(scale) }

// RepresentativeTasks returns the three pairs used for the sensitivity
// and ablation experiments (Sections 5.2.3-5.4).
func RepresentativeTasks(scale float64) []TransferTask {
	return datagen.RepresentativeTasks(scale)
}

// Generate produces a custom synthetic domain pair.
func Generate(spec GeneratorSpec) DomainPair {
	a, b := datagen.Generate(spec)
	return DomainPair{Name: spec.Name, A: a, B: b}
}

// BuildDomains converts a generated transfer task into blocked,
// compared and labelled source and target Domains — the bridge from
// the data generators to the Transfer API. Each side's recommended
// blocking attributes are applied unless the caller overrides blocking.
func BuildDomains(task TransferTask, opts ...DomainOption) (source, target *Domain, err error) {
	source, err = BuildDomain(task.Source, opts...)
	if err != nil {
		return nil, nil, fmt.Errorf("transer: building source domain: %w", err)
	}
	target, err = BuildDomain(task.Target, opts...)
	if err != nil {
		return nil, nil, fmt.Errorf("transer: building target domain: %w", err)
	}
	return source, target, nil
}

// BuildDomain blocks, compares and labels one generated domain pair
// using its recommended blocking attributes.
func BuildDomain(pair DomainPair, opts ...DomainOption) (*Domain, error) {
	base := []DomainOption{
		WithName(pair.Name),
		WithBlocking(pair.Blocking),
	}
	return NewDomain(pair.A, pair.B, append(base, opts...)...)
}
