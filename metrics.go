package transer

import "transer/internal/eval"

// Threshold-free evaluation helpers re-exported from internal/eval.

// PRPoint is one operating point of a precision-recall curve.
type PRPoint = eval.PRPoint

// PRCurve computes the precision-recall curve of a probabilistic
// prediction against the target domain's ground truth. The target must
// be labelled.
func PRCurve(res *Result, target *Domain) []PRPoint {
	if target.Y == nil {
		panic("transer: target domain has no ground truth labels")
	}
	return eval.PRCurve(res.Proba, target.Y)
}

// AveragePrecision is the area under the precision-recall curve.
func AveragePrecision(res *Result, target *Domain) float64 {
	if target.Y == nil {
		panic("transer: target domain has no ground truth labels")
	}
	return eval.AveragePrecision(res.Proba, target.Y)
}

// BestFStar scans the PR curve for the decision threshold maximising
// the F*-measure (useful when a labelled validation subset exists).
func BestFStar(res *Result, target *Domain) (threshold, fstar float64) {
	if target.Y == nil {
		panic("transer: target domain has no ground truth labels")
	}
	return eval.BestFStar(res.Proba, target.Y)
}
