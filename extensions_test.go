package transer

import "testing"

func TestRankSourcesPublicAPI(t *testing.T) {
	tasks := PaperTasks(0.05)
	msd, err := BuildDomain(tasks[2].Source) // MSD
	if err != nil {
		t.Fatal(err)
	}
	mb, err := BuildDomain(tasks[2].Target) // MB
	if err != nil {
		t.Fatal(err)
	}
	target, err := BuildDomain(tasks[3].Target) // MSD again (fresh build)
	if err != nil {
		t.Fatal(err)
	}
	ranking, err := RankSources([]*Domain{msd, mb}, target, DefaultConfig())
	if err != nil {
		t.Fatalf("RankSources: %v", err)
	}
	if len(ranking) != 2 {
		t.Fatalf("expected 2 scores, got %d", len(ranking))
	}
	if ranking[0].Score < ranking[1].Score {
		t.Errorf("ranking unsorted")
	}
	// Unlabelled source rejected.
	unl, _ := NewDomain(tasks[2].Source.A, tasks[2].Source.B, WithoutLabels())
	if _, err := RankSources([]*Domain{unl}, target, DefaultConfig()); err == nil {
		t.Errorf("unlabelled source accepted")
	}
}

func TestTransferMultiSourcePublicAPI(t *testing.T) {
	tasks := PaperTasks(0.05)
	src1, _ := BuildDomain(tasks[2].Source)
	src2, _ := BuildDomain(tasks[2].Target)
	target, _ := BuildDomain(tasks[3].Target)
	res, ranking, err := TransferMultiSource([]*Domain{src1, src2}, target)
	if err != nil {
		t.Fatalf("TransferMultiSource: %v", err)
	}
	if len(res.Labels) != target.NumPairs() {
		t.Errorf("wrong output size")
	}
	if len(ranking) != 2 {
		t.Errorf("missing ranking")
	}
}

func TestTransferSemiSupervisedPublicAPI(t *testing.T) {
	src, tgt, err := BuildDomains(tinyTask())
	if err != nil {
		t.Fatal(err)
	}
	known := TargetLabels{}
	for i := 0; i < tgt.NumPairs(); i += 10 {
		known[i] = tgt.Y[i]
	}
	res, err := TransferSemiSupervised(src, tgt, known)
	if err != nil {
		t.Fatalf("TransferSemiSupervised: %v", err)
	}
	for idx, l := range known {
		if res.Labels[idx] != l {
			t.Fatalf("known label not respected at %d", idx)
		}
	}
	m := res.Evaluate(tgt)
	if m.FStar <= 0 {
		t.Errorf("semi-supervised transfer learned nothing")
	}
	if _, err := TransferSemiSupervised(nil, tgt, known); err == nil {
		t.Errorf("nil source accepted")
	}
}

func TestTransferActivePublicAPI(t *testing.T) {
	src, tgt, err := BuildDomains(tinyTask())
	if err != nil {
		t.Fatal(err)
	}
	oracle := func(i int) int { return tgt.Y[i] }
	res, err := TransferActive(src, tgt, oracle, 20, 2)
	if err != nil {
		t.Fatalf("TransferActive: %v", err)
	}
	if len(res.Queried) == 0 || len(res.Queried) > 20 {
		t.Errorf("queried %d with budget 20", len(res.Queried))
	}
	m := res.Evaluate(tgt)
	if m.FStar <= 0 {
		t.Errorf("active transfer learned nothing")
	}
	if _, err := TransferActive(src, tgt, nil, 20, 2); err == nil {
		t.Errorf("nil oracle accepted")
	}
}

func TestClusterMatchesPublicAPI(t *testing.T) {
	src, tgt, err := BuildDomains(tinyTask())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Transfer(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	clusters := ClusterMatches(res, tgt)
	predicted := 0
	for _, l := range res.Labels {
		predicted += l
	}
	if predicted > 0 && len(clusters) == 0 {
		t.Errorf("matches predicted but no clusters formed")
	}
	for _, c := range clusters {
		if len(c.A) == 0 || len(c.B) == 0 {
			t.Errorf("cluster without both sides: %+v", c)
		}
	}
}

func TestOneToOneMatchesPublicAPI(t *testing.T) {
	src, tgt, err := BuildDomains(tinyTask())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Transfer(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	pairs, labels := OneToOneMatches(res, tgt)
	if len(labels) != tgt.NumPairs() {
		t.Fatalf("label vector misaligned")
	}
	seenA := map[int]bool{}
	seenB := map[int]bool{}
	for _, p := range pairs {
		if seenA[p.A] || seenB[p.B] {
			t.Fatalf("one-to-one violated at %v", p)
		}
		seenA[p.A] = true
		seenB[p.B] = true
	}
	// One-to-one can only keep a subset of predicted matches.
	predicted := 0
	for _, l := range res.Labels {
		predicted += l
	}
	if len(pairs) > predicted {
		t.Errorf("kept %d pairs out of %d predicted", len(pairs), predicted)
	}
}

func TestDomainStorePublicAPI(t *testing.T) {
	st := NewDomainStore()
	first, err := st.Domain("DBLP-ACM", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Labelled() || first.NumPairs() == 0 {
		t.Fatalf("store returned an unusable domain: %d pairs, labelled=%v",
			first.NumPairs(), first.Labelled())
	}
	second, err := st.Domain("DBLP-ACM", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if &first.X[0][0] != &second.X[0][0] {
		t.Errorf("second request rebuilt the feature matrix instead of hitting the cache")
	}
	stats := st.Stats()
	if stats.Misses == 0 || stats.Hits == 0 {
		t.Errorf("stats = %+v, want both misses (cold) and hits (warm)", stats)
	}

	// The memoized domains drive the ordinary Transfer flow.
	tgt, err := st.Domain("DBLP-Scholar", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Transfer(first, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != tgt.NumPairs() {
		t.Fatalf("prediction misaligned with target pairs")
	}

	if _, err := st.Domain("no-such-dataset", 0.04); err == nil {
		t.Errorf("unknown dataset key must error")
	}
	keys := DatasetKeys()
	if len(keys) != 8 || keys[0] != "DBLP-ACM" {
		t.Errorf("DatasetKeys() = %v", keys)
	}
}
