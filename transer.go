// Package transer is the public API of this repository: a from-scratch
// Go implementation of TransER — homogeneous transfer learning for
// entity resolution (Kirielle, Christen, Ranbaduge; EDBT 2022) — along
// with the full ER pipeline it sits on (MinHash-LSH blocking,
// similarity-based record pair comparison, traditional ML
// classifiers) and the six transfer baselines the paper evaluates.
//
// The typical flow mirrors Figure 3 of the paper:
//
//	src, _ := transer.NewDomain(dbS1, dbS2)         // blocked + compared + labelled
//	tgt, _ := transer.NewDomain(dbT1, dbT2)         // labels only used for evaluation
//	res, _ := transer.Transfer(src, tgt)            // SEL → GEN → TCL
//	m := res.Evaluate(tgt)                          // P, R, F*, F1
//
// A Domain owns the candidate record pairs of two databases and their
// feature matrix; Transfer consumes a labelled source Domain and an
// unlabelled target Domain and predicts the target's match labels.
package transer

import (
	"errors"
	"fmt"

	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/core"
	"transer/internal/dataset"
	"transer/internal/eval"
	"transer/internal/ml"
	"transer/internal/pipeline"
)

// Re-exported pipeline types. These aliases make the internal packages'
// data model part of the public API without duplicating it.
type (
	// Database is a named schema plus records.
	Database = dataset.Database
	// Record is one entity description.
	Record = dataset.Record
	// Schema is the ordered, typed attribute list of a database.
	Schema = dataset.Schema
	// Attribute is one typed schema column.
	Attribute = dataset.Attribute
	// Pair is a candidate record pair (indices into the two databases).
	Pair = dataset.Pair
	// PairSet is a set of record pairs.
	PairSet = dataset.PairSet
	// Config holds TransER's hyper-parameters and ablation switches.
	Config = core.Config
	// Stats reports what each TransER phase did.
	Stats = core.Stats
	// Metrics bundles precision, recall, F* and F1 (percentages).
	Metrics = eval.Metrics
	// Classifier is the binary probabilistic classifier interface.
	Classifier = ml.Classifier
	// ClassifierFactory creates fresh classifiers for the GEN and TCL
	// phases.
	ClassifierFactory = ml.Factory
	// BlockingConfig parameterises MinHash-LSH blocking.
	BlockingConfig = blocking.MinHashConfig
	// ComparisonScheme maps schema attributes to similarity functions.
	ComparisonScheme = compare.Scheme
)

// Attribute type constants, re-exported for schema construction.
const (
	AttrName    = dataset.AttrName
	AttrText    = dataset.AttrText
	AttrCode    = dataset.AttrCode
	AttrYear    = dataset.AttrYear
	AttrNumeric = dataset.AttrNumeric
)

// DefaultConfig returns the default TransER parameters: k = 7,
// t_c = 0.9, t_l = 0.9, t_p = 0.90, b = 3 (1:3 balance). The paper
// quotes t_p = 0.99; this implementation defaults to 0.90 for the
// reasons documented on Config.TP.
func DefaultConfig() Config { return core.DefaultConfig() }

// Domain is one ER domain: two databases, their candidate record pairs
// after blocking, the feature matrix from the comparison step, and —
// when ground truth entity identifiers are present — the pair labels.
type Domain struct {
	// Name identifies the domain in experiment output.
	Name string
	// A and B are the two databases being linked.
	A, B *Database
	// Pairs are the blocked candidate record pairs; row i of X
	// describes Pairs[i].
	Pairs []Pair
	// X is the feature matrix (one row per candidate pair, values in
	// [0, 1]).
	X [][]float64
	// Y are the pair labels (1 = match) derived from ground truth;
	// nil when the databases carry no entity identifiers.
	Y []int
	// Scheme is the comparison scheme that produced X.
	Scheme ComparisonScheme
}

// DomainOption customises NewDomain.
type DomainOption func(*domainOptions)

type domainOptions struct {
	blocking  BlockingConfig
	scheme    *ComparisonScheme
	name      string
	dropTruth bool
}

// WithBlocking overrides the MinHash-LSH blocking configuration.
func WithBlocking(cfg BlockingConfig) DomainOption {
	return func(o *domainOptions) { o.blocking = cfg }
}

// WithScheme overrides the comparison scheme (default: type-derived
// comparators per attribute).
func WithScheme(s ComparisonScheme) DomainOption {
	return func(o *domainOptions) { o.scheme = &s }
}

// WithName sets the domain's display name (default "<A>×<B>").
func WithName(name string) DomainOption {
	return func(o *domainOptions) { o.name = name }
}

// WithoutLabels suppresses ground-truth labelling even when entity
// identifiers are present (to simulate an unlabelled target).
func WithoutLabels() DomainOption {
	return func(o *domainOptions) { o.dropTruth = true }
}

// NewDomain blocks and compares two databases into a Domain via the
// staged construction pipeline (generate → block → compare → label;
// see internal/pipeline). The two databases must share a schema (the
// homogeneous feature space precondition). Labels are derived from
// record entity identifiers when available.
func NewDomain(a, b *Database, opts ...DomainOption) (*Domain, error) {
	if a == nil || b == nil {
		return nil, errors.New("transer: nil database")
	}
	if !a.Schema.Equal(b.Schema) {
		return nil, fmt.Errorf("transer: databases %q and %q have different schemas", a.Name, b.Name)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	o := domainOptions{}
	for _, opt := range opts {
		opt(&o)
	}
	if o.name == "" {
		o.name = a.Name + "×" + b.Name
	}
	return domainOf(pipeline.Build(a, b, pipeline.BuildSpec{
		Name:     o.name,
		Blocking: o.blocking,
		Scheme:   o.scheme,
		NoLabels: o.dropTruth,
	})), nil
}

// domainOf converts a pipeline artifact into the public Domain type.
func domainOf(d *pipeline.Domain) *Domain {
	return &Domain{
		Name:   d.Name,
		A:      d.A,
		B:      d.B,
		Pairs:  d.Pairs,
		X:      d.X,
		Y:      d.Y,
		Scheme: d.Scheme,
	}
}

// Labelled reports whether the domain carries pair labels.
func (d *Domain) Labelled() bool { return d.Y != nil }

// NumPairs returns the candidate pair count (the paper's |X|).
func (d *Domain) NumPairs() int { return len(d.Pairs) }

// NumFeatures returns the feature space dimensionality m.
func (d *Domain) NumFeatures() int {
	if len(d.X) == 0 {
		return d.Scheme.NumFeatures()
	}
	return len(d.X[0])
}

// MatchFraction returns the labelled match fraction (0 when
// unlabelled) — the class imbalance diagnostic of Table 1.
func (d *Domain) MatchFraction() float64 {
	if len(d.Y) == 0 {
		return 0
	}
	ones := 0
	for _, y := range d.Y {
		ones += y
	}
	return float64(ones) / float64(len(d.Y))
}

// Result is the outcome of a transfer run on a target domain.
type Result struct {
	// Labels are the predicted target pair labels (1 = match),
	// aligned with the target domain's Pairs.
	Labels []int
	// Proba are the match probabilities behind Labels.
	Proba []float64
	// Classifier is the trained classifier that produced Proba — the
	// TCL-phase target classifier, or the GEN-phase one on fallback
	// paths. It satisfies Proba == Classifier.PredictProba(target.X)
	// bitwise, so exporting it (internal/model, cmd/transer -model-out)
	// preserves this run's decisions exactly. Nil for baselines run via
	// RunMethod that keep their model internal.
	Classifier Classifier
	// Stats describes the TransER phases (zero for baselines run via
	// RunMethod).
	Stats Stats
}

// Matches returns the record pairs predicted as matches.
func (r *Result) Matches(target *Domain) []Pair {
	out := make([]Pair, 0)
	for i, l := range r.Labels {
		if l == 1 {
			out = append(out, target.Pairs[i])
		}
	}
	return out
}

// Evaluate scores the prediction against the target domain's ground
// truth labels. It panics if the target is unlabelled.
func (r *Result) Evaluate(target *Domain) Metrics {
	if target.Y == nil {
		panic("transer: target domain has no ground truth labels")
	}
	return eval.Evaluate(r.Labels, target.Y)
}

// TransferOption customises Transfer.
type TransferOption func(*transferOptions)

type transferOptions struct {
	cfg     Config
	factory ClassifierFactory
}

// WithConfig overrides the TransER configuration.
func WithConfig(cfg Config) TransferOption {
	return func(o *transferOptions) { o.cfg = cfg }
}

// WithClassifier overrides the classifier factory used by the GEN and
// TCL phases (default: random forest).
func WithClassifier(f ClassifierFactory) TransferOption {
	return func(o *transferOptions) { o.factory = f }
}

// Transfer runs TransER: it transfers the labelled source domain's
// knowledge to label the target domain's candidate pairs. The source
// must be labelled; the target's labels (if any) are ignored by the
// algorithm and only used by Result.Evaluate.
func Transfer(source, target *Domain, opts ...TransferOption) (*Result, error) {
	if source == nil || target == nil {
		return nil, errors.New("transer: nil domain")
	}
	if !source.Labelled() {
		return nil, fmt.Errorf("transer: source domain %q has no labels", source.Name)
	}
	o := transferOptions{cfg: DefaultConfig(), factory: DefaultClassifier()}
	for _, opt := range opts {
		opt(&o)
	}
	res, err := core.Run(source.X, source.Y, target.X, o.factory, o.cfg)
	if err != nil {
		return nil, err
	}
	return &Result{Labels: res.Labels, Proba: res.Proba, Classifier: res.Classifier, Stats: res.Stats}, nil
}
