// Multisource: when several labelled data sets could serve as the
// source domain, rank them by transferability and transfer from the
// best — the paper's "choose the best source domain" future-work
// extension. Also demonstrates semi-supervised and active-learning
// transfer, plus one-to-one match post-processing.
//
// Run with:
//
//	go run ./examples/multisource
package main

import (
	"flag"
	"fmt"
	"log"

	transer "transer"
)

func main() {
	scale := flag.Float64("scale", 1, "multiplier on the example's data sizes")
	flag.Parse()

	// Target: unlabelled music catalogue pair.
	targetPair := transer.MSD(0.2 * *scale)
	target, err := transer.BuildDomain(targetPair)
	if err != nil {
		log.Fatal(err)
	}

	// Candidate sources: another music pair (semantically close) and a
	// bibliographic pair forced onto a comparable feature space? No —
	// feature spaces must match (homogeneous TL), so candidates are
	// two differently-distributed music sources.
	mb, err := transer.BuildDomain(transer.MB(0.2 * *scale))
	if err != nil {
		log.Fatal(err)
	}
	legacyEntities := int(400 * *scale)
	if legacyEntities < 40 {
		legacyEntities = 40
	}
	msdOld, err := transer.BuildDomain(transer.Generate(transer.GeneratorSpec{
		Name: "msd-legacy", Kind: 1 /* music */, Seed: 777,
		NumEntities: legacyEntities, FracA: 0.8, FracB: 0.8, AmbiguityFrac: 0.05,
	}))
	if err != nil {
		log.Fatal(err)
	}

	ranking, err := transer.RankSources([]*transer.Domain{mb, msdOld}, target, transer.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("source ranking (best first):")
	for _, r := range ranking {
		fmt.Printf("  %-12s score=%.3f (selected %.0f%%, mean sim_l %.3f)\n",
			r.Name, r.Score, 100*r.SelectedFrac, r.MeanSimL)
	}

	res, ranking, err := transer.TransferMultiSource([]*transer.Domain{mb, msdOld}, target)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Evaluate(target)
	fmt.Printf("\ntransferred from %q: P=%.2f R=%.2f F*=%.2f\n",
		ranking[0].Name, m.Precision, m.Recall, m.FStar)

	// Semi-supervised: suppose 5%% of target pairs were hand-labelled.
	known := transer.TargetLabels{}
	for i := 0; i < target.NumPairs(); i += 20 {
		known[i] = target.Y[i]
	}
	best := []*transer.Domain{mb, msdOld}[ranking[0].Index]
	semi, err := transer.TransferSemiSupervised(best, target, known)
	if err != nil {
		log.Fatal(err)
	}
	sm := semi.Evaluate(target)
	fmt.Printf("with %d known target labels: P=%.2f R=%.2f F*=%.2f\n",
		len(known), sm.Precision, sm.Recall, sm.FStar)

	// Active learning: spend 50 oracle queries on the most uncertain pairs.
	oracle := func(i int) int { return target.Y[i] }
	active, err := transer.TransferActive(best, target, oracle, 50, 5)
	if err != nil {
		log.Fatal(err)
	}
	am := active.Evaluate(target)
	fmt.Printf("after %d active queries: P=%.2f R=%.2f F*=%.2f\n",
		len(active.Queried), am.Precision, am.Recall, am.FStar)

	// Post-process into one-to-one matches and score the cleaned
	// prediction.
	pairs, labels := transer.OneToOneMatches(active.Result, target)
	cleaned := &transer.Result{Labels: labels, Proba: active.Proba}
	cm := cleaned.Evaluate(target)
	fmt.Printf("one-to-one post-processing kept %d of %d predicted matches (P=%.2f R=%.2f F*=%.2f)\n",
		len(pairs), countOnes(active.Labels), cm.Precision, cm.Recall, cm.FStar)
}

func countOnes(labels []int) int {
	n := 0
	for _, l := range labels {
		n += l
	}
	return n
}
