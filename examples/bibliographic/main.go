// Bibliographic: compare TransER against every baseline on the
// publication-linkage scenario from the paper's introduction (labels
// exist for DBLP-ACM; DBLP-Scholar must be linked without any), using
// the paper's protocol of averaging over four classifiers.
//
// Run with:
//
//	go run ./examples/bibliographic
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	transer "transer"
)

func main() {
	scale := flag.Float64("scale", 1, "multiplier on the example's data sizes")
	flag.Parse()

	source, target, err := transer.BuildDomains(transer.TransferTask{
		Source: transer.DBLPACM(0.3 * *scale),
		Target: transer.DBLPScholar(0.3 * *scale),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transfer task: %s (%d pairs) -> %s (%d pairs)\n\n",
		source.Name, source.NumPairs(), target.Name, target.NumPairs())

	classifiers := transer.StandardClassifiers(1)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tP\tR\tF*\tF1\truntime")
	for _, m := range transer.Methods(1) {
		me, err := transer.EvaluateMethod(m, source, target, classifiers)
		if err != nil {
			fmt.Fprintf(w, "%s\terror: %v\n", m.Name(), err)
			continue
		}
		a := me.Aggregate
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%v\n",
			me.Method, a.Precision, a.Recall, a.FStar, a.F1,
			me.Runtime.Round(1e6))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
