// Demographic: link 19th-century-style civil certificates (birth
// parents to death parents) across two populations, the hardest
// workload in the paper — structured personal data with typographical
// errors, restricted name vocabularies, and genuinely ambiguous sibling
// records. Shows custom comparison schemes and blocking configuration
// on top of the generated data, plus per-phase statistics.
//
// Run with:
//
//	go run ./examples/demographic
package main

import (
	"flag"
	"fmt"
	"log"

	transer "transer"
)

func main() {
	scale := flag.Float64("scale", 1, "multiplier on the example's data sizes")
	flag.Parse()

	kil := transer.KILBpDp(0.3 * *scale) // labelled town records (source)
	ios := transer.IOSBpDp(0.3 * *scale) // unlabelled island records (target)

	// Certificates are blocked on the four parent-name attributes with
	// a tighter LSH threshold, the standard practice for this domain;
	// the generated pairs carry that recommendation, but it can be
	// overridden explicitly:
	source, err := transer.NewDomain(kil.A, kil.B,
		transer.WithName(kil.Name),
		transer.WithBlocking(transer.BlockingConfig{
			NumHashes: 60, Bands: 12, Attrs: []int{0, 1, 2, 3},
		}))
	if err != nil {
		log.Fatal(err)
	}
	target, err := transer.NewDomain(ios.A, ios.B,
		transer.WithName(ios.Name),
		transer.WithBlocking(ios.Blocking))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source %s: %d pairs (%.0f%% matches)\n", source.Name,
		source.NumPairs(), 100*source.MatchFraction())
	fmt.Printf("target %s: %d pairs\n\n", target.Name, target.NumPairs())

	// Tune TransER: smaller neighbourhood and a stricter balance for
	// the sparser island data.
	cfg := transer.DefaultConfig()
	cfg.K = 7
	cfg.B = 3
	res, err := transer.Transfer(source, target, transer.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	m := res.Evaluate(target)
	fmt.Printf("TransER:  P=%.2f R=%.2f F*=%.2f F1=%.2f\n",
		m.Precision, m.Recall, m.FStar, m.F1)
	fmt.Printf("  phases: SEL %d/%d kept (%v) | GEN %d confident (%v) | TCL %d trained (%v)\n",
		res.Stats.Selected, res.Stats.SourceInstances, res.Stats.SelTime.Round(1e6),
		res.Stats.HighConfidence, res.Stats.GenTime.Round(1e6),
		res.Stats.BalancedTrain, res.Stats.TclTime.Round(1e6))

	// Reference: the no-transfer baseline.
	naive, err := transer.MethodByName("Naive", 1)
	if err != nil {
		log.Fatal(err)
	}
	nres, err := transer.RunMethod(naive, source, target, transer.DefaultClassifier())
	if err != nil {
		log.Fatal(err)
	}
	nm := nres.Evaluate(target)
	fmt.Printf("Naive:    P=%.2f R=%.2f F*=%.2f F1=%.2f\n",
		nm.Precision, nm.Recall, nm.FStar, nm.F1)
	fmt.Printf("\nrecall gain over no-transfer: %+.2f points\n", m.Recall-nm.Recall)
}
