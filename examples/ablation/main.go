// Ablation: quantify what each TransER component contributes on the
// highly ambiguous music domain (Musicbrainz-like re-releases produce
// identical feature vectors with conflicting labels), mirroring the
// paper's Table 4 analysis via the public configuration switches.
//
// Run with:
//
//	go run ./examples/ablation
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	transer "transer"
)

func main() {
	scale := flag.Float64("scale", 1, "multiplier on the example's data sizes")
	flag.Parse()

	source, target, err := transer.BuildDomains(transer.TransferTask{
		Source: transer.MB(0.25 * *scale),
		Target: transer.MSD(0.25 * *scale),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task: %s -> %s (%d -> %d pairs)\n\n",
		source.Name, target.Name, source.NumPairs(), target.NumPairs())

	variants := []struct {
		name string
		mod  func(*transer.Config)
	}{
		{"TransER (full)", func(c *transer.Config) {}},
		{"without GEN & TCL", func(c *transer.Config) { c.DisableGENTCL = true }},
		{"without SEL", func(c *transer.Config) { c.DisableSEL = true }},
		{"without sim_c", func(c *transer.Config) { c.DisableSimC = true }},
		{"without sim_l", func(c *transer.Config) { c.DisableSimL = true }},
		{"with sim_v added", func(c *transer.Config) { c.EnableSimV = true }},
	}

	classifiers := transer.StandardClassifiers(1)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tP\tR\tF*\tF1")
	for _, v := range variants {
		cfg := transer.DefaultConfig()
		v.mod(&cfg)
		me, err := transer.EvaluateMethod(transer.TransERWithConfig(cfg), source, target, classifiers)
		if err != nil {
			fmt.Fprintf(w, "%s\terror: %v\n", v.name, err)
			continue
		}
		a := me.Aggregate
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", v.name, a.Precision, a.Recall, a.FStar, a.F1)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
