// Smoke coverage for the runnable examples: each main package must
// build and complete a miniature run. The -scale flag every example
// accepts shrinks its bundled datasets so the whole sweep stays in
// short-test territory.
package examples

import (
	"strings"
	"testing"

	"transer/internal/testkit"
)

func TestExamplesRunMiniature(t *testing.T) {
	for _, name := range []string{
		"quickstart", "ablation", "multisource", "bibliographic", "demographic",
	} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := testkit.BuildBinary(t, "transer/examples/"+name)
			out := testkit.RunBinary(t, bin, "-scale", "0.1")
			if strings.TrimSpace(out) == "" {
				t.Fatal("example produced no output")
			}
			// The table-printing examples report per-row failures
			// inline instead of exiting non-zero; catch those too.
			if strings.Contains(out, "error:") {
				t.Fatalf("example reported an error:\n%s", out)
			}
		})
	}
}
