// Quickstart: link two small publication databases by transferring
// labels from a related, already-labelled domain — the minimal
// end-to-end TransER flow.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	transer "transer"
)

func main() {
	scale := flag.Float64("scale", 1, "multiplier on the example's data sizes")
	flag.Parse()

	// A labelled source domain (DBLP-ACM-like) and an unlabelled
	// target domain (DBLP-Scholar-like). In practice the source would
	// be a public benchmark with curated ground truth and the target
	// your own databases.
	source, target, err := transer.BuildDomains(transer.TransferTask{
		Source: transer.DBLPACM(0.3 * *scale),
		Target: transer.DBLPScholar(0.3 * *scale),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source %s: %d candidate pairs, %d features, %.1f%% matches\n",
		source.Name, source.NumPairs(), source.NumFeatures(), 100*source.MatchFraction())
	fmt.Printf("target %s: %d candidate pairs\n", target.Name, target.NumPairs())

	// Transfer: instance selection -> pseudo labels -> target classifier.
	res, err := transer.Transfer(source, target)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats
	fmt.Printf("\nSEL kept %d of %d source instances (%v)\n",
		st.Selected, st.SourceInstances, st.SelTime.Round(1e6))
	fmt.Printf("GEN produced %d high-confidence pseudo labels (%v)\n",
		st.HighConfidence, st.GenTime.Round(1e6))
	fmt.Printf("TCL trained on %d balanced instances (%v)\n",
		st.BalancedTrain, st.TclTime.Round(1e6))

	// The generated data carries ground truth, so we can score the
	// prediction; with real unlabelled targets this step disappears.
	m := res.Evaluate(target)
	fmt.Printf("\nlinkage quality: P=%.2f R=%.2f F*=%.2f F1=%.2f\n",
		m.Precision, m.Recall, m.FStar, m.F1)

	// The predicted matches are ordinary record pairs.
	matches := res.Matches(target)
	fmt.Printf("predicted %d matching record pairs; first three:\n", len(matches))
	for i, p := range matches {
		if i == 3 {
			break
		}
		ra := target.A.Records[p.A]
		rb := target.B.Records[p.B]
		fmt.Printf("  %s  <->  %s\n", ra.Values[0], rb.Values[0])
	}
}
