// Benchmarks regenerating each table and figure of the paper's
// evaluation section. Each benchmark runs its experiment at a reduced
// scale so `go test -bench=.` completes in minutes; the full-scale
// regeneration is `go run ./cmd/experiments -exp all` (see
// EXPERIMENTS.md for recorded full-scale results).
package transer_test

import (
	"testing"

	"transer/internal/experiments"
	"transer/internal/pipeline"
)

// benchScale keeps benchmark iterations affordable while exercising
// every code path of the corresponding experiment.
const benchScale = 0.08

func benchOpts() experiments.Options {
	return experiments.Options{
		Scale:    benchScale,
		Seed:     1,
		SkipSlow: true,
		// Two classifiers keep the per-iteration cost down while still
		// exercising the averaging protocol.
		Classifiers: experiments.StandardClassifiers(1)[1:3],
	}
}

// BenchmarkTable1Characteristics regenerates the data set
// characteristics table (paper Table 1).
func BenchmarkTable1Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Distributions regenerates the bi-modal similarity
// histograms (paper Figure 2).
func BenchmarkFigure2Distributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Decay regenerates the exponential decay curves
// (paper Figure 5).
func BenchmarkFigure5Decay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := experiments.Figure5(); len(pts) == 0 {
			b.Fatal("no decay points")
		}
	}
}

// BenchmarkTable2LinkageQuality regenerates the method-comparison
// quality sweep (paper Table 2; runtimes feed Table 3).
func BenchmarkTable2LinkageQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Runtime measures the per-method runtime comparison on
// one mid-sized task (paper Table 3's core claim: TransER within a
// small factor of Naive, far below the other TL baselines).
func BenchmarkTable3Runtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		_ = res.RuntimeTable()
	}
}

// BenchmarkFigure6LabelFraction regenerates the labelled-source-size
// sensitivity sweep (paper Figure 6).
func BenchmarkFigure6LabelFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Params regenerates the t_c/t_l/t_p/k sensitivity
// sweep (paper Figure 7).
func BenchmarkFigure7Params(b *testing.B) {
	opts := benchOpts()
	// The parameter grid is large; a single classifier suffices for the
	// benchmark's purpose.
	opts.Classifiers = experiments.StandardClassifiers(1)[1:2]
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Ablation regenerates the component ablation study
// (paper Table 4).
func BenchmarkTable4Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// Worker-sweep benchmarks: the same experiment at workers=1 (serial)
// and workers=0 (one per CPU). Because every result lands in an
// index-addressed slot, the outputs are byte-identical across the
// sweep — only the wall clock changes. EXPERIMENTS.md records the
// measured speedups.

// workerCounts are the bounds compared by the sweep benchmarks.
func workerCounts() []struct {
	name string
	n    int
} {
	return []struct {
		name string
		n    int
	}{{"serial", 1}, {"allCPUs", 0}}
}

// BenchmarkTable1Workers isolates the compare.Matrix fan-out: Table 1
// is dominated by feature-matrix construction over the record pairs.
func BenchmarkTable1Workers(b *testing.B) {
	for _, wc := range workerCounts() {
		b.Run(wc.name, func(b *testing.B) {
			opts := benchOpts()
			opts.Workers = wc.n
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Table1(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExperimentsColdVsWarm quantifies the artifact store's
// rebuild savings on the construction-dominated experiments (Table 1
// plus Figure 2, which share all their domains): "cold" gives every
// iteration a fresh store, so each rebuilds all artifacts from
// scratch; "warm" shares one pre-populated store, so every iteration
// is served from cache. The rendered output is byte-identical either
// way; EXPERIMENTS.md records the measured gap.
func BenchmarkExperimentsColdVsWarm(b *testing.B) {
	iteration := func(b *testing.B, st *pipeline.Store) {
		opts := benchOpts()
		opts.Store = st
		if _, err := experiments.Table1(opts); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Figure2(opts); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			iteration(b, pipeline.NewStore())
		}
	})
	b.Run("warm", func(b *testing.B) {
		st := pipeline.NewStore()
		iteration(b, st) // populate outside the timed loop
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			iteration(b, st)
		}
	})
}

// BenchmarkTable2Workers exercises the (task, method) cell fan-out of
// the experiment harness plus the parallel SEL/GEN/TCL internals.
func BenchmarkTable2Workers(b *testing.B) {
	for _, wc := range workerCounts() {
		b.Run(wc.name, func(b *testing.B) {
			opts := benchOpts()
			opts.Workers = wc.n
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Table2(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
