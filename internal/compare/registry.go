package compare

import (
	"fmt"
	"sort"
)

// The comparator name registry: every similarity function the package
// can assemble into a scheme, addressable by a stable lower-snake-case
// name. Query predicates (internal/query, cmd/query -sim) reference
// comparators by these names, so the mapping is part of the public
// query surface: names are append-only and never renamed.
//
// Parameterised comparators are registered at their catalogue defaults
// (qgram_jaccard with q=3, year with ±3, numeric with 10% relative
// tolerance) — the same values DefaultScheme uses.

// registry maps comparator names to constructors. Constructors rather
// than bare SimFuncs keep registration cheap and side-effect free.
var registry = map[string]func() SimFunc{
	"jaro_winkler":   JaroWinkler,
	"token_jaccard":  TokenJaccard,
	"qgram_jaccard":  func() SimFunc { return QGramJaccard(3) },
	"edit":           EditSimilarity,
	"dice":           DiceBigrams,
	"monge_elkan_jw": MongeElkanJW,
	"smith_waterman": SmithWaterman,
	"lcs":            LongestCommonSubsequence,
	"overlap":        TokenOverlap,
	"exact":          ExactMatch,
	"year":           func() SimFunc { return YearWindow(3) },
	"numeric":        func() SimFunc { return NumericTolerance(0.1) },
}

// ByName resolves a registered comparator name to its similarity
// function.
func ByName(name string) (SimFunc, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("compare: unknown comparator %q (have %v)", name, RegistryNames())
	}
	return ctor(), nil
}

// RegistryNames returns every registered comparator name in sorted
// order.
func RegistryNames() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WithNamed returns a copy of the scheme extended by one registered
// comparator bound to the given attribute index. The feature is named
// "attr<i>_<name>" unless label is non-empty.
func (s Scheme) WithNamed(attr int, name, label string) (Scheme, error) {
	sim, err := ByName(name)
	if err != nil {
		return Scheme{}, err
	}
	if label == "" {
		label = fmt.Sprintf("attr%d_%s", attr, name)
	}
	return s.With(attr, label, sim), nil
}
