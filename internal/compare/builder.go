package compare

import "transer/internal/strutil"

// Builder-style helpers for assembling custom comparison schemes from
// the full comparator catalogue, complementing DefaultScheme's
// type-derived choices.

// With returns a copy of the scheme extended by one comparator.
func (s Scheme) With(attr int, name string, sim SimFunc) Scheme {
	out := s
	out.Comparators = append(append([]Comparator(nil), s.Comparators...),
		Comparator{Attr: attr, Name: name, Sim: sim})
	return out
}

// WithQuantize returns a copy of the scheme using the given feature
// quantisation step (0 disables).
func (s Scheme) WithQuantize(step float64) Scheme {
	out := s
	out.Quantize = step
	return out
}

// WithMissing returns a copy of the scheme using the given missing
// value policy.
func (s Scheme) WithMissing(p MissingPolicy) Scheme {
	out := s
	out.Missing = p
	return out
}

// Named comparator constructors for the full catalogue. Each returns a
// SimFunc suitable for Scheme.With.

// JaroWinkler compares short name-like strings.
func JaroWinkler() SimFunc { return strutil.JaroWinkler }

// TokenJaccard compares multi-word text by word-token overlap.
func TokenJaccard() SimFunc { return strutil.JaccardTokens }

// QGramJaccard compares strings by character q-gram overlap.
func QGramJaccard(q int) SimFunc {
	return func(a, b string) float64 { return strutil.JaccardQGrams(a, b, q) }
}

// EditSimilarity is normalised Levenshtein similarity.
func EditSimilarity() SimFunc { return strutil.EditSim }

// DiceBigrams is the Sørensen-Dice coefficient over bigrams.
func DiceBigrams() SimFunc { return strutil.Dice }

// MongeElkanJW is the symmetric Monge-Elkan similarity with
// Jaro-Winkler as the inner comparator (multi-token names).
func MongeElkanJW() SimFunc { return strutil.SymMongeElkan }

// SmithWaterman is normalised local alignment similarity.
func SmithWaterman() SimFunc { return strutil.SmithWaterman }

// LongestCommonSubsequence is the normalised LCS similarity.
func LongestCommonSubsequence() SimFunc { return strutil.LCSeqSim }

// TokenOverlap is the overlap coefficient over word tokens
// (abbreviation-tolerant).
func TokenOverlap() SimFunc { return strutil.OverlapCoefficient }

// ExactMatch is case-folding exact equality.
func ExactMatch() SimFunc { return strutil.Exact }

// YearWindow compares integer years with a ± tolerance.
func YearWindow(maxDiff int) SimFunc {
	return func(a, b string) float64 { return yearWindow(a, b, maxDiff) }
}

// NumericTolerance compares numbers with a relative tolerance (e.g.
// 0.1 = 10% of the larger magnitude).
func NumericTolerance(rel float64) SimFunc {
	return func(a, b string) float64 { return numericTolerance(a, b, rel) }
}
