package compare

import (
	"testing"
	"testing/quick"

	"transer/internal/datagen"
	"transer/internal/dataset"
)

func bibScheme() (dataset.Schema, Scheme) {
	sch := dataset.Schema{Attributes: []dataset.Attribute{
		{Name: "title", Type: dataset.AttrText},
		{Name: "author", Type: dataset.AttrName},
		{Name: "code", Type: dataset.AttrCode},
		{Name: "year", Type: dataset.AttrYear},
		{Name: "len", Type: dataset.AttrNumeric},
	}}
	return sch, DefaultScheme(sch)
}

func TestDefaultSchemeShape(t *testing.T) {
	sch, s := bibScheme()
	if s.NumFeatures() != sch.NumAttributes() {
		t.Fatalf("features %d != attributes %d", s.NumFeatures(), sch.NumAttributes())
	}
	names := s.FeatureNames()
	if names[0] != "title_jac" || names[1] != "author_jw" || names[3] != "year_yr" {
		t.Errorf("feature names = %v", names)
	}
}

func TestPairIdenticalRecords(t *testing.T) {
	_, s := bibScheme()
	r := dataset.Record{ID: "r", Values: []string{"entity matching at scale", "john smith", "ab12", "1999", "180.0"}}
	x := s.Pair(r, r)
	for i, v := range x {
		if v != 1 {
			t.Errorf("feature %d of identical records = %v, want 1", i, v)
		}
	}
}

func TestPairDifferentRecords(t *testing.T) {
	_, s := bibScheme()
	a := dataset.Record{Values: []string{"entity matching", "john smith", "ab12", "1999", "180.0"}}
	b := dataset.Record{Values: []string{"quantum chemistry", "pqrs vwxy", "zz99", "1901", "960.0"}}
	x := s.Pair(a, b)
	for i, v := range x {
		// Jaro-Winkler floors around 0.3-0.5 even for unrelated names, so
		// only require clear separation from the match end of the scale.
		if v > 0.55 {
			t.Errorf("feature %d of unrelated records = %v, want well below match level", i, v)
		}
	}
}

func TestPairMissingValues(t *testing.T) {
	_, s := bibScheme()
	a := dataset.Record{Values: []string{"", "john smith", "ab12", "1999", "180.0"}}
	b := dataset.Record{Values: []string{"anything", "john smith", "ab12", "1999", "180.0"}}
	x := s.Pair(a, b)
	if x[0] != 0 {
		t.Errorf("missing value should score 0 under MissingZero, got %v", x[0])
	}
	s.Missing = MissingHalf
	x = s.Pair(a, b)
	if x[0] != 0.5 {
		t.Errorf("missing value should score 0.5 under MissingHalf, got %v", x[0])
	}
}

func TestYearComparator(t *testing.T) {
	_, s := bibScheme()
	a := dataset.Record{Values: []string{"t", "n", "c", "1990", "1"}}
	b := dataset.Record{Values: []string{"t", "n", "c", "1991", "1"}}
	x := s.Pair(a, b)
	if x[3] <= 0.5 || x[3] >= 1 {
		t.Errorf("adjacent years should score in (0.5, 1), got %v", x[3])
	}
	// Unparsable year falls back to exact.
	c := dataset.Record{Values: []string{"t", "n", "c", "unknown", "1"}}
	d := dataset.Record{Values: []string{"t", "n", "c", "unknown", "1"}}
	if x := s.Pair(c, d); x[3] != 1 {
		t.Errorf("identical unparsable years should score 1, got %v", x[3])
	}
}

func TestNumericComparator(t *testing.T) {
	_, s := bibScheme()
	a := dataset.Record{Values: []string{"t", "n", "c", "1990", "200.0"}}
	b := dataset.Record{Values: []string{"t", "n", "c", "1990", "210.0"}}
	x := s.Pair(a, b)
	if x[4] <= 0 || x[4] >= 1 {
		t.Errorf("5%% numeric difference should score in (0,1), got %v", x[4])
	}
}

func TestMatrix(t *testing.T) {
	sch, s := bibScheme()
	db := &dataset.Database{Schema: sch, Records: []dataset.Record{
		{ID: "1", Values: []string{"a b", "x y", "c1", "1990", "10"}},
		{ID: "2", Values: []string{"a c", "x z", "c2", "1991", "12"}},
	}}
	pairs := []dataset.Pair{{A: 0, B: 0}, {A: 0, B: 1}, {A: 1, B: 1}}
	x := s.Matrix(db, db, pairs)
	if len(x) != 3 {
		t.Fatalf("matrix rows = %d", len(x))
	}
	for i, row := range x {
		if len(row) != s.NumFeatures() {
			t.Errorf("row %d width = %d", i, len(row))
		}
	}
	// Diagonal pairs are identical records.
	for _, v := range x[0] {
		if v != 1 {
			t.Errorf("identical pair row = %v", x[0])
		}
	}
}

func TestPropertyFeatureRange(t *testing.T) {
	_, s := bibScheme()
	prop := func(t1, a1, c1, t2, a2, c2 string, y1, y2 int16, n1, n2 float32) bool {
		ra := dataset.Record{Values: []string{t1, a1, c1, itoa(int(y1)), ftoa(float64(n1))}}
		rb := dataset.Record{Values: []string{t2, a2, c2, itoa(int(y2)), ftoa(float64(n2))}}
		for _, v := range s.Pair(ra, rb) {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("feature out of [0,1]: %v", err)
	}
}

func itoa(v int) string { return fmtInt(v) }
func fmtInt(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		b = append([]byte{'-'}, b...)
	}
	return string(b)
}
func ftoa(v float64) string {
	return fmtInt(int(v))
}

func TestMeanSimilarity(t *testing.T) {
	ms := MeanSimilarity([][]float64{{1, 0}, {0.5, 0.5}, {}})
	if ms[0] != 0.5 || ms[1] != 0.5 || ms[2] != 0 {
		t.Errorf("MeanSimilarity = %v", ms)
	}
}

func TestBiModalDistributionOnGeneratedData(t *testing.T) {
	// The class-wise mean similarities must separate: matches high,
	// non-matches low — the premise of Figure 2.
	pair := datagen.DBLPACM(0.1)
	s := DefaultScheme(pair.A.Schema)
	truth := pair.Truth()
	var matchSum, nonSum float64
	var matchN, nonN int
	for i, ra := range pair.A.Records {
		for j, rb := range pair.B.Records {
			x := s.Pair(ra, rb)
			m := 0.0
			for _, v := range x {
				m += v
			}
			m /= float64(len(x))
			if truth.Contains(i, j) {
				matchSum += m
				matchN++
			} else {
				nonSum += m
				nonN++
			}
		}
	}
	if matchN == 0 || nonN == 0 {
		t.Fatal("degenerate generated data")
	}
	matchMean := matchSum / float64(matchN)
	nonMean := nonSum / float64(nonN)
	if matchMean < nonMean+0.3 {
		t.Errorf("classes not separated: match mean %.3f vs non-match mean %.3f", matchMean, nonMean)
	}
}

func BenchmarkPairComparison(b *testing.B) {
	_, s := bibScheme()
	ra := dataset.Record{Values: []string{"adaptive query processing in streams", "john smith, mary jones", "ab12", "1999", "180.0"}}
	rb := dataset.Record{Values: []string{"adaptive query processing for streams", "j smith, mary jones", "ab13", "2000", "181.0"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Pair(ra, rb)
	}
}

func TestSchemeBuilder(t *testing.T) {
	sch, base := bibScheme()
	_ = sch
	s := Scheme{}.
		With(0, "title_sw", SmithWaterman()).
		With(1, "author_me", MongeElkanJW()).
		With(3, "year_w5", YearWindow(5)).
		With(4, "len_20", NumericTolerance(0.2)).
		WithQuantize(0).
		WithMissing(MissingHalf)
	if s.NumFeatures() != 4 {
		t.Fatalf("builder features = %d", s.NumFeatures())
	}
	a := dataset.Record{Values: []string{"entity matching", "john smith", "x", "1999", "100"}}
	b := dataset.Record{Values: []string{"entity matching", "jon smith", "x", "2001", "110"}}
	x := s.Pair(a, b)
	if x[0] != 1 {
		t.Errorf("identical titles should be 1, got %v", x[0])
	}
	if x[1] < 0.8 {
		t.Errorf("near names should be high, got %v", x[1])
	}
	if x[2] <= 0 || x[2] >= 1 {
		t.Errorf("2-year gap in 5-year window should be interior, got %v", x[2])
	}
	if x[3] <= 0 || x[3] >= 1 {
		t.Errorf("10%% diff at 20%% tolerance should be interior, got %v", x[3])
	}
	// base scheme unchanged by builder copies
	if base.Missing != MissingZero {
		t.Errorf("builder mutated the base scheme")
	}
	// extra named comparators behave
	if TokenOverlap()("a b", "a b c d") != 1 {
		t.Errorf("token overlap subset should be 1")
	}
	if ExactMatch()("x", "x") != 1 || ExactMatch()("x", "y") != 0 {
		t.Errorf("exact match broken")
	}
	if QGramJaccard(2)("abc", "abc") != 1 {
		t.Errorf("qgram jaccard identity broken")
	}
	if EditSimilarity()("abc", "abc") != 1 || DiceBigrams()("abc", "abc") != 1 {
		t.Errorf("edit/dice identity broken")
	}
	if LongestCommonSubsequence()("abc", "abc") != 1 {
		t.Errorf("lcs identity broken")
	}
	if JaroWinkler()("abc", "abc") != 1 || TokenJaccard()("a b", "a b") != 1 {
		t.Errorf("jw/jaccard identity broken")
	}
}
