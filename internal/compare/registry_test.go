package compare

import (
	"strings"
	"testing"

	"transer/internal/strutil"
)

// TestRegistryRoundTrip checks every registered name resolves to a
// function that agrees with the underlying strutil comparator on a
// spread of inputs — the name registry is the query engine's public
// comparator surface and must not drift from the implementations.
func TestRegistryRoundTrip(t *testing.T) {
	inputs := [][2]string{
		{"", ""},
		{"smith", ""},
		{"smith", "smith"},
		{"smith", "smyth"},
		{"jonathan archer", "j archer"},
		{"entity resolution in go", "entity resolution"},
		{"1987", "1989"},
		{"12.5", "13.0"},
	}
	want := map[string]SimFunc{
		"jaro_winkler":   strutil.JaroWinkler,
		"token_jaccard":  strutil.JaccardTokens,
		"qgram_jaccard":  func(a, b string) float64 { return strutil.JaccardQGrams(a, b, 3) },
		"edit":           strutil.EditSim,
		"dice":           strutil.Dice,
		"monge_elkan_jw": strutil.SymMongeElkan,
		"smith_waterman": strutil.SmithWaterman,
		"lcs":            strutil.LCSeqSim,
		"overlap":        strutil.OverlapCoefficient,
		"exact":          strutil.Exact,
	}
	for name, ref := range want {
		sim, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		for _, in := range inputs {
			if got, exp := sim(in[0], in[1]), ref(in[0], in[1]); got != exp {
				t.Errorf("%s(%q, %q) = %v, want %v", name, in[0], in[1], got, exp)
			}
		}
	}
}

func TestRegistryNamesAllResolve(t *testing.T) {
	names := RegistryNames()
	if len(names) < 12 {
		t.Fatalf("registry has %d comparators, want at least 12: %v", len(names), names)
	}
	for i, n := range names {
		if i > 0 && names[i-1] >= n {
			t.Fatalf("RegistryNames not sorted/unique at %q", n)
		}
		if _, err := ByName(n); err != nil {
			t.Errorf("listed name %q does not resolve: %v", n, err)
		}
	}
	for _, extra := range []string{"smith_waterman", "lcs", "overlap"} {
		found := false
		for _, n := range names {
			if n == extra {
				found = true
			}
		}
		if !found {
			t.Errorf("extra.go comparator %q missing from registry", extra)
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, err := ByName("no_such_comparator"); err == nil {
		t.Fatal("unknown comparator name accepted")
	} else if !strings.Contains(err.Error(), "no_such_comparator") {
		t.Fatalf("error does not name the offender: %v", err)
	}
}

func TestWithNamedExtendsScheme(t *testing.T) {
	s := Scheme{}
	s2, err := s.WithNamed(1, "smith_waterman", "")
	if err != nil {
		t.Fatalf("WithNamed: %v", err)
	}
	if n := s2.NumFeatures(); n != 1 {
		t.Fatalf("NumFeatures = %d, want 1", n)
	}
	c := s2.Comparators[0]
	if c.Attr != 1 || c.Name != "attr1_smith_waterman" {
		t.Fatalf("comparator = %+v", c)
	}
	if got := c.Sim("banana", "banana"); got != 1 {
		t.Fatalf("bound sim self-compare = %v, want 1", got)
	}
	if _, err := s.WithNamed(0, "bogus", ""); err == nil {
		t.Fatal("WithNamed accepted an unknown name")
	}
	// Original scheme untouched.
	if s.NumFeatures() != 0 {
		t.Fatal("WithNamed mutated the receiver")
	}
}
