// Package compare implements the record pair comparison step: for each
// candidate pair it computes an m-dimensional feature vector of
// attribute similarities in [0, 1], and for a full candidate set the
// n×m feature matrix X used by all classification and transfer
// methods (paper Section 3).
package compare

import (
	"fmt"
	"math"
	"strconv"

	"transer/internal/dataset"
	"transer/internal/parallel"
	"transer/internal/strutil"
)

// SimFunc compares two attribute values into a similarity in [0, 1].
type SimFunc func(a, b string) float64

// Comparator binds an attribute index to a similarity function.
type Comparator struct {
	Attr int
	Name string
	Sim  SimFunc
}

// MissingPolicy controls the feature value when one or both attribute
// values are empty.
type MissingPolicy int

const (
	// MissingZero scores pairs with any missing value as 0 — the
	// conservative default.
	MissingZero MissingPolicy = iota
	// MissingHalf scores such pairs 0.5 (agnostic).
	MissingHalf
)

// Scheme is a full comparison schema: one comparator per feature.
type Scheme struct {
	Comparators []Comparator
	Missing     MissingPolicy
	// Quantize rounds every feature to the nearest multiple of this
	// step (0 disables). Real linkage feature matrices contain heavily
	// repeated vectors (the paper's Table 1 counts tens of thousands of
	// duplicate vectors after rounding to two decimals); quantisation
	// reproduces that discreteness, which the local-neighbourhood
	// machinery of instance selection methods depends on.
	Quantize float64
	// Workers bounds the goroutines Matrix uses to build the feature
	// matrix; 0 means one per CPU, 1 forces serial construction. The
	// matrix is identical for every worker count.
	Workers int
}

// NumFeatures returns the feature space dimensionality m.
func (s Scheme) NumFeatures() int { return len(s.Comparators) }

// FeatureNames returns the comparator names in feature order.
func (s Scheme) FeatureNames() []string {
	out := make([]string, len(s.Comparators))
	for i, c := range s.Comparators {
		out[i] = c.Name
	}
	return out
}

// DefaultScheme derives the paper's comparator assignment from a
// schema: Jaro-Winkler for name attributes, token Jaccard for text,
// normalised edit distance for codes, tolerance windows for years
// (±3) and numerics (relative), one feature per attribute.
func DefaultScheme(sch dataset.Schema) Scheme {
	s := Scheme{Quantize: 0.05}
	for i, a := range sch.Attributes {
		c := Comparator{Attr: i, Name: a.Name}
		switch a.Type {
		case dataset.AttrName:
			c.Sim = strutil.JaroWinkler
			c.Name += "_jw"
		case dataset.AttrText:
			c.Sim = jaccardOrDice
			c.Name += "_jac"
		case dataset.AttrCode:
			c.Sim = strutil.EditSim
			c.Name += "_edit"
		case dataset.AttrYear:
			c.Sim = yearSim3
			c.Name += "_yr"
		case dataset.AttrNumeric:
			c.Sim = relNumericSim
			c.Name += "_num"
		default:
			panic(fmt.Sprintf("compare: unhandled attribute type %v", a.Type))
		}
		s.Comparators = append(s.Comparators, c)
	}
	return s
}

// jaccardOrDice uses token Jaccard for multi-token values and falls
// back to bigram Dice for single tokens, where token Jaccard is too
// brittle against typos.
func jaccardOrDice(a, b string) float64 {
	if len(strutil.Tokens(a)) > 1 || len(strutil.Tokens(b)) > 1 {
		return strutil.JaccardTokens(a, b)
	}
	return strutil.Dice(a, b)
}

// yearSim3 parses years and compares with a ±3 year window; unparsable
// values compare as string equality.
func yearSim3(a, b string) float64 { return yearWindow(a, b, 3) }

// yearWindow is the parameterised year comparator.
func yearWindow(a, b string, maxDiff int) float64 {
	ya, errA := strconv.Atoi(a)
	yb, errB := strconv.Atoi(b)
	if errA != nil || errB != nil {
		return strutil.Exact(a, b)
	}
	return strutil.YearSim(ya, yb, maxDiff)
}

// relNumericSim parses numbers and compares with a tolerance of 10% of
// the larger magnitude; unparsable values compare as string equality.
func relNumericSim(a, b string) float64 { return numericTolerance(a, b, 0.1) }

// numericTolerance is the parameterised numeric comparator.
func numericTolerance(a, b string, rel float64) float64 {
	va, errA := strconv.ParseFloat(a, 64)
	vb, errB := strconv.ParseFloat(b, 64)
	if errA != nil || errB != nil {
		return strutil.Exact(a, b)
	}
	scale := va
	if vb > scale {
		scale = vb
	}
	if scale < 1 {
		scale = 1
	}
	return strutil.NumericSim(va, vb, rel*scale)
}

// Pair computes the feature vector of a single record pair under the
// scheme.
func (s Scheme) Pair(a, b dataset.Record) []float64 {
	x := make([]float64, len(s.Comparators))
	for i, c := range s.Comparators {
		va, vb := "", ""
		if c.Attr >= 0 && c.Attr < len(a.Values) {
			va = a.Values[c.Attr]
		}
		if c.Attr >= 0 && c.Attr < len(b.Values) {
			vb = b.Values[c.Attr]
		}
		if va == "" || vb == "" {
			if s.Missing == MissingHalf {
				x[i] = 0.5
			}
			continue
		}
		v := c.Sim(va, vb)
		// Clamp against comparator bugs so downstream code can rely on
		// the [0,1] feature space the paper's Eq. (2) normalises with.
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		x[i] = v
	}
	if s.Quantize > 0 {
		for i, v := range x {
			x[i] = math.Round(v/s.Quantize) * s.Quantize
		}
	}
	return x
}

// Matrix computes the feature matrix for all candidate pairs, using
// up to s.Workers goroutines over contiguous pair chunks. Each row
// depends only on its own pair, so the matrix is bitwise identical
// regardless of the worker count.
func (s Scheme) Matrix(a, b *dataset.Database, pairs []dataset.Pair) [][]float64 {
	x := make([][]float64, len(pairs))
	parallel.ForEachChunk(s.Workers, len(pairs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := pairs[i]
			x[i] = s.Pair(a.Records[p.A], b.Records[p.B])
		}
	})
	return x
}

// MeanSimilarity returns the per-row mean feature value — the summary
// statistic used for the Figure 2 similarity histograms.
func MeanSimilarity(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		if len(row) == 0 {
			continue
		}
		s := 0.0
		for _, v := range row {
			s += v
		}
		out[i] = s / float64(len(row))
	}
	return out
}
