package parallel

import (
	"sync/atomic"
	"testing"
	"time"

	"transer/internal/obs"
)

func TestStatsSerialPath(t *testing.T) {
	ResetStats()
	var ran atomic.Int64
	ForEach(1, 10, func(i int) { ran.Add(1) })
	ForEachChunk(1, 8, func(lo, hi int) { ran.Add(int64(hi - lo)) })
	if ran.Load() != 18 {
		t.Fatalf("ran %d tasks", ran.Load())
	}
	st := Stats()
	if st.Calls != 2 {
		t.Errorf("calls = %d, want 2", st.Calls)
	}
	// Serial ForEach counts its n indices; serial ForEachChunk counts
	// its single chunk invocation.
	if st.Tasks != 11 {
		t.Errorf("tasks = %d, want 11", st.Tasks)
	}
	if st.MaxInFlight != 1 {
		t.Errorf("max in flight = %d, want 1", st.MaxInFlight)
	}
	if st.QueueWait != 0 {
		t.Errorf("serial queue wait = %v, want 0", st.QueueWait)
	}
}

func TestStatsParallelPath(t *testing.T) {
	ResetStats()
	const n = 32
	// A brief sleep per task guarantees overlap, so the in-flight
	// high-water mark must exceed one worker's worth.
	ForEach(4, n, func(i int) { time.Sleep(time.Millisecond) })
	st := Stats()
	if st.Calls != 1 {
		t.Errorf("calls = %d, want 1", st.Calls)
	}
	if st.Tasks != n {
		t.Errorf("tasks = %d, want %d", st.Tasks, n)
	}
	if st.MaxInFlight < 2 || st.MaxInFlight > 4 {
		t.Errorf("max in flight = %d, want 2..4", st.MaxInFlight)
	}
	// Every task after the first batch queues behind a sleeping worker,
	// so total queue wait must be positive.
	if st.QueueWait <= 0 {
		t.Errorf("queue wait = %v, want > 0", st.QueueWait)
	}
}

func TestRegisterMetricsHistograms(t *testing.T) {
	ResetStats()
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	defer RegisterMetrics(nil)

	const n = 20
	ForEach(4, n, func(i int) { time.Sleep(time.Millisecond) })
	snap := reg.Snapshot()

	qw := snap.Histograms["parallel.queue_wait_seconds"]
	if qw.Count != n {
		t.Errorf("queue-wait observations = %d, want %d", qw.Count, n)
	}
	tl := snap.Histograms["parallel.task_seconds"]
	if tl.Count != n {
		t.Errorf("task-latency observations = %d, want %d", tl.Count, n)
	}
	if tl.Min < 0.001 {
		t.Errorf("task latency min = %v, want >= 1ms sleep", tl.Min)
	}
	wu := snap.Histograms["parallel.worker_utilization"]
	if wu.Count != 4 {
		t.Errorf("utilization observations = %d, want one per worker", wu.Count)
	}
	if wu.Max > 1.0+1e-9 {
		t.Errorf("utilization max = %v, want <= 1", wu.Max)
	}

	// Uninstalling stops observation without touching existing data.
	RegisterMetrics(nil)
	ForEach(4, n, func(i int) {})
	if got := reg.Snapshot().Histograms["parallel.task_seconds"].Count; got != n {
		t.Errorf("observations after uninstall = %d, want still %d", got, n)
	}
}

func TestPublishStats(t *testing.T) {
	ResetStats()
	ForEach(2, 6, func(i int) { time.Sleep(time.Millisecond) })
	reg := obs.NewRegistry()
	PublishStats(reg)
	snap := reg.Snapshot()
	if got := snap.Gauges["parallel.calls_total"]; got != 1 {
		t.Errorf("calls gauge = %v", got)
	}
	if got := snap.Gauges["parallel.tasks_total"]; got != 6 {
		t.Errorf("tasks gauge = %v", got)
	}
	if got := snap.Gauges["parallel.max_in_flight"]; got < 1 || got > 2 {
		t.Errorf("max-in-flight gauge = %v", got)
	}
	// Publishing into a nil registry must be a no-op, not a panic.
	PublishStats(nil)
}

// TestStatsDoNotPerturbResults pins the observability contract at the
// scheduling layer: Map output is bitwise identical with metrics
// installed or not.
func TestStatsDoNotPerturbResults(t *testing.T) {
	f := func(i int) int { return i*i + 1 }
	plain := Map(4, 100, f)
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	defer RegisterMetrics(nil)
	instrumented := Map(4, 100, f)
	for i := range plain {
		if plain[i] != instrumented[i] {
			t.Fatalf("slot %d: %d != %d", i, plain[i], instrumented[i])
		}
	}
}
