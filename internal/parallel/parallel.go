// Package parallel is the shared bounded worker pool used by the
// pipeline's hot paths: comparison-vector construction, the SEL phase,
// classifier batch prediction, and the experiment grids.
//
// Every helper takes an explicit worker count (0 means
// runtime.GOMAXPROCS(0)) and distributes an index range [0, n) over at
// most that many goroutines. Determinism is by construction: callers
// write results into index-addressed slots, so the output is bitwise
// identical regardless of the worker count or the order in which
// workers drain the range. Panics inside worker functions are captured
// and re-raised in the calling goroutine as a *Panic carrying the
// original value and the worker's stack trace.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Workers resolves a requested worker count: n > 0 is returned as-is,
// anything else means "one worker per available CPU"
// (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Panic is raised in the caller when a worker function panics. Value
// is the worker's original panic value; Stack is the worker
// goroutine's stack at the time of the panic (the re-raise otherwise
// loses it).
type Panic struct {
	Value any
	Stack []byte
}

// Error implements error so recovered values can be wrapped directly.
func (p *Panic) Error() string {
	return fmt.Sprintf("parallel: worker panicked: %v\n%s", p.Value, p.Stack)
}

// ForEach invokes fn(i) exactly once for every i in [0, n) from at
// most workers goroutines. Indices are handed out dynamically, so
// heterogeneous per-index costs (e.g. experiment grid cells) balance
// across workers. With workers <= 1 (or n <= 1) it degenerates to a
// plain serial loop on the calling goroutine.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		recordSerial(n)
		return
	}

	// Scheduling bookkeeping for Stats() and the optional obs
	// histograms. Timing only ever observes what the deterministic
	// index-slot protocol already did, so instrumented and
	// uninstrumented runs produce bitwise identical results.
	callStart := time.Now()
	stats.calls.Add(1)
	m := metricsPtr.Load()

	var (
		next atomic.Int64
		wg   sync.WaitGroup
		once sync.Once
		pc   *Panic
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			var busy time.Duration
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { pc = &Panic{Value: r, Stack: debug.Stack()} })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				taskStart := time.Now()
				raiseMax(stats.inFlight.Add(1))
				fn(i)
				stats.inFlight.Add(-1)
				d := time.Since(taskStart)
				busy += d
				stats.tasks.Add(1)
				stats.queueWaitNanos.Add(int64(taskStart.Sub(callStart)))
				if m != nil {
					m.QueueWait.Observe(taskStart.Sub(callStart).Seconds())
					m.TaskLatency.Observe(d.Seconds())
				}
			}
			if m != nil {
				if wall := time.Since(callStart); wall > 0 {
					m.WorkerUtilization.Observe(float64(busy) / float64(wall))
				}
			}
		}()
	}
	wg.Wait()
	if pc != nil {
		panic(pc)
	}
}

// ForEachChunk partitions [0, n) into at most workers contiguous
// chunks and invokes fn(lo, hi) for each. Chunking suits uniform
// per-index costs (rows of a feature matrix) where a tight local loop
// beats per-index dispatch.
func ForEachChunk(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		recordSerial(1)
		return
	}
	chunk := (n + workers - 1) / workers
	nChunks := (n + chunk - 1) / chunk
	ForEach(workers, nChunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// Map returns out of length n with out[i] = fn(i), computed on at most
// workers goroutines.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// FirstError returns the lowest-indexed non-nil error of a per-slot
// error slice — the standard way grid fan-outs report failures, so
// that error selection is as deterministic as the results themselves
// (the winning error never depends on which worker finished first).
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
