package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestForEachCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			counts := make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachChunkCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 0} {
		for _, n := range []int{0, 1, 5, 97, 1024} {
			counts := make([]int32, n)
			ForEachChunk(workers, n, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("workers=%d n=%d: empty chunk [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 500
	fn := func(i int) int { return i*i + 3 }
	want := Map(1, n, fn)
	for _, workers := range []int{2, 4, 16, 0} {
		got := Map(workers, n, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
				p, ok := r.(*Panic)
				if workers <= 1 {
					// The serial path runs fn on the caller's goroutine, so
					// the original panic value surfaces untouched.
					if r != "boom" {
						t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
					}
					return
				}
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *Panic", workers, r)
				}
				if p.Value != "boom" {
					t.Errorf("workers=%d: panic value %v, want boom", workers, p.Value)
				}
				if len(p.Stack) == 0 {
					t.Errorf("workers=%d: panic lost the worker stack", workers)
				}
				if p.Error() == "" {
					t.Errorf("empty Error()")
				}
			}()
			ForEach(workers, 100, func(i int) {
				if i == 37 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachWorkersExceedingRange(t *testing.T) {
	// More workers than indices must not deadlock or skip work.
	var total atomic.Int64
	ForEach(64, 3, func(i int) { total.Add(int64(i) + 1) })
	if total.Load() != 6 {
		t.Errorf("total = %d, want 6", total.Load())
	}
}

func TestFirstError(t *testing.T) {
	if err := FirstError(nil); err != nil {
		t.Errorf("FirstError(nil) = %v, want nil", err)
	}
	if err := FirstError(make([]error, 5)); err != nil {
		t.Errorf("all-nil slots: %v, want nil", err)
	}
	e2, e4 := errors.New("cell 2"), errors.New("cell 4")
	errs := []error{nil, nil, e2, nil, e4}
	if err := FirstError(errs); err != e2 {
		t.Errorf("FirstError = %v, want the lowest-indexed error %v", err, e2)
	}
}
