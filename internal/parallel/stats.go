package parallel

import (
	"sync/atomic"
	"time"

	"transer/internal/obs"
)

// PoolStats is a point-in-time snapshot of the package's execution
// counters: how many ForEach/ForEachChunk/Map calls ran, how many
// tasks they executed, the highest number of tasks ever in flight
// simultaneously, and the total queue wait (the sum over parallel
// tasks of the delay between call start and task start; serial calls
// queue nothing). It exists so the obs layer and tests read a stable
// API instead of reaching into scheduling internals.
type PoolStats struct {
	Calls       int64
	Tasks       int64
	MaxInFlight int64
	QueueWait   time.Duration
}

var stats struct {
	calls, tasks, inFlight, maxInFlight, queueWaitNanos atomic.Int64
}

// Stats snapshots the package counters. Counters accumulate from
// process start (or the last ResetStats).
func Stats() PoolStats {
	return PoolStats{
		Calls:       stats.calls.Load(),
		Tasks:       stats.tasks.Load(),
		MaxInFlight: stats.maxInFlight.Load(),
		QueueWait:   time.Duration(stats.queueWaitNanos.Load()),
	}
}

// ResetStats zeroes the package counters (test isolation).
func ResetStats() {
	stats.calls.Store(0)
	stats.tasks.Store(0)
	stats.inFlight.Store(0)
	stats.maxInFlight.Store(0)
	stats.queueWaitNanos.Store(0)
}

// PublishStats folds the current snapshot into a metrics registry as
// gauges (nil-safe), using the package's metric name prefix.
func PublishStats(reg *obs.Registry) {
	st := Stats()
	reg.Gauge("parallel.calls_total").Set(float64(st.Calls))
	reg.Gauge("parallel.tasks_total").Set(float64(st.Tasks))
	reg.Gauge("parallel.max_in_flight").Set(float64(st.MaxInFlight))
	reg.Gauge("parallel.queue_wait_seconds_total").Set(st.QueueWait.Seconds())
}

// Metrics holds the histograms the worker pool feeds when observability
// is enabled: per-task queue wait and latency (seconds) and per-worker
// busy fraction over each parallel call.
type Metrics struct {
	QueueWait         *obs.Histogram
	TaskLatency       *obs.Histogram
	WorkerUtilization *obs.Histogram
}

var metricsPtr atomic.Pointer[Metrics]

// RegisterMetrics installs pool histograms backed by reg; a nil
// registry uninstalls them. The registered names are
// parallel.queue_wait_seconds, parallel.task_seconds and
// parallel.worker_utilization.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		metricsPtr.Store(nil)
		return
	}
	metricsPtr.Store(&Metrics{
		QueueWait:         reg.Histogram("parallel.queue_wait_seconds", obs.SecondsBuckets()),
		TaskLatency:       reg.Histogram("parallel.task_seconds", obs.SecondsBuckets()),
		WorkerUtilization: reg.Histogram("parallel.worker_utilization", obs.RatioBuckets()),
	})
}

// recordSerial accounts for a degenerate (single-goroutine) call.
func recordSerial(n int) {
	stats.calls.Add(1)
	stats.tasks.Add(int64(n))
	raiseMax(1)
}

// raiseMax lifts the max-in-flight high-water mark to at least cur.
func raiseMax(cur int64) {
	for {
		old := stats.maxInFlight.Load()
		if cur <= old || stats.maxInFlight.CompareAndSwap(old, cur) {
			return
		}
	}
}
