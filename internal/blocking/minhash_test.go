package blocking

import (
	"fmt"
	"math/rand"
	"testing"

	"transer/internal/dataset"
)

func testDBs() (*dataset.Database, *dataset.Database) {
	sch := dataset.Schema{Attributes: []dataset.Attribute{
		{Name: "name", Type: dataset.AttrName},
		{Name: "city", Type: dataset.AttrText},
	}}
	a := &dataset.Database{Name: "A", Schema: sch, Records: []dataset.Record{
		{ID: "a1", EntityID: "e1", Values: []string{"john smith", "portree"}},
		{ID: "a2", EntityID: "e2", Values: []string{"mary macleod", "kilmarnock"}},
		{ID: "a3", EntityID: "e3", Values: []string{"william fraser", "irvine"}},
	}}
	b := &dataset.Database{Name: "B", Schema: sch, Records: []dataset.Record{
		{ID: "b1", EntityID: "e1", Values: []string{"jon smith", "portree"}},
		{ID: "b2", EntityID: "e2", Values: []string{"mary mcleod", "kilmarnok"}},
		{ID: "b3", EntityID: "e9", Values: []string{"zzz qqq", "xxxyyy"}},
	}}
	return a, b
}

func TestCandidatePairsFindsNearDuplicates(t *testing.T) {
	a, b := testDBs()
	pairs := CandidatePairs(a, b, MinHashConfig{Seed: 1})
	ps := make(dataset.PairSet)
	for _, p := range pairs {
		ps[p] = true
	}
	if !ps.Contains(0, 0) {
		t.Errorf("expected (a1,b1) candidate pair, got %v", pairs)
	}
	if !ps.Contains(1, 1) {
		t.Errorf("expected (a2,b2) candidate pair, got %v", pairs)
	}
	// The junk record should not pair with everything.
	if ps.Contains(0, 2) && ps.Contains(1, 2) && ps.Contains(2, 2) {
		t.Errorf("junk record paired with every record")
	}
}

func TestCandidatePairsDeterministic(t *testing.T) {
	a, b := testDBs()
	p1 := CandidatePairs(a, b, MinHashConfig{Seed: 7})
	p2 := CandidatePairs(a, b, MinHashConfig{Seed: 7})
	if len(p1) != len(p2) {
		t.Fatalf("pair counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, p1[i], p2[i])
		}
	}
}

func TestCandidatePairsEmptyDB(t *testing.T) {
	a, _ := testDBs()
	empty := &dataset.Database{Name: "E", Schema: a.Schema}
	if pairs := CandidatePairs(a, empty, MinHashConfig{Seed: 1}); len(pairs) != 0 {
		t.Errorf("pairs against empty db: %v", pairs)
	}
	if pairs := CandidatePairs(empty, empty, MinHashConfig{Seed: 1}); len(pairs) != 0 {
		t.Errorf("pairs between empty dbs: %v", pairs)
	}
}

// syntheticPair builds two databases of near-duplicate word-composed
// records plus unrelated fillers, without depending on the datagen
// package (which itself uses blocking).
func syntheticPair(n int, seed int64) (*dataset.Database, *dataset.Database, dataset.PairSet) {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
		"golf", "hotel", "india", "juliet", "kilo", "lima", "mike", "november"}
	sch := dataset.Schema{Attributes: []dataset.Attribute{{Name: "text", Type: dataset.AttrText}}}
	a := &dataset.Database{Name: "A", Schema: sch}
	b := &dataset.Database{Name: "B", Schema: sch}
	for i := 0; i < n; i++ {
		var toks []string
		for w := 0; w < 5; w++ {
			toks = append(toks, words[rng.Intn(len(words))])
		}
		val := fmt.Sprintf("%s %s %s %s %s x%d", toks[0], toks[1], toks[2], toks[3], toks[4], i)
		ent := fmt.Sprintf("e%d", i)
		a.Records = append(a.Records, dataset.Record{ID: fmt.Sprintf("a%d", i), EntityID: ent, Values: []string{val}})
		// B side: same value with one token swapped (a near duplicate).
		dup := fmt.Sprintf("%s %s %s %s %s x%d", toks[0], toks[1], words[rng.Intn(len(words))], toks[3], toks[4], i)
		b.Records = append(b.Records, dataset.Record{ID: fmt.Sprintf("b%d", i), EntityID: ent, Values: []string{dup}})
	}
	return a, b, dataset.GroundTruth(a, b)
}

func TestBlockingRecallOnSyntheticData(t *testing.T) {
	a, b, truth := syntheticPair(300, 1)
	pairs := CandidatePairs(a, b, MinHashConfig{Seed: 1})
	pc := PairsCompleteness(pairs, truth)
	if pc < 0.8 {
		t.Errorf("blocking recall %.3f too low (|truth|=%d, |pairs|=%d)", pc, len(truth), len(pairs))
	}
	rr := ReductionRatio(pairs, a, b)
	if rr < 0.5 {
		t.Errorf("reduction ratio %.3f too low — blocking admits too many pairs", rr)
	}
}

func TestStandardBlocking(t *testing.T) {
	a, b := testDBs()
	pairs := StandardBlocking(a, b, SoundexKey(0))
	ps := make(dataset.PairSet)
	for _, p := range pairs {
		ps[p] = true
	}
	// john smith / jon smith share Soundex(first token of name)? Soundex
	// works on whole value; "john smith" -> J525... both sides should
	// match for smith-ish names.
	if !ps.Contains(0, 0) {
		t.Errorf("soundex blocking missed (a1,b1): %v", pairs)
	}
}

func TestPrefixKey(t *testing.T) {
	r := dataset.Record{Values: []string{"Kilmarnock Town", "x"}}
	if k := PrefixKey(0, 3)(r); k != "kil" {
		t.Errorf("PrefixKey = %q, want kil", k)
	}
	if k := PrefixKey(5, 3)(r); k != "" {
		t.Errorf("out-of-range attr should give empty key, got %q", k)
	}
	if k := PrefixKey(0, 3)(dataset.Record{Values: []string{""}}); k != "" {
		t.Errorf("empty value should give empty key")
	}
}

func TestPairsCompletenessEdge(t *testing.T) {
	if pc := PairsCompleteness(nil, dataset.PairSet{}); pc != 1 {
		t.Errorf("empty truth should give completeness 1, got %v", pc)
	}
	truth := dataset.PairSet{{A: 0, B: 0}: true, {A: 1, B: 1}: true}
	pairs := []dataset.Pair{{A: 0, B: 0}}
	if pc := PairsCompleteness(pairs, truth); pc != 0.5 {
		t.Errorf("completeness = %v, want 0.5", pc)
	}
}

func TestReductionRatioEdge(t *testing.T) {
	a := &dataset.Database{}
	if rr := ReductionRatio(nil, a, a); rr != 0 {
		t.Errorf("empty dbs should give 0, got %v", rr)
	}
}

func TestMinHashConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for NumHashes not divisible by Bands")
		}
	}()
	a, b := testDBs()
	CandidatePairs(a, b, MinHashConfig{NumHashes: 10, Bands: 3})
}

func TestSignatureEmptyShingles(t *testing.T) {
	h := newMinHasher(8, 1)
	sig := h.signature(map[uint64]bool{})
	for _, v := range sig {
		if v != ^uint64(0) {
			t.Errorf("empty shingle set should give max signature")
		}
	}
}

func BenchmarkCandidatePairs(b *testing.B) {
	dbA, dbB, _ := syntheticPair(500, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CandidatePairs(dbA, dbB, MinHashConfig{Seed: 1})
	}
}
