// Package blocking reduces the quadratic record pair comparison space
// to a candidate set B ⊂ R × R. The primary technique is MinHash-based
// locality sensitive hashing over character q-gram shingles, the
// blocking approach the paper uses (Section 5.1.1, [47]): records whose
// shingle sets have high Jaccard similarity collide in at least one
// LSH band with high probability and become a candidate pair.
//
// A standard attribute-value blocking-key scheme is also provided as a
// cheap alternative and as a cross-check in tests.
package blocking

import (
	"hash/fnv"
	"math/rand"

	"transer/internal/dataset"
	"transer/internal/strutil"
)

// MinHashConfig parameterises LSH blocking.
type MinHashConfig struct {
	// NumHashes is the MinHash signature length; it must be divisible
	// by Bands. Default 64.
	NumHashes int
	// Bands is the number of LSH bands; rows per band r =
	// NumHashes/Bands sets the similarity threshold ≈ (1/Bands)^(1/r).
	// Default 16.
	Bands int
	// Q is the q-gram length for shingling. Default 3.
	Q int
	// Attrs selects which attribute indices contribute shingles; nil
	// means all attributes.
	Attrs []int
	// Seed drives the random hash coefficients. Blocking with equal
	// configs is deterministic.
	Seed int64
	// MaxBucketSize skips LSH buckets larger than this (stop-word
	// buckets that would explode the candidate set); 0 means 200 and a
	// negative value disables the cap entirely. Uncapped blocking is
	// what the streaming equivalence contract builds on: candidate
	// membership then depends only on record content, never on how many
	// other records happen to share a bucket (see internal/stream).
	MaxBucketSize int
}

// Normalized returns the config with every defaulted field resolved
// to its effective value. Two configs that block identically normalise
// to the same value, which is what cache fingerprints must hash (the
// zero config and an explicitly spelled-out default are the same
// blocking computation).
func (c MinHashConfig) Normalized() MinHashConfig { return c.withDefaults() }

func (c MinHashConfig) withDefaults() MinHashConfig {
	if c.NumHashes == 0 {
		c.NumHashes = 60
	}
	if c.Bands == 0 {
		// r = 3 rows per band puts the LSH threshold near Jaccard 0.37,
		// admitting the moderately similar non-matches that give ER its
		// characteristic class imbalance (Table 1: ~2/3 non-matches)
		// without exploding the candidate set.
		c.Bands = 20
	}
	if c.Q == 0 {
		c.Q = 3
	}
	if c.MaxBucketSize == 0 {
		c.MaxBucketSize = 200
	}
	if c.NumHashes%c.Bands != 0 {
		panic("blocking: NumHashes must be divisible by Bands")
	}
	return c
}

const mersennePrime = (1 << 61) - 1

// minHasher computes MinHash signatures with the standard family
// h_i(x) = (a_i * x + b_i) mod p.
type minHasher struct {
	a, b []uint64
}

func newMinHasher(n int, seed int64) *minHasher {
	rng := rand.New(rand.NewSource(seed))
	h := &minHasher{a: make([]uint64, n), b: make([]uint64, n)}
	for i := 0; i < n; i++ {
		h.a[i] = uint64(rng.Int63n(mersennePrime-1)) + 1
		h.b[i] = uint64(rng.Int63n(mersennePrime))
	}
	return h
}

// signature computes the MinHash signature of a shingle set. An empty
// set yields the all-max signature, which collides only with other
// empty sets.
func (h *minHasher) signature(shingles map[uint64]bool) []uint64 {
	sig := make([]uint64, len(h.a))
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for s := range shingles {
		x := s % mersennePrime
		for i := range sig {
			v := (h.a[i]*x + h.b[i]) % mersennePrime
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// shingleSet builds the hashed q-gram shingle set of a record over the
// selected attributes.
func shingleSet(r dataset.Record, attrs []int, q int) map[uint64]bool {
	set := make(map[uint64]bool)
	add := func(v string) {
		for _, g := range strutil.QGrams(v, q) {
			f := fnv.New64a()
			f.Write([]byte(g))
			set[f.Sum64()] = true
		}
	}
	if attrs == nil {
		for _, v := range r.Values {
			add(v)
		}
		return set
	}
	for _, j := range attrs {
		if j >= 0 && j < len(r.Values) {
			add(r.Values[j])
		}
	}
	return set
}

// bandKey hashes one signature band into a bucket key.
func bandKey(band int, sig []uint64) uint64 {
	f := fnv.New64a()
	var buf [8]byte
	buf[0] = byte(band)
	f.Write(buf[:1])
	for _, v := range sig {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		f.Write(buf[:])
	}
	return f.Sum64()
}

// CandidatePairs blocks two databases with MinHash LSH and returns the
// deduplicated candidate record pairs in deterministic order.
func CandidatePairs(a, b *dataset.Database, cfg MinHashConfig) []dataset.Pair {
	cfg = cfg.withDefaults()
	hasher := newMinHasher(cfg.NumHashes, cfg.Seed)
	rows := cfg.NumHashes / cfg.Bands

	type bucket struct{ aIDs, bIDs []int }
	buckets := make(map[uint64]*bucket)

	process := func(db *dataset.Database, side int) {
		for i, r := range db.Records {
			sig := hasher.signature(shingleSet(r, cfg.Attrs, cfg.Q))
			for band := 0; band < cfg.Bands; band++ {
				key := bandKey(band, sig[band*rows:(band+1)*rows])
				bk := buckets[key]
				if bk == nil {
					bk = &bucket{}
					buckets[key] = bk
				}
				if side == 0 {
					bk.aIDs = append(bk.aIDs, i)
				} else {
					bk.bIDs = append(bk.bIDs, i)
				}
			}
		}
	}
	process(a, 0)
	process(b, 1)

	set := make(dataset.PairSet)
	for _, bk := range buckets {
		if len(bk.aIDs) == 0 || len(bk.bIDs) == 0 {
			continue
		}
		if cfg.MaxBucketSize > 0 && len(bk.aIDs)+len(bk.bIDs) > cfg.MaxBucketSize {
			continue
		}
		for _, ai := range bk.aIDs {
			for _, bi := range bk.bIDs {
				set.Add(ai, bi)
			}
		}
	}
	return set.Sorted()
}

// KeyFunc maps a record to its blocking key; records with equal
// non-empty keys become candidates.
type KeyFunc func(r dataset.Record) string

// SoundexKey returns a KeyFunc that encodes the given attribute with
// Soundex — the classic phonetic blocking key for name attributes.
func SoundexKey(attr int) KeyFunc {
	return func(r dataset.Record) string {
		if attr < 0 || attr >= len(r.Values) {
			return ""
		}
		return strutil.Soundex(r.Values[attr])
	}
}

// PrefixKey returns a KeyFunc taking the first n lower-cased
// alphanumeric characters of the given attribute.
func PrefixKey(attr, n int) KeyFunc {
	return func(r dataset.Record) string {
		if attr < 0 || attr >= len(r.Values) {
			return ""
		}
		toks := strutil.Tokens(r.Values[attr])
		if len(toks) == 0 {
			return ""
		}
		s := toks[0]
		if len(s) > n {
			s = s[:n]
		}
		return s
	}
}

// StandardBlocking builds candidate pairs from records sharing a
// blocking key under any of the provided key functions.
func StandardBlocking(a, b *dataset.Database, keys ...KeyFunc) []dataset.Pair {
	set := make(dataset.PairSet)
	for _, key := range keys {
		index := make(map[string][]int)
		for i, r := range a.Records {
			if k := key(r); k != "" {
				index[k] = append(index[k], i)
			}
		}
		for j, r := range b.Records {
			k := key(r)
			if k == "" {
				continue
			}
			for _, i := range index[k] {
				set.Add(i, j)
			}
		}
	}
	return set.Sorted()
}

// PairsCompleteness returns the fraction of true matches retained by
// the candidate pairs (blocking recall), the standard blocking quality
// measure.
func PairsCompleteness(pairs []dataset.Pair, truth dataset.PairSet) float64 {
	if len(truth) == 0 {
		return 1
	}
	found := 0
	for _, p := range pairs {
		if truth[p] {
			found++
		}
	}
	return float64(found) / float64(len(truth))
}

// ReductionRatio returns 1 - |candidates| / |A×B|, the fraction of the
// full comparison space removed by blocking.
func ReductionRatio(pairs []dataset.Pair, a, b *dataset.Database) float64 {
	total := float64(len(a.Records)) * float64(len(b.Records))
	if total == 0 {
		return 0
	}
	return 1 - float64(len(pairs))/total
}
