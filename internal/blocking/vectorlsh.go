package blocking

import "math"

// VectorLSHConfig parameterises MinHash LSH over quantized feature
// vectors — the approximate-NN substrate of the SEL fast path
// (DESIGN.md §10). A vector becomes the token set
// {(coordinate index, round(value/Quant))}; vectors that agree on
// most quantized coordinates have high token-set Jaccard similarity
// and collide in at least one band with high probability, exactly the
// record-shingle scheme CandidatePairs uses.
type VectorLSHConfig struct {
	// NumHashes is the MinHash signature length; must be divisible by
	// Bands. Default 32.
	NumHashes int
	// Bands is the number of LSH bands. With the defaults r =
	// NumHashes/Bands = 2 rows per band, the collision threshold sits
	// near token Jaccard (1/Bands)^(1/r) ≈ 0.25 — permissive on
	// purpose, since false candidates are re-ranked exactly. Default 16.
	Bands int
	// Quant is the quantisation step; compare matrices in this
	// repository are quantized to a 0.05 grid (compare.Scheme), so the
	// default 0.05 makes quantisation lossless on them.
	Quant float64
	// Seed drives the random hash coefficients; equal configs hash
	// identically.
	Seed int64
}

func (c VectorLSHConfig) withDefaults() VectorLSHConfig {
	if c.NumHashes == 0 {
		c.NumHashes = 32
	}
	if c.Bands == 0 {
		c.Bands = 16
	}
	if c.Quant == 0 {
		c.Quant = 0.05
	}
	if c.NumHashes%c.Bands != 0 {
		panic("blocking: NumHashes must be divisible by Bands")
	}
	return c
}

// VectorLSH hashes quantized feature vectors into LSH band buckets.
// Construction is deterministic from the config; BandKeys is
// goroutine-safe.
type VectorLSH struct {
	hasher *minHasher
	bands  int
	rows   int
	quant  float64
}

// NewVectorLSH builds the hash family for the config.
func NewVectorLSH(cfg VectorLSHConfig) *VectorLSH {
	cfg = cfg.withDefaults()
	return &VectorLSH{
		hasher: newMinHasher(cfg.NumHashes, cfg.Seed),
		bands:  cfg.Bands,
		rows:   cfg.NumHashes / cfg.Bands,
		quant:  cfg.Quant,
	}
}

// Bands returns the number of band keys BandKeys emits per vector.
func (l *VectorLSH) Bands() int { return l.bands }

// BandKeys appends the Bands() LSH bucket keys of vec to dst and
// returns the extended slice. Vectors with equal quantized coordinate
// sets get equal keys in every band; in particular +0.0 and -0.0
// quantize identically. Safe for concurrent use.
func (l *VectorLSH) BandKeys(dst []uint64, vec []float64) []uint64 {
	sig := make([]uint64, len(l.hasher.a))
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for j, v := range vec {
		x := vecToken(j, v, l.quant) % mersennePrime
		for i := range sig {
			hv := (l.hasher.a[i]*x + l.hasher.b[i]) % mersennePrime
			if hv < sig[i] {
				sig[i] = hv
			}
		}
	}
	for band := 0; band < l.bands; band++ {
		dst = append(dst, bandKey(band, sig[band*l.rows:(band+1)*l.rows]))
	}
	return dst
}

// vecToken hashes one (coordinate index, quantisation level) pair
// into a MinHash token with a splitmix64 finaliser, so levels that
// differ in any direction yield unrelated tokens.
func vecToken(j int, v, quant float64) uint64 {
	var level int64
	switch {
	case math.IsNaN(v):
		// Conversion of NaN to int is platform-defined; pin it.
		level = math.MinInt64
	case math.IsInf(v, 1):
		level = math.MaxInt64
	case math.IsInf(v, -1):
		level = math.MinInt64 + 1
	default:
		r := math.Round(v / quant)
		// Clamp before converting: float→int overflow is
		// platform-defined in Go.
		switch {
		case r >= float64(math.MaxInt64):
			level = math.MaxInt64
		case r <= float64(math.MinInt64):
			level = math.MinInt64 + 1
		default:
			level = int64(r)
		}
	}
	z := uint64(j+1)*0x9e3779b97f4a7c15 ^ uint64(level)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
