package blocking

import (
	"fmt"
	"math"
	"testing"

	"transer/internal/dataset"
	"transer/internal/strutil"
)

func TestKMVExactBelowK(t *testing.T) {
	s := NewKMV(64)
	for i := 0; i < 40; i++ {
		s.AddToken(fmt.Sprintf("tok-%d", i))
	}
	if got := s.Estimate(); got != 40 {
		t.Fatalf("below-k estimate = %v, want exactly 40", got)
	}
	// Duplicates must not move the estimate.
	for i := 0; i < 40; i++ {
		s.AddToken(fmt.Sprintf("tok-%d", i))
	}
	if got := s.Estimate(); got != 40 {
		t.Fatalf("estimate after duplicates = %v, want 40", got)
	}
}

func TestKMVEstimateWithinTolerance(t *testing.T) {
	for _, n := range []int{500, 5000, 50000} {
		s := NewKMV(256)
		for i := 0; i < n; i++ {
			s.AddToken(fmt.Sprintf("token-%d", i))
		}
		got := s.Estimate()
		if rel := math.Abs(got-float64(n)) / float64(n); rel > 0.25 {
			t.Errorf("n=%d: estimate %v off by %.0f%%", n, got, rel*100)
		}
	}
}

func TestKMVDeterministic(t *testing.T) {
	build := func() float64 {
		s := NewKMV(128)
		for i := 0; i < 10000; i++ {
			s.AddToken(fmt.Sprintf("t%d", i%3000))
		}
		return s.Estimate()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("same stream produced different estimates: %v vs %v", a, b)
	}
}

func TestKMVMerged(t *testing.T) {
	a, b := NewKMV(256), NewKMV(256)
	// Disjoint halves of one universe: union ≈ 2000.
	for i := 0; i < 1000; i++ {
		a.AddToken(fmt.Sprintf("u-%d", i))
		b.AddToken(fmt.Sprintf("u-%d", i+1000))
	}
	got := a.Merged(b)
	if rel := math.Abs(got-2000) / 2000; rel > 0.25 {
		t.Errorf("union estimate %v off by %.0f%%", got, rel*100)
	}
	// Identical sketches: union estimate equals the single estimate.
	if got := a.Merged(a); got != a.Estimate() {
		t.Errorf("self-union %v != estimate %v", got, a.Estimate())
	}
}

func TestTokenSketchCountsTokens(t *testing.T) {
	sch := dataset.Schema{Attributes: []dataset.Attribute{
		{Name: "name", Type: dataset.AttrName},
		{Name: "note", Type: dataset.AttrText},
	}}
	db := &dataset.Database{Name: "D", Schema: sch, Records: []dataset.Record{
		{ID: "r0", Values: []string{"ada lovelace", "first programmer"}},
		{ID: "r1", Values: []string{"alan turing", "first programmer"}},
	}}
	s, tokens := TokenSketch(db, -1, 64)
	if tokens != 8 {
		t.Fatalf("token count = %d, want 8", tokens)
	}
	if got := s.Estimate(); got != 6 { // ada lovelace alan turing first programmer
		t.Fatalf("distinct estimate = %v, want 6", got)
	}
	// Single-attribute sketch only sees that column.
	s0, tok0 := TokenSketch(db, 0, 64)
	if tok0 != 4 || s0.Estimate() != 4 {
		t.Fatalf("attr-0 sketch: tokens=%d distinct=%v, want 4/4", tok0, s0.Estimate())
	}
}

// TestCanopyComparatorInjection pins the satellite contract: Canopy
// with a nil comparator behaves exactly like the exported default, and
// a caller-supplied comparator built from internal/strutil actually
// drives the blocking decisions.
func TestCanopyComparatorInjection(t *testing.T) {
	sch := dataset.Schema{Attributes: []dataset.Attribute{
		{Name: "title", Type: dataset.AttrText},
	}}
	a := &dataset.Database{Name: "A", Schema: sch, Records: []dataset.Record{
		{ID: "a0", Values: []string{"entity resolution at scale"}},
		{ID: "a1", Values: []string{"graph databases"}},
	}}
	b := &dataset.Database{Name: "B", Schema: sch, Records: []dataset.Record{
		{ID: "b0", Values: []string{"entity resolution"}},
		{ID: "b1", Values: []string{"stream processing"}},
	}}

	def := Canopy(a, b, nil, 0.3, 0.8)
	explicit := Canopy(a, b, JaccardRecords, 0.3, 0.8)
	if len(def) != len(explicit) {
		t.Fatalf("nil default and explicit JaccardRecords disagree: %v vs %v", def, explicit)
	}
	for i := range def {
		if def[i] != explicit[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, def[i], explicit[i])
		}
	}

	// Overlap coefficient scores subset titles 1.0 where Jaccard scores
	// 2/4: at loose=0.6 only the injected comparator pairs a0 with b0.
	overlap := RecordSim(strutil.OverlapCoefficient)
	strict := Canopy(a, b, nil, 0.6, 0.9)
	loose := Canopy(a, b, overlap, 0.6, 0.9)
	if contains(strict, dataset.Pair{A: 0, B: 0}) {
		t.Fatalf("jaccard at 0.6 unexpectedly paired the abbreviated title: %v", strict)
	}
	if !contains(loose, dataset.Pair{A: 0, B: 0}) {
		t.Fatalf("overlap comparator did not pair the abbreviated title: %v", loose)
	}
}

func contains(ps []dataset.Pair, p dataset.Pair) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}
