package blocking

// The online (incremental) form of MinHash-LSH blocking: records are
// inserted one at a time and candidate generation for a new record is
// a lookup of its band buckets, with no rebuild. The index is the
// blocking substrate of the live entity store (internal/stream).
//
// It computes exactly the signatures and band keys CandidatePairs
// computes, so for an uncapped configuration (MaxBucketSize < 0) the
// candidate relation is identical to batch blocking: two records are
// candidates iff they share at least one band bucket, a condition that
// depends only on record content and the configuration — never on
// insertion order. With a positive cap, a bucket stops producing
// candidates once admitting one more member would push it past the
// cap; since buckets only grow, every batch candidate pair is still
// found by the online index (the bucket was necessarily under the cap
// when the later record arrived), so capped online candidates are a
// superset of capped batch candidates. internal/stream documents what
// that means for streaming clusterings.

import (
	"encoding/binary"
	"io"
	"sort"

	"transer/internal/dataset"
)

// Signature is one record's MinHash signature under an Index's
// configuration.
type Signature []uint64

// Index is an incrementally maintained MinHash-LSH blocking index.
// Records are identified by their insertion sequence (0, 1, 2, ...).
// The zero value is not usable; construct with NewIndex. Not safe for
// concurrent use — the owning store serialises access.
type Index struct {
	cfg    MinHashConfig
	hasher *minHasher
	rows   int

	buckets map[uint64][]int
	n       int
}

// NewIndex builds an empty online index with the given configuration
// (zero fields resolve to the package defaults, as in CandidatePairs).
func NewIndex(cfg MinHashConfig) *Index {
	cfg = cfg.withDefaults()
	return &Index{
		cfg:     cfg,
		hasher:  newMinHasher(cfg.NumHashes, cfg.Seed),
		rows:    cfg.NumHashes / cfg.Bands,
		buckets: make(map[uint64][]int),
	}
}

// Config returns the index's effective (defaulted) configuration.
func (ix *Index) Config() MinHashConfig { return ix.cfg }

// Len returns the number of inserted records.
func (ix *Index) Len() int { return ix.n }

// Signature computes the MinHash signature of a record. The signature
// depends only on the record's values and the configuration, so it can
// be computed once and reused for both Candidates and Add.
func (ix *Index) Signature(r dataset.Record) Signature {
	return Signature(ix.hasher.signature(shingleSet(r, ix.cfg.Attrs, ix.cfg.Q)))
}

// bandKeys returns the signature's per-band bucket keys.
func (ix *Index) bandKeys(sig Signature) []uint64 {
	keys := make([]uint64, ix.cfg.Bands)
	for band := 0; band < ix.cfg.Bands; band++ {
		keys[band] = bandKey(band, sig[band*ix.rows:(band+1)*ix.rows])
	}
	return keys
}

// Candidates returns the ids of previously inserted records sharing at
// least one band bucket with the signature, deduplicated and sorted
// ascending. Buckets that admitting the probe would push past the
// bucket cap contribute nothing (cap <= 0 after defaulting means the
// configured default; negative disables the cap).
func (ix *Index) Candidates(sig Signature) []int {
	var seen map[int]bool
	for _, key := range ix.bandKeys(sig) {
		members := ix.buckets[key]
		if len(members) == 0 {
			continue
		}
		if ix.cfg.MaxBucketSize > 0 && len(members)+1 > ix.cfg.MaxBucketSize {
			continue
		}
		if seen == nil {
			seen = make(map[int]bool, len(members))
		}
		for _, id := range members {
			seen[id] = true
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Add inserts the signature into every band bucket and returns the
// record's assigned id (its insertion sequence). Buckets keep growing
// past any cap — the cap is applied at candidate-generation time, as
// batch blocking applies it at pair-emission time.
func (ix *Index) Add(sig Signature) int {
	id := ix.n
	ix.n++
	for _, key := range ix.bandKeys(sig) {
		ix.buckets[key] = append(ix.buckets[key], id)
	}
	return id
}

// WriteFingerprint writes a canonical rendering of the index state —
// configuration shape plus every bucket (sorted by key) with its
// member ids in insertion order — so stores can include the index in
// their state fingerprints. Two indexes fed the same records in the
// same order write identical bytes.
func (ix *Index) WriteFingerprint(w io.Writer) error {
	var buf [8]byte
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := w.Write(buf[:])
		return err
	}
	for _, v := range []uint64{
		uint64(ix.cfg.NumHashes), uint64(ix.cfg.Bands), uint64(ix.cfg.Q),
		uint64(int64(ix.cfg.Seed)), uint64(int64(ix.cfg.MaxBucketSize)), uint64(ix.n),
	} {
		if err := writeU64(v); err != nil {
			return err
		}
	}
	keys := make([]uint64, 0, len(ix.buckets))
	for k := range ix.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if err := writeU64(k); err != nil {
			return err
		}
		members := ix.buckets[k]
		if err := writeU64(uint64(len(members))); err != nil {
			return err
		}
		for _, id := range members {
			if err := writeU64(uint64(id)); err != nil {
				return err
			}
		}
	}
	return nil
}
