package blocking

import (
	"sort"

	"transer/internal/dataset"
	"transer/internal/strutil"
)

// SortedNeighbourhood implements the classic sorted neighbourhood
// blocking method: records from both databases are sorted together by
// a sorting key, and a window of size w slides over the combined
// order; every cross-database pair inside a window becomes a
// candidate. It complements MinHash-LSH when a natural sort key exists
// (surname, title).
//
// The window must be at least 2; keyFn may map several records to the
// same key (ties are ordered A-side before B-side, then by record
// index, for determinism).
func SortedNeighbourhood(a, b *dataset.Database, keyFn KeyFunc, window int) []dataset.Pair {
	if window < 2 {
		window = 2
	}
	type entry struct {
		key  string
		side int // 0 = A, 1 = B
		idx  int
	}
	entries := make([]entry, 0, len(a.Records)+len(b.Records))
	for i, r := range a.Records {
		if k := keyFn(r); k != "" {
			entries = append(entries, entry{k, 0, i})
		}
	}
	for i, r := range b.Records {
		if k := keyFn(r); k != "" {
			entries = append(entries, entry{k, 1, i})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		if entries[i].side != entries[j].side {
			return entries[i].side < entries[j].side
		}
		return entries[i].idx < entries[j].idx
	})
	set := make(dataset.PairSet)
	for i := range entries {
		hi := i + window
		if hi > len(entries) {
			hi = len(entries)
		}
		for j := i + 1; j < hi; j++ {
			ei, ej := entries[i], entries[j]
			switch {
			case ei.side == 0 && ej.side == 1:
				set.Add(ei.idx, ej.idx)
			case ei.side == 1 && ej.side == 0:
				set.Add(ej.idx, ei.idx)
			}
		}
	}
	return set.Sorted()
}

// Canopy implements canopy clustering blocking over a cheap similarity:
// repeatedly pick an unprocessed A-side seed record, pair it with every
// B-side record whose cheap similarity is at least loose, and mark
// B-side records above tight as consumed. The cheap similarity is
// token Jaccard over the record's concatenated values by default (pass
// nil).
func Canopy(a, b *dataset.Database, sim func(x, y dataset.Record) float64, loose, tight float64) []dataset.Pair {
	if sim == nil {
		sim = jaccardRecords
	}
	if tight < loose {
		tight = loose
	}
	set := make(dataset.PairSet)
	consumed := make([]bool, len(b.Records))
	for i, ra := range a.Records {
		for j, rb := range b.Records {
			if consumed[j] {
				continue
			}
			s := sim(ra, rb)
			if s >= loose {
				set.Add(i, j)
				if s >= tight {
					consumed[j] = true
				}
			}
		}
	}
	return set.Sorted()
}

func jaccardRecords(x, y dataset.Record) float64 {
	tok := func(r dataset.Record) map[string]bool {
		set := map[string]bool{}
		for _, v := range r.Values {
			for _, t := range strutil.Tokens(v) {
				set[t] = true
			}
		}
		return set
	}
	sa, sb := tok(x), tok(y)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	return float64(inter) / float64(len(sa)+len(sb)-inter)
}
