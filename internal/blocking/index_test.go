package blocking

import (
	"bytes"
	"math/rand"
	"testing"

	"transer/internal/dataset"
	"transer/internal/testkit"
)

// onlinePairs streams both databases' records through an Index in the
// given interleaved order and collects every (candidate, new) pair as
// an unordered pair over the combined id space.
func onlinePairs(records []dataset.Record, cfg MinHashConfig) map[[2]int]bool {
	ix := NewIndex(cfg)
	out := make(map[[2]int]bool)
	for _, r := range records {
		sig := ix.Signature(r)
		for _, c := range ix.Candidates(sig) {
			out[[2]int{c, ix.Len()}] = true
		}
		ix.Add(sig)
	}
	return out
}

// TestIndexMatchesBatchUncapped is the online/batch blocking
// equivalence at the pair level: with the cap disabled, streaming a
// dedup universe through the Index in any order yields exactly the
// batch CandidatePairs self-join candidate set.
func TestIndexMatchesBatchUncapped(t *testing.T) {
	testkit.Run(t, "blocking/index-batch-equivalence", 10, func(pt *testkit.T) {
		a, b := testkit.DatabasePair(pt.Rng, pt.Size)
		db := &dataset.Database{Name: "u", Schema: a.Schema}
		db.Records = append(db.Records, a.Records...)
		db.Records = append(db.Records, b.Records...)
		if len(db.Records) == 0 {
			return
		}
		cfg := MinHashConfig{Seed: pt.Seed, MaxBucketSize: -1}

		// Batch reference: self-join candidates as unordered index pairs.
		want := make(map[[2]int]bool)
		for _, p := range CandidatePairs(db, db, cfg) {
			if p.A < p.B {
				want[[2]int{p.A, p.B}] = true
			}
		}

		// Online, in natural order and in one shuffled order. The shuffled
		// run permutes ids, so map them back before comparing.
		got := onlinePairs(db.Records, cfg)
		if len(got) != len(want) {
			pt.Fatalf("online found %d pairs, batch %d", len(got), len(want))
		}
		for p := range got {
			if !want[p] {
				pt.Fatalf("online pair %v not a batch candidate", p)
			}
		}

		order := pt.Rng.Perm(len(db.Records))
		shuffled := make([]dataset.Record, len(order))
		for pos, idx := range order {
			shuffled[pos] = db.Records[idx]
		}
		gotShuffled := make(map[[2]int]bool)
		for p := range onlinePairs(shuffled, cfg) {
			i, j := order[p[0]], order[p[1]]
			if i > j {
				i, j = j, i
			}
			gotShuffled[[2]int{i, j}] = true
		}
		if len(gotShuffled) != len(want) {
			pt.Fatalf("shuffled online found %d pairs, batch %d", len(gotShuffled), len(want))
		}
		for p := range gotShuffled {
			if !want[p] {
				pt.Fatalf("shuffled online pair %v not a batch candidate", p)
			}
		}
	})
}

// TestIndexCappedSuperset: with a positive cap, online candidates are
// a superset of capped batch candidates (buckets only grow, so a
// bucket under the cap at batch end was under it at every insert).
func TestIndexCappedSuperset(t *testing.T) {
	testkit.Run(t, "blocking/index-capped-superset", 8, func(pt *testkit.T) {
		a, b := testkit.DatabasePair(pt.Rng, pt.Size)
		db := &dataset.Database{Name: "u", Schema: a.Schema}
		db.Records = append(db.Records, a.Records...)
		db.Records = append(db.Records, b.Records...)
		cfg := MinHashConfig{Seed: pt.Seed, MaxBucketSize: 6}

		got := onlinePairs(db.Records, cfg)
		for _, p := range CandidatePairs(db, db, cfg) {
			if p.A < p.B && !got[[2]int{p.A, p.B}] {
				pt.Fatalf("capped batch candidate %v missed by online index", p)
			}
		}
	})
}

// TestIndexFingerprintDeterministic: equal insert sequences write
// identical fingerprints; different sequences (almost surely) differ.
func TestIndexFingerprintDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, _ := testkit.DatabasePair(rng, 24)
	if len(a.Records) < 3 {
		t.Skip("generator produced too few records")
	}
	fp := func(records []dataset.Record) []byte {
		ix := NewIndex(MinHashConfig{Seed: 5})
		for _, r := range records {
			ix.Add(ix.Signature(r))
		}
		var buf bytes.Buffer
		if err := ix.WriteFingerprint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(fp(a.Records), fp(a.Records)) {
		t.Fatal("identical insert sequences fingerprint differently")
	}
	rev := make([]dataset.Record, len(a.Records))
	for i, r := range a.Records {
		rev[len(rev)-1-i] = r
	}
	if bytes.Equal(fp(a.Records), fp(rev)) {
		t.Fatal("reversed insert sequence fingerprints identically")
	}
}

// TestNegativeCapDisablesBatchCap: a bucket over the default cap still
// produces pairs when the cap is negative.
func TestNegativeCapDisablesBatchCap(t *testing.T) {
	sch := dataset.Schema{Attributes: []dataset.Attribute{{Name: "t", Type: dataset.AttrText}}}
	db := &dataset.Database{Name: "same", Schema: sch}
	for i := 0; i < 150; i++ {
		db.Records = append(db.Records, dataset.Record{
			ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), Values: []string{"identical shingle text value"},
		})
	}
	capped := CandidatePairs(db, db, MinHashConfig{Seed: 1})
	uncapped := CandidatePairs(db, db, MinHashConfig{Seed: 1, MaxBucketSize: -1})
	if len(capped) != 0 {
		t.Fatalf("default cap kept %d pairs from a 150-record stop bucket", len(capped))
	}
	if want := 150 * 150; len(uncapped) != want {
		t.Fatalf("uncapped pairs = %d, want %d", len(uncapped), want)
	}
}
