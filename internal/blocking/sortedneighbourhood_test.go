package blocking

import (
	"testing"

	"transer/internal/dataset"
)

func snDBs() (*dataset.Database, *dataset.Database) {
	sch := dataset.Schema{Attributes: []dataset.Attribute{{Name: "name", Type: dataset.AttrName}}}
	a := &dataset.Database{Name: "A", Schema: sch, Records: []dataset.Record{
		{ID: "a0", EntityID: "e0", Values: []string{"anderson"}},
		{ID: "a1", EntityID: "e1", Values: []string{"brown"}},
		{ID: "a2", EntityID: "e2", Values: []string{"campbell"}},
		{ID: "a3", EntityID: "e3", Values: []string{"zimmer"}},
	}}
	b := &dataset.Database{Name: "B", Schema: sch, Records: []dataset.Record{
		{ID: "b0", EntityID: "e0", Values: []string{"andersen"}},
		{ID: "b1", EntityID: "e1", Values: []string{"browne"}},
		{ID: "b2", EntityID: "e9", Values: []string{"macdonald"}},
	}}
	return a, b
}

func TestSortedNeighbourhoodWindow(t *testing.T) {
	a, b := snDBs()
	key := PrefixKey(0, 4)
	pairs := SortedNeighbourhood(a, b, key, 3)
	ps := make(dataset.PairSet)
	for _, p := range pairs {
		ps[p] = true
	}
	// anderson/andersen sort adjacently (prefix "ande") => candidate.
	if !ps.Contains(0, 0) {
		t.Errorf("adjacent sorted names not paired: %v", pairs)
	}
	// brown/browne adjacent too.
	if !ps.Contains(1, 1) {
		t.Errorf("brown/browne not paired: %v", pairs)
	}
	// zimmer (A) and macdonald (B) are far apart in sort order with a
	// window of 3 and 7 entries between them... check they are not
	// paired when the window clearly excludes them.
	if ps.Contains(3, 2) && len(pairs) < 6 {
		t.Errorf("distant keys paired unexpectedly")
	}
}

func TestSortedNeighbourhoodWindowTooSmall(t *testing.T) {
	a, b := snDBs()
	p1 := SortedNeighbourhood(a, b, PrefixKey(0, 4), 0) // clamps to 2
	p2 := SortedNeighbourhood(a, b, PrefixKey(0, 4), 2)
	if len(p1) != len(p2) {
		t.Errorf("window clamp failed: %d vs %d", len(p1), len(p2))
	}
}

func TestSortedNeighbourhoodLargerWindowSuperset(t *testing.T) {
	a, b := snDBs()
	small := SortedNeighbourhood(a, b, PrefixKey(0, 4), 2)
	big := SortedNeighbourhood(a, b, PrefixKey(0, 4), 5)
	set := make(dataset.PairSet)
	for _, p := range big {
		set[p] = true
	}
	for _, p := range small {
		if !set[p] {
			t.Fatalf("pair %v from small window missing in larger window", p)
		}
	}
	if len(big) < len(small) {
		t.Errorf("larger window produced fewer pairs")
	}
}

func TestSortedNeighbourhoodSkipsEmptyKeys(t *testing.T) {
	a, b := snDBs()
	a.Records[0].Values[0] = ""
	pairs := SortedNeighbourhood(a, b, PrefixKey(0, 4), 5)
	for _, p := range pairs {
		if p.A == 0 {
			t.Errorf("record with empty key was paired: %v", p)
		}
	}
}

func TestCanopy(t *testing.T) {
	a, b := snDBs()
	pairs := Canopy(a, b, nil, 0.3, 0.8)
	// Identical single-token names have Jaccard 1 only if the token
	// matches exactly; anderson vs andersen differ => Jaccard 0. Use a
	// custom similarity to exercise the mechanism.
	sim := func(x, y dataset.Record) float64 {
		if x.Values[0][0] == y.Values[0][0] {
			return 0.9
		}
		return 0
	}
	pairs = Canopy(a, b, sim, 0.5, 0.95)
	ps := make(dataset.PairSet)
	for _, p := range pairs {
		ps[p] = true
	}
	if !ps.Contains(0, 0) { // anderson/andersen share initial
		t.Errorf("canopy missed initial-sharing pair: %v", pairs)
	}
	if ps.Contains(3, 2) {
		t.Errorf("canopy paired unrelated records")
	}
}

func TestCanopyTightConsumes(t *testing.T) {
	sch := dataset.Schema{Attributes: []dataset.Attribute{{Name: "v", Type: dataset.AttrText}}}
	a := &dataset.Database{Schema: sch, Records: []dataset.Record{
		{ID: "a0", Values: []string{"x"}},
		{ID: "a1", Values: []string{"x"}},
	}}
	b := &dataset.Database{Schema: sch, Records: []dataset.Record{
		{ID: "b0", Values: []string{"x"}},
	}}
	sim := func(x, y dataset.Record) float64 { return 1 }
	// tight=loose=1: the first A record consumes b0, the second gets
	// nothing.
	pairs := Canopy(a, b, sim, 1, 1)
	if len(pairs) != 1 || pairs[0] != (dataset.Pair{A: 0, B: 0}) {
		t.Errorf("tight consumption failed: %v", pairs)
	}
	// loose below tight: b0 stays available for both.
	pairs = Canopy(a, b, sim, 0.5, 2)
	if len(pairs) != 2 {
		t.Errorf("loose canopy should pair both, got %v", pairs)
	}
}
