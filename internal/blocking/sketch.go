package blocking

import (
	"hash/fnv"
	"math"
	"sort"

	"transer/internal/dataset"
	"transer/internal/strutil"
)

// KMV is a k-minimum-values cardinality sketch over a hashed token
// stream: it keeps the k smallest 64-bit hashes seen and estimates the
// number of distinct tokens from the k-th smallest value. It reuses the
// FNV-1a token hashing that MinHash blocking shingles with, so a sketch
// and an LSH index built over the same values agree on what a "token"
// is. The zero value is not useful; construct with NewKMV.
//
// The estimator is the classical (k-1)/h_(k) with hashes mapped to
// (0, 1]: unbiased for distinct counts well above k, exact below k
// (fewer than k distinct hashes means the sketch has seen them all).
type KMV struct {
	k    int
	min  []uint64 // max-heap of the k smallest hashes seen
	seen map[uint64]bool
}

// NewKMV returns an empty sketch keeping the k smallest hashes
// (k <= 0 defaults to 64; larger k trades memory for accuracy —
// the relative standard error is about 1/sqrt(k-2)).
func NewKMV(k int) *KMV {
	if k <= 0 {
		k = 64
	}
	return &KMV{k: k, seen: make(map[uint64]bool)}
}

// AddToken hashes one token into the sketch.
func (s *KMV) AddToken(tok string) {
	f := fnv.New64a()
	f.Write([]byte(tok))
	s.AddHash(f.Sum64())
}

// AddHash inserts one pre-hashed token. Duplicate hashes are ignored,
// which is what makes the estimate a distinct count. The hash is run
// through a splitmix64 finaliser first: the estimator needs uniformity
// across the full 64-bit range, which raw FNV-1a of short tokens does
// not deliver.
func (s *KMV) AddHash(h uint64) {
	s.addMixed(mix64(h))
}

// mix64 is the splitmix64 finaliser (the same one vecToken uses).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// addMixed inserts an already-finalised hash (Merged re-inserts kept
// hashes and must not mix them a second time).
func (s *KMV) addMixed(h uint64) {
	// Map away the (vanishingly unlikely) zero hash so the estimator's
	// division is always defined.
	if h == 0 {
		h = 1
	}
	if s.seen[h] {
		return
	}
	if len(s.min) >= s.k && h >= s.min[0] {
		return
	}
	s.seen[h] = true
	s.min = append(s.min, h)
	s.up(len(s.min) - 1)
	if len(s.min) > s.k {
		evicted := s.min[0]
		last := len(s.min) - 1
		s.min[0] = s.min[last]
		s.min = s.min[:last]
		s.down(0)
		delete(s.seen, evicted)
	}
}

func (s *KMV) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.min[p] >= s.min[i] {
			return
		}
		s.min[p], s.min[i] = s.min[i], s.min[p]
		i = p
	}
}

func (s *KMV) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(s.min) && s.min[l] > s.min[big] {
			big = l
		}
		if r < len(s.min) && s.min[r] > s.min[big] {
			big = r
		}
		if big == i {
			return
		}
		s.min[i], s.min[big] = s.min[big], s.min[i]
		i = big
	}
}

// Hashes returns the kept minimum hashes in ascending order (a copy).
// These are the finalised (splitmix64-mixed) values, so hash lists from
// two sketches built with the same k are directly comparable: the
// model repository persists them in domain signatures and estimates
// token-set Jaccard from the lists alone (the classical KMV set
// estimator over the k smallest hashes of the union).
func (s *KMV) Hashes() []uint64 {
	out := make([]uint64, len(s.min))
	copy(out, s.min)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// K returns the sketch size parameter.
func (s *KMV) K() int { return s.k }

// Estimate returns the estimated number of distinct tokens added.
func (s *KMV) Estimate() float64 {
	if len(s.min) < s.k {
		// The sketch holds every distinct hash seen so far.
		return float64(len(s.min))
	}
	kth := float64(s.min[0]) / float64(math.MaxUint64)
	return float64(s.k-1) / kth
}

// Merged returns the estimated distinct-token count of the union of
// two sketches built with the same k (the sketches are not modified).
func (s *KMV) Merged(o *KMV) float64 {
	u := NewKMV(s.k)
	for _, h := range s.min {
		u.addMixed(h)
	}
	for _, h := range o.min {
		u.addMixed(h)
	}
	return u.Estimate()
}

// TokenSketch builds a KMV sketch of the word tokens of one attribute
// column (attr < 0 sketches every attribute) and also returns the
// total token count, so callers get both the distinct estimate and the
// mean tokens per record from one pass.
func TokenSketch(db *dataset.Database, attr, k int) (sketch *KMV, tokens int) {
	s := NewKMV(k)
	for _, r := range db.Records {
		for j, v := range r.Values {
			if attr >= 0 && j != attr {
				continue
			}
			for _, t := range strutil.Tokens(v) {
				s.AddToken(t)
				tokens++
			}
		}
	}
	return s, tokens
}

// JaccardRecords is the cheap record-level similarity Canopy blocking
// defaults to: word-token Jaccard over the records' concatenated
// values. Exported so planners can pass it explicitly (or substitute a
// comparator built from internal/strutil) rather than relying on the
// nil-default.
func JaccardRecords(x, y dataset.Record) float64 { return jaccardRecords(x, y) }

// RecordSim lifts an attribute-value similarity (an
// internal/strutil-style func(string, string) float64) to a record
// comparator usable with Canopy: the records' non-empty values are
// joined with single spaces and compared once. Deterministic in the
// record contents only.
func RecordSim(sim func(a, b string) float64) func(x, y dataset.Record) float64 {
	return func(x, y dataset.Record) float64 {
		return sim(joinValues(x), joinValues(y))
	}
}

func joinValues(r dataset.Record) string {
	n := 0
	for _, v := range r.Values {
		n += len(v) + 1
	}
	buf := make([]byte, 0, n)
	for _, v := range r.Values {
		if v == "" {
			continue
		}
		if len(buf) > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, v...)
	}
	return string(buf)
}
