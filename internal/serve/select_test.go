package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"transer/internal/compare"
	"transer/internal/ml/logreg"
	"transer/internal/model"
	"transer/internal/repo"
	"transer/internal/testkit"
)

// trainedArtifact builds a signed artifact the way cmd/transer
// -model-out does: trained on a generated pair, with the training
// domain's signature in the provenance. All seeds share testkit's
// schema, so any two artifacts are ensemble-compatible.
func trainedArtifact(tb testing.TB, seed int64, name string) *model.Artifact {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	a, b := testkit.DatabasePair(rng, 30)
	scheme := compare.DefaultScheme(a.Schema)
	var x [][]float64
	var y []int
	for _, ra := range a.Records {
		for _, rb := range b.Records {
			x = append(x, scheme.Pair(ra, rb))
			if ra.EntityID == rb.EntityID {
				y = append(y, 1)
			} else {
				y = append(y, 0)
			}
		}
	}
	clf := logreg.New(logreg.Config{})
	if err := clf.Fit(x, y); err != nil {
		tb.Fatalf("Fit: %v", err)
	}
	art, err := model.New(name, clf, a.Schema, scheme)
	if err != nil {
		tb.Fatalf("model.New: %v", err)
	}
	art.Provenance.SourceName = name + "-source"
	art.Provenance.TargetName = name + "-target"
	art.Provenance.Signature = repo.BuildSignature(a, b, x)
	return art
}

// catalogServer builds a server whose active model is art0 and whose
// catalog holds all given artifacts.
func catalogServer(tb testing.TB, arts ...*model.Artifact) (*Server, *repo.Catalog) {
	tb.Helper()
	c, err := repo.Open(tb.(interface{ TempDir() string }).TempDir())
	if err != nil {
		tb.Fatalf("repo.Open: %v", err)
	}
	for _, a := range arts {
		if _, err := c.Add(a); err != nil {
			tb.Fatalf("Add: %v", err)
		}
	}
	m, err := model.NewMatcher(arts[0])
	if err != nil {
		tb.Fatalf("NewMatcher: %v", err)
	}
	s := newTestServer(tb, Config{Registry: StaticRegistry(m), Catalog: c})
	return s, c
}

func TestModelsWithCatalog(t *testing.T) {
	a1 := trainedArtifact(t, 61, "active-model")
	a2 := trainedArtifact(t, 62, "shelf-model")
	s, _ := catalogServer(t, a1, a2)
	h := s.Handler()

	var models ModelsResponse
	if w := getJSON(t, h, "/v1/models", &models); w.Code != http.StatusOK {
		t.Fatalf("GET /v1/models: %d", w.Code)
	}
	// Active first (the pre-repository shape), catalog appended, and
	// the active model — also catalogued — not listed twice.
	if len(models.Models) != 2 {
		t.Fatalf("listed %d models, want active + 1 catalog entry: %+v", len(models.Models), models)
	}
	if models.Models[0].Source != "active" || models.Models[0].Name != "active-model" {
		t.Fatalf("head of listing is not the active model: %+v", models.Models[0])
	}
	if models.Models[1].Source != "catalog" || models.Models[1].Name != "shelf-model" {
		t.Fatalf("catalog entry malformed: %+v", models.Models[1])
	}
}

func TestSelectEndpoint(t *testing.T) {
	a1 := trainedArtifact(t, 71, "active-model")
	a2 := trainedArtifact(t, 72, "shelf-model")
	s, _ := catalogServer(t, a1, a2)
	h := s.Handler()

	// Sample records of the "new target domain" (same generator family
	// as a1's training data, so a1 should rank first).
	rng := rand.New(rand.NewSource(71))
	da, dbb := testkit.DatabasePair(rng, 25)
	payloadOf := func(values []string) RecordPayload {
		p := RecordPayload{}
		for i, attr := range da.Schema.Attributes {
			p[attr.Name] = values[i]
		}
		return p
	}
	req := SelectRequest{K: 2}
	for _, r := range da.Records[:10] {
		req.A = append(req.A, payloadOf(r.Values))
	}
	for _, r := range dbb.Records[:10] {
		req.B = append(req.B, payloadOf(r.Values))
	}
	w := postJSON(t, h, "/v1/models/select", req)
	if w.Code != http.StatusOK {
		t.Fatalf("select: %d: %s", w.Code, w.Body.String())
	}
	var resp SelectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Schema != SelectSchemaVersion {
		t.Fatalf("schema %q", resp.Schema)
	}
	if len(resp.Members) != 2 || len(resp.Ranking) != 2 {
		t.Fatalf("members=%d ranking=%d, want 2/2", len(resp.Members), len(resp.Ranking))
	}
	members, err := repo.ParseSelector(resp.Selector)
	if err != nil {
		t.Fatalf("returned selector %q does not parse: %v", resp.Selector, err)
	}
	if members[0] != resp.Members[0] {
		t.Fatalf("selector %q disagrees with members %+v", resp.Selector, resp.Members)
	}

	// The returned selector must be directly usable on /v1/match.
	mw := postJSON(t, h, "/v1/match?model="+resp.Selector, samplePair())
	if mw.Code != http.StatusOK {
		t.Fatalf("match with selected ensemble: %d: %s", mw.Code, mw.Body.String())
	}

	// A precomputed signature works in place of records.
	sig := a2.Provenance.Signature
	w = postJSON(t, h, "/v1/models/select", SelectRequest{Signature: sig})
	if w.Code != http.StatusOK {
		t.Fatalf("select by signature: %d: %s", w.Code, w.Body.String())
	}
	var bySig SelectResponse
	json.Unmarshal(w.Body.Bytes(), &bySig)
	if len(bySig.Members) != 1 {
		t.Fatalf("k=1 select returned %d members", len(bySig.Members))
	}

	// Signature AND records is ambiguous; neither is empty.
	if w := postJSON(t, h, "/v1/models/select", SelectRequest{Signature: sig, A: req.A}); w.Code != http.StatusBadRequest {
		t.Fatalf("signature+records: %d, want 400", w.Code)
	}
	if w := postJSON(t, h, "/v1/models/select", SelectRequest{}); w.Code != http.StatusBadRequest {
		t.Fatalf("empty select: %d, want 400", w.Code)
	}
}

func TestMatchModelSelector(t *testing.T) {
	a1 := trainedArtifact(t, 81, "active-model")
	a2 := trainedArtifact(t, 82, "shelf-model")
	s, _ := catalogServer(t, a1, a2)
	h := s.Handler()
	pair := samplePair()

	// No selector and the active model's full fingerprint (and a
	// prefix) must be byte-identical responses.
	m1, _ := model.NewMatcher(a1)
	base := postJSON(t, h, "/v1/match", pair)
	if base.Code != http.StatusOK {
		t.Fatalf("match: %d: %s", base.Code, base.Body.String())
	}
	for _, sel := range []string{m1.Fingerprint(), m1.Fingerprint()[:12]} {
		w := postJSON(t, h, "/v1/match?model="+sel, pair)
		if w.Code != http.StatusOK || w.Body.String() != base.Body.String() {
			t.Fatalf("model=%s response diverges from the bare path:\n%s\nvs\n%s", sel, w.Body.String(), base.Body.String())
		}
	}

	// Selecting the shelved model scores with it.
	m2, err := model.NewMatcher(a2)
	if err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, h, "/v1/match?model="+m2.Fingerprint(), pair)
	if w.Code != http.StatusOK {
		t.Fatalf("catalog model match: %d: %s", w.Code, w.Body.String())
	}
	var got MatchResponse
	json.Unmarshal(w.Body.Bytes(), &got)
	ra, _ := m2.RecordFromValues(pair.A)
	rb, _ := m2.RecordFromValues(pair.B)
	want := m2.Score([][]float64{m2.Vector(ra, rb)}, 1)[0]
	if got.Probability != want {
		t.Fatalf("model=%s scored %v, direct matcher %v", m2.Fingerprint()[:12], got.Probability, want)
	}
	if got.Model != "shelf-model" {
		t.Fatalf("response names model %q", got.Model)
	}

	// A weighted ensemble is the weighted sum of both models.
	sel := m1.Fingerprint() + "@0.5," + m2.Fingerprint() + "@0.5"
	w = postJSON(t, h, "/v1/match?model="+sel, pair)
	if w.Code != http.StatusOK {
		t.Fatalf("ensemble match: %d: %s", w.Code, w.Body.String())
	}
	var ens MatchResponse
	json.Unmarshal(w.Body.Bytes(), &ens)
	var baseResp MatchResponse
	json.Unmarshal(base.Body.Bytes(), &baseResp)
	wantEns := 0.5*baseResp.Probability + 0.5*want
	if diff := ens.Probability - wantEns; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("ensemble probability %v, want %v", ens.Probability, wantEns)
	}

	// Unknown selectors are a client error.
	if w := postJSON(t, h, "/v1/match?model=ffffffffffff", pair); w.Code != http.StatusBadRequest {
		t.Fatalf("bogus selector: %d, want 400", w.Code)
	}
}

// TestSelectRequiresCatalog: without Config.Catalog the select route
// does not exist and catalog selectors are rejected, while the active
// model keeps serving (including under its own fingerprint selector).
func TestSelectRequiresCatalog(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	if w := postJSON(t, h, "/v1/models/select", SelectRequest{}); w.Code != http.StatusNotFound {
		t.Fatalf("select without catalog: %d, want 404", w.Code)
	}
	active := s.reg.Matcher().Fingerprint()
	if w := postJSON(t, h, "/v1/match?model="+active, samplePair()); w.Code != http.StatusOK {
		t.Fatalf("active-fingerprint selector without catalog: %d", w.Code)
	}
	if w := postJSON(t, h, "/v1/match?model=ffffffffffff", samplePair()); w.Code != http.StatusBadRequest {
		t.Fatalf("catalog selector without catalog: %d, want 400", w.Code)
	}
}
