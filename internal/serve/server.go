// Package serve implements the online matching service: a stdlib-only
// net/http JSON API that loads a transer.model/v1 artifact
// (internal/model) and scores record pairs with exactly the decisions
// the training run produced.
//
// Endpoints:
//
//	POST /v1/match         score one record pair
//	POST /v1/match/batch   score N pairs (index-addressed, deterministic)
//	POST /v1/query         planned similarity join of uploaded record sets
//	POST /v1/ingest        admit records into the live entity store (with Config.Stream)
//	POST /v1/resolve       read-only probe against the live entity store (with Config.Stream)
//	GET  /v1/models        describe the loaded model
//	POST /v1/models/reload hot-swap the model from its artifact file
//	GET  /healthz          liveness probe
//	GET  /metrics          JSON snapshot of the server's obs registry
//
// Operational behaviour: admission control sheds load beyond a bounded
// in-flight + queue capacity with 429 and a Retry-After hint;
// every scoring request runs under a per-request context deadline;
// batch scoring is chunked over the deterministic worker pool
// (internal/parallel) so responses are byte-identical for every worker
// count; request spans and request/latency/in-flight metrics flow
// through internal/obs. Graceful drain is the caller's http.Server
// Shutdown — handlers hold no state beyond the request.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"transer/internal/obs"
	"transer/internal/repo"
	"transer/internal/stream"
)

// Config parameterises a Server. The zero value of every field gets a
// sensible default from New.
type Config struct {
	// Registry supplies the model; required.
	Registry *ModelRegistry
	// MaxInFlight bounds concurrently executing scoring requests
	// (default: GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds scoring requests waiting for a slot beyond
	// MaxInFlight; anything above is shed with 429 (default 64;
	// negative = no queue, shed as soon as every slot is busy).
	MaxQueue int
	// Timeout is the per-request scoring deadline (default 10s).
	Timeout time.Duration
	// Workers bounds the scoring worker pool for batch requests
	// (0 = one per CPU). Responses are identical for every value.
	Workers int
	// MaxBatchPairs caps the pairs of one batch request (default 10000).
	MaxBatchPairs int
	// MaxBodyBytes caps request body size (default 8 MiB).
	MaxBodyBytes int64
	// SpanSample caps how many requests record spans under the tracer;
	// a long-running server must not grow its span tree without bound
	// (default 256; metrics are always recorded).
	SpanSample int64
	// Tracer, when non-nil, receives request spans and owns the metrics
	// registry surfaced by /metrics. With a nil tracer the server keeps
	// a private registry, so /metrics works either way.
	Tracer *obs.Tracer
	// Logger, when non-nil, receives one structured JSONL event per
	// scored request, trace-correlated via the request's traceparent.
	// A nil logger costs nothing (see obs.Logger).
	Logger *obs.Logger
	// TraceBuffer caps each retention class of the tail-based trace
	// capture behind GET /debug/traces: the N most recent requests, the
	// N most recent errors, and the N slowest requests (default 64).
	TraceBuffer int
	// Stream, when non-nil, enables the streaming entity-store
	// endpoints POST /v1/ingest and POST /v1/resolve against this
	// store (see internal/stream). Build the store with the same
	// metrics registry as the server so its stream.* counters appear
	// in /metrics.
	Stream *stream.Store
	// Catalog, when non-nil, enables the model-repository surfaces:
	// GET /v1/models appends the catalog after the active model,
	// POST /v1/models/select ranks catalogued models against a target
	// domain, and the scoring endpoints accept a model=<selector>
	// query parameter (fingerprint, unique prefix, model name, or a
	// weighted "fp@w,fp@w" ensemble). Without a selector the active
	// registry model serves exactly as before.
	Catalog *repo.Catalog
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	} else if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxBatchPairs == 0 {
		c.MaxBatchPairs = 10000
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.SpanSample == 0 {
		c.SpanSample = 256
	}
	if c.TraceBuffer == 0 {
		c.TraceBuffer = 64
	}
	return c
}

// Server is the matching service. Construct with New; serve the value
// of Handler with any http.Server.
type Server struct {
	cfg     Config
	reg     *ModelRegistry
	gate    *gate
	metrics *obs.Registry
	tracer  *obs.Tracer
	logger  *obs.Logger
	capture *obs.TraceCapture
	rt      *obs.RuntimeSampler
	started time.Time

	spansTaken atomic.Int64

	// Resolved instruments (hot path touches only atomics).
	mRequests  *obs.Counter
	mShed      *obs.Counter
	mErrors    *obs.Counter
	mWriteErrs *obs.Counter
	mInFlight  *obs.Gauge
	mLatency   *obs.Histogram
	mBatchSize *obs.Histogram
}

// New validates the configuration and builds a Server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Registry == nil || cfg.Registry.Matcher() == nil {
		return nil, errors.New("serve: Config.Registry with a loaded model is required")
	}
	metrics := cfg.Tracer.Metrics()
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		gate:    newGate(cfg.MaxInFlight, cfg.MaxQueue),
		metrics: metrics,
		tracer:  cfg.Tracer,
		logger:  cfg.Logger,
		capture: obs.NewTraceCapture(cfg.TraceBuffer),
		rt:      obs.NewRuntimeSampler(metrics),
		started: time.Now(),

		mRequests:  metrics.Counter("serve.requests_total"),
		mShed:      metrics.Counter("serve.shed_total"),
		mErrors:    metrics.Counter("serve.errors_total"),
		mWriteErrs: metrics.Counter("serve.write_errors_total"),
		mInFlight:  metrics.Gauge("serve.in_flight"),
		mLatency:   metrics.Histogram("serve.request_seconds", obs.SecondsBuckets()),
		mBatchSize: metrics.Histogram("serve.batch_pairs", obs.ExpBuckets(1, 4, 10)),
	}
	return s, nil
}

// Handler returns the service's routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/models/reload", s.handleReload)
	mux.HandleFunc("POST /v1/match", s.scored("match", s.handleMatch))
	mux.HandleFunc("POST /v1/match/batch", s.scored("batch", s.handleBatch))
	mux.HandleFunc("POST /v1/query", s.scored("query", s.handleQuery))
	if s.cfg.Catalog != nil {
		mux.HandleFunc("POST /v1/models/select", s.scored("select", s.handleSelect))
	}
	if s.cfg.Stream != nil {
		mux.HandleFunc("POST /v1/ingest", s.scored("ingest", s.handleIngest))
		mux.HandleFunc("POST /v1/resolve", s.scored("resolve", s.handleResolve))
	}
	return mux
}

// Metrics exposes the server's registry (for embedding binaries that
// publish their own instruments alongside).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// requestSpan starts a span for this request: attached under the
// tracer root within the SpanSample budget (so a long-running server's
// shutdown run report stays bounded), detached beyond it. Detached
// spans still flow into the tail-based trace capture and are released
// when they age out of its rings, so every request is traced without
// unbounded growth.
func (s *Server) requestSpan(route string, tc obs.TraceContext) *obs.Span {
	if s.tracer == nil {
		return nil
	}
	var sp *obs.Span
	if s.spansTaken.Add(1) <= s.cfg.SpanSample {
		sp = s.tracer.Root().Child("request:" + route)
	} else {
		sp = obs.NewDetachedSpan("request:" + route)
	}
	sp.SetStr("trace_id", tc.TraceID.String())
	sp.SetStr("span_id", tc.SpanID.String())
	return sp
}

// traceFor continues the client's trace when the request carries a
// valid W3C traceparent header (same trace ID, fresh span ID), or
// starts a new trace otherwise.
func (s *Server) traceFor(r *http.Request) obs.TraceContext {
	if h := r.Header.Get("Traceparent"); h != "" {
		if tc, err := obs.ParseTraceparent(h); err == nil {
			return tc.ChildOf()
		}
	}
	return obs.NewTraceContext()
}

// statusWriter records the response status for request logging and
// trace capture.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// finishRequest records the completed request into the tail-based
// trace capture and emits the structured request event. Runs for shed
// requests too — tail capture exists precisely so saturation incidents
// stay observable.
func (s *Server) finishRequest(ctx context.Context, route string, tc obs.TraceContext, sp *obs.Span, start time.Time, status int) {
	dur := time.Since(start)
	isErr := status >= 400
	s.capture.Record(obs.CapturedTrace{
		TraceID: tc.TraceID.String(),
		Route:   route,
		Status:  status,
		Start:   start,
		DurMS:   float64(dur) / float64(time.Millisecond),
		Error:   isErr,
		Span:    obs.SpanTree(sp),
	})
	lv := obs.LevelInfo
	switch {
	case status >= 500:
		lv = obs.LevelError
	case isErr:
		lv = obs.LevelWarn
	}
	s.logger.Log(ctx, lv, "serve.request",
		obs.FStr("route", route),
		obs.FInt("status", int64(status)),
		obs.FFloat("dur_ms", float64(dur)/float64(time.Millisecond)))
}

// scored wraps a scoring handler with admission control, the
// per-request deadline, trace propagation, and request accounting.
// Metadata endpoints (health, metrics, models, debug) stay outside the
// gate so the service can be observed even while saturated.
func (s *Server) scored(route string, h http.HandlerFunc) http.HandlerFunc {
	routeRequests := s.metrics.Counter("serve." + route + ".requests_total")
	return func(w http.ResponseWriter, r *http.Request) {
		s.mRequests.Add(1)
		routeRequests.Add(1)

		tc := s.traceFor(r)
		w.Header().Set("Traceparent", tc.Traceparent())
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		ctx = obs.ContextWithTrace(ctx, tc)

		if err := s.gate.acquire(ctx); err != nil {
			var status int
			if errors.Is(err, errOverloaded) {
				s.mShed.Add(1)
				w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.Timeout))
				status = http.StatusTooManyRequests
				s.writeError(w, status, "server is at capacity, retry later")
			} else {
				// Deadline or client disconnect while queued.
				status = http.StatusServiceUnavailable
				s.writeError(w, status, "timed out waiting for capacity")
			}
			s.finishRequest(ctx, route, tc, nil, start, status)
			return
		}
		s.mInFlight.Set(float64(s.gate.inFlight()))
		sp := s.requestSpan(route, tc)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		r = r.WithContext(obs.ContextWithSpan(ctx, sp))
		defer func() {
			s.gate.release()
			s.mInFlight.Set(float64(s.gate.inFlight()))
			s.mLatency.ObserveEx(time.Since(start).Seconds(), tc.TraceID.String())
			sp.End()
			s.finishRequest(ctx, route, tc, sp, start, sw.status)
		}()
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		h(sw, r)
	}
}

// retryAfterSeconds hints clients to back off for about half the
// request deadline (at least one second).
func retryAfterSeconds(timeout time.Duration) string {
	sec := int(timeout.Seconds() / 2)
	if sec < 1 {
		sec = 1
	}
	return strconv.Itoa(sec)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	rt := s.rt.Sample()
	resp := HealthResponse{
		Status:  "ok",
		Model:   s.reg.Matcher().Artifact.Name,
		Runtime: &rt,
	}
	if s.cfg.Stream != nil {
		st := s.cfg.Stream.Stats()
		resp.Stream = &st
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// MetricsResponse is the body of GET /metrics.
type MetricsResponse struct {
	Schema        string       `json:"schema"`
	Model         string       `json:"model"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Metrics       obs.Snapshot `json:"metrics"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Refresh on-demand gauges so a scrape always sees current runtime
	// and streaming-lag state (no background sampler goroutine).
	s.rt.Sample()
	s.cfg.Stream.PublishLag()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if err := obs.WritePrometheus(w, s.metrics.Snapshot()); err != nil {
			s.mWriteErrs.Add(1)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, MetricsResponse{
		Schema:        MetricsSchemaVersion,
		Model:         s.reg.Matcher().Artifact.Name,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Metrics:       s.metrics.Snapshot(),
	})
}

// TracesResponse is the body of GET /debug/traces: the tail-based
// capture of recent, error and slowest requests.
type TracesResponse struct {
	Schema  string              `json:"schema"`
	Capture obs.CaptureSnapshot `json:"capture"`
}

func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, TracesResponse{
		Schema:  TracesSchemaVersion,
		Capture: s.capture.Snapshot(),
	})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	// The active model comes first (the pre-repository response shape,
	// so single-model clients keep reading Models[0]); the catalog, if
	// configured, is appended with source "catalog".
	active := s.reg.Info()
	active.Source = "active"
	s.writeJSON(w, http.StatusOK, ModelsResponse{Models: s.catalogModels([]ModelInfo{active})})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Reload(); err != nil {
		// The previous model keeps serving; report why the swap failed.
		s.writeError(w, http.StatusInternalServerError, fmt.Sprintf("reload failed, previous model still serving: %v", err))
		return
	}
	s.metrics.Counter("serve.reloads_total").Add(1)
	active := s.reg.Info()
	active.Source = "active"
	s.writeJSON(w, http.StatusOK, ModelsResponse{Models: s.catalogModels([]ModelInfo{active})})
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req MatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	e, err := s.ensembleFor(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ra, err := e.RecordFromValues(req.A)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "record a: "+err.Error())
		return
	}
	rb, err := e.RecordFromValues(req.B)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "record b: "+err.Error())
		return
	}
	x := e.Vector(ra, rb)
	p := e.Score([][]float64{x}, 1)[0]
	s.writeJSON(w, http.StatusOK, MatchResponse{
		Model:       e.Label(),
		Probability: p,
		Match:       e.Decide(p),
		Vector:      x,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Pairs) == 0 {
		s.writeError(w, http.StatusBadRequest, "batch request has no pairs")
		return
	}
	if len(req.Pairs) > s.cfg.MaxBatchPairs {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d pairs exceeds the limit of %d", len(req.Pairs), s.cfg.MaxBatchPairs))
		return
	}
	s.mBatchSize.Observe(float64(len(req.Pairs)))

	e, err := s.ensembleFor(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	x := make([][]float64, len(req.Pairs))
	for i, pair := range req.Pairs {
		ra, err := e.RecordFromValues(pair.A)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("pair %d: %v", i, err))
			return
		}
		rb, err := e.RecordFromValues(pair.B)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("pair %d: %v", i, err))
			return
		}
		x[i] = e.Vector(ra, rb)
	}
	proba, err := scoreWithContext(r.Context(), e, x, s.cfg.Workers)
	if err != nil {
		s.writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("batch scoring aborted: %v", err))
		return
	}
	resp := BatchResponse{Model: e.Label(), Count: len(proba), Results: make([]BatchResult, len(proba))}
	for i, p := range proba {
		resp.Results[i] = BatchResult{Index: i, Probability: p, Match: e.Decide(p)}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// decode parses a JSON request body strictly: unknown fields are an
// error so client typos surface as 400s instead of silently scoring
// half-empty records.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		// The response is already committed; a failed write means the
		// client went away. Count it — there is nothing else to do.
		s.mWriteErrs.Add(1)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	if status >= 500 {
		s.mErrors.Add(1)
	}
	s.writeJSON(w, status, ErrorResponse{Error: msg})
}
