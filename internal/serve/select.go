package serve

// Model-repository surfaces: catalog listing on GET /v1/models, model
// selection on POST /v1/models/select, and the model= selector on the
// scoring endpoints. All of them are optional — a Server without
// Config.Catalog behaves exactly as before.

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"transer/internal/blocking"
	"transer/internal/dataset"
	"transer/internal/model"
	"transer/internal/obs"
	"transer/internal/repo"
)

// SelectSchemaVersion identifies the POST /v1/models/select response
// document.
const SelectSchemaVersion = "transer.serve.select/v1"

// SelectRequest is the body of POST /v1/models/select: either a
// precomputed domain signature or sample records of the new target
// domain (the server computes the signature under the active model's
// schema).
type SelectRequest struct {
	// Signature is a transer.signature/v1 document (e.g. from
	// cmd/repo sign). When set, A and B must be empty.
	Signature *model.Signature `json:"signature,omitempty"`
	// A and B are sample record sets of the target domain; empty B
	// means a dedup view of A.
	A []RecordPayload `json:"a,omitempty"`
	B []RecordPayload `json:"b,omitempty"`
	// K asks for an ensemble of the top k models (default 1 = the
	// single best).
	K int `json:"k,omitempty"`
	// Limit caps the ranking returned for explanation (default 10,
	// -1 = all).
	Limit int `json:"limit,omitempty"`
}

// RankedModel is one explained entry of a selection ranking (the
// catalog entry trimmed of its signature payload).
type RankedModel struct {
	Fingerprint string          `json:"fingerprint"`
	Name        string          `json:"name"`
	Classifier  string          `json:"classifier"`
	SourceName  string          `json:"source_name,omitempty"`
	TargetName  string          `json:"target_name,omitempty"`
	Score       float64         `json:"score"`
	Components  repo.Components `json:"components"`
}

// SelectResponse is the body of a successful POST /v1/models/select.
type SelectResponse struct {
	Schema string `json:"schema"`
	// Selector is the chosen model selector, directly usable as the
	// model= parameter of the scoring endpoints ("fp" or "fp@w,fp@w").
	Selector string `json:"selector"`
	// Members are the chosen models with their normalised weights.
	Members []repo.Member `json:"members"`
	// Ranking explains the choice: every catalogued model scored
	// against the target signature, best first (capped by Limit).
	Ranking []RankedModel `json:"ranking"`
}

// ensembleFor resolves the request's model= selector to the scoring
// ensemble. No selector serves the active registry model — wrapped in
// a single-member ensemble, whose Score delegates straight to the
// matcher, so this path is byte-identical to serving without a
// catalog. A selector matching the active model's fingerprint (or a
// prefix of it) also serves the in-memory active matcher; anything
// else resolves through the catalog.
func (s *Server) ensembleFor(r *http.Request) (*repo.Ensemble, error) {
	sel := strings.TrimSpace(r.URL.Query().Get("model"))
	active := s.reg.Matcher()
	if sel == "" {
		return repo.Single(active), nil
	}
	if len(sel) >= 4 && strings.HasPrefix(active.Fingerprint(), sel) {
		return repo.Single(active), nil
	}
	if s.cfg.Catalog == nil {
		return nil, fmt.Errorf("model selector %q: no model repository configured (serve with -repo)", sel)
	}
	return s.cfg.Catalog.EnsembleFor(sel)
}

// catalogModels appends the catalog's entries to a models listing
// (active model first — the pre-repository response shape — catalog
// appended, skipping the entry that is the active model itself).
func (s *Server) catalogModels(models []ModelInfo) []ModelInfo {
	if s.cfg.Catalog == nil {
		return models
	}
	activeFP := ""
	if len(models) > 0 {
		activeFP = models[0].Fingerprint
	}
	for _, e := range s.cfg.Catalog.List() {
		if e.Fingerprint == activeFP {
			continue
		}
		models = append(models, ModelInfo{
			Name:        e.Name,
			Classifier:  e.Classifier,
			CreatedAt:   e.CreatedAt.UTC().Format(time.RFC3339),
			Threshold:   e.Threshold,
			Fingerprint: e.Fingerprint,
			Source:      "catalog",
		})
	}
	return models
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if !s.decode(w, r, &req) {
		return
	}
	sig, err := s.targetSignature(r, req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	limit := req.Limit
	if limit == 0 {
		limit = 10
	} else if limit < 0 {
		limit = 0
	}
	ranking := s.cfg.Catalog.Search(sig, limit, s.cfg.Workers)
	members := repo.Select(ranking, req.K)
	if len(members) == 0 {
		s.writeError(w, http.StatusNotFound,
			fmt.Sprintf("no catalogued model matches the target domain (%d models searched)", s.cfg.Catalog.Len()))
		return
	}
	selector := repo.FormatSelector(members)

	if sp := obs.SpanFromContext(r.Context()); sp != nil {
		sp.SetInt("catalog_size", int64(s.cfg.Catalog.Len()))
		sp.SetInt("members", int64(len(members)))
		sp.SetStr("selector", selector)
	}
	s.logger.Info(r.Context(), "serve.select",
		obs.FStr("selector", selector),
		obs.FInt("catalog_size", int64(s.cfg.Catalog.Len())),
		obs.FInt("members", int64(len(members))))
	s.metrics.Counter("serve.select.models_total").Add(int64(len(members)))

	resp := SelectResponse{
		Schema:   SelectSchemaVersion,
		Selector: selector,
		Members:  members,
		Ranking:  make([]RankedModel, len(ranking)),
	}
	for i, rk := range ranking {
		resp.Ranking[i] = RankedModel{
			Fingerprint: rk.Entry.Fingerprint,
			Name:        rk.Entry.Name,
			Classifier:  rk.Entry.Classifier,
			SourceName:  rk.Entry.SourceName,
			TargetName:  rk.Entry.TargetName,
			Score:       rk.Score,
			Components:  rk.Components,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// targetSignature resolves a select request to the target domain's
// signature: validated as given, or computed from the sample records
// under the active model's schema.
func (s *Server) targetSignature(r *http.Request, req SelectRequest) (*model.Signature, error) {
	if req.Signature != nil {
		if len(req.A) > 0 || len(req.B) > 0 {
			return nil, fmt.Errorf("select request carries both a signature and sample records; send one")
		}
		if err := req.Signature.Validate(); err != nil {
			return nil, err
		}
		return req.Signature, nil
	}
	if len(req.A) == 0 {
		return nil, fmt.Errorf("select request needs a signature or sample records in a")
	}
	if n := len(req.A) + len(req.B); n > s.cfg.MaxBatchPairs {
		return nil, fmt.Errorf("select over %d records exceeds the limit of %d", n, s.cfg.MaxBatchPairs)
	}
	m := s.reg.Matcher()
	a, err := s.payloadDatabase(m, "a", req.A)
	if err != nil {
		return nil, err
	}
	var b *dataset.Database
	if len(req.B) > 0 {
		if b, err = s.payloadDatabase(m, "b", req.B); err != nil {
			return nil, err
		}
	}
	return repo.SignatureOf(r.Context(), a, b, blocking.MinHashConfig{}, s.cfg.Workers)
}
