package serve

// The wire types of the matching API. All endpoints speak JSON; batch
// results are index-addressed so responses are deterministic and
// self-describing regardless of internal scoring order.

import (
	"transer/internal/obs"
	"transer/internal/stream"
)

// MetricsSchemaVersion identifies the GET /metrics response document.
const MetricsSchemaVersion = "transer.serve.metrics/v1"

// TracesSchemaVersion identifies the GET /debug/traces response
// document.
const TracesSchemaVersion = "transer.serve.traces/v1"

// RecordPayload is one record as an attribute→value map. Attribute
// names must exist in the model's schema; absent attributes score
// under the scheme's missing-value policy.
type RecordPayload map[string]string

// MatchRequest is the body of POST /v1/match and one element of a
// batch request.
type MatchRequest struct {
	A RecordPayload `json:"a"`
	B RecordPayload `json:"b"`
}

// MatchResponse is the body of a successful POST /v1/match.
type MatchResponse struct {
	// Model is the name of the artifact that scored the pair.
	Model string `json:"model"`
	// Probability is the classifier's match probability.
	Probability float64 `json:"probability"`
	// Match applies the model's decision threshold to Probability.
	Match bool `json:"match"`
	// Vector is the comparison feature vector the classifier scored,
	// aligned with the model's feature names.
	Vector []float64 `json:"vector"`
}

// BatchRequest is the body of POST /v1/match/batch.
type BatchRequest struct {
	Pairs []MatchRequest `json:"pairs"`
}

// BatchResult is one scored pair of a batch. Index refers back to the
// request's Pairs slice.
type BatchResult struct {
	Index       int     `json:"index"`
	Probability float64 `json:"probability"`
	Match       bool    `json:"match"`
}

// BatchResponse is the body of a successful POST /v1/match/batch.
// Results[i].Index == i always holds; the index is kept explicit so
// clients can verify alignment.
type BatchResponse struct {
	Model   string        `json:"model"`
	Count   int           `json:"count"`
	Results []BatchResult `json:"results"`
}

// ModelInfo describes one available model: the actively served
// artifact (Source "active", fully populated) or a model-repository
// catalog entry (Source "catalog" — identity and decision metadata
// only; load it via the model= selector to serve it).
type ModelInfo struct {
	Name       string   `json:"name"`
	Classifier string   `json:"classifier"`
	CreatedAt  string   `json:"created_at"`
	LoadedAt   string   `json:"loaded_at,omitempty"`
	Path       string   `json:"path,omitempty"`
	Threshold  float64  `json:"threshold"`
	Attributes []string `json:"attributes,omitempty"`
	Features   []string `json:"features,omitempty"`
	Reloads    int64    `json:"reloads"`
	// Fingerprint is the SHA-256 identity of the serialised artifact —
	// the value provenance responses and decision logs cite, and the
	// model= selector the scoring endpoints accept.
	Fingerprint string `json:"fingerprint"`
	// Source distinguishes the actively served model ("active") from
	// repository catalog entries ("catalog"). Empty on servers built
	// before the model repository existed.
	Source string `json:"source,omitempty"`
}

// ModelsResponse is the body of GET /v1/models and of a successful
// POST /v1/models/reload.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	Model  string `json:"model"`
	// Runtime is a point-in-time process sample (goroutines, heap, GC).
	Runtime *obs.RuntimeStats `json:"runtime,omitempty"`
	// Stream summarises the live entity store when streaming endpoints
	// are enabled.
	Stream *stream.Stats `json:"stream,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
