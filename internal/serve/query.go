package serve

import (
	"fmt"
	"net/http"

	"transer/internal/dataset"
	"transer/internal/model"
	"transer/internal/obs"
	"transer/internal/query"
)

// QueryRequest is the body of POST /v1/query: a batch similarity join
// of two uploaded record sets (or a dedup self-join when B is empty)
// through the planned query engine, scored by the loaded model.
type QueryRequest struct {
	// A and B are the record sets to join. Empty B means a dedup
	// self-join of A (matches are index pairs i < j into A).
	A []RecordPayload `json:"a"`
	B []RecordPayload `json:"b,omitempty"`
	// Threshold keeps pairs with match probability >= Threshold; nil
	// defaults to the model's decision threshold.
	Threshold *float64 `json:"threshold,omitempty"`
	// Limit caps returned matches in deterministic index order (0 =
	// unlimited).
	Limit int `json:"limit,omitempty"`
	// Block forces a blocking strategy: "auto" (default), "lsh", "sn"
	// or "canopy". Any strategy yields the same result set; forcing
	// only changes how much work finds it.
	Block string `json:"block,omitempty"`
	// Explain plans the query and returns the EXPLAIN rendering without
	// executing it.
	Explain bool `json:"explain,omitempty"`
}

// QueryMatch is one result pair; indices refer to the request's A and
// B arrays (both into A for a dedup query).
type QueryMatch struct {
	A           int     `json:"a"`
	B           int     `json:"b"`
	Probability float64 `json:"probability"`
	Match       bool    `json:"match"`
}

// QueryResponse is the body of a successful POST /v1/query.
type QueryResponse struct {
	Model    string `json:"model"`
	Schema   string `json:"schema"`
	Strategy string `json:"strategy"`
	// Plan is the EXPLAIN rendering (always present, so every response
	// documents how it was computed).
	Plan       string       `json:"plan"`
	Candidates int          `json:"candidates"`
	Count      int          `json:"count"`
	Matches    []QueryMatch `json:"matches,omitempty"`
	// Explain echoes the request flag; true means the query was planned
	// but not executed.
	Explain bool `json:"explain,omitempty"`
	// Provenance explains the executed matches when the request asked
	// for it (?explain=1 — distinct from the body's Explain flag, which
	// plans without executing).
	Provenance *QueryProvenance `json:"provenance,omitempty"`
}

// QueryProvenance is the execution provenance attached to
// POST /v1/query?explain=1: the request's trace ID, the exact model
// identity, and each returned match's per-comparator vector.
type QueryProvenance struct {
	TraceID          string   `json:"trace_id,omitempty"`
	ModelFingerprint string   `json:"model_fingerprint"`
	Threshold        float64  `json:"threshold"`
	Features         []string `json:"features"`
	// Vectors holds the comparison vector of each returned match, in
	// match order, aligned with Features.
	Vectors [][]float64 `json:"vectors,omitempty"`
}

// payloadDatabase converts uploaded records to a schema-conformant
// database under the matcher's schema. IDs are synthesised from the
// side and index so query matches are self-describing.
func (s *Server) payloadDatabase(m *model.Matcher, side string, payloads []RecordPayload) (*dataset.Database, error) {
	db := &dataset.Database{Name: side, Schema: m.Schema}
	for i, p := range payloads {
		r, err := m.RecordFromValues(p)
		if err != nil {
			return nil, fmt.Errorf("record %s[%d]: %w", side, i, err)
		}
		r.ID = fmt.Sprintf("%s%d", side, i)
		db.Records = append(db.Records, r)
	}
	return db, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.A) == 0 {
		s.writeError(w, http.StatusBadRequest, "query request has no records in a")
		return
	}
	if n := len(req.A) + len(req.B); n > s.cfg.MaxBatchPairs {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("query over %d records exceeds the limit of %d", n, s.cfg.MaxBatchPairs))
		return
	}
	force, err := query.ParseStrategy(req.Block)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	e, err := s.ensembleFor(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	m := e.Primary()
	a, err := s.payloadDatabase(m, "a", req.A)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var b *dataset.Database
	if len(req.B) > 0 {
		if b, err = s.payloadDatabase(m, "b", req.B); err != nil {
			s.writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	threshold := m.Artifact.Threshold
	if req.Threshold != nil {
		threshold = *req.Threshold
	}

	scheme := m.Scheme
	job := query.Job{
		A: a, B: b,
		Scheme:      &scheme,
		Scorer:      e,
		ScorerLabel: "model:" + e.Label(),
		Threshold:   threshold,
		Limit:       req.Limit,
		Force:       force,
		Workers:     s.cfg.Workers,
		// Operator spans nest under the request span, so /debug/traces
		// shows the full plan execution for captured query requests.
		Span:    obs.SpanFromContext(r.Context()),
		Metrics: s.metrics,
	}

	plan, err := query.PlanJob(job)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := QueryResponse{
		Model:    e.Label(),
		Schema:   query.PlanSchemaVersion,
		Strategy: plan.Block.Strategy.String(),
		Plan:     plan.Explain(),
		Explain:  req.Explain,
	}
	if req.Explain {
		s.writeJSON(w, http.StatusOK, resp)
		return
	}

	res, err := query.Execute(r.Context(), job, plan)
	if err != nil {
		s.writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("query aborted: %v", err))
		return
	}
	s.metrics.Counter("serve.query.candidates_total").Add(int64(res.Candidates))
	resp.Candidates = res.Candidates
	resp.Count = res.Kept
	resp.Matches = make([]QueryMatch, len(res.Matches))
	for i, match := range res.Matches {
		resp.Matches[i] = QueryMatch{
			A:           match.A,
			B:           match.B,
			Probability: match.Score,
			Match:       e.Decide(match.Score),
		}
	}
	if r.URL.Query().Get("explain") != "" {
		// For a single model this is the bare fingerprint (unchanged
		// from pre-repository responses); for an ensemble it is the
		// full reproducible selector.
		prov := &QueryProvenance{
			ModelFingerprint: e.Selector(),
			Threshold:        threshold,
			Features:         scheme.FeatureNames(),
			Vectors:          make([][]float64, len(res.Matches)),
		}
		if tc, ok := obs.TraceFromContext(r.Context()); ok {
			prov.TraceID = tc.TraceID.String()
		}
		// Recompute each kept match's comparison vector — exactly the
		// Pair the executed plan scored, so the explanation is the
		// decision, not a reconstruction.
		bRecs := a.Records
		if b != nil {
			bRecs = b.Records
		}
		for i, match := range res.Matches {
			prov.Vectors[i] = scheme.Pair(a.Records[match.A], bRecs[match.B])
		}
		resp.Provenance = prov
	}
	s.writeJSON(w, http.StatusOK, resp)
}
