package serve

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"transer/internal/obs"
	"transer/internal/stream"
	"transer/internal/testkit"
)

// streamServer builds a server with a live entity store wired to the
// same registry, as cmd/serve -stream does.
func streamServer(tb testing.TB) (*Server, *stream.Store) {
	tb.Helper()
	m := trainedMatcher(tb)
	tr := obs.New("serve-test")
	cfg := stream.FromMatcher(m)
	cfg.Metrics = tr.Metrics()
	st, err := stream.NewStore(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	s := newTestServer(tb, Config{Registry: StaticRegistry(m), Tracer: tr, Stream: st})
	return s, st
}

// streamPayload renders records for the ingest wire format.
func streamPayload(values ...map[string]string) map[string]any {
	recs := make([]map[string]any, 0, len(values))
	for _, v := range values {
		recs = append(recs, map[string]any{"attrs": v})
	}
	return map[string]any{"records": recs}
}

// TestIngestResolveEndpoints walks the streaming happy path over HTTP:
// ingest opens entities, duplicate content joins them, resolve probes
// without admitting, and the stream.* counters land in /metrics.
func TestIngestResolveEndpoints(t *testing.T) {
	s, st := streamServer(t)
	h := s.Handler()

	rec := map[string]string{"name": "willow tam", "desc": "quiet river harbour", "year": "1987"}
	w := postJSON(t, h, "/v1/ingest", streamPayload(rec, rec))
	if w.Code != http.StatusOK {
		t.Fatalf("ingest: %d: %s", w.Code, w.Body.String())
	}
	var ing IngestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Count != 2 || len(ing.Results) != 2 {
		t.Fatalf("ingest response: %+v", ing)
	}
	if !ing.Results[0].Created || ing.Results[1].Created {
		t.Fatalf("duplicate record opened a fresh entity: %+v", ing.Results)
	}
	if ing.Results[0].EntityID != ing.Results[1].EntityID {
		t.Fatalf("duplicate records in different entities: %+v", ing.Results)
	}
	if ing.Stats.Records != 2 || ing.Stats.Entities != 1 {
		t.Fatalf("stats: %+v", ing.Stats)
	}

	w = postJSON(t, h, "/v1/resolve", map[string]any{"attrs": rec})
	if w.Code != http.StatusOK {
		t.Fatalf("resolve: %d: %s", w.Code, w.Body.String())
	}
	var res ResolveResponse
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Matched || res.EntityID != ing.Results[0].EntityID {
		t.Fatalf("resolve: %+v", res)
	}
	if st.Len() != 2 {
		t.Fatalf("resolve admitted a record: store has %d", st.Len())
	}

	var metrics MetricsResponse
	getJSON(t, h, "/metrics", &metrics)
	if metrics.Metrics.Counters["stream.ingested_total"] != 2 {
		t.Errorf("stream.ingested_total = %d", metrics.Metrics.Counters["stream.ingested_total"])
	}
	if metrics.Metrics.Counters["stream.resolved_total"] != 1 {
		t.Errorf("stream.resolved_total = %d", metrics.Metrics.Counters["stream.resolved_total"])
	}
	if metrics.Metrics.Counters["serve.ingest.requests_total"] != 1 ||
		metrics.Metrics.Counters["serve.resolve.requests_total"] != 1 {
		t.Errorf("per-route counters: %+v", metrics.Metrics.Counters)
	}
}

// TestIngestValidation: strict parsing surfaces as 400s, oversized
// batches as 413, and rejected requests leave the store unchanged.
func TestIngestValidation(t *testing.T) {
	s, st := streamServer(t)
	h := s.Handler()

	cases := []struct {
		name string
		body string
		code int
	}{
		{"unknown attribute", `{"records":[{"attrs":{"bogus":"x"}}]}`, http.StatusBadRequest},
		{"unknown field", `{"records":[{"attrs":{},"typo":1}]}`, http.StatusBadRequest},
		{"no records", `{"records":[]}`, http.StatusBadRequest},
		{"not json", `nope`, http.StatusBadRequest},
		{"trailing data", `{"records":[{"attrs":{}}]} junk`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(tc.body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != tc.code {
			t.Errorf("%s: status %d, want %d: %s", tc.name, w.Code, tc.code, w.Body.String())
		}
	}
	if st.Len() != 0 {
		t.Fatalf("rejected ingests grew the store to %d", st.Len())
	}

	// Duplicate ids reject the offending record and report how many
	// were admitted before it.
	body := `{"records":[{"id":"a","attrs":{"name":"x"}},{"id":"a","attrs":{"name":"y"}}]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "1 admitted") {
		t.Fatalf("duplicate id: %d: %s", w.Code, w.Body.String())
	}
	if st.Len() != 1 {
		t.Fatalf("store after partial ingest: %d records", st.Len())
	}
}

// TestStreamEndpointsDisabled: without Config.Stream the routes do not
// exist.
func TestStreamEndpointsDisabled(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	for _, path := range []string{"/v1/ingest", "/v1/resolve"} {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader("{}"))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusNotFound {
			t.Errorf("%s without a store: %d", path, w.Code)
		}
	}
}

// TestStreamEndpointsGated: the streaming routes sit behind the same
// admission gate as scoring — a saturated server sheds them with 429.
func TestStreamEndpointsGated(t *testing.T) {
	m := trainedMatcher(t)
	cfg := stream.FromMatcher(m)
	st, err := stream.NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Registry: StaticRegistry(m), Stream: st, MaxInFlight: 1, MaxQueue: -1})
	// Hold the only slot.
	release := make(chan struct{})
	acquired := make(chan struct{})
	go func() {
		s.gate.acquire(context.Background())
		close(acquired)
		<-release
		s.gate.release()
	}()
	<-acquired
	defer close(release)

	for _, path := range []string{"/v1/ingest", "/v1/resolve"} {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader("{}"))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusTooManyRequests {
			t.Errorf("%s on a saturated server: %d, want 429", path, w.Code)
		}
	}
}

// TestIngestResolveDeterministicAcrossWorkers: like batch scoring, the
// streaming endpoints answer byte-identically for every worker count.
func TestIngestResolveDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a, b := testkit.DatabasePair(rng, 24)
	mk := func(workers int) (string, string) {
		m := trainedMatcher(t)
		cfg := stream.FromMatcher(m)
		cfg.Workers = workers
		st, err := stream.NewStore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := newTestServer(t, Config{Registry: StaticRegistry(m), Stream: st, Workers: workers})
		h := s.Handler()
		var ingests strings.Builder
		var last string
		for _, rec := range a.Records {
			w := postJSON(t, h, "/v1/ingest", streamPayload(map[string]string{
				"name": rec.Values[0], "desc": rec.Values[1], "year": rec.Values[2],
			}))
			if w.Code != http.StatusOK {
				t.Fatalf("ingest: %d: %s", w.Code, w.Body.String())
			}
			ingests.WriteString(w.Body.String())
		}
		for _, rec := range b.Records[:8] {
			w := postJSON(t, h, "/v1/resolve", map[string]any{"attrs": map[string]string{
				"name": rec.Values[0], "desc": rec.Values[1], "year": rec.Values[2],
			}})
			if w.Code != http.StatusOK {
				t.Fatalf("resolve: %d: %s", w.Code, w.Body.String())
			}
			last += w.Body.String()
		}
		return ingests.String(), last
	}
	i1, r1 := mk(1)
	i3, r3 := mk(3)
	if i1 != i3 {
		t.Fatal("ingest responses differ between worker counts")
	}
	if r1 != r3 {
		t.Fatal("resolve responses differ between worker counts")
	}
}
