package serve

import (
	"context"
	"errors"
)

// errOverloaded is returned by gate.acquire when both the in-flight
// slots and the waiting queue are full; the handler translates it to
// 429 with a Retry-After hint.
var errOverloaded = errors.New("serve: server is at capacity")

// gate is the admission controller: at most `inflight` requests
// execute concurrently while up to `queue` more wait for a slot.
// Anything beyond that is shed immediately — under sustained overload
// the server degrades by rejecting fast rather than by queueing
// unboundedly and timing everything out.
type gate struct {
	slots   chan struct{} // executing requests
	tickets chan struct{} // executing + waiting requests
}

func newGate(inflight, queue int) *gate {
	if inflight < 1 {
		inflight = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &gate{
		slots:   make(chan struct{}, inflight),
		tickets: make(chan struct{}, inflight+queue),
	}
}

// acquire admits the request or fails: errOverloaded when the queue is
// full, the context error when the caller gave up while waiting.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.tickets <- struct{}{}:
	default:
		return errOverloaded
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-g.tickets
		return ctx.Err()
	}
}

// release frees the slot and the ticket of an admitted request.
func (g *gate) release() {
	<-g.slots
	<-g.tickets
}

// inFlight reports the number of currently executing requests.
func (g *gate) inFlight() int { return len(g.slots) }
