package serve

import (
	"context"
	"sync/atomic"

	"transer/internal/model"
	"transer/internal/parallel"
)

// scoreBlock is the fixed chunk size of cancellable batch scoring.
// Fixing the block size (rather than deriving it from the worker
// count) keeps each row's scoring context identical for every worker
// count, so batch responses are byte-identical no matter how the
// server is sized. 512 rows amortise per-block overhead while keeping
// cancellation latency in the low milliseconds for every classifier.
const scoreBlock = 512

// scoreWithContext scores a feature matrix in fixed-size blocks over
// the worker pool, checking the context between blocks. Results are
// written to index-addressed slots: for any worker count the output is
// bitwise identical. On cancellation the partial result is discarded
// and the context error returned.
func scoreWithContext(ctx context.Context, m *model.Matcher, x [][]float64, workers int) ([]float64, error) {
	if len(x) == 0 {
		return nil, nil
	}
	out := make([]float64, len(x))
	var canceled atomic.Bool
	nBlocks := (len(x) + scoreBlock - 1) / scoreBlock
	parallel.ForEach(workers, nBlocks, func(bi int) {
		if canceled.Load() {
			return
		}
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		lo := bi * scoreBlock
		hi := min(lo+scoreBlock, len(x))
		copy(out[lo:hi], m.Score(x[lo:hi], 1))
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
