package serve

import (
	"context"

	"transer/internal/query"
)

// scoreBlock is the engine's fixed scoring block size, re-exported for
// the batch tests that size their requests to span multiple blocks.
const scoreBlock = query.CompareBlock

// scoreWithContext scores a feature matrix on the query engine's
// vectorized score operator: fixed-size row blocks over the worker
// pool, checking the context between blocks. Results are written to
// index-addressed slots, so for any worker count the output is bitwise
// identical — the contract batch responses are built on. On
// cancellation the partial result is discarded and the context error
// returned.
func scoreWithContext(ctx context.Context, scorer query.Scorer, x [][]float64, workers int) ([]float64, error) {
	return query.ScoreMatrix(ctx, scorer, x, workers)
}
