package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"transer/internal/dataset"
	"transer/internal/testkit"
)

func payloads(db *dataset.Database) []RecordPayload {
	out := make([]RecordPayload, len(db.Records))
	for i, r := range db.Records {
		out[i] = RecordPayload{"name": r.Values[0], "desc": r.Values[1], "year": r.Values[2]}
	}
	return out
}

// TestQueryEndpoint runs a full linkage query through POST /v1/query
// and checks the plan, the matches and their threshold discipline.
func TestQueryEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(11))
	a, b := testkit.DatabasePair(rng, 30)

	w := postJSON(t, s.Handler(), "/v1/query", QueryRequest{A: payloads(a), B: payloads(b)})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if resp.Schema != "transer.query/v1" {
		t.Errorf("schema = %q", resp.Schema)
	}
	if !strings.Contains(resp.Plan, "chosen   ") {
		t.Errorf("plan rendering missing chosen line:\n%s", resp.Plan)
	}
	if resp.Count == 0 || len(resp.Matches) == 0 {
		t.Fatalf("query found no matches: %s", w.Body.String())
	}
	threshold := s.reg.Matcher().Artifact.Threshold
	for _, m := range resp.Matches {
		if m.A < 0 || m.A >= len(a.Records) || m.B < 0 || m.B >= len(b.Records) {
			t.Fatalf("match indices out of range: %+v", m)
		}
		if m.Probability < threshold {
			t.Fatalf("match below model threshold %v: %+v", threshold, m)
		}
		if !m.Match {
			t.Fatalf("kept match not decided as match: %+v", m)
		}
	}
}

// TestQueryExplainAndDedup checks explain-only planning (no execution)
// and the empty-B dedup self-join.
func TestQueryExplainAndDedup(t *testing.T) {
	s := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(13))
	a, _ := testkit.DatabasePair(rng, 25)
	reqs := payloads(a)
	// Plant an exact duplicate so dedup has something to find.
	reqs = append(reqs, reqs[3])

	w := postJSON(t, s.Handler(), "/v1/query", QueryRequest{A: reqs, Explain: true})
	if w.Code != http.StatusOK {
		t.Fatalf("explain status %d: %s", w.Code, w.Body.String())
	}
	var explain QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &explain); err != nil {
		t.Fatalf("explain response not JSON: %v", err)
	}
	if !explain.Explain || len(explain.Matches) != 0 || explain.Count != 0 {
		t.Fatalf("explain must plan without executing: %s", w.Body.String())
	}
	if !strings.Contains(explain.Plan, "self-join") {
		t.Errorf("dedup plan not marked self-join:\n%s", explain.Plan)
	}

	w = postJSON(t, s.Handler(), "/v1/query", QueryRequest{A: reqs})
	if w.Code != http.StatusOK {
		t.Fatalf("dedup status %d: %s", w.Code, w.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("dedup response not JSON: %v", err)
	}
	found := false
	for _, m := range resp.Matches {
		if m.A >= m.B {
			t.Fatalf("dedup match violates i<j: %+v", m)
		}
		if m.A == 3 && m.B == len(reqs)-1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted duplicate (3, %d) not found: %s", len(reqs)-1, w.Body.String())
	}
}

// TestQueryDeterministicAcrossWorkers demands byte-identical /v1/query
// responses for every worker pool size, forced and auto strategies
// alike.
func TestQueryDeterministicAcrossWorkers(t *testing.T) {
	reg := StaticRegistry(trainedMatcher(t))
	rng := rand.New(rand.NewSource(17))
	a, b := testkit.DatabasePair(rng, 35)
	req := QueryRequest{A: payloads(a), B: payloads(b)}
	for _, block := range []string{"", "lsh"} {
		req.Block = block
		var want []byte
		for _, workers := range []int{1, 2, 3, 0} {
			s := newTestServer(t, Config{Registry: reg, Workers: workers})
			w := postJSON(t, s.Handler(), "/v1/query", req)
			if w.Code != http.StatusOK {
				t.Fatalf("block=%q workers=%d: status %d: %s", block, workers, w.Code, w.Body.String())
			}
			if want == nil {
				want = w.Body.Bytes()
				continue
			}
			if !bytes.Equal(want, w.Body.Bytes()) {
				t.Fatalf("block=%q workers=%d: response differs from workers=1", block, workers)
			}
		}
	}
}

// TestQueryValidation covers the endpoint's 4xx paths.
func TestQueryValidation(t *testing.T) {
	s := newTestServer(t, Config{MaxBatchPairs: 10})
	h := s.Handler()
	if w := postJSON(t, h, "/v1/query", QueryRequest{}); w.Code != http.StatusBadRequest {
		t.Errorf("empty query: status %d, want 400", w.Code)
	}
	small := []RecordPayload{{"name": "ada"}, {"name": "ada"}}
	if w := postJSON(t, h, "/v1/query", QueryRequest{A: small, Block: "bogus"}); w.Code != http.StatusBadRequest {
		t.Errorf("bogus block: status %d, want 400", w.Code)
	}
	if w := postJSON(t, h, "/v1/query", QueryRequest{A: []RecordPayload{{"nope": "x"}, {"name": "y"}}}); w.Code != http.StatusBadRequest {
		t.Errorf("unknown attribute: status %d, want 400", w.Code)
	}
	big := make([]RecordPayload, 11)
	for i := range big {
		big[i] = RecordPayload{"name": "r"}
	}
	if w := postJSON(t, h, "/v1/query", QueryRequest{A: big}); w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized query: status %d, want 413", w.Code)
	}
	bad := 1.5
	if w := postJSON(t, h, "/v1/query", QueryRequest{A: small, Threshold: &bad}); w.Code != http.StatusBadRequest {
		t.Errorf("threshold 1.5: status %d, want 400", w.Code)
	}
}
