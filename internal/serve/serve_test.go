package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"transer/internal/compare"
	"transer/internal/dataset"
	"transer/internal/ml"
	"transer/internal/ml/logreg"
	"transer/internal/model"
	"transer/internal/obs"
	"transer/internal/testkit"
)

// TestMain wraps the suite in a goroutine-leak check: every handler,
// gate waiter and scoring worker must be gone once the tests finish.
func TestMain(m *testing.M) {
	before := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		for i := 0; i < 50; i++ {
			if runtime.NumGoroutine() <= before {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after := runtime.NumGoroutine(); after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			fmt.Fprintf(os.Stderr, "goroutine leak: %d before, %d after\n%s\n", before, after, buf[:n])
			code = 1
		}
	}
	os.Exit(code)
}

// trainedMatcher builds a real artifact end to end: a logreg trained
// on comparison vectors of a generated database pair, exported and
// re-loaded through the serialised form.
func trainedMatcher(tb testing.TB) *model.Matcher {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	a, b := testkit.DatabasePair(rng, 40)
	scheme := compare.DefaultScheme(a.Schema)
	var x [][]float64
	var y []int
	for _, ra := range a.Records {
		for _, rb := range b.Records {
			x = append(x, scheme.Pair(ra, rb))
			if ra.EntityID == rb.EntityID {
				y = append(y, 1)
			} else {
				y = append(y, 0)
			}
		}
	}
	clf := logreg.New(logreg.Config{})
	if err := clf.Fit(x, y); err != nil {
		tb.Fatalf("Fit: %v", err)
	}
	art, err := model.New("test-model", clf, a.Schema, scheme)
	if err != nil {
		tb.Fatalf("model.New: %v", err)
	}
	enc, err := art.Encode()
	if err != nil {
		tb.Fatalf("Encode: %v", err)
	}
	dec, err := model.Decode(enc)
	if err != nil {
		tb.Fatalf("Decode: %v", err)
	}
	m, err := model.NewMatcher(dec)
	if err != nil {
		tb.Fatalf("NewMatcher: %v", err)
	}
	return m
}

func newTestServer(tb testing.TB, cfg Config) *Server {
	tb.Helper()
	if cfg.Registry == nil {
		cfg.Registry = StaticRegistry(trainedMatcher(tb))
	}
	s, err := New(cfg)
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	return s
}

func postJSON(tb testing.TB, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	tb.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		tb.Fatalf("marshal: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func getJSON(tb testing.TB, h http.Handler, path string, into any) *httptest.ResponseRecorder {
	tb.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	if into != nil {
		if err := json.Unmarshal(w.Body.Bytes(), into); err != nil {
			tb.Fatalf("GET %s: invalid JSON %q: %v", path, w.Body.String(), err)
		}
	}
	return w
}

func samplePair() MatchRequest {
	return MatchRequest{
		A: RecordPayload{"name": "willow tam", "desc": "quiet river harbour", "year": "1987"},
		B: RecordPayload{"name": "willow tam", "desc": "quiet river harbor", "year": "1987"},
	}
}

func TestMatchEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	w := postJSON(t, h, "/v1/match", samplePair())
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp MatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	m := s.reg.Matcher()
	// The endpoint must reproduce the matcher's own scoring exactly.
	ra, _ := m.RecordFromValues(samplePair().A)
	rb, _ := m.RecordFromValues(samplePair().B)
	x := m.Vector(ra, rb)
	want := m.Score([][]float64{x}, 1)[0]
	if resp.Probability != want {
		t.Errorf("endpoint probability %v, matcher scores %v", resp.Probability, want)
	}
	if resp.Match != m.Decide(want) {
		t.Errorf("endpoint decision %v inconsistent with threshold", resp.Match)
	}
	if len(resp.Vector) != len(m.Scheme.FeatureNames()) {
		t.Errorf("vector has %d features, scheme %d", len(resp.Vector), len(m.Scheme.FeatureNames()))
	}
	if resp.Model != "test-model" {
		t.Errorf("model name %q", resp.Model)
	}
}

func TestMatchRejectsBadInput(t *testing.T) {
	h := newTestServer(t, Config{}).Handler()
	cases := map[string]any{
		"unknown attribute": MatchRequest{A: RecordPayload{"nom": "x"}, B: RecordPayload{}},
		"unknown field":     map[string]any{"a": map[string]string{}, "b": map[string]string{}, "typo": 1},
	}
	for name, body := range cases {
		if w := postJSON(t, h, "/v1/match", body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, w.Code, w.Body.String())
		}
	}
	// Wrong method → 405 from the method-scoped mux pattern.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/match", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/match: status %d, want 405", w.Code)
	}
}

// TestBatchDeterministicAcrossWorkers is the serving determinism
// guarantee: the full response body is byte-identical for every worker
// pool size (run under -race in CI).
func TestBatchDeterministicAcrossWorkers(t *testing.T) {
	reg := StaticRegistry(trainedMatcher(t))
	rng := rand.New(rand.NewSource(3))
	a, b := testkit.DatabasePair(rng, 40)
	var req BatchRequest
	for len(req.Pairs) < 2*scoreBlock+17 {
		for _, ra := range a.Records {
			for _, rb := range b.Records {
				req.Pairs = append(req.Pairs, MatchRequest{
					A: RecordPayload{"name": ra.Values[0], "desc": ra.Values[1], "year": ra.Values[2]},
					B: RecordPayload{"name": rb.Values[0], "desc": rb.Values[1], "year": rb.Values[2]},
				})
			}
		}
	}
	if len(req.Pairs) < 2*scoreBlock {
		t.Fatalf("batch of %d pairs does not span multiple scoring blocks", len(req.Pairs))
	}
	var want []byte
	for _, workers := range []int{1, 2, 3, 0} {
		s := newTestServer(t, Config{Registry: reg, Workers: workers, MaxBatchPairs: len(req.Pairs)})
		w := postJSON(t, s.Handler(), "/v1/match/batch", req)
		if w.Code != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, w.Code, w.Body.String())
		}
		if want == nil {
			want = w.Body.Bytes()
			continue
		}
		if !bytes.Equal(want, w.Body.Bytes()) {
			t.Fatalf("workers=%d: batch response differs from workers=1", workers)
		}
	}
	var resp BatchResponse
	if err := json.Unmarshal(want, &resp); err != nil {
		t.Fatalf("batch response not JSON: %v", err)
	}
	if resp.Count != len(req.Pairs) || len(resp.Results) != len(req.Pairs) {
		t.Fatalf("batch returned %d/%d results for %d pairs", resp.Count, len(resp.Results), len(req.Pairs))
	}
	for i, r := range resp.Results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
	}
}

func TestBatchLimits(t *testing.T) {
	s := newTestServer(t, Config{MaxBatchPairs: 2})
	h := s.Handler()
	if w := postJSON(t, h, "/v1/match/batch", BatchRequest{}); w.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", w.Code)
	}
	over := BatchRequest{Pairs: []MatchRequest{samplePair(), samplePair(), samplePair()}}
	if w := postJSON(t, h, "/v1/match/batch", over); w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", w.Code)
	}
}

// TestShedWhenSaturated fills the admission gate and verifies the next
// request is rejected with 429 + Retry-After instead of queueing.
func TestShedWhenSaturated(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1})
	h := s.Handler()
	// Occupy every ticket (slot + queue) directly.
	for i := 0; i < cap(s.gate.tickets); i++ {
		s.gate.tickets <- struct{}{}
	}
	w := postJSON(t, h, "/v1/match", samplePair())
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Errorf("429 response lacks Retry-After")
	}
	// Metadata endpoints stay reachable while saturated.
	if w := getJSON(t, h, "/healthz", nil); w.Code != http.StatusOK {
		t.Errorf("healthz unavailable under saturation: %d", w.Code)
	}
	if got := s.metrics.Counter("serve.shed_total").Value(); got != 1 {
		t.Errorf("shed counter %d, want 1", got)
	}
	// Free the gate; service resumes.
	for i := 0; i < cap(s.gate.tickets); i++ {
		<-s.gate.tickets
	}
	if w := postJSON(t, h, "/v1/match", samplePair()); w.Code != http.StatusOK {
		t.Errorf("after draining the gate: status %d", w.Code)
	}
}

func TestScoreWithContextCancellation(t *testing.T) {
	m := trainedMatcher(t)
	x := make([][]float64, 4*scoreBlock)
	for i := range x {
		x[i] = make([]float64, len(m.Scheme.FeatureNames()))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := scoreWithContext(ctx, m, x, 2); err == nil {
		t.Fatalf("scoring under a canceled context must fail")
	}
	got, err := scoreWithContext(context.Background(), m, x, 2)
	if err != nil || len(got) != len(x) {
		t.Fatalf("uncanceled scoring: %v, %d results", err, len(got))
	}
}

func TestGateContextWhileQueued(t *testing.T) {
	g := newGate(1, 4)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("queued acquire under deadline: %v", err)
	}
	g.release()
	// The abandoned ticket was returned: the gate is empty again.
	if err := g.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	g.release()
	if len(g.tickets) != 0 || len(g.slots) != 0 {
		t.Fatalf("gate leaked tickets: %d tickets, %d slots", len(g.tickets), len(g.slots))
	}
}

func TestModelsAndReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	writeConstantModel(t, path, 0.25)
	reg, err := NewModelRegistry(path)
	if err != nil {
		t.Fatalf("NewModelRegistry: %v", err)
	}
	s := newTestServer(t, Config{Registry: reg})
	h := s.Handler()

	var models ModelsResponse
	if w := getJSON(t, h, "/v1/models", &models); w.Code != http.StatusOK {
		t.Fatalf("GET /v1/models: %d", w.Code)
	}
	// The active model always leads the listing (with a catalog
	// attached, catalog entries follow it — TestModelsWithCatalog).
	if len(models.Models) == 0 || models.Models[0].Classifier != "constant" ||
		models.Models[0].Reloads != 0 || models.Models[0].Source != "active" {
		t.Fatalf("models response %+v", models)
	}

	probe := MatchRequest{A: RecordPayload{"title": "x"}, B: RecordPayload{"title": "x"}}
	var before MatchResponse
	json.Unmarshal(postJSON(t, h, "/v1/match", probe).Body.Bytes(), &before)
	if before.Probability != 0.25 {
		t.Fatalf("initial model scores %v, want 0.25", before.Probability)
	}

	// Swap the artifact on disk and hot-reload.
	writeConstantModel(t, path, 0.75)
	if w := postJSON(t, h, "/v1/models/reload", struct{}{}); w.Code != http.StatusOK {
		t.Fatalf("reload: %d: %s", w.Code, w.Body.String())
	}
	var after MatchResponse
	json.Unmarshal(postJSON(t, h, "/v1/match", probe).Body.Bytes(), &after)
	if after.Probability != 0.75 {
		t.Fatalf("reloaded model scores %v, want 0.75", after.Probability)
	}

	// A corrupt artifact must fail the reload and keep the old model.
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if w := postJSON(t, h, "/v1/models/reload", struct{}{}); w.Code != http.StatusInternalServerError {
		t.Fatalf("corrupt reload: %d, want 500", w.Code)
	}
	var still MatchResponse
	json.Unmarshal(postJSON(t, h, "/v1/match", probe).Body.Bytes(), &still)
	if still.Probability != 0.75 {
		t.Fatalf("after failed reload the server scores %v, want the previous 0.75", still.Probability)
	}
}

func writeConstantModel(tb testing.TB, path string, p float64) {
	tb.Helper()
	sch := dataset.Schema{Attributes: []dataset.Attribute{{Name: "title", Type: dataset.AttrName}}}
	art, err := model.New("const-model", &ml.Constant{P: p}, sch, compare.DefaultScheme(sch))
	if err != nil {
		tb.Fatalf("model.New: %v", err)
	}
	if err := art.WriteFile(path); err != nil {
		tb.Fatalf("WriteFile: %v", err)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	tr := obs.New("serve-test")
	s := newTestServer(t, Config{Tracer: tr})
	h := s.Handler()

	var health HealthResponse
	if w := getJSON(t, h, "/healthz", &health); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	if health.Status != "ok" || health.Model != "test-model" {
		t.Errorf("health response %+v", health)
	}

	// Generate some traffic, then check the snapshot reflects it.
	for i := 0; i < 3; i++ {
		if w := postJSON(t, h, "/v1/match", samplePair()); w.Code != http.StatusOK {
			t.Fatalf("match %d: %d", i, w.Code)
		}
	}
	var metrics MetricsResponse
	if w := getJSON(t, h, "/metrics", &metrics); w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	if metrics.Schema != MetricsSchemaVersion {
		t.Errorf("metrics schema %q, want %q", metrics.Schema, MetricsSchemaVersion)
	}
	if got := metrics.Metrics.Counters["serve.requests_total"]; got != 3 {
		t.Errorf("requests_total %d, want 3", got)
	}
	if got := metrics.Metrics.Counters["serve.match.requests_total"]; got != 3 {
		t.Errorf("match.requests_total %d, want 3", got)
	}
	lat, ok := metrics.Metrics.Histograms["serve.request_seconds"]
	if !ok || lat.Count != 3 {
		t.Errorf("latency histogram %+v", lat)
	}
	if metrics.UptimeSeconds <= 0 {
		t.Errorf("uptime %v", metrics.UptimeSeconds)
	}

	// The tracer recorded sampled request spans.
	found := false
	for _, c := range childNames(tr) {
		if strings.HasPrefix(c, "request:match") {
			found = true
		}
	}
	if !found {
		t.Errorf("tracer has no request spans: %v", childNames(tr))
	}
}

func childNames(tr *obs.Tracer) []string {
	var out []string
	for _, c := range tr.Root().Children() {
		out = append(out, c.Name())
	}
	return out
}

// TestSpanSampleCap verifies the span tree stays bounded: only the
// first SpanSample requests record spans, while metrics keep counting.
func TestSpanSampleCap(t *testing.T) {
	tr := obs.New("serve-test")
	s := newTestServer(t, Config{Tracer: tr, SpanSample: 2})
	h := s.Handler()
	for i := 0; i < 5; i++ {
		if w := postJSON(t, h, "/v1/match", samplePair()); w.Code != http.StatusOK {
			t.Fatalf("match %d: %d", i, w.Code)
		}
	}
	if n := len(tr.Root().Children()); n != 2 {
		t.Errorf("span tree has %d request spans, want the sample cap 2", n)
	}
	if got := s.metrics.Counter("serve.requests_total").Value(); got != 5 {
		t.Errorf("requests_total %d, want 5 (metrics must not be sampled)", got)
	}
}

func BenchmarkServeMatch(b *testing.B) {
	s := newTestServer(b, Config{})
	h := s.Handler()
	body, err := json.Marshal(samplePair())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/match", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

func BenchmarkServeBatch(b *testing.B) {
	s := newTestServer(b, Config{})
	h := s.Handler()
	req := BatchRequest{}
	for i := 0; i < 256; i++ {
		req.Pairs = append(req.Pairs, samplePair())
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest(http.MethodPost, "/v1/match/batch", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// TestNoQueueConfig: MaxQueue 0 keeps the default queue, a negative
// value disables queueing entirely — with every slot busy the very
// next request sheds instead of waiting.
func TestNoQueueConfig(t *testing.T) {
	reg := StaticRegistry(trainedMatcher(t))
	dflt := newTestServer(t, Config{Registry: reg})
	if got := cap(dflt.gate.tickets) - cap(dflt.gate.slots); got != 64 {
		t.Errorf("default queue depth %d, want 64", got)
	}
	s := newTestServer(t, Config{Registry: reg, MaxInFlight: 2, MaxQueue: -1})
	if got, want := cap(s.gate.tickets), cap(s.gate.slots); got != want {
		t.Fatalf("no-queue server has %d tickets for %d slots", got, want)
	}
	s.gate.tickets <- struct{}{}
	s.gate.tickets <- struct{}{}
	w := postJSON(t, s.Handler(), "/v1/match", samplePair())
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("no-queue server with busy slots answered %d, want 429", w.Code)
	}
	<-s.gate.tickets
	<-s.gate.tickets
}
