package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"transer/internal/model"
)

// ModelRegistry holds the currently served model and supports atomic
// hot reload: a reload builds the full matcher off to the side and
// swaps it in only on success, so in-flight and subsequent requests
// always see a complete, validated model. Each request captures the
// matcher pointer once, so a swap mid-request cannot mix two models'
// outputs.
type ModelRegistry struct {
	path    string
	reloads atomic.Int64

	mu       sync.RWMutex
	matcher  *model.Matcher
	loadedAt time.Time
}

// NewModelRegistry loads the artifact at path into a registry.
func NewModelRegistry(path string) (*ModelRegistry, error) {
	r := &ModelRegistry{path: path}
	if err := r.Reload(); err != nil {
		return nil, err
	}
	return r, nil
}

// StaticRegistry wraps an already-assembled matcher (tests, embedded
// use). Reload is a no-op error-free refresh of the load time.
func StaticRegistry(m *model.Matcher) *ModelRegistry {
	return &ModelRegistry{matcher: m, loadedAt: time.Now()}
}

// Matcher returns the current matcher. The returned value is immutable
// and safe to use for the remainder of a request even across reloads.
func (r *ModelRegistry) Matcher() *model.Matcher {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.matcher
}

// Reload re-reads the artifact from disk and swaps it in. On failure
// the previous model keeps serving and the error is returned.
func (r *ModelRegistry) Reload() error {
	if r.path == "" {
		r.mu.Lock()
		r.loadedAt = time.Now()
		r.mu.Unlock()
		return nil
	}
	m, err := model.LoadMatcher(r.path)
	if err != nil {
		return err
	}
	r.mu.Lock()
	first := r.matcher == nil
	r.matcher = m
	r.loadedAt = time.Now()
	r.mu.Unlock()
	if !first {
		r.reloads.Add(1)
	}
	return nil
}

// Info describes the loaded model for the /v1/models endpoint.
func (r *ModelRegistry) Info() ModelInfo {
	r.mu.RLock()
	m, loadedAt := r.matcher, r.loadedAt
	r.mu.RUnlock()
	a := m.Artifact
	return ModelInfo{
		Name:        a.Name,
		Classifier:  a.Classifier.Type,
		CreatedAt:   a.CreatedAt.UTC().Format(time.RFC3339),
		LoadedAt:    loadedAt.UTC().Format(time.RFC3339),
		Path:        r.path,
		Threshold:   a.Threshold,
		Attributes:  m.AttributeNames(),
		Features:    m.Scheme.FeatureNames(),
		Reloads:     r.reloads.Load(),
		Fingerprint: m.Fingerprint(),
	}
}
