package serve

// Streaming entity-store endpoints. When Config.Stream carries a live
// store (cmd/serve -stream), two more routes join the scored set:
//
//	POST /v1/ingest  admit records into the store, returning each
//	                 record's entity resolution (stable entity IDs,
//	                 journaled merges)
//	POST /v1/resolve read-only probe: which stored entity does this
//	                 record match, without admitting it
//
// Both run behind the same admission gate, per-request deadline and
// request accounting as the scoring endpoints; the store publishes the
// stream.* counter family into the registry it was built with (wired
// to the server's registry by cmd/serve).

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"transer/internal/obs"
	"transer/internal/stream"
)

// IngestResponse is the body of POST /v1/ingest.
type IngestResponse struct {
	Model string `json:"model"`
	// Count is the number of records admitted by this request.
	Count int `json:"count"`
	// Results reports each record's resolution, in request order.
	Results []stream.IngestResult `json:"results"`
	// Stats is the store summary after this ingest.
	Stats stream.Stats `json:"stats"`
}

// ResolveResponse is the body of POST /v1/resolve.
type ResolveResponse struct {
	Model string `json:"model"`
	stream.ResolveResult
	// Provenance explains the decision when the request asked for it
	// (?explain=1).
	Provenance *ResolveProvenance `json:"provenance,omitempty"`
}

// ResolveProvenance is the decision provenance attached to
// POST /v1/resolve?explain=1: the request's trace ID, the exact model
// identity, and the store's full explanation (candidate set with
// per-comparator vectors and scores, decision threshold, and the
// winning entity's journaled merge path).
type ResolveProvenance struct {
	TraceID          string `json:"trace_id,omitempty"`
	ModelFingerprint string `json:"model_fingerprint"`
	stream.Explanation
}

// readBody drains the (size-capped) request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
		} else {
			s.writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		}
		return nil, false
	}
	return data, true
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Stream
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	recs, err := stream.DecodeRecords(data, st.Schema())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(recs) > s.cfg.MaxBatchPairs {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("ingest of %d records exceeds the limit of %d", len(recs), s.cfg.MaxBatchPairs))
		return
	}
	sp := obs.SpanFromContext(r.Context()).Child("ingest")
	defer sp.End()
	results := make([]stream.IngestResult, 0, len(recs))
	for i, rec := range recs {
		res, err := st.Ingest(r.Context(), rec)
		if err != nil {
			// Ingest is sequential and atomic per record: the first
			// len(results) records are admitted, the rest are not.
			if r.Context().Err() != nil {
				s.writeError(w, http.StatusServiceUnavailable,
					fmt.Sprintf("ingest aborted at record %d (%d admitted): %v", i, len(results), err))
			} else {
				s.writeError(w, http.StatusBadRequest,
					fmt.Sprintf("record %d rejected (%d admitted): %v", i, len(results), err))
			}
			return
		}
		results = append(results, res)
	}
	sp.SetInt("records", int64(len(results)))
	s.writeJSON(w, http.StatusOK, IngestResponse{
		Model:   s.reg.Matcher().Artifact.Name,
		Count:   len(results),
		Results: results,
		Stats:   st.Stats(),
	})
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Stream
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	rec, err := stream.DecodeRecord(data, st.Schema())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	sp := obs.SpanFromContext(ctx).Child("resolve")
	defer sp.End()
	resp := ResolveResponse{Model: s.reg.Matcher().Artifact.Name}
	if r.URL.Query().Get("explain") != "" {
		res, exp, err := st.ResolveExplain(ctx, rec)
		if err != nil {
			s.writeError(w, http.StatusServiceUnavailable, "resolve aborted: "+err.Error())
			return
		}
		resp.ResolveResult = res
		resp.Provenance = &ResolveProvenance{
			ModelFingerprint: s.reg.Matcher().Fingerprint(),
			Explanation:      *exp,
		}
		if tc, ok := obs.TraceFromContext(ctx); ok {
			resp.Provenance.TraceID = tc.TraceID.String()
		}
	} else {
		res, err := st.Resolve(ctx, rec)
		if err != nil {
			s.writeError(w, http.StatusServiceUnavailable, "resolve aborted: "+err.Error())
			return
		}
		resp.ResolveResult = res
	}
	sp.SetBool("matched", resp.Matched)
	s.writeJSON(w, http.StatusOK, resp)
}
