package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"transer/internal/obs"
	"transer/internal/stream"
)

// obsStreamServer is streamServer with a structured logger wired into
// both the server and the entity store, as cmd/serve -log-out does.
func obsStreamServer(tb testing.TB, logBuf *bytes.Buffer) (*Server, *stream.Store) {
	tb.Helper()
	m := trainedMatcher(tb)
	tr := obs.New("serve-test")
	logger := obs.NewLogger(logBuf, obs.LevelDebug)
	logger.Instrument(tr.Metrics())
	cfg := stream.FromMatcher(m)
	cfg.Metrics = tr.Metrics()
	cfg.Logger = logger
	st, err := stream.NewStore(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	s := newTestServer(tb, Config{Registry: StaticRegistry(m), Tracer: tr, Logger: logger, Stream: st})
	return s, st
}

// logLines parses every JSONL event the logger emitted.
func logLines(tb testing.TB, buf *bytes.Buffer) []map[string]any {
	tb.Helper()
	var events []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			tb.Fatalf("log line not JSON: %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return events
}

// TestTracePropagationEndToEnd is the PR's acceptance criterion at
// httptest level: a client traceparent flows through one resolve and
// comes back in the response header, the JSONL log, the tail-based
// trace capture, and the decision provenance.
func TestTracePropagationEndToEnd(t *testing.T) {
	var logBuf bytes.Buffer
	s, _ := obsStreamServer(t, &logBuf)
	h := s.Handler()

	rec := map[string]string{"name": "willow tam", "desc": "quiet river harbour", "year": "1987"}
	if w := postJSON(t, h, "/v1/ingest", streamPayload(rec, rec)); w.Code != http.StatusOK {
		t.Fatalf("ingest: %d: %s", w.Code, w.Body.String())
	}

	client := obs.NewTraceContext()
	body, err := json.Marshal(map[string]any{"attrs": rec})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/resolve?explain=1", bytes.NewReader(body))
	req.Header.Set("Traceparent", client.Traceparent())
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("resolve: %d: %s", w.Code, w.Body.String())
	}

	// 1. The response traceparent carries the client's trace ID (with a
	// fresh server-side span ID).
	echo, err := obs.ParseTraceparent(w.Header().Get("Traceparent"))
	if err != nil {
		t.Fatalf("response traceparent %q: %v", w.Header().Get("Traceparent"), err)
	}
	wantTrace := client.TraceID.String()
	if echo.TraceID.String() != wantTrace {
		t.Fatalf("response trace ID %s, want client's %s", echo.TraceID, wantTrace)
	}
	if echo.SpanID == client.SpanID {
		t.Fatal("server must mint a child span ID, not echo the client's")
	}

	// 2. The decision provenance is stamped with the same trace and the
	// model identity, and its vectors align with the feature names.
	var res ResolveResponse
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Provenance == nil {
		t.Fatal("?explain=1 resolve returned no provenance")
	}
	if res.Provenance.TraceID != wantTrace {
		t.Fatalf("provenance trace %s, want %s", res.Provenance.TraceID, wantTrace)
	}
	var models ModelsResponse
	getJSON(t, h, "/v1/models", &models)
	if len(models.Models) == 0 || models.Models[0].Fingerprint == "" {
		t.Fatalf("models response missing fingerprint: %+v", models)
	}
	if res.Provenance.ModelFingerprint != models.Models[0].Fingerprint {
		t.Fatalf("provenance fingerprint %s, /v1/models says %s",
			res.Provenance.ModelFingerprint, models.Models[0].Fingerprint)
	}
	if len(res.Provenance.Candidates) == 0 {
		t.Fatal("explain provenance has no candidates for a matching probe")
	}
	for _, c := range res.Provenance.Candidates {
		if len(c.Vector) != len(res.Provenance.Features) {
			t.Fatalf("candidate vector %v not aligned with features %v",
				c.Vector, res.Provenance.Features)
		}
	}
	if !res.Matched {
		t.Fatalf("probe should match the ingested duplicates: %+v", res.ResolveResult)
	}

	// 3. At least one JSONL event carries the trace ID.
	var hits int
	for _, ev := range logLines(t, &logBuf) {
		if ev["trace_id"] == wantTrace {
			hits++
		}
	}
	if hits == 0 {
		t.Fatalf("no log event carries trace %s:\n%s", wantTrace, logBuf.String())
	}

	// 4. The tail-based capture retains the request under the same ID.
	var traces TracesResponse
	getJSON(t, h, "/debug/traces", &traces)
	var captured bool
	for _, ct := range traces.Capture.Recent {
		if ct.TraceID == wantTrace && ct.Route == "resolve" {
			captured = true
			if ct.Span == nil {
				t.Error("captured resolve trace lost its span tree")
			}
		}
	}
	if !captured {
		t.Fatalf("trace %s not in /debug/traces recent: %+v", wantTrace, traces.Capture.Recent)
	}
}

// TestTraceMintedWhenHeaderAbsent checks requests without a client
// traceparent still get a valid trace assigned and echoed.
func TestTraceMintedWhenHeaderAbsent(t *testing.T) {
	s := newTestServer(t, Config{Tracer: obs.New("serve-test")})
	h := s.Handler()
	w := postJSON(t, h, "/v1/match", samplePair())
	if w.Code != http.StatusOK {
		t.Fatalf("match: %d: %s", w.Code, w.Body.String())
	}
	tc, err := obs.ParseTraceparent(w.Header().Get("Traceparent"))
	if err != nil {
		t.Fatalf("minted traceparent %q: %v", w.Header().Get("Traceparent"), err)
	}
	if !tc.Valid() {
		t.Fatalf("minted trace context invalid: %+v", tc)
	}
}

// TestDebugTracesOutliveSpanBudget is the SpanSample-bias regression
// at the HTTP level: with a tiny span budget and a small ring, late
// requests and late errors are still retained — the old first-N
// sampling would have kept only the boring warm-up traffic.
func TestDebugTracesOutliveSpanBudget(t *testing.T) {
	s := newTestServer(t, Config{Tracer: obs.New("serve-test"), SpanSample: 2, TraceBuffer: 4})
	h := s.Handler()

	const good = 10
	for i := 0; i < good; i++ {
		if w := postJSON(t, h, "/v1/match", samplePair()); w.Code != http.StatusOK {
			t.Fatalf("match %d: %d", i, w.Code)
		}
	}
	// One malformed request after the budget is long spent.
	req := httptest.NewRequest(http.MethodPost, "/v1/match", strings.NewReader("{"))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("malformed request: %d", w.Code)
	}

	var traces TracesResponse
	getJSON(t, h, "/debug/traces", &traces)
	c := traces.Capture
	if c.Recorded != good+1 {
		t.Fatalf("recorded %d traces, want %d", c.Recorded, good+1)
	}
	if len(c.Recent) != 4 {
		t.Fatalf("recent ring holds %d, want TraceBuffer=4", len(c.Recent))
	}
	// The newest entry is the late error — proof the ring rolls.
	last := c.Recent[len(c.Recent)-1]
	if !last.Error || last.Status != http.StatusBadRequest {
		t.Fatalf("newest recent trace should be the 400: %+v", last)
	}
	if len(c.Errors) != 1 || c.Errors[0].Status != http.StatusBadRequest {
		t.Fatalf("errors ring: %+v", c.Errors)
	}
	// Requests beyond the span budget still carry detached span trees.
	if last.Span == nil {
		t.Fatal("request beyond SpanSample budget lost its span tree")
	}
	if len(c.Slowest) == 0 {
		t.Fatal("slowest class empty")
	}
}

var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+0-9.eE]+)$`)

// TestMetricsPromExposition checks GET /metrics?format=prom renders
// parseable Prometheus 0.0.4 text with the serve, runtime and stream
// families present.
func TestMetricsPromExposition(t *testing.T) {
	s, _ := streamServer(t)
	h := s.Handler()
	if w := postJSON(t, h, "/v1/match", samplePair()); w.Code != http.StatusOK {
		t.Fatalf("match: %d", w.Code)
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics?format=prom", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body := w.Body.String()
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable exposition line %q", line)
		}
	}
	for _, want := range []string{
		"transer_serve_requests_total ",
		"transer_runtime_goroutines ",
		"transer_stream_wal_seq ",
		"transer_stream_records_since_snapshot ",
		`transer_serve_request_seconds_bucket{le="+Inf"}`,
		"transer_serve_request_seconds_count ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The JSON form stays the default.
	var metrics MetricsResponse
	getJSON(t, h, "/metrics", &metrics)
	if metrics.Metrics.Counters["serve.requests_total"] < 1 {
		t.Fatalf("JSON metrics: %+v", metrics.Metrics.Counters)
	}
}

// TestHealthRuntimeAndStream checks /healthz carries the process
// runtime sample and, on a streaming server, the live store stats.
func TestHealthRuntimeAndStream(t *testing.T) {
	s, _ := streamServer(t)
	h := s.Handler()
	rec := map[string]string{"name": "willow tam", "desc": "quiet river harbour", "year": "1987"}
	if w := postJSON(t, h, "/v1/ingest", streamPayload(rec)); w.Code != http.StatusOK {
		t.Fatalf("ingest: %d", w.Code)
	}

	var health HealthResponse
	getJSON(t, h, "/healthz", &health)
	if health.Runtime == nil || health.Runtime.Goroutines < 1 || health.Runtime.HeapAllocBytes == 0 {
		t.Fatalf("runtime sample: %+v", health.Runtime)
	}
	if health.Stream == nil || health.Stream.Records != 1 {
		t.Fatalf("stream stats: %+v", health.Stream)
	}

	// A non-streaming server omits the stream block but keeps runtime.
	s2 := newTestServer(t, Config{})
	var health2 HealthResponse
	getJSON(t, s2.Handler(), "/healthz", &health2)
	if health2.Stream != nil {
		t.Fatalf("non-streaming server reported stream stats: %+v", health2.Stream)
	}
	if health2.Runtime == nil {
		t.Fatal("non-streaming server lost the runtime sample")
	}
}

// TestQueryExplainProvenance checks POST /v1/query?explain=1 attaches
// the model fingerprint and one comparison vector per returned match.
func TestQueryExplainProvenance(t *testing.T) {
	s := newTestServer(t, Config{Tracer: obs.New("serve-test")})
	h := s.Handler()
	rec := RecordPayload{"name": "willow tam", "desc": "quiet river harbour", "year": "1987"}
	w := postJSON(t, h, "/v1/query?explain=1", QueryRequest{A: []RecordPayload{rec, rec}})
	if w.Code != http.StatusOK {
		t.Fatalf("query: %d: %s", w.Code, w.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count == 0 {
		t.Fatalf("identical records should self-join: %+v", resp)
	}
	p := resp.Provenance
	if p == nil {
		t.Fatal("?explain=1 query returned no provenance")
	}
	if p.ModelFingerprint != s.reg.Matcher().Fingerprint() {
		t.Fatalf("fingerprint %s, want %s", p.ModelFingerprint, s.reg.Matcher().Fingerprint())
	}
	if len(p.Vectors) != len(resp.Matches) {
		t.Fatalf("%d vectors for %d matches", len(p.Vectors), len(resp.Matches))
	}
	for i, v := range p.Vectors {
		if len(v) != len(p.Features) {
			t.Fatalf("vector %d: %v not aligned with features %v", i, v, p.Features)
		}
	}
	if p.TraceID == "" {
		t.Fatal("query provenance missing trace ID")
	}
}

// TestResponsesIdenticalWithLoggingOnOff is the determinism contract
// at the HTTP level: with a pinned client traceparent, every response
// body is byte-identical whether structured logging and tracing are
// enabled or not. Observability observes; it never participates.
func TestResponsesIdenticalWithLoggingOnOff(t *testing.T) {
	build := func(logged bool) http.Handler {
		m := trainedMatcher(t)
		cfg := stream.FromMatcher(m)
		scfg := Config{Registry: StaticRegistry(m)}
		if logged {
			var sink bytes.Buffer
			tr := obs.New("serve-test")
			logger := obs.NewLogger(&sink, obs.LevelDebug)
			logger.Instrument(tr.Metrics())
			cfg.Metrics = tr.Metrics()
			cfg.Logger = logger
			scfg.Tracer = tr
			scfg.Logger = logger
		}
		st, err := stream.NewStore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		scfg.Stream = st
		return newTestServer(t, scfg).Handler()
	}

	on, off := build(true), build(false)
	rec := map[string]string{"name": "willow tam", "desc": "quiet river harbour", "year": "1987"}
	client := obs.NewTraceContext()
	do := func(h http.Handler, method, path string, payload any) string {
		b, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(method, path, bytes.NewReader(b))
		req.Header.Set("Traceparent", client.Traceparent())
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("%s %s: %d: %s", method, path, w.Code, w.Body.String())
		}
		return w.Body.String()
	}

	steps := []struct {
		method, path string
		payload      any
	}{
		{http.MethodPost, "/v1/ingest", streamPayload(rec, rec)},
		{http.MethodPost, "/v1/resolve?explain=1", map[string]any{"attrs": rec}},
		{http.MethodPost, "/v1/match", samplePair()},
		{http.MethodPost, "/v1/query?explain=1", QueryRequest{A: []RecordPayload{rec, rec}}},
	}
	for _, step := range steps {
		a := do(on, step.method, step.path, step.payload)
		b := do(off, step.method, step.path, step.payload)
		if a != b {
			t.Fatalf("%s %s differs with logging on vs off:\non:  %s\noff: %s",
				step.method, step.path, a, b)
		}
	}
}
