// Package datagen generates the synthetic stand-ins for the seven data
// sets of the TransER paper (DESIGN.md Section 1.4). Each generator is
// seeded and deterministic and emits two databases (the two sides of an
// ER domain) whose records carry ground-truth entity identifiers.
//
// The generators control the three distributional properties the paper
// identifies as the challenges of TL for ER:
//
//   - marginal shift: the two domains of a transfer pair use different
//     corruption profiles, so P(X^S) != P(X^T);
//   - class-conditional conflicts: "confusable sibling" entities share
//     most attribute values with a true entity (extended versions of a
//     paper, re-releases of a song, later children of the same
//     parents), producing near-identical feature vectors with opposite
//     labels — the Ambiguous columns of Table 1;
//   - imbalance and bi-modality: blocking admits many more non-matches
//     than matches, and corruption spreads match similarities below
//     1.0, giving the two-peak distributions of Figure 2.
package datagen

import (
	"fmt"
	"math/rand"
	"strconv"

	"transer/internal/dataset"
)

// Kind selects the domain template (schema + entity model).
type Kind int

const (
	// Bibliographic is the 4-attribute publication domain
	// (DBLP/ACM/Scholar-like).
	Bibliographic Kind = iota
	// Music is the 5-attribute song domain (MSD/Musicbrainz-like).
	Music
	// DemographicBpDp is the 8-attribute certificate domain linking
	// birth parents to death parents (IOS/KIL Bp-Dp-like).
	DemographicBpDp
	// DemographicBpBp is the 11-attribute certificate domain linking
	// birth parents across two birth certificates (IOS/KIL Bp-Bp-like).
	DemographicBpBp
)

// NoiseProfile parameterises one database side's corruption model.
type NoiseProfile struct {
	// Rate is the per-value probability of character-level corruption.
	Rate float64
	// MissRate is the per-value probability of a missing value.
	MissRate float64
	// AbbrevRate is the per-value probability of token abbreviation.
	AbbrevRate float64
	// FormatShiftRate is the per-value probability of a systematic
	// representation change (name order reversal, edition suffixes) —
	// the marginal-shift knob between domains.
	FormatShiftRate float64
}

// VocabProfile controls how rich each vocabulary pool is for a domain,
// as a fraction of the full list (0 means 1.0 = full richness). A
// restricted pool models small, isolated populations — on the real
// Isle of Skye a handful of clan surnames and crofting occupations
// dominate the certificates — which strips those attributes of
// discriminative power and shifts the class conditional distribution
// P(Y|X) relative to richer domains.
type VocabProfile struct {
	Surnames, FirstNames, Occupations, Streets, Parishes float64
}

func fracOf(n int, f float64) int {
	if f <= 0 || f >= 1 {
		return n
	}
	k := int(float64(n) * f)
	if k < 3 {
		k = 3
	}
	return k
}

// vocabSet is a domain's concrete vocabulary pools.
type vocabSet struct {
	first, sur, occ, street, parish []string
}

func newVocabSet(p VocabProfile, rng *rand.Rand) *vocabSet {
	sub := func(list []string, f float64) []string {
		k := fracOf(len(list), f)
		if k >= len(list) {
			return list
		}
		idx := rng.Perm(len(list))[:k]
		out := make([]string, k)
		for i, j := range idx {
			out[i] = list[j]
		}
		return out
	}
	return &vocabSet{
		first:  sub(firstNames, p.FirstNames),
		sur:    sub(surnameBases, p.Surnames),
		occ:    sub(occupations, p.Occupations),
		street: sub(streetNames, p.Streets),
		parish: sub(parishes, p.Parishes),
	}
}

func (v *vocabSet) personName(rng *rand.Rand) (first, surname string) {
	first = pick(rng, v.first)
	if rng.Float64() < 0.5 {
		first += " " + pick(rng, v.first)
	}
	surname = pick(rng, v.sur) + pick(rng, surnameSuffixes)
	return first, surname
}

// Spec fully describes one generated domain (a pair of databases).
type Spec struct {
	// Name prefixes the generated database names ("<Name>-A"/"-B").
	Name string
	// Kind selects the schema and entity model.
	Kind Kind
	// Seed drives all randomness; equal specs generate equal data.
	Seed int64
	// NumEntities is the size of the underlying entity universe.
	NumEntities int
	// FracA and FracB are the probabilities that an entity appears in
	// database A and B respectively; entities drawn for both sides
	// become true matches.
	FracA, FracB float64
	// AmbiguityFrac is the fraction of entities that receive a
	// confusable sibling entity (a distinct entity sharing most
	// attribute values).
	AmbiguityFrac float64
	// NoiseA and NoiseB are the corruption profiles of the two sides.
	NoiseA, NoiseB NoiseProfile
	// Vocab restricts the vocabulary pools (zero value = full pools).
	Vocab VocabProfile
}

// entityModel abstracts the per-kind schema and value generation.
type entityModel interface {
	schema() dataset.Schema
	// newEntity draws the canonical attribute values of a new entity.
	newEntity(rng *rand.Rand, serial int) []string
	// sibling derives a confusable but distinct entity from vals.
	sibling(rng *rand.Rand, vals []string) []string
}

func modelFor(kind Kind, vocab *vocabSet) entityModel {
	switch kind {
	case Bibliographic:
		return bibModel{}
	case Music:
		return musicModel{}
	case DemographicBpDp:
		return demogModel{wide: false, vocab: vocab}
	case DemographicBpBp:
		return demogModel{wide: true, vocab: vocab}
	}
	panic(fmt.Sprintf("datagen: unknown kind %d", int(kind)))
}

// Generate produces the two databases of the specified domain.
func Generate(spec Spec) (a, b *dataset.Database) {
	if spec.NumEntities <= 0 {
		panic("datagen: NumEntities must be positive")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	model := modelFor(spec.Kind, newVocabSet(spec.Vocab, rng))
	sch := model.schema()

	// Entity universe, with confusable siblings appended.
	type entity struct {
		id   string
		vals []string
	}
	entities := make([]entity, 0, spec.NumEntities*2)
	for i := 0; i < spec.NumEntities; i++ {
		vals := model.newEntity(rng, i)
		entities = append(entities, entity{id: fmt.Sprintf("e%d", i), vals: vals})
		if rng.Float64() < spec.AmbiguityFrac {
			entities = append(entities, entity{
				id:   fmt.Sprintf("e%d-sib", i),
				vals: model.sibling(rng, vals),
			})
		}
	}

	a = &dataset.Database{Name: spec.Name + "-A", Schema: sch}
	b = &dataset.Database{Name: spec.Name + "-B", Schema: sch}
	corA := &corruptor{rng: rng, rate: spec.NoiseA.Rate, missRate: spec.NoiseA.MissRate, abbrevRate: spec.NoiseA.AbbrevRate, formatShiftRate: spec.NoiseA.FormatShiftRate}
	corB := &corruptor{rng: rng, rate: spec.NoiseB.Rate, missRate: spec.NoiseB.MissRate, abbrevRate: spec.NoiseB.AbbrevRate, formatShiftRate: spec.NoiseB.FormatShiftRate}

	emit := func(db *dataset.Database, cor *corruptor, ent entity, side string) {
		vals := make([]string, len(ent.vals))
		for j, v := range ent.vals {
			switch sch.Attributes[j].Type {
			case dataset.AttrYear:
				vals[j] = cor.corruptYear(v)
			case dataset.AttrNumeric:
				vals[j] = cor.corruptNumeric(v)
			case dataset.AttrName:
				vals[j] = cor.corruptString(v, true)
			default:
				vals[j] = cor.corruptString(v, false)
			}
		}
		db.Records = append(db.Records, dataset.Record{
			ID:       side + "-" + ent.id,
			EntityID: ent.id,
			Values:   vals,
		})
	}

	for _, ent := range entities {
		inA := rng.Float64() < spec.FracA
		inB := rng.Float64() < spec.FracB
		if inA {
			emit(a, corA, ent, "a")
		}
		if inB {
			emit(b, corB, ent, "b")
		}
	}
	return a, b
}

// --- bibliographic -------------------------------------------------------

type bibModel struct{}

func (bibModel) schema() dataset.Schema {
	return dataset.Schema{Attributes: []dataset.Attribute{
		{Name: "title", Type: dataset.AttrText},
		{Name: "authors", Type: dataset.AttrName},
		{Name: "venue", Type: dataset.AttrText},
		{Name: "year", Type: dataset.AttrYear},
	}}
}

func (bibModel) newEntity(rng *rand.Rand, serial int) []string {
	venue := pick(rng, venues)
	if long, ok := venueLong[venue]; ok && rng.Float64() < 0.3 {
		venue = long
	}
	return []string{
		paperTitle(rng, serial),
		authorList(rng),
		venue,
		strconv.Itoa(1995 + rng.Intn(26)),
	}
}

// sibling models an extended/companion version of a paper: same author
// group and venue family, near-identical title, adjacent year. Such
// pairs generate near-match feature vectors labelled non-match.
func (bibModel) sibling(rng *rand.Rand, vals []string) []string {
	out := append([]string(nil), vals...)
	switch rng.Intn(3) {
	case 0:
		out[0] = vals[0] + " extended"
	case 1:
		out[0] = vals[0] + " revisited"
	default:
		out[0] = "on " + vals[0]
	}
	y, _ := strconv.Atoi(vals[3])
	out[3] = strconv.Itoa(y + 1)
	return out
}

// --- music ---------------------------------------------------------------

type musicModel struct{}

func (musicModel) schema() dataset.Schema {
	return dataset.Schema{Attributes: []dataset.Attribute{
		{Name: "title", Type: dataset.AttrText},
		{Name: "album", Type: dataset.AttrText},
		{Name: "artist", Type: dataset.AttrName},
		{Name: "year", Type: dataset.AttrYear},
		{Name: "length", Type: dataset.AttrNumeric},
	}}
}

func (musicModel) newEntity(rng *rand.Rand, serial int) []string {
	title := songTitle(rng, serial)
	return []string{
		title,
		albumName(rng, title),
		artistName(rng),
		strconv.Itoa(1965 + rng.Intn(56)),
		strconv.FormatFloat(120+rng.Float64()*240, 'f', 1, 64),
	}
}

// sibling models a re-release/remix: identical title and artist,
// different album, same or adjacent year, near-identical length — the
// paper's "non e francesca" Musicbrainz example. Crucially the sibling
// overlaps the distribution of corrupted true matches on every
// feature, so its feature vectors are genuinely ambiguous (both class
// labels occur for the same vector region, Table 1's Ambiguous
// columns) rather than separable by a single attribute.
func (musicModel) sibling(rng *rand.Rand, vals []string) []string {
	out := append([]string(nil), vals...)
	out[1] = albumName(rng, vals[0])
	if out[1] == vals[1] {
		out[1] = vals[1] + " " + pick(rng, albumWords)
	}
	if rng.Float64() < 0.6 {
		y, _ := strconv.Atoi(vals[3])
		out[3] = strconv.Itoa(y + 1)
	}
	l, _ := strconv.ParseFloat(vals[4], 64)
	out[4] = strconv.FormatFloat(l+2+rng.Float64()*10, 'f', 1, 64)
	return out
}

// --- demographic ---------------------------------------------------------

type demogModel struct {
	// wide selects the 11-attribute Bp-Bp schema; false gives the
	// 8-attribute Bp-Dp schema.
	wide bool
	// vocab is the domain's (possibly restricted) vocabulary pools.
	vocab *vocabSet
}

func (m demogModel) schema() dataset.Schema {
	attrs := []dataset.Attribute{
		{Name: "father_fname", Type: dataset.AttrName},
		{Name: "father_sname", Type: dataset.AttrName},
		{Name: "mother_fname", Type: dataset.AttrName},
		{Name: "mother_msname", Type: dataset.AttrName},
		{Name: "father_occupation", Type: dataset.AttrText},
		{Name: "address", Type: dataset.AttrText},
		{Name: "parish", Type: dataset.AttrCode},
		{Name: "event_year", Type: dataset.AttrYear},
	}
	if m.wide {
		attrs = append(attrs,
			dataset.Attribute{Name: "father_fname2", Type: dataset.AttrName},
			dataset.Attribute{Name: "mother_fname2", Type: dataset.AttrName},
			dataset.Attribute{Name: "marriage_year", Type: dataset.AttrYear},
		)
	}
	return dataset.Schema{Attributes: attrs}
}

func (m demogModel) newEntity(rng *rand.Rand, serial int) []string {
	ff, fs := m.vocab.personName(rng)
	mf, _ := m.vocab.personName(rng)
	_, ms := m.vocab.personName(rng)
	vals := []string{
		ff, fs, mf, ms,
		pick(rng, m.vocab.occ),
		fmt.Sprintf("%d %s", 1+rng.Intn(120), pick(rng, m.vocab.street)),
		pick(rng, m.vocab.parish),
		strconv.Itoa(1860 + rng.Intn(42)),
	}
	if m.wide {
		// Secondary given names and the parents' marriage year add the
		// extra Bp-Bp evidence the real certificates carry.
		vals = append(vals,
			pick(rng, m.vocab.first),
			pick(rng, m.vocab.first),
			strconv.Itoa(1855+rng.Intn(40)),
		)
	}
	return vals
}

// sibling models a later child of the same parents: identical parent
// names (the compared attributes), same address/parish, same or
// adjacent event year (twins and year-apart births are common in the
// period) — the canonical conflicting-label case in certificate
// linkage. Because true matches also carry year transcription slips,
// sibling vectors and match vectors occupy the same feature region:
// genuinely ambiguous, exactly as the Scottish data's 58-80%
// ambiguous-vector fractions in Table 1.
func (m demogModel) sibling(rng *rand.Rand, vals []string) []string {
	out := append([]string(nil), vals...)
	if rng.Float64() < 0.65 {
		y, _ := strconv.Atoi(vals[7])
		out[7] = strconv.Itoa(y + 1 + rng.Intn(2))
	}
	if rng.Float64() < 0.15 {
		// Occasionally the family has moved between events.
		out[5] = fmt.Sprintf("%d %s", 1+rng.Intn(120), pick(rng, m.vocab.street))
	}
	return out
}
