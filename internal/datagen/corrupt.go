package datagen

import (
	"math/rand"
	"strconv"
	"strings"
)

// Corruption model. Real-world structured data — census transcriptions,
// scanned certificates, scraped publication listings — contains
// typographical errors, OCR confusions, abbreviations, token drops and
// spelling variations (Christen, 2012). The corruptor reproduces those
// error classes with a per-attribute error probability so the marginal
// similarity distribution of true matches spreads below 1.0, giving the
// bi-modal shape of Figure 2.

// corruptor applies type-appropriate errors to attribute values.
type corruptor struct {
	rng *rand.Rand
	// rate is the probability that a value is corrupted at all; a
	// corrupted value receives 1-2 random error operations.
	rate float64
	// missRate is the probability a value is blanked entirely.
	missRate float64
	// abbrevRate is the probability tokens are abbreviated to initials
	// (Scholar-style author lists, venue acronyms).
	abbrevRate float64
	// formatShiftRate is the probability a value is re-formatted into a
	// systematically different representation ("surname, firstname"
	// name order; "(live)"/"(remastered)" title suffixes). Format
	// shifts are the dominant source of marginal distribution shift
	// between scraped and curated databases (the paper's Scholar and
	// Musicbrainz discussion).
	formatShiftRate float64
}

var textSuffixes = []string{"(live)", "(remastered)", "(reprint)", "(extended abstract)", "vol 2"}

// formatShiftName rewrites "first [middle] last" into "last, first".
func (c *corruptor) formatShiftName(s string) string {
	toks := strings.Fields(s)
	if len(toks) < 2 {
		return s
	}
	last := toks[len(toks)-1]
	return last + ", " + strings.Join(toks[:len(toks)-1], " ")
}

// formatShiftText appends a parenthetical edition marker.
func (c *corruptor) formatShiftText(s string) string {
	if s == "" {
		return s
	}
	return s + " " + pick(c.rng, textSuffixes)
}

var ocrConfusions = map[rune]rune{
	'0': 'o', 'o': '0', '1': 'l', 'l': '1', '5': 's', 's': '5',
	'm': 'n', 'n': 'm', 'u': 'v', 'v': 'u', 'e': 'c', 'c': 'e',
}

var spellingVariants = []struct{ from, to string }{
	{"ph", "f"}, {"f", "ph"}, {"y", "i"}, {"i", "y"}, {"ck", "k"},
	{"k", "ck"}, {"ee", "ea"}, {"ea", "ee"}, {"mac", "mc"}, {"mc", "mac"},
	{"oo", "ou"}, {"tt", "t"}, {"ll", "l"}, {"ss", "s"},
}

func (c *corruptor) letters() string { return "abcdefghijklmnopqrstuvwxyz" }

// typo applies one random character edit: substitution, deletion,
// insertion, or adjacent transposition.
func (c *corruptor) typo(s string) string {
	rs := []rune(s)
	if len(rs) == 0 {
		return s
	}
	switch c.rng.Intn(4) {
	case 0: // substitute
		i := c.rng.Intn(len(rs))
		rs[i] = rune(c.letters()[c.rng.Intn(26)])
	case 1: // delete
		i := c.rng.Intn(len(rs))
		rs = append(rs[:i], rs[i+1:]...)
	case 2: // insert
		i := c.rng.Intn(len(rs) + 1)
		ch := rune(c.letters()[c.rng.Intn(26)])
		rs = append(rs[:i], append([]rune{ch}, rs[i:]...)...)
	case 3: // transpose
		if len(rs) >= 2 {
			i := c.rng.Intn(len(rs) - 1)
			rs[i], rs[i+1] = rs[i+1], rs[i]
		}
	}
	return string(rs)
}

// ocr applies one OCR-style character confusion if any confusable
// character is present; otherwise falls back to a typo.
func (c *corruptor) ocr(s string) string {
	rs := []rune(s)
	idxs := make([]int, 0, len(rs))
	for i, r := range rs {
		if _, ok := ocrConfusions[r]; ok {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return c.typo(s)
	}
	i := idxs[c.rng.Intn(len(idxs))]
	rs[i] = ocrConfusions[rs[i]]
	return string(rs)
}

// variant applies a phonetic/spelling variation if applicable.
func (c *corruptor) variant(s string) string {
	order := c.rng.Perm(len(spellingVariants))
	for _, i := range order {
		v := spellingVariants[i]
		if strings.Contains(s, v.from) {
			return strings.Replace(s, v.from, v.to, 1)
		}
	}
	return c.typo(s)
}

// abbrevTokens shortens word tokens to initials ("john smith" ->
// "j smith"), the dominant error class in scraped author lists.
func (c *corruptor) abbrevTokens(s string) string {
	toks := strings.Fields(s)
	if len(toks) < 2 {
		return s
	}
	i := c.rng.Intn(len(toks) - 1) // never abbreviate the final token (surname)
	if len(toks[i]) > 1 {
		toks[i] = toks[i][:1]
	}
	return strings.Join(toks, " ")
}

// dropToken removes one word token from a multi-token value.
func (c *corruptor) dropToken(s string) string {
	toks := strings.Fields(s)
	if len(toks) < 2 {
		return s
	}
	i := c.rng.Intn(len(toks))
	toks = append(toks[:i], toks[i+1:]...)
	return strings.Join(toks, " ")
}

// swapTokens exchanges two adjacent tokens ("smith john").
func (c *corruptor) swapTokens(s string) string {
	toks := strings.Fields(s)
	if len(toks) < 2 {
		return s
	}
	i := c.rng.Intn(len(toks) - 1)
	toks[i], toks[i+1] = toks[i+1], toks[i]
	return strings.Join(toks, " ")
}

// corruptString applies the configured error model to a string value.
func (c *corruptor) corruptString(s string, nameLike bool) string {
	if c.rng.Float64() < c.missRate {
		return ""
	}
	if c.formatShiftRate > 0 && c.rng.Float64() < c.formatShiftRate {
		if nameLike {
			s = c.formatShiftName(s)
		} else {
			s = c.formatShiftText(s)
		}
	}
	if c.abbrevRate > 0 && c.rng.Float64() < c.abbrevRate {
		s = c.abbrevTokens(s)
	}
	if c.rng.Float64() >= c.rate {
		return s
	}
	nOps := 1
	if c.rng.Float64() < 0.3 {
		nOps = 2
	}
	for op := 0; op < nOps; op++ {
		switch c.rng.Intn(5) {
		case 0:
			s = c.typo(s)
		case 1:
			s = c.ocr(s)
		case 2:
			if nameLike {
				s = c.variant(s)
			} else {
				s = c.dropToken(s)
			}
		case 3:
			s = c.swapTokens(s)
		case 4:
			s = c.typo(s)
		}
	}
	return s
}

// corruptYear perturbs a year string by ±1-2 with probability rate,
// modelling transcription slips in dates.
func (c *corruptor) corruptYear(s string) string {
	if c.rng.Float64() < c.missRate {
		return ""
	}
	if c.rng.Float64() >= c.rate {
		return s
	}
	y, err := strconv.Atoi(s)
	if err != nil {
		return s
	}
	delta := 1 + c.rng.Intn(2)
	if c.rng.Intn(2) == 0 {
		delta = -delta
	}
	return strconv.Itoa(y + delta)
}

// corruptNumeric perturbs a numeric string by up to ±5%.
func (c *corruptor) corruptNumeric(s string) string {
	if c.rng.Float64() < c.missRate {
		return ""
	}
	if c.rng.Float64() >= c.rate {
		return s
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return s
	}
	v *= 1 + (c.rng.Float64()-0.5)*0.1
	return strconv.FormatFloat(v, 'f', 1, 64)
}
