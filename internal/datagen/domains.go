package datagen

import (
	"transer/internal/blocking"
	"transer/internal/dataset"
)

// DomainPair is one ER domain: the two databases to link plus the
// ground-truth match set between them.
type DomainPair struct {
	Name string
	A, B *dataset.Database
	// Blocking is the recommended MinHash-LSH configuration for this
	// domain (zero value = package defaults). Domain-appropriate
	// blocking — parent names with a tighter threshold for
	// certificates, title+artist for songs — mirrors standard ER
	// practice and keeps the candidate class skew in the range the
	// paper's Table 1 reports.
	Blocking blocking.MinHashConfig
}

// Truth returns the ground-truth match pair set of the domain.
func (d DomainPair) Truth() dataset.PairSet { return dataset.GroundTruth(d.A, d.B) }

// scaleN scales a base entity count, keeping at least a workable
// minimum so tiny test scales still produce both classes.
func scaleN(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 40 {
		n = 40
	}
	return n
}

// The seven data set stand-ins below mirror the paper's Table 1 pairs.
// Relative sizes follow the paper's ordering (bibliographic smallest,
// demographic largest); noise and ambiguity knobs are chosen so that
// the Table 1 shape (clean DBLP-ACM, dirty Scholar, highly ambiguous
// Musicbrainz, large ambiguous certificate data) is reproduced.

// DBLPACM is the clean bibliographic pair (simple scenario, low noise,
// low ambiguity).
func DBLPACM(scale float64) DomainPair {
	a, b := Generate(Spec{
		Name: "dblp-acm", Kind: Bibliographic, Seed: 101,
		NumEntities: scaleN(700, scale), FracA: 0.85, FracB: 0.80,
		AmbiguityFrac: 0.04,
		NoiseA:        NoiseProfile{Rate: 0.08, MissRate: 0.01, AbbrevRate: 0.02},
		NoiseB:        NoiseProfile{Rate: 0.10, MissRate: 0.01, AbbrevRate: 0.03},
	})
	return DomainPair{Name: "DBLP-ACM", A: a, B: b}
}

// DBLPScholar is the dirty bibliographic pair: the B side models
// Google-Scholar-style scraped records with abbreviations, missing
// values, and frequent typos.
func DBLPScholar(scale float64) DomainPair {
	a, b := Generate(Spec{
		Name: "dblp-scholar", Kind: Bibliographic, Seed: 202,
		NumEntities: scaleN(1400, scale), FracA: 0.75, FracB: 0.85,
		AmbiguityFrac: 0.05,
		NoiseA:        NoiseProfile{Rate: 0.08, MissRate: 0.01, AbbrevRate: 0.02},
		NoiseB:        NoiseProfile{Rate: 0.30, MissRate: 0.06, AbbrevRate: 0.25, FormatShiftRate: 0.15},
	})
	return DomainPair{Name: "DBLP-Scholar", A: a, B: b}
}

// MSD is the Million-Songs-like music pair: moderate noise, moderate
// ambiguity.
func MSD(scale float64) DomainPair {
	a, b := Generate(Spec{
		Name: "msd", Kind: Music, Seed: 303,
		NumEntities: scaleN(1800, scale), FracA: 0.80, FracB: 0.80,
		AmbiguityFrac: 0.08,
		NoiseA:        NoiseProfile{Rate: 0.08, MissRate: 0.01, AbbrevRate: 0.02},
		NoiseB:        NoiseProfile{Rate: 0.10, MissRate: 0.01, AbbrevRate: 0.03},
	})
	return DomainPair{Name: "MSD", A: a, B: b, Blocking: musicBlocking}
}

// MB is the Musicbrainz-like music pair: the most ambiguous data set
// (many re-releases/remixes — conflicting labels for identical feature
// vectors), mirroring the 22% ambiguous fraction of Table 1.
func MB(scale float64) DomainPair {
	a, b := Generate(Spec{
		Name: "mb", Kind: Music, Seed: 404,
		NumEntities: scaleN(3200, scale), FracA: 0.80, FracB: 0.85,
		AmbiguityFrac: 0.45,
		NoiseA:        NoiseProfile{Rate: 0.28, MissRate: 0.10, AbbrevRate: 0.04, FormatShiftRate: 0.05},
		NoiseB:        NoiseProfile{Rate: 0.32, MissRate: 0.12, AbbrevRate: 0.05, FormatShiftRate: 0.20},
	})
	return DomainPair{Name: "MB", A: a, B: b, Blocking: musicBlocking}
}

// IOSBpDp is the smaller (Isle of Skye) 8-attribute certificate pair.
func IOSBpDp(scale float64) DomainPair {
	a, b := Generate(Spec{
		Name: "ios-bpdp", Kind: DemographicBpDp, Seed: 505,
		NumEntities: scaleN(4200, scale), FracA: 0.75, FracB: 0.80,
		AmbiguityFrac: 0.12,
		Vocab:         iosVocab,
		NoiseA:        NoiseProfile{Rate: 0.14, MissRate: 0.02, AbbrevRate: 0.03},
		NoiseB:        NoiseProfile{Rate: 0.17, MissRate: 0.03, AbbrevRate: 0.04},
	})
	return DomainPair{Name: "IOS-Bp-Dp", A: a, B: b, Blocking: demogBlocking}
}

// KILBpDp is the larger (Kilmarnock) 8-attribute certificate pair with
// a different noise profile (marginal shift against IOS).
func KILBpDp(scale float64) DomainPair {
	a, b := Generate(Spec{
		Name: "kil-bpdp", Kind: DemographicBpDp, Seed: 606,
		NumEntities: scaleN(7000, scale), FracA: 0.80, FracB: 0.85,
		AmbiguityFrac: 0.45,
		NoiseA:        NoiseProfile{Rate: 0.19, MissRate: 0.04, AbbrevRate: 0.05, FormatShiftRate: 0.05},
		NoiseB:        NoiseProfile{Rate: 0.22, MissRate: 0.06, AbbrevRate: 0.06, FormatShiftRate: 0.15},
	})
	return DomainPair{Name: "KIL-Bp-Dp", A: a, B: b, Blocking: demogBlocking}
}

// IOSBpBp is the 11-attribute Isle-of-Skye birth-birth pair.
func IOSBpBp(scale float64) DomainPair {
	a, b := Generate(Spec{
		Name: "ios-bpbp", Kind: DemographicBpBp, Seed: 707,
		NumEntities: scaleN(5200, scale), FracA: 0.80, FracB: 0.80,
		AmbiguityFrac: 0.12,
		Vocab:         iosVocab,
		NoiseA:        NoiseProfile{Rate: 0.15, MissRate: 0.02, AbbrevRate: 0.03},
		NoiseB:        NoiseProfile{Rate: 0.17, MissRate: 0.03, AbbrevRate: 0.04},
	})
	return DomainPair{Name: "IOS-Bp-Bp", A: a, B: b, Blocking: demogBlocking}
}

// KILBpBp is the largest pair: the 11-attribute Kilmarnock birth-birth
// certificates.
func KILBpBp(scale float64) DomainPair {
	a, b := Generate(Spec{
		Name: "kil-bpbp", Kind: DemographicBpBp, Seed: 808,
		NumEntities: scaleN(8400, scale), FracA: 0.82, FracB: 0.85,
		AmbiguityFrac: 0.40,
		NoiseA:        NoiseProfile{Rate: 0.20, MissRate: 0.04, AbbrevRate: 0.05, FormatShiftRate: 0.05},
		NoiseB:        NoiseProfile{Rate: 0.23, MissRate: 0.06, AbbrevRate: 0.06, FormatShiftRate: 0.12},
	})
	return DomainPair{Name: "KIL-Bp-Bp", A: a, B: b, Blocking: demogBlocking}
}

// iosVocab models the Isle of Skye's small isolated population: a
// handful of clan surnames, crofting occupations and island parishes
// dominate, stripping those attributes of discriminative power
// relative to the larger town of Kilmarnock — a class-conditional
// difference between the two demographic domains.
var iosVocab = VocabProfile{
	Surnames: 0.6, FirstNames: 0.8, Occupations: 0.5, Streets: 0.8, Parishes: 0.6,
}

// demogBlocking shingles the four parent-name attributes with a
// tighter LSH threshold (r = 4, ≈0.5 Jaccard): certificate linkage
// blocks on parent names, and the name vocabulary's natural collisions
// already supply the non-match candidates. musicBlocking shingles
// title and artist at the default threshold.
var (
	demogBlocking = blocking.MinHashConfig{NumHashes: 60, Bands: 12, Attrs: []int{0, 1, 2, 3}}
	musicBlocking = blocking.MinHashConfig{Attrs: []int{0, 2}}
)

// Builtin describes one built-in data set stand-in: its stable
// identity (the DomainPair.Name its generator produces), the fixed
// generator seed baked into its Spec, and the generator itself. The
// key and seed together are the dataset-identity component of the
// pipeline package's artifact fingerprints.
type Builtin struct {
	Key  string
	Seed int64
	Make func(scale float64) DomainPair
}

// Builtins returns the seven data set stand-ins in Table 1 order.
func Builtins() []Builtin {
	return []Builtin{
		{"DBLP-ACM", 101, DBLPACM},
		{"DBLP-Scholar", 202, DBLPScholar},
		{"MSD", 303, MSD},
		{"MB", 404, MB},
		{"IOS-Bp-Dp", 505, IOSBpDp},
		{"KIL-Bp-Dp", 606, KILBpDp},
		{"IOS-Bp-Bp", 707, IOSBpBp},
		{"KIL-Bp-Bp", 808, KILBpBp},
	}
}

// BuiltinByKey looks a built-in dataset up by its key.
func BuiltinByKey(key string) (Builtin, bool) {
	for _, b := range Builtins() {
		if b.Key == key {
			return b, true
		}
	}
	return Builtin{}, false
}

// TransferTask is one source→target row of the paper's Tables 2 and 3.
type TransferTask struct {
	Source, Target DomainPair
}

// Name formats the task as "source → target".
func (t TransferTask) Name() string { return t.Source.Name + " -> " + t.Target.Name }

// PaperTaskKeys returns the eight source→target dataset key pairs of
// the paper's Table 2. This is the single definition of the task
// grid; PaperTasks and the pipeline package's task refs derive from
// it.
func PaperTaskKeys() [][2]string {
	return [][2]string{
		{"DBLP-ACM", "DBLP-Scholar"},
		{"DBLP-Scholar", "DBLP-ACM"},
		{"MSD", "MB"},
		{"MB", "MSD"},
		{"IOS-Bp-Dp", "KIL-Bp-Dp"},
		{"KIL-Bp-Dp", "IOS-Bp-Dp"},
		{"IOS-Bp-Bp", "KIL-Bp-Bp"},
		{"KIL-Bp-Bp", "IOS-Bp-Bp"},
	}
}

// RepresentativeTaskKeys returns the three source→target dataset key
// pairs used in the paper's Sections 5.2.3-5.4 (one bibliographic,
// one music, one demographic).
func RepresentativeTaskKeys() [][2]string {
	return [][2]string{
		{"DBLP-ACM", "DBLP-Scholar"},
		{"MB", "MSD"},
		{"KIL-Bp-Dp", "IOS-Bp-Dp"},
	}
}

// tasksFromKeys generates each distinct dataset once and assembles the
// keyed task list.
func tasksFromKeys(keys [][2]string, scale float64) []TransferTask {
	pairs := map[string]DomainPair{}
	domain := func(key string) DomainPair {
		if p, ok := pairs[key]; ok {
			return p
		}
		b, ok := BuiltinByKey(key)
		if !ok {
			panic("datagen: unknown built-in dataset " + key)
		}
		p := b.Make(scale)
		pairs[key] = p
		return p
	}
	out := make([]TransferTask, len(keys))
	for i, k := range keys {
		out[i] = TransferTask{Source: domain(k[0]), Target: domain(k[1])}
	}
	return out
}

// PaperTasks returns the eight source→target pairs evaluated in the
// paper's Table 2, at the given size scale.
func PaperTasks(scale float64) []TransferTask {
	return tasksFromKeys(PaperTaskKeys(), scale)
}

// RepresentativeTasks returns the three pairs used in the paper's
// Sections 5.2.3-5.4 (one bibliographic, one music, one demographic).
func RepresentativeTasks(scale float64) []TransferTask {
	return tasksFromKeys(RepresentativeTaskKeys(), scale)
}
