package datagen

import (
	"strconv"
	"testing"

	"transer/internal/dataset"
)

func smallSpec() Spec {
	return Spec{
		Name: "t", Kind: Bibliographic, Seed: 1,
		NumEntities: 200, FracA: 0.8, FracB: 0.8, AmbiguityFrac: 0.1,
		NoiseA: NoiseProfile{Rate: 0.1, MissRate: 0.01, AbbrevRate: 0.02},
		NoiseB: NoiseProfile{Rate: 0.2, MissRate: 0.02, AbbrevRate: 0.05},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a1, b1 := Generate(smallSpec())
	a2, b2 := Generate(smallSpec())
	if len(a1.Records) != len(a2.Records) || len(b1.Records) != len(b2.Records) {
		t.Fatalf("sizes differ between runs")
	}
	for i := range a1.Records {
		if a1.Records[i].ID != a2.Records[i].ID {
			t.Fatalf("record ids differ at %d", i)
		}
		for j := range a1.Records[i].Values {
			if a1.Records[i].Values[j] != a2.Records[i].Values[j] {
				t.Fatalf("values differ at record %d attr %d", i, j)
			}
		}
	}
	// Different seed produces different data.
	s := smallSpec()
	s.Seed = 2
	a3, _ := Generate(s)
	same := len(a3.Records) == len(a1.Records)
	if same {
		for i := range a1.Records {
			if a1.Records[i].ID != a3.Records[i].ID || a1.Records[i].Values[0] != a3.Records[i].Values[0] {
				same = false
				break
			}
		}
	}
	if same {
		t.Errorf("different seeds produced identical data")
	}
}

func TestGenerateValidatesAndMatches(t *testing.T) {
	a, b := Generate(smallSpec())
	if err := a.Validate(); err != nil {
		t.Fatalf("db A invalid: %v", err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("db B invalid: %v", err)
	}
	if !a.Schema.Equal(b.Schema) {
		t.Errorf("sides should share a schema")
	}
	truth := dataset.GroundTruth(a, b)
	if len(truth) == 0 {
		t.Errorf("expected overlapping entities (true matches)")
	}
	// Overlap should be a strict subset of both sides.
	if len(truth) >= len(a.Records) || len(truth) >= len(b.Records) {
		t.Errorf("every record matched; expected partial overlap (truth=%d, |A|=%d, |B|=%d)",
			len(truth), len(a.Records), len(b.Records))
	}
}

func TestSiblingEntitiesAreDistinctButSimilar(t *testing.T) {
	s := smallSpec()
	s.Kind = Music
	s.AmbiguityFrac = 1.0 // force a sibling for every entity
	a, _ := Generate(s)
	// Find a base/sibling pair that both landed in A.
	byEntity := map[string][]string{}
	for _, r := range a.Records {
		byEntity[r.EntityID] = r.Values
	}
	found := 0
	for id, vals := range byEntity {
		sib, ok := byEntity[id+"-sib"]
		if !ok {
			continue
		}
		found++
		if vals[0] == sib[0] && vals[1] == sib[1] && vals[3] == sib[3] {
			t.Errorf("sibling of %s identical in title+album+year", id)
		}
	}
	if found == 0 {
		t.Skip("no base/sibling pair co-occurred in A at this seed")
	}
}

func TestAllKindsGenerate(t *testing.T) {
	for _, k := range []Kind{Bibliographic, Music, DemographicBpDp, DemographicBpBp} {
		s := smallSpec()
		s.Kind = k
		a, b := Generate(s)
		if err := a.Validate(); err != nil {
			t.Errorf("kind %d: invalid A: %v", k, err)
		}
		if err := b.Validate(); err != nil {
			t.Errorf("kind %d: invalid B: %v", k, err)
		}
		wantM := map[Kind]int{Bibliographic: 4, Music: 5, DemographicBpDp: 8, DemographicBpBp: 11}[k]
		if got := a.Schema.NumAttributes(); got != wantM {
			t.Errorf("kind %d: schema width %d, want %d", k, got, wantM)
		}
	}
}

func TestYearValuesParse(t *testing.T) {
	a, _ := Generate(smallSpec())
	yearIdx := -1
	for j, attr := range a.Schema.Attributes {
		if attr.Type == dataset.AttrYear {
			yearIdx = j
		}
	}
	if yearIdx < 0 {
		t.Fatal("no year attribute")
	}
	for _, r := range a.Records {
		v := r.Values[yearIdx]
		if v == "" {
			continue // missing values allowed
		}
		if _, err := strconv.Atoi(v); err != nil {
			t.Fatalf("year value %q not an int", v)
		}
	}
}

func TestPaperTasks(t *testing.T) {
	tasks := PaperTasks(0.02)
	if len(tasks) != 8 {
		t.Fatalf("expected 8 tasks, got %d", len(tasks))
	}
	seen := map[string]bool{}
	for _, task := range tasks {
		if seen[task.Name()] {
			t.Errorf("duplicate task %s", task.Name())
		}
		seen[task.Name()] = true
		if !task.Source.A.Schema.Equal(task.Target.A.Schema) {
			t.Errorf("%s: source and target feature spaces differ (homogeneity broken)", task.Name())
		}
		if len(task.Source.Truth()) == 0 || len(task.Target.Truth()) == 0 {
			t.Errorf("%s: no ground truth matches", task.Name())
		}
	}
}

func TestRepresentativeTasks(t *testing.T) {
	tasks := RepresentativeTasks(0.02)
	if len(tasks) != 3 {
		t.Fatalf("expected 3 representative tasks, got %d", len(tasks))
	}
}

func TestScaleN(t *testing.T) {
	if scaleN(1000, 0.5) != 500 {
		t.Errorf("scaleN(1000, 0.5) = %d", scaleN(1000, 0.5))
	}
	if scaleN(1000, 0.001) != 40 {
		t.Errorf("scaleN floor not applied: %d", scaleN(1000, 0.001))
	}
}

func TestCorruptorOps(t *testing.T) {
	s := smallSpec()
	s.NoiseA = NoiseProfile{Rate: 1.0, MissRate: 0, AbbrevRate: 0}
	a, _ := Generate(s)
	// With rate 1.0 at least some values must differ from clean
	// regeneration with rate 0.
	s2 := smallSpec()
	s2.NoiseA = NoiseProfile{}
	s2.NoiseB = NoiseProfile{}
	clean, _ := Generate(s2)
	if len(a.Records) == 0 || len(clean.Records) == 0 {
		t.Fatal("no records generated")
	}
	// Same seed ⇒ same entities; corrupted values should differ somewhere.
	diff := false
	n := len(a.Records)
	if len(clean.Records) < n {
		n = len(clean.Records)
	}
	for i := 0; i < n && !diff; i++ {
		for j := range a.Records[i].Values {
			if a.Records[i].Values[j] != clean.Records[i].Values[j] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Errorf("full-rate corruption changed nothing")
	}
}
