package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Vocabularies for the three synthetic domains. The lists are small but
// are expanded combinatorially (given/surname pairs, multi-word titles,
// syllable-composed surnames) so generated databases have realistic
// value diversity at any size.

var firstNames = []string{
	"john", "mary", "william", "elizabeth", "james", "margaret", "george",
	"janet", "robert", "agnes", "thomas", "catherine", "david", "isabella",
	"alexander", "ann", "andrew", "jane", "peter", "helen", "charles",
	"christina", "hugh", "marion", "donald", "euphemia", "duncan", "grace",
	"angus", "flora", "archibald", "jessie", "walter", "barbara", "henry",
	"sarah", "samuel", "martha", "patrick", "agnes", "neil", "effie",
	"malcolm", "mina", "lachlan", "kirsty", "dougal", "morag", "ewan",
	"sheila", "fergus", "una", "gilbert", "beatrix", "ronald", "edith",
	"norman", "joan", "kenneth", "alice",
}

var surnameBases = []string{
	"smith", "macdonald", "campbell", "stewart", "robertson", "thomson",
	"anderson", "scott", "murray", "macleod", "reid", "fraser", "ross",
	"young", "mitchell", "watson", "morrison", "paterson", "grant",
	"ferguson", "cameron", "davidson", "gray", "henderson", "hamilton",
	"johnston", "duncan", "graham", "kerr", "simpson", "martin", "taylor",
	"walker", "wilson", "brown", "miller", "bell", "wallace", "kelly",
	"hunter", "mackay", "sinclair", "sutherland", "gunn", "munro",
	"mackenzie", "maclean", "matheson", "nicolson", "beaton",
}

var surnameSuffixes = []string{"", "", "", "son", "s", "ton", "well", "er", "man", "field", "ie", "burn"}

var occupations = []string{
	"farmer", "fisherman", "crofter", "weaver", "blacksmith", "carpenter",
	"mason", "shepherd", "labourer", "shoemaker", "tailor", "merchant",
	"miner", "sailor", "teacher", "baker", "butcher", "cooper", "joiner",
	"gardener", "servant", "clerk", "millworker", "dyer", "slater",
	"plumber", "printer", "saddler", "tanner", "wright", "boatman",
	"gamekeeper", "innkeeper", "grocer", "draper", "hawker", "porter",
	"quarrier", "engineman", "flesher",
}

var streetNames = []string{
	"high street", "church road", "mill lane", "station road", "main street",
	"king street", "queen street", "bridge street", "castle road",
	"harbour view", "school brae", "shore street", "glebe road",
	"north street", "south street", "east road", "west end", "union street",
	"market square", "victoria road", "albert place", "george street",
	"portland place", "argyle street", "bank street", "cross street",
	"ferry road", "manse road", "seaview terrace", "braeside",
}

var parishes = []string{
	"portree", "snizort", "kilmuir", "duirinish", "bracadale", "strath",
	"sleat", "kilmarnock", "riccarton", "fenwick", "dreghorn", "irvine",
	"dundonald", "symington", "craigie", "galston", "loudoun", "stewarton",
	"dunlop", "kilmaurs",
}

var titleWords = []string{
	"adaptive", "efficient", "scalable", "distributed", "parallel",
	"incremental", "probabilistic", "robust", "temporal", "semantic",
	"query", "index", "join", "stream", "graph", "cluster", "schema",
	"entity", "record", "data", "learning", "transfer", "matching",
	"linkage", "resolution", "detection", "integration", "optimization",
	"processing", "analysis", "mining", "retrieval", "classification",
	"estimation", "evaluation", "framework", "system", "model", "method",
	"approach", "algorithm", "structure", "database", "knowledge",
	"information", "network", "similarity", "blocking", "crowdsourcing",
	"privacy", "provenance", "workload", "cardinality", "selectivity",
	"compression", "partitioning", "replication", "transaction",
	"concurrency", "recovery", "benchmark", "storage", "memory", "cache",
	"hardware", "adaptive", "approximate", "declarative", "federated",
}

var venues = []string{
	"sigmod", "vldb", "icde", "edbt", "cikm", "kdd", "icdm", "sdm", "wsdm",
	"www", "acl", "emnlp", "aaai", "ijcai", "icml", "neurips", "pods",
	"dasfaa", "pakdd", "ecml", "jmlr", "tkde", "tods", "vldbj", "dmkd",
}

var venueLong = map[string]string{
	"sigmod":  "international conference on management of data",
	"vldb":    "very large data bases",
	"icde":    "international conference on data engineering",
	"edbt":    "international conference on extending database technology",
	"cikm":    "conference on information and knowledge management",
	"kdd":     "knowledge discovery and data mining",
	"icdm":    "international conference on data mining",
	"www":     "the web conference",
	"acl":     "association for computational linguistics",
	"aaai":    "conference on artificial intelligence",
	"icml":    "international conference on machine learning",
	"neurips": "neural information processing systems",
	"tkde":    "transactions on knowledge and data engineering",
	"tods":    "transactions on database systems",
}

var musicWords = []string{
	"love", "night", "heart", "dream", "fire", "rain", "dance", "blue",
	"light", "shadow", "river", "moon", "star", "road", "home", "time",
	"summer", "winter", "golden", "silver", "broken", "wild", "sweet",
	"lonely", "crazy", "electric", "midnight", "morning", "city", "ocean",
	"thunder", "velvet", "crystal", "neon", "paper", "glass", "stone",
	"mirror", "echo", "ghost", "angel", "devil", "heaven", "paradise",
	"rhythm", "soul", "fever", "magic", "silence", "horizon",
}

var artistWords = []string{
	"the", "black", "red", "white", "electric", "royal", "silver", "wild",
	"sonic", "cosmic", "velvet", "crimson", "arctic", "neon", "lunar",
	"golden", "midnight", "phantom", "savage", "mystic",
}

var artistNouns = []string{
	"keys", "wolves", "tigers", "rebels", "saints", "kings", "queens",
	"pilots", "monkeys", "foxes", "ravens", "ghosts", "echoes", "waves",
	"stones", "roses", "strangers", "drifters", "ramblers", "sparrows",
}

var albumWords = []string{
	"sessions", "anthology", "collection", "live", "unplugged", "remixed",
	"deluxe", "acoustic", "studio", "greatest hits", "volume one",
	"volume two", "ep", "singles", "rarities", "demos",
}

// pick returns a uniformly random element of list.
func pick[T any](rng *rand.Rand, list []T) T {
	return list[rng.Intn(len(list))]
}

// personName draws a "first surname" full name. First names carry an
// occasional second given name so the name space is large enough that
// unrelated entities rarely collide on full names (collisions would
// flood blocking with non-match candidates far beyond the class skew
// real certificate data shows).
func personName(rng *rand.Rand) (first, surname string) {
	first = pick(rng, firstNames)
	if rng.Float64() < 0.5 {
		first += " " + pick(rng, firstNames)
	}
	surname = pick(rng, surnameBases) + pick(rng, surnameSuffixes)
	return first, surname
}

// paperTitle composes a plausible publication title of 4-8 vocabulary
// words with a serial number mixed in occasionally so titles rarely
// collide across entities.
func paperTitle(rng *rand.Rand, serial int) string {
	n := 4 + rng.Intn(5)
	words := make([]string, 0, n+1)
	for i := 0; i < n; i++ {
		words = append(words, pick(rng, titleWords))
	}
	if rng.Float64() < 0.6 {
		words = append(words, fmt.Sprintf("p%d", serial))
	}
	return strings.Join(words, " ")
}

// songTitle composes a 2-4 word song title.
func songTitle(rng *rand.Rand, serial int) string {
	n := 2 + rng.Intn(3)
	words := make([]string, 0, n+1)
	for i := 0; i < n; i++ {
		words = append(words, pick(rng, musicWords))
	}
	if rng.Float64() < 0.5 {
		words = append(words, fmt.Sprintf("s%d", serial))
	}
	return strings.Join(words, " ")
}

// artistName composes a band-style artist name.
func artistName(rng *rand.Rand) string {
	if rng.Float64() < 0.4 {
		f, s := personName(rng)
		return f + " " + s
	}
	return pick(rng, artistWords) + " " + pick(rng, artistNouns)
}

// albumName composes an album title, sometimes derived from a song
// title (self-titled single releases are a major ambiguity source in
// real music catalogues, cf. the Musicbrainz example in the paper).
func albumName(rng *rand.Rand, song string) string {
	switch rng.Intn(4) {
	case 0:
		return song // single / title track
	case 1:
		return song + " " + pick(rng, albumWords)
	default:
		return pick(rng, musicWords) + " " + pick(rng, albumWords)
	}
}

// authorList composes 1-3 "f. surname" author names.
func authorList(rng *rand.Rand) string {
	n := 1 + rng.Intn(3)
	parts := make([]string, n)
	for i := range parts {
		f, s := personName(rng)
		parts[i] = f + " " + s
	}
	return strings.Join(parts, ", ")
}
