package testkit

import (
	"fmt"
	"math"
	"math/rand"

	"transer/internal/dataset"
)

// Matrix generates an n×m feature matrix with continuous values drawn
// uniformly from [0, 1]. Continuous entries make coordinate ties
// between distinct rows a measure-zero event, which is the regime
// where permutation relations on KNN-based code hold exactly.
func Matrix(rng *rand.Rand, n, m int) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		row := make([]float64, m)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
	}
	return x
}

// GridMatrix generates an n×m matrix sampled from the coarse value
// grid {0, 0.2, ..., 1} with occasional -0.0 entries, the regime of
// real linkage feature matrices: exact duplicate vectors occur
// naturally, and signed zeros exercise bit-level encodings that must
// treat -0.0 == +0.0 in feature space.
func GridMatrix(rng *rand.Rand, n, m int) [][]float64 {
	grid := []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	x := make([][]float64, n)
	for i := range x {
		row := make([]float64, m)
		for j := range row {
			v := grid[rng.Intn(len(grid))]
			if v == 0 && rng.Intn(2) == 0 {
				v = math.Copysign(0, -1)
			}
			row[j] = v
		}
		x[i] = row
	}
	return x
}

// BinaryLabels generates n labels in {0, 1} with both classes present
// whenever n >= 2, so downstream classifiers never hit the
// single-class fallback by generator accident.
func BinaryLabels(rng *rand.Rand, n int) []int {
	y := make([]int, n)
	for i := range y {
		y[i] = rng.Intn(2)
	}
	if n >= 2 {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		y[i], y[j] = 0, 1
	}
	return y
}

// DuplicateRows overwrites roughly frac of the (row, label) pairs with
// verbatim copies of earlier pairs — vector AND label together, so
// duplicate vectors never carry conflicting labels by generator
// accident (conflicting duplicates are a legitimate scenario, but one
// a property must opt into, because KNN tie-breaking makes
// label-conflicting ties order-sensitive).
func DuplicateRows(rng *rand.Rand, x [][]float64, y []int, frac float64) {
	n := len(x)
	for k := 0; k < int(float64(n)*frac); k++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		x[dst] = x[src]
		y[dst] = y[src]
	}
}

// Domain is one feature-space transfer problem: a labelled source, an
// unlabelled target, and the target's held-back ground truth.
type Domain struct {
	XS [][]float64
	YS []int
	XT [][]float64
	YT []int
}

// NumFeatures returns the feature dimensionality m.
func (d Domain) NumFeatures() int {
	if len(d.XS) == 0 {
		return 0
	}
	return len(d.XS[0])
}

// NewDomain generates a two-cluster transfer problem scaled by size:
// class 1 centred at 0.8, class 0 at 0.2, with a random marginal shift
// applied to the target — the distribution-shift shape transfer
// methods are meant to survive. Rows are continuous (no exact ties).
func NewDomain(rng *rand.Rand, size int) Domain {
	nS := 6*size + 20
	nT := 4*size + 20
	m := 2 + rng.Intn(4)
	shift := (rng.Float64() - 0.5) * 0.2
	spread := 0.05 + rng.Float64()*0.08
	gen := func(n int, offset float64) ([][]float64, []int) {
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			label := i % 2
			centre := 0.2
			if label == 1 {
				centre = 0.8
			}
			row := make([]float64, m)
			for j := range row {
				v := centre + offset + rng.NormFloat64()*spread
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				row[j] = v
			}
			x[i] = row
			y[i] = label
		}
		return x, y
	}
	xs, ys := gen(nS, 0)
	xt, yt := gen(nT, shift)
	return Domain{XS: xs, YS: ys, XT: xt, YT: yt}
}

// testSchema is the fixed 3-attribute schema of generated databases.
func testSchema() dataset.Schema {
	return dataset.Schema{Attributes: []dataset.Attribute{
		{Name: "name", Type: dataset.AttrName},
		{Name: "desc", Type: dataset.AttrText},
		{Name: "year", Type: dataset.AttrYear},
	}}
}

// randWord draws a lowercase word of 3-9 letters.
func randWord(rng *rand.Rand) string {
	n := 3 + rng.Intn(7)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

// corrupt applies light character-level noise to a value.
func corrupt(rng *rand.Rand, s string) string {
	if s == "" || rng.Float64() > 0.3 {
		return s
	}
	b := []byte(s)
	i := rng.Intn(len(b))
	b[i] = byte('a' + rng.Intn(26))
	return string(b)
}

// DatabasePair generates two small databases over a shared entity
// universe of n entities: each entity appears on either side with
// probability ~0.8, records on both sides are true matches, and the B
// side carries light corruption. The pair feeds blocking/comparison/
// labelling properties without the cost of the full datagen models.
func DatabasePair(rng *rand.Rand, n int) (a, b *dataset.Database) {
	sch := testSchema()
	a = &dataset.Database{Name: "prop-A", Schema: sch}
	b = &dataset.Database{Name: "prop-B", Schema: sch}
	for i := 0; i < n; i++ {
		vals := []string{
			randWord(rng) + " " + randWord(rng),
			randWord(rng) + " " + randWord(rng) + " " + randWord(rng),
			fmt.Sprintf("%d", 1950+rng.Intn(70)),
		}
		id := fmt.Sprintf("e%d", i)
		if rng.Float64() < 0.8 {
			a.Records = append(a.Records, dataset.Record{
				ID: "a-" + id, EntityID: id, Values: append([]string(nil), vals...),
			})
		}
		if rng.Float64() < 0.8 {
			bv := make([]string, len(vals))
			for j, v := range vals {
				bv[j] = corrupt(rng, v)
			}
			b.Records = append(b.Records, dataset.Record{
				ID: "b-" + id, EntityID: id, Values: bv,
			})
		}
	}
	return a, b
}
