// Package oracle is testkit's differential oracle: it cross-checks
// TransER (internal/core) and every transfer baseline
// (internal/transfer) on shared generated domains against reference
// invariants that hold for any correct implementation — output sizes,
// probability bounds, label/probability consistency at the 0.5
// decision threshold, determinism under repeated runs, bookkeeping
// consistency of TransER's per-phase statistics, and monotonicity of
// selection and pseudo-labelling under threshold sweeps.
//
// It lives below testkit (which stays stdlib-only) because it imports
// the model packages; suites use it from external test packages.
package oracle

import (
	"math"
	"math/rand"

	"transer/internal/core"
	"transer/internal/ml"
	"transer/internal/testkit"
	"transer/internal/transfer"
)

// TB is the minimal failure-reporting surface the oracle needs; both
// *testing.T and *testkit.T satisfy it.
type TB interface {
	Errorf(format string, args ...interface{})
}

// Config draws a random valid TransER configuration: thresholds
// sampled from the ranges the paper sweeps (Figures 6/7), small
// neighbourhoods, and a bounded worker count so properties also
// exercise the parallel paths.
func Config(rng *rand.Rand) core.Config {
	thresholds := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	return core.Config{
		K:          3 + rng.Intn(6),
		TC:         thresholds[rng.Intn(len(thresholds))],
		TL:         thresholds[rng.Intn(len(thresholds))],
		TP:         thresholds[rng.Intn(len(thresholds))],
		B:          float64(1 + rng.Intn(4)),
		Seed:       rng.Int63(),
		Workers:    1 + rng.Intn(4),
		EnableSimV: rng.Intn(4) == 0,
		TV:         0.7,
	}
}

// Task adapts a generated feature-space domain to the transfer.Task
// every method consumes.
func Task(d testkit.Domain) *transfer.Task {
	return &transfer.Task{XS: d.XS, YS: d.YS, XT: d.XT}
}

// CheckResult asserts the output invariants shared by every transfer
// method: one label and one probability per target row, probabilities
// in [0, 1] and NaN-free, and labels equal to thresholding the
// probabilities at 0.5.
func CheckResult(t TB, name string, res *transfer.Result, nTarget int) {
	if len(res.Labels) != nTarget || len(res.Proba) != nTarget {
		t.Errorf("%s: %d labels / %d probabilities for %d target rows",
			name, len(res.Labels), len(res.Proba), nTarget)
		return
	}
	for i, p := range res.Proba {
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Errorf("%s: probability %v at row %d outside [0,1]", name, p, i)
			return
		}
		want := 0
		if p >= 0.5 {
			want = 1
		}
		if res.Labels[i] != want {
			t.Errorf("%s: label %d at row %d inconsistent with probability %v at the 0.5 threshold",
				name, res.Labels[i], i, p)
			return
		}
	}
}

// CheckMethod runs the method twice on the task and asserts the shared
// output invariants plus run-to-run determinism — seeded methods must
// be pure functions of (task, factory, config).
func CheckMethod(t TB, m transfer.Method, task *transfer.Task, factory ml.Factory) {
	res, err := m.Run(task, factory)
	if err != nil {
		t.Errorf("%s: %v", m.Name(), err)
		return
	}
	CheckResult(t, m.Name(), res, len(task.XT))
	again, err := m.Run(task, factory)
	if err != nil {
		t.Errorf("%s: second run failed: %v", m.Name(), err)
		return
	}
	if !testkit.EqualInts(res.Labels, again.Labels) || !testkit.EqualFloats(res.Proba, again.Proba) {
		t.Errorf("%s: two runs on identical inputs disagree", m.Name())
	}
}

// CheckTransER runs core.Run and asserts the framework's bookkeeping
// invariants: per-phase statistics consistent with the returned
// vectors, pseudo-label confidences in [0.5, 1], the high-confidence
// count equal to the number of confidences reaching t_p, and the
// selected count consistent with a standalone SEL run when no fallback
// fired. Returns the result for further checks.
func CheckTransER(t TB, d testkit.Domain, factory ml.Factory, cfg core.Config) *core.Result {
	res, err := core.Run(d.XS, d.YS, d.XT, factory, cfg)
	if err != nil {
		t.Errorf("core.Run: %v", err)
		return nil
	}
	st := res.Stats
	if st.SourceInstances != len(d.XS) || st.TargetInstances != len(d.XT) {
		t.Errorf("stats report %d/%d instances, inputs have %d/%d",
			st.SourceInstances, st.TargetInstances, len(d.XS), len(d.XT))
	}
	CheckResult(t, "TransER", &transfer.Result{Labels: res.Labels, Proba: res.Proba}, len(d.XT))
	if len(res.PseudoLabels) != len(d.XT) || len(res.PseudoConfidence) != len(d.XT) {
		t.Errorf("GEN emitted %d pseudo labels / %d confidences for %d target rows",
			len(res.PseudoLabels), len(res.PseudoConfidence), len(d.XT))
		return res
	}
	high := 0
	for i, z := range res.PseudoConfidence {
		if math.IsNaN(z) || z < 0.5 || z > 1 {
			t.Errorf("pseudo confidence %v at row %d outside [0.5, 1]", z, i)
			return res
		}
		if z >= cfg.TP {
			high++
		}
	}
	if !cfg.DisableGENTCL && st.HighConfidence != high {
		t.Errorf("stats report %d high-confidence pseudo labels, confidences >= t_p=%v count %d",
			st.HighConfidence, cfg.TP, high)
	}
	if !cfg.DisableSEL && !st.SelectedFallback {
		if sel := core.SelectInstances(d.XS, d.YS, d.XT, cfg); len(sel) != st.Selected {
			t.Errorf("stats report %d selected instances, standalone SEL selects %d",
				st.Selected, len(sel))
		}
	}
	return res
}

// CheckSelectionMonotone asserts that raising the SEL thresholds can
// only shrink the selection: the instances selected under the stricter
// configuration must be a subset of those selected under the looser
// one. (core.SelectInstances applies no fallback, so the monotonicity
// is exact.)
func CheckSelectionMonotone(t TB, d testkit.Domain, loose, strict core.Config) {
	if strict.TC < loose.TC || strict.TL < loose.TL {
		t.Errorf("misuse: strict config has looser thresholds")
		return
	}
	looseSel := core.SelectInstances(d.XS, d.YS, d.XT, loose)
	strictSel := core.SelectInstances(d.XS, d.YS, d.XT, strict)
	in := make(map[int]bool, len(looseSel))
	for _, i := range looseSel {
		in[i] = true
	}
	for _, i := range strictSel {
		if !in[i] {
			t.Errorf("instance %d selected at t_c=%v,t_l=%v but not at t_c=%v,t_l=%v",
				i, strict.TC, strict.TL, loose.TC, loose.TL)
			return
		}
	}
}

// CheckPseudoLabelSweep asserts that the high-confidence pseudo-label
// count is non-increasing as t_p rises: GEN does not depend on t_p, so
// sweeping it re-thresholds one fixed confidence vector.
func CheckPseudoLabelSweep(t TB, d testkit.Domain, factory ml.Factory, cfg core.Config, sweep []float64) {
	prev := -1
	prevTP := 0.0
	for i, tp := range sweep {
		if i > 0 && tp < prevTP {
			t.Errorf("misuse: sweep must be non-decreasing")
			return
		}
		c := cfg
		c.TP = tp
		res, err := core.Run(d.XS, d.YS, d.XT, factory, c)
		if err != nil {
			t.Errorf("core.Run at t_p=%v: %v", tp, err)
			return
		}
		if prev >= 0 && res.Stats.HighConfidence > prev {
			t.Errorf("high-confidence count rose from %d to %d as t_p rose from %v to %v",
				prev, res.Stats.HighConfidence, prevTP, tp)
			return
		}
		prev, prevTP = res.Stats.HighConfidence, tp
	}
}

// Methods returns every transfer method that runs on a feature-space
// task (DR needs raw databases), configured small enough for property
// trials: bounded landmarks, short adversarial training.
func Methods(seed int64) []transfer.Method {
	return []transfer.Method{
		transfer.TransER{},
		transfer.Naive{},
		transfer.Coral{},
		transfer.TCA{MaxLandmarks: 40, Seed: seed},
		transfer.LocIT{MaxTrainPoints: 80, Seed: seed},
		transfer.DTAL{Epochs: 6, Hidden: 6, Seed: seed},
	}
}
