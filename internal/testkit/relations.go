package testkit

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Relation is one metamorphic relation over a system under test: from
// a generated source case, Transform derives a follow-up case whose
// output must relate to the source output in a known way (equal up to
// row relabelling, monotonically ordered, ...). Check receives both
// cases and both outputs and asserts that relationship.
type Relation[C, O any] struct {
	// Name identifies the relation in failure reports.
	Name string
	// Generate draws a random source case of the given size.
	Generate func(rng *rand.Rand, size int) C
	// Transform derives the follow-up case. It must not mutate c.
	Transform func(rng *rand.Rand, c C) C
	// Run executes the system under test on one case.
	Run func(c C) O
	// Check asserts the metamorphic relationship.
	Check func(t *T, source, followup C, out, followOut O)
}

// CheckRelation runs the relation for the given number of sized trials
// through the property runner, so failures report a replayable
// (seed, size) pair and shrink to the smallest failing size.
func CheckRelation[C, O any](tb testing.TB, trials int, rel Relation[C, O]) {
	tb.Helper()
	Run(tb, rel.Name, trials, func(t *T) {
		source := rel.Generate(t.Rng, t.Size)
		followup := rel.Transform(t.Rng, source)
		out := rel.Run(source)
		followOut := rel.Run(followup)
		rel.Check(t, source, followup, out, followOut)
	})
}

// Perm draws a uniform random permutation of [0, n).
func Perm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// Permute reorders a slice by a permutation: out[i] = s[p[i]]. The
// input is not modified.
func Permute[E any](p []int, s []E) []E {
	out := make([]E, len(p))
	for i, j := range p {
		out[i] = s[j]
	}
	return out
}

// InvertPerm returns the inverse permutation: inv[p[i]] = i.
func InvertPerm(p []int) []int {
	inv := make([]int, len(p))
	for i, j := range p {
		inv[j] = i
	}
	return inv
}

// MapIndices translates indices into a permuted slice back to indices
// into the original slice (idx refers to positions of Permute(p, s);
// the result refers to positions of s) and sorts them ascending, the
// canonical order selection APIs return.
func MapIndices(p []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = p[j]
	}
	sort.Ints(out)
	return out
}

// ScalePow2 scales every matrix entry by 2^k. Multiplication by a
// power of two is exact in IEEE-754 (barring overflow/subnormals), so
// value ordering, equality structure and midpoint thresholds are all
// preserved bit-exactly — the transform under which scale-invariant
// classifiers must produce identical predictions.
func ScalePow2(x [][]float64, k int) [][]float64 {
	f := math.Ldexp(1, k)
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = v * f
		}
		out[i] = r
	}
	return out
}

// CopyMatrix deep-copies a feature matrix.
func CopyMatrix(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// EqualInts reports whether two int slices are identical.
func EqualInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EqualFloats reports whether two float slices are bitwise identical
// (NaN != NaN, matching the determinism contract of the stack: equal
// inputs must produce equal — and NaN-free — outputs).
func EqualFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RowsEqual reports whether two feature vectors are equal in feature
// space (-0.0 == +0.0).
func RowsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
