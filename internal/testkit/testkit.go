// Package testkit is the property-based and metamorphic testing
// harness for the ER/transfer stack. It provides three layers:
//
//   - seeded generators (gen.go) for feature matrices, labels, records
//     and whole transfer domains, with deterministic sub-seed
//     derivation so every trial of every property is independently
//     reproducible from a printed (seed, size) pair;
//
//   - a property runner (this file) that executes a property over many
//     sized trials and, on failure, shrinks by size: it re-runs the
//     failing seed at increasing sizes from the minimum and reports
//     the smallest size that still fails;
//
//   - a metamorphic-relation runner (relations.go) that generates a
//     test case, derives a follow-up case by a semantic transformation
//     (row permutation, duplication, label corruption, feature
//     scaling), runs the system under test on both, and asserts the
//     required relationship between the two outputs.
//
// The differential oracle that cross-checks TransER and the transfer
// baselines against reference invariants lives in the sub-package
// oracle, which may import internal/core and internal/transfer;
// testkit itself depends only on the stdlib and internal/dataset so
// that in-package tests of the model packages can use it without
// import cycles.
package testkit

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Trial sizing: sizes ramp linearly from MinSize to MaxSize across the
// trials of one Run, so early trials are cheap and later trials
// exercise larger structures. Properties interpret Size as their own
// scale knob (rows of a matrix, entities of a domain).
const (
	// MinSize is the smallest trial size and the floor of shrinking.
	MinSize = 4
	// MaxSize is the size of the last trial.
	MaxSize = 48
)

// SubSeed derives a deterministic child seed from a parent seed and a
// label. Distinct labels yield statistically unrelated streams (the
// label is FNV-1a hashed and the combination is finalised with a
// splitmix64 mix), so generators can split one trial seed into
// independent per-structure seeds without correlation artefacts.
func SubSeed(seed int64, label string) int64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= fnvPrime
	}
	return int64(mix64(uint64(seed) + h))
}

// mix64 is the splitmix64 finaliser.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// T is the state handed to a property for one trial: a seeded random
// source, the trial size, and failure recording. It deliberately
// mirrors the testing.TB surface the suites need (Errorf, Fatalf,
// Logf) without embedding testing.TB, so a failing trial can be
// re-executed at smaller sizes during shrinking without failing the
// real test until the minimal counterexample is known.
type T struct {
	// Rng is the trial's random source. Properties must draw all
	// randomness from it (or from SubSeed(t.Seed, ...)) so the trial
	// replays exactly from (Seed, Size).
	Rng *rand.Rand
	// Seed is the trial seed, printed on failure.
	Seed int64
	// Size is the trial size in [MinSize, MaxSize].
	Size int

	failed  bool
	stopped bool
	log     []string
}

// failNow aborts the trial body via panic; recovered by runTrial.
type failNow struct{}

// Errorf records a failure and continues the trial.
func (t *T) Errorf(format string, args ...interface{}) {
	t.failed = true
	t.log = append(t.log, fmt.Sprintf(format, args...))
}

// Fatalf records a failure and aborts the trial.
func (t *T) Fatalf(format string, args ...interface{}) {
	t.Errorf(format, args...)
	t.FailNow()
}

// FailNow aborts the trial immediately.
func (t *T) FailNow() {
	t.failed = true
	t.stopped = true
	panic(failNow{})
}

// Logf records a message that is reported only if the trial fails.
func (t *T) Logf(format string, args ...interface{}) {
	t.log = append(t.log, fmt.Sprintf(format, args...))
}

// Failed reports whether the trial has recorded a failure.
func (t *T) Failed() bool { return t.failed }

// runTrial executes prop once with a fresh T and returns it.
func runTrial(seed int64, size int, prop func(*T)) (trial *T) {
	trial = &T{
		Rng:  rand.New(rand.NewSource(seed)),
		Seed: seed,
		Size: size,
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(failNow); !ok {
				trial.failed = true
				trial.log = append(trial.log, fmt.Sprintf("panic: %v", r))
			}
		}
	}()
	prop(trial)
	return trial
}

// Run executes the property over trials sized from MinSize to MaxSize,
// with trial seeds derived from the property name. On the first
// failing trial it shrinks by size — re-running the same seed from
// MinSize upwards and keeping the smallest size that still fails —
// then reports the property name, seed and minimal size so the
// counterexample can be replayed with Repro.
func Run(tb testing.TB, name string, trials int, prop func(*T)) {
	tb.Helper()
	if trials < 1 {
		trials = 1
	}
	base := SubSeed(0, "testkit:"+name)
	for i := 0; i < trials; i++ {
		seed := SubSeed(base, fmt.Sprintf("trial:%d", i))
		size := MinSize
		if trials > 1 {
			size += (MaxSize - MinSize) * i / (trials - 1)
		}
		trial := runTrial(seed, size, prop)
		if !trial.failed {
			continue
		}
		// Sized shrinking: find the smallest size at which this seed
		// still violates the property.
		minFail := trial
		minSize := size
		for s := MinSize; s < size; s++ {
			if shrunk := runTrial(seed, s, prop); shrunk.failed {
				minFail, minSize = shrunk, s
				break
			}
		}
		tb.Errorf("property %q failed at trial %d (seed=%d size=%d, shrunk from %d):\n%s",
			name, i, seed, minSize, size, strings.Join(minFail.log, "\n"))
		return
	}
}

// Repro replays a single (seed, size) counterexample reported by Run,
// failing tb with the trial's log if the property still fails.
func Repro(tb testing.TB, seed int64, size int, prop func(*T)) {
	tb.Helper()
	if trial := runTrial(seed, size, prop); trial.failed {
		tb.Errorf("property failed (seed=%d size=%d):\n%s",
			seed, size, strings.Join(trial.log, "\n"))
	}
}
