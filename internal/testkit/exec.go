package testkit

// Helpers for smoke-testing main packages: build a binary with the
// module's own toolchain, run it, and hand the combined output back to
// the test for assertions. Kept in testkit so the cmd/ and examples/
// suites share one implementation.

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// BuildBinary compiles the main package at importPath into a temp
// directory owned by tb and returns the binary path. Compilation
// errors fail the test with the compiler output attached.
func BuildBinary(tb testing.TB, importPath string) string {
	tb.Helper()
	bin := filepath.Join(tb.TempDir(), filepath.Base(importPath)+exeSuffix())
	out, err := exec.Command("go", "build", "-o", bin, importPath).CombinedOutput()
	if err != nil {
		tb.Fatalf("go build %s: %v\n%s", importPath, err, out)
	}
	return bin
}

func exeSuffix() string {
	if runtime.GOOS == "windows" {
		return ".exe"
	}
	return ""
}

// RunBinary executes bin with args, failing tb unless it exits
// cleanly, and returns the combined stdout+stderr output.
func RunBinary(tb testing.TB, bin string, args ...string) string {
	tb.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		tb.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// RunBinaryErr executes bin with args, failing tb unless it exits with
// an error, and returns the combined output so the test can assert on
// the diagnostic message.
func RunBinaryErr(tb testing.TB, bin string, args ...string) string {
	tb.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		tb.Fatalf("%s %v unexpectedly succeeded:\n%s", filepath.Base(bin), args, out)
	}
	return string(out)
}
