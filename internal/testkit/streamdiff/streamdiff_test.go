package streamdiff

import (
	"context"
	"math/rand"
	"testing"

	"transer/internal/blocking"
	"transer/internal/datagen"
	"transer/internal/stream"
	"transer/internal/testkit"
)

// TestStreamEqualsBatchProperty is the differential property: for
// generated record universes and shuffled ingest orders, the streaming
// partition equals the batch query+closure partition. Runs under the
// testkit property runner, so failures shrink by size and print a
// (seed, size) repro line; the ingest order itself is printed by
// Check.
func TestStreamEqualsBatchProperty(t *testing.T) {
	testkit.Run(t, "streamdiff/stream-equals-batch", 10, func(pt *testkit.T) {
		a, b := testkit.DatabasePair(pt.Rng, pt.Size)
		db := Universe(a, b)
		if len(db.Records) == 0 {
			return
		}
		thresholds := []float64{0.35, 0.5, 0.65, 0.8}
		cfg := stream.Config{
			Schema:    db.Schema,
			Threshold: thresholds[pt.Rng.Intn(len(thresholds))],
			LSH:       blocking.MinHashConfig{Seed: pt.Seed},
			Workers:   1 + pt.Rng.Intn(4),
		}
		Check(pt, context.Background(), db, cfg, pt.Rng, 3)
	})
}

// TestStreamEqualsBatchBuiltins is the acceptance-criteria run: on two
// builtin dataset pairs (clean DBLP-ACM and dirty DBLP-Scholar), the
// streaming partition equals batch across five shuffled ingest orders
// plus the natural order. CI runs this package under -race.
func TestStreamEqualsBatchBuiltins(t *testing.T) {
	scale := 0.12
	orders := 5
	if testing.Short() {
		scale, orders = 0.06, 2
	}
	for _, key := range []string{"DBLP-ACM", "DBLP-Scholar"} {
		key := key
		t.Run(key, func(t *testing.T) {
			b, ok := datagen.BuiltinByKey(key)
			if !ok {
				t.Fatalf("builtin %q missing", key)
			}
			pair := b.Make(scale)
			db := Universe(pair.A, pair.B)
			cfg := stream.Config{
				Schema:    db.Schema,
				Threshold: 0.6,
				LSH:       pair.Blocking,
				Workers:   4,
			}
			rng := rand.New(rand.NewSource(b.Seed))
			if Check(t, context.Background(), db, cfg, rng, orders) {
				t.Logf("%s: %d records equal across natural + %d shuffled orders", key, len(db.Records), orders)
			}
		})
	}
}

// TestCappedStreamCoarsensBatch characterizes the one blocking mode
// where streaming may legitimately diverge: with a positive bucket
// cap, the streaming partition coarsens the batch partition (never
// splits it, never regroups it differently).
func TestCappedStreamCoarsensBatch(t *testing.T) {
	testkit.Run(t, "streamdiff/capped-coarsens", 8, func(pt *testkit.T) {
		a, b := testkit.DatabasePair(pt.Rng, pt.Size)
		db := Universe(a, b)
		if len(db.Records) == 0 {
			return
		}
		cfg := stream.Config{
			Schema:    db.Schema,
			Threshold: 0.5,
			LSH:       blocking.MinHashConfig{Seed: pt.Seed, MaxBucketSize: 8},
			Workers:   2,
		}
		batch, err := BatchPartition(context.Background(), db, cfg)
		if err != nil {
			pt.Fatalf("batch reference: %v", err)
		}
		for k := 0; k < 3; k++ {
			perm := pt.Rng.Perm(len(db.Records))
			streamed, _, err := StreamPartition(context.Background(), db, cfg, perm)
			if err != nil {
				pt.Fatalf("stream run: %v", err)
			}
			if !Coarsens(streamed, batch) {
				pt.Fatalf("capped streaming partition does not coarsen batch\nbatch:  %s\nstream: %s\norder: %v",
					Format(batch), Format(streamed), perm)
			}
		}
	})
}

// TestCoarsens sanity-checks the Coarsens predicate itself.
func TestCoarsens(t *testing.T) {
	coarse := [][]int{{0, 1, 2}, {3, 4}}
	if !Coarsens(coarse, [][]int{{0, 1}, {2}, {3, 4}}) {
		t.Fatal("valid refinement rejected")
	}
	if Coarsens(coarse, [][]int{{0, 3}, {1, 2}, {4}}) {
		t.Fatal("cross-group fine cluster accepted")
	}
	if Coarsens(coarse, [][]int{{0, 5}}) {
		t.Fatal("unknown member accepted")
	}
}
