// Package streamdiff is the differential harness proving the
// streaming entity store (internal/stream) equivalent to the batch
// query engine: it replays a record set through the streaming ingest
// path in arbitrary orders, computes the batch reference — a planned
// internal/query dedup self-join followed by
// cluster.DedupComponents transitive closure — and compares the two
// partitions.
//
// The equivalence claim it checks is exactly the store's documented
// determinism contract:
//
//   - Uncapped blocking (the store default): the streaming partition
//     EQUALS the batch partition for every ingest order. Entity ID
//     numbering differs across orders (IDs are allocated in arrival
//     order), so partitions are compared as sets of record groups —
//     partition isomorphism, the strongest order-independent
//     statement.
//   - Positive bucket cap: the streaming partition COARSENS the batch
//     partition (streaming candidates are a superset; extra candidates
//     can only add match edges). Coarsens is the precise
//     characterization, checked by Coarsens.
//
// The package deliberately does not import testing, so the same checks
// run inside go tests (via the TB interface), the property runner
// (*testkit.T satisfies TB) and the cmd/stream replay binary's
// self-check mode.
package streamdiff

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"transer/internal/blocking"
	"transer/internal/cluster"
	"transer/internal/dataset"
	"transer/internal/query"
	"transer/internal/stream"
)

// TB is the minimal failure-reporting surface; *testing.T and
// *testkit.T both satisfy it.
type TB interface {
	Errorf(format string, args ...interface{})
	Logf(format string, args ...interface{})
}

// BatchPartition computes the batch reference partition of db: a
// planned query dedup self-join (forced to the store's LSH
// configuration so both sides block identically) thresholded at
// cfg.Threshold, closed transitively with cluster.DedupComponents.
// Groups are sorted by smallest member, members ascending — the
// canonical partition form used throughout this package.
func BatchPartition(ctx context.Context, db *dataset.Database, cfg stream.Config) ([][]int, error) {
	job := query.Job{
		A:         db,
		Scorer:    cfg.Scorer,
		Threshold: cfg.Threshold,
		Force:     query.StrategyLSH,
		LSH:       normalizeLSH(cfg),
		Workers:   cfg.Workers,
	}
	if len(cfg.Scheme.Comparators) > 0 {
		scheme := cfg.Scheme
		job.Scheme = &scheme
	}
	res, err := query.Run(ctx, job)
	if err != nil {
		return nil, err
	}
	pairs := make([]dataset.Pair, len(res.Matches))
	for i, m := range res.Matches {
		pairs[i] = dataset.Pair{A: m.A, B: m.B}
	}
	return cluster.DedupComponents(pairs, len(db.Records)), nil
}

// normalizeLSH applies the store's own LSH defaulting (a zero bucket
// cap means uncapped) so the batch reference blocks exactly like the
// store.
func normalizeLSH(cfg stream.Config) blocking.MinHashConfig {
	lsh := cfg.LSH
	if lsh.MaxBucketSize == 0 {
		lsh.MaxBucketSize = -1
	}
	return lsh
}

// StreamPartition builds a fresh store from cfg, ingests db's records
// in the order given by perm (perm[k] is the original index of the
// k-th ingested record; nil means natural order) and returns the final
// partition in canonical form over ORIGINAL record indices, plus the
// store for further inspection.
func StreamPartition(ctx context.Context, db *dataset.Database, cfg stream.Config, perm []int) ([][]int, *stream.Store, error) {
	st, err := stream.NewStore(cfg)
	if err != nil {
		return nil, nil, err
	}
	if perm == nil {
		perm = make([]int, len(db.Records))
		for i := range perm {
			perm[i] = i
		}
	}
	for _, idx := range perm {
		// Synthetic ids keyed by original index: unique even when the
		// source databases reuse ids, and trivially mapped back.
		rec := dataset.Record{ID: "x" + strconv.Itoa(idx), Values: db.Records[idx].Values}
		if _, err := st.Ingest(ctx, rec); err != nil {
			return nil, nil, err
		}
	}
	groups := make([][]int, 0)
	for _, ids := range st.Partition() {
		g := make([]int, 0, len(ids))
		for _, id := range ids {
			n, err := strconv.Atoi(strings.TrimPrefix(id, "x"))
			if err != nil {
				return nil, nil, fmt.Errorf("streamdiff: unexpected record id %q", id)
			}
			g = append(g, n)
		}
		sort.Ints(g)
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups, st, nil
}

// Equal reports whether two canonical partitions are identical —
// i.e. the underlying entity labelings are isomorphic.
func Equal(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// Coarsens reports whether every group of fine is contained in exactly
// one group of coarse — the capped-blocking characterization
// (streaming coarsens batch).
func Coarsens(coarse, fine [][]int) bool {
	owner := make(map[int]int)
	for gi, g := range coarse {
		for _, m := range g {
			owner[m] = gi
		}
	}
	for _, g := range fine {
		if len(g) == 0 {
			return false
		}
		want, ok := owner[g[0]]
		if !ok {
			return false
		}
		for _, m := range g[1:] {
			if o, ok := owner[m]; !ok || o != want {
				return false
			}
		}
	}
	return true
}

// Format renders a canonical partition compactly for failure messages.
func Format(groups [][]int) string {
	var b strings.Builder
	for i, g := range groups {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v", g)
		if i >= 24 {
			fmt.Fprintf(&b, " … (%d groups)", len(groups))
			break
		}
	}
	return b.String()
}

// diffSummary names the first group-level discrepancy between two
// canonical partitions.
func diffSummary(want, got [][]int) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d groups streamed vs %d batch", len(got), len(want))
	}
	for i := range want {
		a, b := fmt.Sprintf("%v", want[i]), fmt.Sprintf("%v", got[i])
		if a != b {
			return fmt.Sprintf("group %d: batch %s, streamed %s", i, a, b)
		}
	}
	return "identical"
}

// Check is the harness entry point: it computes the batch reference
// partition of db under cfg, then streams the records in natural order
// plus `orders` rng-shuffled orders, asserting every streaming
// partition equals the reference. Failures print the ingest order so
// the exact run replays. It returns true when every order matched.
func Check(tb TB, ctx context.Context, db *dataset.Database, cfg stream.Config, rng *rand.Rand, orders int) bool {
	want, err := BatchPartition(ctx, db, cfg)
	if err != nil {
		tb.Errorf("streamdiff: batch reference failed: %v", err)
		return false
	}
	ok := true
	run := func(label string, perm []int) {
		got, _, err := StreamPartition(ctx, db, cfg, perm)
		if err != nil {
			tb.Errorf("streamdiff: streaming run %s failed: %v", label, err)
			ok = false
			return
		}
		if !Equal(want, got) {
			tb.Errorf("streamdiff: %s order diverged from batch: %s\nbatch:  %s\nstream: %s\norder: %v",
				label, diffSummary(want, got), Format(want), Format(got), perm)
			ok = false
		}
	}
	run("natural", nil)
	for k := 0; k < orders; k++ {
		run(fmt.Sprintf("shuffle-%d", k), rng.Perm(len(db.Records)))
	}
	return ok
}

// Universe concatenates a linkage pair's two databases into the single
// dedup universe streaming operates on (A records first, then B).
func Universe(a, b *dataset.Database) *dataset.Database {
	u := &dataset.Database{Name: a.Name + "+" + b.Name, Schema: a.Schema}
	u.Records = append(u.Records, a.Records...)
	u.Records = append(u.Records, b.Records...)
	return u
}
