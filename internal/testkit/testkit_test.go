package testkit

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSubSeedDeterministicAndLabelSensitive(t *testing.T) {
	if SubSeed(1, "a") != SubSeed(1, "a") {
		t.Errorf("SubSeed not deterministic")
	}
	if SubSeed(1, "a") == SubSeed(1, "b") {
		t.Errorf("distinct labels share a seed")
	}
	if SubSeed(1, "a") == SubSeed(2, "a") {
		t.Errorf("distinct parents share a seed")
	}
}

// TestRunCatchesViolation feeds the runner a property violated only at
// sizes >= 10 and checks that it fails the outer test AND shrinks to
// the smallest violating size. The runner is exercised against a probe
// testing.TB so the deliberate failure does not fail this test.
func TestRunCatchesViolation(t *testing.T) {
	probe := &probeTB{TB: t}
	Run(probe, "deliberate-violation", 12, func(pt *T) {
		if pt.Size >= 10 {
			pt.Errorf("size %d too big", pt.Size)
		}
	})
	if !probe.failed {
		t.Fatalf("runner missed a deliberate violation")
	}
	// Shrinking scans sizes upward from MinSize, so the report must
	// pin the minimal violating size, 10.
	if want := "size=10"; !contains(probe.msg, want) {
		t.Errorf("failure not shrunk to minimal size: %q lacks %q", probe.msg, want)
	}
}

func TestRunPassesValidProperty(t *testing.T) {
	Run(t, "tautology", 8, func(pt *T) {
		if pt.Size < MinSize || pt.Size > MaxSize {
			pt.Errorf("size %d out of range", pt.Size)
		}
	})
}

func TestRunRecoversPanicAndFatalf(t *testing.T) {
	probe := &probeTB{TB: t}
	Run(probe, "panicky", 3, func(pt *T) { panic("boom") })
	if !probe.failed || !contains(probe.msg, "boom") {
		t.Errorf("panic not converted into a failure: %q", probe.msg)
	}
	probe2 := &probeTB{TB: t}
	Run(probe2, "fatal", 3, func(pt *T) {
		pt.Fatalf("stop here")
		pt.Errorf("must be unreachable")
	})
	if !probe2.failed || contains(probe2.msg, "unreachable") {
		t.Errorf("Fatalf did not abort the trial: %q", probe2.msg)
	}
}

func TestTrialsAreReproducible(t *testing.T) {
	seed := SubSeed(7, "repro")
	a := runTrial(seed, 20, func(pt *T) { pt.Logf("%v", pt.Rng.Float64()) })
	b := runTrial(seed, 20, func(pt *T) { pt.Logf("%v", pt.Rng.Float64()) })
	if a.log[0] != b.log[0] {
		t.Errorf("same seed drew different randomness: %v vs %v", a.log[0], b.log[0])
	}
}

func TestBinaryLabelsBothClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		y := BinaryLabels(rng, 2+rng.Intn(30))
		zeros, ones := 0, 0
		for _, v := range y {
			switch v {
			case 0:
				zeros++
			case 1:
				ones++
			default:
				t.Fatalf("non-binary label %d", v)
			}
		}
		if zeros == 0 || ones == 0 {
			t.Fatalf("labels %v missing a class", y)
		}
	}
}

func TestPermuteAndInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := []int{10, 11, 12, 13, 14, 15}
	p := Perm(rng, len(s))
	perm := Permute(p, s)
	back := Permute(InvertPerm(p), perm)
	if !EqualInts(s, back) {
		t.Errorf("inverse permutation does not round-trip: %v -> %v -> %v", s, perm, back)
	}
}

func TestMapIndices(t *testing.T) {
	p := []int{2, 0, 1} // permuted[i] = orig[p[i]]
	// Positions 0 and 2 of the permuted slice are originals 2 and 1.
	got := MapIndices(p, []int{0, 2})
	if !EqualInts(got, []int{1, 2}) {
		t.Errorf("MapIndices = %v, want [1 2]", got)
	}
}

func TestScalePow2Exact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := Matrix(rng, 10, 3)
	up := ScalePow2(x, 3)
	down := ScalePow2(up, -3)
	for i := range x {
		if !EqualFloats(x[i], down[i]) {
			t.Fatalf("power-of-two scaling not exactly invertible at row %d", i)
		}
	}
}

func TestGridMatrixHasDuplicatesAndSignedZeros(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := GridMatrix(rng, 200, 2)
	negZero, dup := false, false
	seen := map[[2]float64]bool{}
	for _, row := range x {
		if math.Signbit(row[0]) && row[0] == 0 || math.Signbit(row[1]) && row[1] == 0 {
			negZero = true
		}
		k := [2]float64{row[0], row[1]}
		if seen[k] {
			dup = true
		}
		seen[k] = true
	}
	if !negZero || !dup {
		t.Errorf("grid matrix missing its regimes: negZero=%v dup=%v", negZero, dup)
	}
}

func TestNewDomainShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDomain(rng, 10)
	if len(d.XS) != len(d.YS) || len(d.XT) != len(d.YT) {
		t.Fatalf("misaligned domain: %d/%d source, %d/%d target",
			len(d.XS), len(d.YS), len(d.XT), len(d.YT))
	}
	m := d.NumFeatures()
	for _, x := range [][][]float64{d.XS, d.XT} {
		for i, row := range x {
			if len(row) != m {
				t.Fatalf("ragged row %d", i)
			}
			for _, v := range row {
				if v < 0 || v > 1 {
					t.Fatalf("feature %v outside [0,1]", v)
				}
			}
		}
	}
}

func TestDatabasePairGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, b := DatabasePair(rng, 60)
	if err := a.Validate(); err != nil {
		t.Fatalf("A side invalid: %v", err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("B side invalid: %v", err)
	}
	if !a.Schema.Equal(b.Schema) {
		t.Fatalf("schemas differ")
	}
	if a.NumRecords() == 0 || b.NumRecords() == 0 {
		t.Fatalf("degenerate pair: %d/%d records", a.NumRecords(), b.NumRecords())
	}
}

// probeTB records the first Errorf call without failing the real test.
type probeTB struct {
	testing.TB
	failed bool
	msg    string
}

func (p *probeTB) Helper() {}
func (p *probeTB) Errorf(format string, args ...interface{}) {
	p.failed = true
	if p.msg == "" {
		p.msg = fmt.Sprintf(format, args...)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
