package obs

// Structured JSONL event logging. One call emits one self-contained
// JSON line: timestamp, level, event name, the trace/span IDs carried
// by the context (when present), then the caller's typed fields in
// order. Lines are written with a single Write under a mutex, so
// concurrent events never interleave.
//
// Like the nil *Tracer, a nil *Logger (and any level-filtered call) is
// a zero-allocation no-op: fields are typed Attr values built without
// boxing, and the variadic slice never escapes the disabled fast path,
// so instrumented hot paths cost nothing when logging is off.
// BenchmarkLoggerOverhead guards that contract the way
// BenchmarkTracerOverhead guards the tracer's.
//
// Logging observes; it never participates. Every deterministic output
// (goldens, streamdiff partitions, serve decisions) is byte-identical
// with logging enabled or disabled.

import (
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
	"unicode/utf8"
)

// Level orders event severities.
type Level int8

// Levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lower-case name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel parses a level name (case-insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// Field constructors: typed Attr values for log events (no boxing, so
// disabled call sites stay allocation-free).

// FInt is an integer log field.
func FInt(key string, v int64) Attr { return Attr{Key: key, Kind: KindInt, Int: v} }

// FFloat is a float log field.
func FFloat(key string, v float64) Attr { return Attr{Key: key, Kind: KindFloat, Float: v} }

// FStr is a string log field.
func FStr(key, v string) Attr { return Attr{Key: key, Kind: KindStr, Str: v} }

// FBool is a boolean log field.
func FBool(key string, v bool) Attr { return Attr{Key: key, Kind: KindBool, Bool: v} }

// Logger writes leveled JSONL events. All methods are no-ops on a nil
// receiver; construct with NewLogger.
type Logger struct {
	level Level

	mu sync.Mutex
	w  io.Writer

	// Optional self-instrumentation (see Instrument).
	events *Counter
	bytes  *Counter
}

// NewLogger returns a logger emitting events at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{level: level, w: w}
}

// Instrument mirrors the logger's own activity into reg as
// log.events_total and log.bytes_total.
func (l *Logger) Instrument(reg *Registry) {
	if l == nil {
		return
	}
	l.events = reg.Counter("log.events_total")
	l.bytes = reg.Counter("log.bytes_total")
}

// Enabled reports whether events at lv would be written (false for a
// nil logger).
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.level
}

// Debug emits a debug event.
func (l *Logger) Debug(ctx context.Context, event string, fields ...Attr) {
	if l == nil || LevelDebug < l.level {
		return
	}
	l.emit(ctx, LevelDebug, event, fields)
}

// Info emits an info event.
func (l *Logger) Info(ctx context.Context, event string, fields ...Attr) {
	if l == nil || LevelInfo < l.level {
		return
	}
	l.emit(ctx, LevelInfo, event, fields)
}

// Warn emits a warning event.
func (l *Logger) Warn(ctx context.Context, event string, fields ...Attr) {
	if l == nil || LevelWarn < l.level {
		return
	}
	l.emit(ctx, LevelWarn, event, fields)
}

// Error emits an error event.
func (l *Logger) Error(ctx context.Context, event string, fields ...Attr) {
	if l == nil || LevelError < l.level {
		return
	}
	l.emit(ctx, LevelError, event, fields)
}

// Log emits an event at an explicit level.
func (l *Logger) Log(ctx context.Context, lv Level, event string, fields ...Attr) {
	if l == nil || lv < l.level {
		return
	}
	l.emit(ctx, lv, event, fields)
}

var logBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// emit assembles one JSON line in a pooled buffer and writes it
// atomically. fields is only iterated, never retained, so call-site
// variadic slices stay on the caller's stack.
func (l *Logger) emit(ctx context.Context, lv Level, event string, fields []Attr) {
	bp := logBufPool.Get().(*[]byte)
	b := (*bp)[:0]

	b = append(b, `{"ts":"`...)
	b = time.Now().UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","level":"`...)
	b = append(b, lv.String()...)
	b = append(b, `","event":`...)
	b = appendJSONString(b, event)
	if ctx != nil {
		if tc, ok := TraceFromContext(ctx); ok && tc.Valid() {
			b = append(b, `,"trace_id":"`...)
			b = appendHex(b, tc.TraceID[:])
			b = append(b, `","span_id":"`...)
			b = appendHex(b, tc.SpanID[:])
			b = append(b, '"')
		}
	}
	for _, f := range fields {
		b = append(b, ',')
		b = appendJSONString(b, f.Key)
		b = append(b, ':')
		switch f.Kind {
		case KindInt:
			b = strconv.AppendInt(b, f.Int, 10)
		case KindFloat:
			b = appendJSONFloat(b, f.Float)
		case KindBool:
			b = strconv.AppendBool(b, f.Bool)
		default:
			b = appendJSONString(b, f.Str)
		}
	}
	b = append(b, '}', '\n')

	l.mu.Lock()
	_, err := l.w.Write(b)
	l.mu.Unlock()
	if err == nil {
		l.events.Add(1)
		l.bytes.Add(int64(len(b)))
	}

	*bp = b[:0]
	logBufPool.Put(bp)
}

const hexDigits = "0123456789abcdef"

func appendHex(b, raw []byte) []byte {
	for _, c := range raw {
		b = append(b, hexDigits[c>>4], hexDigits[c&0xf])
	}
	return b
}

// appendJSONFloat renders a float as a JSON number; non-finite values
// (not representable in JSON) become strings.
func appendJSONFloat(b []byte, v float64) []byte {
	if v != v || v > 1.797693134862315708e308 || v < -1.797693134862315708e308 {
		b = append(b, '"')
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
		return append(b, '"')
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendJSONString appends s as a quoted JSON string, escaping quotes,
// backslashes, control characters and invalid UTF-8.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"':
				b = append(b, '\\', '"')
			case c == '\\':
				b = append(b, '\\', '\\')
			case c == '\n':
				b = append(b, '\\', 'n')
			case c == '\r':
				b = append(b, '\\', 'r')
			case c == '\t':
				b = append(b, '\\', 't')
			case c < 0x20:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			default:
				b = append(b, c)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			continue
		}
		b = append(b, s[i:i+size]...)
		i += size
	}
	return append(b, '"')
}

// OpenLogOutput resolves a -log-out flag value: "" disables (nil
// writer), "-" or "stderr" log to standard error (Close is a no-op),
// anything else creates/truncates that file.
func OpenLogOutput(path string) (io.WriteCloser, error) {
	switch path {
	case "":
		return nil, nil
	case "-", "stderr":
		return nopCloser{os.Stderr}, nil
	}
	return os.Create(path)
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }
