package obs

// Prometheus text exposition (format version 0.0.4) over a registry
// Snapshot, so GET /metrics?format=prom is scrape-parseable by a stock
// Prometheus server without any client library dependency.
//
// Metric names translate from the registry's dotted convention to
// Prometheus idiom: "serve.request_seconds" becomes
// "transer_serve_request_seconds". Histograms render cumulative
// buckets with a closing le="+Inf", then _sum and _count, exactly as
// the exposition format requires.

import (
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromNamespace prefixes every exported metric name.
const PromNamespace = "transer"

// PromName translates a registry metric name to a valid Prometheus
// metric name: namespace prefix, dots to underscores, any other
// invalid character to underscore.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(PromNamespace) + 1 + len(name))
	b.WriteString(PromNamespace)
	b.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders snap in the Prometheus text exposition
// format, deterministically ordered (counters, gauges, histograms,
// each sorted by name).
func WritePrometheus(w io.Writer, snap Snapshot) error {
	var b []byte

	for _, name := range sortedKeys(snap.Counters) {
		pn := PromName(name)
		b = append(b, "# TYPE "...)
		b = append(b, pn...)
		b = append(b, " counter\n"...)
		b = append(b, pn...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, snap.Counters[name], 10)
		b = append(b, '\n')
	}
	for _, name := range sortedKeys(snap.Gauges) {
		pn := PromName(name)
		b = append(b, "# TYPE "...)
		b = append(b, pn...)
		b = append(b, " gauge\n"...)
		b = append(b, pn...)
		b = append(b, ' ')
		b = appendPromFloat(b, snap.Gauges[name])
		b = append(b, '\n')
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		pn := PromName(name)
		b = append(b, "# TYPE "...)
		b = append(b, pn...)
		b = append(b, " histogram\n"...)
		var cum int64
		for _, bkt := range h.Buckets {
			cum += bkt.Count
			b = append(b, pn...)
			b = append(b, `_bucket{le="`...)
			b = appendPromFloat(b, bkt.UpperBound)
			b = append(b, `"} `...)
			b = strconv.AppendInt(b, cum, 10)
			b = append(b, '\n')
		}
		b = append(b, pn...)
		b = append(b, `_bucket{le="+Inf"} `...)
		b = strconv.AppendInt(b, h.Count, 10)
		b = append(b, '\n')
		b = append(b, pn...)
		b = append(b, "_sum "...)
		b = appendPromFloat(b, h.Sum)
		b = append(b, '\n')
		b = append(b, pn...)
		b = append(b, "_count "...)
		b = strconv.AppendInt(b, h.Count, 10)
		b = append(b, '\n')
	}

	_, err := w.Write(b)
	return err
}

func appendPromFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
