package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// SchemaVersion identifies the run-report JSON schema. Consumers
// (BENCH_*.json tooling, the CI verifier) reject reports whose schema
// field differs.
const SchemaVersion = "transer.obs.report/v1"

// Report is the machine-readable summary of one instrumented run: the
// full span tree plus a metrics snapshot, written by the -metrics-out
// flag of cmd/experiments, cmd/transer and cmd/datagen.
type Report struct {
	Schema     string    `json:"schema"`
	Command    string    `json:"command"`
	Args       []string  `json:"args,omitempty"`
	Started    time.Time `json:"started"`
	WallMS     float64   `json:"wall_ms"`
	GoVersion  string    `json:"go_version"`
	NumCPU     int       `json:"num_cpu"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Span       *SpanNode `json:"span"`
	Metrics    Snapshot  `json:"metrics"`
}

// SpanNode is the serialised form of one span.
type SpanNode struct {
	Name     string         `json:"name"`
	DurMS    float64        `json:"dur_ms"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanNode    `json:"children,omitempty"`
}

// Find returns the first node (depth-first) named name, including the
// receiver itself, or nil.
func (n *SpanNode) Find(name string) *SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Walk calls fn for every node of the subtree in depth-first order.
func (n *SpanNode) Walk(fn func(*SpanNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// BuildReport ends the tracer's root span and assembles the run
// report. A nil tracer yields a minimal valid report with an empty
// span tree (so callers need not branch on whether observability was
// enabled).
func BuildReport(command string, args []string, t *Tracer) *Report {
	r := &Report{
		Schema:     SchemaVersion,
		Command:    command,
		Args:       args,
		Started:    time.Now(),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Metrics:    t.Metrics().Snapshot(),
	}
	if root := t.Root(); root != nil {
		root.End()
		r.Started = root.start
		r.WallMS = durMS(root.Duration())
		r.Span = spanNode(root)
	} else {
		r.Span = &SpanNode{Name: command}
	}
	return r
}

func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

func spanNode(s *Span) *SpanNode {
	n := &SpanNode{Name: s.Name(), DurMS: durMS(s.Duration())}
	if attrs := s.Attrs(); len(attrs) > 0 {
		n.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			n.Attrs[a.Key] = a.Value()
		}
	}
	for _, c := range s.Children() {
		n.Children = append(n.Children, spanNode(c))
	}
	return n
}

// Validate checks the report against the schema: version and command
// present, a well-formed span tree (non-empty names, non-negative
// durations) and well-formed histogram snapshots (bucket bounds sorted
// strictly ascending, bucket counts summing to Count).
func (r *Report) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("obs: report schema %q, want %q", r.Schema, SchemaVersion)
	}
	if r.Command == "" {
		return fmt.Errorf("obs: report has no command")
	}
	if r.Span == nil {
		return fmt.Errorf("obs: report has no span tree")
	}
	var spanErr error
	r.Span.Walk(func(n *SpanNode) {
		if spanErr != nil {
			return
		}
		if n.Name == "" {
			spanErr = fmt.Errorf("obs: span with empty name")
		} else if n.DurMS < 0 {
			spanErr = fmt.Errorf("obs: span %q has negative duration", n.Name)
		}
	})
	if spanErr != nil {
		return spanErr
	}
	for name, c := range r.Metrics.Counters {
		if c < 0 {
			return fmt.Errorf("obs: counter %q is negative", name)
		}
	}
	for name, h := range r.Metrics.Histograms {
		var sum int64
		last := 0.0
		for i, b := range h.Buckets {
			if i > 0 && b.UpperBound <= last {
				return fmt.Errorf("obs: histogram %q bounds not ascending", name)
			}
			last = b.UpperBound
			if b.Count < 0 {
				return fmt.Errorf("obs: histogram %q has a negative bucket", name)
			}
			sum += b.Count
		}
		if sum+h.Overflow != h.Count {
			return fmt.Errorf("obs: histogram %q buckets sum to %d, count is %d",
				name, sum+h.Overflow, h.Count)
		}
	}
	return nil
}

// ValidateReportBytes unmarshals a serialised report and validates it
// — the check CI runs over -metrics-out output.
func ValidateReportBytes(b []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("obs: report is not valid JSON: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
