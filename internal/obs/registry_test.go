package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits")
	c.Add(3)
	c.Add(2)
	if got := reg.Counter("hits").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5 (lookups must intern by name)", got)
	}
	g := reg.Gauge("bytes")
	g.Set(10)
	g.Set(2.5)
	if got := reg.Gauge("bytes").Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5 (last write wins)", got)
	}
}

// TestHistogramBucketBoundaries pins the bucket convention: a value
// lands in the first bucket whose upper bound is >= the value;
// anything above the last bound is overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 4.1, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	wantCounts := []int64{2, 2, 2} // (<=1): 0.5,1.0; (<=2): 1.5,2.0; (<=4): 3.9,4.0
	for i, want := range wantCounts {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket le=%v count = %d, want %d", s.Buckets[i].UpperBound, s.Buckets[i].Count, want)
		}
	}
	if s.Overflow != 2 {
		t.Errorf("overflow = %d, want 2", s.Overflow)
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	if s.Min != 0.5 || s.Max != 100 {
		t.Errorf("min/max = %v/%v, want 0.5/100", s.Min, s.Max)
	}
	if want := 0.5 + 1 + 1.5 + 2 + 3.9 + 4 + 4.1 + 100; math.Abs(s.Sum-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 10)) // 10..100
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// With 100 uniform observations the q-quantile lands near 100q;
	// bucket interpolation is exact to within one bucket width.
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 50, 10},
		{0.9, 90, 10},
		{0.99, 99, 10},
		{0, 1, 10},
		{1, 100, 1e-9},
		{-1, 1, 10},    // clamps to 0
		{2, 100, 1e-9}, // clamps to 1
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Observe(2)
	h.Observe(4)
	if got := h.Snapshot().Mean(); got != 3 {
		t.Fatalf("mean = %v, want 3", got)
	}
	if got := (HistogramSnapshot{}).Mean(); got != 0 {
		t.Fatalf("empty mean = %v, want 0", got)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// the lock-free instrument paths and the interning map must both
// survive the race detector, and the final counts must be exact.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("shared").Add(1)
				reg.Gauge("gauge").Set(float64(w))
				reg.Histogram("hist", []float64{0.25, 0.5, 0.75}).Observe(float64(i%4) / 4)
				_ = reg.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	if got := snap.Counters["shared"]; got != workers*perWorker {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*perWorker)
	}
	h := snap.Histograms["hist"]
	if h.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	var inBuckets int64
	for _, b := range h.Buckets {
		inBuckets += b.Count
	}
	if inBuckets+h.Overflow != h.Count {
		t.Fatalf("bucket sum %d + overflow %d != count %d", inBuckets, h.Overflow, h.Count)
	}
}

func TestBucketLayouts(t *testing.T) {
	exp := ExpBuckets(1e-6, 4, 3)
	want := []float64{1e-6, 4e-6, 16e-6}
	for i := range want {
		if math.Abs(exp[i]-want[i]) > 1e-15 {
			t.Errorf("ExpBuckets[%d] = %v, want %v", i, exp[i], want[i])
		}
	}
	lin := LinearBuckets(0.1, 0.1, 10)
	if lin[0] != 0.1 || math.Abs(lin[9]-1.0) > 1e-9 {
		t.Errorf("LinearBuckets ends = %v, %v", lin[0], lin[9])
	}
	for _, fn := range []func(){
		func() { ExpBuckets(0, 2, 3) },
		func() { ExpBuckets(1, 1, 3) },
		func() { ExpBuckets(1, 2, 0) },
		func() { LinearBuckets(0, 0, 3) },
		func() { LinearBuckets(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid bucket layout did not panic")
				}
			}()
			fn()
		}()
	}
}
