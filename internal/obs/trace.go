package obs

// Trace context: W3C-traceparent-compatible request correlation IDs,
// carried through context.Context so one request's spans, structured
// log events, metric exemplars and decision provenance all share the
// same trace ID whether the request entered with a client-supplied
// traceparent header or was assigned one at the edge.
//
// Trace IDs are observability metadata only: they are generated from a
// process-local RNG, never feed back into scoring or clustering, and
// so cannot perturb any deterministic output.

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sync"
)

// TraceID is a 16-byte trace identifier (non-zero when valid).
type TraceID [16]byte

// SpanID is an 8-byte span identifier (non-zero when valid).
type SpanID [8]byte

// IsZero reports whether the trace ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the trace ID as 32 lower-case hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the span ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the span ID as 16 lower-case hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// TraceContext is one request's correlation identity: the trace ID
// shared by every participant and the span ID of the current hop.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both IDs are non-zero, as the traceparent spec
// requires.
func (tc TraceContext) Valid() bool { return !tc.TraceID.IsZero() && !tc.SpanID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set).
func (tc TraceContext) Traceparent() string {
	return "00-" + tc.TraceID.String() + "-" + tc.SpanID.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex>"). Unknown versions are accepted as
// long as the field layout holds; zero trace or span IDs are invalid.
func ParseTraceparent(h string) (TraceContext, error) {
	var tc TraceContext
	if len(h) < 55 {
		return tc, fmt.Errorf("obs: traceparent %q too short", h)
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tc, fmt.Errorf("obs: traceparent %q malformed", h)
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(h[3:35])); err != nil {
		return tc, fmt.Errorf("obs: traceparent trace id: %w", err)
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(h[36:52])); err != nil {
		return tc, fmt.Errorf("obs: traceparent span id: %w", err)
	}
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q has a zero id", h)
	}
	return tc, nil
}

// idRand generates trace/span IDs: a ChaCha8 stream seeded once from
// crypto/rand, behind a mutex (ID generation is not on the scoring hot
// path — one trace ID and a handful of span IDs per request).
var idRand = struct {
	sync.Mutex
	r *rand.ChaCha8
}{r: newChaCha8()}

func newChaCha8() *rand.ChaCha8 {
	var seed [32]byte
	if _, err := crand.Read(seed[:]); err != nil {
		// Fall back to a fixed seed: IDs stay unique within the process
		// (the stream still advances), which is all correlation needs.
		copy(seed[:], "transer.obs.trace.fallback.seed!")
	}
	return rand.NewChaCha8(seed)
}

func randomBytes(b []byte) {
	idRand.Lock()
	defer idRand.Unlock()
	for len(b) >= 8 {
		binary.LittleEndian.PutUint64(b, idRand.r.Uint64())
		b = b[8:]
	}
	if len(b) > 0 {
		var rest [8]byte
		binary.LittleEndian.PutUint64(rest[:], idRand.r.Uint64())
		copy(b, rest[:])
	}
}

// NewTraceID returns a fresh random non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		randomBytes(t[:])
	}
	return t
}

// NewSpanID returns a fresh random non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		randomBytes(s[:])
	}
	return s
}

// NewTraceContext returns a fresh root trace context.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
}

// ChildOf returns a context continuing tc's trace under a fresh span
// ID — the hop a server records after accepting a client traceparent.
func (tc TraceContext) ChildOf() TraceContext {
	return TraceContext{TraceID: tc.TraceID, SpanID: NewSpanID()}
}

type traceCtxKey struct{}

// ContextWithTrace returns a context carrying tc.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the trace context carried by ctx, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}
