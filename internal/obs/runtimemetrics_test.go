package obs

import (
	"runtime"
	"testing"
)

func TestRuntimeSamplerPopulatesGauges(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	runtime.GC() // guarantee at least one completed cycle to observe
	stats := s.Sample()
	if stats.Goroutines <= 0 || stats.HeapAllocBytes == 0 {
		t.Fatalf("stats: %+v", stats)
	}
	snap := reg.Snapshot()
	if snap.Gauges["runtime.goroutines"] <= 0 {
		t.Fatalf("goroutines gauge: %v", snap.Gauges)
	}
	if snap.Gauges["runtime.heap_alloc_bytes"] <= 0 {
		t.Fatalf("heap gauge: %v", snap.Gauges)
	}
	if snap.Gauges["runtime.gc_runs_total"] < 1 {
		t.Fatalf("gc runs gauge: %v", snap.Gauges)
	}
	if snap.Histograms["runtime.gc_pause_seconds"].Count < 1 {
		t.Fatalf("gc pause histogram empty: %+v", snap.Histograms["runtime.gc_pause_seconds"])
	}
}

func TestRuntimeSamplerObservesOnlyFreshPauses(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	runtime.GC()
	s.Sample()
	n1 := reg.Snapshot().Histograms["runtime.gc_pause_seconds"].Count
	// No GC between samples: the histogram must not re-observe old
	// pauses.
	s.Sample()
	n2 := reg.Snapshot().Histograms["runtime.gc_pause_seconds"].Count
	if n2 != n1 {
		t.Fatalf("re-observed pauses: %d then %d", n1, n2)
	}
	runtime.GC()
	s.Sample()
	if n3 := reg.Snapshot().Histograms["runtime.gc_pause_seconds"].Count; n3 <= n2 {
		t.Fatalf("fresh GC cycle not observed: %d then %d", n2, n3)
	}
}

func TestRuntimeSamplerNilSafe(t *testing.T) {
	var s *RuntimeSampler
	if stats := s.Sample(); stats.Goroutines != 0 {
		t.Fatalf("nil sampler: %+v", stats)
	}
	if NewRuntimeSampler(nil) != nil {
		t.Fatal("sampler over a nil registry")
	}
}
