package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe collection of named counters, gauges
// and fixed-bucket histograms. Lookup methods intern instruments by
// name (first registration wins), so hot paths resolve an instrument
// once and then touch only atomics. All methods are no-ops on a nil
// receiver and hand out nil instruments, which are themselves no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (bounds must be
// sorted ascending; later registrations reuse the first bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry's instruments, keyed
// by metric name — the form reports serialise.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot returns a point-in-time copy of every registered
// instrument. A nil registry snapshots to empty (non-nil) maps so
// report serialisation never branches.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.Snapshot()
	}
	return snap
}

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (no-op on nil).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets by upper bound,
// with an implicit overflow bucket above the last bound. It also
// tracks count, sum, min and max, all updated lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket

	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64

	ex atomic.Pointer[Exemplar]
}

// Exemplar pins one concrete observation — and the trace that produced
// it — to a histogram, so a latency spike seen in /metrics can be
// followed straight to its request in /debug/traces.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// NewHistogram returns a histogram over the given sorted upper bounds.
// Empty bounds give a single overflow bucket (count/sum/min/max only).
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	casFloat(&h.minBits, v, func(cur float64) bool { return v < cur })
	casFloat(&h.maxBits, v, func(cur float64) bool { return v > cur })
}

// ObserveEx records one value and, when traceID is non-empty, replaces
// the histogram's exemplar with this observation (no-op on nil). Last
// write wins: the exemplar is a sample, not a maximum.
func (h *Histogram) ObserveEx(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID != "" {
		h.ex.Store(&Exemplar{Value: v, TraceID: traceID})
	}
}

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// casFloat atomically replaces the stored float when better reports
// that v improves on the current value.
func casFloat(bits *atomic.Uint64, v float64, better func(cur float64) bool) {
	for {
		old := bits.Load()
		if !better(math.Float64frombits(old)) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Snapshot copies the histogram's current state (zero value for nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
		Buckets: make([]Bucket, len(h.bounds)),
	}
	for i, b := range h.bounds {
		s.Buckets[i] = Bucket{UpperBound: b, Count: h.counts[i].Load()}
	}
	s.Overflow = h.counts[len(h.bounds)].Load()
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	if ex := h.ex.Load(); ex != nil {
		cp := *ex
		s.Exemplar = &cp
	}
	return s
}

// Bucket is one histogram bucket: the count of observations v with
// v <= UpperBound and v > the previous bound.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time histogram state. Buckets hold
// per-bucket (non-cumulative) counts; Overflow counts observations
// above the last bound (kept separate so the JSON encoding never needs
// a +Inf bound).
type HistogramSnapshot struct {
	Count    int64     `json:"count"`
	Sum      float64   `json:"sum"`
	Min      float64   `json:"min"`
	Max      float64   `json:"max"`
	Buckets  []Bucket  `json:"buckets,omitempty"`
	Overflow int64     `json:"overflow"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Mean returns Sum/Count (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation within the bucket holding the q-th observation. The
// first bucket interpolates from Min, the overflow bucket from the
// last bound to Max; out-of-range q clamps.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen int64
	lower := s.Min
	for _, b := range s.Buckets {
		if float64(seen+b.Count) >= rank && b.Count > 0 {
			frac := (rank - float64(seen)) / float64(b.Count)
			hi := math.Min(b.UpperBound, s.Max)
			lo := math.Max(lower, s.Min)
			if hi < lo {
				return hi
			}
			return lo + frac*(hi-lo)
		}
		seen += b.Count
		lower = b.UpperBound
	}
	return s.Max
}

// ExpBuckets returns n upper bounds growing geometrically from start
// by factor — the standard latency bucket layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic(fmt.Sprintf("obs: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds from start in steps of width.
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic(fmt.Sprintf("obs: invalid LinearBuckets(%v, %v, %d)", start, width, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// SecondsBuckets is the default latency layout: 1µs..~67s in
// geometric ×4 steps (14 buckets).
func SecondsBuckets() []float64 { return ExpBuckets(1e-6, 4, 14) }

// RatioBuckets is the default layout for fractions in [0,1] (width
// 0.1).
func RatioBuckets() []float64 { return LinearBuckets(0.1, 0.1, 10) }
