package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildReportRoundTrip(t *testing.T) {
	tr := New("experiments")
	exp := tr.Root().Child("experiment:table2")
	cell := exp.Child("cell:MSD -> MB/TransER")
	sel := cell.Child("sel")
	sel.SetInt("selected", 1234)
	sel.End()
	cell.End()
	exp.End()
	tr.Metrics().Counter("pipeline.store.hits_total").Add(7)
	tr.Metrics().Histogram("parallel.queue_wait_seconds", SecondsBuckets()).Observe(0.001)

	r := BuildReport("experiments", []string{"-exp", "table2"}, tr)
	if err := r.Validate(); err != nil {
		t.Fatalf("fresh report invalid: %v", err)
	}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValidateReportBytes(b)
	if err != nil {
		t.Fatalf("round-trip validation failed: %v", err)
	}
	if got.Command != "experiments" || got.Schema != SchemaVersion {
		t.Fatalf("header = %q/%q", got.Command, got.Schema)
	}
	selNode := got.Span.Find("sel")
	if selNode == nil {
		t.Fatalf("report lost the sel span; tree root = %+v", got.Span)
	}
	// JSON numbers decode as float64.
	if v, ok := selNode.Attrs["selected"].(float64); !ok || v != 1234 {
		t.Fatalf("sel attrs = %v", selNode.Attrs)
	}
	if got.Metrics.Counters["pipeline.store.hits_total"] != 7 {
		t.Fatalf("counters = %v", got.Metrics.Counters)
	}
	if h := got.Metrics.Histograms["parallel.queue_wait_seconds"]; h.Count != 1 {
		t.Fatalf("histogram lost its observation: %+v", h)
	}
}

func TestBuildReportNilTracer(t *testing.T) {
	r := BuildReport("transer", nil, nil)
	if err := r.Validate(); err != nil {
		t.Fatalf("nil-tracer report must still validate: %v", err)
	}
	if r.Span == nil || r.Span.Name != "transer" {
		t.Fatalf("span = %+v", r.Span)
	}
	if len(r.Metrics.Counters) != 0 {
		t.Fatalf("metrics = %+v", r.Metrics)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Report {
		return BuildReport("x", nil, New("x"))
	}
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"wrong schema", func(r *Report) { r.Schema = "bogus/v0" }, "schema"},
		{"no command", func(r *Report) { r.Command = "" }, "command"},
		{"no span", func(r *Report) { r.Span = nil }, "span tree"},
		{"empty span name", func(r *Report) { r.Span.Children = []*SpanNode{{Name: ""}} }, "empty name"},
		{"negative duration", func(r *Report) { r.Span.DurMS = -1 }, "negative duration"},
		{"negative counter", func(r *Report) { r.Metrics.Counters = map[string]int64{"c": -1} }, "negative"},
		{"unsorted bounds", func(r *Report) {
			r.Metrics.Histograms = map[string]HistogramSnapshot{"h": {
				Count: 2, Buckets: []Bucket{{UpperBound: 2, Count: 1}, {UpperBound: 1, Count: 1}},
			}}
		}, "ascending"},
		{"bucket sum mismatch", func(r *Report) {
			r.Metrics.Histograms = map[string]HistogramSnapshot{"h": {
				Count: 5, Buckets: []Bucket{{UpperBound: 1, Count: 1}}, Overflow: 1,
			}}
		}, "sum"},
	}
	for _, tc := range cases {
		r := base()
		tc.mutate(r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: validated despite defect", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateReportBytesRejectsGarbage(t *testing.T) {
	if _, err := ValidateReportBytes([]byte("not json")); err == nil {
		t.Fatalf("garbage bytes validated")
	}
}

func TestSpanNodeWalkAndFind(t *testing.T) {
	tree := &SpanNode{Name: "root", Children: []*SpanNode{
		{Name: "a", Children: []*SpanNode{{Name: "leaf"}}},
		{Name: "b"},
	}}
	var order []string
	tree.Walk(func(n *SpanNode) { order = append(order, n.Name) })
	if got := strings.Join(order, ","); got != "root,a,leaf,b" {
		t.Fatalf("walk order = %s", got)
	}
	if tree.Find("leaf") == nil || tree.Find("zzz") != nil {
		t.Fatalf("Find misbehaved")
	}
	var nilNode *SpanNode
	if nilNode.Find("x") != nil {
		t.Fatalf("nil node Find should be nil")
	}
	nilNode.Walk(func(*SpanNode) { t.Fatal("nil node walked") })
}

func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	tr := filepath.Join(dir, "trace.out")
	stop, err := StartProfiles(cpu, mem, tr)
	if err != nil {
		t.Fatalf("StartProfiles: %v", err)
	}
	// Burn a little CPU so the profiles have something to record.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i % 7
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem, tr} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// All-empty paths: a no-op stop.
	stop, err = StartProfiles("", "", "")
	if err != nil {
		t.Fatalf("disabled StartProfiles: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("disabled stop: %v", err)
	}
}
