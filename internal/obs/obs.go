// Package obs is the repository's stdlib-only observability layer:
// hierarchical wall-clock spans (Tracer/Span), a concurrency-safe
// metrics registry (Counter/Gauge/Histogram with a Snapshot API), a
// machine-readable JSON run report consumed by the BENCH_*.json
// trajectory files, and pprof/trace profiling helpers for the
// command-line binaries.
//
// Everything is nil-safe by design: a nil *Tracer (and the nil *Span
// and nil metric handles it hands out) turns every call into a no-op
// that performs no allocation and no locking, so instrumented code
// paths cost nothing when observability is off. BenchmarkTracerOverhead
// and TestNilTracerAllocates guard that contract.
//
// Instrumentation never feeds back into computation — spans and metrics
// only record what deterministic code already did — so every golden
// output is byte-identical with observability enabled or disabled.
//
// Span naming: lower-case, colon-separated role:detail ("experiment:
// table2", "cell:MSD -> MB/TransER", "generate:msd@0.50"); the TransER
// phases use the paper's names "sel", "gen", "tcl" with "fit" and
// "predict" children. Metric naming: dotted lower-case path with a
// unit or _total suffix ("pipeline.store.hits_total",
// "parallel.queue_wait_seconds").
package obs

import (
	"context"
	"sync"
	"time"
)

// Tracer owns one run's span tree and metrics registry. The zero value
// is not useful: construct with New, or use a nil *Tracer for the
// disabled fast path.
type Tracer struct {
	root *Span
	reg  *Registry
}

// New returns an enabled tracer whose root span carries name
// (conventionally the command or workload name).
func New(name string) *Tracer {
	return &Tracer{root: newSpan(name), reg: NewRegistry()}
}

// Root returns the run's root span (nil for a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Metrics returns the tracer's registry (nil for a nil tracer; a nil
// registry is itself a no-op).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// AttrKind discriminates the typed payload of an Attr.
type AttrKind uint8

// Attr payload kinds.
const (
	KindInt AttrKind = iota
	KindFloat
	KindStr
	KindBool
)

// Attr is one typed span attribute. Typed fields (rather than an
// interface{} value) keep the nil-span setters allocation-free: no
// boxing happens before the receiver nil-check.
type Attr struct {
	Key   string
	Kind  AttrKind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// Value returns the attribute's payload as an interface value (used
// when serialising reports; allocates, so only called at report time).
func (a Attr) Value() any {
	switch a.Kind {
	case KindFloat:
		return a.Float
	case KindStr:
		return a.Str
	case KindBool:
		return a.Bool
	default:
		return a.Int
	}
}

// Span is one timed node of the run's span tree. Spans are
// concurrency-safe: parallel grid cells may add children and attributes
// to a shared parent simultaneously. All methods are no-ops on a nil
// receiver.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// NewDetachedSpan starts a span outside any tracer's tree. Long-running
// servers use detached spans for requests beyond their report-tree
// sampling budget: the span (and its children) can still be serialised
// into the tail-based trace capture, but nothing retains it afterwards,
// so the process working set stays bounded.
func NewDetachedSpan(name string) *Span { return newSpan(name) }

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sp as the current span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the current span carried by ctx, or nil —
// and a nil span is a no-op, so callers chain Child/Set* unguarded.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// Child starts a new child span. It returns nil when s is nil, so
// entire instrumented call trees collapse to no-ops under a nil
// tracer.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End fixes the span's duration. Ending twice keeps the first
// duration; an un-ended span reports the time elapsed so far.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's wall time: the final duration after End,
// or the time elapsed so far while still running (0 for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Children returns a snapshot of the span's children in creation
// order. Under concurrent creation the order is scheduling-dependent;
// serial instrumentation sees its program order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Attrs returns a snapshot of the span's attributes in set order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Find returns the first descendant (depth-first, creation order) with
// the given name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	for _, c := range s.Children() {
		if c.Name() == name {
			return c
		}
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

func (s *Span) addAttr(a Attr) {
	s.mu.Lock()
	s.attrs = append(s.attrs, a)
	s.mu.Unlock()
}

// SetInt attaches an integer attribute (counts: instances selected,
// pseudo labels kept, ...).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.addAttr(Attr{Key: key, Kind: KindInt, Int: v})
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.addAttr(Attr{Key: key, Kind: KindFloat, Float: v})
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.addAttr(Attr{Key: key, Kind: KindStr, Str: v})
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.addAttr(Attr{Key: key, Kind: KindBool, Bool: v})
}
