package obs

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func ct(id int, durMS float64, isErr bool) CapturedTrace {
	return CapturedTrace{
		TraceID: fmt.Sprintf("trace-%04d", id),
		Route:   "match",
		Status:  map[bool]int{false: 200, true: 500}[isErr],
		DurMS:   durMS,
		Error:   isErr,
	}
}

// TestCaptureKeepsRecordingForever is the regression test for the
// first-N SpanSample bias: after far more traces than the capacity,
// the newest error and the slowest request are still retained.
func TestCaptureKeepsRecordingForever(t *testing.T) {
	c := NewTraceCapture(8)
	// A long steady stream of fast successes…
	for i := 0; i < 1000; i++ {
		c.Record(ct(i, 1.0, false))
	}
	// …then, long after any first-N budget is spent, an error and a
	// latency outlier.
	c.Record(ct(9001, 2.0, true))
	c.Record(ct(9002, 500.0, false))

	snap := c.Snapshot()
	if snap.Recorded != 1002 {
		t.Fatalf("recorded %d, want 1002", snap.Recorded)
	}
	if len(snap.Recent) != 8 || len(snap.Slowest) != 8 {
		t.Fatalf("retention sizes: recent %d slowest %d, want 8", len(snap.Recent), len(snap.Slowest))
	}
	if snap.Recent[len(snap.Recent)-1].TraceID != "trace-9002" {
		t.Fatalf("newest recent = %s", snap.Recent[len(snap.Recent)-1].TraceID)
	}
	if len(snap.Errors) != 1 || snap.Errors[0].TraceID != "trace-9001" {
		t.Fatalf("errors: %+v", snap.Errors)
	}
	if snap.Slowest[0].TraceID != "trace-9002" || snap.Slowest[0].DurMS != 500.0 {
		t.Fatalf("slowest[0]: %+v", snap.Slowest[0])
	}
}

func TestCaptureSlowestIsTopNDescending(t *testing.T) {
	c := NewTraceCapture(4)
	for i, d := range []float64{3, 9, 1, 7, 5, 8, 2, 6, 4} {
		c.Record(ct(i, d, false))
	}
	snap := c.Snapshot()
	want := []float64{9, 8, 7, 6}
	if len(snap.Slowest) != len(want) {
		t.Fatalf("slowest: %+v", snap.Slowest)
	}
	for i, w := range want {
		if snap.Slowest[i].DurMS != w {
			t.Fatalf("slowest[%d] = %v, want %v (%+v)", i, snap.Slowest[i].DurMS, w, snap.Slowest)
		}
	}
}

func TestCaptureRecentRingOrder(t *testing.T) {
	c := NewTraceCapture(3)
	for i := 0; i < 5; i++ {
		c.Record(ct(i, float64(i), false))
	}
	snap := c.Snapshot()
	if len(snap.Recent) != 3 {
		t.Fatalf("recent: %+v", snap.Recent)
	}
	for i, want := range []string{"trace-0002", "trace-0003", "trace-0004"} {
		if snap.Recent[i].TraceID != want {
			t.Fatalf("recent[%d] = %s, want %s", i, snap.Recent[i].TraceID, want)
		}
	}
}

func TestCaptureErrorRingSeparateFromRecent(t *testing.T) {
	c := NewTraceCapture(2)
	c.Record(ct(1, 1, true))
	for i := 10; i < 20; i++ {
		c.Record(ct(i, 1, false))
	}
	snap := c.Snapshot()
	if len(snap.Errors) != 1 || snap.Errors[0].TraceID != "trace-0001" {
		t.Fatalf("old error evicted by successes: %+v", snap.Errors)
	}
}

func TestCaptureNilSafe(t *testing.T) {
	var c *TraceCapture
	c.Record(ct(1, 1, true))
	if snap := c.Snapshot(); snap.Recorded != 0 || snap.Recent != nil {
		t.Fatalf("nil snapshot: %+v", snap)
	}
	if c.Recorded() != 0 {
		t.Fatal("nil recorded")
	}
}

// TestCaptureSpawnsNoGoroutines pins the passive design: recording and
// snapshotting under heavy concurrent use must not leave a single
// goroutine behind (no flusher, no timer, no janitor).
func TestCaptureSpawnsNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	c := NewTraceCapture(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Record(ct(g*1000+i, float64(i%50), i%7 == 0))
				if i%100 == 0 {
					c.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("capture leaked goroutines: %d before, %d after", before, after)
	}
	if got := c.Recorded(); got != 4000 {
		t.Fatalf("recorded %d, want 4000", got)
	}
}
