package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("fresh trace context invalid: %+v", tc)
	}
	h := tc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("traceparent %q malformed", h)
	}
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if got != tc {
		t.Fatalf("round trip: got %+v, want %+v", got, tc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	for _, h := range []string{
		"",
		"00-abc",
		"00-0000000000000000000000000000000-0000000000000001-01",  // short trace id
		"00-00000000000000000000000000000000-0000000000000001-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01", // bad hex
		"00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // bad separator
	} {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
}

func TestParseTraceparentForeignVersionAndFlags(t *testing.T) {
	// Unknown version and flags parse as long as the layout holds.
	tc, err := ParseTraceparent("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	if err != nil {
		t.Fatalf("foreign version rejected: %v", err)
	}
	if tc.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace id %s", tc.TraceID)
	}
	if tc.SpanID.String() != "b7ad6b7169203331" {
		t.Fatalf("span id %s", tc.SpanID)
	}
}

func TestTraceContextChildKeepsTraceID(t *testing.T) {
	tc := NewTraceContext()
	child := tc.ChildOf()
	if child.TraceID != tc.TraceID {
		t.Fatal("child changed the trace id")
	}
	if child.SpanID == tc.SpanID {
		t.Fatal("child kept the parent span id")
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id.IsZero() || seen[id] {
			t.Fatalf("duplicate or zero trace id at %d: %s", i, id)
		}
		seen[id] = true
	}
}

func TestContextCarry(t *testing.T) {
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Fatal("empty context carries a trace")
	}
	tc := NewTraceContext()
	ctx := ContextWithTrace(context.Background(), tc)
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("context carry: got %+v ok=%v", got, ok)
	}
}
