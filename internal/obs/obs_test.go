package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := New("run")
	if got := tr.Root().Name(); got != "run" {
		t.Fatalf("root name = %q, want %q", got, "run")
	}
	exp := tr.Root().Child("experiment:table2")
	cellA := exp.Child("cell:A")
	cellA.Child("sel").End()
	cellA.Child("gen").End()
	cellA.Child("tcl").End()
	cellA.End()
	cellB := exp.Child("cell:B")
	cellB.End()
	exp.End()

	kids := tr.Root().Children()
	if len(kids) != 1 || kids[0].Name() != "experiment:table2" {
		t.Fatalf("root children = %v", names(kids))
	}
	cells := exp.Children()
	want := []string{"cell:A", "cell:B"}
	if got := names(cells); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("cell order = %v, want %v (serial creation order must be preserved)", got, want)
	}
	phases := names(cells[0].Children())
	if fmt.Sprint(phases) != fmt.Sprint([]string{"sel", "gen", "tcl"}) {
		t.Fatalf("phase order = %v", phases)
	}
	if tr.Root().Find("tcl") == nil {
		t.Fatalf("Find could not locate the nested tcl span")
	}
	if tr.Root().Find("nope") != nil {
		t.Fatalf("Find invented a span")
	}
}

func names(spans []*Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name()
	}
	return out
}

func TestSpanAttrsTyped(t *testing.T) {
	sp := New("run").Root().Child("sel")
	sp.SetInt("selected", 42)
	sp.SetFloat("frac", 0.5)
	sp.SetStr("task", "a->b")
	sp.SetBool("fallback", true)
	attrs := sp.Attrs()
	if len(attrs) != 4 {
		t.Fatalf("got %d attrs, want 4", len(attrs))
	}
	wantVals := []any{int64(42), 0.5, "a->b", true}
	for i, a := range attrs {
		if a.Value() != wantVals[i] {
			t.Errorf("attr %q = %v, want %v", a.Key, a.Value(), wantVals[i])
		}
	}
}

func TestSpanEndIdempotentAndDuration(t *testing.T) {
	sp := New("run").Root().Child("s")
	time.Sleep(time.Millisecond)
	if sp.Duration() <= 0 {
		t.Fatalf("running span should report elapsed time")
	}
	sp.End()
	d := sp.Duration()
	if d <= 0 {
		t.Fatalf("ended span duration = %v", d)
	}
	time.Sleep(time.Millisecond)
	if got := sp.Duration(); got != d {
		t.Fatalf("End is not idempotent: %v then %v", d, got)
	}
}

// TestSpanConcurrentChildren exercises the span mutex under the race
// detector: parallel grid cells attach children and attributes to one
// shared parent.
func TestSpanConcurrentChildren(t *testing.T) {
	parent := New("run").Root()
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := parent.Child(fmt.Sprintf("cell:%d", i))
			c.SetInt("i", int64(i))
			parent.SetInt("touch", int64(i))
			c.End()
		}(i)
	}
	wg.Wait()
	if got := len(parent.Children()); got != n {
		t.Fatalf("got %d children, want %d", got, n)
	}
	if got := len(parent.Attrs()); got != n {
		t.Fatalf("got %d attrs, want %d", got, n)
	}
}

// TestNilTracerNoOp pins the disabled fast path: every call on a nil
// tracer and everything it hands out must be a safe no-op.
func TestNilTracerNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Root() != nil {
		t.Fatalf("nil tracer root should be nil")
	}
	if tr.Metrics() != nil {
		t.Fatalf("nil tracer registry should be nil")
	}
	sp := tr.Root().Child("x").Child("y")
	if sp != nil {
		t.Fatalf("nil span child should be nil")
	}
	sp.SetInt("a", 1)
	sp.SetFloat("b", 2)
	sp.SetStr("c", "d")
	sp.SetBool("e", true)
	sp.End()
	if sp.Duration() != 0 || sp.Name() != "" || sp.Children() != nil || sp.Attrs() != nil || sp.Find("x") != nil {
		t.Fatalf("nil span accessors should return zero values")
	}

	reg := tr.Metrics()
	reg.Counter("c").Add(1)
	reg.Gauge("g").Set(1)
	reg.Histogram("h", SecondsBuckets()).Observe(1)
	if reg.Counter("c").Value() != 0 || reg.Gauge("g").Value() != 0 {
		t.Fatalf("nil instruments should read as zero")
	}
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot should be empty, got %+v", snap)
	}
}

// TestNilTracerAllocates asserts the zero-allocation contract of the
// disabled path: instrumented code running under a nil tracer must not
// allocate at all.
func TestNilTracerAllocates(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	var c *Counter
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Root().Child("cell")
		sp.SetInt("selected", 7)
		sp.SetBool("fallback", false)
		inner := sp.Child("sel")
		inner.End()
		sp.End()
		reg.Counter("hits").Add(1)
		c.Add(1)
		h.Observe(0.5)
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer path allocated %.1f times per run, want 0", allocs)
	}
}
