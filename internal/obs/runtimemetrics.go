package obs

// Runtime health gauges, sampled on demand (each /metrics or /healthz
// scrape) rather than by a background goroutine — the process spends
// nothing between scrapes and the server keeps its no-hidden-goroutine
// property.

import (
	"runtime"
	"sync"
)

// RuntimeSampler refreshes process runtime gauges in a registry:
//
//	runtime.goroutines        current goroutine count
//	runtime.heap_alloc_bytes  live heap bytes
//	runtime.heap_sys_bytes    heap bytes obtained from the OS
//	runtime.gc_runs_total     completed GC cycles (gauge: a sampled
//	                          monotonic counter owned by the runtime)
//	runtime.gc_pause_seconds  histogram of individual GC pauses
//	                          observed since the previous sample
//
// All methods are no-ops on a nil receiver.
type RuntimeSampler struct {
	gGoroutines *Gauge
	gHeapAlloc  *Gauge
	gHeapSys    *Gauge
	gGCRuns     *Gauge
	hGCPause    *Histogram

	mu        sync.Mutex
	lastNumGC uint32
}

// NewRuntimeSampler registers the runtime instruments in reg and
// returns a sampler (nil when reg is nil).
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	if reg == nil {
		return nil
	}
	return &RuntimeSampler{
		gGoroutines: reg.Gauge("runtime.goroutines"),
		gHeapAlloc:  reg.Gauge("runtime.heap_alloc_bytes"),
		gHeapSys:    reg.Gauge("runtime.heap_sys_bytes"),
		gGCRuns:     reg.Gauge("runtime.gc_runs_total"),
		hGCPause:    reg.Histogram("runtime.gc_pause_seconds", ExpBuckets(1e-6, 4, 12)),
	}
}

// Sample reads the current runtime state into the gauges and observes
// any GC pauses completed since the previous Sample.
func (s *RuntimeSampler) Sample() RuntimeStats {
	if s == nil {
		return RuntimeStats{}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	n := runtime.NumGoroutine()

	s.gGoroutines.Set(float64(n))
	s.gHeapAlloc.Set(float64(ms.HeapAlloc))
	s.gHeapSys.Set(float64(ms.HeapSys))
	s.gGCRuns.Set(float64(ms.NumGC))

	s.mu.Lock()
	last := s.lastNumGC
	s.lastNumGC = ms.NumGC
	s.mu.Unlock()
	// PauseNs is a circular buffer of the last 256 pause durations;
	// observe only cycles completed since the previous sample, capped
	// at the buffer's reach.
	if fresh := ms.NumGC - last; fresh > 0 {
		if fresh > uint32(len(ms.PauseNs)) {
			fresh = uint32(len(ms.PauseNs))
		}
		for i := uint32(0); i < fresh; i++ {
			pause := ms.PauseNs[(ms.NumGC-1-i)%uint32(len(ms.PauseNs))]
			s.hGCPause.Observe(float64(pause) / 1e9)
		}
	}
	return RuntimeStats{
		Goroutines:     n,
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		GCRuns:         ms.NumGC,
	}
}

// RuntimeStats is the point-in-time sample Sample returns, for
// embedding in health responses.
type RuntimeStats struct {
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	GCRuns         uint32 `json:"gc_runs"`
}
