package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// logLines unmarshals each JSONL line, failing on malformed output.
func logLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestLoggerEmitsStructuredLines(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelDebug)
	tc := NewTraceContext()
	ctx := ContextWithTrace(context.Background(), tc)

	lg.Info(ctx, "serve.request",
		FStr("route", "resolve"),
		FInt("status", 200),
		FFloat("dur_ms", 1.25),
		FBool("matched", true))
	lg.Debug(context.Background(), "plain")

	lines := logLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	got := lines[0]
	if got["level"] != "info" || got["event"] != "serve.request" {
		t.Fatalf("header fields: %v", got)
	}
	if got["trace_id"] != tc.TraceID.String() || got["span_id"] != tc.SpanID.String() {
		t.Fatalf("trace correlation: %v, want trace %s span %s", got, tc.TraceID, tc.SpanID)
	}
	if got["route"] != "resolve" || got["status"] != float64(200) ||
		got["dur_ms"] != 1.25 || got["matched"] != true {
		t.Fatalf("typed fields: %v", got)
	}
	if _, hasTS := got["ts"]; !hasTS {
		t.Fatalf("no timestamp: %v", got)
	}
	if _, hasTrace := lines[1]["trace_id"]; hasTrace {
		t.Fatalf("traceless context produced a trace id: %v", lines[1])
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelWarn)
	ctx := context.Background()
	lg.Debug(ctx, "d")
	lg.Info(ctx, "i")
	lg.Warn(ctx, "w")
	lg.Error(ctx, "e")
	lines := logLines(t, &buf)
	if len(lines) != 2 || lines[0]["event"] != "w" || lines[1]["event"] != "e" {
		t.Fatalf("level filter: %v", lines)
	}
	if lg.Enabled(LevelInfo) || !lg.Enabled(LevelError) {
		t.Fatal("Enabled disagrees with the filter")
	}
	var nilLogger *Logger
	if nilLogger.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
}

func TestLoggerEscapesHostileStrings(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelDebug)
	hostile := "quote\" backslash\\ newline\n tab\t ctrl\x01 unicodeé bad\xff"
	lg.Info(context.Background(), hostile, FStr("k\"ey", hostile))
	lines := logLines(t, &buf)
	got := lines[0]["event"].(string)
	// Invalid UTF-8 is replaced, everything else round-trips.
	want := strings.Replace(hostile, "\xff", "�", 1)
	if got != want {
		t.Fatalf("event round trip: %q, want %q", got, want)
	}
	if lines[0]["k\"ey"] != want {
		t.Fatalf("field round trip: %v", lines[0])
	}
}

func TestLoggerNonFiniteFloats(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelDebug)
	nan := 0.0
	lg.Info(context.Background(), "f", FFloat("nan", nan/nan), FFloat("ok", 0.5))
	lines := logLines(t, &buf) // would fail on invalid JSON
	if lines[0]["nan"] != "NaN" || lines[0]["ok"] != 0.5 {
		t.Fatalf("non-finite rendering: %v", lines[0])
	}
}

func TestLoggerConcurrentLinesNeverInterleave(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelDebug)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				lg.Info(context.Background(), "evt", FInt("g", int64(g)), FInt("i", int64(i)))
			}
		}(g)
	}
	wg.Wait()
	if lines := logLines(t, &buf); len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
}

func TestLoggerInstrument(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelInfo)
	reg := NewRegistry()
	lg.Instrument(reg)
	lg.Info(context.Background(), "a")
	lg.Debug(context.Background(), "filtered")
	snap := reg.Snapshot()
	if snap.Counters["log.events_total"] != 1 {
		t.Fatalf("events_total = %d", snap.Counters["log.events_total"])
	}
	if snap.Counters["log.bytes_total"] != int64(buf.Len()) {
		t.Fatalf("bytes_total = %d, wrote %d", snap.Counters["log.bytes_total"], buf.Len())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

// TestNilLoggerAllocates pins the disabled-logger contract outside the
// benchmark: the nil fast path must not allocate, including the
// variadic field slice at the call site.
func TestNilLoggerAllocates(t *testing.T) {
	var lg *Logger
	ctx := ContextWithTrace(context.Background(), NewTraceContext())
	if allocs := testing.AllocsPerRun(200, func() {
		lg.Info(ctx, "event", FStr("k", "v"), FInt("n", 1), FFloat("f", 0.5))
		lg.Error(ctx, "err", FBool("b", true))
	}); allocs != 0 {
		t.Fatalf("nil logger allocates %.1f/op, want 0", allocs)
	}
	// A level-filtered call on an enabled logger is equally free.
	real := NewLogger(&bytes.Buffer{}, LevelError)
	if allocs := testing.AllocsPerRun(200, func() {
		real.Debug(ctx, "event", FStr("k", "v"), FInt("n", 1))
	}); allocs != 0 {
		t.Fatalf("filtered level allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkLoggerOverhead is the CI acceptance gate mirroring
// BenchmarkTracerOverhead: the "disabled" case must report 0 allocs/op
// and re-checks the contract with AllocsPerRun.
func BenchmarkLoggerOverhead(b *testing.B) {
	ctx := ContextWithTrace(context.Background(), NewTraceContext())
	run := func(b *testing.B, lg *Logger) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lg.Info(ctx, "serve.request",
				FStr("route", "resolve"),
				FInt("status", 200),
				FFloat("dur_ms", 0.42))
		}
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, nil)
		if b.N > 100 {
			var lg *Logger
			if allocs := testing.AllocsPerRun(100, func() {
				lg.Info(ctx, "serve.request", FStr("route", "resolve"), FInt("status", 200))
			}); allocs != 0 {
				b.Fatalf("nil-logger path allocates %.1f/op, want 0", allocs)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		var sink bytes.Buffer
		lg := NewLogger(&sink, LevelDebug)
		run(b, lg)
	})
}
