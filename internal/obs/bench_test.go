package obs

import "testing"

// BenchmarkTracerOverhead measures the cost of the instrumentation
// call pattern the pipeline uses per stage (one child span, two typed
// attributes, one counter add, one histogram observation). The
// "disabled" case is the acceptance gate: a nil tracer must add zero
// allocations so leaving instrumentation compiled into hot paths is
// free when observability is off.
func BenchmarkTracerOverhead(b *testing.B) {
	run := func(b *testing.B, tr *Tracer) {
		b.ReportAllocs()
		reg := tr.Metrics()
		c := reg.Counter("bench.hits_total")
		h := reg.Histogram("bench.seconds", SecondsBuckets())
		root := tr.Root()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := root.Child("stage")
			sp.SetInt("rows", int64(i))
			sp.SetBool("fallback", false)
			c.Add(1)
			h.Observe(0.001)
			sp.End()
		}
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, nil)
		if b.N > 100 {
			// Re-check the contract precisely: the nil path must not
			// allocate at all, independent of benchmark noise.
			var tr *Tracer
			if allocs := testing.AllocsPerRun(100, func() {
				sp := tr.Root().Child("stage")
				sp.SetInt("rows", 1)
				sp.End()
				tr.Metrics().Counter("c").Add(1)
			}); allocs != 0 {
				b.Fatalf("nil-tracer path allocates %.1f/op, want 0", allocs)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		run(b, New("bench"))
	})
}
