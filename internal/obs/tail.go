package obs

// Tail-based trace capture. The original serve instrumentation
// recorded spans for the FIRST SpanSample requests and then went
// blind — exactly the wrong bias for production debugging, where the
// interesting traces (errors, latency outliers) arrive after warm-up.
// TraceCapture replaces that with three fixed-size retention classes
// that keep recording forever:
//
//   - recent:  a ring of the last N completed requests (overwrites),
//   - errors:  a ring of the last N failed requests (overwrites),
//   - slowest: the N slowest requests seen so far (min-replacement).
//
// Memory is bounded by 3N captured traces regardless of uptime, and
// the capture is purely passive: no background goroutine, no timers —
// Record is called inline when a request completes and Snapshot copies
// under the mutex.

import (
	"sort"
	"sync"
	"time"
)

// CapturedTrace is one retained request trace.
type CapturedTrace struct {
	TraceID string    `json:"trace_id"`
	Route   string    `json:"route"`
	Status  int       `json:"status"`
	Start   time.Time `json:"start"`
	DurMS   float64   `json:"dur_ms"`
	Error   bool      `json:"error"`
	// Span is the request's serialised span tree when one was recorded
	// (requests can be captured without spans — metadata still retained).
	Span *SpanNode `json:"span,omitempty"`
}

// TraceCapture retains completed request traces with tail-based
// policies. All methods are no-ops on a nil receiver.
type TraceCapture struct {
	mu       sync.Mutex
	recorded int64

	recent     []CapturedTrace // ring, capacity n
	recentNext int

	errors     []CapturedTrace // ring, capacity n
	errorsNext int

	slow    []CapturedTrace // up to n, unordered; slowMin indexes the fastest
	slowMin int
	n       int
}

// NewTraceCapture returns a capture retaining up to n traces per class
// (n <= 0 resolves to 64).
func NewTraceCapture(n int) *TraceCapture {
	if n <= 0 {
		n = 64
	}
	return &TraceCapture{n: n}
}

// Record retains one completed request trace under every class whose
// policy it meets. Safe for concurrent use.
func (c *TraceCapture) Record(t CapturedTrace) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recorded++

	c.recent, c.recentNext = ringPut(c.recent, c.recentNext, c.n, t)
	if t.Error {
		c.errors, c.errorsNext = ringPut(c.errors, c.errorsNext, c.n, t)
	}
	if len(c.slow) < c.n {
		c.slow = append(c.slow, t)
		if t.DurMS < c.slow[c.slowMin].DurMS {
			c.slowMin = len(c.slow) - 1
		}
	} else if t.DurMS > c.slow[c.slowMin].DurMS {
		c.slow[c.slowMin] = t
		c.slowMin = 0
		for i, s := range c.slow {
			if s.DurMS < c.slow[c.slowMin].DurMS {
				c.slowMin = i
			}
		}
	}
}

func ringPut(ring []CapturedTrace, next, n int, t CapturedTrace) ([]CapturedTrace, int) {
	if len(ring) < n {
		return append(ring, t), 0
	}
	// Full: next points at the oldest slot.
	ring[next] = t
	return ring, (next + 1) % n
}

// Recorded returns how many traces have been offered (0 for nil).
func (c *TraceCapture) Recorded() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recorded
}

// CaptureSnapshot is a point-in-time copy of the retained traces: the
// GET /debug/traces document body.
type CaptureSnapshot struct {
	// Recorded counts every trace ever offered, retained or not.
	Recorded int64 `json:"recorded"`
	// Recent holds the last completed requests, oldest first.
	Recent []CapturedTrace `json:"recent"`
	// Errors holds the last failed requests, oldest first.
	Errors []CapturedTrace `json:"errors,omitempty"`
	// Slowest holds the slowest requests seen, slowest first.
	Slowest []CapturedTrace `json:"slowest,omitempty"`
}

// Snapshot copies the retained traces (empty snapshot for nil).
func (c *TraceCapture) Snapshot() CaptureSnapshot {
	if c == nil {
		return CaptureSnapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := CaptureSnapshot{
		Recorded: c.recorded,
		Recent:   ringOrdered(c.recent, c.recentNext),
		Errors:   ringOrdered(c.errors, c.errorsNext),
		Slowest:  append([]CapturedTrace(nil), c.slow...),
	}
	sort.SliceStable(snap.Slowest, func(i, j int) bool {
		return snap.Slowest[i].DurMS > snap.Slowest[j].DurMS
	})
	return snap
}

// ringOrdered copies a ring oldest-first. next is the oldest slot once
// the ring is full; a partially filled ring is already in order.
func ringOrdered(ring []CapturedTrace, next int) []CapturedTrace {
	if len(ring) == 0 {
		return nil
	}
	out := make([]CapturedTrace, 0, len(ring))
	out = append(out, ring[next:]...)
	out = append(out, ring[:next]...)
	return out
}

// SpanTree serialises a span and its descendants for capture (nil for
// a nil span). It reuses the run-report node form so /debug/traces and
// -metrics-out documents render spans identically.
func SpanTree(s *Span) *SpanNode {
	if s == nil {
		return nil
	}
	return spanNode(s)
}
