package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition line.
type promSample struct {
	name  string
	le    string // bucket label, "" otherwise
	value float64
}

var (
	promNameRE   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]+)"\})? (\S+)$`)
)

// parseProm is a strict reader of the text exposition format subset we
// emit: TYPE comments followed by samples, names valid, every sample
// parseable — the shape a Prometheus scraper requires.
func parseProm(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			if !promNameRE.MatchString(parts[2]) {
				t.Fatalf("invalid metric name %q", parts[2])
			}
			if parts[3] != "counter" && parts[3] != "gauge" && parts[3] != "histogram" {
				t.Fatalf("unknown type in %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promSampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples = append(samples, promSample{name: m[1], le: m[3], value: v})
	}
	return types, samples
}

func TestWritePrometheusScrapeParseable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.requests_total").Add(12)
	reg.Counter("stream.ingested_total").Add(3)
	reg.Gauge("serve.in_flight").Set(2)
	reg.Gauge("runtime.heap_alloc_bytes").Set(1.5e6)
	h := reg.Histogram("serve.request_seconds", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.05, 0.5, 0.7} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	types, samples := parseProm(t, buf.String())

	if types["transer_serve_requests_total"] != "counter" {
		t.Fatalf("types: %v", types)
	}
	if types["transer_serve_in_flight"] != "gauge" {
		t.Fatalf("types: %v", types)
	}
	if types["transer_serve_request_seconds"] != "histogram" {
		t.Fatalf("types: %v", types)
	}

	byName := map[string][]promSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}
	if v := byName["transer_serve_requests_total"][0].value; v != 12 {
		t.Fatalf("counter value %v", v)
	}

	// Histogram: buckets cumulative and monotone, closed by +Inf equal
	// to _count, _sum matches.
	buckets := byName["transer_serve_request_seconds_bucket"]
	if len(buckets) != 4 {
		t.Fatalf("buckets: %+v", buckets)
	}
	var prev float64 = -1
	for _, b := range buckets {
		if b.value < prev {
			t.Fatalf("bucket counts not cumulative: %+v", buckets)
		}
		prev = b.value
	}
	if last := buckets[len(buckets)-1]; last.le != "+Inf" || last.value != 5 {
		t.Fatalf("+Inf bucket: %+v", last)
	}
	wantCum := []float64{1, 2, 3, 5} // 0.0005 | 0.002 | 0.05 | 0.5,0.7
	for i, b := range buckets {
		if b.value != wantCum[i] {
			t.Fatalf("bucket[%d] = %v, want %v", i, b.value, wantCum[i])
		}
	}
	if c := byName["transer_serve_request_seconds_count"][0].value; c != 5 {
		t.Fatalf("_count %v", c)
	}
	sum := byName["transer_serve_request_seconds_sum"][0].value
	if diff := sum - (0.0005 + 0.002 + 0.05 + 0.5 + 0.7); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("_sum %v", sum)
	}
}

func TestWritePrometheusDeterministicOrder(t *testing.T) {
	mk := func() string {
		reg := NewRegistry()
		for i := 0; i < 20; i++ {
			reg.Counter(fmt.Sprintf("c.%02d_total", i)).Add(int64(i))
			reg.Gauge(fmt.Sprintf("g.%02d", i)).Set(float64(i))
		}
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatal("two identical registries rendered differently")
	}
	// Names within each section are sorted.
	_, samples := parseProm(t, a)
	var counters []string
	for _, s := range samples {
		if strings.HasSuffix(s.name, "_total") {
			counters = append(counters, s.name)
		}
	}
	if !sort.StringsAreSorted(counters) {
		t.Fatalf("counters unsorted: %v", counters)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"serve.request_seconds": "transer_serve_request_seconds",
		"stream.wal_seq":        "transer_stream_wal_seq",
		"weird-name@2":          "transer_weird_name_2",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
		if !promNameRE.MatchString(PromName(in)) {
			t.Errorf("PromName(%q) invalid", in)
		}
	}
}
