package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// StartProfiles starts the profiles selected by the three path flags
// (-cpuprofile, -memprofile, -exectrace; empty paths are skipped) and
// returns a stop function that finalises them: it stops the CPU
// profile and execution trace and writes the heap profile after a GC.
// On error every partially started profile is stopped before
// returning.
func StartProfiles(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var stops []func() error
	fail := func(err error) (func() error, error) {
		for i := len(stops) - 1; i >= 0; i-- {
			_ = stops[i]()
		}
		return nil, err
	}

	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return fail(fmt.Errorf("obs: cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("obs: cpuprofile: %w", err))
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}

	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return fail(fmt.Errorf("obs: exectrace: %w", err))
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("obs: exectrace: %w", err))
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}

	if memPath != "" {
		stops = append(stops, func() error {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: memprofile: %w", err)
			}
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("obs: memprofile: %w", err)
			}
			return f.Close()
		})
	}

	return func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
