package stream

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"transer/internal/dataset"
)

// FuzzIngestRecord feeds arbitrary bytes to the ingest payload parser:
// it must either reject the input with an error or return
// schema-width records that survive an encode → decode round trip and
// ingest cleanly into a live store. Panics, wrong-width records and
// silently dropped values are the bugs this hunts (schema mismatch,
// missing/extra fields and NaN-ish strings are all in the seed
// corpus).
func FuzzIngestRecord(f *testing.F) {
	f.Add([]byte(`{"records":[{"id":"a","attrs":{"name":"ada lovelace","city":"london"}}]}`))
	f.Add([]byte(`{"records":[{"attrs":{"name":"no id"}},{"attrs":{"city":"no name"}}]}`))
	f.Add([]byte(`{"records":[{"attrs":{"name":"NaN","city":"-Inf"}}]}`))
	f.Add([]byte(`{"records":[{"attrs":{"bogus":"unknown attribute"}}]}`))
	f.Add([]byte(`{"records":[{"attrs":{"name":"x"},"extra":"field"}]}`))
	f.Add([]byte(`{"records":[{"attrs":{"name":42}}]}`))
	f.Add([]byte(`{"records":[]}`))
	f.Add([]byte(`{"records":[{"attrs":{}}]} trailing`))
	f.Add([]byte("{\"records\":[{\"id\":\" \",\"attrs\":{\"name\":\"\xc3\x28\"}}]}"))
	f.Add([]byte(`not json`))

	schema := dataset.Schema{Attributes: []dataset.Attribute{
		{Name: "name", Type: dataset.AttrName},
		{Name: "city", Type: dataset.AttrText},
	}}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeRecords(data, schema)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if len(recs) == 0 {
			t.Fatal("DecodeRecords returned no records without an error")
		}
		for i, r := range recs {
			if len(r.Values) != len(schema.Attributes) {
				t.Fatalf("record %d has %d values, schema %d", i, len(r.Values), len(schema.Attributes))
			}
		}
		var buf bytes.Buffer
		if werr := EncodeRecords(&buf, recs, schema); werr != nil {
			t.Fatalf("EncodeRecords on parsed records: %v", werr)
		}
		again, rerr := DecodeRecords(buf.Bytes(), schema)
		if rerr != nil {
			t.Fatalf("re-decoding our own encoding: %v\n%s", rerr, buf.Bytes())
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			for j := range recs[i].Values {
				if recs[i].Values[j] != again[i].Values[j] {
					t.Fatalf("round trip changed record %d value %d: %q -> %q",
						i, j, recs[i].Values[j], again[i].Values[j])
				}
			}
		}
		// Parsed records must ingest cleanly. Colliding record ids
		// (wire duplicates, or a wire id shadowing an assigned r<seq>)
		// are the one legitimate rejection.
		st, serr := NewStore(Config{Schema: schema, Threshold: 0.9})
		if serr != nil {
			t.Fatal(serr)
		}
		for _, r := range recs {
			if _, ierr := st.Ingest(context.Background(), r); ierr != nil &&
				!strings.Contains(ierr.Error(), "already stored") {
				t.Fatalf("parsed record rejected by ingest: %v (%+v)", ierr, r)
			}
		}
	})
}
