package stream

import (
	"strings"
	"testing"
)

func TestDecodeRecords(t *testing.T) {
	sch := twoAttrSchema()

	recs, err := DecodeRecords([]byte(`{"records":[{"id":"a","attrs":{"name":"ada","city":"london"}},{"attrs":{"name":"bob"}}]}`), sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].ID != "a" || recs[0].Values[0] != "ada" || recs[0].Values[1] != "london" {
		t.Fatalf("record 0: %+v", recs[0])
	}
	if recs[1].ID != "" || recs[1].Values[0] != "bob" || recs[1].Values[1] != "" {
		t.Fatalf("record 1 (missing attrs default empty): %+v", recs[1])
	}

	cases := map[string]string{
		"unknown attribute": `{"records":[{"attrs":{"nope":"x"}}]}`,
		"unknown field":     `{"records":[{"attrs":{},"extra":1}]}`,
		"trailing data":     `{"records":[{"attrs":{}}]} {"more":true}`,
		"no records":        `{"records":[]}`,
		"wrong type":        `{"records":[{"attrs":{"name":42}}]}`,
		"not json":          `records: name`,
	}
	for name, payload := range cases {
		if _, err := DecodeRecords([]byte(payload), sch); err == nil {
			t.Errorf("%s accepted: %s", name, payload)
		}
	}
}

func TestDecodeRecord(t *testing.T) {
	sch := twoAttrSchema()
	r, err := DecodeRecord([]byte(`{"id":"p","attrs":{"city":"paris"}}`), sch)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "p" || r.Values[1] != "paris" || r.Values[0] != "" {
		t.Fatalf("record: %+v", r)
	}
	if _, err := DecodeRecord([]byte(`{"attrs":{"bad":"x"}}`), sch); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if _, err := DecodeRecord([]byte(`{"attrs":{}} junk`), sch); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sch := twoAttrSchema()
	in, err := DecodeRecords([]byte(`{"records":[{"id":"a","attrs":{"name":"ada","city":"london"}},{"id":"b","attrs":{"name":"nan","city":"NaN"}}]}`), sch)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := EncodeRecords(&buf, in, sch); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRecords([]byte(buf.String()), sch)
	if err != nil {
		t.Fatalf("re-decoding our own encoding: %v\n%s", err, buf.String())
	}
	if len(out) != len(in) {
		t.Fatalf("round trip changed count: %d -> %d", len(in), len(out))
	}
	for i := range in {
		if in[i].ID != out[i].ID {
			t.Fatalf("record %d id changed: %q -> %q", i, in[i].ID, out[i].ID)
		}
		for j := range in[i].Values {
			if in[i].Values[j] != out[i].Values[j] {
				t.Fatalf("record %d value %d changed: %q -> %q", i, j, in[i].Values[j], out[i].Values[j])
			}
		}
	}
}
