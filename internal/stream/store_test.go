package stream

import (
	"context"
	"strings"
	"testing"

	"transer/internal/blocking"
	"transer/internal/dataset"
	"transer/internal/obs"
	"transer/internal/testkit"
)

func twoAttrSchema() dataset.Schema {
	return dataset.Schema{Attributes: []dataset.Attribute{
		{Name: "name", Type: dataset.AttrName},
		{Name: "city", Type: dataset.AttrText},
	}}
}

func mustStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	st, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func ingest(t *testing.T, st *Store, id string, values ...string) IngestResult {
	t.Helper()
	res, err := st.Ingest(context.Background(), dataset.Record{ID: id, Values: values})
	if err != nil {
		t.Fatalf("ingest %s: %v", id, err)
	}
	return res
}

// TestIngestResolveBasic walks the happy path: duplicates land in one
// entity, an unrelated record gets its own, and a read-only resolve
// finds the right entity without growing the store.
func TestIngestResolveBasic(t *testing.T) {
	reg := obs.NewRegistry()
	st := mustStore(t, Config{Schema: twoAttrSchema(), Threshold: 0.8, Metrics: reg})

	r1 := ingest(t, st, "a1", "ada lovelace", "london")
	if !r1.Created || r1.EntityID != 1 {
		t.Fatalf("first record: %+v", r1)
	}
	r2 := ingest(t, st, "a2", "ada lovelace", "london")
	if r2.Created || r2.EntityID != 1 {
		t.Fatalf("duplicate record should join entity 1: %+v", r2)
	}
	r3 := ingest(t, st, "b1", "grace hopper", "new york")
	if !r3.Created || r3.EntityID != 2 {
		t.Fatalf("unrelated record should open entity 2: %+v", r3)
	}

	probe := dataset.Record{Values: []string{"ada lovelace", "london"}}
	res, err := st.Resolve(context.Background(), probe)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched || res.EntityID != 1 {
		t.Fatalf("resolve: %+v", res)
	}
	if st.Len() != 3 {
		t.Fatalf("resolve must not admit records, len=%d", st.Len())
	}
	stats := st.Stats()
	if stats.Records != 3 || stats.Entities != 2 || stats.Resolves != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if got := reg.Counter("stream.ingested_total").Value(); got != 3 {
		t.Fatalf("stream.ingested_total = %d", got)
	}
	if got := reg.Counter("stream.resolved_total").Value(); got != 1 {
		t.Fatalf("stream.resolved_total = %d", got)
	}
}

// TestMergeJournal forces a bridge record that unites two existing
// entities and checks the merge is journaled with the smaller (older)
// entity surviving.
func TestMergeJournal(t *testing.T) {
	sch := dataset.Schema{Attributes: []dataset.Attribute{{Name: "t", Type: dataset.AttrText}}}
	st := mustStore(t, Config{
		Schema:    sch,
		Threshold: 0.45,
		LSH:       blocking.MinHashConfig{Q: 2},
	})
	r1 := ingest(t, st, "x", "alpha beta gamma delta")
	r2 := ingest(t, st, "y", "epsilon zeta eta theta iota")
	if r1.EntityID == r2.EntityID {
		t.Fatalf("setup: records should start in different entities (%d, %d)", r1.EntityID, r2.EntityID)
	}
	// The bridge shares enough of both strings to match each side.
	r3 := ingest(t, st, "z", "alpha beta gamma delta epsilon zeta eta theta iota")
	if len(r3.Matches) < 2 {
		t.Skipf("bridge matched %d records; similarity landscape changed", len(r3.Matches))
	}
	if len(r3.Merges) != 1 {
		t.Fatalf("expected exactly one journaled merge, got %+v", r3.Merges)
	}
	m := r3.Merges[0]
	if m.From != r2.EntityID || m.Into != r1.EntityID {
		t.Fatalf("merge should retire the younger entity: %+v", m)
	}
	for _, id := range []string{"x", "y", "z"} {
		e, ok := st.EntityOf(id)
		if !ok || e != r1.EntityID {
			t.Fatalf("record %s: entity %d, want %d", id, e, r1.EntityID)
		}
	}
	if j := st.Journal(); len(j) != 1 || j[0] != m {
		t.Fatalf("journal: %+v", j)
	}
	if stats := st.Stats(); stats.Entities != 1 || stats.Merges != 1 {
		t.Fatalf("stats after merge: %+v", stats)
	}
}

// TestEntityIDStability is the ID contract: across a whole generated
// stream, a stored record's entity ID never changes except through a
// merge chain journaled by the very ingest that changed it.
func TestEntityIDStability(t *testing.T) {
	testkit.Run(t, "stream/entity-id-stability", 8, func(pt *testkit.T) {
		a, b := testkit.DatabasePair(pt.Rng, pt.Size)
		records := append(append([]dataset.Record(nil), a.Records...), b.Records...)
		if len(records) == 0 {
			return
		}
		st, err := NewStore(Config{Schema: a.Schema, Threshold: 0.5, LSH: blocking.MinHashConfig{Seed: pt.Seed}})
		if err != nil {
			pt.Fatalf("NewStore: %v", err)
		}
		known := make(map[string]uint64)
		for pos, r := range pt.Rng.Perm(len(records)) {
			rec := records[r]
			rec.ID = "" // let the store assign r<seq>, avoiding cross-db collisions
			res, ierr := st.Ingest(context.Background(), rec)
			if ierr != nil {
				pt.Fatalf("ingest %d: %v", pos, ierr)
			}
			for id, old := range known {
				now, ok := st.EntityOf(id)
				if !ok {
					pt.Fatalf("record %s vanished", id)
				}
				// Chase old through this ingest's journaled merges; the
				// result must be the record's current ID.
				want := old
				for _, m := range res.Merges {
					if want == m.From {
						want = m.Into
					}
				}
				if now != want {
					pt.Fatalf("record %s entity changed %d -> %d without a journaled merge chain (merges %+v)",
						id, old, now, res.Merges)
				}
				known[id] = now
			}
			known[res.RecordID] = res.EntityID
		}
	})
}

// TestIngestErrors covers the validation surface: wrong width,
// duplicate ids, canceled contexts — all leave the store untouched.
func TestIngestErrors(t *testing.T) {
	st := mustStore(t, Config{Schema: twoAttrSchema(), Threshold: 0.8})
	ingest(t, st, "a1", "ada lovelace", "london")
	fpBefore, err := st.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := st.Ingest(context.Background(), dataset.Record{ID: "w", Values: []string{"just one"}}); err == nil ||
		!strings.Contains(err.Error(), "values") {
		t.Fatalf("width mismatch not rejected: %v", err)
	}
	if _, err := st.Ingest(context.Background(), dataset.Record{ID: "a1", Values: []string{"x", "y"}}); err == nil ||
		!strings.Contains(err.Error(), "already stored") {
		t.Fatalf("duplicate id not rejected: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.Ingest(ctx, dataset.Record{ID: "c1", Values: []string{"ada lovelace", "london"}}); err == nil {
		t.Fatal("canceled context not rejected")
	}

	if st.Len() != 1 {
		t.Fatalf("failed ingests mutated the store: len=%d", st.Len())
	}
	fpAfter, err := st.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpAfter != fpBefore {
		t.Fatal("failed ingests changed the fingerprint")
	}
}

// TestConfigValidation rejects unusable configurations.
func TestConfigValidation(t *testing.T) {
	if _, err := NewStore(Config{}); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := NewStore(Config{Schema: twoAttrSchema(), Threshold: 1.5}); err == nil {
		t.Fatal("threshold > 1 accepted")
	}
}

// TestFingerprintOrderSensitive: the fingerprint is a state identity,
// so different ingest orders (different seqs and entity numbering)
// must not collide, while identical sequences must.
func TestFingerprintOrderSensitive(t *testing.T) {
	mk := func(order []string) string {
		st := mustStore(t, Config{Schema: twoAttrSchema(), Threshold: 0.8})
		for _, id := range order {
			ingest(t, st, id, "name "+id, "city "+id)
		}
		fp, err := st.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return fp
	}
	if mk([]string{"a", "b"}) == mk([]string{"b", "a"}) {
		t.Fatal("different ingest orders fingerprint identically")
	}
	if mk([]string{"a", "b"}) != mk([]string{"a", "b"}) {
		t.Fatal("identical ingest sequences fingerprint differently")
	}
}
