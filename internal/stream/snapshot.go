package stream

// Snapshot/restore. A snapshot stores the logical state — records in
// insertion order, each record's entity assignment, the merge journal
// and the entity ID allocator — plus the state fingerprint. Restore
// rebuilds the blocking index deterministically from the records (no
// scorer needed: entity assignments are data, not re-derived) and
// verifies the rebuilt fingerprint against the stored one, so a
// successful load IS the bitwise-identity proof. Recover composes
// snapshot load with WAL replay and torn-tail truncation into the
// restart path.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"transer/internal/dataset"
)

// SnapshotSchemaVersion identifies the snapshot document format.
const SnapshotSchemaVersion = "transer.stream.snapshot/v1"

type snapAttr struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type snapRecord struct {
	ID     string   `json:"id"`
	Values []string `json:"values"`
	Entity uint64   `json:"entity"`
}

type snapshotDoc struct {
	Schema      string       `json:"schema"`
	Attributes  []snapAttr   `json:"attributes"`
	NextEntity  uint64       `json:"next_entity"`
	Records     []snapRecord `json:"records"`
	Journal     []Merge      `json:"journal"`
	Fingerprint string       `json:"fingerprint"`
}

// WriteSnapshot writes the store's state document to w.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fp, err := s.fingerprintLocked()
	if err != nil {
		return err
	}
	doc := snapshotDoc{
		Schema:      SnapshotSchemaVersion,
		NextEntity:  s.nextID,
		Journal:     s.journal,
		Fingerprint: fp,
	}
	for _, a := range s.schema.Attributes {
		doc.Attributes = append(doc.Attributes, snapAttr{Name: a.Name, Type: a.Type.String()})
	}
	for seq, r := range s.records {
		doc.Records = append(doc.Records, snapRecord{
			ID:     r.ID,
			Values: r.Values,
			Entity: s.entity[s.findRO(seq)],
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	// New snapshot boundary: lag restarts from zero. snapLen is atomic
	// because WriteSnapshot only holds the read lock.
	s.snapLen.Store(int64(len(s.records)))
	s.gSnapLag.Set(0)
	return nil
}

// SnapshotFile writes a snapshot atomically (temp file + rename), so a
// crash mid-snapshot never leaves a partial document at path.
func (s *Store) SnapshotFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := s.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSnapshot restores a store from a snapshot document. The config
// must carry the same schema (and, for future ingests to behave
// identically, the same scheme/scorer/threshold/LSH) as the writing
// store. The rebuilt state's fingerprint is verified against the
// snapshot's stored fingerprint; a mismatch is an error, never a
// silently different store.
func LoadSnapshot(cfg Config, r io.Reader) (*Store, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc snapshotDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("stream: bad snapshot: %w", err)
	}
	if doc.Schema != SnapshotSchemaVersion {
		return nil, fmt.Errorf("stream: snapshot schema %q, want %q", doc.Schema, SnapshotSchemaVersion)
	}
	if len(doc.Attributes) != len(cfg.Schema.Attributes) {
		return nil, fmt.Errorf("stream: snapshot has %d attributes, config schema %d",
			len(doc.Attributes), len(cfg.Schema.Attributes))
	}
	for i, a := range cfg.Schema.Attributes {
		if doc.Attributes[i].Name != a.Name || doc.Attributes[i].Type != a.Type.String() {
			return nil, fmt.Errorf("stream: snapshot attribute %d is %s:%s, config schema has %s:%s",
				i, doc.Attributes[i].Name, doc.Attributes[i].Type, a.Name, a.Type.String())
		}
	}
	st, err := NewStore(cfg)
	if err != nil {
		return nil, err
	}
	for seq, sr := range doc.Records {
		if sr.ID == "" {
			return nil, fmt.Errorf("stream: snapshot record %d has no id", seq)
		}
		if _, dup := st.byID[sr.ID]; dup {
			return nil, fmt.Errorf("stream: snapshot repeats record id %q", sr.ID)
		}
		rec := dataset.Record{ID: sr.ID, Values: sr.Values}
		if len(rec.Values) != len(cfg.Schema.Attributes) {
			return nil, fmt.Errorf("stream: snapshot record %q has %d values, schema %d",
				sr.ID, len(rec.Values), len(cfg.Schema.Attributes))
		}
		st.index.Add(st.index.Signature(rec))
		st.records = append(st.records, rec)
		st.byID[sr.ID] = seq
		st.parent = append(st.parent, seq)
		st.entity = append(st.entity, 0)
	}
	// Rebuild the union-find from the stored entity assignments, then
	// pin each root's entity ID.
	first := make(map[uint64]int)
	for seq, sr := range doc.Records {
		if f, ok := first[sr.Entity]; ok {
			st.parent[st.find(seq)] = st.find(f)
		} else {
			first[sr.Entity] = seq
		}
	}
	for e, f := range first {
		st.entity[st.find(f)] = e
	}
	st.journal = append(st.journal, doc.Journal...)
	if doc.NextEntity > 0 {
		st.nextID = doc.NextEntity
	}
	fp, err := st.fingerprintLocked()
	if err != nil {
		return nil, err
	}
	if fp != doc.Fingerprint {
		return nil, fmt.Errorf("stream: snapshot fingerprint mismatch: rebuilt %s, stored %s", fp, doc.Fingerprint)
	}
	st.gRecords.Set(float64(len(st.records)))
	st.gEntities.Set(float64(st.entityCount()))
	st.snapLen.Store(int64(len(st.records)))
	st.gWALSeq.Set(float64(len(st.records)))
	st.gSnapLag.Set(0)
	return st, nil
}

// LoadSnapshotFile restores a store from a snapshot file.
func LoadSnapshotFile(cfg Config, path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSnapshot(cfg, f)
}

// Recover rebuilds a store from an optional snapshot plus an optional
// WAL, truncates any torn WAL tail left by a crash mid-append, and
// returns the store with the WAL attached and open for appending.
// Either path may be absent (a missing snapshot means an empty
// starting store; a missing WAL file is created). Records already
// covered by the snapshot are skipped during replay; the remainder
// re-run the full deterministic ingest path, so the recovered store
// fingerprints identically to the store that wrote the log.
func Recover(cfg Config, snapshotPath, walPath string) (*Store, error) {
	var st *Store
	var err error
	if snapshotPath != "" {
		st, err = LoadSnapshotFile(cfg, snapshotPath)
		if errors.Is(err, fs.ErrNotExist) {
			st, err = NewStore(cfg)
		}
	} else {
		st, err = NewStore(cfg)
	}
	if err != nil {
		return nil, err
	}
	if walPath == "" {
		return st, nil
	}
	if _, serr := os.Stat(walPath); serr == nil {
		st.mu.Lock()
		goodOffset, truncated, rerr := replayWAL(walPath, func(e walEntry) error {
			if e.Seq < len(st.records) {
				return nil // covered by the snapshot
			}
			if e.Seq != len(st.records) {
				return fmt.Errorf("stream: WAL entry seq %d, store has %d records", e.Seq, len(st.records))
			}
			_, ierr := st.ingestLocked(context.Background(), dataset.Record{ID: e.ID, Values: e.Values}, false)
			return ierr
		})
		st.mu.Unlock()
		if rerr != nil {
			return nil, rerr
		}
		if truncated {
			if terr := os.Truncate(walPath, goodOffset); terr != nil {
				return nil, terr
			}
		}
	} else if !errors.Is(serr, fs.ErrNotExist) {
		return nil, serr
	}
	w, err := OpenWAL(walPath)
	if err != nil {
		return nil, err
	}
	st.AttachWAL(w)
	return st, nil
}
