package stream

// Write-ahead log: one JSON line per admitted record, appended before
// the store mutates. Replay re-runs the full deterministic ingest
// path, so a store rebuilt from its WAL is byte-identical (same
// fingerprint) to the store that wrote it. A torn final line — the
// crash-mid-append case — is detected and truncated away on recovery;
// everything before it replays.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// WALSchemaVersion identifies the WAL line format.
const WALSchemaVersion = "transer.stream.wal/v1"

// walEntry is one WAL line: the admitted record and its expected
// insertion sequence (a replay cross-check).
type walEntry struct {
	Seq    int      `json:"seq"`
	ID     string   `json:"id"`
	Values []string `json:"values"`
}

// WAL is an append-only record log. Append is not safe for concurrent
// use on its own; the owning store serialises appends under its write
// lock.
type WAL struct {
	f    *os.File
	path string
}

// OpenWAL opens (creating if absent) a WAL for appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &WAL{f: f, path: path}, nil
}

// Append writes one record line and flushes it to the OS.
func (w *WAL) Append(seq int, id string, values []string) error {
	line, err := json.Marshal(walEntry{Seq: seq, ID: id, Values: values})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	_, err = w.f.Write(line)
	return err
}

// Sync fsyncs the log file.
func (w *WAL) Sync() error { return w.f.Sync() }

// Close closes the log file.
func (w *WAL) Close() error { return w.f.Close() }

// AttachWAL makes the store append every subsequently admitted record
// to w before mutating. Attach after recovery, so replayed records are
// not re-logged.
func (s *Store) AttachWAL(w *WAL) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal = w
}

// CloseWAL syncs, closes and detaches the store's WAL; a no-op when
// none is attached. Call on shutdown after the last ingest drained.
func (s *Store) CloseWAL() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	w := s.wal
	s.wal = nil
	if err := w.Sync(); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// replayWAL reads entries from path and applies each complete line via
// apply. It returns the byte offset just past the last complete entry
// and whether a torn (truncated) final line was found. A complete line
// that fails to parse is corruption and an error; a final line without
// its newline is the expected crash artifact and is reported, not
// failed.
func replayWAL(path string, apply func(walEntry) error) (goodOffset int64, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return goodOffset, len(line) > 0, nil
			}
			return goodOffset, false, rerr
		}
		var e walEntry
		if jerr := json.Unmarshal(line, &e); jerr != nil {
			return goodOffset, false, fmt.Errorf("stream: corrupt WAL line at offset %d: %w", goodOffset, jerr)
		}
		if aerr := apply(e); aerr != nil {
			return goodOffset, false, aerr
		}
		goodOffset += int64(len(line))
	}
}
