package stream

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"transer/internal/blocking"
	"transer/internal/dataset"
	"transer/internal/testkit"
)

// buildStream generates a deterministic record stream for persistence
// tests.
func buildStream(seed int64, n int) (dataset.Schema, []dataset.Record) {
	rng := rand.New(rand.NewSource(seed))
	a, b := testkit.DatabasePair(rng, n)
	records := append(append([]dataset.Record(nil), a.Records...), b.Records...)
	for i := range records {
		records[i].ID = ""
		records[i].EntityID = ""
	}
	return a.Schema, records
}

func persistCfg(schema dataset.Schema) Config {
	return Config{Schema: schema, Threshold: 0.5, LSH: blocking.MinHashConfig{Seed: 7}}
}

func fingerprint(t *testing.T, st *Store) string {
	t.Helper()
	fp, err := st.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestWALReplayIdentical: a store rebuilt purely from its WAL
// fingerprints identically to the store that wrote it.
func TestWALReplayIdentical(t *testing.T) {
	schema, records := buildStream(31, 24)
	walPath := filepath.Join(t.TempDir(), "store.wal")

	w, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(persistCfg(schema))
	if err != nil {
		t.Fatal(err)
	}
	st.AttachWAL(w)
	for _, r := range records {
		if _, err := st.Ingest(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := Recover(persistCfg(schema), "", walPath)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, restored), fingerprint(t, st); got != want {
		t.Fatalf("WAL replay fingerprint %s, want %s", got, want)
	}
	if restored.Len() != len(records) {
		t.Fatalf("restored %d records, want %d", restored.Len(), len(records))
	}
}

// TestSnapshotRoundTrip: snapshot → load is bitwise state identity
// (the load itself verifies the fingerprint; this asserts it again and
// checks the restored store keeps evolving identically).
func TestSnapshotRoundTrip(t *testing.T) {
	schema, records := buildStream(32, 20)
	st, err := NewStore(persistCfg(schema))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records[:len(records)-1] {
		if _, err := st.Ingest(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSnapshot(persistCfg(schema), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, restored), fingerprint(t, st); got != want {
		t.Fatalf("snapshot load fingerprint %s, want %s", got, want)
	}

	last := records[len(records)-1]
	if _, err := st.Ingest(context.Background(), last); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Ingest(context.Background(), last); err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, restored), fingerprint(t, st); got != want {
		t.Fatal("stores diverge after post-restore ingest")
	}
}

// TestSnapshotTamperRejected: a snapshot whose content was altered
// fails the fingerprint check on load.
func TestSnapshotTamperRejected(t *testing.T) {
	schema, records := buildStream(33, 12)
	st, err := NewStore(persistCfg(schema))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if _, err := st.Ingest(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	first := st.records[0].Values[0]
	tampered := strings.Replace(doc, first, first+"x", 1)
	if tampered == doc {
		t.Skip("could not tamper snapshot text")
	}
	if _, err := LoadSnapshot(persistCfg(schema), strings.NewReader(tampered)); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("tampered snapshot accepted: %v", err)
	}
}

// TestRecoverSnapshotPlusWAL: recovery from a mid-stream snapshot plus
// the full WAL replays only the tail and lands on the full store's
// fingerprint.
func TestRecoverSnapshotPlusWAL(t *testing.T) {
	schema, records := buildStream(34, 24)
	dir := t.TempDir()
	walPath := filepath.Join(dir, "store.wal")
	snapPath := filepath.Join(dir, "store.snapshot")

	w, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(persistCfg(schema))
	if err != nil {
		t.Fatal(err)
	}
	st.AttachWAL(w)
	cut := len(records) / 2
	for i, r := range records {
		if _, err := st.Ingest(context.Background(), r); err != nil {
			t.Fatal(err)
		}
		if i == cut {
			if err := st.SnapshotFile(snapPath); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := Recover(persistCfg(schema), snapPath, walPath)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, restored), fingerprint(t, st); got != want {
		t.Fatalf("snapshot+WAL recovery fingerprint %s, want %s", got, want)
	}
}

// TestRecoverTruncatesTornTail is the crash-mid-journal case: the WAL
// ends in a torn half-line; recovery must replay the complete prefix,
// truncate the torn bytes, and leave the log appendable.
func TestRecoverTruncatesTornTail(t *testing.T) {
	schema, records := buildStream(35, 20)
	walPath := filepath.Join(t.TempDir(), "store.wal")

	w, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewStore(persistCfg(schema))
	if err != nil {
		t.Fatal(err)
	}
	ref.AttachWAL(w)
	for _, r := range records[:len(records)-1] {
		if _, err := ref.Ingest(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	intactSize := int64(len(mustRead(t, walPath)))

	// Crash artifact: a half-written record line without its newline.
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(`{"seq":99,"id":"torn","val`)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := Recover(persistCfg(schema), "", walPath)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, restored), fingerprint(t, ref); got != want {
		t.Fatalf("torn-tail recovery fingerprint %s, want %s", got, want)
	}
	if got := int64(len(mustRead(t, walPath))); got != intactSize {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", got, intactSize)
	}

	// The recovered store's attached WAL keeps working: ingest the
	// final record, recover again, compare against a reference fed the
	// same stream.
	last := records[len(records)-1]
	if _, err := restored.Ingest(context.Background(), last); err != nil {
		t.Fatal(err)
	}
	ref.AttachWAL(nil) // ref's log handle is closed; mirror in memory only
	if _, err := ref.Ingest(context.Background(), last); err != nil {
		t.Fatal(err)
	}
	again, err := Recover(persistCfg(schema), "", walPath)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, again), fingerprint(t, ref); got != want {
		t.Fatalf("post-recovery appends diverge: %s want %s", got, want)
	}
}

// TestRecoverCorruptLineFails: corruption in the middle of the log (a
// complete but unparsable line) is an error, not silent data loss.
func TestRecoverCorruptLineFails(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "store.wal")
	content := `{"seq":0,"id":"a","values":["x","y"]}` + "\n" +
		"not json at all\n" +
		`{"seq":1,"id":"b","values":["z","w"]}` + "\n"
	if err := os.WriteFile(walPath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(persistCfg(twoAttrSchema()), "", walPath); err == nil ||
		!strings.Contains(err.Error(), "corrupt WAL") {
		t.Fatalf("corrupt line not rejected: %v", err)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
