package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"transer/internal/blocking"
	"transer/internal/dataset"
	"transer/internal/obs"
)

// parseEvents decodes the JSONL event buffer, keeping only events with
// the given name.
func parseEvents(t *testing.T, buf *bytes.Buffer, event string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("log line not JSON: %q: %v", line, err)
		}
		if ev["event"] == event {
			out = append(out, ev)
		}
	}
	return out
}

// TestIngestDecisionEventsLogged checks every live ingest emits one
// structured decision event keyed by WAL sequence and the request's
// trace ID, with the decision fields the provenance contract names.
func TestIngestDecisionEventsLogged(t *testing.T) {
	var buf bytes.Buffer
	st := mustStore(t, Config{
		Schema:    twoAttrSchema(),
		Threshold: 0.8,
		Logger:    obs.NewLogger(&buf, obs.LevelDebug),
	})
	tc := obs.NewTraceContext()
	ctx := obs.ContextWithTrace(context.Background(), tc)

	recs := []dataset.Record{
		{ID: "a1", Values: []string{"ada lovelace", "london"}},
		{ID: "a2", Values: []string{"ada lovelace", "london"}},
		{ID: "b1", Values: []string{"grace hopper", "new york"}},
	}
	for _, r := range recs {
		if _, err := st.Ingest(ctx, r); err != nil {
			t.Fatal(err)
		}
	}

	events := parseEvents(t, &buf, "stream.ingest")
	if len(events) != len(recs) {
		t.Fatalf("%d ingest events for %d records:\n%s", len(events), len(recs), buf.String())
	}
	for i, ev := range events {
		if got := ev["seq"].(float64); int(got) != i {
			t.Errorf("event %d: seq %v", i, got)
		}
		if ev["record_id"] != recs[i].ID {
			t.Errorf("event %d: record_id %v, want %s", i, ev["record_id"], recs[i].ID)
		}
		if ev["trace_id"] != tc.TraceID.String() {
			t.Errorf("event %d: trace_id %v, want %s", i, ev["trace_id"], tc.TraceID)
		}
		for _, key := range []string{"entity_id", "created", "candidates", "matches", "merges"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %d missing %q: %v", i, key, ev)
			}
		}
	}
	// The duplicate joined entity 1, so its event says created=false.
	if events[1]["created"] != false || events[1]["entity_id"].(float64) != 1 {
		t.Errorf("duplicate's decision event: %v", events[1])
	}

	// Resolve probes log at debug with the decision outcome.
	probe := dataset.Record{Values: []string{"ada lovelace", "london"}}
	if _, err := st.Resolve(ctx, probe); err != nil {
		t.Fatal(err)
	}
	resolves := parseEvents(t, &buf, "stream.resolve")
	if len(resolves) != 1 || resolves[0]["matched"] != true {
		t.Fatalf("resolve events: %v", resolves)
	}
}

// TestWALReplayDoesNotRelog checks recovery replays the WAL silently:
// the decisions were logged when they happened; re-applying them is
// not a new decision.
func TestWALReplayDoesNotRelog(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "stream.wal")

	var liveBuf bytes.Buffer
	cfg := Config{Schema: twoAttrSchema(), Threshold: 0.8}
	liveCfg := cfg
	liveCfg.Logger = obs.NewLogger(&liveBuf, obs.LevelDebug)
	st := mustStore(t, liveCfg)
	w, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	st.AttachWAL(w)
	ingest(t, st, "a1", "ada lovelace", "london")
	ingest(t, st, "a2", "ada lovelace", "london")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(parseEvents(t, &liveBuf, "stream.ingest")); n != 2 {
		t.Fatalf("live store logged %d ingest events, want 2", n)
	}
	liveFP, err := st.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	var recBuf bytes.Buffer
	recCfg := cfg
	recCfg.Logger = obs.NewLogger(&recBuf, obs.LevelDebug)
	rec, err := Recover(recCfg, "", walPath)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 2 {
		t.Fatalf("recovered %d records, want 2", rec.Len())
	}
	if n := len(parseEvents(t, &recBuf, "stream.ingest")); n != 0 {
		t.Fatalf("WAL replay re-logged %d ingest decisions:\n%s", n, recBuf.String())
	}
	recFP, err := rec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if recFP != liveFP {
		t.Fatalf("recovered fingerprint %s, live %s", recFP, liveFP)
	}
}

// TestLagGauges checks the streaming lag gauges: wal_seq tracks
// records admitted, records_since_snapshot resets at each snapshot
// boundary, and PublishLag refreshes both on an idle store.
func TestLagGauges(t *testing.T) {
	reg := obs.NewRegistry()
	st := mustStore(t, Config{Schema: twoAttrSchema(), Threshold: 0.8, Metrics: reg})
	walSeq := reg.Gauge("stream.wal_seq")
	lag := reg.Gauge("stream.records_since_snapshot")

	ingest(t, st, "a1", "ada lovelace", "london")
	ingest(t, st, "b1", "grace hopper", "new york")
	if walSeq.Value() != 2 || lag.Value() != 2 {
		t.Fatalf("after 2 ingests: wal_seq=%v lag=%v", walSeq.Value(), lag.Value())
	}

	var snap bytes.Buffer
	if err := st.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if lag.Value() != 0 {
		t.Fatalf("lag after snapshot: %v", lag.Value())
	}

	ingest(t, st, "c1", "alan turing", "manchester")
	if walSeq.Value() != 3 || lag.Value() != 1 {
		t.Fatalf("after post-snapshot ingest: wal_seq=%v lag=%v", walSeq.Value(), lag.Value())
	}

	// A loaded snapshot starts at its own boundary: zero lag.
	reg2 := obs.NewRegistry()
	cfg2 := Config{Schema: twoAttrSchema(), Threshold: 0.8, Metrics: reg2}
	loaded, err := LoadSnapshot(cfg2, bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := reg2.Gauge("stream.wal_seq").Value(); got != 2 {
		t.Fatalf("loaded wal_seq: %v", got)
	}
	if got := reg2.Gauge("stream.records_since_snapshot").Value(); got != 0 {
		t.Fatalf("loaded lag: %v", got)
	}
	loaded.PublishLag()
	if got := reg2.Gauge("stream.records_since_snapshot").Value(); got != 0 {
		t.Fatalf("PublishLag moved an idle store's lag: %v", got)
	}
}

// TestResolveExplain checks the decision provenance of a resolve
// probe: every blocked candidate carries its comparison vector and
// score aligned with the feature names, and the merge path replays
// how the winning entity absorbed its records.
func TestResolveExplain(t *testing.T) {
	sch := dataset.Schema{Attributes: []dataset.Attribute{{Name: "t", Type: dataset.AttrText}}}
	st := mustStore(t, Config{
		Schema:    sch,
		Threshold: 0.45,
		LSH:       blocking.MinHashConfig{Q: 2},
	})
	r1 := ingest(t, st, "x", "alpha beta gamma delta")
	r2 := ingest(t, st, "y", "epsilon zeta eta theta iota")
	r3 := ingest(t, st, "z", "alpha beta gamma delta epsilon zeta eta theta iota")
	if len(r3.Merges) != 1 {
		t.Skipf("bridge journaled %d merges; similarity landscape changed", len(r3.Merges))
	}

	probe := dataset.Record{Values: []string{"alpha beta gamma delta"}}
	res, exp, err := st.ResolveExplain(context.Background(), probe)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched || res.EntityID != r1.EntityID {
		t.Fatalf("resolve: %+v", res)
	}
	if exp == nil {
		t.Fatal("no explanation")
	}
	if exp.Threshold != 0.45 {
		t.Fatalf("threshold %v", exp.Threshold)
	}
	if len(exp.Features) == 0 || len(exp.Features) != len(st.Features()) {
		t.Fatalf("features: %v", exp.Features)
	}
	if len(exp.Candidates) != res.Candidates {
		t.Fatalf("%d candidate scores for %d candidates", len(exp.Candidates), res.Candidates)
	}
	var matched int
	for _, c := range exp.Candidates {
		if len(c.Vector) != len(exp.Features) {
			t.Fatalf("candidate %d vector %v not aligned with features %v", c.Seq, c.Vector, exp.Features)
		}
		if c.Matched != (c.Score >= exp.Threshold) {
			t.Fatalf("candidate %d matched flag disagrees with its score: %+v", c.Seq, c)
		}
		if c.Matched {
			matched++
		}
		// Post-merge view: every candidate reports its current entity.
		if c.EntityID != r1.EntityID {
			t.Fatalf("candidate %d in entity %d, want %d after merge", c.Seq, c.EntityID, r1.EntityID)
		}
	}
	if matched != len(res.Matches) {
		t.Fatalf("%d matched candidates, resolve reported %d", matched, len(res.Matches))
	}
	// The merge path replays the journal entry that built the entity.
	if len(exp.MergePath) != 1 || exp.MergePath[0].From != r2.EntityID || exp.MergePath[0].Into != r1.EntityID {
		t.Fatalf("merge path: %+v (merge was %+v)", exp.MergePath, r3.Merges[0])
	}
	if got := st.MergePath(r1.EntityID); len(got) != 1 || got[0] != exp.MergePath[0] {
		t.Fatalf("MergePath: %+v", got)
	}
	// An unmatched probe explains its candidates but has no merge path.
	_, miss, err := st.ResolveExplain(context.Background(), dataset.Record{Values: []string{"unrelated words entirely"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(miss.MergePath) != 0 {
		t.Fatalf("unmatched probe has a merge path: %+v", miss.MergePath)
	}
}

// TestPartitionIdenticalWithLogging is the streamdiff determinism
// contract in miniature: the same ingest sequence produces the same
// store fingerprint — and so the same partition — with decision
// logging enabled or disabled.
func TestPartitionIdenticalWithLogging(t *testing.T) {
	var buf bytes.Buffer
	quiet := mustStore(t, Config{Schema: twoAttrSchema(), Threshold: 0.8})
	loud := mustStore(t, Config{
		Schema:    twoAttrSchema(),
		Threshold: 0.8,
		Logger:    obs.NewLogger(&buf, obs.LevelDebug),
	})
	for _, st := range []*Store{quiet, loud} {
		ingest(t, st, "a1", "ada lovelace", "london")
		ingest(t, st, "a2", "ada lovelace", "london")
		ingest(t, st, "b1", "grace hopper", "new york")
	}
	qfp, err := quiet.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	lfp, err := loud.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if qfp != lfp {
		t.Fatalf("logging changed the partition: quiet %s, loud %s", qfp, lfp)
	}
	if buf.Len() == 0 {
		t.Fatal("loud store logged nothing")
	}
}
