package stream

// The wire codec for streaming ingest/resolve payloads. It lives in
// the stream package (not internal/serve) so the serve handlers, the
// batch-replay binary and the fuzz target all parse records through
// the exact same code path.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"transer/internal/dataset"
)

// WireRecord is one record on the wire: an optional client-chosen id
// plus attribute name → value. Unknown attributes are an error
// (client typos must surface, not silently score a half-empty
// record); absent attributes are empty strings, handled by the
// comparison scheme's missing-value policy.
type WireRecord struct {
	ID    string            `json:"id,omitempty"`
	Attrs map[string]string `json:"attrs"`
}

// wireBatch is the ingest/replay request body: {"records": [...]}.
type wireBatch struct {
	Records []WireRecord `json:"records"`
}

// DecodeRecords parses an ingest payload against a schema. The
// decoder is strict: unknown JSON fields, wrongly-typed values,
// trailing data after the document, and attribute names outside the
// schema are all errors. Value strings pass through verbatim —
// "NaN"-ish text is data, not a number, and the comparators treat it
// as such.
func DecodeRecords(data []byte, schema dataset.Schema) ([]dataset.Record, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var body wireBatch
	if err := dec.Decode(&body); err != nil {
		return nil, fmt.Errorf("stream: bad ingest payload: %w", err)
	}
	if dec.More() {
		return nil, errors.New("stream: trailing data after ingest payload")
	}
	if len(body.Records) == 0 {
		return nil, errors.New("stream: ingest payload has no records")
	}
	return recordsFromWire(body.Records, schema)
}

// DecodeRecord parses a single-record payload ({"id": ..., "attrs":
// {...}}), the resolve request body.
func DecodeRecord(data []byte, schema dataset.Schema) (dataset.Record, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var wr WireRecord
	if err := dec.Decode(&wr); err != nil {
		return dataset.Record{}, fmt.Errorf("stream: bad record payload: %w", err)
	}
	if dec.More() {
		return dataset.Record{}, errors.New("stream: trailing data after record payload")
	}
	out, err := recordsFromWire([]WireRecord{wr}, schema)
	if err != nil {
		return dataset.Record{}, err
	}
	return out[0], nil
}

func recordsFromWire(wire []WireRecord, schema dataset.Schema) ([]dataset.Record, error) {
	attrIndex := make(map[string]int, len(schema.Attributes))
	for i, a := range schema.Attributes {
		attrIndex[a.Name] = i
	}
	out := make([]dataset.Record, 0, len(wire))
	for n, wr := range wire {
		r := dataset.Record{ID: wr.ID, Values: make([]string, len(schema.Attributes))}
		for k, v := range wr.Attrs {
			i, ok := attrIndex[k]
			if !ok {
				return nil, fmt.Errorf("stream: record %d: unknown attribute %q (schema has %v)", n, k, schema.Names())
			}
			r.Values[i] = v
		}
		out = append(out, r)
	}
	return out, nil
}

// EncodeRecords renders records back to the wire form, the inverse of
// DecodeRecords (empty values are kept so the round trip is exact for
// schema-width records).
func EncodeRecords(w io.Writer, records []dataset.Record, schema dataset.Schema) error {
	batch := wireBatch{Records: make([]WireRecord, 0, len(records))}
	for _, r := range records {
		wr := WireRecord{ID: r.ID, Attrs: make(map[string]string, len(schema.Attributes))}
		for i, a := range schema.Attributes {
			if i < len(r.Values) {
				wr.Attrs[a.Name] = r.Values[i]
			}
		}
		batch.Records = append(batch.Records, wr)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(batch)
}
