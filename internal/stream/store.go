// Package stream is the live entity store: records stream in one at a
// time, each is blocked against everything already stored through an
// incrementally maintained MinHash-LSH index (blocking.Index — no
// rebuilds), scored by the same query.ScoreMatrix path batch queries
// use, and folded into an incrementally maintained transitive-closure
// clustering (union-find, as cluster.DedupComponents computes in
// batch).
//
// # Determinism contract
//
// With the bucket cap disabled (the store's default), the candidate
// relation depends only on record content, every default comparator is
// symmetric in its arguments, and transitive closure is
// order-independent — so the final entity PARTITION (which records
// group together) is identical to the batch internal/query dedup
// self-join + cluster.DedupComponents result for EVERY ingest order.
// internal/testkit/streamdiff is the differential harness that proves
// this.
//
// Two surfaces legitimately depend on ingest order and are the
// documented extent of order sensitivity:
//
//   - Entity ID NUMBERING. IDs are allocated monotonically as records
//     arrive, so a different order numbers the same partition
//     differently. The partitions are isomorphic (related by a
//     bijection of entity IDs), never structurally different.
//   - With a POSITIVE bucket cap, streaming candidates are a superset
//     of batch candidates (buckets only grow, so a pair suppressed by
//     a full bucket at batch end may have been generated before the
//     bucket filled). More candidates can only add match edges, so the
//     streaming partition is then a coarsening of the batch partition:
//     every batch cluster is contained in exactly one streaming
//     cluster.
//
// # Entity ID stability
//
// A record's entity ID never changes except by a journaled merge: when
// a new record matches records from k ≥ 2 existing entities, the
// smallest (oldest) entity ID survives and the other k-1 are retired,
// each retirement recorded as a Merge{Seq, From, Into} journal entry.
// IDs are never reused.
package stream

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"

	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/dataset"
	"transer/internal/model"
	"transer/internal/obs"
	"transer/internal/query"
)

// Config parameterises a Store.
type Config struct {
	// Schema fixes the record shape; every ingested record must have
	// exactly len(Schema.Attributes) values.
	Schema dataset.Schema
	// Scheme is the pairwise comparison scheme (zero Comparators
	// derives compare.DefaultScheme from Schema).
	Scheme compare.Scheme
	// Scorer scores comparison vectors; nil means query.MeanScorer.
	Scorer query.Scorer
	// Threshold is the match decision boundary: candidate pairs with
	// score ≥ Threshold become match edges.
	Threshold float64
	// LSH configures the online blocking index. A zero MaxBucketSize
	// is resolved to -1 (uncapped) — the configuration under which
	// streaming clustering is exactly order-independent; set it
	// explicitly positive to trade that for bounded bucket fan-out.
	LSH blocking.MinHashConfig
	// Workers bounds scoring goroutines (0 = one per CPU). Results are
	// byte-identical for every value.
	Workers int
	// Metrics receives the stream.* counter family; nil disables.
	Metrics *obs.Registry
	// Logger, when non-nil, receives one structured decision event per
	// live ingest ("stream.ingest", keyed by WAL sequence and the trace
	// carried in ctx) and per resolve probe at debug level. WAL replay
	// does not re-log. Logging observes decisions already made — it
	// never feeds back into scoring or clustering.
	Logger *obs.Logger
}

// FromMatcher builds the streaming configuration that scores exactly
// like a loaded model artifact: its schema, its comparison scheme, its
// classifier and its decision threshold.
func FromMatcher(m *model.Matcher) Config {
	return Config{
		Schema:    m.Schema,
		Scheme:    m.Scheme,
		Scorer:    m,
		Threshold: m.Artifact.Threshold,
	}
}

// Merge is one journaled entity retirement: while ingesting record
// Seq, entity From was merged into the surviving (smaller, older)
// entity Into.
type Merge struct {
	Seq  int    `json:"seq"`
	From uint64 `json:"from"`
	Into uint64 `json:"into"`
}

// Match is one stored record whose score against the probe cleared the
// threshold.
type Match struct {
	// Seq is the stored record's insertion sequence.
	Seq int `json:"seq"`
	// RecordID is its record identifier.
	RecordID string `json:"record_id"`
	// EntityID is the entity it belonged to when the probe was scored
	// (for Ingest: before any merges this ingest caused).
	EntityID uint64 `json:"entity_id"`
	// Score is the match score in [0, 1].
	Score float64 `json:"score"`
}

// IngestResult reports what one Ingest did.
type IngestResult struct {
	// Seq is the record's insertion sequence in the store.
	Seq int `json:"seq"`
	// RecordID is the stored record id ("r<seq>" when the input had
	// none).
	RecordID string `json:"record_id"`
	// EntityID is the entity the record resolved into.
	EntityID uint64 `json:"entity_id"`
	// Created is true when no stored record matched and a fresh entity
	// was allocated.
	Created bool `json:"created"`
	// Candidates is the number of stored records the index proposed.
	Candidates int `json:"candidates"`
	// Matches are the candidates that cleared the threshold, in
	// ascending stored-sequence order.
	Matches []Match `json:"matches,omitempty"`
	// Merges are the journal entries this ingest appended (non-empty
	// only when the record bridged k ≥ 2 existing entities).
	Merges []Merge `json:"merges,omitempty"`
}

// ResolveResult reports a read-only resolution probe.
type ResolveResult struct {
	// Matched is true when at least one stored record cleared the
	// threshold.
	Matched bool `json:"matched"`
	// EntityID is the best-matching entity (highest best score, ties
	// to the smaller entity ID); 0 when Matched is false.
	EntityID uint64 `json:"entity_id,omitempty"`
	// Score is the best match score; 0 when Matched is false.
	Score float64 `json:"score,omitempty"`
	// Candidates is the number of stored records the index proposed.
	Candidates int `json:"candidates"`
	// Matches are all stored records clearing the threshold, in
	// ascending stored-sequence order.
	Matches []Match `json:"matches,omitempty"`
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	Records  int    `json:"records"`
	Entities int    `json:"entities"`
	Merges   int    `json:"merges"`
	Resolves int64  `json:"resolves"`
	NextID   uint64 `json:"next_entity_id"`
}

// Store is the live entity store. All methods are safe for concurrent
// use; Ingest is serialised, Resolve probes run under a read lock.
type Store struct {
	schema    dataset.Schema
	scheme    compare.Scheme
	scorer    query.Scorer
	threshold float64
	workers   int

	logger *obs.Logger

	mIngested   *obs.Counter
	mResolved   *obs.Counter
	mCandidates *obs.Counter
	mMatches    *obs.Counter
	mMerges     *obs.Counter
	gRecords    *obs.Gauge
	gEntities   *obs.Gauge
	gWALSeq     *obs.Gauge
	gSnapLag    *obs.Gauge

	// snapLen is the record count at the last snapshot boundary
	// (written/loaded), read without the store lock by lag gauges.
	snapLen atomic.Int64

	mu      sync.RWMutex
	index   *blocking.Index
	records []dataset.Record // normalized: ID + Values only
	byID    map[string]int
	parent  []int    // union-find over record seqs
	entity  []uint64 // entity id, authoritative at each root
	nextID  uint64
	journal []Merge
	wal     *WAL
	nProbes int64
}

// NewStore builds an empty store. The zero-value parts of cfg resolve
// to: compare.DefaultScheme(Schema), query.MeanScorer, an uncapped LSH
// index.
func NewStore(cfg Config) (*Store, error) {
	if len(cfg.Schema.Attributes) == 0 {
		return nil, fmt.Errorf("stream: config needs a schema with at least one attribute")
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("stream: threshold %v outside [0, 1]", cfg.Threshold)
	}
	scheme := cfg.Scheme
	if len(scheme.Comparators) == 0 {
		scheme = compare.DefaultScheme(cfg.Schema)
	}
	scorer := cfg.Scorer
	if scorer == nil {
		scorer = query.MeanScorer{}
	}
	lsh := cfg.LSH
	if lsh.MaxBucketSize == 0 {
		lsh.MaxBucketSize = -1
	}
	reg := cfg.Metrics
	return &Store{
		schema:      cfg.Schema,
		scheme:      scheme,
		scorer:      scorer,
		threshold:   cfg.Threshold,
		workers:     cfg.Workers,
		logger:      cfg.Logger,
		mIngested:   reg.Counter("stream.ingested_total"),
		mResolved:   reg.Counter("stream.resolved_total"),
		mCandidates: reg.Counter("stream.candidates_total"),
		mMatches:    reg.Counter("stream.match_edges_total"),
		mMerges:     reg.Counter("stream.merges_total"),
		gRecords:    reg.Gauge("stream.records"),
		gEntities:   reg.Gauge("stream.entities"),
		gWALSeq:     reg.Gauge("stream.wal_seq"),
		gSnapLag:    reg.Gauge("stream.records_since_snapshot"),
		index:       blocking.NewIndex(lsh),
		byID:        make(map[string]int),
		nextID:      1,
	}, nil
}

// Schema returns the store's record schema.
func (s *Store) Schema() dataset.Schema { return s.schema }

// Threshold returns the match decision boundary.
func (s *Store) Threshold() float64 { return s.threshold }

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// findRO walks to the union-find root without path compression, so it
// is safe under the read lock.
func (s *Store) findRO(x int) int {
	for s.parent[x] != x {
		x = s.parent[x]
	}
	return x
}

// find walks with path halving; callers must hold the write lock.
func (s *Store) find(x int) int {
	for s.parent[x] != x {
		s.parent[x] = s.parent[s.parent[x]]
		x = s.parent[x]
	}
	return x
}

// scoreEval is the full outcome of blocking and scoring one probe:
// the proposed candidate sequences with their comparison vectors and
// scores (parallel slices, ascending stored-seq order).
type scoreEval struct {
	cands  []int
	x      [][]float64
	scores []float64
}

// evaluate blocks and scores a probe record against the stored
// records. Callers hold at least the read lock.
func (s *Store) evaluate(ctx context.Context, r dataset.Record, sig blocking.Signature) (scoreEval, error) {
	cands := s.index.Candidates(sig)
	if len(cands) == 0 {
		return scoreEval{}, ctx.Err()
	}
	x := make([][]float64, len(cands))
	for i, c := range cands {
		// Stored record first, probe second — the batch self-join
		// orientation Pair(r_i, r_j), i < j. Default comparators are
		// symmetric, so orientation cannot change scores anyway.
		x[i] = s.scheme.Pair(s.records[c], r)
	}
	scores, err := query.ScoreMatrix(ctx, s.scorer, x, s.workers)
	if err != nil {
		return scoreEval{cands: cands}, err
	}
	return scoreEval{cands: cands, x: x, scores: scores}, nil
}

// matches extracts the candidates clearing the threshold from an
// evaluation. Callers hold at least the read lock.
func (s *Store) matches(ev scoreEval) []Match {
	var out []Match
	for i, c := range ev.cands {
		if ev.scores[i] >= s.threshold {
			out = append(out, Match{
				Seq:      c,
				RecordID: s.records[c].ID,
				EntityID: s.entity[s.findRO(c)],
				Score:    ev.scores[i],
			})
		}
	}
	return out
}

// score blocks and scores a probe record, returning the proposed
// candidate count and the matches clearing the threshold (ascending
// stored-seq order). Callers hold at least the read lock.
func (s *Store) score(ctx context.Context, r dataset.Record, sig blocking.Signature) (int, []Match, error) {
	ev, err := s.evaluate(ctx, r, sig)
	if err != nil {
		return len(ev.cands), nil, err
	}
	return len(ev.cands), s.matches(ev), nil
}

// Ingest admits one record into the store: block, score, then either
// allocate a fresh entity (no matches) or union the record into the
// matched entities, journaling every merge. The store is mutated only
// after scoring (and the WAL append, when attached) succeed, so a
// canceled context or failed write leaves the store unchanged.
func (s *Store) Ingest(ctx context.Context, r dataset.Record) (IngestResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingestLocked(ctx, r, true)
}

func (s *Store) ingestLocked(ctx context.Context, r dataset.Record, logWAL bool) (IngestResult, error) {
	if len(r.Values) != len(s.schema.Attributes) {
		return IngestResult{}, fmt.Errorf("stream: record has %d values, schema has %d attributes",
			len(r.Values), len(s.schema.Attributes))
	}
	seq := len(s.records)
	id := r.ID
	if id == "" {
		id = fmt.Sprintf("r%d", seq)
	}
	if prev, dup := s.byID[id]; dup {
		return IngestResult{}, fmt.Errorf("stream: record id %q already stored (seq %d)", id, prev)
	}
	stored := dataset.Record{ID: id, Values: append([]string(nil), r.Values...)}

	sig := s.index.Signature(stored)
	nCands, matches, err := s.score(ctx, stored, sig)
	if err != nil {
		return IngestResult{}, err
	}
	if logWAL && s.wal != nil {
		if err := s.wal.Append(seq, stored.ID, stored.Values); err != nil {
			return IngestResult{}, err
		}
	}

	// Point of no return: mutate.
	s.index.Add(sig)
	s.records = append(s.records, stored)
	s.byID[id] = seq
	s.parent = append(s.parent, seq)
	s.entity = append(s.entity, 0)

	res := IngestResult{Seq: seq, RecordID: id, Candidates: nCands, Matches: matches}
	if len(matches) == 0 {
		e := s.nextID
		s.nextID++
		s.entity[seq] = e
		res.EntityID = e
		res.Created = true
	} else {
		for _, m := range matches {
			rootNew, rootOld := s.find(seq), s.find(m.Seq)
			if rootNew == rootOld {
				continue
			}
			eNew, eOld := s.entity[rootNew], s.entity[rootOld]
			s.parent[rootNew] = rootOld
			s.entity[rootNew] = 0
			switch {
			case eNew == 0 || eNew == eOld:
				// Fresh record adopting its first entity.
			case eNew < eOld:
				s.entity[rootOld] = eNew
				res.Merges = append(res.Merges, Merge{Seq: seq, From: eOld, Into: eNew})
			default:
				res.Merges = append(res.Merges, Merge{Seq: seq, From: eNew, Into: eOld})
			}
		}
		s.journal = append(s.journal, res.Merges...)
		res.EntityID = s.entity[s.find(seq)]
	}

	s.mIngested.Add(1)
	s.mCandidates.Add(int64(nCands))
	s.mMatches.Add(int64(len(matches)))
	s.mMerges.Add(int64(len(res.Merges)))
	s.gRecords.Set(float64(len(s.records)))
	s.gEntities.Set(float64(s.entityCount()))
	// WAL sequence = records admitted (the next seq to be written);
	// snapshot lag = records admitted since the last snapshot boundary.
	s.gWALSeq.Set(float64(len(s.records)))
	s.gSnapLag.Set(float64(int64(len(s.records)) - s.snapLen.Load()))
	if logWAL {
		// Live ingest only — WAL replay must not re-log decisions it is
		// merely reapplying.
		s.logger.Info(ctx, "stream.ingest",
			obs.FInt("seq", int64(seq)),
			obs.FStr("record_id", id),
			obs.FInt("entity_id", int64(res.EntityID)),
			obs.FBool("created", res.Created),
			obs.FInt("candidates", int64(nCands)),
			obs.FInt("matches", int64(len(matches))),
			obs.FInt("merges", int64(len(res.Merges))))
	}
	return res, nil
}

// entityCount is the number of live entities: allocated minus retired.
func (s *Store) entityCount() int {
	return int(s.nextID-1) - len(s.journal)
}

// CandidateScore is one blocked candidate's full comparison breakdown:
// the per-comparator feature vector (aligned with Features()), the
// classifier score, and whether it cleared the threshold.
type CandidateScore struct {
	Seq      int       `json:"seq"`
	RecordID string    `json:"record_id"`
	EntityID uint64    `json:"entity_id"`
	Vector   []float64 `json:"vector"`
	Score    float64   `json:"score"`
	Matched  bool      `json:"matched"`
}

// Explanation is the decision provenance of one resolve probe: every
// blocked candidate with its comparison vector and score, the feature
// names the vectors are aligned with, the decision threshold, and the
// journaled merge history of the winning entity.
type Explanation struct {
	Threshold  float64          `json:"threshold"`
	Features   []string         `json:"features"`
	Candidates []CandidateScore `json:"candidates"`
	// MergePath is the journal subsequence whose retirements flowed
	// (transitively) into the resolved entity, in journal order — how
	// the winning entity came to span the records it spans. Empty when
	// the probe did not match or the entity never absorbed a merge.
	MergePath []Merge `json:"merge_path,omitempty"`
}

// Resolve probes a record against the store without admitting it:
// block, score, and report the best-matching entity. Safe to run
// concurrently with other resolves.
func (s *Store) Resolve(ctx context.Context, r dataset.Record) (ResolveResult, error) {
	res, _, err := s.resolve(ctx, r, false)
	return res, err
}

// ResolveExplain is Resolve plus full decision provenance.
func (s *Store) ResolveExplain(ctx context.Context, r dataset.Record) (ResolveResult, *Explanation, error) {
	return s.resolve(ctx, r, true)
}

func (s *Store) resolve(ctx context.Context, r dataset.Record, explain bool) (ResolveResult, *Explanation, error) {
	if len(r.Values) != len(s.schema.Attributes) {
		return ResolveResult{}, nil, fmt.Errorf("stream: record has %d values, schema has %d attributes",
			len(r.Values), len(s.schema.Attributes))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sig := s.index.Signature(r)
	ev, err := s.evaluate(ctx, r, sig)
	if err != nil {
		return ResolveResult{}, nil, err
	}
	matches := s.matches(ev)
	res := ResolveResult{Candidates: len(ev.cands), Matches: matches}
	for _, m := range matches {
		if !res.Matched || m.Score > res.Score || (m.Score == res.Score && m.EntityID < res.EntityID) {
			res.Matched = true
			res.EntityID = m.EntityID
			res.Score = m.Score
		}
	}
	var exp *Explanation
	if explain {
		exp = &Explanation{
			Threshold:  s.threshold,
			Features:   s.scheme.FeatureNames(),
			Candidates: make([]CandidateScore, len(ev.cands)),
			MergePath:  s.mergePathLocked(res.EntityID),
		}
		for i, c := range ev.cands {
			exp.Candidates[i] = CandidateScore{
				Seq:      c,
				RecordID: s.records[c].ID,
				EntityID: s.entity[s.findRO(c)],
				Vector:   ev.x[i],
				Score:    ev.scores[i],
				Matched:  ev.scores[i] >= s.threshold,
			}
		}
	}
	s.mResolved.Add(1)
	s.mCandidates.Add(int64(len(ev.cands)))
	s.nProbes++
	s.logger.Debug(ctx, "stream.resolve",
		obs.FStr("record_id", r.ID),
		obs.FBool("matched", res.Matched),
		obs.FInt("entity_id", int64(res.EntityID)),
		obs.FFloat("score", res.Score),
		obs.FInt("candidates", int64(res.Candidates)))
	return res, exp, nil
}

// MergePath returns the journal subsequence whose retirements flowed
// (transitively) into entityID, in journal order — the provenance of
// how that entity came to span its records.
func (s *Store) MergePath(entityID uint64) []Merge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mergePathLocked(entityID)
}

// mergePathLocked walks the journal backwards keeping the set of
// entity IDs that fed into entityID: an entry merging From into any
// member adds From to the set. Callers hold at least the read lock.
func (s *Store) mergePathLocked(entityID uint64) []Merge {
	if entityID == 0 {
		return nil
	}
	into := map[uint64]bool{entityID: true}
	var rev []Merge
	for i := len(s.journal) - 1; i >= 0; i-- {
		m := s.journal[i]
		if into[m.Into] {
			into[m.From] = true
			rev = append(rev, m)
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Features returns the comparison-scheme feature names in vector
// order — the alignment key for Explanation and query provenance.
func (s *Store) Features() []string { return s.scheme.FeatureNames() }

// PublishLag refreshes the streaming lag gauges (stream.wal_seq,
// stream.records_since_snapshot) without waiting for the next ingest —
// metric scrapes call it so lag is current even on an idle store.
func (s *Store) PublishLag() {
	if s == nil {
		return
	}
	s.mu.RLock()
	n := int64(len(s.records))
	s.mu.RUnlock()
	s.gWALSeq.Set(float64(n))
	s.gSnapLag.Set(float64(n - s.snapLen.Load()))
}

// EntityOf returns the current entity ID of a stored record by id.
func (s *Store) EntityOf(recordID string) (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seq, ok := s.byID[recordID]
	if !ok {
		return 0, false
	}
	return s.entity[s.findRO(seq)], true
}

// Partition returns the current clustering as entity ID → member
// record IDs in insertion order.
func (s *Store) Partition() map[uint64][]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[uint64][]string)
	for seq, r := range s.records {
		e := s.entity[s.findRO(seq)]
		out[e] = append(out[e], r.ID)
	}
	return out
}

// Journal returns a copy of the merge journal in append order.
func (s *Store) Journal() []Merge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Merge(nil), s.journal...)
}

// Stats returns a point-in-time summary.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Records:  len(s.records),
		Entities: s.entityCount(),
		Merges:   len(s.journal),
		Resolves: s.nProbes,
		NextID:   s.nextID,
	}
}

// Fingerprint returns a SHA-256 hex digest of the store's logical
// state: schema, every stored record, every record's current entity
// assignment, the merge journal, the entity ID allocator, and the
// blocking index. Two stores fed the same records in the same order
// fingerprint identically — this is the bitwise identity
// snapshot/restore and WAL replay are tested against.
func (s *Store) Fingerprint() (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fingerprintLocked()
}

func (s *Store) fingerprintLocked() (string, error) {
	h := sha256.New()
	w := fpWriter{h: h}
	w.str("transer.stream/v1")
	w.u64(uint64(len(s.schema.Attributes)))
	for _, a := range s.schema.Attributes {
		w.str(a.Name)
		w.str(a.Type.String())
	}
	w.u64(uint64(len(s.records)))
	for seq, r := range s.records {
		w.str(r.ID)
		w.u64(uint64(len(r.Values)))
		for _, v := range r.Values {
			w.str(v)
		}
		w.u64(s.entity[s.findRO(seq)])
	}
	w.u64(uint64(len(s.journal)))
	for _, m := range s.journal {
		w.u64(uint64(m.Seq))
		w.u64(m.From)
		w.u64(m.Into)
	}
	w.u64(s.nextID)
	if err := s.index.WriteFingerprint(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// fpWriter length-prefixes values into a hash (hash.Hash writes never
// fail).
type fpWriter struct{ h hash.Hash }

func (w fpWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.h.Write(buf[:])
}

func (w fpWriter) str(v string) {
	w.u64(uint64(len(v)))
	w.h.Write([]byte(v))
}
