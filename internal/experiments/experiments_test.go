package experiments

import (
	"bytes"
	"strings"
	"testing"

	"transer/internal/pipeline"
)

// tiny returns options small enough for unit tests.
func tiny() Options {
	return Options{
		Scale:       0.04,
		Seed:        1,
		SkipSlow:    true,
		Classifiers: StandardClassifiers(1)[3:4], // decision tree only
	}
}

func TestTable1(t *testing.T) {
	tbl, err := Table1(tiny())
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("expected 4 domain pair rows, got %d", len(tbl.Rows))
	}
	// Feature widths follow the paper: 4, 5, 8, 11.
	want := []string{"4", "5", "8", "11"}
	for i, row := range tbl.Rows {
		if row[0] != want[i] {
			t.Errorf("row %d width = %s, want %s", i, row[0], want[i])
		}
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	if !strings.Contains(buf.String(), "DBLP-ACM") {
		t.Errorf("render missing dataset name")
	}
}

func TestFigure2(t *testing.T) {
	hs, err := Figure2(tiny())
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if len(hs) != 2 {
		t.Fatalf("expected 2 histograms, got %d", len(hs))
	}
	for _, h := range hs {
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		if total == 0 {
			t.Errorf("%s histogram empty", h.Name)
		}
		// Bi-modal shape: matches concentrate in the top bins.
		topMatches, botMatches := 0, 0
		for i, m := range h.Matches {
			if i >= len(h.Matches)/2 {
				topMatches += m
			} else {
				botMatches += m
			}
		}
		if topMatches <= botMatches {
			t.Errorf("%s: matches not concentrated at high similarity (%d top vs %d bottom)",
				h.Name, topMatches, botMatches)
		}
	}
	var buf bytes.Buffer
	RenderHistograms(&buf, hs)
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Errorf("render missing caption")
	}
}

func TestFigure5(t *testing.T) {
	pts := Figure5()
	if len(pts) != 21 {
		t.Fatalf("expected 21 samples, got %d", len(pts))
	}
	// At x=0 all curves are 1; decay rate ordering holds at x=0.5.
	for name, v := range pts[0].Values {
		if v != 1 {
			t.Errorf("%s(0) = %v", name, v)
		}
	}
	mid := pts[10].Values
	if !(mid["e^-10x"] < mid["e^-5x"] && mid["e^-5x"] < mid["e^-2x"] && mid["e^-2x"] < mid["e^-x"]) {
		t.Errorf("decay ordering violated at x=0.5: %v", mid)
	}
	var buf bytes.Buffer
	RenderDecay(&buf, pts)
	if !strings.Contains(buf.String(), "e^-5x") {
		t.Errorf("render missing series")
	}
}

func TestTable2AndRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("8-task method grid too slow for -short (see Makefile race target)")
	}
	res, err := Table2(tiny())
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	// 8 tasks x 6 methods (slow skipped).
	if len(res.Rows) != 8*6 {
		t.Fatalf("expected 48 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Err != nil {
			t.Errorf("%s on %s failed: %v", row.Method, row.Task, row.Err)
		}
	}
	q := res.QualityTable()
	if len(q.Rows) != 8*4+4 { // 4 measures per task + averages block
		t.Errorf("quality table rows = %d", len(q.Rows))
	}
	rt := res.RuntimeTable()
	if len(rt.Rows) != 8 {
		t.Errorf("runtime table rows = %d", len(rt.Rows))
	}
	var buf bytes.Buffer
	q.Render(&buf)
	rt.Render(&buf)
	out := buf.String()
	for _, m := range []string{"TransER", "Naive", "LocIT*", "TCA", "Coral", "DR"} {
		if !strings.Contains(out, m) {
			t.Errorf("rendered tables missing method %s", m)
		}
	}
}

func TestFigure6(t *testing.T) {
	if testing.Short() {
		t.Skip("label-fraction sweep too slow for -short")
	}
	rows, err := Figure6(tiny())
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	// 3 tasks x 4 fractions.
	if len(rows) != 12 {
		t.Fatalf("expected 12 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Setting != "label-fraction" {
			t.Errorf("unexpected setting %q", r.Setting)
		}
		if r.Value < 0.25 || r.Value > 1 {
			t.Errorf("fraction %v out of range", r.Value)
		}
	}
}

func TestFigure7(t *testing.T) {
	if testing.Short() {
		t.Skip("parameter sweep too slow for -short")
	}
	rows, err := Figure7(tiny())
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	// 3 tasks x (6 + 6 + 8 + 5) settings.
	if len(rows) != 3*25 {
		t.Fatalf("expected 75 rows, got %d", len(rows))
	}
	settings := map[string]bool{}
	for _, r := range rows {
		settings[r.Setting] = true
	}
	for _, s := range []string{"t_c", "t_l", "t_p", "k"} {
		if !settings[s] {
			t.Errorf("missing sweep %q", s)
		}
	}
	tbl := SweepTable("fig7", rows)
	if len(tbl.Rows) != len(rows) {
		t.Errorf("sweep table rows mismatch")
	}
}

func TestTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation grid too slow for -short")
	}
	tbl, err := Table4(tiny())
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	// 3 tasks x 4 measures.
	if len(tbl.Rows) != 12 {
		t.Fatalf("expected 12 rows, got %d", len(tbl.Rows))
	}
	if len(tbl.Header) != 2+6 {
		t.Errorf("expected 6 variants in header, got %d", len(tbl.Header)-2)
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	for _, v := range []string{"without SEL", "without sim_c", "TransER + sim_v"} {
		if !strings.Contains(buf.String(), v) {
			t.Errorf("missing ablation variant %q", v)
		}
	}
}

func TestBuildTaskAlignment(t *testing.T) {
	opts := tiny()
	st := opts.store()
	for _, ref := range pipeline.PaperTaskRefs() {
		bt := buildTask(st, ref, opts)
		if len(bt.task.XS) != len(bt.task.YS) {
			t.Fatalf("%s: source rows/labels misaligned", bt.name)
		}
		if len(bt.task.XT) != len(bt.truthT) {
			t.Fatalf("%s: target rows/truth misaligned", bt.name)
		}
		if len(bt.task.SourcePairs) != len(bt.task.XS) {
			t.Fatalf("%s: source pairs misaligned", bt.name)
		}
		if err := bt.task.Validate(); err != nil {
			t.Fatalf("%s: invalid task: %v", bt.name, err)
		}
	}
}

func TestLabelFractionTask(t *testing.T) {
	opts := tiny()
	bt := buildTask(opts.store(), pipeline.PaperTaskRefs()[0], opts)
	sub := labelFractionTask(bt, 0.5, 1)
	if len(sub.task.XS) >= len(bt.task.XS) {
		t.Errorf("fraction did not shrink source: %d vs %d", len(sub.task.XS), len(bt.task.XS))
	}
	if len(sub.task.XS) != len(sub.task.YS) {
		t.Errorf("subset misaligned")
	}
	// Target untouched.
	if len(sub.task.XT) != len(bt.task.XT) {
		t.Errorf("target modified by label fraction")
	}
}
