package experiments

import (
	"bytes"
	"testing"

	"transer/internal/core"
	"transer/internal/pipeline"
	"transer/internal/testkit"
)

// Differential gate for the switchable SEL engines on the real paper
// datasets: every exact engine must pick byte-identical training
// instances on every table 2 task, and the rendered experiment text
// must not change when the engine does.

// TestSELModesDifferentialOnDatasets runs the SEL phase of every
// table 2 task under the seed engine (reference), the dedup engine and
// the flat-tree default, and requires identical selections. Scale 0.25
// exercises real duplicate distributions; -short drops to 0.05 to keep
// the unit suite quick.
func TestSELModesDifferentialOnDatasets(t *testing.T) {
	opts := tiny()
	opts.Scale = 0.25
	if testing.Short() {
		opts.Scale = 0.05
	}
	st := opts.store()
	cfg := core.DefaultConfig()
	for _, ref := range pipeline.PaperTaskRefs() {
		bt := buildTask(st, ref, opts)
		cfg.SELMode = core.SELModeReference
		want := core.SelectInstances(bt.task.XS, bt.task.YS, bt.task.XT, cfg)
		for _, mode := range []string{core.SELModeDedup, core.SELModeExact} {
			cfg.SELMode = mode
			got := core.SelectInstances(bt.task.XS, bt.task.YS, bt.task.XT, cfg)
			if !testkit.EqualInts(got, want) {
				t.Errorf("%s: mode %q selected %d instances, reference selected %d (first diff matters; selections differ)",
					bt.name, mode, len(got), len(want))
			}
		}
	}
}

// TestSELModeGoldenGate renders table2, figure6 and figure7 with the
// seed engine and with the flat-tree default and diffs the normalized
// text byte for byte — the rendered experiments are the contract the
// engine swap must not move. Small scale with SkipSlow keeps this a
// unit test; CI runs it explicitly as the golden gate.
func TestSELModeGoldenGate(t *testing.T) {
	base := tiny()
	base.Scale = 0.05
	for _, name := range []string{"table2", "figure6", "figure7"} {
		render := func(mode string) string {
			opts := base
			opts.SELMode = mode
			var buf bytes.Buffer
			if err := RenderExperiment(&buf, name, opts); err != nil {
				t.Fatalf("%s with mode %q: %v", name, mode, err)
			}
			return normalizeGolden(buf.String())
		}
		want := render(core.SELModeReference)
		got := render(core.SELModeExact)
		if name == "table2" {
			got, want = maskRuntimes(got), maskRuntimes(want)
		}
		if got != want {
			t.Errorf("%s: output changed between reference and exact SEL engines", name)
		}
	}
}
