package experiments

import (
	"bytes"
	"strings"
	"testing"

	"transer/internal/obs"
)

// renderTraced renders one experiment with a fresh tracer attached and
// returns the output alongside the tracer for span inspection.
func renderTraced(t *testing.T, name string, opts Options) (string, *obs.Tracer) {
	t.Helper()
	tr := obs.New("test")
	opts.Obs = tr
	var buf bytes.Buffer
	if err := RenderExperiment(&buf, name, opts); err != nil {
		t.Fatalf("%s (traced): %v", name, err)
	}
	return buf.String(), tr
}

// TestRenderIdenticalWithTracing is the observability side of the
// determinism guarantee: every rendered byte must be identical whether
// a tracer is attached or not. Instrumentation observes; it never
// participates.
func TestRenderIdenticalWithTracing(t *testing.T) {
	for _, name := range []string{"table1", "figure2"} {
		plain := renderAt(t, name, tiny(), 2)
		traced, _ := renderTraced(t, name, tiny())
		firstDiff(t, name+": tracing off vs on", plain, traced)
	}
}

func TestTable2IdenticalWithTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("method grid too slow for -short")
	}
	// As in the worker-count determinism tests, only the quality table
	// is compared byte for byte: the runtime columns report wall clock,
	// which no two runs share.
	quality := func(tr *obs.Tracer) string {
		opts := tiny()
		opts.Workers = 4
		opts.Obs = tr
		res, err := Table2(opts)
		if err != nil {
			t.Fatalf("Table2(traced=%v): %v", tr != nil, err)
		}
		var buf bytes.Buffer
		res.QualityTable().Render(&buf)
		return buf.String()
	}
	plain := quality(nil)
	tr := obs.New("test")
	firstDiff(t, "table2 quality: tracing off vs on", plain, quality(tr))

	// Table2 was called directly (no RunExperiment wrapper), so cell
	// spans nest under the tracer root; each must carry the TransER
	// phase spans with their fit/predict children.
	exp := tr.Root()
	var cells int
	for _, c := range exp.Children() {
		if strings.HasPrefix(c.Name(), "cell:") {
			cells++
		}
	}
	if cells == 0 {
		t.Fatalf("no cell spans; root children: %v", spanNames(exp.Children()))
	}
	for _, phase := range []string{"sel", "gen", "tcl"} {
		if exp.Find(phase) == nil {
			t.Errorf("no %s phase span anywhere under the experiment", phase)
		}
	}
	sel := exp.Find("sel")
	found := false
	for _, a := range sel.Attrs() {
		if a.Key == "selected" {
			found = true
		}
	}
	if !found {
		t.Errorf("sel span lacks the selected-instances attribute: %v", sel.Attrs())
	}
	if exp.Find("fit") == nil || exp.Find("predict") == nil {
		t.Errorf("classifier fit/predict spans missing")
	}
}

// TestStoreInstrumented checks that an instrumented store mirrors its
// hit/miss counters into the registry and opens pipeline stage spans.
func TestStoreInstrumented(t *testing.T) {
	tr := obs.New("test")
	opts := tiny()
	opts.Obs = tr
	// Render the same experiment twice against one Options so the
	// second pass hits the memoized artifacts.
	st := opts.store()
	opts.Store = st
	var buf bytes.Buffer
	if err := RenderExperiment(&buf, "table1", opts); err != nil {
		t.Fatal(err)
	}
	if err := RenderExperiment(&buf, "table1", opts); err != nil {
		t.Fatal(err)
	}
	snap := tr.Metrics().Snapshot()
	if snap.Counters["pipeline.store.misses_total"] == 0 {
		t.Errorf("no store misses recorded: %v", snap.Counters)
	}
	if snap.Counters["pipeline.store.hits_total"] == 0 {
		t.Errorf("second pass produced no store hits: %v", snap.Counters)
	}
	if snap.Gauges["pipeline.store.bytes"] <= 0 {
		t.Errorf("store bytes gauge = %v", snap.Gauges["pipeline.store.bytes"])
	}
	pipe := tr.Root().Find("pipeline")
	if pipe == nil {
		t.Fatalf("no pipeline group span; root children: %v", spanNames(tr.Root().Children()))
	}
	stages := map[string]bool{}
	for _, c := range pipe.Children() {
		stages[stageOf(c.Name())] = true
	}
	for _, want := range []string{"generate", "block", "compare", "label"} {
		if !stages[want] {
			t.Errorf("no %s stage span under pipeline; got %v", want, spanNames(pipe.Children()))
		}
	}
}

func spanNames(spans []*obs.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name()
	}
	return out
}

// stageOf strips the ":key@scale" suffix from a stage span name.
func stageOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == ':' {
			return name[:i]
		}
	}
	return name
}
