package experiments

import (
	"fmt"
	"io"
	"time"
)

// Names returns the experiment names RenderExperiment accepts, in the
// order cmd/experiments runs them under -exp all.
func Names() []string {
	return []string{"table1", "figure2", "figure5", "table2", "figure6", "figure7", "table4"}
}

// HeadName returns the heading cmd/experiments prints for an
// experiment ("table2" renders Tables 2 and 3 together).
func HeadName(name string) string {
	if name == "table2" {
		return "table2+table3"
	}
	return name
}

// RenderExperiment regenerates one experiment and writes the exact
// text cmd/experiments prints for it — header line plus rendered
// tables/figures — excluding the trailing wall-clock line, which is
// the only non-deterministic part of the command's output. The golden
// tests diff this text against the checked-in *_output.txt files.
func RenderExperiment(w io.Writer, name string, opts Options) error {
	_, err := RunExperiment(w, name, opts)
	return err
}

// RunExperiment renders one experiment under an "experiment:<name>"
// span of opts.Obs and reports the span-derived wall time (measured
// directly when tracing is off). cmd/experiments prints its per-
// experiment timing lines from this duration.
func RunExperiment(w io.Writer, name string, opts Options) (time.Duration, error) {
	sp := opts.Obs.Root().Child("experiment:" + name)
	opts.span = sp
	start := time.Now()
	err := renderExperiment(w, name, opts)
	sp.End()
	if sp != nil {
		return sp.Duration(), err
	}
	return time.Since(start), err
}

func renderExperiment(w io.Writer, name string, opts Options) error {
	fmt.Fprintf(w, "== %s (scale %.2f) ==\n", HeadName(name), scaleOf(opts))
	switch name {
	case "table1":
		t, err := Table1(opts)
		if err != nil {
			return err
		}
		t.Render(w)
	case "figure2":
		hs, err := Figure2(opts)
		if err != nil {
			return err
		}
		RenderHistograms(w, hs)
	case "figure5":
		RenderDecay(w, Figure5())
	case "table2":
		res, err := Table2(opts)
		if err != nil {
			return err
		}
		res.QualityTable().Render(w)
		fmt.Fprintln(w)
		res.RuntimeTable().Render(w)
	case "figure6":
		rows, err := Figure6(opts)
		if err != nil {
			return err
		}
		SweepTable("Figure 6: sensitivity to labelled source fraction", rows).Render(w)
	case "figure7":
		rows, err := Figure7(opts)
		if err != nil {
			return err
		}
		SweepTable("Figure 7: parameter sensitivity (t_c, t_l, t_p, k)", rows).Render(w)
	case "table4":
		t, err := Table4(opts)
		if err != nil {
			return err
		}
		t.Render(w)
	default:
		return fmt.Errorf("experiments: unknown experiment %q", name)
	}
	return nil
}

// scaleOf reports the scale an experiment will actually run at (the
// header must show the defaulted value, as cmd/experiments always
// passed an explicit one).
func scaleOf(opts Options) float64 {
	return opts.withDefaults().Scale
}
