package experiments

import (
	"fmt"

	"transer/internal/core"
	"transer/internal/datagen"
	"transer/internal/eval"
)

// SweepRow is one parameter/fraction setting's aggregated quality on
// one task.
type SweepRow struct {
	Task    string
	Setting string
	Value   float64
	Quality eval.MetricsAggregate
}

// Figure6 measures TransER's sensitivity to the labelled source
// fraction (25%..100%) on the three representative tasks.
func Figure6(opts Options) ([]SweepRow, error) {
	opts = opts.withDefaults()
	var out []SweepRow
	for _, task := range datagen.RepresentativeTasks(opts.Scale) {
		bt := buildTask(task)
		for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
			sub := labelFractionTask(bt, frac, opts.Seed+int64(frac*100))
			q, _, err := evaluateMethod(transERMethod(core.DefaultConfig()), sub, opts.Classifiers)
			if err != nil {
				return nil, err
			}
			out = append(out, SweepRow{Task: bt.name, Setting: "label-fraction", Value: frac, Quality: q})
		}
	}
	return out, nil
}

// Figure7 measures TransER's sensitivity to t_c, t_l, t_p and k on the
// representative tasks, varying one parameter at a time around the
// defaults (the paper's Section 5.3 protocol).
func Figure7(opts Options) ([]SweepRow, error) {
	opts = opts.withDefaults()
	var out []SweepRow
	type sweep struct {
		name   string
		values []float64
		apply  func(cfg *core.Config, v float64)
	}
	sweeps := []sweep{
		{"t_c", []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
			func(cfg *core.Config, v float64) { cfg.TC = v }},
		{"t_l", []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
			func(cfg *core.Config, v float64) { cfg.TL = v }},
		{"t_p", []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0},
			func(cfg *core.Config, v float64) { cfg.TP = v }},
		{"k", []float64{3, 5, 7, 9, 11},
			func(cfg *core.Config, v float64) { cfg.K = int(v) }},
	}
	for _, task := range datagen.RepresentativeTasks(opts.Scale) {
		bt := buildTask(task)
		for _, sw := range sweeps {
			for _, v := range sw.values {
				cfg := core.DefaultConfig()
				sw.apply(&cfg, v)
				q, _, err := evaluateMethod(transERMethod(cfg), bt, opts.Classifiers)
				if err != nil {
					return nil, err
				}
				out = append(out, SweepRow{Task: bt.name, Setting: sw.name, Value: v, Quality: q})
			}
		}
	}
	return out, nil
}

// Table4 runs the component ablations of the paper's Table 4 on the
// representative tasks.
func Table4(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"TransER", core.DefaultConfig()},
		{"without GEN & TCL", withCfg(func(c *core.Config) { c.DisableGENTCL = true })},
		{"without SEL", withCfg(func(c *core.Config) { c.DisableSEL = true })},
		{"without sim_c", withCfg(func(c *core.Config) { c.DisableSimC = true })},
		{"without sim_l", withCfg(func(c *core.Config) { c.DisableSimL = true })},
		{"TransER + sim_v", withCfg(func(c *core.Config) { c.EnableSimV = true })},
	}
	t := &Table{
		Caption: "Table 4: ablation analysis (mean ± std over classifiers)",
		Header:  []string{"Source -> Target", "Measure"},
	}
	for _, v := range variants {
		t.Header = append(t.Header, v.name)
	}
	for _, task := range datagen.RepresentativeTasks(opts.Scale) {
		bt := buildTask(task)
		cells := map[string]eval.MetricsAggregate{}
		for _, v := range variants {
			q, _, err := evaluateMethod(transERMethod(v.cfg), bt, opts.Classifiers)
			if err != nil {
				return nil, fmt.Errorf("ablation %q on %s: %w", v.name, bt.name, err)
			}
			cells[v.name] = q
		}
		add := func(meas string, get func(eval.MetricsAggregate) eval.Aggregate) {
			row := []string{bt.name, meas}
			for _, v := range variants {
				row = append(row, agg(get(cells[v.name])))
			}
			t.Rows = append(t.Rows, row)
		}
		add("P", func(a eval.MetricsAggregate) eval.Aggregate { return a.Precision })
		add("R", func(a eval.MetricsAggregate) eval.Aggregate { return a.Recall })
		add("F*", func(a eval.MetricsAggregate) eval.Aggregate { return a.FStar })
		add("F1", func(a eval.MetricsAggregate) eval.Aggregate { return a.F1 })
	}
	return t, nil
}

func withCfg(mod func(*core.Config)) core.Config {
	cfg := core.DefaultConfig()
	mod(&cfg)
	return cfg
}

// SweepTable renders sweep rows grouped by setting.
func SweepTable(caption string, rows []SweepRow) *Table {
	t := &Table{
		Caption: caption,
		Header:  []string{"Task", "Setting", "Value", "P", "R", "F*", "F1"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Task, r.Setting, fmt.Sprintf("%.2f", r.Value),
			agg(r.Quality.Precision), agg(r.Quality.Recall),
			agg(r.Quality.FStar), agg(r.Quality.F1),
		})
	}
	return t
}
