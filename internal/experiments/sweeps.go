package experiments

import (
	"fmt"

	"transer/internal/core"
	"transer/internal/eval"
	"transer/internal/parallel"
	"transer/internal/pipeline"
)

// SweepRow is one parameter/fraction setting's aggregated quality on
// one task.
type SweepRow struct {
	Task    string
	Setting string
	Value   float64
	Quality eval.MetricsAggregate
}

// Figure6 measures TransER's sensitivity to the labelled source
// fraction (25%..100%) on the three representative tasks. The (task,
// fraction) cells run concurrently; each subsets the source with a
// seed derived from (Seed, fraction) rather than shared RNG state, so
// the rows are identical for every worker count.
func Figure6(opts Options) ([]SweepRow, error) {
	opts = opts.withDefaults()
	built := representativeTasks(opts)
	fracs := []float64{0.25, 0.5, 0.75, 1.0}
	out := make([]SweepRow, len(built)*len(fracs))
	errs := make([]error, len(out))
	expSpan := opts.parentSpan()
	parallel.ForEach(opts.Workers, len(out), func(cell int) {
		bt := built[cell/len(fracs)]
		frac := fracs[cell%len(fracs)]
		sub := labelFractionTask(bt, frac, opts.Seed+int64(frac*100))
		cfg := core.DefaultConfig()
		cfg.Workers = opts.Workers
		cfg.SELMode = opts.SELMode
		cfg.SELCache = opts.selCache
		sp := expSpan.Child(fmt.Sprintf("cell:%s/frac=%.2f", bt.name, frac))
		q, _, err := evaluateMethod(transERMethod(cfg), sub, opts.Classifiers, sp)
		sp.End()
		if err != nil {
			errs[cell] = err
			return
		}
		out[cell] = SweepRow{Task: bt.name, Setting: "label-fraction", Value: frac, Quality: q}
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// representativeTasks builds the three sensitivity/ablation tasks
// through the artifact store: across Figure 6, Figure 7 and Table 4
// sharing one store, each underlying domain is built exactly once.
func representativeTasks(opts Options) []builtTask {
	st := opts.store()
	tasks := pipeline.RepresentativeTaskRefs()
	return parallel.Map(opts.Workers, len(tasks), func(i int) builtTask {
		return buildTask(st, tasks[i], opts)
	})
}

// Figure7 measures TransER's sensitivity to t_c, t_l, t_p and k on the
// representative tasks, varying one parameter at a time around the
// defaults (the paper's Section 5.3 protocol). The flattened (task,
// parameter, value) grid fans out over opts.Workers goroutines with
// one pre-assigned output slot per cell.
func Figure7(opts Options) ([]SweepRow, error) {
	opts = opts.withDefaults()
	type sweep struct {
		name   string
		values []float64
		apply  func(cfg *core.Config, v float64)
	}
	sweeps := []sweep{
		{"t_c", []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
			func(cfg *core.Config, v float64) { cfg.TC = v }},
		{"t_l", []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
			func(cfg *core.Config, v float64) { cfg.TL = v }},
		{"t_p", []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0},
			func(cfg *core.Config, v float64) { cfg.TP = v }},
		{"k", []float64{3, 5, 7, 9, 11},
			func(cfg *core.Config, v float64) { cfg.K = int(v) }},
	}
	built := representativeTasks(opts)
	type cell struct {
		task  int
		sweep int
		value float64
	}
	var cells []cell
	for t := range built {
		for s, sw := range sweeps {
			for _, v := range sw.values {
				cells = append(cells, cell{task: t, sweep: s, value: v})
			}
		}
	}
	out := make([]SweepRow, len(cells))
	errs := make([]error, len(cells))
	expSpan := opts.parentSpan()
	parallel.ForEach(opts.Workers, len(cells), func(i int) {
		c := cells[i]
		bt := built[c.task]
		sw := sweeps[c.sweep]
		cfg := core.DefaultConfig()
		cfg.Workers = opts.Workers
		cfg.SELMode = opts.SELMode
		cfg.SELCache = opts.selCache
		sw.apply(&cfg, c.value)
		sp := expSpan.Child(fmt.Sprintf("cell:%s/%s=%.2f", bt.name, sw.name, c.value))
		q, _, err := evaluateMethod(transERMethod(cfg), bt, opts.Classifiers, sp)
		sp.End()
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = SweepRow{Task: bt.name, Setting: sw.name, Value: c.value, Quality: q}
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// Table4 runs the component ablations of the paper's Table 4 on the
// representative tasks.
func Table4(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"TransER", core.DefaultConfig()},
		{"without GEN & TCL", withCfg(func(c *core.Config) { c.DisableGENTCL = true })},
		{"without SEL", withCfg(func(c *core.Config) { c.DisableSEL = true })},
		{"without sim_c", withCfg(func(c *core.Config) { c.DisableSimC = true })},
		{"without sim_l", withCfg(func(c *core.Config) { c.DisableSimL = true })},
		{"TransER + sim_v", withCfg(func(c *core.Config) { c.EnableSimV = true })},
	}
	t := &Table{
		Caption: "Table 4: ablation analysis (mean ± std over classifiers)",
		Header:  []string{"Source -> Target", "Measure"},
	}
	for _, v := range variants {
		t.Header = append(t.Header, v.name)
	}
	built := representativeTasks(opts)
	// One (task, variant) quality aggregate per grid cell.
	quality := make([]eval.MetricsAggregate, len(built)*len(variants))
	errs := make([]error, len(quality))
	expSpan := opts.parentSpan()
	parallel.ForEach(opts.Workers, len(quality), func(cell int) {
		bt := built[cell/len(variants)]
		v := variants[cell%len(variants)]
		cfg := v.cfg
		cfg.Workers = opts.Workers
		cfg.SELMode = opts.SELMode
		cfg.SELCache = opts.selCache
		sp := expSpan.Child("cell:" + bt.name + "/" + v.name)
		q, _, err := evaluateMethod(transERMethod(cfg), bt, opts.Classifiers, sp)
		sp.End()
		if err != nil {
			errs[cell] = fmt.Errorf("ablation %q on %s: %w", v.name, bt.name, err)
			return
		}
		quality[cell] = q
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	for ti, bt := range built {
		add := func(meas string, get func(eval.MetricsAggregate) eval.Aggregate) {
			row := []string{bt.name, meas}
			for vi := range variants {
				row = append(row, agg(get(quality[ti*len(variants)+vi])))
			}
			t.Rows = append(t.Rows, row)
		}
		add("P", func(a eval.MetricsAggregate) eval.Aggregate { return a.Precision })
		add("R", func(a eval.MetricsAggregate) eval.Aggregate { return a.Recall })
		add("F*", func(a eval.MetricsAggregate) eval.Aggregate { return a.FStar })
		add("F1", func(a eval.MetricsAggregate) eval.Aggregate { return a.F1 })
	}
	return t, nil
}

func withCfg(mod func(*core.Config)) core.Config {
	cfg := core.DefaultConfig()
	mod(&cfg)
	return cfg
}

// SweepTable renders sweep rows grouped by setting.
func SweepTable(caption string, rows []SweepRow) *Table {
	t := &Table{
		Caption: caption,
		Header:  []string{"Task", "Setting", "Value", "P", "R", "F*", "F1"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Task, r.Setting, fmt.Sprintf("%.2f", r.Value),
			agg(r.Quality.Precision), agg(r.Quality.Recall),
			agg(r.Quality.FStar), agg(r.Quality.F1),
		})
	}
	return t
}
