package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"transer/internal/compare"
	"transer/internal/parallel"
)

// Histogram is one similarity distribution series (Figure 2).
type Histogram struct {
	Name    string
	Edges   []float64 // len bins+1
	Counts  []int     // len bins
	Matches []int     // per-bin true match counts (diagnostic)
}

// Figure2 reproduces the skewed/bi-modal similarity distributions: a
// histogram of per-pair mean similarity for the Musicbrainz-like and
// DBLP-ACM-like data sets.
func Figure2(opts Options) ([]Histogram, error) {
	opts = opts.withDefaults()
	st := opts.store()
	const bins = 20
	build := func(key string) Histogram {
		d := buildDomain(st, key, opts)
		means := compare.MeanSimilarity(d.X)
		h := Histogram{Name: d.Name,
			Edges:   make([]float64, bins+1),
			Counts:  make([]int, bins),
			Matches: make([]int, bins)}
		for i := 0; i <= bins; i++ {
			h.Edges[i] = float64(i) / bins
		}
		for i, v := range means {
			b := int(v * bins)
			if b >= bins {
				b = bins - 1
			}
			if b < 0 {
				b = 0
			}
			h.Counts[b]++
			if d.Y[i] == 1 {
				h.Matches[b]++
			}
		}
		return h
	}
	keys := []string{"MB", "DBLP-ACM"}
	return parallel.Map(opts.Workers, len(keys), func(i int) Histogram {
		return build(keys[i])
	}), nil
}

// RenderHistograms writes ASCII histograms.
func RenderHistograms(w io.Writer, hs []Histogram) {
	for _, h := range hs {
		fmt.Fprintf(w, "Figure 2: mean similarity distribution — %s\n", h.Name)
		maxC := 1
		for _, c := range h.Counts {
			if c > maxC {
				maxC = c
			}
		}
		for i, c := range h.Counts {
			bar := strings.Repeat("#", int(math.Round(40*float64(c)/float64(maxC))))
			fmt.Fprintf(w, "  [%.2f,%.2f) %6d (matches %5d) |%s\n",
				h.Edges[i], h.Edges[i+1], c, h.Matches[i], bar)
		}
		fmt.Fprintln(w)
	}
}

// DecayPoint is one (x, value-per-function) sample of Figure 5.
type DecayPoint struct {
	X      float64
	Values map[string]float64
}

// Figure5 reproduces the exponential decay candidate curves e^{-x},
// e^{-2x}, e^{-5x}, e^{-10x} over the normalised distance range [0, 1];
// the paper selects e^{-5x} for Equation (2).
func Figure5() []DecayPoint {
	rates := map[string]float64{"e^-x": 1, "e^-2x": 2, "e^-5x": 5, "e^-10x": 10}
	var out []DecayPoint
	for i := 0; i <= 20; i++ {
		x := float64(i) / 20
		p := DecayPoint{X: x, Values: map[string]float64{}}
		for name, r := range rates {
			p.Values[name] = math.Exp(-r * x)
		}
		out = append(out, p)
	}
	return out
}

// RenderDecay writes the Figure 5 series as a CSV-style table.
func RenderDecay(w io.Writer, pts []DecayPoint) {
	fmt.Fprintln(w, "Figure 5: exponential decay candidates (x = normalised distance)")
	if len(pts) == 0 {
		return
	}
	names := sortedKeys(pts[0].Values)
	fmt.Fprintf(w, "  x      %s\n", strings.Join(names, "    "))
	for _, p := range pts {
		var vals []string
		for _, n := range names {
			vals = append(vals, fmt.Sprintf("%.3f", p.Values[n]))
		}
		fmt.Fprintf(w, "  %.2f   %s\n", p.X, strings.Join(vals, "    "))
	}
}
