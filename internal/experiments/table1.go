package experiments

import (
	"fmt"
	"math"

	"transer/internal/parallel"
	"transer/internal/pipeline"
)

// Table1 reproduces the paper's Table 1: per-domain feature vector
// counts with match / non-match / ambiguous fractions, and the
// common-feature-vector statistics of each source/target pairing.
//
// Following the paper, vectors are bucketed after rounding to two
// decimals; a vector value is Ambiguous when it occurs with both class
// labels, and percentages are over feature vectors (rows).
func Table1(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	type domainStats struct {
		name    string
		rows    int
		m, n, a float64
		classOf map[string]int // 1 match, 0 non-match, -1 ambiguous
	}
	key := func(v []float64) string {
		out := make([]byte, 0, len(v)*5)
		for _, x := range v {
			out = append(out, []byte(fmt.Sprintf("%.2f,", math.Round(x*100)/100))...)
		}
		return string(out)
	}
	analyse := func(d *pipeline.Domain) domainStats {
		labelSets := map[string][2]int{}
		for i, row := range d.X {
			k := key(row)
			c := labelSets[k]
			c[d.Y[i]]++
			labelSets[k] = c
		}
		classOf := make(map[string]int, len(labelSets))
		for k, c := range labelSets {
			switch {
			case c[0] > 0 && c[1] > 0:
				classOf[k] = -1
			case c[1] > 0:
				classOf[k] = 1
			default:
				classOf[k] = 0
			}
		}
		st := domainStats{name: d.Name, rows: len(d.X), classOf: classOf}
		for i, row := range d.X {
			switch classOf[key(row)] {
			case -1:
				st.a++
			case 1:
				st.m++
			default:
				st.n++
			}
			_ = i
		}
		if st.rows > 0 {
			st.m /= float64(st.rows)
			st.n /= float64(st.rows)
			st.a /= float64(st.rows)
		}
		return st
	}

	t := &Table{
		Caption: "Table 1: characteristics of the synthetic data set pairs (vectors rounded to 2 decimals)",
		Header: []string{"m", "Domain A", "|X_A|", "M", "N", "Ambig",
			"Domain B", "|X_B|", "M", "N", "Ambig",
			"Common", "Same", "Diff", "Ambig"},
	}

	pairings := [][2]string{
		{"DBLP-ACM", "DBLP-Scholar"},
		{"MSD", "MB"},
		{"IOS-Bp-Dp", "KIL-Bp-Dp"},
		{"IOS-Bp-Bp", "KIL-Bp-Bp"},
	}
	st := opts.store()
	// Each pairing's statistics are independent; compute them into
	// per-index slots so the row order never depends on scheduling.
	t.Rows = parallel.Map(opts.Workers, len(pairings), func(i int) []string {
		p := pairings[i]
		da := buildDomain(st, p[0], opts)
		db := buildDomain(st, p[1], opts)
		sa := analyse(da)
		sb := analyse(db)
		// Common distinct vectors and their cross-domain agreement.
		common, same, diff, ambig := 0, 0, 0, 0
		for k, ca := range sa.classOf {
			cb, ok := sb.classOf[k]
			if !ok {
				continue
			}
			common++
			switch {
			case ca == -1 || cb == -1:
				ambig++
			case ca == cb:
				same++
			default:
				diff++
			}
		}
		frac := func(n int) string {
			if common == 0 {
				return "0.0%"
			}
			return pct(float64(n) / float64(common))
		}
		return []string{
			fmt.Sprintf("%d", da.NumFeatures()),
			sa.name, fmt.Sprintf("%d", sa.rows), pct(sa.m), pct(sa.n), pct(sa.a),
			sb.name, fmt.Sprintf("%d", sb.rows), pct(sb.m), pct(sb.n), pct(sb.a),
			fmt.Sprintf("%d", common), frac(same), frac(diff), frac(ambig),
		}
	})
	return t, nil
}
