package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests regenerate each experiment in-process at the
// recorded settings (scale 0.5, seed 1) and diff the rendered text
// against the checked-in <name>_output.txt files at the repository
// root. Because every experiment writes results into index-addressed
// slots and derives all randomness from (Seed, cell), the regenerated
// text is byte-identical for any worker count; only wall-clock lines
// and the Table 3 runtime column are environment-dependent, and the
// comparison masks exactly those.

// goldenOpts are the settings the checked-in files were produced with
// (`go run ./cmd/experiments -exp all`).
func goldenOpts() Options {
	return Options{Scale: 0.5, Seed: 1}
}

var timingLine = regexp.MustCompile(`^-- .* done in .*$`)

// normalizeGolden drops the wall-clock footer lines and trailing blank
// lines, which are the only parts of the command output that are not a
// pure function of (experiment, scale, seed).
func normalizeGolden(s string) string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if timingLine.MatchString(ln) {
			continue
		}
		out = append(out, ln)
	}
	return strings.TrimRight(strings.Join(out, "\n"), "\n")
}

var decimalToken = regexp.MustCompile(`^\d+\.\d+$`)

// maskRuntimes rewrites the Table 3 section so the mean-seconds column
// (machine-dependent) compares equal: decimal tokens become '#' and
// runs of whitespace collapse. Sizes and task names are integers and
// words, so they survive the masking and stay compared.
func maskRuntimes(s string) string {
	lines := strings.Split(s, "\n")
	in := false
	for i, ln := range lines {
		if strings.HasPrefix(ln, "Table 3:") {
			in = true
			continue
		}
		if !in {
			continue
		}
		fields := strings.Fields(ln)
		for j, f := range fields {
			if decimalToken.MatchString(f) {
				fields[j] = "#"
			}
		}
		lines[i] = strings.Join(fields, " ")
	}
	return strings.Join(lines, "\n")
}

// checkGolden renders one experiment and diffs it against its file.
func checkGolden(t *testing.T, name string) {
	t.Helper()
	path := filepath.Join("..", "..", name+"_output.txt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var buf bytes.Buffer
	if err := RenderExperiment(&buf, name, goldenOpts()); err != nil {
		t.Fatalf("regenerating %s: %v", name, err)
	}
	got := normalizeGolden(buf.String())
	want := normalizeGolden(string(raw))
	if name == "table2" {
		got, want = maskRuntimes(got), maskRuntimes(want)
	}
	if got == want {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	if len(gl) != len(wl) {
		t.Errorf("%s: regenerated %d lines, golden file has %d", name, len(gl), len(wl))
	}
	shown := 0
	for i := 0; i < len(gl) && i < len(wl) && shown < 5; i++ {
		if gl[i] != wl[i] {
			t.Errorf("%s line %d differs:\n  got:  %q\n  want: %q", name, i+1, gl[i], wl[i])
			shown++
		}
	}
	if shown == 0 {
		t.Errorf("%s: outputs differ only in length", name)
	}
}

func TestGoldenFigure5(t *testing.T) {
	checkGolden(t, "figure5")
}

func TestGoldenFigure2(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure 2 regeneration skipped in -short mode")
	}
	checkGolden(t, "figure2")
}

func TestGoldenTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale table 1 regeneration skipped in -short mode")
	}
	checkGolden(t, "table1")
}

// TestGoldenFull regenerates the experiments that take minutes to
// hours (table2 alone runs every transfer method over eight tasks at
// scale 0.5). It only runs when TRANSER_GOLDEN=1 is set, and needs an
// explicit -timeout well above go test's 10-minute default:
//
//	TRANSER_GOLDEN=1 go test -run TestGoldenFull -timeout 120m ./internal/experiments/
func TestGoldenFull(t *testing.T) {
	if os.Getenv("TRANSER_GOLDEN") == "" {
		t.Skip("set TRANSER_GOLDEN=1 to regenerate the slow full-scale experiments")
	}
	for _, name := range []string{"table2", "figure6", "figure7", "table4"} {
		t.Run(name, func(t *testing.T) {
			checkGolden(t, name)
		})
	}
}
