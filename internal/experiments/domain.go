package experiments

import (
	"transer/internal/pipeline"
)

// buildDomain fetches one built-in dataset's blocked+compared+labelled
// domain through the artifact store; concurrent cells requesting the
// same dataset share a single build. The store's block and compare
// stages execute on the query engine's operators (internal/query), the
// repository's single blocking/compare path.
func buildDomain(st *pipeline.Store, key string, opts Options) *pipeline.Domain {
	return st.Domain(pipeline.Request{
		Dataset: pipeline.MustDataset(key),
		Scale:   opts.Scale,
		Workers: opts.Workers,
	})
}
