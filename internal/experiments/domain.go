package experiments

import (
	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/datagen"
	"transer/internal/dataset"
)

// builtDomain is one blocked+compared domain with ground-truth labels.
type builtDomain struct {
	name  string
	pairs []dataset.Pair
	x     [][]float64
	y     []int
	m     int
}

// buildDomain blocks and compares a generated domain pair with its
// recommended blocking configuration and the default comparison
// scheme.
func buildDomain(p datagen.DomainPair) builtDomain {
	scheme := compare.DefaultScheme(p.A.Schema)
	pairs := blocking.CandidatePairs(p.A, p.B, p.Blocking)
	return builtDomain{
		name:  p.Name,
		pairs: pairs,
		x:     scheme.Matrix(p.A, p.B, pairs),
		y:     dataset.LabelPairs(pairs, p.Truth()),
		m:     scheme.NumFeatures(),
	}
}
