package experiments

import (
	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/datagen"
	"transer/internal/dataset"
)

// builtDomain is one blocked+compared domain with ground-truth labels.
type builtDomain struct {
	name  string
	pairs []dataset.Pair
	x     [][]float64
	y     []int
	m     int
}

// buildDomain blocks and compares a generated domain pair with its
// recommended blocking configuration and the default comparison
// scheme, building the feature matrix on up to `workers` goroutines.
func buildDomain(p datagen.DomainPair, workers int) builtDomain {
	scheme := compare.DefaultScheme(p.A.Schema)
	scheme.Workers = workers
	pairs := blocking.CandidatePairs(p.A, p.B, p.Blocking)
	return builtDomain{
		name:  p.Name,
		pairs: pairs,
		x:     scheme.Matrix(p.A, p.B, pairs),
		y:     dataset.LabelPairs(pairs, p.Truth()),
		m:     scheme.NumFeatures(),
	}
}
