package experiments

import (
	"bytes"
	"testing"

	"transer/internal/pipeline"
)

// distinctArtifacts is the artifact count of one fully built domain:
// generated pair, candidate pairs, feature matrix, labels.
const distinctArtifacts = 4

// renderWith renders one experiment into a string using the given
// store.
func renderWith(t *testing.T, name string, opts Options, st *pipeline.Store) string {
	t.Helper()
	opts.Store = st
	var buf bytes.Buffer
	if err := RenderExperiment(&buf, name, opts); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return buf.String()
}

// TestStoreSharedAcrossExperiments is the headline reuse property:
// Table 1 builds all eight domains, so a subsequent Figure 2 sharing
// the store must be served entirely from cache.
func TestStoreSharedAcrossExperiments(t *testing.T) {
	st := pipeline.NewStore()
	renderWith(t, "table1", tiny(), st)
	after1 := st.Stats()
	if want := int64(8 * distinctArtifacts); after1.Misses != want {
		t.Fatalf("table1 built %d artifacts, want %d", after1.Misses, want)
	}
	renderWith(t, "figure2", tiny(), st)
	after2 := st.Stats()
	if after2.Misses != after1.Misses {
		t.Errorf("figure2 rebuilt %d artifacts that table1 already built",
			after2.Misses-after1.Misses)
	}
	if after2.Hits <= after1.Hits {
		t.Errorf("figure2 never hit the shared store (hits %d -> %d)",
			after1.Hits, after2.Hits)
	}
	if after2.Bytes <= 0 {
		t.Errorf("store reports %d memoized bytes", after2.Bytes)
	}
}

// TestColdVsWarmRenderIdentical is the cache half of the determinism
// guarantee: rendered output must be byte-identical whether artifacts
// are built fresh (cold store) or fetched memoized (warm store), and
// for any worker count against a warm store.
func TestColdVsWarmRenderIdentical(t *testing.T) {
	for _, name := range []string{"table1", "figure2"} {
		st := pipeline.NewStore()
		cold := renderWith(t, name, tiny(), st)
		warm := renderWith(t, name, tiny(), st)
		firstDiff(t, name+": cold vs warm store", cold, warm)

		opts := tiny()
		opts.Workers = 8
		warmParallel := renderWith(t, name, opts, st)
		firstDiff(t, name+": warm store, workers=1 vs 8", cold, warmParallel)
	}
}

// TestFullRunBuildsEachArtifactOnce is the acceptance check for the
// artifact store: an -exp all style run over one shared store builds
// each distinct (dataset, scale, blocking, scheme, seed) artifact
// exactly once — eight datasets, four stage artifacts each — and a
// second full run is served entirely from cache with byte-identical
// output (modulo the Table 3 runtime column, which is wall-clock and
// masked here exactly as the golden comparison masks it).
func TestFullRunBuildsEachArtifactOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep too slow for -short")
	}
	st := pipeline.NewStore()
	renderAll := func() string {
		var buf bytes.Buffer
		for _, name := range Names() {
			out := renderWith(t, name, tiny(), st)
			if name == "table2" {
				out = maskRuntimes(out)
			}
			buf.WriteString(out)
		}
		return buf.String()
	}
	cold := renderAll()
	stats := st.Stats()
	if want := int64(8 * distinctArtifacts); stats.Misses != want {
		t.Errorf("full run built %d artifacts, want exactly %d (one per distinct domain stage)",
			stats.Misses, want)
	}
	warm := renderAll()
	warmStats := st.Stats()
	if warmStats.Misses != stats.Misses {
		t.Errorf("warm full run rebuilt %d artifacts", warmStats.Misses-stats.Misses)
	}
	firstDiff(t, "full run: cold vs warm store", cold, warm)
}
