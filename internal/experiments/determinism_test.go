package experiments

import (
	"bytes"
	"runtime"
	"testing"
)

// renderAt renders one experiment with a fixed worker count.
func renderAt(t *testing.T, name string, opts Options, workers int) string {
	t.Helper()
	opts.Workers = workers
	var buf bytes.Buffer
	if err := RenderExperiment(&buf, name, opts); err != nil {
		t.Fatalf("%s (workers=%d): %v", name, workers, err)
	}
	return buf.String()
}

// firstDiff reports the first differing line of two renderings.
func firstDiff(t *testing.T, label, a, b string) {
	t.Helper()
	if a == b {
		return
	}
	al := bytes.Split([]byte(a), []byte("\n"))
	bl := bytes.Split([]byte(b), []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			t.Fatalf("%s: line %d differs:\n  %q\n  %q", label, i+1, al[i], bl[i])
		}
	}
	t.Fatalf("%s: outputs differ in length (%d vs %d lines)", label, len(al), len(bl))
}

// TestRenderIdenticalAcrossWorkerCounts is the experiment-harness
// determinism guarantee of this package: rendered output is a pure
// function of (experiment, scale, seed) — the worker count and the
// scheduler's thread budget must never leak into it.
func TestRenderIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, name := range []string{"table1", "figure2", "figure5"} {
		serial := renderAt(t, name, tiny(), 1)
		firstDiff(t, name+": workers=1 vs 8", serial, renderAt(t, name, tiny(), 8))

		old := runtime.GOMAXPROCS(1)
		oversub := renderAt(t, name, tiny(), 8)
		runtime.GOMAXPROCS(old)
		firstDiff(t, name+": workers=8 under GOMAXPROCS=1", serial, oversub)
	}
}

// TestTable2QualityIdenticalAcrossWorkers pins the (task, method)
// fan-out of the method comparison grid: every quality cell must land
// in the same slot with the same value regardless of scheduling. Only
// the runtime columns (wall clock) may vary, so the quality table
// alone is compared.
func TestTable2QualityIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("method grid too slow for -short")
	}
	quality := func(workers int) string {
		opts := tiny()
		opts.Workers = workers
		res, err := Table2(opts)
		if err != nil {
			t.Fatalf("Table2(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		res.QualityTable().Render(&buf)
		return buf.String()
	}
	serial := quality(1)
	firstDiff(t, "table2 quality: workers=1 vs 8", serial, quality(8))
}

// TestSweepsIdenticalAcrossWorkers pins the flattened sweep grids
// (figure 6's label fractions): per-cell seeds derived from (Seed,
// fraction) rather than shared RNG state keep the rows bitwise stable.
func TestSweepsIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep grid too slow for -short")
	}
	render := func(workers int) string {
		opts := tiny()
		opts.Workers = workers
		rows, err := Figure6(opts)
		if err != nil {
			t.Fatalf("Figure6(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		SweepTable("fig6", rows).Render(&buf)
		return buf.String()
	}
	serial := render(1)
	firstDiff(t, "figure6: workers=1 vs 8", serial, render(8))
}
