package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"transer/internal/core"
	"transer/internal/eval"
	"transer/internal/parallel"
	"transer/internal/pipeline"
	"transer/internal/transfer"
)

// MethodRow is one (task, method) result of the Table 2/3 sweep.
type MethodRow struct {
	Task    string
	Method  string
	Quality eval.MetricsAggregate
	// Runtime is the mean wall-clock per classifier run (Table 3).
	Runtime time.Duration
	// Err records methods that failed on this task (reported like the
	// paper's ME/TE entries).
	Err error
}

// Table2Result bundles the full quality/runtime sweep.
type Table2Result struct {
	Rows []MethodRow
	// Sizes records |X^S| and |X^T| per task (Table 3's size columns).
	Sizes map[string][2]int
}

// ErrResourceLimit marks runs skipped for the same reason the paper
// reports 'TE'/'ME' entries: the method cannot complete the task within
// reasonable resources. Rendered as "TE" in tables.
var ErrResourceLimit = errors.New("experiments: resource limit (paper: TE/ME)")

// methods returns the evaluated method set in paper order. Only
// TransER consumes the SEL mode; the baselines never touch the
// selector, so their cells are identical across modes by construction.
func methods(opts Options) []transfer.Method {
	ms := []transfer.Method{
		transfer.TransER{Config: core.Config{SELMode: opts.SELMode, SELCache: opts.selCache}},
		transfer.Naive{},
	}
	if !opts.SkipSlow {
		ms = append(ms, transfer.DTAL{Seed: opts.Seed, Epochs: 25})
	}
	ms = append(ms,
		transfer.DR{Seed: opts.Seed},
		transfer.LocIT{Seed: opts.Seed},
		transfer.TCA{Seed: opts.Seed},
		transfer.Coral{},
	)
	return ms
}

// singleRunMethods carry their own model and ignore the downstream
// classifier, so the four-classifier protocol degenerates to one run.
func singleRun(m transfer.Method) bool { return m.Name() == "DTAL*" }

// demographicTask reports whether the task uses the large certificate
// data, where the paper's deep baseline exceeded its 72 h budget.
func demographicTask(name string) bool {
	return strings.Contains(name, "Bp-")
}

// Table2 runs every method on every source→target task of the paper's
// Table 2 and aggregates quality over the standard classifiers;
// runtimes feed Table 3.
//
// The (task, method) cells are independent, so they fan out over
// opts.Workers goroutines; each cell writes to its pre-assigned row
// slot, keeping the row order and every quality number identical to a
// serial run. Only the Table 3 wall-clock column varies, as it always
// has. Methods carry no mutable state (Run reads the shared task and
// seeds its own randomness from the method's fixed Seed), so sharing
// a builtTask across cells is safe.
func Table2(opts Options) (*Table2Result, error) {
	opts = opts.withDefaults()
	st := opts.store()
	tasks := pipeline.PaperTaskRefs()
	built := parallel.Map(opts.Workers, len(tasks), func(i int) builtTask {
		return buildTask(st, tasks[i], opts)
	})
	ms := methods(opts)
	res := &Table2Result{
		Rows:  make([]MethodRow, len(built)*len(ms)),
		Sizes: map[string][2]int{},
	}
	for _, bt := range built {
		res.Sizes[bt.name] = [2]int{len(bt.task.XS), len(bt.task.XT)}
	}
	expSpan := opts.parentSpan()
	parallel.ForEach(opts.Workers, len(res.Rows), func(cell int) {
		bt := built[cell/len(ms)]
		m := ms[cell%len(ms)]
		cls := opts.Classifiers
		if singleRun(m) {
			if demographicTask(bt.name) {
				// The paper's DTAL* exceeded the 72 h budget on the
				// demographic tasks; mirror its 'TE' entries rather
				// than spending hours on an expected non-result.
				res.Rows[cell] = MethodRow{
					Task: bt.name, Method: m.Name(), Err: ErrResourceLimit}
				return
			}
			cls = cls[:1]
		}
		sp := expSpan.Child("cell:" + bt.name + "/" + m.Name())
		q, rt, err := evaluateMethod(m, bt, cls, sp)
		sp.End()
		res.Rows[cell] = MethodRow{Task: bt.name, Method: m.Name(), Quality: q,
			Runtime: rt / time.Duration(len(cls)), Err: err}
	})
	return res, nil
}

// QualityTable renders the Table 2 layout (P/R/F*/F1 per task and
// method).
func (r *Table2Result) QualityTable() *Table {
	methodsSeen := orderedMethods(r.Rows)
	t := &Table{
		Caption: "Table 2: linkage quality (mean ± std over classifiers)",
		Header:  append([]string{"Source -> Target", "Measure"}, methodsSeen...),
	}
	byTask := map[string]map[string]MethodRow{}
	var taskOrder []string
	for _, row := range r.Rows {
		if byTask[row.Task] == nil {
			byTask[row.Task] = map[string]MethodRow{}
			taskOrder = append(taskOrder, row.Task)
		}
		byTask[row.Task][row.Method] = row
	}
	measures := []struct {
		name string
		get  func(eval.MetricsAggregate) eval.Aggregate
	}{
		{"P", func(a eval.MetricsAggregate) eval.Aggregate { return a.Precision }},
		{"R", func(a eval.MetricsAggregate) eval.Aggregate { return a.Recall }},
		{"F*", func(a eval.MetricsAggregate) eval.Aggregate { return a.FStar }},
		{"F1", func(a eval.MetricsAggregate) eval.Aggregate { return a.F1 }},
	}
	for _, task := range taskOrder {
		for _, meas := range measures {
			row := []string{task, meas.name}
			for _, m := range methodsSeen {
				mr, ok := byTask[task][m]
				switch {
				case !ok:
					row = append(row, "-")
				case errors.Is(mr.Err, ErrResourceLimit):
					row = append(row, "TE")
				case mr.Err != nil:
					row = append(row, "ERR")
				default:
					row = append(row, agg(meas.get(mr.Quality)))
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	// Per-method averages over tasks (the paper's Averages block).
	for _, meas := range measures {
		row := []string{"Averages", meas.name}
		for _, m := range methodsSeen {
			var vals []float64
			for _, r2 := range r.Rows {
				if r2.Method == m && r2.Err == nil {
					vals = append(vals, meas.get(r2.Quality).Mean)
				}
			}
			row = append(row, agg(eval.AggregateOf(vals)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RuntimeTable renders the Table 3 layout.
func (r *Table2Result) RuntimeTable() *Table {
	methodsSeen := orderedMethods(r.Rows)
	t := &Table{
		Caption: "Table 3: runtimes per task (mean seconds per classifier run)",
		Header:  append([]string{"Source -> Target", "|X_S|", "|X_T|"}, methodsSeen...),
	}
	byTask := map[string]map[string]MethodRow{}
	var taskOrder []string
	for _, row := range r.Rows {
		if byTask[row.Task] == nil {
			byTask[row.Task] = map[string]MethodRow{}
			taskOrder = append(taskOrder, row.Task)
		}
		byTask[row.Task][row.Method] = row
	}
	for _, task := range taskOrder {
		sz := r.Sizes[task]
		row := []string{task, fmt.Sprintf("%d", sz[0]), fmt.Sprintf("%d", sz[1])}
		for _, m := range methodsSeen {
			mr, ok := byTask[task][m]
			switch {
			case !ok:
				row = append(row, "-")
			case errors.Is(mr.Err, ErrResourceLimit):
				row = append(row, "TE")
			case mr.Err != nil:
				row = append(row, "ERR")
			default:
				row = append(row, fmt.Sprintf("%.2f", mr.Runtime.Seconds()))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// orderedMethods returns method names in first-appearance order.
func orderedMethods(rows []MethodRow) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range rows {
		if !seen[r.Method] {
			seen[r.Method] = true
			out = append(out, r.Method)
		}
	}
	return out
}
