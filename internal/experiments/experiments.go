// Package experiments regenerates every table and figure of the
// paper's evaluation section (Section 5) on the synthetic data set
// stand-ins. Each experiment returns a structured result and can
// render itself as text; cmd/experiments and the repository-level
// benchmarks are thin wrappers around this package.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"transer/internal/core"
	"transer/internal/datagen"
	"transer/internal/eval"
	"transer/internal/ml"
	"transer/internal/ml/forest"
	"transer/internal/ml/logreg"
	"transer/internal/ml/svm"
	"transer/internal/ml/tree"
	"transer/internal/obs"
	"transer/internal/pipeline"
	"transer/internal/sampling"
	"transer/internal/transfer"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies data set sizes; 0 means 0.5 (the laptop-scale
	// default whose local densities support the paper's default
	// thresholds; see DESIGN.md).
	Scale float64
	// Seed drives all stochastic components.
	Seed int64
	// Classifiers is the set quality results are averaged over; nil
	// means the paper's four (SVM, RF, LR, DT).
	Classifiers []ml.Named
	// SkipSlow drops the slowest baselines (DTAL*) from large tasks,
	// mirroring the paper's 'TE' entries without burning hours.
	SkipSlow bool
	// SELMode selects TransER's SEL engine (core.SELMode* constants;
	// "" = the default exact fast path). Exact modes render
	// byte-identical tables — the golden-gate suite enforces it — so
	// this knob exists for benchmarking the engines against each other
	// and for opting into approximate selection.
	SELMode string
	// Workers bounds the goroutines used for feature-matrix
	// construction and for fanning out independent experiment grid
	// cells; 0 means one per CPU, 1 forces serial execution. Every
	// deterministic output (all quality numbers, counts, and rendered
	// tables except wall-clock columns) is byte-identical for every
	// worker count: cells write to pre-sized index-addressed slots and
	// all randomness is seeded per cell, never shared.
	Workers int
	// Store memoizes domain-construction artifacts (generated data,
	// candidate pairs, feature matrices, labels). Sharing one store
	// across experiments builds each distinct domain exactly once for
	// the whole run; nil gives each experiment call its own store.
	// Cached artifacts are byte-identical to rebuilt ones, so results
	// never depend on the store's temperature or hit order.
	Store *pipeline.Store
	// Obs, when non-nil, records hierarchical spans (experiment →
	// grid cell → classifier → TransER phase) and metrics for the run.
	// Instrumentation is purely observational: every rendered byte is
	// identical with Obs set or nil, and the nil path costs nothing.
	Obs *obs.Tracer

	// span is the experiment-level span cell spans attach to, set by
	// RunExperiment; direct experiment calls fall back to the tracer
	// root.
	span *obs.Span

	// selCache memoizes SEL selections across the experiment's grid
	// cells: the grid re-runs TransER once per classifier over the
	// same task, so every cell after the first hits the cache.
	// withDefaults creates one per experiment call for every engine
	// except the reference one, which reproduces the seed behavior
	// verbatim — recomputation included — so benchmarks against it
	// measure the real baseline cost (DESIGN.md §10).
	selCache *core.SelectionCache
}

// store resolves the artifact store an experiment call uses.
func (o Options) store() *pipeline.Store {
	if o.Store != nil {
		return o.Store
	}
	st := pipeline.NewStore()
	st.Instrument(o.Obs)
	return st
}

// parentSpan resolves the span grid cells nest under.
func (o Options) parentSpan() *obs.Span {
	if o.span != nil {
		return o.span
	}
	return o.Obs.Root()
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.5
	}
	if o.Classifiers == nil {
		o.Classifiers = StandardClassifiers(o.Seed + 1)
	}
	if o.selCache == nil && o.SELMode != core.SELModeReference {
		o.selCache = core.NewSelectionCache()
	}
	return o
}

// StandardClassifiers mirrors the paper's classifier set.
func StandardClassifiers(seed int64) []ml.Named {
	return []ml.Named{
		{Name: "svm", New: svm.Factory(svm.Config{Seed: seed})},
		{Name: "rf", New: forest.Factory(forest.Config{Seed: seed})},
		{Name: "logreg", New: logreg.Factory(logreg.Config{})},
		{Name: "dtree", New: tree.Factory(tree.Config{Seed: seed})},
	}
}

// builtTask is a blocked+compared transfer task with ground truth.
type builtTask struct {
	name   string
	task   *transfer.Task
	truthT []int
}

// buildTask assembles the transfer.Task for one task ref, fetching
// both domains through the artifact store. Source and target domains
// are shared, read-only artifacts: the same dataset may back several
// tasks (and both roles) without being rebuilt.
func buildTask(st *pipeline.Store, ref pipeline.TaskRef, opts Options) builtTask {
	src := buildDomain(st, ref.Source, opts)
	tgt := buildDomain(st, ref.Target, opts)
	return taskOf(ref.Name(), src, tgt)
}

// taskOf wires two built domains into a transfer task.
func taskOf(name string, src, tgt *pipeline.Domain) builtTask {
	return builtTask{
		name: name,
		task: &transfer.Task{
			XS: src.X, YS: src.Y, XT: tgt.X,
			SourceA: src.A, SourceB: src.B,
			TargetA: tgt.A, TargetB: tgt.B,
			SourcePairs: src.Pairs, TargetPairs: tgt.Pairs,
		},
		truthT: tgt.Y,
	}
}

// Rendering helpers ---------------------------------------------------------

// Table is a generic text table with a caption.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "%s\n", t.Caption)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func agg(a eval.Aggregate) string {
	return fmt.Sprintf("%.2f ± %.2f", a.Mean, a.Std)
}

// evaluateMethod runs one method over the classifier set under the
// given cell span (nil when tracing is off) and aggregates quality and
// runtime. Each classifier run gets a child span; TransER runs
// additionally record their SEL/GEN/TCL phases under it.
func evaluateMethod(m transfer.Method, bt builtTask, classifiers []ml.Named, sp *obs.Span) (eval.MetricsAggregate, time.Duration, error) {
	var runs []eval.Metrics
	start := time.Now()
	for _, c := range classifiers {
		cs := sp.Child("classifier:" + c.Name)
		run := m
		if te, ok := m.(transfer.TransER); ok {
			te.Config.Obs = cs
			run = te
		}
		res, err := run.Run(bt.task, c.New)
		cs.End()
		if err != nil {
			return eval.MetricsAggregate{}, 0, fmt.Errorf("%s with %s on %s: %w", m.Name(), c.Name, bt.name, err)
		}
		runs = append(runs, eval.Evaluate(res.Labels, bt.truthT))
	}
	return eval.AggregateMetrics(runs), time.Since(start), nil
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// transERMethod builds the TransER method with the given config.
func transERMethod(cfg core.Config) transfer.Method {
	return transfer.TransER{Config: cfg}
}

// labelFractionTask subsets the source labels of a task, implementing
// the Figure 6 protocol (only a fraction of the source is labelled).
func labelFractionTask(bt builtTask, frac float64, seed int64) builtTask {
	xs, ys := sampling.StratifiedFraction(bt.task.XS, bt.task.YS, frac, seed)
	cp := *bt.task
	cp.XS = xs
	cp.YS = ys
	// The raw source pair list no longer aligns with XS after
	// subsetting; methods that need it (DR) are not used in Figure 6.
	cp.SourcePairs = nil
	cp.SourceA, cp.SourceB = nil, nil
	out := bt
	out.task = &cp
	return out
}

// buildGeneratedTask assembles the transfer.Task for an already
// generated task (no memoization — the path for caller-supplied data).
func buildGeneratedTask(t datagen.TransferTask, workers int) builtTask {
	src := pipeline.BuildPair(t.Source, workers)
	tgt := pipeline.BuildPair(t.Target, workers)
	return taskOf(t.Name(), src, tgt)
}

// BuildTaskForProbe exposes task assembly for internal diagnostics.
func BuildTaskForProbe(t datagen.TransferTask) *transfer.Task {
	return buildGeneratedTask(t, 0).task
}

// TruthForProbe exposes target ground truth for internal diagnostics.
func TruthForProbe(t datagen.TransferTask) []int {
	return buildGeneratedTask(t, 0).truthT
}
