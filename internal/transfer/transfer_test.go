package transfer

import (
	"math/rand"
	"testing"

	"transer/internal/linalg"

	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/datagen"
	"transer/internal/dataset"
	"transer/internal/ml"
	"transer/internal/ml/mltest"
	"transer/internal/ml/tree"
)

// blobTask builds a feature-space-only Task from shifted blobs.
func blobTask(nS, nT int, shift float64, seed int64) (*Task, []int) {
	rng := rand.New(rand.NewSource(seed))
	gen := func(n int, offset float64) ([][]float64, []int) {
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			label := i % 2
			centre := 0.2
			if label == 1 {
				centre = 0.8
			}
			row := make([]float64, 4)
			for j := range row {
				v := centre + offset + rng.NormFloat64()*0.08
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				row[j] = v
			}
			x[i] = row
			y[i] = label
		}
		return x, y
	}
	xs, ys := gen(nS, 0)
	xt, yt := gen(nT, shift)
	return &Task{XS: xs, YS: ys, XT: xt}, yt
}

// domainTask builds a full Task (with raw databases) from two
// generated domain pairs, as the experiment harness does.
func domainTask(src, tgt datagen.DomainPair) (*Task, []int) {
	schemeS := compare.DefaultScheme(src.A.Schema)
	schemeT := compare.DefaultScheme(tgt.A.Schema)
	sp := blocking.CandidatePairs(src.A, src.B, blocking.MinHashConfig{Seed: 1})
	tp := blocking.CandidatePairs(tgt.A, tgt.B, blocking.MinHashConfig{Seed: 1})
	xs := schemeS.Matrix(src.A, src.B, sp)
	xt := schemeT.Matrix(tgt.A, tgt.B, tp)
	ys := dataset.LabelPairs(sp, src.Truth())
	yt := dataset.LabelPairs(tp, tgt.Truth())
	return &Task{
		XS: xs, YS: ys, XT: xt,
		SourceA: src.A, SourceB: src.B, TargetA: tgt.A, TargetB: tgt.B,
		SourcePairs: sp, TargetPairs: tp,
	}, yt
}

func factory() ml.Factory { return tree.Factory(tree.Config{Seed: 1}) }

func TestTaskValidate(t *testing.T) {
	task, _ := blobTask(50, 40, 0, 1)
	if err := task.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	bad := &Task{}
	if err := bad.Validate(); err == nil {
		t.Errorf("empty task accepted")
	}
	bad = &Task{XS: task.XS, YS: task.YS[:1], XT: task.XT}
	if err := bad.Validate(); err == nil {
		t.Errorf("label mismatch accepted")
	}
	bad = &Task{XS: task.XS, YS: task.YS, XT: [][]float64{{1}}}
	if err := bad.Validate(); err == nil {
		t.Errorf("dimension mismatch accepted")
	}
}

func TestNaive(t *testing.T) {
	task, yt := blobTask(300, 200, 0.05, 2)
	res, err := Naive{}.Run(task, factory())
	if err != nil {
		t.Fatalf("Naive: %v", err)
	}
	if len(res.Labels) != len(task.XT) {
		t.Fatalf("output size %d", len(res.Labels))
	}
	if acc := mltest.Accuracy(res.Proba, yt); acc < 0.9 {
		t.Errorf("naive accuracy %.3f under small shift", acc)
	}
}

func TestCoral(t *testing.T) {
	task, yt := blobTask(300, 200, 0.1, 3)
	res, err := Coral{}.Run(task, factory())
	if err != nil {
		t.Fatalf("Coral: %v", err)
	}
	if acc := mltest.Accuracy(res.Proba, yt); acc < 0.8 {
		t.Errorf("coral accuracy %.3f", acc)
	}
}

func TestTCA(t *testing.T) {
	task, yt := blobTask(200, 150, 0.08, 4)
	res, err := TCA{MaxLandmarks: 80, Seed: 4}.Run(task, factory())
	if err != nil {
		t.Fatalf("TCA: %v", err)
	}
	if len(res.Labels) != len(task.XT) {
		t.Fatalf("output size %d", len(res.Labels))
	}
	// TCA on clean well-separated blobs should still classify decently.
	if acc := mltest.Accuracy(res.Proba, yt); acc < 0.7 {
		t.Errorf("TCA accuracy %.3f", acc)
	}
}

func TestLocIT(t *testing.T) {
	task, _ := blobTask(300, 250, 0.05, 5)
	res, err := LocIT{Seed: 5}.Run(task, factory())
	if err != nil {
		t.Fatalf("LocIT: %v", err)
	}
	if len(res.Labels) != len(task.XT) {
		t.Fatalf("output size %d", len(res.Labels))
	}
}

func TestDTAL(t *testing.T) {
	task, yt := blobTask(300, 200, 0.08, 6)
	res, err := DTAL{Epochs: 30, Seed: 6}.Run(task, factory())
	if err != nil {
		t.Fatalf("DTAL: %v", err)
	}
	if acc := mltest.Accuracy(res.Proba, yt); acc < 0.8 {
		t.Errorf("DTAL accuracy %.3f on easy blobs", acc)
	}
}

func TestDRRequiresRawData(t *testing.T) {
	task, _ := blobTask(50, 40, 0, 7)
	if _, err := (DR{}).Run(task, factory()); err == nil {
		t.Errorf("DR without raw databases accepted")
	}
}

func TestDROnDomainTask(t *testing.T) {
	task, _ := domainTask(datagen.DBLPACM(0.06), datagen.DBLPScholar(0.06))
	res, err := DR{Seed: 8}.Run(task, factory())
	if err != nil {
		t.Fatalf("DR: %v", err)
	}
	if len(res.Labels) != len(task.XT) {
		t.Fatalf("output size %d", len(res.Labels))
	}
}

func TestTransERMethod(t *testing.T) {
	task, yt := blobTask(400, 300, 0.08, 9)
	res, err := TransER{}.Run(task, factory())
	if err != nil {
		t.Fatalf("TransER: %v", err)
	}
	if acc := mltest.Accuracy(res.Proba, yt); acc < 0.9 {
		t.Errorf("TransER accuracy %.3f", acc)
	}
}

func TestAllMethodsOnRealisticTask(t *testing.T) {
	if testing.Short() {
		t.Skip("full method sweep in -short mode")
	}
	task, yt := domainTask(datagen.DBLPACM(0.08), datagen.DBLPScholar(0.08))
	methods := []Method{
		TransER{}, Naive{}, Coral{},
		TCA{MaxLandmarks: 100, Seed: 1},
		LocIT{Seed: 1}, DR{Seed: 1},
		DTAL{Epochs: 15, Seed: 1},
	}
	for _, m := range methods {
		res, err := m.Run(task, factory())
		if err != nil {
			t.Errorf("%s failed: %v", m.Name(), err)
			continue
		}
		if len(res.Labels) != len(task.XT) || len(res.Proba) != len(task.XT) {
			t.Errorf("%s produced wrong output size", m.Name())
		}
		acc := mltest.Accuracy(res.Proba, yt)
		t.Logf("%-8s accuracy %.3f", m.Name(), acc)
	}
}

func TestMethodNames(t *testing.T) {
	names := map[string]Method{
		"TransER": TransER{}, "Naive": Naive{}, "Coral": Coral{},
		"TCA": TCA{}, "LocIT*": LocIT{}, "DR": DR{}, "DTAL*": DTAL{},
	}
	for want, m := range names {
		if m.Name() != want {
			t.Errorf("Name() = %q, want %q", m.Name(), want)
		}
	}
}

func TestCoralAlignsCovariance(t *testing.T) {
	// After CORAL's alignment the transformed source covariance should
	// be closer to the target covariance than the raw source was.
	task, _ := blobTask(400, 400, 0.15, 20)
	// Stretch the source along one axis to create a covariance gap.
	for _, row := range task.XS {
		row[0] = 0.5 + (row[0]-0.5)*1.8
		if row[0] < 0 {
			row[0] = 0
		} else if row[0] > 1 {
			row[0] = 1
		}
	}
	covGap := func(x [][]float64) float64 {
		cs := linalg.Covariance(linalg.FromRows(x), 0)
		ct := linalg.Covariance(linalg.FromRows(task.XT), 0)
		return cs.Sub(ct).FrobeniusNorm()
	}
	before := covGap(task.XS)

	ridge := 1.0
	xs := linalg.FromRows(task.XS)
	covS := linalg.Covariance(xs, ridge)
	covT := linalg.Covariance(linalg.FromRows(task.XT), ridge)
	align := linalg.SymPow(covS, -0.5, 1e-9).Mul(linalg.SymPow(covT, 0.5, 1e-9))
	alignedRows := xs.Mul(align)
	aligned := make([][]float64, alignedRows.Rows)
	for i := range aligned {
		aligned[i] = alignedRows.Row(i)
	}
	after := covGap(aligned)
	if after >= before {
		t.Errorf("CORAL alignment did not reduce covariance gap: %.4f -> %.4f", before, after)
	}
}

func TestTCADeterministicWithSeed(t *testing.T) {
	task, _ := blobTask(150, 120, 0.05, 21)
	run := func() []float64 {
		res, err := TCA{MaxLandmarks: 60, Seed: 5}.Run(task, factory())
		if err != nil {
			t.Fatal(err)
		}
		return res.Proba
	}
	p1, p2 := run(), run()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("TCA not deterministic at %d", i)
		}
	}
}

func TestDTALIgnoresFactory(t *testing.T) {
	task, _ := blobTask(120, 100, 0.05, 22)
	res, err := DTAL{Epochs: 10, Seed: 3}.Run(task, nil)
	if err != nil {
		t.Fatalf("DTAL should not need a classifier factory: %v", err)
	}
	if len(res.Labels) != len(task.XT) {
		t.Errorf("wrong output size")
	}
}

func TestResampleWeighted(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []int{0, 1, 0}
	// All weight on row 1.
	rx, ry := resampleWeighted(x, y, []float64{0, 1, 0}, 1)
	for i := range rx {
		if rx[i][0] != 1 || ry[i] != 1 {
			t.Fatalf("weighted resampling ignored weights: %v %v", rx[i], ry[i])
		}
	}
	// Zero weights fall back to the original data.
	rx, _ = resampleWeighted(x, y, []float64{0, 0, 0}, 1)
	if len(rx) != 3 || rx[2][0] != 2 {
		t.Errorf("zero-weight fallback broken")
	}
}
