package transfer

import "testing"

// TestDTALSeedDeterminism: DTAL's adversarial training is stochastic,
// so it must be a pure function of its seed — same seed, same output.
func TestDTALSeedDeterminism(t *testing.T) {
	task, _ := blobTask(100, 50, 0.05, 41)
	m := DTAL{Epochs: 4, Hidden: 6, Seed: 9}
	a, err := m.Run(task, factory())
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := m.Run(task, factory())
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	for i := range a.Proba {
		if a.Proba[i] != b.Proba[i] {
			t.Fatalf("row %d: %v vs %v across identically seeded runs", i, a.Proba[i], b.Proba[i])
		}
	}
}

// TestDTALLearnsSeparableTask: on a cleanly separable problem with no
// shift, the default adversarial training budget must beat coin
// flipping by a wide margin.
func TestDTALLearnsSeparableTask(t *testing.T) {
	task, yt := blobTask(200, 100, 0, 42)
	res, err := DTAL{Seed: 1}.Run(task, factory())
	if err != nil {
		t.Fatalf("DTAL: %v", err)
	}
	if acc := accuracy(res.Labels, yt); acc < 0.8 {
		t.Fatalf("accuracy %v on separable blobs; want >= 0.8", acc)
	}
}
