package transfer

import (
	"math"
	"math/rand"

	"transer/internal/kdtree"
	"transer/internal/ml"
	"transer/internal/ml/svm"
)

// LocIT implements the instance-selection part of Localized Instance
// Transfer (Vercruyssen, Meert, Davis 2020), adapted to ER as the
// paper's LocIT* baseline: a supervised transfer classifier is trained
// on the target domain's own neighbourhood structure and then decides
// which source instances to transfer; a downstream ER classifier is
// trained on the selected instances.
//
// Training pairs are built from target instances: for a target point v
// the pair (v, kNN(v)) is a positive "fits this local distribution"
// example, and (v, kNN(w)) for a distant point w is a negative one.
// Each pair is described by the location distance between the point
// and the neighbourhood centroid and by the Frobenius distance between
// the neighbourhood covariances — LocIT's features. A source instance
// is transferred when the classifier accepts (x_s, kNN_target(x_s)).
//
// As in the paper, the method's anomaly-detection assumptions (distant
// instances are never transferable) make it collapse on ER data —
// sometimes selecting nothing, which yields the all-non-match 0.00
// rows of Table 2.
type LocIT struct {
	// K is the neighbourhood size; 0 means 7.
	K int
	// MaxTrainPoints bounds the pair-generation work; 0 means 400.
	MaxTrainPoints int
	// Seed drives subsampling.
	Seed int64
}

// Name implements Method.
func (LocIT) Name() string { return "LocIT*" }

// pairFeatures describes (point, neighbourhood) by LocIT's two
// locality statistics.
func pairFeatures(x []float64, nbr []kdtree.Neighbour, points [][]float64) []float64 {
	dim := len(x)
	c := kdtree.Centroid(points, nbr, dim)
	loc := kdtree.Dist(x, c)
	// Covariance of the neighbourhood vs covariance of the
	// neighbourhood re-centred on x: captures how well x sits inside
	// the local spread.
	covN := cov(points, nbr, c)
	covX := cov(points, nbr, x)
	d := 0.0
	for i := range covN {
		diff := covN[i] - covX[i]
		d += diff * diff
	}
	return []float64{loc, math.Sqrt(d)}
}

func cov(points [][]float64, nbr []kdtree.Neighbour, centre []float64) []float64 {
	dim := len(centre)
	out := make([]float64, dim*dim)
	if len(nbr) == 0 {
		return out
	}
	for _, n := range nbr {
		p := points[n.ID]
		for a := 0; a < dim; a++ {
			da := p[a] - centre[a]
			for b := 0; b < dim; b++ {
				out[a*dim+b] += da * (p[b] - centre[b])
			}
		}
	}
	inv := 1 / float64(len(nbr))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Run implements Method.
func (c LocIT) Run(t *Task, factory ml.Factory) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	k := c.K
	if k == 0 {
		k = 7
	}
	maxPts := c.MaxTrainPoints
	if maxPts == 0 {
		maxPts = 400
	}
	rng := rand.New(rand.NewSource(c.Seed))
	tree := kdtree.Build(t.XT)

	// Build the transfer classifier's training set from the target.
	idx := subsample(rng, len(t.XT), maxPts)
	var fx [][]float64
	var fy []int
	for _, i := range idx {
		v := t.XT[i]
		own := tree.KNN(v, k, func(id int) bool { return id == i })
		if len(own) == 0 {
			continue
		}
		fx = append(fx, pairFeatures(v, own, t.XT))
		fy = append(fy, 1)
		// Negative: the neighbourhood of the farthest point in a random
		// probe set.
		far := i
		farDist := -1.0
		for probe := 0; probe < 10; probe++ {
			j := rng.Intn(len(t.XT))
			if d := kdtree.Dist(v, t.XT[j]); d > farDist {
				farDist = d
				far = j
			}
		}
		farNbr := tree.KNN(t.XT[far], k, func(id int) bool { return id == far })
		if len(farNbr) == 0 {
			continue
		}
		fx = append(fx, pairFeatures(v, farNbr, t.XT))
		fy = append(fy, 0)
	}
	if len(fx) == 0 {
		return allZero(len(t.XT)), nil
	}
	sel, err := ml.FitWithFallback(func() ml.Classifier {
		return svm.New(svm.Config{Seed: c.Seed})
	}, fx, fy)
	if err != nil {
		return nil, err
	}

	// Score each source instance against its target neighbourhood.
	var selX [][]float64
	var selY []int
	srcFeats := make([][]float64, 0, len(t.XS))
	for _, x := range t.XS {
		nbr := tree.KNN(x, k, nil)
		srcFeats = append(srcFeats, pairFeatures(x, nbr, t.XT))
	}
	proba := sel.PredictProba(srcFeats)
	for i, p := range proba {
		if p >= 0.5 {
			selX = append(selX, t.XS[i])
			selY = append(selY, t.YS[i])
		}
	}
	if len(selX) == 0 || allSameInt(selY) {
		// Selection collapsed — the degenerate 0.00 outcome.
		return allZero(len(t.XT)), nil
	}
	clf, err := ml.FitWithFallback(factory, selX, selY)
	if err != nil {
		return nil, err
	}
	return resultFromProba(clf.PredictProba(t.XT)), nil
}

func allSameInt(y []int) bool {
	if len(y) == 0 {
		return true
	}
	for _, v := range y[1:] {
		if v != y[0] {
			return false
		}
	}
	return true
}
