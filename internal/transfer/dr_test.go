package transfer

import (
	"strings"
	"testing"

	"transer/internal/datagen"
)

// TestDRMisalignedPairsError: DR re-embeds raw record pairs, so pair
// lists that do not line up with the feature matrices must be rejected
// before any embedding work happens.
func TestDRMisalignedPairsError(t *testing.T) {
	src := datagen.DBLPACM(0.05)
	tgt := datagen.DBLPScholar(0.05)
	task, _ := domainTask(src, tgt)
	task.SourcePairs = task.SourcePairs[:len(task.SourcePairs)-1]
	_, err := DR{}.Run(task, factory())
	if err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Fatalf("misaligned pairs returned %v, want a misalignment error", err)
	}
}

// TestDRSeedDeterminism: hashing embeddings and density-ratio
// resampling are both seeded; two runs with the same seed must agree
// bitwise.
func TestDRSeedDeterminism(t *testing.T) {
	src := datagen.DBLPACM(0.05)
	tgt := datagen.DBLPScholar(0.05)
	task, _ := domainTask(src, tgt)
	m := DR{Seed: 5}
	a, err := m.Run(task, factory())
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := m.Run(task, factory())
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	for i := range a.Proba {
		if a.Proba[i] != b.Proba[i] {
			t.Fatalf("row %d: %v vs %v across identically seeded runs", i, a.Proba[i], b.Proba[i])
		}
	}
}
