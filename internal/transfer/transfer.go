// Package transfer implements the six baselines the paper compares
// TransER against (Section 5.1.3): Naive, DTAL*, DR, LocIT*, TCA, and
// CORAL — plus the shared Task abstraction they all consume and a
// TransER adapter so the experiment harness can treat every method
// uniformly.
package transfer

import (
	"errors"
	"fmt"

	"transer/internal/dataset"
	"transer/internal/ml"
)

// Task bundles everything a transfer method may need for one
// source→target run: the feature matrices (all methods), and the
// underlying databases and candidate pairs (the DR baseline re-embeds
// raw attribute values).
type Task struct {
	// XS, YS are the labelled source feature matrix.
	XS [][]float64
	YS []int
	// XT is the unlabelled target feature matrix.
	XT [][]float64

	// SourceA/SourceB with SourcePairs and TargetA/TargetB with
	// TargetPairs identify the raw record pairs behind the rows of XS
	// and XT. They may be nil for methods that work purely in feature
	// space.
	SourceA, SourceB *dataset.Database
	TargetA, TargetB *dataset.Database
	SourcePairs      []dataset.Pair
	TargetPairs      []dataset.Pair
}

// Validate checks the feature-space invariants shared by all methods.
func (t *Task) Validate() error {
	if len(t.XS) == 0 {
		return errors.New("transfer: empty source feature matrix")
	}
	if len(t.XS) != len(t.YS) {
		return fmt.Errorf("transfer: %d source rows but %d labels", len(t.XS), len(t.YS))
	}
	if len(t.XT) == 0 {
		return errors.New("transfer: empty target feature matrix")
	}
	m := len(t.XS[0])
	for i, r := range t.XS {
		if len(r) != m {
			return fmt.Errorf("transfer: ragged source row %d", i)
		}
	}
	for i, r := range t.XT {
		if len(r) != m {
			return fmt.Errorf("transfer: target row %d has %d features, want %d", i, len(r), m)
		}
	}
	return nil
}

// Dim returns the feature dimensionality m.
func (t *Task) Dim() int {
	if len(t.XS) == 0 {
		return 0
	}
	return len(t.XS[0])
}

// Result is a transfer method's output on the target pairs.
type Result struct {
	// Labels are the predicted target labels (1 = match).
	Labels []int
	// Proba are match probabilities aligned with Labels.
	Proba []float64
	// Classifier is the trained classifier behind Proba, when the
	// method exposes one (TransER does; baselines with built-in or
	// transformed-feature-space models leave it nil). It enables model
	// export via internal/model.
	Classifier ml.Classifier
}

// Method is one transfer approach usable by the experiment harness.
type Method interface {
	// Name is the display name used in result tables.
	Name() string
	// Run labels the target instances of the task. The factory
	// supplies the downstream ER classifier for methods that train
	// one; methods with built-in models (DTAL*) ignore it.
	Run(t *Task, factory ml.Factory) (*Result, error)
}

// resultFromProba converts probabilities to a Result with 0.5
// thresholding.
func resultFromProba(proba []float64) *Result {
	return &Result{Labels: ml.Labels(proba, 0.5), Proba: proba}
}

// allZero returns a degenerate all-non-match result (used when a
// method's instance selection collapses, mirroring LocIT*'s 0.00
// entries in the paper's Table 2).
func allZero(n int) *Result {
	return &Result{Labels: make([]int, n), Proba: make([]float64, n)}
}
