package transfer

import (
	"strings"
	"testing"
)

// TestTCADegenerateLandmarkSplit: a landmark budget too small to cover
// both domains must be rejected with the documented error instead of
// silently solving a one-sided eigenproblem.
func TestTCADegenerateLandmarkSplit(t *testing.T) {
	task, _ := blobTask(40, 20, 0, 31)
	_, err := TCA{MaxLandmarks: 1}.Run(task, factory())
	if err == nil || !strings.Contains(err.Error(), "degenerate landmark split") {
		t.Fatalf("MaxLandmarks=1 returned %v, want a degenerate landmark split error", err)
	}
}

// TestTCALandmarkCapStillSolves: a landmark budget far below the data
// size must still produce a full, valid result — the Nyström subsample
// is a scalability device, not a correctness trade.
func TestTCALandmarkCapStillSolves(t *testing.T) {
	task, yt := blobTask(200, 100, 0.05, 32)
	res, err := TCA{MaxLandmarks: 16, Seed: 1}.Run(task, factory())
	if err != nil {
		t.Fatalf("TCA with 16 landmarks: %v", err)
	}
	if len(res.Labels) != len(task.XT) {
		t.Fatalf("%d labels for %d target rows", len(res.Labels), len(task.XT))
	}
	if acc := accuracy(res.Labels, yt); acc < 0.8 {
		t.Fatalf("accuracy %v with 16 landmarks on easy blobs; want >= 0.8", acc)
	}
}

// TestTCAComponentsCappedByDim: asking for more components than the
// feature dimensionality must not panic and must keep output sizes.
func TestTCAComponentsCappedByDim(t *testing.T) {
	task, _ := blobTask(60, 30, 0, 33)
	res, err := TCA{Components: 64, MaxLandmarks: 40, Seed: 1}.Run(task, factory())
	if err != nil {
		t.Fatalf("TCA with oversized Components: %v", err)
	}
	if len(res.Labels) != len(task.XT) || len(res.Proba) != len(task.XT) {
		t.Fatalf("output sizes %d/%d for %d target rows", len(res.Labels), len(res.Proba), len(task.XT))
	}
}
