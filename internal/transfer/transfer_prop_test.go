package transfer_test

// Differential-oracle suite: every feature-space transfer method is
// run on shared generated domains and checked against the invariants
// any correct implementation satisfies — output sizes, probability
// bounds, label/probability consistency at the 0.5 threshold, and
// run-to-run determinism. The raw-data DR baseline is covered by its
// own unit tests (dr_test.go), since it rejects feature-only tasks by
// design.

import (
	"testing"

	"transer/internal/ml/tree"
	"transer/internal/testkit"
	"transer/internal/testkit/oracle"
	"transer/internal/transfer"
)

// TestMethodsSatisfyOracle sweeps every method over shared random
// domains. Trials are few but each covers all methods on the same
// domain, which is the point of a differential check.
func TestMethodsSatisfyOracle(t *testing.T) {
	factory := tree.Factory(tree.Config{Seed: 1})
	testkit.Run(t, "transfer/differential-oracle", 4, func(pt *testkit.T) {
		d := testkit.NewDomain(pt.Rng, pt.Size)
		task := oracle.Task(d)
		for _, m := range oracle.Methods(7) {
			oracle.CheckMethod(pt, m, task, factory)
			if pt.Failed() {
				return
			}
		}
	})
}

// TestMethodsRejectInvalidTasks: every method must refuse a task whose
// feature-space invariants are broken rather than panic or emit a
// partial result.
func TestMethodsRejectInvalidTasks(t *testing.T) {
	bad := []*transfer.Task{
		{},                                   // empty everything
		{XS: [][]float64{{1}}, YS: []int{1}}, // no target
		{XS: [][]float64{{1}}, YS: []int{1, 0}, XT: [][]float64{{1}}},            // misaligned labels
		{XS: [][]float64{{1, 2}, {3}}, YS: []int{1, 0}, XT: [][]float64{{1, 2}}}, // ragged
	}
	factory := tree.Factory(tree.Config{Seed: 1})
	for _, m := range oracle.Methods(7) {
		for i, task := range bad {
			if _, err := m.Run(task, factory); err == nil {
				t.Errorf("%s accepted invalid task %d", m.Name(), i)
			}
		}
	}
}
