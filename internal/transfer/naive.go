package transfer

import "transer/internal/ml"

// Naive trains the supplied classifier on the full labelled source and
// applies it unchanged to the target — no transfer learning. It is the
// Magellan/Tamer-style baseline of the paper.
type Naive struct{}

// Name implements Method.
func (Naive) Name() string { return "Naive" }

// Run implements Method.
func (Naive) Run(t *Task, factory ml.Factory) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	c, err := ml.FitWithFallback(factory, t.XS, t.YS)
	if err != nil {
		return nil, err
	}
	return resultFromProba(c.PredictProba(t.XT)), nil
}
