package transfer

import (
	"transer/internal/ml"
	"transer/internal/ml/nn"
)

// DTAL implements the DTAL* baseline: the deep transfer component of
// Kasai et al. (2019) without the active-learning loop — a
// domain-adversarial neural network whose gradient reversal layer
// aligns source and target feature distributions while a label head
// learns the match decision from source labels.
//
// The original DTAL encodes raw attribute text with recurrent
// networks; this reproduction keeps its transfer mechanism (the
// adversarial alignment) but feeds it the same similarity feature
// vectors every other method consumes, since the claim under test is
// about the transfer behaviour on structured data, not the text
// encoder (see DESIGN.md Section 3). The supplied ER classifier
// factory is ignored: DTAL* carries its own model.
type DTAL struct {
	// Hidden is the encoder width; 0 means 16.
	Hidden int
	// Lambda is the gradient reversal coefficient; 0 means 0.5.
	Lambda float64
	// Epochs of adversarial training; 0 means 60.
	Epochs int
	// Seed drives the network initialisation and sampling.
	Seed int64
}

// Name implements Method.
func (DTAL) Name() string { return "DTAL*" }

// Run implements Method.
func (c DTAL) Run(t *Task, _ ml.Factory) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	d := nn.NewDANN(nn.DANNConfig{
		EncoderHidden: c.Hidden,
		Lambda:        c.Lambda,
		Epochs:        c.Epochs,
		Seed:          c.Seed,
	})
	if err := d.FitDomains(t.XS, t.YS, t.XT); err != nil {
		return nil, err
	}
	return resultFromProba(d.PredictProba(t.XT)), nil
}
