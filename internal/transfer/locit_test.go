package transfer

import "testing"

// TestLocITIdenticalDomains: when the source sits exactly on the
// target distribution, LocIT's locality test should accept enough
// instances to solve the easy blob problem.
func TestLocITIdenticalDomains(t *testing.T) {
	task, yt := blobTask(160, 80, 0, 51)
	res, err := LocIT{Seed: 1}.Run(task, factory())
	if err != nil {
		t.Fatalf("LocIT: %v", err)
	}
	if acc := accuracy(res.Labels, yt); acc < 0.8 {
		t.Fatalf("accuracy %v on identical domains; want >= 0.8", acc)
	}
}

// TestLocITTrainPointCapKeepsShape: a tight MaxTrainPoints budget must
// bound the work without breaking the output contract — even when the
// selection collapses to the all-non-match result.
func TestLocITTrainPointCapKeepsShape(t *testing.T) {
	task, _ := blobTask(100, 60, 0.2, 52)
	res, err := LocIT{MaxTrainPoints: 10, Seed: 3}.Run(task, factory())
	if err != nil {
		t.Fatalf("LocIT with 10 train points: %v", err)
	}
	if len(res.Labels) != len(task.XT) || len(res.Proba) != len(task.XT) {
		t.Fatalf("output sizes %d/%d for %d target rows", len(res.Labels), len(res.Proba), len(task.XT))
	}
	for i, p := range res.Proba {
		if p < 0 || p > 1 {
			t.Fatalf("row %d: probability %v outside [0,1]", i, p)
		}
	}
}
