package transfer

import (
	"errors"
	"math"
	"math/rand"

	"transer/internal/dataset"
	"transer/internal/embed"
	"transer/internal/kdtree"
	"transer/internal/ml"
)

// DR implements the Reuse-and-Adaptation baseline of Thirumuruganathan
// et al. (2018): record pairs are represented by distributed (word
// embedding) features instead of similarity features, source instances
// are re-weighted towards the target distribution, and a traditional
// classifier is trained on the weighted representation.
//
// The original uses pre-trained FastText vectors; offline, the
// embedder hashes word tokens to fixed pseudo-random vectors, which
// reproduces FastText's out-of-vocabulary behaviour on structured
// personal data: a typo or abbreviation maps a value to an unrelated
// vector, so the representation carries little string-variation signal
// and transfer turns negative — the failure mode the paper reports.
type DR struct {
	// EmbedDim is the per-attribute embedding width; 0 means 8.
	EmbedDim int
	// SubwordWeight blends FastText-style subword vectors (0 = pure
	// word hashing, the default OOV-failure mode).
	SubwordWeight float64
	// WeightK is the neighbourhood size of the density-ratio instance
	// weighting; 0 means 5.
	WeightK int
	// MaxWeightRef caps the reference-set size for the density-ratio
	// estimate; 0 means 2000. KD-tree queries degenerate to linear
	// scans in the high-dimensional embedding space, so the densities
	// are estimated against a subsample.
	MaxWeightRef int
	// Seed drives embedding hashing and the weighted resampling.
	Seed int64
}

// Name implements Method.
func (DR) Name() string { return "DR" }

// Run implements Method.
func (c DR) Run(t *Task, factory ml.Factory) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.SourceA == nil || t.SourceB == nil || t.TargetA == nil || t.TargetB == nil {
		return nil, errors.New("dr: requires raw databases and record pairs")
	}
	if len(t.SourcePairs) != len(t.XS) || len(t.TargetPairs) != len(t.XT) {
		return nil, errors.New("dr: pair lists misaligned with feature matrices")
	}
	dim := c.EmbedDim
	if dim == 0 {
		dim = 8
	}
	wk := c.WeightK
	if wk == 0 {
		wk = 5
	}
	emb := embed.New(dim, c.SubwordWeight, c.Seed)

	represent := func(a, b *dataset.Database, pairs []dataset.Pair) [][]float64 {
		m := a.Schema.NumAttributes()
		out := make([][]float64, len(pairs))
		for i, p := range pairs {
			ra, rb := a.Records[p.A], b.Records[p.B]
			row := make([]float64, 0, m*(dim+1))
			for q := 0; q < m; q++ {
				row = append(row, emb.PairFeatures(ra.Values[q], rb.Values[q])...)
			}
			out[i] = row
		}
		return out
	}
	zs := represent(t.SourceA, t.SourceB, t.SourcePairs)
	zt := represent(t.TargetA, t.TargetB, t.TargetPairs)

	// Instance weighting: approximate the density ratio p_T(x)/p_S(x)
	// per source instance by the ratio of its kNN distances within the
	// source vs into the target (closer target neighbourhood => higher
	// weight), then resample the source proportionally. Densities are
	// estimated against subsampled reference sets: exact k-NN in the
	// high-dimensional embedding space costs a linear scan per query.
	maxRef := c.MaxWeightRef
	if maxRef == 0 {
		maxRef = 2000
	}
	refRng := rand.New(rand.NewSource(c.Seed + 1))
	refS := subsampleRows(refRng, zs, maxRef)
	refT := subsampleRows(refRng, zt, maxRef)
	srcTree := kdtree.Build(refS)
	tgtTree := kdtree.Build(refT)
	weights := make([]float64, len(zs))
	for i, z := range zs {
		// Exclude exact self-duplicates by distance: the subsample may
		// or may not contain row i itself, so drop one zero-distance
		// neighbour instead of tracking identity.
		nnS := srcTree.KNN(z, wk+1, nil)
		if len(nnS) > 0 && nnS[0].Dist2 == 0 {
			nnS = nnS[1:]
		} else if len(nnS) > wk {
			nnS = nnS[:wk]
		}
		dS := meanDist(nnS)
		dT := meanDist(tgtTree.KNN(z, wk, nil))
		switch {
		case dT <= 0 && dS <= 0:
			weights[i] = 1
		case dT <= 0:
			weights[i] = 4
		case dS <= 0:
			weights[i] = 0.25
		default:
			w := dS / dT
			if w > 4 {
				w = 4
			} else if w < 0.25 {
				w = 0.25
			}
			weights[i] = w
		}
	}
	// The weighted resample also caps the training set: instance
	// weighting needs a representative sample, not every row, and
	// tree ensembles on the wide embedding space are expensive.
	trainCap := len(zs)
	if trainCap > 4*maxRef {
		trainCap = 4 * maxRef
	}
	rx, ry := resampleWeightedN(zs, t.YS, weights, c.Seed, trainCap)

	clf, err := ml.FitWithFallback(factory, rx, ry)
	if err != nil {
		return nil, err
	}
	return resultFromProba(clf.PredictProba(zt)), nil
}

// subsampleRows picks at most max rows without replacement.
func subsampleRows(rng *rand.Rand, rows [][]float64, max int) [][]float64 {
	if len(rows) <= max {
		return rows
	}
	idx := rng.Perm(len(rows))[:max]
	out := make([][]float64, max)
	for i, j := range idx {
		out[i] = rows[j]
	}
	return out
}

func meanDist(nn []kdtree.Neighbour) float64 {
	if len(nn) == 0 {
		return 0
	}
	s := 0.0
	for _, n := range nn {
		s += math.Sqrt(n.Dist2)
	}
	return s / float64(len(nn))
}

// resampleWeighted draws len(x) rows with replacement with probability
// proportional to weight, implementing instance re-weighting for
// weight-unaware classifiers.
func resampleWeighted(x [][]float64, y []int, w []float64, seed int64) ([][]float64, []int) {
	return resampleWeightedN(x, y, w, seed, len(x))
}

// resampleWeightedN draws n rows with replacement proportional to
// weight.
func resampleWeightedN(x [][]float64, y []int, w []float64, seed int64, n int) ([][]float64, []int) {
	total := 0.0
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		return x, y
	}
	// Cumulative distribution for inverse-CDF sampling.
	cum := make([]float64, len(w))
	acc := 0.0
	for i, v := range w {
		acc += v
		cum[i] = acc
	}
	rng := rand.New(rand.NewSource(seed))
	outX := make([][]float64, n)
	outY := make([]int, n)
	for i := range outX {
		r := rng.Float64() * total
		j := searchCum(cum, r)
		outX[i] = x[j]
		outY[i] = y[j]
	}
	return outX, outY
}

func searchCum(cum []float64, r float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
