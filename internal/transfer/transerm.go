package transfer

import (
	"transer/internal/core"
	"transer/internal/ml"
)

// TransER adapts the core TransER framework to the Method interface so
// the experiment harness can run it alongside the baselines. The zero
// value uses the paper's default configuration.
type TransER struct {
	// Config holds TransER parameters; a zero Config is replaced by
	// core.DefaultConfig().
	Config core.Config
}

// Name implements Method.
func (TransER) Name() string { return "TransER" }

// Run implements Method.
func (c TransER) Run(t *Task, factory ml.Factory) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	cfg := c.Config
	// The zero-value check must ignore the observability handle, the
	// SEL engine choice and the selection cache: a Config carrying
	// only those still means "use the paper defaults" — none of them
	// may change which hyper-parameters run.
	obsSpan, selMode, selCache := cfg.Obs, cfg.SELMode, cfg.SELCache
	cfg.Obs, cfg.SELMode, cfg.SELCache = nil, "", nil
	if cfg == (core.Config{}) {
		cfg = core.DefaultConfig()
	}
	cfg.Obs, cfg.SELMode, cfg.SELCache = obsSpan, selMode, selCache
	res, err := core.Run(t.XS, t.YS, t.XT, factory, cfg)
	if err != nil {
		return nil, err
	}
	return &Result{Labels: res.Labels, Proba: res.Proba, Classifier: res.Classifier}, nil
}
