package transfer

import (
	"transer/internal/linalg"
	"transer/internal/ml"
)

// Coral implements CORrelation ALignment (Sun, Feng, Saenko 2016):
// whiten the source features with C_S^{-1/2}, re-colour with C_T^{1/2},
// then train the classifier on the aligned source and apply it to the
// target. Like the original, it aligns second-order statistics only,
// which the paper shows is insufficient for ER's bi-modal, non-normal
// feature distributions.
type Coral struct {
	// Ridge regularises the covariance estimates; 0 means 1.0 (the
	// standard CORAL "+ I" regularisation).
	Ridge float64
}

// Name implements Method.
func (Coral) Name() string { return "Coral" }

// Run implements Method.
func (c Coral) Run(t *Task, factory ml.Factory) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	ridge := c.Ridge
	if ridge == 0 {
		ridge = 1.0
	}
	xs := linalg.FromRows(t.XS)
	xt := linalg.FromRows(t.XT)
	covS := linalg.Covariance(xs, ridge)
	covT := linalg.Covariance(xt, ridge)
	// A = C_S^{-1/2} * C_T^{1/2}; aligned source = X_S * A.
	whiten := linalg.SymPow(covS, -0.5, 1e-9)
	colour := linalg.SymPow(covT, 0.5, 1e-9)
	align := whiten.Mul(colour)
	alignedRows := xs.Mul(align)
	aligned := make([][]float64, alignedRows.Rows)
	for i := range aligned {
		aligned[i] = alignedRows.Row(i)
	}
	clf, err := ml.FitWithFallback(factory, aligned, t.YS)
	if err != nil {
		return nil, err
	}
	return resultFromProba(clf.PredictProba(t.XT)), nil
}
