package transfer

import (
	"testing"

	"transer/internal/core"
)

// TestTransERAdapterMatchesCore: the Method adapter must forward to
// core.Run verbatim — identical labels and probabilities for the same
// configuration.
func TestTransERAdapterMatchesCore(t *testing.T) {
	task, _ := blobTask(140, 70, 0.05, 61)
	cfg := core.Config{K: 5, TC: 0.7, TL: 0.7, TP: 0.9, B: 3, Seed: 1}
	viaMethod, err := TransER{Config: cfg}.Run(task, factory())
	if err != nil {
		t.Fatalf("adapter: %v", err)
	}
	direct, err := core.Run(task.XS, task.YS, task.XT, factory(), cfg)
	if err != nil {
		t.Fatalf("core.Run: %v", err)
	}
	for i := range direct.Proba {
		if viaMethod.Proba[i] != direct.Proba[i] || viaMethod.Labels[i] != direct.Labels[i] {
			t.Fatalf("row %d: adapter (%d, %v) vs core (%d, %v)", i,
				viaMethod.Labels[i], viaMethod.Proba[i], direct.Labels[i], direct.Proba[i])
		}
	}
}

// TestTransERZeroConfigUsesDefaults: the zero-value Config must mean
// core.DefaultConfig(), not a zero-threshold run.
func TestTransERZeroConfigUsesDefaults(t *testing.T) {
	task, _ := blobTask(140, 70, 0.05, 62)
	zero, err := TransER{}.Run(task, factory())
	if err != nil {
		t.Fatalf("zero config: %v", err)
	}
	explicit, err := core.Run(task.XS, task.YS, task.XT, factory(), core.DefaultConfig())
	if err != nil {
		t.Fatalf("default config: %v", err)
	}
	for i := range explicit.Proba {
		if zero.Proba[i] != explicit.Proba[i] {
			t.Fatalf("row %d: zero-value Config %v, DefaultConfig %v", i, zero.Proba[i], explicit.Proba[i])
		}
	}
}

// TestTransERSELModeOnlyKeepsDefaults: a Config that sets nothing but
// the SEL engine must still run with the paper defaults (the
// zero-config check has to ignore SELMode the same way it ignores
// Obs), and an exact engine must not change the result.
func TestTransERSELModeOnlyKeepsDefaults(t *testing.T) {
	task, _ := blobTask(140, 70, 0.05, 63)
	modeOnly, err := TransER{Config: core.Config{SELMode: core.SELModeDedup}}.Run(task, factory())
	if err != nil {
		t.Fatalf("mode-only config: %v", err)
	}
	explicit, err := core.Run(task.XS, task.YS, task.XT, factory(), core.DefaultConfig())
	if err != nil {
		t.Fatalf("default config: %v", err)
	}
	for i := range explicit.Proba {
		if modeOnly.Proba[i] != explicit.Proba[i] {
			t.Fatalf("row %d: SELMode-only Config %v, DefaultConfig %v", i, modeOnly.Proba[i], explicit.Proba[i])
		}
	}
}
