package transfer

import "testing"

// TestNaiveMatchesDirectClassifier: Naive is exactly "train on the
// source, predict the target" — its probabilities must be bitwise
// identical to driving the classifier by hand.
func TestNaiveMatchesDirectClassifier(t *testing.T) {
	task, _ := blobTask(120, 60, 0.05, 11)
	res, err := Naive{}.Run(task, factory())
	if err != nil {
		t.Fatalf("Naive: %v", err)
	}
	clf := factory()()
	if err := clf.Fit(task.XS, task.YS); err != nil {
		t.Fatalf("direct fit: %v", err)
	}
	want := clf.PredictProba(task.XT)
	for i := range want {
		if res.Proba[i] != want[i] {
			t.Fatalf("row %d: Naive proba %v, direct classifier %v", i, res.Proba[i], want[i])
		}
	}
}

// TestNaiveSingleClassSource: a single-class source must fall back to
// the constant classifier predicting that class, not error out.
func TestNaiveSingleClassSource(t *testing.T) {
	task, _ := blobTask(40, 20, 0, 12)
	for i := range task.YS {
		task.YS[i] = 1
	}
	res, err := Naive{}.Run(task, factory())
	if err != nil {
		t.Fatalf("Naive on single-class source: %v", err)
	}
	for i, p := range res.Proba {
		if p != 1 {
			t.Fatalf("row %d: proba %v, want constant 1 for all-match source", i, p)
		}
	}
}
