package transfer

import "testing"

// accuracy computes the label agreement fraction against a truth
// vector.
func accuracy(labels, truth []int) float64 {
	hits := 0
	for i := range labels {
		if labels[i] == truth[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(labels))
}

// TestCoralRidgeDefault: the zero Ridge value must behave exactly like
// the documented default of 1.0.
func TestCoralRidgeDefault(t *testing.T) {
	task, _ := blobTask(120, 60, 0.08, 21)
	zero, err := Coral{}.Run(task, factory())
	if err != nil {
		t.Fatalf("Coral{}: %v", err)
	}
	one, err := Coral{Ridge: 1.0}.Run(task, factory())
	if err != nil {
		t.Fatalf("Coral{Ridge:1}: %v", err)
	}
	for i := range zero.Proba {
		if zero.Proba[i] != one.Proba[i] {
			t.Fatalf("row %d: zero-value Ridge gives %v, explicit 1.0 gives %v",
				i, zero.Proba[i], one.Proba[i])
		}
	}
}

// TestCoralIdenticalDomainsNearIdentity: when source and target share
// a distribution the alignment is near-identity, so CORAL must still
// solve the easy blob problem.
func TestCoralIdenticalDomainsNearIdentity(t *testing.T) {
	task, yt := blobTask(160, 80, 0, 22)
	res, err := Coral{}.Run(task, factory())
	if err != nil {
		t.Fatalf("Coral: %v", err)
	}
	if acc := accuracy(res.Labels, yt); acc < 0.9 {
		t.Fatalf("accuracy %v on identical domains; near-identity alignment expected >= 0.9", acc)
	}
}
