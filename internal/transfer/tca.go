package transfer

import (
	"fmt"
	"math"
	"math/rand"

	"transer/internal/linalg"
	"transer/internal/ml"
)

// TCA implements Transfer Component Analysis (Pan et al., 2011): learn
// a low-dimensional latent space minimising the maximum mean
// discrepancy (MMD) between source and target while preserving data
// variance, then train the classifier in that space.
//
// The transfer components solve the generalized eigenproblem
//
//	(K L K + µI) W = K H K W Λ⁻¹,
//
// where K is the kernel matrix over all instances, L the MMD
// coefficient matrix, and H the centering matrix. The exact method is
// O(n²) memory and O(n³) time in the number of instances — the reason
// the paper's TCA runs exceeded 200 GB on mid-sized ER data sets. This
// implementation uses a landmark (Nyström-style) subsample: the
// eigenproblem is solved over MaxLandmarks instances and all rows are
// projected through their kernel values against the landmarks, keeping
// memory bounded while preserving the method's behaviour.
type TCA struct {
	// Components is the latent dimensionality; 0 means min(m, 4).
	Components int
	// MaxLandmarks bounds the kernel matrix size; 0 means 256.
	MaxLandmarks int
	// Mu is the trade-off/regularisation parameter µ; 0 means 1.0.
	Mu float64
	// Gamma is the RBF kernel coefficient; 0 means 1/m.
	Gamma float64
	// Seed drives the landmark subsample.
	Seed int64
}

// Name implements Method.
func (TCA) Name() string { return "TCA" }

// Run implements Method.
func (c TCA) Run(t *Task, factory ml.Factory) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	m := t.Dim()
	comp := c.Components
	if comp == 0 {
		comp = m
		if comp > 4 {
			comp = 4
		}
	}
	maxL := c.MaxLandmarks
	if maxL == 0 {
		maxL = 256
	}
	mu := c.Mu
	if mu == 0 {
		mu = 1.0
	}
	gamma := c.Gamma
	if gamma == 0 {
		gamma = 1 / float64(m)
	}

	// Landmark selection: an even split of source and target rows.
	rng := rand.New(rand.NewSource(c.Seed))
	half := maxL / 2
	srcIdx := subsample(rng, len(t.XS), half)
	tgtIdx := subsample(rng, len(t.XT), maxL-len(srcIdx))
	landmarks := make([][]float64, 0, len(srcIdx)+len(tgtIdx))
	for _, i := range srcIdx {
		landmarks = append(landmarks, t.XS[i])
	}
	nS := len(srcIdx)
	for _, i := range tgtIdx {
		landmarks = append(landmarks, t.XT[i])
	}
	nT := len(tgtIdx)
	n := nS + nT
	if nS == 0 || nT == 0 {
		return nil, fmt.Errorf("tca: degenerate landmark split (%d source, %d target)", nS, nT)
	}
	if comp > n {
		// The eigenproblem is n×n, so at most n components exist.
		comp = n
	}

	// Kernel matrix over landmarks.
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rbf(landmarks[i], landmarks[j], gamma)
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}

	// MMD coefficient matrix L.
	l := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var v float64
			switch {
			case i < nS && j < nS:
				v = 1 / float64(nS*nS)
			case i >= nS && j >= nS:
				v = 1 / float64(nT*nT)
			default:
				v = -1 / float64(nS*nT)
			}
			l.Set(i, j, v)
		}
	}

	// Centering matrix H = I - (1/n) 11ᵀ.
	h := linalg.Identity(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Set(i, j, h.At(i, j)-1/float64(n))
		}
	}

	// Generalized symmetric eigenproblem: maximise wᵀ K H K w subject
	// to wᵀ (K L K + µI) w. With A = KLK + µI = R Rᵀ and B = KHK, the
	// top eigenvectors of C = R⁻¹ B R⁻ᵀ map back via w = R⁻ᵀ u.
	klk := k.Mul(l).Mul(k)
	a := klk.Add(linalg.Identity(n).Scale(mu))
	b := k.Mul(h).Mul(k)
	// Symmetrise against accumulated round-off.
	symmetrise(a)
	symmetrise(b)
	r, err := linalg.Cholesky(a)
	if err != nil {
		return nil, fmt.Errorf("tca: regularised MMD matrix not PD: %w", err)
	}
	z, err := linalg.ForwardSolveMatrix(r, b) // Z = R⁻¹ B
	if err != nil {
		return nil, fmt.Errorf("tca: forward solve failed: %w", err)
	}
	cMat, err := linalg.ForwardSolveMatrix(r, z.T()) // C = R⁻¹ (R⁻¹ B)ᵀ = R⁻¹ B R⁻ᵀ
	if err != nil {
		return nil, fmt.Errorf("tca: second solve failed: %w", err)
	}
	symmetrise(cMat)
	_, u := linalg.TopEigenvectors(cMat, comp)
	// W = R⁻ᵀ U — back substitution with Rᵀ (upper triangular).
	w, err := linalg.BackSolveMatrix(r.T(), u)
	if err != nil {
		return nil, fmt.Errorf("tca: back solve failed: %w", err)
	}

	// Project any row through its landmark kernel vector.
	project := func(rows [][]float64) [][]float64 {
		out := make([][]float64, len(rows))
		kx := make([]float64, n)
		for i, row := range rows {
			for j, lm := range landmarks {
				kx[j] = rbf(row, lm, gamma)
			}
			z := make([]float64, comp)
			for cc := 0; cc < comp; cc++ {
				s := 0.0
				for j := 0; j < n; j++ {
					s += kx[j] * w.At(j, cc)
				}
				z[cc] = s
			}
			out[i] = z
		}
		return out
	}
	zs := project(t.XS)
	zt := project(t.XT)
	clf, err := ml.FitWithFallback(factory, zs, t.YS)
	if err != nil {
		return nil, err
	}
	return resultFromProba(clf.PredictProba(zt)), nil
}

func subsample(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return rng.Perm(n)[:k]
}

func rbf(a, b []float64, gamma float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-gamma * s)
}

func symmetrise(m *linalg.Matrix) {
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}
