package eval_test

// Property suite for the linkage quality measures, driven by
// internal/testkit. Count identities (conservation, permutation
// invariance) are exact; identities that compare two different
// floating-point computations of the same algebraic quantity
// (F* = F1/(2-F1), telescoping recall sums) use a tiny tolerance.

import (
	"math"
	"testing"

	"transer/internal/eval"
	"transer/internal/testkit"
)

func randLabels(pt *testkit.T, n int) (pred, truth []int) {
	pred = make([]int, n)
	truth = make([]int, n)
	for i := 0; i < n; i++ {
		pred[i] = pt.Rng.Intn(2)
		truth[i] = pt.Rng.Intn(2)
	}
	return pred, truth
}

// randProba draws probabilities from a coarse grid so PRCurve's
// tie-grouping path is exercised on every trial.
func randProba(pt *testkit.T, n int) []float64 {
	proba := make([]float64, n)
	for i := range proba {
		proba[i] = float64(pt.Rng.Intn(11)) / 10
	}
	return proba
}

// TestConfusionConservationAndPermutation: the four confusion counts
// partition the predictions, and jointly permuting (pred, truth)
// leaves the counts unchanged.
func TestConfusionConservationAndPermutation(t *testing.T) {
	testkit.Run(t, "eval/confusion-conservation", 10, func(pt *testkit.T) {
		n := pt.Size * 3
		pred, truth := randLabels(pt, n)
		c := eval.Confuse(pred, truth)
		if c.TP+c.FP+c.FN+c.TN != n {
			pt.Fatalf("confusion counts %+v do not sum to %d predictions", c, n)
		}
		p := testkit.Perm(pt.Rng, n)
		if cp := eval.Confuse(testkit.Permute(p, pred), testkit.Permute(p, truth)); cp != c {
			pt.Errorf("confusion changed under paired permutation: %+v vs %+v", c, cp)
		}
	})
}

// TestMetricBoundsAndFStarIdentity: all measures land in [0, 1], and
// F* satisfies the paper's identity F* = F1 / (2 - F1).
func TestMetricBoundsAndFStarIdentity(t *testing.T) {
	testkit.Run(t, "eval/fstar-identity", 10, func(pt *testkit.T) {
		pred, truth := randLabels(pt, pt.Size*3)
		c := eval.Confuse(pred, truth)
		for name, v := range map[string]float64{
			"precision": c.Precision(), "recall": c.Recall(),
			"f1": c.F1(), "fstar": c.FStar(),
		} {
			if math.IsNaN(v) || v < 0 || v > 1 {
				pt.Fatalf("%s = %v outside [0, 1] for %+v", name, v, c)
			}
		}
		f1 := c.F1()
		if want := f1 / (2 - f1); math.Abs(c.FStar()-want) > 1e-12 {
			pt.Errorf("F* = %v, but F1/(2-F1) = %v for %+v", c.FStar(), want, c)
		}
	})
}

// TestPerfectPrediction: predicting the truth verbatim yields perfect
// scores whenever a positive exists.
func TestPerfectPrediction(t *testing.T) {
	testkit.Run(t, "eval/perfect-prediction", 8, func(pt *testkit.T) {
		truth := testkit.BinaryLabels(pt.Rng, pt.Size*2)
		c := eval.Confuse(truth, truth)
		if c.FP != 0 || c.FN != 0 {
			pt.Fatalf("perfect prediction produced errors: %+v", c)
		}
		if c.Precision() != 1 || c.Recall() != 1 || c.F1() != 1 || c.FStar() != 1 {
			pt.Errorf("perfect prediction scored P=%v R=%v F1=%v F*=%v",
				c.Precision(), c.Recall(), c.F1(), c.FStar())
		}
	})
}

// TestAggregateOfProperties: the mean lies within [min, max], the
// population std is non-negative, and constant inputs have (almost)
// zero spread.
func TestAggregateOfProperties(t *testing.T) {
	testkit.Run(t, "eval/aggregate", 10, func(pt *testkit.T) {
		n := pt.Size
		vals := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range vals {
			vals[i] = pt.Rng.Float64() * 100
			lo = math.Min(lo, vals[i])
			hi = math.Max(hi, vals[i])
		}
		a := eval.AggregateOf(vals)
		if a.Mean < lo-1e-9 || a.Mean > hi+1e-9 {
			pt.Errorf("mean %v outside the data range [%v, %v]", a.Mean, lo, hi)
		}
		if a.Std < 0 {
			pt.Errorf("negative standard deviation %v", a.Std)
		}
		constant := make([]float64, n)
		for i := range constant {
			constant[i] = vals[0]
		}
		if c := eval.AggregateOf(constant); math.Abs(c.Std) > 1e-9 || math.Abs(c.Mean-vals[0]) > 1e-9 {
			pt.Errorf("constant data aggregated to %v ± %v, want %v ± 0", c.Mean, c.Std, vals[0])
		}
	})
}

// TestPRCurveShape: thresholds strictly decrease, recall is
// non-decreasing and ends at exactly 1, and precision stays in [0, 1]
// (0 occurs when the top-ranked prefix holds only negatives).
func TestPRCurveShape(t *testing.T) {
	testkit.Run(t, "eval/pr-curve-shape", 10, func(pt *testkit.T) {
		n := pt.Size * 3
		proba := randProba(pt, n)
		truth := testkit.BinaryLabels(pt.Rng, n)
		curve := eval.PRCurve(proba, truth)
		if len(curve) == 0 {
			pt.Fatalf("empty curve despite positives in the truth")
		}
		prevR, prevT := -1.0, math.Inf(1)
		for i, p := range curve {
			if p.Threshold >= prevT {
				pt.Fatalf("thresholds not strictly decreasing at point %d: %v after %v", i, p.Threshold, prevT)
			}
			if p.Recall < prevR {
				pt.Fatalf("recall fell from %v to %v at point %d", prevR, p.Recall, i)
			}
			if p.Precision < 0 || p.Precision > 1 || p.Recall < 0 || p.Recall > 1 {
				pt.Fatalf("point %d out of range: %+v", i, p)
			}
			prevR, prevT = p.Recall, p.Threshold
		}
		if last := curve[len(curve)-1].Recall; last != 1 {
			pt.Errorf("curve ends at recall %v, want exactly 1", last)
		}
	})
}

// TestAveragePrecisionBoundsAndPerfectRanking: AP lands in [0, 1], and
// a ranking that puts every positive above every negative scores 1.
func TestAveragePrecisionBoundsAndPerfectRanking(t *testing.T) {
	testkit.Run(t, "eval/average-precision", 10, func(pt *testkit.T) {
		n := pt.Size * 3
		proba := randProba(pt, n)
		truth := testkit.BinaryLabels(pt.Rng, n)
		ap := eval.AveragePrecision(proba, truth)
		if math.IsNaN(ap) || ap < 0 || ap > 1+1e-12 {
			pt.Fatalf("average precision %v outside [0, 1]", ap)
		}
		// Perfect ranking: positives in (0.5, 1], negatives in [0, 0.5).
		perfect := make([]float64, n)
		for i, y := range truth {
			if y == 1 {
				perfect[i] = 0.5 + 0.5*pt.Rng.Float64()
			} else {
				perfect[i] = 0.49 * pt.Rng.Float64()
			}
		}
		if got := eval.AveragePrecision(perfect, truth); math.Abs(got-1) > 1e-9 {
			pt.Errorf("perfect ranking scored AP = %v, want 1", got)
		}
	})
}

// TestBestFStarDominatesFixedThreshold: the tuned threshold cannot do
// worse than the fixed 0.5 operating point used by the experiments.
func TestBestFStarDominatesFixedThreshold(t *testing.T) {
	testkit.Run(t, "eval/best-fstar", 10, func(pt *testkit.T) {
		n := pt.Size * 3
		proba := randProba(pt, n)
		truth := testkit.BinaryLabels(pt.Rng, n)
		_, best := eval.BestFStar(proba, truth)
		pred := make([]int, n)
		for i, p := range proba {
			if p >= 0.5 {
				pred[i] = 1
			}
		}
		fixed := eval.Confuse(pred, truth).FStar()
		if best+1e-9 < fixed {
			pt.Errorf("tuned F* %v below the fixed-threshold F* %v", best, fixed)
		}
	})
}
