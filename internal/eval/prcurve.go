package eval

import "sort"

// PRPoint is one operating point of a precision-recall curve.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PRCurve computes the precision-recall curve of a probabilistic
// prediction against true labels, one operating point per distinct
// predicted probability (descending). The curve supports
// threshold-free comparison of match scorers, complementing the
// fixed-threshold measures of the paper.
func PRCurve(proba []float64, truth []int) []PRPoint {
	if len(proba) != len(truth) {
		panic("eval: proba and truth lengths differ")
	}
	type scored struct {
		p float64
		y int
	}
	rows := make([]scored, len(proba))
	totalPos := 0
	for i := range proba {
		rows[i] = scored{proba[i], truth[i]}
		totalPos += truth[i]
	}
	if totalPos == 0 || len(rows) == 0 {
		return nil
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].p > rows[j].p })
	var out []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(rows); {
		j := i
		for j < len(rows) && rows[j].p == rows[i].p {
			if rows[j].y == 1 {
				tp++
			} else {
				fp++
			}
			j++
		}
		out = append(out, PRPoint{
			Threshold: rows[i].p,
			Precision: float64(tp) / float64(tp+fp),
			Recall:    float64(tp) / float64(totalPos),
		})
		i = j
	}
	return out
}

// AveragePrecision computes the area under the precision-recall curve
// by the step-wise interpolation standard in information retrieval:
// sum over curve points of precision × recall increment.
func AveragePrecision(proba []float64, truth []int) float64 {
	curve := PRCurve(proba, truth)
	ap := 0.0
	prevRecall := 0.0
	for _, pt := range curve {
		ap += pt.Precision * (pt.Recall - prevRecall)
		prevRecall = pt.Recall
	}
	return ap
}

// BestFStar scans the precision-recall curve for the threshold
// maximising the F*-measure, returning the threshold and the measure.
// It supports threshold tuning when a validation set exists.
func BestFStar(proba []float64, truth []int) (threshold, fstar float64) {
	curve := PRCurve(proba, truth)
	best := -1.0
	bestT := 0.5
	for _, pt := range curve {
		// F* = PR / (P + R - PR), derived from TP/(TP+FP+FN).
		den := pt.Precision + pt.Recall - pt.Precision*pt.Recall
		if den <= 0 {
			continue
		}
		f := pt.Precision * pt.Recall / den
		if f > best {
			best = f
			bestT = pt.Threshold
		}
	}
	if best < 0 {
		return 0.5, 0
	}
	return bestT, best
}
