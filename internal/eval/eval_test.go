package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfuse(t *testing.T) {
	pred := []int{1, 1, 0, 0, 1}
	truth := []int{1, 0, 1, 0, 1}
	c := Confuse(pred, truth)
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
}

func TestConfuseLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on length mismatch")
		}
	}()
	Confuse([]int{1}, []int{1, 0})
}

func TestMetricsKnownValues(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 2, TN: 88}
	if p := c.Precision(); p != 0.8 {
		t.Errorf("precision = %v", p)
	}
	if r := c.Recall(); r != 0.8 {
		t.Errorf("recall = %v", r)
	}
	if f := c.F1(); math.Abs(f-0.8) > 1e-12 {
		t.Errorf("F1 = %v", f)
	}
	// F* = 8 / 12
	if fs := c.FStar(); math.Abs(fs-8.0/12.0) > 1e-12 {
		t.Errorf("F* = %v", fs)
	}
}

func TestMetricsDegenerate(t *testing.T) {
	empty := Confusion{}
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 || empty.FStar() != 0 {
		t.Errorf("degenerate confusion should yield zeros")
	}
	perfect := Confusion{TP: 10}
	if perfect.Precision() != 1 || perfect.Recall() != 1 || perfect.F1() != 1 || perfect.FStar() != 1 {
		t.Errorf("perfect confusion should yield ones")
	}
}

func TestFStarF1Relationship(t *testing.T) {
	// F* = F1 / (2 - F1) for any confusion with TP > 0.
	prop := func(tp, fp, fn uint8) bool {
		c := Confusion{TP: int(tp) + 1, FP: int(fp), FN: int(fn)}
		f1 := c.F1()
		fs := c.FStar()
		want := f1 / (2 - f1)
		return math.Abs(fs-want) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("F*/F1 identity violated: %v", err)
	}
}

func TestFStarNeverExceedsF1(t *testing.T) {
	prop := func(tp, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn)}
		return c.FStar() <= c.F1()+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("F* exceeded F1: %v", err)
	}
}

func TestEvaluate(t *testing.T) {
	m := Evaluate([]int{1, 1, 0}, []int{1, 0, 0})
	if m.Precision != 50 || m.Recall != 100 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestAggregateOf(t *testing.T) {
	a := AggregateOf([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if a.Mean != 5 {
		t.Errorf("mean = %v", a.Mean)
	}
	if math.Abs(a.Std-2) > 1e-12 {
		t.Errorf("std = %v", a.Std)
	}
	zero := AggregateOf(nil)
	if zero.Mean != 0 || zero.Std != 0 {
		t.Errorf("empty aggregate should be zero")
	}
}

func TestAggregateString(t *testing.T) {
	s := Aggregate{Mean: 92.785, Std: 5.132}.String()
	if !strings.Contains(s, "92.78") || !strings.Contains(s, "5.13") {
		t.Errorf("format = %q", s)
	}
}

func TestAggregateMetrics(t *testing.T) {
	runs := []Metrics{
		{Precision: 90, Recall: 80, FStar: 70, F1: 85},
		{Precision: 100, Recall: 90, FStar: 80, F1: 95},
	}
	agg := AggregateMetrics(runs)
	if agg.Precision.Mean != 95 || agg.Recall.Mean != 85 || agg.FStar.Mean != 75 || agg.F1.Mean != 90 {
		t.Errorf("aggregate = %+v", agg)
	}
	if agg.Precision.Std != 5 {
		t.Errorf("std = %v", agg.Precision.Std)
	}
}
