package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPRCurvePerfectRanking(t *testing.T) {
	proba := []float64{0.9, 0.8, 0.2, 0.1}
	truth := []int{1, 1, 0, 0}
	curve := PRCurve(proba, truth)
	if len(curve) != 4 {
		t.Fatalf("expected 4 points, got %d", len(curve))
	}
	// First two points at precision 1.
	if curve[0].Precision != 1 || curve[1].Precision != 1 {
		t.Errorf("perfect prefix should have precision 1: %+v", curve[:2])
	}
	if curve[1].Recall != 1 {
		t.Errorf("all positives found by second point: %+v", curve[1])
	}
	if ap := AveragePrecision(proba, truth); math.Abs(ap-1) > 1e-12 {
		t.Errorf("perfect ranking AP = %v, want 1", ap)
	}
}

func TestPRCurveTiedScores(t *testing.T) {
	proba := []float64{0.5, 0.5, 0.5, 0.5}
	truth := []int{1, 0, 1, 0}
	curve := PRCurve(proba, truth)
	if len(curve) != 1 {
		t.Fatalf("tied scores should collapse into one point, got %d", len(curve))
	}
	if curve[0].Precision != 0.5 || curve[0].Recall != 1 {
		t.Errorf("tied point = %+v", curve[0])
	}
}

func TestPRCurveDegenerate(t *testing.T) {
	if PRCurve([]float64{0.5}, []int{0}) != nil {
		t.Errorf("no positives should give nil curve")
	}
	if PRCurve(nil, nil) != nil {
		t.Errorf("empty input should give nil curve")
	}
	if ap := AveragePrecision([]float64{0.1}, []int{0}); ap != 0 {
		t.Errorf("no positives AP = %v", ap)
	}
}

func TestPRCurveMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on length mismatch")
		}
	}()
	PRCurve([]float64{1}, []int{1, 0})
}

func TestBestFStar(t *testing.T) {
	proba := []float64{0.9, 0.7, 0.6, 0.3}
	truth := []int{1, 1, 0, 0}
	thr, f := BestFStar(proba, truth)
	if thr > 0.7 || thr < 0.6 {
		// Best point is at recall 1 precision 1 => threshold 0.7.
		if thr != 0.7 {
			t.Errorf("best threshold = %v", thr)
		}
	}
	if math.Abs(f-1) > 1e-12 {
		t.Errorf("best F* = %v, want 1", f)
	}
	// Degenerate.
	thr, f = BestFStar([]float64{0.4}, []int{0})
	if f != 0 || thr != 0.5 {
		t.Errorf("degenerate best = %v @ %v", f, thr)
	}
}

func TestPropertyAveragePrecisionRange(t *testing.T) {
	prop := func(seed int64) bool {
		// Deterministic pseudo-random instance.
		state := uint64(seed)
		next := func() float64 {
			state = state*6364136223846793005 + 1442695040888963407
			return float64(state>>40) / float64(1<<24)
		}
		n := 5 + int(next()*50)
		proba := make([]float64, n)
		truth := make([]int, n)
		pos := 0
		for i := range proba {
			proba[i] = next()
			if next() > 0.7 {
				truth[i] = 1
				pos++
			}
		}
		if pos == 0 {
			truth[0] = 1
		}
		ap := AveragePrecision(proba, truth)
		if ap < -1e-12 || ap > 1+1e-12 || math.IsNaN(ap) {
			return false
		}
		// Recall on the curve is non-decreasing.
		curve := PRCurve(proba, truth)
		for i := 1; i < len(curve); i++ {
			if curve[i].Recall < curve[i-1].Recall-1e-12 {
				return false
			}
			if curve[i].Threshold > curve[i-1].Threshold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("AP property failed: %v", err)
	}
}
