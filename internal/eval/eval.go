// Package eval implements the linkage quality measures of the paper's
// Section 5.1.4: precision, recall, F1, and the interpretable
// F*-measure of Hand, Christen and Kirielle (2021), plus mean ± std
// aggregation over classifier ensembles for the result tables.
package eval

import (
	"fmt"
	"math"
)

// Confusion holds binary confusion counts for the match class.
type Confusion struct {
	TP, FP, FN, TN int
}

// Confuse computes confusion counts from predicted and true labels.
func Confuse(pred, truth []int) Confusion {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: %d predictions vs %d truths", len(pred), len(truth)))
	}
	var c Confusion
	for i := range pred {
		switch {
		case pred[i] == 1 && truth[i] == 1:
			c.TP++
		case pred[i] == 1 && truth[i] == 0:
			c.FP++
		case pred[i] == 0 && truth[i] == 1:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision = TP / (TP + FP); 0 when nothing was predicted as a match.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall = TP / (TP + FN); 0 when there are no true matches.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FStar is the interpretable F*-measure: TP / (TP + FP + FN)
// (Hand, Christen, Kirielle 2021). It equals F1 / (2 - F1).
func (c Confusion) FStar() float64 {
	den := c.TP + c.FP + c.FN
	if den == 0 {
		return 0
	}
	return float64(c.TP) / float64(den)
}

// Metrics bundles the four quality measures as percentages, matching
// the paper's result tables.
type Metrics struct {
	Precision, Recall, FStar, F1 float64
}

// FromConfusion converts counts to percentage metrics.
func FromConfusion(c Confusion) Metrics {
	return Metrics{
		Precision: 100 * c.Precision(),
		Recall:    100 * c.Recall(),
		FStar:     100 * c.FStar(),
		F1:        100 * c.F1(),
	}
}

// Evaluate computes percentage metrics directly from labels.
func Evaluate(pred, truth []int) Metrics {
	return FromConfusion(Confuse(pred, truth))
}

// Aggregate is a mean ± standard deviation over several runs (the
// paper averages each method over four classifiers).
type Aggregate struct {
	Mean, Std float64
}

// String formats as "mm.mm ± ss.ss".
func (a Aggregate) String() string {
	return fmt.Sprintf("%.2f ± %.2f", a.Mean, a.Std)
}

// AggregateOf computes mean and (population) standard deviation.
func AggregateOf(values []float64) Aggregate {
	if len(values) == 0 {
		return Aggregate{}
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(len(values))
	varSum := 0.0
	for _, v := range values {
		d := v - mean
		varSum += d * d
	}
	return Aggregate{Mean: mean, Std: math.Sqrt(varSum / float64(len(values)))}
}

// MetricsAggregate aggregates each measure over a set of runs.
type MetricsAggregate struct {
	Precision, Recall, FStar, F1 Aggregate
}

// AggregateMetrics reduces per-classifier metrics to mean ± std per
// measure.
func AggregateMetrics(runs []Metrics) MetricsAggregate {
	p := make([]float64, len(runs))
	r := make([]float64, len(runs))
	fs := make([]float64, len(runs))
	f1 := make([]float64, len(runs))
	for i, m := range runs {
		p[i], r[i], fs[i], f1[i] = m.Precision, m.Recall, m.FStar, m.F1
	}
	return MetricsAggregate{
		Precision: AggregateOf(p),
		Recall:    AggregateOf(r),
		FStar:     AggregateOf(fs),
		F1:        AggregateOf(f1),
	}
}
