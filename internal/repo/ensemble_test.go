package repo_test

import (
	"math"
	"testing"

	"transer/internal/model"
	"transer/internal/repo"
)

var gateWorkers = []int{1, 2, 4, 0}

// TestSingleModelByteIdentity is the differential gate of DESIGN.md
// §14: a model served through the repository — catalogued, reloaded
// from disk, wrapped in a one-member ensemble — must score bitwise
// identically to the directly assembled matcher, for every worker
// count. Any drift here means the repository path changes decisions.
func TestSingleModelByteIdentity(t *testing.T) {
	art := trainArtifact(t, 11, "gate")
	direct, err := model.NewMatcher(art)
	if err != nil {
		t.Fatal(err)
	}
	x := vectorsFor(t, direct, 12)

	c, err := repo.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e, err := c.Add(art)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := c.EnsembleFor(e.Fingerprint)
	if err != nil {
		t.Fatalf("EnsembleFor: %v", err)
	}
	if ens.Label() != "gate" || ens.Selector() != e.Fingerprint {
		t.Fatalf("single-member identity leaked: label=%q selector=%q", ens.Label(), ens.Selector())
	}

	want := direct.Score(x, 1)
	for _, w := range gateWorkers {
		for name, got := range map[string][]float64{
			"direct":  direct.Score(x, w),
			"single":  repo.Single(direct).Score(x, w),
			"catalog": ens.Score(x, w),
		} {
			if len(got) != len(want) {
				t.Fatalf("workers=%d %s: %d scores, want %d", w, name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d %s: score[%d] = %v, want %v (not bitwise identical)",
						w, name, i, got[i], want[i])
				}
			}
		}
	}
	for i := range want {
		if ens.Decide(want[i]) != direct.Decide(want[i]) {
			t.Fatalf("decision drift at %d", i)
		}
	}
}

// TestEnsembleWeightedSum: a two-member ensemble is exactly the
// weighted sum of its members' scores, in fixed member order, bitwise
// stable across worker counts.
func TestEnsembleWeightedSum(t *testing.T) {
	a1 := trainArtifact(t, 21, "one")
	a2 := trainArtifact(t, 22, "two")
	m1, err := model.NewMatcher(a1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := model.NewMatcher(a2)
	if err != nil {
		t.Fatal(err)
	}
	x := vectorsFor(t, m1, 23)

	// Weights 3 and 1 normalise to 0.75 / 0.25.
	ens, err := repo.NewEnsemble([]*model.Matcher{m1, m2}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if w := ens.Weights(); w[0] != 0.75 || w[1] != 0.25 {
		t.Fatalf("normalised weights %v", w)
	}
	s1, s2 := m1.Score(x, 1), m2.Score(x, 1)
	want := make([]float64, len(x))
	for i := range want {
		want[i] = 0.75*s1[i] + 0.25*s2[i]
	}
	ref := ens.Score(x, 1)
	for i := range want {
		if ref[i] != want[i] {
			t.Fatalf("score[%d] = %v, want weighted sum %v", i, ref[i], want[i])
		}
		if ref[i] < 0 || ref[i] > 1 || math.IsNaN(ref[i]) {
			t.Fatalf("ensemble score[%d] = %v out of [0,1]", i, ref[i])
		}
	}
	for _, w := range gateWorkers {
		got := ens.Score(x, w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: score[%d] = %v, want %v", w, i, got[i], ref[i])
			}
		}
	}
	if ens.Primary() != m1 {
		t.Fatal("Primary is not the first member")
	}
}

// TestEnsembleViaCatalogSelector: the full path — Select over a
// ranking, FormatSelector, EnsembleFor — produces an ensemble whose
// selector round-trips and whose members keep selection order.
func TestEnsembleViaCatalogSelector(t *testing.T) {
	c, err := repo.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a1 := trainArtifact(t, 31, "one")
	a2 := trainArtifact(t, 32, "two")
	e1, err := c.Add(a1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Add(a2)
	if err != nil {
		t.Fatal(err)
	}
	sel := repo.FormatSelector([]repo.Member{
		{Fingerprint: e1.Fingerprint, Weight: 0.6},
		{Fingerprint: e2.Fingerprint, Weight: 0.4},
	})
	ens, err := c.EnsembleFor(sel)
	if err != nil {
		t.Fatalf("EnsembleFor(%q): %v", sel, err)
	}
	if got := ens.Selector(); got != sel {
		t.Fatalf("Selector() = %q, want %q", got, sel)
	}
	if ms := ens.Members(); ms[0].Fingerprint() != e1.Fingerprint || ms[1].Fingerprint() != e2.Fingerprint {
		t.Fatal("member order does not follow the selector")
	}
}

func TestEnsembleValidation(t *testing.T) {
	a1 := trainArtifact(t, 41, "one")
	a2 := trainArtifact(t, 42, "two")
	m1, err := model.NewMatcher(a1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := model.NewMatcher(a2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.NewEnsemble(nil, nil); err == nil {
		t.Fatal("empty ensemble accepted")
	}
	if _, err := repo.NewEnsemble([]*model.Matcher{m1, m2}, []float64{1}); err == nil {
		t.Fatal("member/weight length mismatch accepted")
	}
	if _, err := repo.NewEnsemble([]*model.Matcher{m1, m2}, []float64{1, 0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	// Mismatched thresholds make decisions ambiguous; rejected.
	a3 := trainArtifact(t, 43, "three")
	a3.Threshold = 0.7
	m3, err := model.NewMatcher(a3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.NewEnsemble([]*model.Matcher{m1, m3}, []float64{1, 1}); err == nil {
		t.Fatal("threshold mismatch accepted")
	}
}
