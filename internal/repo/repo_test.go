package repo_test

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"transer/internal/compare"
	"transer/internal/ml/logreg"
	"transer/internal/model"
	"transer/internal/repo"
	"transer/internal/testkit"
)

// trainArtifact builds a complete artifact the way cmd/transer does:
// a logreg trained on every cross pair of a generated database pair,
// with the training domain's signature embedded in the provenance.
// Different seeds give different data, weights and fingerprints while
// sharing the scheme signature and threshold (testkit's fixed schema),
// so any two artifacts are ensemble-compatible.
func trainArtifact(tb testing.TB, seed int64, name string) *model.Artifact {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	a, b := testkit.DatabasePair(rng, 30)
	scheme := compare.DefaultScheme(a.Schema)
	var x [][]float64
	var y []int
	for _, ra := range a.Records {
		for _, rb := range b.Records {
			x = append(x, scheme.Pair(ra, rb))
			if ra.EntityID == rb.EntityID {
				y = append(y, 1)
			} else {
				y = append(y, 0)
			}
		}
	}
	clf := logreg.New(logreg.Config{})
	if err := clf.Fit(x, y); err != nil {
		tb.Fatalf("Fit: %v", err)
	}
	art, err := model.New(name, clf, a.Schema, scheme)
	if err != nil {
		tb.Fatalf("model.New: %v", err)
	}
	art.Provenance.SourceName = name + "-source"
	art.Provenance.TargetName = name + "-target"
	art.Provenance.Signature = repo.BuildSignature(a, b, x)
	return art
}

// vectorsFor derives a scoring matrix from a fresh database pair under
// the artifact's scheme — the differential-gate input.
func vectorsFor(tb testing.TB, m *model.Matcher, seed int64) [][]float64 {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	a, b := testkit.DatabasePair(rng, 20)
	var x [][]float64
	for _, ra := range a.Records {
		for _, rb := range b.Records {
			x = append(x, m.Vector(ra, rb))
		}
	}
	return x
}

func fingerprintOf(tb testing.TB, a *model.Artifact) string {
	tb.Helper()
	fp, err := a.Fingerprint()
	if err != nil {
		tb.Fatalf("Fingerprint: %v", err)
	}
	return fp
}

func TestCatalogAddListResolveEvict(t *testing.T) {
	dir := t.TempDir()
	c, err := repo.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	a1 := trainArtifact(t, 1, "alpha")
	a2 := trainArtifact(t, 2, "beta")
	e1, err := c.Add(a1)
	if err != nil {
		t.Fatalf("Add alpha: %v", err)
	}
	if _, err := c.Add(a2); err != nil {
		t.Fatalf("Add beta: %v", err)
	}
	if got := fingerprintOf(t, a1); e1.Fingerprint != got {
		t.Fatalf("entry fingerprint %s, artifact %s", e1.Fingerprint, got)
	}
	if e1.Signature == nil {
		t.Fatal("catalogued entry lost its domain signature")
	}

	// Content addressing makes Add idempotent.
	again, err := c.Add(a1)
	if err != nil {
		t.Fatalf("re-Add: %v", err)
	}
	if again.Fingerprint != e1.Fingerprint || c.Len() != 2 {
		t.Fatalf("re-adding changed the catalog: len=%d", c.Len())
	}

	list := c.List()
	if len(list) != 2 || list[0].Name != "alpha" || list[1].Name != "beta" {
		t.Fatalf("List out of (name, fingerprint) order: %+v", list)
	}

	// Resolve by full fingerprint, unique prefix, and unique name.
	for _, sel := range []string{e1.Fingerprint, e1.Fingerprint[:8], "alpha"} {
		e, err := c.Resolve(sel)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", sel, err)
		}
		if e.Fingerprint != e1.Fingerprint {
			t.Fatalf("Resolve(%q) = %s, want %s", sel, e.Fingerprint[:12], e1.Fingerprint[:12])
		}
	}
	if _, err := c.Resolve("no-such-model"); err == nil {
		t.Fatal("Resolve of an absent model succeeded")
	}
	if _, err := c.Resolve(""); err == nil {
		t.Fatal("Resolve of an empty selector succeeded")
	}

	// Evict removes the entry and the artifact file.
	if _, err := c.Evict("beta"); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after evict = %d, want 1", c.Len())
	}
	fp2 := fingerprintOf(t, a2)
	if _, err := os.Stat(filepath.Join(dir, "models", fp2+".json")); !os.IsNotExist(err) {
		t.Fatalf("evicted artifact file still present (stat err: %v)", err)
	}
	if _, err := c.Resolve("beta"); err == nil {
		t.Fatal("evicted model still resolves")
	}
}

// TestCatalogOpenRecovery exercises the index-as-cache contract: the
// artifact files alone reconstruct the catalog, and invalid files are
// reported while the valid remainder is served.
func TestCatalogOpenRecovery(t *testing.T) {
	dir := t.TempDir()
	c, err := repo.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	a1 := trainArtifact(t, 3, "alpha")
	a2 := trainArtifact(t, 4, "beta")
	if _, err := c.Add(a1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(a2); err != nil {
		t.Fatal(err)
	}
	fp1, fp2 := fingerprintOf(t, a1), fingerprintOf(t, a2)

	// Deleting the index loses nothing: Open rescans the artifact
	// files and rewrites it.
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	c, err = repo.Open(dir)
	if err != nil {
		t.Fatalf("Open after index loss: %v", err)
	}
	if c.Len() != 2 {
		t.Fatalf("recovered %d models, want 2", c.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		t.Fatalf("index not rewritten after rescan: %v", err)
	}

	// A garbage index is tolerated the same way.
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err = repo.Open(dir)
	if err != nil || c.Len() != 2 {
		t.Fatalf("Open with corrupt index: len=%d err=%v", c.Len(), err)
	}

	// A corrupt artifact file is skipped with an error; the valid
	// remainder still serves. The index must be reconciled first
	// (remove it so the bad file is actually decoded).
	if err := os.WriteFile(filepath.Join(dir, "models", fp1+".json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	c, err = repo.Open(dir)
	if err == nil {
		t.Fatal("Open swallowed a corrupt artifact file")
	}
	if c == nil || c.Len() != 1 {
		t.Fatalf("valid remainder not served: %v", err)
	}
	if _, rerr := c.Resolve(fp2); rerr != nil {
		t.Fatalf("surviving model unresolvable: %v", rerr)
	}

	// An artifact filed under the wrong fingerprint is rejected: the
	// filename is the content address.
	enc, err := a2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	wrong := strings.Repeat("ab", 32)
	if err := os.WriteFile(filepath.Join(dir, "models", wrong+".json"), enc, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	c, err = repo.Open(dir)
	if err == nil || !strings.Contains(err.Error(), "does not match filename") {
		t.Fatalf("mis-filed artifact not rejected: %v", err)
	}
	if c.Len() != 1 {
		t.Fatalf("catalog after mis-filed artifact: len=%d, want 1", c.Len())
	}
}

// TestCatalogMatcherVerifiesDisk: a cached entry whose artifact file
// was swapped for different content must fail closed, not serve the
// impostor under the original fingerprint.
func TestCatalogMatcherVerifiesDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := repo.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a1 := trainArtifact(t, 5, "alpha")
	a2 := trainArtifact(t, 6, "beta")
	e1, err := c.Add(a1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := a2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "models", e1.Fingerprint+".json"), enc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Matcher(e1.Fingerprint); err == nil || !strings.Contains(err.Error(), "content changed") {
		t.Fatalf("swapped artifact served: %v", err)
	}
}

func TestSelectorRoundTrip(t *testing.T) {
	fpA := strings.Repeat("0a", 32)
	fpB := strings.Repeat("0b", 32)
	cases := [][]repo.Member{
		{{Fingerprint: fpA, Weight: 1}},
		{{Fingerprint: fpA, Weight: 0.625}, {Fingerprint: fpB, Weight: 0.375}},
		{{Fingerprint: fpA, Weight: 1.0 / 3}, {Fingerprint: fpB, Weight: 2.0 / 3}},
	}
	for _, members := range cases {
		s := repo.FormatSelector(members)
		got, err := repo.ParseSelector(s)
		if err != nil {
			t.Fatalf("ParseSelector(%q): %v", s, err)
		}
		if len(got) != len(members) {
			t.Fatalf("round trip %q changed member count", s)
		}
		for i := range members {
			if got[i] != members[i] {
				t.Fatalf("round trip %q member %d: %+v != %+v", s, i, got[i], members[i])
			}
		}
	}
	// A single weight-1 member renders as the bare fingerprint — the
	// pre-repository provenance format.
	if s := repo.FormatSelector(cases[0]); s != fpA {
		t.Fatalf("single-member selector %q, want bare fingerprint", s)
	}
	// Bare terms default to weight 1.
	got, err := repo.ParseSelector(fpA + "," + fpB)
	if err != nil || got[0].Weight != 1 || got[1].Weight != 1 {
		t.Fatalf("bare ensemble terms: %+v, %v", got, err)
	}
	for _, bad := range []string{"", ",", "fp@", "fp@0", "fp@-1", "@0.5", "fp@x"} {
		if _, err := repo.ParseSelector(bad); err == nil {
			t.Fatalf("ParseSelector(%q) succeeded", bad)
		}
	}
}

func TestSelectMembers(t *testing.T) {
	e := func(fp string) repo.Entry { return repo.Entry{Fingerprint: fp} }
	ranked := []repo.Ranked{
		{Entry: e("f1"), Score: 0.6},
		{Entry: e("f2"), Score: 0.3},
		{Entry: e("f3"), Score: 0.1},
		{Entry: e("f4"), Score: 0},
	}
	if m := repo.Select(ranked, 1); len(m) != 1 || m[0] != (repo.Member{Fingerprint: "f1", Weight: 1}) {
		t.Fatalf("Select k=1: %+v", m)
	}
	m := repo.Select(ranked, 3)
	if len(m) != 3 {
		t.Fatalf("Select k=3 picked %d members", len(m))
	}
	sum := 0.0
	for _, mm := range m {
		sum += mm.Weight
	}
	if diff := sum - 1; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("ensemble weights sum to %v", sum)
	}
	if math.Abs(m[0].Weight-0.6) > 1e-12 || math.Abs(m[1].Weight-0.3) > 1e-12 {
		t.Fatalf("weights not score-proportional: %+v", m)
	}
	// Zero-scored models are never selected, even under a large k.
	if m := repo.Select(ranked, 10); len(m) != 3 {
		t.Fatalf("Select k=10 picked a zero-scored model: %+v", m)
	}
	if m := repo.Select(ranked[3:], 2); m != nil {
		t.Fatalf("Select over all-zero ranking: %+v", m)
	}
}
