package repo

import (
	"bytes"
	"encoding/json"
)

// decodeStrict unmarshals JSON rejecting unknown fields, so a foreign
// document in the index slot is detected instead of half-read.
func decodeStrict(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// encodeIndex serialises the index document with a trailing newline,
// matching the artifact encoding convention.
func encodeIndex(ix index) ([]byte, error) {
	b, err := json.MarshalIndent(ix, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
