package repo_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/datagen"
	"transer/internal/model"
	"transer/internal/repo"
	"transer/internal/testkit"
)

// TestSignaturePermutationInvariance: a domain signature is a pure
// function of the record and compare-row multisets — permuting either
// yields a bitwise-identical signature (field statistics, token hash
// list, centroid order and all).
func TestSignaturePermutationInvariance(t *testing.T) {
	testkit.Run(t, "signature-permutation", 8, func(pt *testkit.T) {
		a, b := testkit.DatabasePair(pt.Rng, 6+pt.Size)
		scheme := compare.DefaultScheme(a.Schema)
		var x [][]float64
		for _, ra := range a.Records {
			for _, rb := range b.Records {
				x = append(x, scheme.Pair(ra, rb))
			}
		}
		base := repo.BuildSignature(a, b, x)

		a.Records = testkit.Permute(testkit.Perm(pt.Rng, len(a.Records)), a.Records)
		b.Records = testkit.Permute(testkit.Perm(pt.Rng, len(b.Records)), b.Records)
		x = testkit.Permute(testkit.Perm(pt.Rng, len(x)), x)
		perm := repo.BuildSignature(a, b, x)

		if !reflect.DeepEqual(base, perm) {
			pt.Fatalf("signature changed under record/row permutation:\nbase %+v\nperm %+v", base, perm)
		}
	})
}

// TestSignatureSelfSimilarity: Similarity is symmetric, bounded to
// [0, 1], and exactly 1 against itself.
func TestSignatureSelfSimilarity(t *testing.T) {
	testkit.Run(t, "signature-self-similarity", 6, func(pt *testkit.T) {
		a, b := testkit.DatabasePair(pt.Rng, 6+pt.Size)
		scheme := compare.DefaultScheme(a.Schema)
		var x [][]float64
		for _, ra := range a.Records {
			for _, rb := range b.Records {
				x = append(x, scheme.Pair(ra, rb))
			}
		}
		sig := repo.BuildSignature(a, b, x)
		if s, _ := repo.Similarity(sig, sig); s != 1 {
			pt.Fatalf("self-similarity = %v, want exactly 1", s)
		}

		c, d := testkit.DatabasePair(pt.Rng, 6+pt.Size/2)
		other := repo.BuildSignature(c, d, nil)
		fwd, _ := repo.Similarity(sig, other)
		rev, _ := repo.Similarity(other, sig)
		if fwd != rev {
			pt.Fatalf("similarity asymmetric: %v vs %v", fwd, rev)
		}
		if fwd < 0 || fwd > 1 {
			pt.Fatalf("similarity %v out of [0,1]", fwd)
		}
	})
}

// TestSignatureScaleStability: the same domain sampled at half the
// scale must still look like itself — similarity above a coarse floor
// — and must stay closer to itself than to a structurally different
// domain at the same scale. This is what makes small target samples
// usable as search probes.
func TestSignatureScaleStability(t *testing.T) {
	ctx := context.Background()
	sigAt := func(b datagen.Builtin, scale float64) *model.Signature {
		pair := b.Make(scale)
		sig, err := repo.SignatureOf(ctx, pair.A, pair.B, pair.Blocking, 0)
		if err != nil {
			t.Fatalf("SignatureOf(%s@%v): %v", b.Key, scale, err)
		}
		return sig
	}
	acm, _ := datagen.BuiltinByKey("DBLP-ACM")
	msd, _ := datagen.BuiltinByKey("MSD")

	full := sigAt(acm, 0.2)
	half := sigAt(acm, 0.1)
	selfSim, _ := repo.Similarity(half, full)
	if selfSim < 0.5 {
		t.Fatalf("DBLP-ACM half-scale similarity %v below 0.5 — signatures too scale-sensitive", selfSim)
	}
	crossSim, _ := repo.Similarity(half, sigAt(msd, 0.2))
	if crossSim >= selfSim {
		t.Fatalf("half-scale DBLP-ACM closer to MSD (%v) than to itself (%v)", crossSim, selfSim)
	}
}

// TestSearchRankingDeterminism: RankEntries is bitwise identical for
// every worker count and invariant under input entry order — the
// worker-invariance leg of the determinism contract.
func TestSearchRankingDeterminism(t *testing.T) {
	var entries []repo.Entry
	for i := int64(0); i < 6; i++ {
		art := trainArtifact(t, 100+i, fmt.Sprintf("m%d", i))
		fp, err := art.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, repo.Entry{
			Fingerprint: fp,
			Name:        art.Name,
			Signature:   art.Provenance.Signature,
		})
	}
	target := entries[3].Signature

	ref := repo.RankEntries(target, entries, 0, 1)
	if len(ref) != len(entries) {
		t.Fatalf("ranking dropped entries: %d of %d", len(ref), len(entries))
	}
	if ref[0].Entry.Fingerprint != entries[3].Fingerprint {
		t.Fatalf("target's own signature not ranked first: %+v", ref[0].Entry.Name)
	}
	for _, w := range gateWorkers {
		got := repo.RankEntries(target, entries, 0, w)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("ranking differs at workers=%d", w)
		}
	}
	// Reversed input order, same ranking.
	rev := make([]repo.Entry, len(entries))
	for i, e := range entries {
		rev[len(entries)-1-i] = e
	}
	if got := repo.RankEntries(target, rev, 0, 4); !reflect.DeepEqual(got, ref) {
		t.Fatal("ranking depends on input entry order")
	}
}

// TestSignatureOfWorkerInvariance: the end-to-end signature builder
// (blocking, compare matrix, reduction) is bitwise identical for every
// worker count.
func TestSignatureOfWorkerInvariance(t *testing.T) {
	pair := datagen.DBLPACM(0.1)
	ctx := context.Background()
	ref, err := repo.SignatureOf(ctx, pair.A, pair.B, pair.Blocking, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 0} {
		got, err := repo.SignatureOf(ctx, pair.A, pair.B, pair.Blocking, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("signature differs at workers=%d", w)
		}
	}
	// The dedup view (b == nil) must also be stable.
	dedup, err := repo.SignatureOf(ctx, pair.A, nil, blocking.MinHashConfig{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dedup.Records != pair.A.NumRecords() {
		t.Fatalf("dedup signature counted %d records, want %d", dedup.Records, pair.A.NumRecords())
	}
}
