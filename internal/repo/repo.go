package repo

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"transer/internal/model"
)

// IndexSchemaVersion identifies the catalog index JSON document.
const IndexSchemaVersion = "transer.repo/v1"

// modelsDir is the subdirectory holding one artifact file per model,
// named <fingerprint>.json — the content address is the filename, so
// the directory alone reconstructs the catalog.
const modelsDir = "models"

// indexFile is the cached catalog index at the repository root. It is
// written atomically (model.AtomicWriteFile) and treated strictly as a
// cache: Open reconciles it against the artifact files and rewrites it
// when they disagree, so deleting it loses nothing.
const indexFile = "index.json"

// Entry is one catalogued model: the artifact's identity and the
// metadata search and selection need without loading the classifier.
type Entry struct {
	// Fingerprint is the artifact's hex SHA-256 identity
	// (model.Artifact.Fingerprint) and its address in the catalog.
	Fingerprint string    `json:"fingerprint"`
	Name        string    `json:"name"`
	CreatedAt   time.Time `json:"created_at"`
	Classifier  string    `json:"classifier"`
	Threshold   float64   `json:"threshold"`
	// SchemeSignature pins the comparison scheme; ensembles may only
	// combine models sharing it (their feature spaces coincide).
	SchemeSignature string `json:"scheme_signature"`
	// SourceName/TargetName are the training provenance domain names.
	SourceName string `json:"source_name,omitempty"`
	TargetName string `json:"target_name,omitempty"`
	// Signature is the model's domain signature (nil for artifacts
	// exported before signatures existed; such models are catalogued
	// but rank at similarity 0).
	Signature *model.Signature `json:"signature,omitempty"`
}

// entryOf projects an artifact onto its catalog entry.
func entryOf(a *model.Artifact, fp string) Entry {
	return Entry{
		Fingerprint:     fp,
		Name:            a.Name,
		CreatedAt:       a.CreatedAt,
		Classifier:      a.Classifier.Type,
		Threshold:       a.Threshold,
		SchemeSignature: a.Scheme.Signature,
		SourceName:      a.Provenance.SourceName,
		TargetName:      a.Provenance.TargetName,
		Signature:       a.Provenance.Signature,
	}
}

// index is the persisted catalog index document.
type index struct {
	Schema  string  `json:"schema"`
	Entries []Entry `json:"entries"`
}

// Catalog is a persistent, content-addressed model repository rooted
// at a directory:
//
//	<dir>/models/<fingerprint>.json   one artifact per model
//	<dir>/index.json                  atomically swapped entry cache
//
// All methods are safe for concurrent use. Matchers are assembled
// lazily and cached per fingerprint; artifacts are immutable once
// added (the fingerprint is the content), so the cache never goes
// stale.
type Catalog struct {
	dir string

	mu       sync.RWMutex
	entries  map[string]Entry
	matchers map[string]*model.Matcher
}

// Open opens (creating if necessary) the catalog rooted at dir and
// reconciles the index against the artifact files: entries whose file
// vanished are dropped, artifact files missing from the index are
// decoded and adopted (this is the crash-recovery path — the artifact
// write commits a model, the index is only a cache), and a reconciled
// index is rewritten atomically when anything changed. Artifact files
// that fail to decode or whose content does not match their filename
// are skipped with an error listing them, after the valid remainder
// has been catalogued.
func Open(dir string) (*Catalog, error) {
	if err := os.MkdirAll(filepath.Join(dir, modelsDir), 0o755); err != nil {
		return nil, err
	}
	c := &Catalog{
		dir:      dir,
		entries:  make(map[string]Entry),
		matchers: make(map[string]*model.Matcher),
	}

	indexed := make(map[string]Entry)
	if b, err := os.ReadFile(filepath.Join(dir, indexFile)); err == nil {
		var ix index
		// A corrupt or foreign index is not an error: the artifact scan
		// below rebuilds it from scratch.
		if jsonErr := decodeStrict(b, &ix); jsonErr == nil && ix.Schema == IndexSchemaVersion {
			for _, e := range ix.Entries {
				indexed[e.Fingerprint] = e
			}
		}
	}

	names, err := listModelFiles(filepath.Join(dir, modelsDir))
	if err != nil {
		return nil, err
	}
	var bad []string
	drift := len(indexed) != len(names)
	for _, name := range names {
		fp := strings.TrimSuffix(name, ".json")
		if e, ok := indexed[fp]; ok {
			c.entries[fp] = e
			continue
		}
		drift = true
		a, err := model.Load(filepath.Join(dir, modelsDir, name))
		if err != nil {
			bad = append(bad, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		got, err := a.Fingerprint()
		if err != nil {
			bad = append(bad, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		if got != fp {
			bad = append(bad, fmt.Sprintf("%s: content fingerprint %s does not match filename", name, got))
			continue
		}
		c.entries[fp] = entryOf(a, fp)
	}
	if drift {
		if err := c.writeIndexLocked(); err != nil {
			return nil, err
		}
	}
	if len(bad) > 0 {
		return c, fmt.Errorf("repo: %d invalid artifact file(s) skipped: %s", len(bad), strings.Join(bad, "; "))
	}
	return c, nil
}

// listModelFiles returns the ".json" artifact filenames under dir,
// sorted, skipping temp files and subdirectories.
func listModelFiles(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Dir returns the catalog root directory.
func (c *Catalog) Dir() string { return c.dir }

// Len returns the number of catalogued models.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Add catalogues an artifact: the artifact file is written first
// (atomically, under its fingerprint), then the index is updated.
// Adding an artifact already present is a no-op returning the existing
// entry — content addressing makes Add idempotent.
func (c *Catalog) Add(a *model.Artifact) (Entry, error) {
	fp, err := a.Fingerprint()
	if err != nil {
		return Entry{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[fp]; ok {
		return e, nil
	}
	if err := a.WriteFile(c.artifactPath(fp)); err != nil {
		return Entry{}, err
	}
	e := entryOf(a, fp)
	c.entries[fp] = e
	if err := c.writeIndexLocked(); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// AddFile loads an artifact from path and catalogues it.
func (c *Catalog) AddFile(path string) (Entry, error) {
	a, err := model.Load(path)
	if err != nil {
		return Entry{}, err
	}
	return c.Add(a)
}

// Evict removes the model selected by sel (a fingerprint, unique
// fingerprint prefix, or unique model name) from the catalog and
// deletes its artifact file.
func (c *Catalog) Evict(sel string) (Entry, error) {
	e, err := c.Resolve(sel)
	if err != nil {
		return Entry{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := os.Remove(c.artifactPath(e.Fingerprint)); err != nil && !os.IsNotExist(err) {
		return Entry{}, err
	}
	delete(c.entries, e.Fingerprint)
	delete(c.matchers, e.Fingerprint)
	if err := c.writeIndexLocked(); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// List returns all entries sorted by (name, fingerprint).
func (c *Catalog) List() []Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// Resolve finds the entry selected by sel: a full fingerprint, a
// unique fingerprint prefix (at least 4 hex digits), or a unique model
// name. Ambiguity and absence are distinct errors.
func (c *Catalog) Resolve(sel string) (Entry, error) {
	if sel == "" {
		return Entry{}, fmt.Errorf("repo: empty model selector")
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if e, ok := c.entries[sel]; ok {
		return e, nil
	}
	var hits []Entry
	if len(sel) >= 4 && isHex(sel) {
		for fp, e := range c.entries {
			if strings.HasPrefix(fp, sel) {
				hits = append(hits, e)
			}
		}
	}
	if len(hits) == 0 {
		for _, e := range c.entries {
			if e.Name == sel {
				hits = append(hits, e)
			}
		}
	}
	switch len(hits) {
	case 1:
		return hits[0], nil
	case 0:
		return Entry{}, fmt.Errorf("repo: no model matches %q (catalog has %d models)", sel, len(c.entries))
	default:
		sort.Slice(hits, func(i, j int) bool { return hits[i].Fingerprint < hits[j].Fingerprint })
		fps := make([]string, len(hits))
		for i, e := range hits {
			fps[i] = e.Fingerprint[:12]
		}
		return Entry{}, fmt.Errorf("repo: selector %q is ambiguous (matches %s)", sel, strings.Join(fps, ", "))
	}
}

// Matcher returns the assembled matcher of the model selected by sel,
// loading and caching it on first use.
func (c *Catalog) Matcher(sel string) (*model.Matcher, error) {
	e, err := c.Resolve(sel)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	m, ok := c.matchers[e.Fingerprint]
	c.mu.RUnlock()
	if ok {
		return m, nil
	}
	m, err = model.LoadMatcher(c.artifactPath(e.Fingerprint))
	if err != nil {
		return nil, err
	}
	if got := m.Fingerprint(); got != e.Fingerprint {
		return nil, fmt.Errorf("repo: artifact %s content changed on disk (fingerprint now %s)", e.Fingerprint[:12], got[:12])
	}
	c.mu.Lock()
	c.matchers[e.Fingerprint] = m
	c.mu.Unlock()
	return m, nil
}

func (c *Catalog) artifactPath(fp string) string {
	return filepath.Join(c.dir, modelsDir, fp+".json")
}

// writeIndexLocked rewrites the index cache atomically. Callers hold
// c.mu (read lock suffices for the entry snapshot at Open time, but
// all current callers hold the write lock or are single-threaded).
func (c *Catalog) writeIndexLocked() error {
	ix := index{Schema: IndexSchemaVersion, Entries: make([]Entry, 0, len(c.entries))}
	for _, e := range c.entries {
		ix.Entries = append(ix.Entries, e)
	}
	sort.Slice(ix.Entries, func(i, j int) bool {
		return ix.Entries[i].Fingerprint < ix.Entries[j].Fingerprint
	})
	b, err := encodeIndex(ix)
	if err != nil {
		return err
	}
	return model.AtomicWriteFile(filepath.Join(c.dir, indexFile), b)
}

func isHex(s string) bool {
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'f':
		default:
			return false
		}
	}
	return true
}
