package repo_test

import (
	"context"
	"fmt"
	"testing"

	"transer/internal/datagen"
	"transer/internal/model"
	"transer/internal/repo"
)

// TestTrueSourceRanking is the selection acceptance gate: catalogue
// one signature per builtin dataset at scale 0.25, probe with each
// dataset re-sampled at scale 0.2, and require the true source to
// rank first every time. Short mode keeps one dataset per schema
// family (bibliographic, music, demographic) to stay fast.
func TestTrueSourceRanking(t *testing.T) {
	builtins := datagen.Builtins()
	if testing.Short() {
		keep := map[string]bool{"DBLP-ACM": true, "DBLP-Scholar": true, "MSD": true, "IOS-Bp-Dp": true}
		var sub []datagen.Builtin
		for _, b := range builtins {
			if keep[b.Key] {
				sub = append(sub, b)
			}
		}
		builtins = sub
	}

	ctx := context.Background()
	sigAt := func(b datagen.Builtin, scale float64) *model.Signature {
		pair := b.Make(scale)
		sig, err := repo.SignatureOf(ctx, pair.A, pair.B, pair.Blocking, 0)
		if err != nil {
			t.Fatalf("SignatureOf(%s@%v): %v", b.Key, scale, err)
		}
		return sig
	}

	entries := make([]repo.Entry, len(builtins))
	for i, b := range builtins {
		entries[i] = repo.Entry{
			// Synthetic content addresses; the ranking only reads the
			// signatures.
			Fingerprint: fmt.Sprintf("%064x", i+1),
			Name:        b.Key,
			Signature:   sigAt(b, 0.25),
		}
	}

	for _, b := range builtins {
		target := sigAt(b, 0.2)
		ranked := repo.RankEntries(target, entries, 0, 0)
		if len(ranked) != len(entries) {
			t.Fatalf("%s: ranking dropped entries", b.Key)
		}
		if got := ranked[0].Entry.Name; got != b.Key {
			for _, r := range ranked {
				t.Logf("  %-14s score=%.4f fields=%.3f tokens=%.3f centroids=%.3f",
					r.Entry.Name, r.Score, r.Components.Fields, r.Components.Tokens, r.Components.Centroids)
			}
			t.Fatalf("probing with %s ranked %s first", b.Key, got)
		}
		if ranked[0].Score <= ranked[1].Score {
			t.Fatalf("%s: no separation between true source and runner-up (%v vs %v)",
				b.Key, ranked[0].Score, ranked[1].Score)
		}
	}
}
