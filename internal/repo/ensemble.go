package repo

import (
	"fmt"
	"strings"

	"transer/internal/dataset"
	"transer/internal/model"
)

// Ensemble scores record pairs with one or more catalogued matchers.
// A single-member ensemble delegates every call directly to its
// matcher — byte-identical to serving that model without the
// repository in the path (the differential gate in repo_test.go holds
// this). A multi-member ensemble returns the weighted sum of its
// members' scores, accumulated in fixed member order, so output is
// bitwise identical for every worker count (each member's Score
// already is, and the combination order never varies).
//
// All members must share the scheme signature and decision threshold:
// their feature spaces coincide, so one Vector computation feeds every
// member. An Ensemble is immutable and safe for concurrent use.
type Ensemble struct {
	members []*model.Matcher
	weights []float64
}

// Single wraps one matcher as a trivial ensemble.
func Single(m *model.Matcher) *Ensemble {
	return &Ensemble{members: []*model.Matcher{m}, weights: []float64{1}}
}

// NewEnsemble builds a weighted ensemble. Weights must be positive and
// are normalised to sum to 1; members must agree on scheme signature
// and threshold. One member with any weight collapses to Single.
func NewEnsemble(members []*model.Matcher, weights []float64) (*Ensemble, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("repo: ensemble needs at least one member")
	}
	if len(weights) != len(members) {
		return nil, fmt.Errorf("repo: %d members but %d weights", len(members), len(weights))
	}
	if len(members) == 1 {
		return Single(members[0]), nil
	}
	first := members[0].Artifact
	total := 0.0
	for i, m := range members {
		if weights[i] <= 0 {
			return nil, fmt.Errorf("repo: ensemble weight %d is %v, want > 0", i, weights[i])
		}
		total += weights[i]
		a := m.Artifact
		if a.Scheme.Signature != first.Scheme.Signature {
			return nil, fmt.Errorf("repo: ensemble member %s scheme %q differs from %s scheme %q — feature spaces are incompatible",
				m.Fingerprint()[:12], a.Scheme.Signature, members[0].Fingerprint()[:12], first.Scheme.Signature)
		}
		if a.Threshold != first.Threshold {
			return nil, fmt.Errorf("repo: ensemble member %s threshold %v differs from %v",
				m.Fingerprint()[:12], a.Threshold, first.Threshold)
		}
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / total
	}
	return &Ensemble{members: append([]*model.Matcher(nil), members...), weights: norm}, nil
}

// EnsembleFor resolves a selector string ("fp", "name", or
// "fp@w,fp@w") against the catalog and assembles the ensemble.
func (c *Catalog) EnsembleFor(sel string) (*Ensemble, error) {
	members, err := ParseSelector(sel)
	if err != nil {
		return nil, err
	}
	matchers := make([]*model.Matcher, len(members))
	weights := make([]float64, len(members))
	for i, m := range members {
		matchers[i], err = c.Matcher(m.Fingerprint)
		if err != nil {
			return nil, err
		}
		weights[i] = m.Weight
	}
	return NewEnsemble(matchers, weights)
}

// Members returns the member matchers in scoring order.
func (e *Ensemble) Members() []*model.Matcher { return e.members }

// Weights returns the normalised member weights.
func (e *Ensemble) Weights() []float64 { return e.weights }

// Primary returns the highest-weighted member (the first — Select
// emits members best-first), which defines the ensemble's schema,
// scheme and threshold.
func (e *Ensemble) Primary() *model.Matcher { return e.members[0] }

// Label names the ensemble for response documents: a single member's
// artifact name, or "ensemble(fp12@w,...)" with truncated fingerprints
// for a real ensemble (the full reproducible selector is Selector).
func (e *Ensemble) Label() string {
	if len(e.members) == 1 {
		return e.members[0].Artifact.Name
	}
	parts := make([]string, len(e.members))
	for i, m := range e.members {
		parts[i] = fmt.Sprintf("%s@%.3f", m.Fingerprint()[:12], e.weights[i])
	}
	return "ensemble(" + strings.Join(parts, ",") + ")"
}

// Selector renders the ensemble back to its selector string.
func (e *Ensemble) Selector() string {
	members := make([]Member, len(e.members))
	for i, m := range e.members {
		members[i] = Member{Fingerprint: m.Fingerprint(), Weight: e.weights[i]}
	}
	return FormatSelector(members)
}

// RecordFromValues builds a schema-conformant record via the primary
// member (all members share the schema).
func (e *Ensemble) RecordFromValues(values map[string]string) (dataset.Record, error) {
	return e.members[0].RecordFromValues(values)
}

// Vector computes the shared comparison feature vector of a pair.
func (e *Ensemble) Vector(a, b dataset.Record) []float64 {
	return e.members[0].Vector(a, b)
}

// Score satisfies query.Scorer. One member delegates directly (bitwise
// equal to the bare matcher); otherwise the weighted member scores are
// combined in fixed order.
func (e *Ensemble) Score(x [][]float64, workers int) []float64 {
	if len(e.members) == 1 {
		return e.members[0].Score(x, workers)
	}
	out := make([]float64, len(x))
	for mi, m := range e.members {
		w := e.weights[mi]
		for i, s := range m.Score(x, workers) {
			out[i] += w * s
		}
	}
	return out
}

// Decide applies the shared decision threshold.
func (e *Ensemble) Decide(p float64) bool { return e.members[0].Decide(p) }
