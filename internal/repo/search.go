package repo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"transer/internal/model"
	"transer/internal/parallel"
)

// Ranked is one search result: a catalogued model, its combined
// similarity to the target signature, and the score breakdown.
type Ranked struct {
	Entry      Entry      `json:"entry"`
	Score      float64    `json:"score"`
	Components Components `json:"components"`
}

// Search ranks every catalogued model against the target signature,
// best first. Ties break by ascending fingerprint, and per-entry
// scores are pure functions of the two signatures, so the ranking is
// bitwise identical for every worker count (scores are written to
// index-addressed slots over the worker pool). Models without a
// stored signature score 0 and sink to the bottom. limit > 0 caps the
// returned prefix.
func (c *Catalog) Search(target *model.Signature, limit, workers int) []Ranked {
	return RankEntries(target, c.List(), limit, workers)
}

// RankEntries is Search over any entry snapshot (the catalog-free
// form; cmd/repo's bench mode ranks synthetic catalogs with it).
// The input slice is not modified.
func RankEntries(target *model.Signature, snapshot []Entry, limit, workers int) []Ranked {
	// Fix the scoring order independently of the input ordering so the
	// parallel fan-out is index-addressed over a canonical slice.
	entries := append([]Entry(nil), snapshot...)
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Fingerprint < entries[j].Fingerprint
	})
	out := make([]Ranked, len(entries))
	parallel.ForEach(workers, len(entries), func(i int) {
		score, comp := Similarity(target, entries[i].Signature)
		out[i] = Ranked{Entry: entries[i], Score: score, Components: comp}
	})
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entry.Fingerprint < out[j].Entry.Fingerprint
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Member is one ensemble constituent in a parsed selector.
type Member struct {
	Fingerprint string  `json:"fingerprint"`
	Weight      float64 `json:"weight"`
}

// Select turns a ranking into an ensemble membership: the top k
// results with positive score, weighted by their normalised scores.
// k <= 1 selects the single best model at weight 1. The result is
// empty when nothing scored above zero (an all-zero catalog gives the
// caller nothing to serve with — better an explicit error upstream
// than an arbitrary pick).
func Select(ranked []Ranked, k int) []Member {
	if k < 1 {
		k = 1
	}
	var picked []Ranked
	for _, r := range ranked {
		if r.Score <= 0 {
			break
		}
		picked = append(picked, r)
		if len(picked) == k {
			break
		}
	}
	if len(picked) == 0 {
		return nil
	}
	if len(picked) == 1 {
		return []Member{{Fingerprint: picked[0].Entry.Fingerprint, Weight: 1}}
	}
	total := 0.0
	for _, r := range picked {
		total += r.Score
	}
	out := make([]Member, len(picked))
	for i, r := range picked {
		out[i] = Member{Fingerprint: r.Entry.Fingerprint, Weight: r.Score / total}
	}
	return out
}

// FormatSelector renders members as the model selector string the
// serving surfaces exchange: a bare fingerprint for one member,
// "fp@weight,fp@weight" for an ensemble. Weights use the shortest
// round-trip float encoding, so format→parse is lossless.
func FormatSelector(members []Member) string {
	if len(members) == 1 && members[0].Weight == 1 {
		return members[0].Fingerprint
	}
	parts := make([]string, len(members))
	for i, m := range members {
		parts[i] = m.Fingerprint + "@" + strconv.FormatFloat(m.Weight, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// ParseSelector parses a model selector string: a single fingerprint
// (or unique prefix / model name), or a comma-separated ensemble of
// "<fingerprint>[@weight]" terms. Omitted weights default to 1;
// weights must be positive and are normalised by the ensemble
// constructor, not here.
func ParseSelector(s string) ([]Member, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("repo: empty model selector")
	}
	parts := strings.Split(s, ",")
	out := make([]Member, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("repo: selector %q has an empty term", s)
		}
		m := Member{Fingerprint: p, Weight: 1}
		if at := strings.LastIndexByte(p, '@'); at >= 0 {
			w, err := strconv.ParseFloat(p[at+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("repo: selector term %q: bad weight: %v", p, err)
			}
			if w <= 0 {
				return nil, fmt.Errorf("repo: selector term %q: weight must be positive", p)
			}
			m = Member{Fingerprint: p[:at], Weight: w}
			if m.Fingerprint == "" {
				return nil, fmt.Errorf("repo: selector term %q has no model", p)
			}
		}
		out = append(out, m)
	}
	return out, nil
}
