// Package repo implements the model repository: a content-addressed
// on-disk catalog of transer.model/v1 artifacts searchable by domain
// similarity, and the selection layer that picks the best stored
// source model (or a weighted ensemble of the top k) for a new
// unlabelled target domain.
//
// Identity is the artifact fingerprint (model.Artifact.Fingerprint,
// the SHA-256 of the canonically encoded artifact); the catalog stores
// one file per fingerprint plus an atomically swapped index, and
// recovers by rescanning artifact files when the index is missing or
// stale. Search compares compact domain signatures
// (model.Signature): per-field null/distinct/token statistics from
// internal/query's collector, KMV token sketches sharing MinHash
// blocking's token hashing, and the domain's dominant quantized
// compare-vector centroids. Everything is deterministic: signatures
// are pure functions of the data (record order never matters) and
// search rankings are bitwise identical for every worker count.
//
// See DESIGN.md §14 for the layout, the signature definition, the
// selection cost model and the determinism contract.
package repo

import (
	"context"
	"math"
	"sort"

	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/dataset"
	"transer/internal/kdtree"
	"transer/internal/model"
	"transer/internal/query"
)

// MaxCentroids bounds the quantized compare-vector centroids kept in a
// signature. 32 weighted vectors cover the bulk of the pair mass of
// every builtin domain (the 0.05 quantization grid repeats heavily,
// paper Table 1) while keeping signatures a few KB.
const MaxCentroids = 32

// centroidStep re-quantizes compare vectors onto a coarse grid before
// the centroid reduction. The scheme's own 0.05 grid leaves noisy
// domains with thousands of near-unique vectors whose top-32 set is
// unstable across samples of the same domain; a 0.25 grid concentrates
// the pair mass into few cells, so the kept centroids are a stable
// fingerprint of the distribution rather than of one sample.
const centroidStep = 0.25

// decayRate is the exponential decay applied to centroid distances —
// the same e^{-5x} shape SEL's structural similarity uses
// (internal/core, Equation 2 of the paper), reused so signature
// similarity and instance transferability live on one scale.
const decayRate = 5.0

// Component weights of the combined similarity score. Field statistics
// and token overlap carry most of the weight: they exist for every
// signature and are stable under re-sampling. The centroid component
// refines the ranking when both sides carry compare vectors of the
// same dimensionality — but it sees only the top-mass cells of a
// sampled pair distribution, so it is the noisiest of the three
// between scales of the same domain and gets the smallest weight. It
// is re-weighted away entirely when either side has no centroids (see
// Similarity).
const (
	weightFields    = 0.40
	weightTokens    = 0.40
	weightCentroids = 0.20
)

// BuildSignature computes the domain signature of a database pair and
// the compare vectors of its candidate pairs (x may be nil when no
// vectors are at hand; the signature then carries no centroids). It is
// a pure function of the record and row multisets: permuting records
// or vector rows yields an identical signature.
func BuildSignature(a, b *dataset.Database, x [][]float64) *model.Signature {
	st := query.Collect(a, b)
	sig := &model.Signature{
		Schema:      model.SignatureSchemaVersion,
		Records:     a.NumRecords(),
		Pairs:       len(x),
		SketchK:     st.Sketch.K(),
		TokenHashes: st.Sketch.Hashes(),
	}
	if b != a {
		sig.Records += b.NumRecords()
	}
	sig.Fields = make([]model.FieldSignature, len(st.Fields))
	for i, f := range st.Fields {
		sig.Fields[i] = model.FieldSignature{
			Name:          f.Name,
			Type:          f.Type.String(),
			NullRatio:     f.NullRatio,
			DistinctRatio: f.DistinctRatio,
			AvgTokens:     f.AvgTokens,
		}
	}
	sig.Centroids = centroidsOf(x)
	return sig
}

// centroidsOf reduces a compare matrix to its MaxCentroids
// highest-multiplicity distinct vectors on the centroidStep grid,
// weighted by pair fraction. Ordering is (weight descending, vector
// bytes ascending), which is invariant under row permutation.
func centroidsOf(x [][]float64) []model.Centroid {
	if len(x) == 0 {
		return nil
	}
	coarse := make([][]float64, len(x))
	for i, row := range x {
		c := make([]float64, len(row))
		for j, v := range row {
			c[j] = math.Round(v/centroidStep) * centroidStep
		}
		coarse[i] = c
	}
	u := kdtree.Uniq(coarse)
	order := make([]int, u.Len())
	for i := range order {
		order[i] = i
	}
	keys := make([]string, u.Len())
	var buf []byte
	for i, v := range u.Vecs {
		buf = kdtree.VectorKey(buf[:0], v)
		keys[i] = string(buf)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if len(u.Members[a]) != len(u.Members[b]) {
			return len(u.Members[a]) > len(u.Members[b])
		}
		return keys[a] < keys[b]
	})
	n := len(order)
	if n > MaxCentroids {
		n = MaxCentroids
	}
	out := make([]model.Centroid, n)
	total := float64(len(x))
	for i := 0; i < n; i++ {
		ui := order[i]
		vec := make([]float64, len(u.Vecs[ui]))
		copy(vec, u.Vecs[ui])
		out[i] = model.Centroid{
			Weight: float64(len(u.Members[ui])) / total,
			Vector: vec,
		}
	}
	return out
}

// SignatureOf builds the signature of a raw database pair end to end:
// it runs LSH blocking through the query engine, computes the
// candidate compare matrix under the schema's default scheme, and
// reduces both to a signature. The blocking strategy is pinned to LSH
// rather than left to the planner: the auto planner switches operators
// by input size, which would make the candidate-pair distribution —
// and so the centroid component — incomparable between a full-scale
// catalogued signature and a small target probe of the same domain.
// Pass b == nil for a dedup view of a single database (candidates
// restricted to i < j). lsh optionally overrides the MinHash
// configuration (zero value = blocking defaults); workers bounds the
// compare fan-out — the signature is bitwise identical for every
// worker count.
func SignatureOf(ctx context.Context, a, b *dataset.Database, lsh blocking.MinHashConfig, workers int) (*model.Signature, error) {
	job := query.Job{A: a, B: b, LSH: lsh, Workers: workers, Force: query.StrategyLSH}
	plan, err := query.PlanJob(job)
	if err != nil {
		return nil, err
	}
	selfJoin := b == nil || b == a
	if selfJoin {
		b = a
	}
	pairs := query.Candidates(a, b, plan.Block)
	if selfJoin {
		pairs = query.SelfJoinPairs(pairs)
	}
	scheme := compare.DefaultScheme(a.Schema)
	scheme.Workers = workers
	x, err := query.CompareMatrix(ctx, a, b, scheme, pairs)
	if err != nil {
		return nil, err
	}
	return BuildSignature(a, b, x), nil
}

// Components breaks a similarity score into its parts (each in
// [0, 1]), returned by Search so rankings are explainable.
type Components struct {
	// SchemaOverlap is the fraction of fields matched by name and type
	// across the two signatures (over the wider schema).
	SchemaOverlap float64 `json:"schema_overlap"`
	// Fields compares null/distinct/token statistics of the matched
	// fields, scaled by SchemaOverlap.
	Fields float64 `json:"fields"`
	// Tokens is the KMV-estimated Jaccard of the two domains' token
	// vocabularies.
	Tokens float64 `json:"tokens"`
	// Centroids compares the quantized compare-vector distributions
	// (0 when either side has none or dimensionalities differ).
	Centroids float64 `json:"centroids"`
}

// Similarity scores how well a stored model's domain signature matches
// a target's signature, in [0, 1]. It is symmetric, pure, and NaN-free
// for valid signatures. When either side carries no centroids (or the
// feature dimensionalities differ, i.e. different schemas), the
// centroid weight is redistributed onto the field and token components
// so signatures without vectors still rank on the full scale.
func Similarity(target, source *model.Signature) (float64, Components) {
	var c Components
	if target == nil || source == nil {
		return 0, c
	}
	c.SchemaOverlap, c.Fields = fieldSimilarity(target.Fields, source.Fields)
	c.Tokens = tokenJaccard(target, source)
	var ok bool
	c.Centroids, ok = centroidSimilarity(target.Centroids, source.Centroids)
	if !ok {
		// Redistribute the centroid weight proportionally.
		rest := weightFields + weightTokens
		return weightFields/rest*c.Fields + weightTokens/rest*c.Tokens, c
	}
	return weightFields*c.Fields + weightTokens*c.Tokens + weightCentroids*c.Centroids, c
}

// fieldSimilarity matches fields by (name, type) and compares their
// statistics. Iteration follows the target's field order, so the
// result is deterministic.
func fieldSimilarity(target, source []model.FieldSignature) (overlap, sim float64) {
	if len(target) == 0 || len(source) == 0 {
		return 0, 0
	}
	type key struct{ name, typ string }
	byKey := make(map[key]model.FieldSignature, len(source))
	for _, f := range source {
		byKey[key{f.Name, f.Type}] = f
	}
	matched := 0
	total := 0.0
	for _, tf := range target {
		sf, ok := byKey[key{tf.Name, tf.Type}]
		if !ok {
			continue
		}
		matched++
		dNull := math.Abs(tf.NullRatio - sf.NullRatio)
		dDist := math.Abs(tf.DistinctRatio - sf.DistinctRatio)
		dTok := 0.0
		if m := math.Max(tf.AvgTokens, sf.AvgTokens); m > 0 {
			dTok = math.Abs(tf.AvgTokens-sf.AvgTokens) / m
		}
		total += 1 - (dNull+dDist+dTok)/3
	}
	wider := len(target)
	if len(source) > wider {
		wider = len(source)
	}
	overlap = float64(matched) / float64(wider)
	if matched == 0 {
		return overlap, 0
	}
	return overlap, overlap * (total / float64(matched))
}

// tokenJaccard estimates the Jaccard similarity of two domains' token
// vocabularies from their signatures' sorted KMV hash lists: over the
// k smallest distinct hashes of the union (k capped by the smaller
// sketch), the fraction present in both lists — the classical KMV set
// estimator. Exact when both domains are small enough that the
// sketches kept every hash.
func tokenJaccard(a, b *model.Signature) float64 {
	ha, hb := a.TokenHashes, b.TokenHashes
	if len(ha) == 0 || len(hb) == 0 {
		return 0
	}
	k := a.SketchK
	if b.SketchK < k {
		k = b.SketchK
	}
	// Merge the two ascending lists, walking the union smallest-first.
	i, j, union, both := 0, 0, 0, 0
	for (i < len(ha) || j < len(hb)) && union < k {
		switch {
		case j >= len(hb) || (i < len(ha) && ha[i] < hb[j]):
			i++
		case i >= len(ha) || hb[j] < ha[i]:
			j++
		default: // equal: in both
			both++
			i++
			j++
		}
		union++
	}
	if union == 0 {
		return 0
	}
	return float64(both) / float64(union)
}

// centroidSimilarity compares two weighted centroid sets: the
// symmetric weighted mean distance from each centroid to its nearest
// counterpart, normalised by sqrt(m) (the feature-space diameter
// scale SEL uses) and pushed through the e^{-5x} decay. Returns
// ok=false when either set is empty or dimensionalities differ — the
// caller re-weights instead of guessing.
func centroidSimilarity(a, b []model.Centroid) (sim float64, ok bool) {
	if len(a) == 0 || len(b) == 0 {
		return 0, false
	}
	m := len(a[0].Vector)
	if m == 0 || len(b[0].Vector) != m {
		return 0, false
	}
	d := (directedCentroidDist(a, b) + directedCentroidDist(b, a)) / 2
	d /= math.Sqrt(float64(m))
	return math.Exp(-decayRate * d), true
}

// directedCentroidDist is the weighted mean nearest-counterpart
// Euclidean distance from set a into set b. Weights are renormalised
// over a (a truncated top-N keeps relative mass).
func directedCentroidDist(a, b []model.Centroid) float64 {
	totalW, acc := 0.0, 0.0
	for _, ca := range a {
		best := math.Inf(1)
		for _, cb := range b {
			d2 := 0.0
			for i := range ca.Vector {
				diff := ca.Vector[i] - cb.Vector[i]
				d2 += diff * diff
			}
			if d2 < best {
				best = d2
			}
		}
		acc += ca.Weight * math.Sqrt(best)
		totalW += ca.Weight
	}
	if totalW == 0 {
		return 0
	}
	return acc / totalW
}
