package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWordDeterministic(t *testing.T) {
	e := New(16, 0, 1)
	a := e.Word("smith")
	b := e.Word("smith")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same word embedded differently at %d", i)
		}
	}
}

func TestWordUnitNorm(t *testing.T) {
	e := New(16, 0, 1)
	v := e.Word("kilmarnock")
	n := 0.0
	for _, x := range v {
		n += x * x
	}
	if math.Abs(math.Sqrt(n)-1) > 1e-9 {
		t.Errorf("word vector norm %v, want 1", math.Sqrt(n))
	}
}

func TestOOVBehaviourWordLevel(t *testing.T) {
	// Pure word hashing: a one-character typo yields an unrelated
	// vector (the FastText-OOV failure mode DR reproduces).
	e := New(32, 0, 1)
	cos := e.Cosine("smith", "smyth")
	if math.Abs(cos) > 0.5 {
		t.Errorf("word-level embedding should not relate typo variants, cosine %v", cos)
	}
}

func TestSubwordSharing(t *testing.T) {
	// With subword blending, typo variants become related.
	word := New(32, 0, 1)
	sub := New(32, 1, 1)
	cw := word.Cosine("smith", "smyth")
	cs := sub.Cosine("smith", "smyth")
	if cs <= cw {
		t.Errorf("subword cosine %v should exceed word-level %v", cs, cw)
	}
}

func TestValueAveragesTokens(t *testing.T) {
	e := New(8, 0, 1)
	v := e.Value("john smith")
	j := e.Word("john")
	s := e.Word("smith")
	for i := range v {
		want := (j[i] + s[i]) / 2
		if math.Abs(v[i]-want) > 1e-12 {
			t.Fatalf("value embedding is not the token mean at %d", i)
		}
	}
	zero := e.Value("")
	for _, x := range zero {
		if x != 0 {
			t.Errorf("empty value should embed to zero")
		}
	}
}

func TestPairFeatures(t *testing.T) {
	e := New(8, 0, 1)
	f := e.PairFeatures("john smith", "john smith")
	if len(f) != 9 {
		t.Fatalf("pair feature width %d, want dim+1", len(f))
	}
	for i := 0; i < 8; i++ {
		if f[i] != 0 {
			t.Errorf("identical values should have zero diff at %d", i)
		}
	}
	if math.Abs(f[8]-1) > 1e-9 {
		t.Errorf("identical values should have cosine feature 1, got %v", f[8])
	}
	// Empty pair: zero vector diff and 0 cosine feature.
	f = e.PairFeatures("", "")
	if f[8] != 0 {
		t.Errorf("empty pair cosine feature = %v, want 0", f[8])
	}
}

func TestCosineRange(t *testing.T) {
	e := New(16, 0.5, 2)
	prop := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		c := e.Cosine(a, b)
		return c >= -1-1e-9 && c <= 1+1e-9 && !math.IsNaN(c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("cosine out of range: %v", err)
	}
}

func TestNewPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for non-positive dim")
		}
	}()
	New(0, 0, 1)
}
