// Package embed provides deterministic hashed word embeddings standing
// in for the pre-trained FastText vectors used by the DR baseline
// (Thirumuruganathan et al., 2018). Each word token hashes to a fixed
// pseudo-random unit vector, mimicking a pre-trained lookup table: two
// occurrences of the same token share a vector, while out-of-vocabulary
// variations (typos, abbreviations — ubiquitous in structured personal
// data) map to unrelated vectors. This reproduces the OOV failure mode
// the paper identifies as the cause of DR's negative transfer. An
// optional subword component blends in character n-gram vectors for
// FastText-style subword sharing.
package embed

import (
	"hash/fnv"
	"math"
	"math/rand"

	"transer/internal/strutil"
)

// Embedder maps strings to dense vectors.
type Embedder struct {
	// Dim is the embedding dimensionality.
	Dim int
	// SubwordWeight in [0, 1] blends character trigram vectors into
	// each word vector (0 = pure word hashing, FastText-OOV-failure
	// mode; 1 = pure subword).
	SubwordWeight float64
	// Seed decorrelates embedders.
	Seed int64
}

// New creates an embedder with the given dimensionality; dim must be
// positive.
func New(dim int, subwordWeight float64, seed int64) *Embedder {
	if dim <= 0 {
		panic("embed: dimension must be positive")
	}
	return &Embedder{Dim: dim, SubwordWeight: subwordWeight, Seed: seed}
}

// hashVec maps a string to a deterministic pseudo-random unit vector.
func (e *Embedder) hashVec(s string) []float64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	rng := rand.New(rand.NewSource(int64(f.Sum64()) ^ e.Seed))
	v := make([]float64, e.Dim)
	norm := 0.0
	for i := range v {
		v[i] = rng.NormFloat64()
		norm += v[i] * v[i]
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		for i := range v {
			v[i] /= norm
		}
	}
	return v
}

// Word embeds a single token, blending word-level and subword vectors
// per SubwordWeight.
func (e *Embedder) Word(tok string) []float64 {
	wv := e.hashVec("w:" + tok)
	if e.SubwordWeight <= 0 {
		return wv
	}
	grams := strutil.QGrams(tok, 3)
	if len(grams) == 0 {
		return wv
	}
	sv := make([]float64, e.Dim)
	for _, g := range grams {
		gv := e.hashVec("g:" + g)
		for i := range sv {
			sv[i] += gv[i]
		}
	}
	inv := 1 / float64(len(grams))
	out := make([]float64, e.Dim)
	w := e.SubwordWeight
	for i := range out {
		out[i] = (1-w)*wv[i] + w*sv[i]*inv
	}
	return out
}

// Value embeds a full attribute value as the mean of its token
// embeddings; an empty value embeds to the zero vector.
func (e *Embedder) Value(s string) []float64 {
	toks := strutil.Tokens(s)
	out := make([]float64, e.Dim)
	if len(toks) == 0 {
		return out
	}
	for _, t := range toks {
		tv := e.Word(t)
		for i := range out {
			out[i] += tv[i]
		}
	}
	inv := 1 / float64(len(toks))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// PairFeatures builds the distributed representation of a value pair:
// the element-wise absolute difference of the two value embeddings
// followed by their cosine similarity, giving Dim+1 features.
func (e *Embedder) PairFeatures(a, b string) []float64 {
	va := e.Value(a)
	vb := e.Value(b)
	out := make([]float64, e.Dim+1)
	var dot, na, nb float64
	for i := 0; i < e.Dim; i++ {
		out[i] = math.Abs(va[i] - vb[i])
		dot += va[i] * vb[i]
		na += va[i] * va[i]
		nb += vb[i] * vb[i]
	}
	if na > 0 && nb > 0 {
		// Rescale cosine from [-1,1] into [0,1] to match the rest of
		// the feature space.
		out[e.Dim] = (dot/(math.Sqrt(na)*math.Sqrt(nb)) + 1) / 2
	}
	return out
}

// Cosine returns the cosine similarity of two embedded values in
// [-1, 1] (0 when either embeds to zero).
func (e *Embedder) Cosine(a, b string) float64 {
	va := e.Value(a)
	vb := e.Value(b)
	var dot, na, nb float64
	for i := range va {
		dot += va[i] * vb[i]
		na += va[i] * va[i]
		nb += vb[i] * vb[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
