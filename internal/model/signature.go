package model

import (
	"fmt"
	"sort"
)

// SignatureSchemaVersion identifies the domain-signature JSON document
// embedded in artifact provenance and exchanged by the model
// repository's search surfaces (cmd/repo sign, POST /v1/models/select).
const SignatureSchemaVersion = "transer.signature/v1"

// FieldSignature summarises one schema attribute of the domain a model
// was trained to serve: the per-field statistics internal/query's
// planner already collects, persisted so repository search can compare
// a stored model's domain against a new target without re-reading the
// training data.
type FieldSignature struct {
	Name string `json:"name"`
	Type string `json:"type"`
	// NullRatio is the fraction of empty values in [0, 1].
	NullRatio float64 `json:"null_ratio"`
	// DistinctRatio is distinct non-empty values over non-empty values.
	DistinctRatio float64 `json:"distinct_ratio"`
	// AvgTokens is the mean word-token count of non-empty values.
	AvgTokens float64 `json:"avg_tokens"`
}

// Centroid is one weighted point of the domain's quantized
// compare-vector distribution: a distinct feature vector of the
// domain's candidate pairs and the fraction of pairs carrying it.
// Comparison schemes quantize features to a coarse grid (0.05 by
// default), so a handful of high-multiplicity vectors covers most of a
// domain's pair mass — the same repetition the SEL fast path
// deduplicates (DESIGN.md §10), repurposed here as a compact sketch of
// where the domain's pairs live in feature space.
type Centroid struct {
	// Weight is the fraction of candidate pairs sharing this vector,
	// in (0, 1].
	Weight float64 `json:"weight"`
	// Vector is the quantized comparison feature vector.
	Vector []float64 `json:"vector"`
}

// Signature is the compact domain signature of the data a model
// serves: per-field statistics, a KMV token sketch of the domain's
// value vocabulary, and the dominant quantized compare-vector
// centroids. It is a pure function of the domain (record order never
// matters) and a few KB regardless of domain size, so a repository of
// hundreds of models searches in microseconds.
type Signature struct {
	Schema string `json:"schema"`
	// Records counts the records the signature was computed over
	// (both databases pooled); Pairs the candidate pairs behind the
	// centroids.
	Records int `json:"records"`
	Pairs   int `json:"pairs"`
	// Fields holds per-attribute statistics in schema order.
	Fields []FieldSignature `json:"fields"`
	// SketchK is the KMV sketch size; TokenHashes the sketch's kept
	// minimum hashes in ascending order. Two signatures' token-set
	// Jaccard is estimated directly from these lists (see
	// internal/repo).
	SketchK     int      `json:"sketch_k"`
	TokenHashes []uint64 `json:"token_hashes"`
	// Centroids are the highest-multiplicity quantized compare vectors,
	// by descending weight (ties broken by vector bytes ascending).
	// Empty when the signature was built without candidate vectors.
	Centroids []Centroid `json:"centroids,omitempty"`
}

// Validate checks the structural invariants of a signature.
func (s *Signature) Validate() error {
	if s.Schema != SignatureSchemaVersion {
		return fmt.Errorf("model: signature schema %q, want %q", s.Schema, SignatureSchemaVersion)
	}
	if s.Records < 0 || s.Pairs < 0 {
		return fmt.Errorf("model: signature has negative counts (records %d, pairs %d)", s.Records, s.Pairs)
	}
	if len(s.Fields) == 0 {
		return fmt.Errorf("model: signature has no fields")
	}
	for _, f := range s.Fields {
		if f.Name == "" {
			return fmt.Errorf("model: signature field with empty name")
		}
		if f.NullRatio < 0 || f.NullRatio > 1 || f.DistinctRatio < 0 || f.DistinctRatio > 1 {
			return fmt.Errorf("model: signature field %q ratios outside [0,1]", f.Name)
		}
	}
	if s.SketchK <= 0 {
		return fmt.Errorf("model: signature sketch_k %d, want > 0", s.SketchK)
	}
	if len(s.TokenHashes) > s.SketchK {
		return fmt.Errorf("model: signature carries %d token hashes, sketch_k is %d", len(s.TokenHashes), s.SketchK)
	}
	if !sort.SliceIsSorted(s.TokenHashes, func(i, j int) bool { return s.TokenHashes[i] < s.TokenHashes[j] }) {
		return fmt.Errorf("model: signature token hashes are not ascending")
	}
	dim := -1
	for i, c := range s.Centroids {
		if c.Weight <= 0 || c.Weight > 1 {
			return fmt.Errorf("model: signature centroid %d weight %v outside (0,1]", i, c.Weight)
		}
		if dim == -1 {
			dim = len(c.Vector)
		} else if len(c.Vector) != dim {
			return fmt.Errorf("model: signature centroid %d has %d dims, earlier centroids %d", i, len(c.Vector), dim)
		}
	}
	return nil
}
