// Package model implements versioned, stdlib-only serialisation of
// trained match classifiers: the transer.model/v1 JSON artifact that
// cmd/transer exports (-model-out) and cmd/serve loads.
//
// An artifact is self-contained: it carries the classifier type with
// its learned parameters (the ml.ParamClassifier surface), the data
// schema and comparison-scheme parameters needed to turn a raw record
// pair back into the feature vector the classifier was trained on, the
// TransER training configuration, and provenance fingerprints of the
// training data (internal/pipeline's content hashes). The round-trip
// guarantee is exactness: a loaded model predicts byte-identically to
// the in-memory classifier it was exported from, on every input —
// property-tested via internal/testkit.
package model

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"transer/internal/compare"
	"transer/internal/core"
	"transer/internal/dataset"
	"transer/internal/ml"
	"transer/internal/ml/bayes"
	"transer/internal/ml/forest"
	"transer/internal/ml/knn"
	"transer/internal/ml/logreg"
	"transer/internal/ml/nn"
	"transer/internal/ml/svm"
	"transer/internal/ml/tree"
	"transer/internal/pipeline"
)

// SchemaVersion identifies the model artifact JSON schema. Load
// rejects artifacts whose schema field differs — parameters written by
// a future incompatible format must never be silently misread.
const SchemaVersion = "transer.model/v1"

// Threshold is the match decision threshold every artifact records.
// All experiments in this repository (and the paper) decide at 0.5.
const Threshold = 0.5

// AttributeSpec is one schema column in serialised form.
type AttributeSpec struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// ClassifierSpec is the serialised classifier: its stable type
// identifier and the JSON parameter document its own Params produced.
type ClassifierSpec struct {
	Type   string          `json:"type"`
	Params json.RawMessage `json:"params"`
}

// SchemeSpec pins the comparison scheme the classifier's feature space
// came from. The scheme is rebuilt from the data schema on load
// (compare.DefaultScheme is a pure function of the schema); the
// signature and feature names double-check that the rebuild matches
// what the model was trained on.
type SchemeSpec struct {
	FeatureNames []string `json:"feature_names"`
	Missing      int      `json:"missing"`
	Quantize     float64  `json:"quantize"`
	Signature    string   `json:"signature"`
}

// TrainingSpec records the TransER configuration the classifier was
// trained under (provenance; not needed to predict).
type TrainingSpec struct {
	K    int     `json:"k"`
	TC   float64 `json:"tc"`
	TL   float64 `json:"tl"`
	TP   float64 `json:"tp"`
	B    float64 `json:"b"`
	Seed int64   `json:"seed"`

	DisableSEL    bool    `json:"disable_sel,omitempty"`
	DisableGENTCL bool    `json:"disable_gen_tcl,omitempty"`
	DisableSimC   bool    `json:"disable_sim_c,omitempty"`
	DisableSimL   bool    `json:"disable_sim_l,omitempty"`
	EnableSimV    bool    `json:"enable_sim_v,omitempty"`
	TV            float64 `json:"tv,omitempty"`

	// SELMode records which SEL engine selected the training
	// instances (core.SELMode* values; empty = the default exact fast
	// path). Exact modes cannot change the artifact, but approximate
	// selection can, so provenance must say which one ran. Omitted
	// when empty, keeping artifacts from older exports byte-stable.
	SELMode string `json:"sel_mode,omitempty"`
}

// TrainingFromConfig converts a core.Config into its serialised form.
func TrainingFromConfig(c core.Config) TrainingSpec {
	return TrainingSpec{
		K: c.K, TC: c.TC, TL: c.TL, TP: c.TP, B: c.B, Seed: c.Seed,
		DisableSEL: c.DisableSEL, DisableGENTCL: c.DisableGENTCL,
		DisableSimC: c.DisableSimC, DisableSimL: c.DisableSimL,
		EnableSimV: c.EnableSimV, TV: c.TV,
		SELMode: c.SELMode,
	}
}

// Provenance fingerprints the run that produced the artifact: content
// hashes of the training databases (pipeline.DataFingerprint) and the
// phase statistics of the TransER run.
type Provenance struct {
	SourceName string `json:"source_name,omitempty"`
	TargetName string `json:"target_name,omitempty"`
	// Content fingerprints (hex SHA-256) of the four databases.
	SourceA string `json:"source_a,omitempty"`
	SourceB string `json:"source_b,omitempty"`
	TargetA string `json:"target_a,omitempty"`
	TargetB string `json:"target_b,omitempty"`
	// Pair counts and TransER phase statistics of the training run.
	SourcePairs    int  `json:"source_pairs,omitempty"`
	TargetPairs    int  `json:"target_pairs,omitempty"`
	Selected       int  `json:"selected,omitempty"`
	HighConfidence int  `json:"high_confidence,omitempty"`
	BalancedTrain  int  `json:"balanced_train,omitempty"`
	TCLFallback    bool `json:"tcl_fallback,omitempty"`
	// Signature is the domain signature of the target domain the model
	// was trained to serve (internal/repo computes it at cmd/transer
	// -model-out time). The model repository searches stored models by
	// signature similarity against a new unlabelled target. Omitted
	// when absent, keeping artifacts from older exports byte-stable.
	Signature *Signature `json:"signature,omitempty"`
}

// Artifact is one persisted model: everything needed to score a raw
// record pair exactly as the training process would have.
type Artifact struct {
	Schema    string    `json:"schema"`
	Name      string    `json:"name"`
	CreatedAt time.Time `json:"created_at"`
	Threshold float64   `json:"threshold"`

	Classifier ClassifierSpec  `json:"classifier"`
	DataSchema []AttributeSpec `json:"data_schema"`
	Scheme     SchemeSpec      `json:"scheme"`
	Training   TrainingSpec    `json:"training"`
	Provenance Provenance      `json:"provenance"`
}

// classifierFactories maps stable classifier type identifiers to fresh
// untrained instances ready for SetParams. Registration is static: the
// set of serialisable classifiers is part of the v1 schema.
var classifierFactories = map[string]func() ml.ParamClassifier{
	"constant": func() ml.ParamClassifier { return &ml.Constant{} },
	"logreg":   func() ml.ParamClassifier { return logreg.New(logreg.Config{}) },
	"svm":      func() ml.ParamClassifier { return svm.New(svm.Config{}) },
	"dtree":    func() ml.ParamClassifier { return tree.New(tree.Config{}) },
	"rf":       func() ml.ParamClassifier { return forest.New(forest.Config{}) },
	"knn":      func() ml.ParamClassifier { return knn.New(knn.Config{}) },
	"bayes":    func() ml.ParamClassifier { return bayes.New(bayes.Config{}) },
	"mlp":      func() ml.ParamClassifier { return nn.NewMLP(nn.MLPConfig{}) },
}

// ClassifierTypes returns the registered classifier type identifiers
// in sorted order (for diagnostics).
func ClassifierTypes() []string {
	out := make([]string, 0, len(classifierFactories))
	for k := range classifierFactories {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// New assembles an artifact from a trained classifier and the schema /
// scheme of the domain it was trained on. The scheme must be the
// schema's default scheme (possibly with a different Missing or
// Quantize): custom comparator functions are code, not data, and
// cannot be serialised — New rejects schemes whose signature does not
// match what Load will rebuild.
func New(name string, clf ml.ParamClassifier, schema dataset.Schema, scheme compare.Scheme) (*Artifact, error) {
	if name == "" {
		return nil, fmt.Errorf("model: empty model name")
	}
	if clf == nil {
		return nil, fmt.Errorf("model: nil classifier")
	}
	if _, ok := classifierFactories[clf.ClassifierType()]; !ok {
		return nil, fmt.Errorf("model: unregistered classifier type %q (have %v)", clf.ClassifierType(), ClassifierTypes())
	}
	rebuilt := compare.DefaultScheme(schema)
	rebuilt.Missing = scheme.Missing
	rebuilt.Quantize = scheme.Quantize
	if got, want := pipeline.SchemeSignature(rebuilt), pipeline.SchemeSignature(scheme); got != want {
		return nil, fmt.Errorf("model: scheme is not the schema's default scheme (signature %q, rebuilt %q); custom comparators cannot be serialised", want, got)
	}
	params, err := clf.Params()
	if err != nil {
		return nil, fmt.Errorf("model: exporting %s params: %w", clf.ClassifierType(), err)
	}
	attrs := make([]AttributeSpec, len(schema.Attributes))
	for i, a := range schema.Attributes {
		attrs[i] = AttributeSpec{Name: a.Name, Type: a.Type.String()}
	}
	return &Artifact{
		Schema:     SchemaVersion,
		Name:       name,
		CreatedAt:  time.Now().UTC(),
		Threshold:  Threshold,
		Classifier: ClassifierSpec{Type: clf.ClassifierType(), Params: params},
		DataSchema: attrs,
		Scheme: SchemeSpec{
			FeatureNames: scheme.FeatureNames(),
			Missing:      int(scheme.Missing),
			Quantize:     scheme.Quantize,
			Signature:    pipeline.SchemeSignature(scheme),
		},
	}, nil
}

// Validate checks the structural invariants of an artifact.
func (a *Artifact) Validate() error {
	if a.Schema != SchemaVersion {
		return fmt.Errorf("model: artifact schema %q, want %q", a.Schema, SchemaVersion)
	}
	if a.Name == "" {
		return fmt.Errorf("model: artifact has no name")
	}
	if a.Threshold <= 0 || a.Threshold >= 1 {
		return fmt.Errorf("model: threshold %v outside (0,1)", a.Threshold)
	}
	if _, ok := classifierFactories[a.Classifier.Type]; !ok {
		return fmt.Errorf("model: unknown classifier type %q (have %v)", a.Classifier.Type, ClassifierTypes())
	}
	if len(a.Classifier.Params) == 0 {
		return fmt.Errorf("model: classifier %q carries no params", a.Classifier.Type)
	}
	if len(a.DataSchema) == 0 {
		return fmt.Errorf("model: artifact has no data schema")
	}
	if len(a.Scheme.FeatureNames) == 0 {
		return fmt.Errorf("model: artifact has no feature names")
	}
	// Rebuilding the scheme exercises the full consistency chain:
	// parseable attribute types, matching signature, matching feature
	// names. A corrupted artifact fails here at decode time rather
	// than at first scoring.
	if _, err := a.BuildScheme(); err != nil {
		return err
	}
	if sig := a.Provenance.Signature; sig != nil {
		if err := sig.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// RecordSchema rebuilds the dataset schema records must conform to.
func (a *Artifact) RecordSchema() (dataset.Schema, error) {
	attrs := make([]dataset.Attribute, len(a.DataSchema))
	for i, s := range a.DataSchema {
		t, err := dataset.ParseAttrType(s.Type)
		if err != nil {
			return dataset.Schema{}, fmt.Errorf("model: attribute %q: %w", s.Name, err)
		}
		attrs[i] = dataset.Attribute{Name: s.Name, Type: t}
	}
	return dataset.Schema{Attributes: attrs}, nil
}

// BuildScheme rebuilds the comparison scheme that produced the model's
// feature space and verifies it against the persisted signature.
func (a *Artifact) BuildScheme() (compare.Scheme, error) {
	schema, err := a.RecordSchema()
	if err != nil {
		return compare.Scheme{}, err
	}
	s := compare.DefaultScheme(schema)
	s.Missing = compare.MissingPolicy(a.Scheme.Missing)
	s.Quantize = a.Scheme.Quantize
	if got := pipeline.SchemeSignature(s); got != a.Scheme.Signature {
		return compare.Scheme{}, fmt.Errorf("model: rebuilt scheme signature %q does not match artifact %q", got, a.Scheme.Signature)
	}
	names := s.FeatureNames()
	if len(names) != len(a.Scheme.FeatureNames) {
		return compare.Scheme{}, fmt.Errorf("model: rebuilt scheme has %d features, artifact %d", len(names), len(a.Scheme.FeatureNames))
	}
	for i, n := range names {
		if n != a.Scheme.FeatureNames[i] {
			return compare.Scheme{}, fmt.Errorf("model: feature %d is %q, artifact says %q", i, n, a.Scheme.FeatureNames[i])
		}
	}
	return s, nil
}

// NewClassifier instantiates the artifact's classifier and restores
// its learned parameters.
func (a *Artifact) NewClassifier() (ml.ParamClassifier, error) {
	factory, ok := classifierFactories[a.Classifier.Type]
	if !ok {
		return nil, fmt.Errorf("model: unknown classifier type %q", a.Classifier.Type)
	}
	c := factory()
	if err := c.SetParams(a.Classifier.Params); err != nil {
		return nil, fmt.Errorf("model: restoring %s: %w", a.Classifier.Type, err)
	}
	return c, nil
}

// Encode serialises the artifact as indented JSON.
func (a *Artifact) Encode() ([]byte, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Fingerprint returns the hex SHA-256 digest of the canonically
// encoded artifact — the identity that provenance responses and
// decision logs cite, so a logged match decision can be tied to the
// exact parameters that produced it. The creation timestamp is
// metadata, not model content, and is excluded: two artifacts with
// identical parameters, schema, scheme, training configuration and
// provenance fingerprint equal regardless of when they were stamped.
func (a *Artifact) Fingerprint() (string, error) {
	c := *a
	c.CreatedAt = time.Time{}
	b, err := c.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Decode parses and validates a serialised artifact.
func Decode(b []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("model: artifact is not valid JSON: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// WriteFile persists the artifact atomically: the bytes land in a
// temporary file in the destination directory, are fsynced, and only
// then renamed over path. A crash mid-export can therefore never leave
// a truncated artifact for a server or the model repository to ingest
// — readers see either the previous complete file or the new one.
func (a *Artifact) WriteFile(path string) error {
	b, err := a.Encode()
	if err != nil {
		return err
	}
	return AtomicWriteFile(path, b)
}

// AtomicWriteFile writes data to path via a same-directory temp file,
// fsync and rename, so concurrent readers and crash recovery never
// observe a partial file. The repository's catalog index uses the same
// helper for its swap-on-success index updates.
func AtomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load reads and validates an artifact from disk.
func Load(path string) (*Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}
