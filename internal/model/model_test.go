package model_test

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"transer/internal/compare"
	"transer/internal/dataset"
	"transer/internal/ml"
	"transer/internal/ml/bayes"
	"transer/internal/ml/forest"
	"transer/internal/ml/knn"
	"transer/internal/ml/logreg"
	"transer/internal/ml/nn"
	"transer/internal/ml/svm"
	"transer/internal/ml/tree"
	"transer/internal/model"
	"transer/internal/pipeline"
	"transer/internal/testkit"
)

// trainables enumerates every serialisable classifier with a concrete
// training configuration.
var trainables = []struct {
	typ   string
	fresh func() ml.ParamClassifier
}{
	{"constant", func() ml.ParamClassifier { return &ml.Constant{} }},
	{"logreg", func() ml.ParamClassifier { return logreg.New(logreg.Config{}) }},
	{"svm", func() ml.ParamClassifier { return svm.New(svm.Config{}) }},
	{"dtree", func() ml.ParamClassifier { return tree.New(tree.Config{Seed: 11}) }},
	{"rf", func() ml.ParamClassifier { return forest.New(forest.Config{NumTrees: 5, Seed: 12}) }},
	{"knn", func() ml.ParamClassifier { return knn.New(knn.Config{}) }},
	{"bayes", func() ml.ParamClassifier { return bayes.New(bayes.Config{}) }},
	{"mlp", func() ml.ParamClassifier { return nn.NewMLP(nn.MLPConfig{Seed: 13, Epochs: 15}) }},
}

// trainingPairs derives a labelled comparison-vector set from a
// generated database pair: every cross pair, labelled by shared
// entity. The corruption in DatabasePair keeps both classes present
// for any non-trivial size.
func trainingPairs(t *testkit.T, scheme compare.Scheme, a, b *dataset.Database) (x [][]float64, y []int) {
	for _, ra := range a.Records {
		for _, rb := range b.Records {
			x = append(x, scheme.Pair(ra, rb))
			if ra.EntityID == rb.EntityID {
				y = append(y, 1)
			} else {
				y = append(y, 0)
			}
		}
	}
	ones := 0
	for _, v := range y {
		ones += v
	}
	if ones == 0 || ones == len(y) {
		t.FailNow() // degenerate draw; shrinking will not help but reseeding will
	}
	return x, y
}

// TestArtifactRoundTripAllClassifiers is the tentpole guarantee: for
// every classifier type, a model exported, encoded, decoded and
// reassembled scores byte-identically to the in-memory classifier.
func TestArtifactRoundTripAllClassifiers(t *testing.T) {
	for _, tc := range trainables {
		tc := tc
		t.Run(tc.typ, func(t *testing.T) {
			t.Parallel()
			testkit.Run(t, "model-roundtrip-"+tc.typ, 6, func(pt *testkit.T) {
				a, b := testkit.DatabasePair(pt.Rng, 10+pt.Size)
				scheme := compare.DefaultScheme(a.Schema)
				x, y := trainingPairs(pt, scheme, a, b)
				clf := tc.fresh()
				if err := clf.Fit(x, y); err != nil {
					pt.Fatalf("Fit: %v", err)
				}

				art, err := model.New("prop", clf, a.Schema, scheme)
				if err != nil {
					pt.Fatalf("New: %v", err)
				}
				enc, err := art.Encode()
				if err != nil {
					pt.Fatalf("Encode: %v", err)
				}
				dec, err := model.Decode(enc)
				if err != nil {
					pt.Fatalf("Decode: %v", err)
				}
				m, err := model.NewMatcher(dec)
				if err != nil {
					pt.Fatalf("NewMatcher: %v", err)
				}

				// Score a disjoint evaluation set through both paths.
				ea, eb := testkit.DatabasePair(pt.Rng, 8+pt.Size/2)
				var ex [][]float64
				for _, ra := range ea.Records {
					for _, rb := range eb.Records {
						ex = append(ex, m.Vector(ra, rb))
					}
				}
				want := clf.PredictProba(ex)
				got := m.Score(ex, 1)
				if !testkit.EqualFloats(want, got) {
					pt.Fatalf("loaded %s model diverges from the in-memory classifier", tc.typ)
				}

				// Feature vectors must also agree with the training scheme.
				for i, ra := range ea.Records {
					if i > 3 {
						break
					}
					if !testkit.RowsEqual(scheme.Pair(ra, eb.Records[0]), m.Vector(ra, eb.Records[0])) {
						pt.Fatalf("rebuilt scheme computes different vectors")
					}
				}

				// Re-exported parameters are byte-identical (stable format).
				p2, err := m.Classifier.Params()
				if err != nil {
					pt.Fatalf("re-export: %v", err)
				}
				p1, _ := clf.Params()
				if !bytes.Equal(p1, p2) {
					pt.Fatalf("re-exported params differ:\n%s\n%s", p1, p2)
				}
			})
		})
	}
}

func TestScoreDeterministicAcrossWorkers(t *testing.T) {
	testkit.Run(t, "model-score-workers", 4, func(pt *testkit.T) {
		a, b := testkit.DatabasePair(pt.Rng, 12+pt.Size)
		scheme := compare.DefaultScheme(a.Schema)
		x, y := trainingPairs(pt, scheme, a, b)
		clf := logreg.New(logreg.Config{})
		if err := clf.Fit(x, y); err != nil {
			pt.Fatalf("Fit: %v", err)
		}
		art, err := model.New("workers", clf, a.Schema, scheme)
		if err != nil {
			pt.Fatalf("New: %v", err)
		}
		m, err := model.NewMatcher(art)
		if err != nil {
			pt.Fatalf("NewMatcher: %v", err)
		}
		want := m.Score(x, 1)
		for _, w := range []int{0, 2, 3, 7} {
			if !testkit.EqualFloats(want, m.Score(x, w)) {
				pt.Fatalf("Score differs at workers=%d", w)
			}
		}
	})
}

func fixtureArtifact(t *testing.T) *model.Artifact {
	t.Helper()
	sch := dataset.Schema{Attributes: []dataset.Attribute{
		{Name: "title", Type: dataset.AttrName},
		{Name: "year", Type: dataset.AttrYear},
	}}
	clf := &ml.Constant{P: 0.25}
	art, err := model.New("fixture", clf, sch, compare.DefaultScheme(sch))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return art
}

func TestWriteFileLoadMatcher(t *testing.T) {
	art := fixtureArtifact(t)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	m, err := model.LoadMatcher(path)
	if err != nil {
		t.Fatalf("LoadMatcher: %v", err)
	}
	if m.Artifact.Name != "fixture" || m.Artifact.Classifier.Type != "constant" {
		t.Errorf("loaded artifact %q/%q", m.Artifact.Name, m.Artifact.Classifier.Type)
	}
	if got := m.Score([][]float64{{1, 1}}, 1); got[0] != 0.25 {
		t.Errorf("constant model scored %v, want 0.25", got[0])
	}
	if m.Decide(0.25) || !m.Decide(0.5) {
		t.Errorf("Decide does not apply the 0.5 threshold")
	}
}

func TestNewRejectsNonDefaultScheme(t *testing.T) {
	sch := dataset.Schema{Attributes: []dataset.Attribute{{Name: "title", Type: dataset.AttrName}}}
	scheme := compare.DefaultScheme(sch)
	scheme.Comparators[0].Name = "title_custom"
	if _, err := model.New("bad", &ml.Constant{}, sch, scheme); err == nil {
		t.Fatalf("New accepted a scheme whose signature the loader cannot rebuild")
	}
	// Changed Missing/Quantize are fine — they serialise as data.
	ok := compare.DefaultScheme(sch)
	ok.Missing = compare.MissingHalf
	ok.Quantize = 0.1
	art, err := model.New("ok", &ml.Constant{}, sch, ok)
	if err != nil {
		t.Fatalf("New rejected a tuned default scheme: %v", err)
	}
	m, err := model.NewMatcher(art)
	if err != nil {
		t.Fatalf("NewMatcher: %v", err)
	}
	if m.Scheme.Missing != compare.MissingHalf || m.Scheme.Quantize != 0.1 {
		t.Errorf("matcher scheme lost Missing/Quantize: %+v", m.Scheme)
	}
}

func TestDecodeRejections(t *testing.T) {
	art := fixtureArtifact(t)
	enc, err := art.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	corrupt := func(old, new string) []byte {
		s := strings.Replace(string(enc), old, new, 1)
		if s == string(enc) {
			t.Fatalf("corruption %q not applied", old)
		}
		return []byte(s)
	}
	cases := map[string][]byte{
		"not json":        []byte("{nope"),
		"schema version":  corrupt(model.SchemaVersion, "transer.model/v99"),
		"classifier type": corrupt(`"type": "constant"`, `"type": "nonesuch"`),
		"attribute type":  corrupt(`"type": "year"`, `"type": "epoch"`),
		"signature":       corrupt("quantize=0.05", "quantize=0.25"),
		"threshold":       corrupt(`"threshold": 0.5`, `"threshold": 1.5`),
		"feature names":   corrupt(`"title_jw"`, `"title_zz"`),
	}
	for name, b := range cases {
		if _, err := model.Decode(b); err == nil {
			t.Errorf("Decode accepted artifact with corrupted %s", name)
		}
	}
}

func TestRecordFromValues(t *testing.T) {
	art := fixtureArtifact(t)
	m, err := model.NewMatcher(art)
	if err != nil {
		t.Fatalf("NewMatcher: %v", err)
	}
	r, err := m.RecordFromValues(map[string]string{"year": "1999"})
	if err != nil {
		t.Fatalf("RecordFromValues: %v", err)
	}
	if len(r.Values) != 2 || r.Values[0] != "" || r.Values[1] != "1999" {
		t.Errorf("record values %v", r.Values)
	}
	if _, err := m.RecordFromValues(map[string]string{"titel": "x"}); err == nil {
		t.Errorf("unknown attribute accepted")
	}
	if got := m.AttributeNames(); len(got) != 2 || got[0] != "title" {
		t.Errorf("AttributeNames = %v", got)
	}
}

func TestSignatureMatchesPipeline(t *testing.T) {
	art := fixtureArtifact(t)
	sch, err := art.RecordSchema()
	if err != nil {
		t.Fatalf("RecordSchema: %v", err)
	}
	if got, want := art.Scheme.Signature, pipeline.SchemeSignature(compare.DefaultScheme(sch)); got != want {
		t.Errorf("artifact signature %q, pipeline computes %q", got, want)
	}
}

func TestClassifierTypesSorted(t *testing.T) {
	types := model.ClassifierTypes()
	if len(types) != len(trainables) {
		t.Fatalf("registry has %d types, tests cover %d", len(types), len(trainables))
	}
	for i := 1; i < len(types); i++ {
		if types[i-1] >= types[i] {
			t.Errorf("ClassifierTypes not sorted: %v", types)
		}
	}
}

// TestArtifactFingerprint pins the fingerprint contract: a content
// identity — stable across calls and creation re-stamps, sensitive to
// any parameter change, and cached verbatim on the matcher.
func TestArtifactFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, _ := testkit.DatabasePair(rng, 8)
	scheme := compare.DefaultScheme(a.Schema)
	width := len(scheme.Pair(a.Records[0], a.Records[0]))
	clf := &ml.Constant{}
	if err := clf.Fit([][]float64{make([]float64, width)}, []int{1}); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	art, err := model.New("fp-test", clf, a.Schema, scheme)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	fp1, err := art.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if len(fp1) != 64 || strings.Trim(fp1, "0123456789abcdef") != "" {
		t.Fatalf("fingerprint %q is not 64 hex chars", fp1)
	}
	fp2, err := art.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp2 != fp1 {
		t.Fatalf("fingerprint unstable: %s then %s", fp1, fp2)
	}

	// The creation timestamp is metadata, not content: a re-stamped
	// artifact with identical parameters fingerprints equal.
	other, err := model.New("fp-test", clf, a.Schema, scheme)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	other.CreatedAt = art.CreatedAt.Add(time.Hour)
	ofp, err := other.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if ofp != fp1 {
		t.Fatalf("re-stamped artifact fingerprints %s, want %s", ofp, fp1)
	}

	// Any content change moves the digest.
	other.Threshold = 0.9
	changed, err := other.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if changed == fp1 {
		t.Fatal("threshold change did not move the fingerprint")
	}

	// The matcher caches the same identity at construction.
	m, err := model.NewMatcher(art)
	if err != nil {
		t.Fatalf("NewMatcher: %v", err)
	}
	if m.Fingerprint() != fp1 {
		t.Fatalf("matcher fingerprint %s, artifact %s", m.Fingerprint(), fp1)
	}
}
