package model

import (
	"fmt"

	"transer/internal/compare"
	"transer/internal/dataset"
	"transer/internal/ml"
)

// Matcher is a loaded artifact ready to score record pairs: the
// rebuilt schema and comparison scheme plus the restored classifier.
// A Matcher is immutable after construction and safe for concurrent
// use (scoring never mutates the classifier).
type Matcher struct {
	Artifact   *Artifact
	Schema     dataset.Schema
	Scheme     compare.Scheme
	Classifier ml.ParamClassifier

	attrIndex   map[string]int
	fingerprint string
}

// NewMatcher assembles the runtime form of an artifact.
func NewMatcher(a *Artifact) (*Matcher, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	fp, err := a.Fingerprint()
	if err != nil {
		return nil, err
	}
	schema, err := a.RecordSchema()
	if err != nil {
		return nil, err
	}
	scheme, err := a.BuildScheme()
	if err != nil {
		return nil, err
	}
	clf, err := a.NewClassifier()
	if err != nil {
		return nil, err
	}
	idx := make(map[string]int, len(schema.Attributes))
	for i, attr := range schema.Attributes {
		idx[attr.Name] = i
	}
	return &Matcher{Artifact: a, Schema: schema, Scheme: scheme, Classifier: clf, attrIndex: idx, fingerprint: fp}, nil
}

// Fingerprint returns the artifact's SHA-256 identity, computed once
// at assembly time (see Artifact.Fingerprint).
func (m *Matcher) Fingerprint() string { return m.fingerprint }

// LoadMatcher reads an artifact from disk and assembles its matcher.
func LoadMatcher(path string) (*Matcher, error) {
	a, err := Load(path)
	if err != nil {
		return nil, err
	}
	return NewMatcher(a)
}

// RecordFromValues builds a schema-conformant record from an
// attribute→value map. Attributes absent from the map are empty (the
// scheme's missing-value policy applies); keys that are not schema
// attributes are an error so client typos surface instead of silently
// scoring a half-empty pair.
func (m *Matcher) RecordFromValues(values map[string]string) (dataset.Record, error) {
	r := dataset.Record{Values: make([]string, len(m.Schema.Attributes))}
	for k, v := range values {
		i, ok := m.attrIndex[k]
		if !ok {
			return dataset.Record{}, fmt.Errorf("model: unknown attribute %q (schema has %v)", k, m.AttributeNames())
		}
		r.Values[i] = v
	}
	return r, nil
}

// AttributeNames returns the schema attribute names in order.
func (m *Matcher) AttributeNames() []string {
	out := make([]string, len(m.Schema.Attributes))
	for i, a := range m.Schema.Attributes {
		out[i] = a.Name
	}
	return out
}

// Vector computes the comparison feature vector of one record pair,
// exactly as training did.
func (m *Matcher) Vector(a, b dataset.Record) []float64 {
	return m.Scheme.Pair(a, b)
}

// Score returns match probabilities for a batch of feature vectors,
// chunked over up to the given worker count (0 means one per CPU).
// The output is bitwise identical for every worker count.
func (m *Matcher) Score(x [][]float64, workers int) []float64 {
	return ml.ParallelProba(m.Classifier, x, workers)
}

// Decide applies the artifact's decision threshold.
func (m *Matcher) Decide(p float64) bool { return p >= m.Artifact.Threshold }
