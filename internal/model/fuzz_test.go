package model_test

import (
	"math/rand"
	"testing"

	"transer/internal/compare"
	"transer/internal/ml/logreg"
	"transer/internal/model"
	"transer/internal/testkit"
)

// fuzzSeedArtifact builds one real encoded artifact for the fuzz seed
// corpus (the checked-in seeds under testdata/fuzz were generated from
// the same construction, plus hand-broken variants).
func fuzzSeedArtifact(f *testing.F) []byte {
	f.Helper()
	rng := rand.New(rand.NewSource(7))
	a, b := testkit.DatabasePair(rng, 12)
	scheme := compare.DefaultScheme(a.Schema)
	var x [][]float64
	var y []int
	for _, ra := range a.Records {
		for _, rb := range b.Records {
			x = append(x, scheme.Pair(ra, rb))
			if ra.EntityID == rb.EntityID {
				y = append(y, 1)
			} else {
				y = append(y, 0)
			}
		}
	}
	clf := logreg.New(logreg.Config{})
	if err := clf.Fit(x, y); err != nil {
		f.Fatalf("Fit: %v", err)
	}
	art, err := model.New("fuzz-seed", clf, a.Schema, scheme)
	if err != nil {
		f.Fatalf("model.New: %v", err)
	}
	enc, err := art.Encode()
	if err != nil {
		f.Fatalf("Encode: %v", err)
	}
	return enc
}

// FuzzArtifactDecode feeds arbitrary bytes to the artifact decoder.
// The contract under attack: Decode either rejects the input with an
// error or returns a fully usable artifact — one whose schema and
// scheme rebuild, whose encode → decode round trip is stable, and
// whose fingerprint is deterministic. Truncated bodies, dropped
// fields, wrong schema versions and mangled classifier payloads are
// all in the seed corpus; none may panic.
func FuzzArtifactDecode(f *testing.F) {
	valid := fuzzSeedArtifact(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":"transer.model/v1"}`))
	f.Add([]byte(`{"schema":"transer.model/v2","name":"x"}`))
	f.Add([]byte(`{"schema":"transer.model/v1","name":"x","classifier":{"type":"bogus","params":"bm90IGpzb24"}}`))
	f.Add([]byte(`{"schema":"transer.model/v1","name":"x","threshold":2}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := model.Decode(data)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		// A decoded artifact must satisfy its own validator...
		if verr := a.Validate(); verr != nil {
			t.Fatalf("Decode accepted an artifact Validate rejects: %v", verr)
		}
		// ...rebuild its record schema and comparison scheme...
		if _, serr := a.RecordSchema(); serr != nil {
			t.Fatalf("decoded artifact has no usable schema: %v", serr)
		}
		if _, serr := a.BuildScheme(); serr != nil {
			t.Fatalf("decoded artifact has no usable scheme: %v", serr)
		}
		// ...and survive an encode → decode round trip with a stable
		// fingerprint (the repository's content address).
		fp1, ferr := a.Fingerprint()
		if ferr != nil {
			t.Fatalf("decoded artifact has no fingerprint: %v", ferr)
		}
		enc, eerr := a.Encode()
		if eerr != nil {
			t.Fatalf("re-encoding a decoded artifact: %v", eerr)
		}
		again, derr := model.Decode(enc)
		if derr != nil {
			t.Fatalf("re-decoding our own encoding: %v", derr)
		}
		fp2, ferr := again.Fingerprint()
		if ferr != nil {
			t.Fatalf("round-tripped artifact has no fingerprint: %v", ferr)
		}
		if fp1 != fp2 {
			t.Fatalf("fingerprint changed across encode/decode: %s -> %s", fp1, fp2)
		}
	})
}
