package model_test

import (
	"encoding/json"
	"strings"
	"testing"

	"transer/internal/core"
	"transer/internal/model"
)

// TestTrainingSpecCarriesSELMode: artifact provenance must say which
// SEL engine selected the training instances — approximate selection
// can change the trained model — while the empty default stays out of
// the JSON so artifacts from older exports remain byte-stable.
func TestTrainingSpecCarriesSELMode(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SELMode = core.SELModeApprox
	spec := model.TrainingFromConfig(cfg)
	if spec.SELMode != core.SELModeApprox {
		t.Fatalf("SELMode = %q, want %q", spec.SELMode, core.SELModeApprox)
	}
	withMode, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(withMode), `"sel_mode":"approx"`) {
		t.Errorf("serialised spec misses sel_mode: %s", withMode)
	}

	plain, err := json.Marshal(model.TrainingFromConfig(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "sel_mode") {
		t.Errorf("default spec must omit sel_mode: %s", plain)
	}
}
