package query

import (
	"fmt"
	"math"

	"transer/internal/blocking"
	"transer/internal/dataset"
	"transer/internal/strutil"
)

// Planner tuning constants. All are part of the documented cost model
// (DESIGN.md §11). They shape plans, not answers: at thresholds within
// every blocking operator's candidate recall (the regime the engine
// targets — see the determinism contract in DESIGN.md §11), changing
// them changes how much work produces the result set, not the set.
const (
	// CanopyCeiling is the largest cross product for which exhaustive
	// cheap-similarity canopy blocking is considered affordable.
	CanopyCeiling = 250_000

	// snWindow is the sorted-neighbourhood window size.
	snWindow = 8
	// snMaxNull and snMinDistinct are the sort-key quality guards: a
	// key attribute must be nearly always present and discriminative,
	// otherwise windowed sorting misses too many matches.
	snMaxNull     = 0.05
	snMinDistinct = 0.30
	// canopyLoose and canopyTight are the default canopy thresholds
	// over the cheap record similarity. Tight above 1 disables canopy
	// consumption: every cross pair at or above the loose threshold
	// stays a candidate. The engine's contract that forcing any
	// strategy yields the same result set depends on this — consumption
	// is the one canopy mechanism that can drop a pair every other
	// strategy finds.
	canopyLoose = 0.20
	canopyTight = 2.0

	// Cost-model weights, in units of one feature-comparator
	// evaluation: hashing one record with one MinHash function (it
	// touches every shingle, comparable to one string-comparator pass),
	// inserting one sort entry, and one cheap record similarity.
	lshHashCost   = 1.0
	sortCost      = 0.1
	canopySimCost = 0.5
)

// PlanJob collects statistics for the job's databases and compiles its
// plan — the convenience composition of Collect and BuildPlan.
func PlanJob(job Job) (*Plan, error) {
	a, b, _, _, _, _, err := job.resolve()
	if err != nil {
		return nil, err
	}
	return BuildPlan(job, Collect(a, b))
}

// BuildPlan compiles a job against externally supplied statistics. It
// is a pure function of (job, stats): tests perturb the statistics to
// check that plans change while result sets do not.
func BuildPlan(job Job, st Stats) (*Plan, error) {
	a, b, scheme, _, scorerLabel, selfJoin, err := job.resolve()
	if err != nil {
		return nil, err
	}

	p := &Plan{
		NameA:     a.Name,
		NameB:     b.Name,
		SelfJoin:  selfJoin,
		Stats:     st,
		Scheme:    scheme,
		Scorer:    scorerLabel,
		Threshold: job.Threshold,
		Limit:     job.Limit,
	}

	ests := estimates(job, st)
	p.Estimates = ests

	if job.Force != StrategyAuto {
		p.Forced = true
		p.Block = blockSpec(job, st, job.Force)
		return p, nil
	}

	// Selection: the cheapest eligible strategy, with eligibility
	// encoding each strategy's recall guard (canopy needs an affordable
	// cross product; sorted-neighbourhood needs a trustworthy key; LSH
	// is always admissible). Ties cannot occur: costs are distinct
	// continuous functions of the statistics, and the deterministic
	// tie-break below is fixed estimate order.
	best := -1
	for i, e := range ests {
		if !e.Eligible {
			continue
		}
		if best < 0 || e.Cost < ests[best].Cost {
			best = i
		}
	}
	chosen := ests[best]
	p.Block = blockSpec(job, st, chosen.Strategy)
	p.Reason = chosen.Note
	return p, nil
}

// estimates computes the per-strategy candidate and cost estimates in
// fixed order (lsh, sorted-neighbourhood, canopy).
func estimates(job Job, st Stats) []Estimate {
	n := float64(st.RecordsA + st.RecordsB)
	cross := st.CrossProduct
	cfg := job.LSH.Normalized()

	// Expected token overlap of a random cross pair, from the pooled
	// KMV cardinality estimate: two records drawing t tokens each from
	// a universe of D distinct tokens share ≥1 token with probability
	// ≈ 1-exp(-t²/D), and their expected Jaccard is ≈ shared/(2t-shared).
	t := st.TokensPerRecord
	d := st.DistinctTokens
	shared := t * t / d
	if shared > t {
		shared = t
	}
	var jacc float64
	if t > 0 {
		jacc = shared / (2*t - shared)
	}

	// LSH: a pair with token Jaccard j collides in one band of r rows
	// with probability j^r, and in ≥1 of b bands with 1-(1-j^r)^b.
	rows := cfg.NumHashes / cfg.Bands
	collide := 1 - math.Pow(1-math.Pow(jacc, float64(rows)), float64(cfg.Bands))
	lsh := Estimate{
		Strategy:   StrategyLSH,
		Candidates: cross * collide,
		Cost:       n*float64(cfg.NumHashes)*lshHashCost + cross*collide*float64(len(st.Fields)),
		Eligible:   true,
		Note:       "always admissible",
	}

	// Sorted-neighbourhood: each sorted entry pairs with at most
	// window-1 successors, about half of which are cross-side.
	sn := Estimate{Strategy: StrategySortedNeighbourhood}
	sortAttr, sortStats := sortKeyAttr(st)
	if sortAttr < 0 {
		sn.Note = fmt.Sprintf("no sort key: need a name/code attribute with null_ratio <= %.2f and distinct_ratio >= %.2f", snMaxNull, snMinDistinct)
	} else {
		sn.Eligible = true
		sn.Candidates = n * float64(snWindow-1) / 2
		sn.Cost = n*math.Log2(math.Max(n, 2))*sortCost + sn.Candidates*float64(len(st.Fields))
		sn.Note = fmt.Sprintf("sort key %q (null=%.2f distinct=%.2f)", sortStats.Name, sortStats.NullRatio, sortStats.DistinctRatio)
	}

	// Canopy: every cross pair pays one cheap similarity; pairs sharing
	// tokens (≈ cross · P[share ≥ 1 token]) become candidates at the
	// loose threshold.
	share := 1 - math.Exp(-t*t/d)
	canopy := Estimate{
		Strategy:   StrategyCanopy,
		Candidates: cross * share,
		Cost:       cross*canopySimCost + cross*share*float64(len(st.Fields)),
	}
	if cross <= CanopyCeiling {
		canopy.Eligible = true
		canopy.Note = fmt.Sprintf("cross product %.0f within exhaustive ceiling %d", cross, CanopyCeiling)
	} else {
		canopy.Note = fmt.Sprintf("cross product %.0f exceeds exhaustive ceiling %d", cross, CanopyCeiling)
	}

	return []Estimate{lsh, sn, canopy}
}

// sortKeyAttr picks the sorted-neighbourhood key: the most distinctive
// name- or code-typed attribute passing the null and distinctness
// guards. Returns -1 when none qualifies. Scanning in schema order
// with strict improvement keeps the choice deterministic.
func sortKeyAttr(st Stats) (int, FieldStats) {
	best := -1
	var bestStats FieldStats
	for i, f := range st.Fields {
		if f.Type != dataset.AttrName && f.Type != dataset.AttrCode {
			continue
		}
		if f.NullRatio > snMaxNull || f.DistinctRatio < snMinDistinct {
			continue
		}
		if best < 0 || f.DistinctRatio > bestStats.DistinctRatio {
			best, bestStats = i, f
		}
	}
	return best, bestStats
}

// blockSpec materialises the physical blocking operator for a chosen
// strategy.
func blockSpec(job Job, st Stats, s Strategy) BlockSpec {
	spec := BlockSpec{Strategy: s}
	switch s {
	case StrategyLSH:
		spec.LSH = job.LSH
	case StrategySortedNeighbourhood:
		attr, f := sortKeyAttr(st)
		if attr < 0 {
			// Forced despite no qualifying key: fall back to the first
			// attribute so execution stays well-defined.
			attr, f = 0, st.Fields[0]
		}
		spec.SortAttr = attr
		spec.SortName = f.Name
		spec.Window = snWindow
	case StrategyCanopy:
		spec.Loose, spec.Tight = canopyLoose, canopyTight
		// The planner passes the comparator explicitly, built from
		// internal/strutil, rather than leaning on Canopy's nil default.
		spec.Sim = blocking.RecordSim(strutil.JaccardTokens)
		spec.SimName = "token_jaccard"
	}
	return spec
}
