// Package query is the planned similarity-join engine that unifies the
// repository's blocking → compare → score path. A Job describes a
// batch dedup or linkage query ("all pairs with score ≥ τ"); the
// planner computes per-dataset statistics (record counts, per-field
// null/distinct ratios, KMV token-cardinality sketches reusing the
// MinHash machinery in internal/blocking) and compiles the logical
// plan
//
//	Scan → Block → Compare → Score → Filter(score ≥ τ) → Limit
//
// choosing the blocking operator — MinHash-LSH, sorted-neighbourhood
// or canopy — from estimated candidate counts, with an EXPLAIN
// rendering and a deterministic override. Execution is vectorized over
// internal/parallel in fixed index-addressed row blocks, so results
// are byte-identical for every worker count; each operator emits an
// internal/obs span with row/candidate/selectivity attributes.
//
// The package is also the single physical implementation of those
// stages for the rest of the repository: internal/pipeline's block and
// compare stages, internal/experiments (via the pipeline store) and
// internal/serve's batch scoring all run on Candidates, CompareMatrix
// and ScoreMatrix.
package query

import (
	"context"
	"errors"
	"fmt"

	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/dataset"
	"transer/internal/obs"
)

// PlanSchemaVersion identifies the plan rendering and the cmd/query
// JSON result document.
const PlanSchemaVersion = "transer.query/v1"

// Scorer turns feature vectors into match scores in [0, 1].
// model.Matcher satisfies it; MeanScorer is the model-free fallback.
// Implementations must be pure and worker-count invariant.
type Scorer interface {
	Score(x [][]float64, workers int) []float64
}

// MeanScorer scores a pair by its mean feature similarity — the
// model-free scorer for exploratory joins where no trained matcher is
// at hand. Thresholds then act directly on mean similarity.
type MeanScorer struct{}

// Score returns the per-row mean feature value.
func (MeanScorer) Score(x [][]float64, workers int) []float64 {
	return compare.MeanSimilarity(x)
}

// Job describes one similarity-join query.
type Job struct {
	// A and B are the databases to join. A nil B means a dedup
	// self-join of A: candidates are restricted to index pairs i < j.
	A, B *dataset.Database

	// Scheme overrides the comparison scheme (nil derives
	// compare.DefaultScheme from A's schema).
	Scheme *compare.Scheme
	// Comparators maps attribute names to comparator registry names
	// (compare.ByName), overriding the derived scheme's choice for
	// those attributes. Unknown attributes or comparator names are
	// errors.
	Comparators map[string]string

	// Scorer scores compared pairs; nil means MeanScorer. ScorerLabel
	// names it in plan text (defaults to "mean-similarity" for the nil
	// scorer, "custom" otherwise).
	Scorer      Scorer
	ScorerLabel string

	// Threshold keeps pairs with score ≥ Threshold.
	Threshold float64
	// Limit caps the result pairs in deterministic (A, B) index order;
	// 0 means unlimited.
	Limit int

	// Force pins the blocking strategy (StrategyAuto lets the planner
	// decide from statistics).
	Force Strategy
	// LSH overrides the MinHash configuration used when the LSH
	// strategy runs (zero value = blocking package defaults); generated
	// datasets pass their recommended config here.
	LSH blocking.MinHashConfig

	// Workers bounds execution goroutines (0 = one per CPU). Results
	// are byte-identical for every value.
	Workers int

	// Span, when non-nil, receives one child span per operator; Metrics
	// receives the engine's counters. Both are optional.
	Span    *obs.Span
	Metrics *obs.Registry
}

// Match is one result pair: indices into the job's databases, the
// records' ids, and the pair's score.
type Match struct {
	A, B     int
	IDA, IDB string
	Score    float64
}

// Result is one executed query.
type Result struct {
	Plan *Plan
	// Matches holds the filtered pairs in (A, B) index order, capped by
	// the job's limit.
	Matches []Match
	// Candidates counts blocked candidate pairs (after the self-join
	// restriction), Kept the pairs passing the threshold before Limit.
	Candidates int
	Kept       int
}

// Run plans and executes a job.
func Run(ctx context.Context, job Job) (*Result, error) {
	plan, err := PlanJob(job)
	if err != nil {
		return nil, err
	}
	return Execute(ctx, job, plan)
}

// resolve validates the job and fills defaults, returning the
// effective (a, b, scheme, scorer, label, selfJoin).
func (job Job) resolve() (a, b *dataset.Database, scheme compare.Scheme, scorer Scorer, label string, selfJoin bool, err error) {
	if job.A == nil {
		return nil, nil, compare.Scheme{}, nil, "", false, errors.New("query: job has no database A")
	}
	a, b = job.A, job.B
	if b == nil {
		b, selfJoin = a, true
	}
	if !a.Schema.Equal(b.Schema) {
		return nil, nil, compare.Scheme{}, nil, "", false, errors.New("query: databases A and B have different schemas")
	}
	if job.Threshold < 0 || job.Threshold > 1 {
		return nil, nil, compare.Scheme{}, nil, "", false, fmt.Errorf("query: threshold %v outside [0,1]", job.Threshold)
	}
	if job.Scheme != nil {
		scheme = *job.Scheme
	} else {
		scheme = compare.DefaultScheme(a.Schema)
	}
	scheme.Workers = job.Workers
	if len(job.Comparators) > 0 {
		scheme, err = applyComparators(scheme, a.Schema, job.Comparators)
		if err != nil {
			return nil, nil, compare.Scheme{}, nil, "", false, err
		}
	}
	scorer, label = job.Scorer, job.ScorerLabel
	if scorer == nil {
		scorer = MeanScorer{}
		if label == "" {
			label = "mean-similarity"
		}
	} else if label == "" {
		label = "custom"
	}
	return a, b, scheme, scorer, label, selfJoin, nil
}

// applyComparators rewrites the scheme's comparator for each named
// attribute with a registry comparator, preserving feature order (one
// feature per attribute, renamed "<attr>_<comparator>"). Iteration is
// over schema order, so the result is deterministic.
func applyComparators(s compare.Scheme, sch dataset.Schema, overrides map[string]string) (compare.Scheme, error) {
	byName := make(map[string]int, len(sch.Attributes))
	for i, a := range sch.Attributes {
		byName[a.Name] = i
	}
	for attr := range overrides {
		if _, ok := byName[attr]; !ok {
			return compare.Scheme{}, fmt.Errorf("query: comparator override for unknown attribute %q (schema has %v)", attr, sch.Names())
		}
	}
	out := s
	out.Comparators = append([]compare.Comparator(nil), s.Comparators...)
	for i, c := range out.Comparators {
		attrName := ""
		if c.Attr >= 0 && c.Attr < len(sch.Attributes) {
			attrName = sch.Attributes[c.Attr].Name
		}
		simName, ok := overrides[attrName]
		if !ok {
			continue
		}
		sim, err := compare.ByName(simName)
		if err != nil {
			return compare.Scheme{}, err
		}
		out.Comparators[i] = compare.Comparator{
			Attr: c.Attr,
			Name: attrName + "_" + simName,
			Sim:  sim,
		}
	}
	return out, nil
}
