package query

import (
	"context"
	"sync/atomic"

	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/dataset"
	"transer/internal/parallel"
	"transer/internal/strutil"
)

// CompareBlock is the fixed row-block size of vectorized compare and
// score execution. Fixing the block size (rather than deriving it from
// the worker count) keeps each row's execution context identical for
// every worker count, so results are byte-identical no matter how the
// engine is sized — the same contract internal/serve's batch scoring
// established. 512 rows amortise per-block overhead while keeping
// cancellation latency in the low milliseconds.
const CompareBlock = 512

// Candidates is the repository's single blocking entry point: it runs
// the spec's operator over the two databases and returns candidate
// pairs in deterministic sorted order. For a dedup self-join pass
// b == a and filter the result with SelfJoinPairs.
func Candidates(a, b *dataset.Database, spec BlockSpec) []dataset.Pair {
	switch spec.Strategy {
	case StrategySortedNeighbourhood:
		window := spec.Window
		if window < 2 {
			window = snWindow
		}
		keys := sortKeys(spec.SortAttr)
		// Windowed passes over complementary orderings of the key
		// attribute, unioned with an equal-key closure pass so records
		// sharing a key are candidates no matter where the window falls.
		set := make(dataset.PairSet)
		for _, key := range keys {
			for _, p := range blocking.SortedNeighbourhood(a, b, key, window) {
				set[p] = true
			}
		}
		for _, p := range blocking.StandardBlocking(a, b, keys...) {
			set[p] = true
		}
		return set.Sorted()
	case StrategyCanopy:
		sim := spec.Sim
		if sim == nil {
			sim = blocking.JaccardRecords
		}
		loose, tight := spec.Loose, spec.Tight
		if loose <= 0 {
			loose, tight = canopyLoose, canopyTight
		}
		return blocking.Canopy(a, b, sim, loose, tight)
	default: // StrategyLSH (and Auto, which the planner never emits)
		return blocking.CandidatePairs(a, b, spec.LSH)
	}
}

// sortKeys returns the sorting keys of the sorted-neighbourhood
// operator: prefix and Soundex over the attribute's leading token, and
// the same two over its lexicographically smallest token. The
// min-token keys are invariant to token order, so "last first" versus
// "first last" reorderings of a name attribute still share a key.
func sortKeys(attr int) []blocking.KeyFunc {
	return []blocking.KeyFunc{
		blocking.PrefixKey(attr, 4),
		blocking.SoundexKey(attr),
		minTokenKey(attr, 4),
		minTokenSoundexKey(attr),
	}
}

// minToken returns the lexicographically smallest word token of the
// attribute value ("" when empty or out of range).
func minToken(r dataset.Record, attr int) string {
	if attr < 0 || attr >= len(r.Values) {
		return ""
	}
	toks := strutil.Tokens(r.Values[attr])
	if len(toks) == 0 {
		return ""
	}
	low := toks[0]
	for _, t := range toks[1:] {
		if t < low {
			low = t
		}
	}
	return low
}

// minTokenKey keys on the first n characters of the smallest token.
func minTokenKey(attr, n int) blocking.KeyFunc {
	return func(r dataset.Record) string {
		s := minToken(r, attr)
		if len(s) > n {
			s = s[:n]
		}
		return s
	}
}

// minTokenSoundexKey keys on the Soundex code of the smallest token.
func minTokenSoundexKey(attr int) blocking.KeyFunc {
	return func(r dataset.Record) string {
		return strutil.Soundex(minToken(r, attr))
	}
}

// SelfJoinPairs restricts a self-join candidate set to index pairs
// i < j, dropping self-pairs and one of each mirrored duplicate. The
// input is sorted and mirror-complete (blocking a database against
// itself yields both orders), so the result stays sorted and covers
// every unordered pair exactly once.
func SelfJoinPairs(pairs []dataset.Pair) []dataset.Pair {
	out := pairs[:0:0]
	for _, p := range pairs {
		if p.A < p.B {
			out = append(out, p)
		}
	}
	return out
}

// CompareMatrix computes the n×m feature matrix of the candidate pairs
// under the scheme in fixed CompareBlock-row blocks over the worker
// pool, checking ctx between blocks. Rows are written to
// index-addressed slots, so the matrix is byte-identical for every
// worker count. On cancellation the partial matrix is discarded.
func CompareMatrix(ctx context.Context, a, b *dataset.Database, scheme compare.Scheme, pairs []dataset.Pair) ([][]float64, error) {
	if len(pairs) == 0 {
		return nil, ctx.Err()
	}
	x := make([][]float64, len(pairs))
	var canceled atomic.Bool
	nBlocks := (len(pairs) + CompareBlock - 1) / CompareBlock
	parallel.ForEach(scheme.Workers, nBlocks, func(bi int) {
		if canceled.Load() {
			return
		}
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		lo := bi * CompareBlock
		hi := min(lo+CompareBlock, len(pairs))
		for i := lo; i < hi; i++ {
			p := pairs[i]
			x[i] = scheme.Pair(a.Records[p.A], b.Records[p.B])
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return x, nil
}

// ScoreMatrix scores a feature matrix in fixed CompareBlock-row blocks
// over the worker pool, checking ctx between blocks. Each block is
// scored serially (workers=1 inside the scorer), so the scoring
// context of every row is fixed and the output byte-identical for any
// worker count. On cancellation the partial result is discarded and
// the context error returned.
func ScoreMatrix(ctx context.Context, scorer Scorer, x [][]float64, workers int) ([]float64, error) {
	if len(x) == 0 {
		return nil, ctx.Err()
	}
	out := make([]float64, len(x))
	var canceled atomic.Bool
	nBlocks := (len(x) + CompareBlock - 1) / CompareBlock
	parallel.ForEach(workers, nBlocks, func(bi int) {
		if canceled.Load() {
			return
		}
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		lo := bi * CompareBlock
		hi := min(lo+CompareBlock, len(x))
		copy(out[lo:hi], scorer.Score(x[lo:hi], 1))
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Execute runs a planned job. Each operator emits a child span under
// job.Span and counters into job.Metrics; instrumentation only records
// what the deterministic operators already did, so results are
// identical with observability on or off.
func Execute(ctx context.Context, job Job, plan *Plan) (*Result, error) {
	a, b, scheme, scorer, _, selfJoin, err := job.resolve()
	if err != nil {
		return nil, err
	}
	span, reg := job.Span, job.Metrics

	scan := span.Child("scan")
	scan.SetInt("records_a", int64(a.NumRecords()))
	scan.SetInt("records_b", int64(b.NumRecords()))
	scan.SetBool("self_join", selfJoin)
	scan.End()

	block := span.Child("block:" + plan.Block.Strategy.String())
	pairs := Candidates(a, b, plan.Block)
	if selfJoin {
		pairs = SelfJoinPairs(pairs)
	}
	block.SetInt("candidates", int64(len(pairs)))
	if plan.Stats.CrossProduct > 0 {
		block.SetFloat("selectivity", float64(len(pairs))/plan.Stats.CrossProduct)
	}
	block.End()
	reg.Counter("query.candidates_total").Add(int64(len(pairs)))

	cmp := span.Child("compare")
	x, err := CompareMatrix(ctx, a, b, scheme, pairs)
	cmp.SetInt("rows", int64(len(x)))
	cmp.SetInt("features", int64(scheme.NumFeatures()))
	cmp.End()
	if err != nil {
		return nil, err
	}
	reg.Counter("query.compared_rows_total").Add(int64(len(x)))

	score := span.Child("score")
	scores, err := ScoreMatrix(ctx, scorer, x, job.Workers)
	score.SetInt("rows", int64(len(scores)))
	score.End()
	if err != nil {
		return nil, err
	}

	filter := span.Child("filter")
	res := &Result{Plan: plan, Candidates: len(pairs)}
	for i, p := range pairs {
		if scores[i] < job.Threshold {
			continue
		}
		res.Kept++
		if job.Limit > 0 && len(res.Matches) >= job.Limit {
			continue
		}
		res.Matches = append(res.Matches, Match{
			A:     p.A,
			B:     p.B,
			IDA:   a.Records[p.A].ID,
			IDB:   b.Records[p.B].ID,
			Score: scores[i],
		})
	}
	filter.SetInt("kept", int64(res.Kept))
	filter.SetInt("returned", int64(len(res.Matches)))
	if len(pairs) > 0 {
		filter.SetFloat("selectivity", float64(res.Kept)/float64(len(pairs)))
	}
	filter.End()
	reg.Counter("query.matches_total").Add(int64(res.Kept))
	return res, nil
}
