package query

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"transer/internal/dataset"
	"transer/internal/obs"
)

var firstNames = []string{
	"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
	"ivan", "judy", "karl", "lena", "mike", "nina", "oscar", "peggy",
	"quinn", "rita", "steve", "trudy",
}

// testPair builds a two-attribute linkage pair with n records per side.
// The first matchCount B records duplicate their A counterpart exactly
// on the name attribute and with one token appended on the info
// attribute (token Jaccard 5/6 → 0.85 quantized), so the pair's mean
// feature similarity is 0.925 — above a 0.9 threshold — while every
// cross pair stays far below it. nullName blanks the name of every
// third record, which pushes the attribute's null ratio past the
// planner's sorted-neighbourhood guard.
func testPair(n, matchCount int, nullName bool) (a, b *dataset.Database) {
	schema := dataset.Schema{Attributes: []dataset.Attribute{
		{Name: "name", Type: dataset.AttrName},
		{Name: "info", Type: dataset.AttrText},
	}}
	name := func(i int) string {
		if nullName && i%3 == 0 {
			return ""
		}
		return fmt.Sprintf("%s family%04d", firstNames[i%len(firstNames)], i)
	}
	info := func(i int, extra bool) string {
		s := fmt.Sprintf("notes%04d zone%04d item%04d ref%04d meta%04d", i, i*7, i*13, i*29, i*31)
		if extra {
			s += " omega"
		}
		return s
	}
	a = &dataset.Database{Name: "qa", Schema: schema}
	b = &dataset.Database{Name: "qb", Schema: schema}
	for i := 0; i < n; i++ {
		a.Records = append(a.Records, dataset.Record{
			ID: fmt.Sprintf("a%04d", i), EntityID: fmt.Sprintf("e%04d", i),
			Values: []string{name(i), info(i, false)},
		})
	}
	for i := 0; i < n; i++ {
		if i < matchCount {
			b.Records = append(b.Records, dataset.Record{
				ID: fmt.Sprintf("b%04d", i), EntityID: fmt.Sprintf("e%04d", i),
				Values: []string{name(i), info(i, true)},
			})
			continue
		}
		j := i + 5*n // disjoint id space: no accidental matches
		b.Records = append(b.Records, dataset.Record{
			ID: fmt.Sprintf("b%04d", i), EntityID: fmt.Sprintf("x%04d", i),
			Values: []string{name(j), info(j, true)},
		})
	}
	return a, b
}

func mustPlan(t *testing.T, job Job) *Plan {
	t.Helper()
	plan, err := PlanJob(job)
	if err != nil {
		t.Fatalf("PlanJob: %v", err)
	}
	return plan
}

func mustRun(t *testing.T, job Job) *Result {
	t.Helper()
	res, err := Run(context.Background(), job)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestPlannerChoosesByShape pins the cost model's regime boundaries:
// small cross products go exhaustive canopy, a clean discriminative
// name key at scale goes sorted-neighbourhood, and a dirty key at scale
// falls back to LSH. Asserted through EXPLAIN, the user-visible plan
// rendering.
func TestPlannerChoosesByShape(t *testing.T) {
	cases := []struct {
		label    string
		n        int
		nullName bool
		want     Strategy
	}{
		{"small-no-key", 30, true, StrategyCanopy},
		{"large-clean-key", 800, false, StrategySortedNeighbourhood},
		{"large-dirty-key", 800, true, StrategyLSH},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			a, b := testPair(tc.n, tc.n/4, tc.nullName)
			plan := mustPlan(t, Job{A: a, B: b, Threshold: 0.9})
			if plan.Block.Strategy != tc.want {
				t.Fatalf("strategy = %v, want %v\n%s", plan.Block.Strategy, tc.want, plan.Explain())
			}
			exp := plan.Explain()
			if !strings.Contains(exp, "chosen   "+tc.want.String()) {
				t.Fatalf("EXPLAIN missing chosen line for %v:\n%s", tc.want, exp)
			}
			for _, frag := range []string{"plan: " + PlanSchemaVersion, "est lsh", "est sorted-neighbourhood", "est canopy", "filter   score >= 0.9"} {
				if !strings.Contains(exp, frag) {
					t.Fatalf("EXPLAIN missing %q:\n%s", frag, exp)
				}
			}
		})
	}
}

// TestExplainDeterministic re-plans the same job and demands identical
// plan text.
func TestExplainDeterministic(t *testing.T) {
	a, b := testPair(120, 30, false)
	job := Job{A: a, B: b, Threshold: 0.85, Limit: 10}
	e1 := mustPlan(t, job).Explain()
	e2 := mustPlan(t, job).Explain()
	if e1 != e2 {
		t.Fatalf("EXPLAIN not deterministic:\n%s\n----\n%s", e1, e2)
	}
}

// TestStatsPerturbationChangesPlanNotResults is the planner's core
// property: perturbing the statistics moves the plan across strategy
// regimes, but executing any of those plans on the same job yields the
// same result set.
func TestStatsPerturbationChangesPlanNotResults(t *testing.T) {
	a, b := testPair(400, 80, false)
	job := Job{A: a, B: b, Threshold: 0.9}
	base := Collect(a, b)

	auto, err := BuildPlan(job, base)
	if err != nil {
		t.Fatalf("BuildPlan(base): %v", err)
	}
	if auto.Block.Strategy != StrategySortedNeighbourhood {
		t.Fatalf("base plan = %v, want sorted-neighbourhood\n%s", auto.Block.Strategy, auto.Explain())
	}

	dirty := base
	dirty.Fields = append([]FieldStats(nil), base.Fields...)
	dirty.Fields[0].NullRatio = 0.5
	dirtyPlan, err := BuildPlan(job, dirty)
	if err != nil {
		t.Fatalf("BuildPlan(dirty): %v", err)
	}
	if dirtyPlan.Block.Strategy != StrategyLSH {
		t.Fatalf("dirty-key plan = %v, want lsh\n%s", dirtyPlan.Block.Strategy, dirtyPlan.Explain())
	}

	tiny := base
	tiny.CrossProduct = 1000
	tinyPlan, err := BuildPlan(job, tiny)
	if err != nil {
		t.Fatalf("BuildPlan(tiny): %v", err)
	}
	if tinyPlan.Block.Strategy != StrategyCanopy {
		t.Fatalf("tiny-cross plan = %v, want canopy\n%s", tinyPlan.Block.Strategy, tinyPlan.Explain())
	}

	ctx := context.Background()
	var matches [][]Match
	for _, plan := range []*Plan{auto, dirtyPlan, tinyPlan} {
		res, err := Execute(ctx, job, plan)
		if err != nil {
			t.Fatalf("Execute(%v): %v", plan.Block.Strategy, err)
		}
		matches = append(matches, res.Matches)
	}
	for i := 1; i < len(matches); i++ {
		if !reflect.DeepEqual(matches[0], matches[i]) {
			t.Fatalf("plan %d result differs from plan 0: %d vs %d matches", i, len(matches[i]), len(matches[0]))
		}
	}
	if len(matches[0]) == 0 {
		t.Fatal("no matches found; the property test is vacuous")
	}
}

// TestForcedStrategiesAgree forces all three blocking strategies on the
// same job and demands identical result sets at the same threshold —
// the planner may only ever change how much work finds the answer,
// never the answer.
func TestForcedStrategiesAgree(t *testing.T) {
	a, b := testPair(150, 40, false)
	var ref []Match
	for i, force := range []Strategy{StrategyLSH, StrategySortedNeighbourhood, StrategyCanopy} {
		job := Job{A: a, B: b, Threshold: 0.9, Force: force}
		plan := mustPlan(t, job)
		if !plan.Forced {
			t.Fatalf("%v: plan not marked forced", force)
		}
		if !strings.Contains(plan.Explain(), "(forced by caller)") {
			t.Fatalf("%v: EXPLAIN missing forced marker:\n%s", force, plan.Explain())
		}
		res, err := Execute(context.Background(), job, plan)
		if err != nil {
			t.Fatalf("Execute(%v): %v", force, err)
		}
		if i == 0 {
			ref = res.Matches
			if len(ref) == 0 {
				t.Fatal("no matches under forced LSH; test is vacuous")
			}
			continue
		}
		if !reflect.DeepEqual(res.Matches, ref) {
			t.Fatalf("forced %v yields %d matches, LSH yields %d", force, len(res.Matches), len(ref))
		}
	}
}

// TestWorkerCountInvariance renders the result of the same query under
// several worker counts and demands byte-identical output.
func TestWorkerCountInvariance(t *testing.T) {
	a, b := testPair(300, 60, false)
	var ref string
	for _, workers := range []int{1, 2, 7} {
		res := mustRun(t, Job{A: a, B: b, Threshold: 0.9, Workers: workers})
		got := fmt.Sprintf("%v|%d|%d", res.Matches, res.Candidates, res.Kept)
		if ref == "" {
			ref = got
			continue
		}
		if got != ref {
			t.Fatalf("workers=%d output differs:\n%s\nvs\n%s", workers, got, ref)
		}
	}
}

// TestSelfJoinDedup checks the nil-B dedup contract: candidates are
// restricted to i < j and a planted duplicate is found.
func TestSelfJoinDedup(t *testing.T) {
	a, _ := testPair(60, 0, false)
	dup := a.Records[7]
	dup.ID = "a-dup"
	a.Records = append(a.Records, dup)
	res := mustRun(t, Job{A: a, Threshold: 0.9})
	if !res.Plan.SelfJoin {
		t.Fatal("plan not marked self-join")
	}
	found := false
	for _, m := range res.Matches {
		if m.A >= m.B {
			t.Fatalf("self-join match violates i<j: %+v", m)
		}
		if m.A == 7 && m.B == len(a.Records)-1 {
			found = true
			if m.IDA != "a0007" || m.IDB != "a-dup" {
				t.Fatalf("match ids = %q,%q", m.IDA, m.IDB)
			}
		}
	}
	if !found {
		t.Fatalf("planted duplicate not found in %d matches", len(res.Matches))
	}
}

// TestComparatorOverrides wires a registry comparator into the derived
// scheme by attribute name, and rejects unknown names on both sides.
func TestComparatorOverrides(t *testing.T) {
	a, b := testPair(40, 10, false)
	job := Job{A: a, B: b, Threshold: 0.9, Comparators: map[string]string{"name": "smith_waterman"}}
	plan := mustPlan(t, job)
	names := plan.Scheme.FeatureNames()
	if names[0] != "name_smith_waterman" {
		t.Fatalf("feature names = %v, want name_smith_waterman first", names)
	}
	if _, err := PlanJob(Job{A: a, B: b, Comparators: map[string]string{"name": "nope"}}); err == nil {
		t.Fatal("unknown comparator name accepted")
	}
	if _, err := PlanJob(Job{A: a, B: b, Comparators: map[string]string{"missing_attr": "edit"}}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

// TestJobValidation covers the resolve-time error paths.
func TestJobValidation(t *testing.T) {
	a, b := testPair(10, 2, false)
	if _, err := PlanJob(Job{Threshold: 0.5}); err == nil {
		t.Fatal("nil A accepted")
	}
	if _, err := PlanJob(Job{A: a, B: b, Threshold: 1.5}); err == nil {
		t.Fatal("threshold 1.5 accepted")
	}
	other := &dataset.Database{Name: "other", Schema: dataset.Schema{Attributes: []dataset.Attribute{{Name: "x", Type: dataset.AttrText}}}}
	if _, err := PlanJob(Job{A: a, B: other}); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

// TestLimitCapsMatchesNotKept checks Limit truncates the returned
// matches while Kept still counts every pair over the threshold.
func TestLimitCapsMatchesNotKept(t *testing.T) {
	a, b := testPair(80, 20, false)
	full := mustRun(t, Job{A: a, B: b, Threshold: 0.9})
	if full.Kept < 3 {
		t.Fatalf("need >= 3 matches for the limit test, got %d", full.Kept)
	}
	lim := mustRun(t, Job{A: a, B: b, Threshold: 0.9, Limit: 2})
	if len(lim.Matches) != 2 {
		t.Fatalf("limited matches = %d, want 2", len(lim.Matches))
	}
	if lim.Kept != full.Kept {
		t.Fatalf("limited Kept = %d, want %d", lim.Kept, full.Kept)
	}
	if !reflect.DeepEqual(lim.Matches, full.Matches[:2]) {
		t.Fatal("limited matches are not the deterministic prefix")
	}
}

// TestCancellation checks CompareMatrix and ScoreMatrix drop partial
// work and surface the context error.
func TestCancellation(t *testing.T) {
	a, b := testPair(100, 20, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Job{A: a, B: b, Threshold: 0.9}); err == nil {
		t.Fatal("canceled run returned no error")
	}
	if _, err := ScoreMatrix(ctx, MeanScorer{}, [][]float64{{1}}, 1); err == nil {
		t.Fatal("canceled ScoreMatrix returned no error")
	}
}

// TestSpansAndMetrics checks each operator emits its span and the
// engine its counters — and that instrumentation does not change the
// result.
func TestSpansAndMetrics(t *testing.T) {
	a, b := testPair(60, 15, false)
	bare := mustRun(t, Job{A: a, B: b, Threshold: 0.9})

	tr := obs.New("query-test")
	job := Job{A: a, B: b, Threshold: 0.9, Span: tr.Root(), Metrics: tr.Metrics()}
	res := mustRun(t, job)
	if !reflect.DeepEqual(res.Matches, bare.Matches) {
		t.Fatal("instrumented run changed the result")
	}

	for _, name := range []string{"scan", "compare", "score", "filter"} {
		if tr.Root().Find(name) == nil {
			t.Fatalf("span %q missing", name)
		}
	}
	blockName := "block:" + res.Plan.Block.Strategy.String()
	if tr.Root().Find(blockName) == nil {
		t.Fatalf("span %q missing", blockName)
	}
	snap := tr.Metrics().Snapshot()
	if snap.Counters["query.candidates_total"] <= 0 {
		t.Fatalf("query.candidates_total = %d", snap.Counters["query.candidates_total"])
	}
	if snap.Counters["query.matches_total"] != int64(res.Kept) {
		t.Fatalf("query.matches_total = %d, want %d", snap.Counters["query.matches_total"], res.Kept)
	}
}

// TestParseStrategyRoundTrip pins flag parsing.
func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range []Strategy{StrategyAuto, StrategyLSH, StrategySortedNeighbourhood, StrategyCanopy} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if got, err := ParseStrategy("sn"); err != nil || got != StrategySortedNeighbourhood {
		t.Fatalf("ParseStrategy(sn) = %v, %v", got, err)
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}
