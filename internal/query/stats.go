package query

import (
	"transer/internal/blocking"
	"transer/internal/dataset"
	"transer/internal/strutil"
)

// sketchK is the KMV sketch size used for token cardinality estimates.
// 256 keeps the relative standard error near 6% — far finer than any
// planning decision boundary — at a few KB per sketch.
const sketchK = 256

// FieldStats summarises one schema attribute across both databases.
// All ratios are in [0, 1] and deterministic for fixed inputs.
type FieldStats struct {
	Name string           `json:"name"`
	Type dataset.AttrType `json:"-"`
	// NullRatio is the fraction of empty values.
	NullRatio float64 `json:"null_ratio"`
	// DistinctRatio is distinct non-empty values over non-empty values
	// (1 = unique key, → 0 = heavily repeated category).
	DistinctRatio float64 `json:"distinct_ratio"`
	// AvgTokens is the mean word-token count of non-empty values.
	AvgTokens float64 `json:"avg_tokens"`
}

// Stats are the per-dataset statistics the planner's cost model runs
// on: record counts, per-field null/distinct ratios, and token-set
// cardinality estimated with the KMV sketch that shares MinHash
// blocking's token hashing. Collect is a pure function of the two
// databases, so plans built from collected stats are deterministic.
type Stats struct {
	RecordsA, RecordsB int
	// CrossProduct = RecordsA × RecordsB, the unblocked pair space.
	CrossProduct float64
	Fields       []FieldStats
	// TokensPerRecord is the mean word-token count of a record over all
	// attributes (both databases pooled).
	TokensPerRecord float64
	// DistinctTokens is the KMV-estimated distinct token count of the
	// pooled databases.
	DistinctTokens float64
	// Sketch is the pooled KMV token sketch behind DistinctTokens.
	// The model repository persists its minimum hashes in domain
	// signatures (model.Signature), so stored models and new targets
	// can estimate their token-set overlap without revisiting the data.
	Sketch *blocking.KMV
}

// Collect computes planning statistics for a database pair in one pass
// per database. For a self-join (dedup) call it with b == a.
func Collect(a, b *dataset.Database) Stats {
	st := Stats{
		RecordsA:     a.NumRecords(),
		RecordsB:     b.NumRecords(),
		CrossProduct: float64(a.NumRecords()) * float64(b.NumRecords()),
	}

	m := a.Schema.NumAttributes()
	nonEmpty := make([]int, m)
	nulls := make([]int, m)
	fieldTokens := make([]int, m)
	distinct := make([]map[string]bool, m)
	for j := range distinct {
		distinct[j] = make(map[string]bool)
	}
	totalTokens := 0
	records := 0

	sketch := blocking.NewKMV(sketchK)
	walk := func(db *dataset.Database) {
		records += len(db.Records)
		for _, r := range db.Records {
			for j, v := range r.Values {
				if j >= m {
					break
				}
				if v == "" {
					nulls[j]++
					continue
				}
				nonEmpty[j]++
				distinct[j][v] = true
				toks := strutil.Tokens(v)
				fieldTokens[j] += len(toks)
				totalTokens += len(toks)
				for _, t := range toks {
					sketch.AddToken(t)
				}
			}
		}
	}
	walk(a)
	if b != a {
		walk(b)
	}

	st.Fields = make([]FieldStats, m)
	for j, attr := range a.Schema.Attributes {
		f := FieldStats{Name: attr.Name, Type: attr.Type}
		if tot := nonEmpty[j] + nulls[j]; tot > 0 {
			f.NullRatio = float64(nulls[j]) / float64(tot)
		}
		if nonEmpty[j] > 0 {
			f.DistinctRatio = float64(len(distinct[j])) / float64(nonEmpty[j])
			f.AvgTokens = float64(fieldTokens[j]) / float64(nonEmpty[j])
		}
		st.Fields[j] = f
	}
	if records > 0 {
		st.TokensPerRecord = float64(totalTokens) / float64(records)
	}
	st.DistinctTokens = sketch.Estimate()
	if st.DistinctTokens < 1 {
		st.DistinctTokens = 1
	}
	st.Sketch = sketch
	return st
}
