package query

import (
	"fmt"
	"strings"

	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/dataset"
)

// Strategy identifies a blocking operator.
type Strategy int

const (
	// StrategyAuto lets the planner choose from statistics.
	StrategyAuto Strategy = iota
	// StrategyLSH is MinHash-LSH over q-gram shingles
	// (blocking.CandidatePairs) — the scalable default.
	StrategyLSH
	// StrategySortedNeighbourhood slides a window over records sorted by
	// a discriminative key, unioned with an equal-key pass so identical
	// keys are always candidates regardless of window position.
	StrategySortedNeighbourhood
	// StrategyCanopy compares every cross pair with a cheap record
	// similarity — exhaustive recall, quadratic cost, for small inputs.
	StrategyCanopy
)

// String returns the strategy's stable plan-text name.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyLSH:
		return "lsh"
	case StrategySortedNeighbourhood:
		return "sorted-neighbourhood"
	case StrategyCanopy:
		return "canopy"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy parses a strategy name as accepted by the -block flag
// and the /v1/query "block" field ("sn" aliases sorted-neighbourhood;
// "" means auto).
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return StrategyAuto, nil
	case "lsh", "minhash":
		return StrategyLSH, nil
	case "sn", "sorted-neighbourhood", "sortedneighbourhood":
		return StrategySortedNeighbourhood, nil
	case "canopy":
		return StrategyCanopy, nil
	}
	return StrategyAuto, fmt.Errorf("query: unknown blocking strategy %q (want auto|lsh|sn|canopy)", s)
}

// BlockSpec is a fully resolved blocking operator: the strategy plus
// every parameter its execution needs. Candidates(a, b, spec) is the
// repository's single blocking entry point.
type BlockSpec struct {
	Strategy Strategy

	// LSH parameters (StrategyLSH).
	LSH blocking.MinHashConfig

	// Sorted-neighbourhood parameters (StrategySortedNeighbourhood):
	// the sort-key attribute index/name and the window size.
	SortAttr int
	SortName string
	Window   int

	// Canopy parameters (StrategyCanopy). Sim nil means the default
	// token-Jaccard record similarity (blocking.JaccardRecords); the
	// planner passes a comparator built from internal/strutil
	// explicitly, named by SimName for plan rendering.
	Loose, Tight float64
	Sim          func(x, y dataset.Record) float64
	SimName      string
}

// describe renders the spec's parameters for plan text.
func (b BlockSpec) describe() string {
	switch b.Strategy {
	case StrategyLSH:
		cfg := b.LSH.Normalized()
		return fmt.Sprintf("strategy=lsh hashes=%d bands=%d q=%d", cfg.NumHashes, cfg.Bands, cfg.Q)
	case StrategySortedNeighbourhood:
		return fmt.Sprintf("strategy=sorted-neighbourhood key=%s window=%d", b.SortName, b.Window)
	case StrategyCanopy:
		sim := b.SimName
		if sim == "" {
			sim = "token_jaccard"
		}
		tight := fmt.Sprintf("%.2f", b.Tight)
		if b.Tight > 1 {
			tight = "off"
		}
		return fmt.Sprintf("strategy=canopy sim=%s loose=%.2f tight=%s", sim, b.Loose, tight)
	}
	return "strategy=" + b.Strategy.String()
}

// Estimate is the planner's per-strategy cost assessment; every plan
// carries all three so EXPLAIN shows the rejected paths too.
type Estimate struct {
	Strategy Strategy
	// Candidates is the estimated candidate pair count.
	Candidates float64
	// Cost is the estimated total work in comparator-evaluation units.
	Cost float64
	// Eligible reports whether the strategy met its recall guard.
	Eligible bool
	// Note explains ineligibility or the guard that admitted it.
	Note string
}

// Plan is a fully planned query: the logical operator chain
// Scan → Block → Compare → Score → Filter(score ≥ τ) → Limit with
// every physical parameter resolved. Plans are value-semantic and
// deterministic: equal jobs and stats produce equal plans.
type Plan struct {
	// NameA/NameB and record counts snapshot the scanned inputs.
	NameA, NameB string
	SelfJoin     bool
	Stats        Stats

	Block     BlockSpec
	Scheme    compare.Scheme
	Scorer    string // scorer label for plan text
	Threshold float64
	Limit     int

	// Forced is true when the caller overrode the planner's choice.
	Forced    bool
	Reason    string
	Estimates []Estimate
}

// Explain renders the plan in the EXPLAIN format: one line per logical
// operator, then the planner's per-strategy estimates. The text is
// deterministic for a deterministic input, so tests and docs can
// assert on it.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan: %s\n", PlanSchemaVersion)
	join := "join"
	if p.SelfJoin {
		join = "self-join"
	}
	fmt.Fprintf(&sb, "scan     %s A=%s(%d) B=%s(%d) cross=%.0f\n",
		join, p.NameA, p.Stats.RecordsA, p.NameB, p.Stats.RecordsB, p.Stats.CrossProduct)
	fmt.Fprintf(&sb, "block    %s  est_candidates=%.0f\n", p.Block.describe(), p.chosenEstimate().Candidates)
	fmt.Fprintf(&sb, "compare  features=%d [%s]  (fixed %d-row blocks, worker-count invariant)\n",
		p.Scheme.NumFeatures(), strings.Join(p.Scheme.FeatureNames(), ","), CompareBlock)
	fmt.Fprintf(&sb, "score    scorer=%s\n", p.Scorer)
	fmt.Fprintf(&sb, "filter   score >= %.4g\n", p.Threshold)
	if p.Limit > 0 {
		fmt.Fprintf(&sb, "limit    %d\n", p.Limit)
	} else {
		sb.WriteString("limit    none\n")
	}
	if p.Forced {
		fmt.Fprintf(&sb, "chosen   %s (forced by caller)\n", p.Block.Strategy)
	} else {
		fmt.Fprintf(&sb, "chosen   %s: %s\n", p.Block.Strategy, p.Reason)
	}
	for _, e := range p.Estimates {
		state := "eligible"
		if !e.Eligible {
			state = "ineligible"
		}
		fmt.Fprintf(&sb, "  est %-20s candidates=%-12.0f cost=%-14.0f %s: %s\n",
			e.Strategy, e.Candidates, e.Cost, state, e.Note)
	}
	return sb.String()
}

// chosenEstimate returns the estimate row of the chosen strategy (zero
// value if absent, e.g. under a forced override with no estimates).
func (p *Plan) chosenEstimate() Estimate {
	for _, e := range p.Estimates {
		if e.Strategy == p.Block.Strategy {
			return e
		}
	}
	return Estimate{Strategy: p.Block.Strategy}
}
