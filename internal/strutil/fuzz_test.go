package strutil

import (
	"testing"
	"unicode/utf8"
)

// Fuzz targets for the string comparators. The invariants are stated
// over rune sequences because both functions decode their inputs as
// UTF-8 first — two byte-distinct strings can share a rune sequence
// once invalid bytes collapse to U+FFFD.

func FuzzLevenshtein(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "abc")
	f.Add("gonzalez", "gonzales")
	f.Add("日本語", "日本")
	f.Add("\xff\xfe", "a")
	f.Fuzz(func(t *testing.T, a, b string) {
		d := Levenshtein(a, b)
		if back := Levenshtein(b, a); back != d {
			t.Fatalf("not symmetric: d(%q,%q)=%d but d(%q,%q)=%d", a, b, d, b, a, back)
		}
		la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
		lo := la - lb
		if lo < 0 {
			lo = -lo
		}
		hi := la
		if lb > hi {
			hi = lb
		}
		if d < lo || d > hi {
			t.Fatalf("d(%q,%q)=%d outside [|la-lb|, max(la,lb)] = [%d, %d]", a, b, d, lo, hi)
		}
		if same := string([]rune(a)) == string([]rune(b)); (d == 0) != same {
			t.Fatalf("d(%q,%q)=%d but rune equality is %v", a, b, d, same)
		}
	})
}

func FuzzJaroWinkler(f *testing.F) {
	f.Add("martha", "marhta")
	f.Add("", "")
	f.Add("", "x")
	f.Add("dwayne", "duane")
	f.Add("müller", "mueller")
	f.Add("\xff", "\xfe")
	f.Fuzz(func(t *testing.T, a, b string) {
		s := JaroWinkler(a, b)
		if s < 0 || s > 1 {
			t.Fatalf("JaroWinkler(%q,%q)=%v outside [0,1]", a, b, s)
		}
		if back := JaroWinkler(b, a); back != s {
			t.Fatalf("not symmetric: %v vs %v for (%q,%q)", s, back, a, b)
		}
		if string([]rune(a)) == string([]rune(b)) && s != 1 {
			t.Fatalf("JaroWinkler(%q,%q)=%v on rune-equal strings, want 1", a, b, s)
		}
	})
}
