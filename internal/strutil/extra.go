package strutil

import "strings"

// This file holds additional comparators from the record linkage
// literature beyond the core set: local alignment (Smith-Waterman),
// the NYSIIS phonetic encoding, longest common subsequence, and the
// overlap coefficient. They are available for custom comparison
// schemes.

// SmithWaterman returns the normalised local alignment similarity of a
// and b with match score 1, mismatch penalty -1, and gap penalty -0.5.
// The raw best alignment score is divided by the shorter string's
// length, yielding a similarity in [0, 1].
func SmithWaterman(a, b string) float64 {
	ra, rb := []rune(strings.ToLower(a)), []rune(strings.ToLower(b))
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	const (
		match    = 1.0
		mismatch = -1.0
		gap      = -0.5
	)
	prev := make([]float64, lb+1)
	cur := make([]float64, lb+1)
	best := 0.0
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			s := mismatch
			if ra[i-1] == rb[j-1] {
				s = match
			}
			v := prev[j-1] + s
			if g := prev[j] + gap; g > v {
				v = g
			}
			if g := cur[j-1] + gap; g > v {
				v = g
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	short := la
	if lb < short {
		short = lb
	}
	sim := best / float64(short)
	if sim > 1 {
		sim = 1
	}
	return sim
}

// LongestCommonSubsequence returns the length of the longest (not
// necessarily contiguous) common subsequence of a and b.
func LongestCommonSubsequence(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 || lb == 0 {
		return 0
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return prev[lb]
}

// LCSeqSim normalises LongestCommonSubsequence by the mean string
// length, the standard LCS similarity.
func LCSeqSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	return 2 * float64(LongestCommonSubsequence(a, b)) / float64(la+lb)
}

// OverlapCoefficient returns |A∩B| / min(|A|,|B|) over word token
// sets — 1 whenever one value's tokens are a subset of the other's,
// making it the comparator of choice for abbreviated vs full forms.
func OverlapCoefficient(a, b string) float64 {
	ta, tb := Tokens(a), Tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	set := make(map[string]bool, len(ta))
	for _, t := range ta {
		set[t] = true
	}
	seen := make(map[string]bool, len(tb))
	inter := 0
	for _, t := range tb {
		if seen[t] {
			continue
		}
		seen[t] = true
		if set[t] {
			inter++
		}
	}
	minSize := len(set)
	if len(seen) < minSize {
		minSize = len(seen)
	}
	return float64(inter) / float64(minSize)
}

// NYSIIS returns the NYSIIS phonetic code of s, a more precise
// alternative to Soundex for anglophone surnames. Empty or
// non-alphabetic input yields an empty code. Codes are truncated to
// the conventional six characters.
func NYSIIS(s string) string {
	up := make([]rune, 0, len(s))
	for _, r := range strings.ToUpper(s) {
		if r >= 'A' && r <= 'Z' {
			up = append(up, r)
		}
	}
	if len(up) == 0 {
		return ""
	}
	w := string(up)
	// Initial transformations.
	switch {
	case strings.HasPrefix(w, "MAC"):
		w = "MCC" + w[3:]
	case strings.HasPrefix(w, "KN"):
		w = "NN" + w[2:]
	case strings.HasPrefix(w, "K"):
		w = "C" + w[1:]
	case strings.HasPrefix(w, "PH"), strings.HasPrefix(w, "PF"):
		w = "FF" + w[2:]
	case strings.HasPrefix(w, "SCH"):
		w = "SSS" + w[3:]
	}
	switch {
	case strings.HasSuffix(w, "EE"), strings.HasSuffix(w, "IE"):
		w = w[:len(w)-2] + "Y"
	case strings.HasSuffix(w, "DT"), strings.HasSuffix(w, "RT"),
		strings.HasSuffix(w, "RD"), strings.HasSuffix(w, "NT"),
		strings.HasSuffix(w, "ND"):
		w = w[:len(w)-2] + "D"
	}
	rs := []rune(w)
	key := []rune{rs[0]}
	isVowel := func(r rune) bool {
		return r == 'A' || r == 'E' || r == 'I' || r == 'O' || r == 'U'
	}
	for i := 1; i < len(rs); i++ {
		c := rs[i]
		var repl string
		switch {
		case c == 'E' && i+1 < len(rs) && rs[i+1] == 'V':
			repl = "AF"
		case isVowel(c):
			repl = "A"
		case c == 'Q':
			repl = "G"
		case c == 'Z':
			repl = "S"
		case c == 'M':
			repl = "N"
		case c == 'K':
			if i+1 < len(rs) && rs[i+1] == 'N' {
				repl = "N"
			} else {
				repl = "C"
			}
		case c == 'S' && i+2 < len(rs) && rs[i+1] == 'C' && rs[i+2] == 'H':
			repl = "SSS"
		case c == 'P' && i+1 < len(rs) && rs[i+1] == 'H':
			repl = "FF"
		case c == 'H' && (i+1 >= len(rs) || !isVowel(rs[i+1]) || !isVowel(rs[i-1])):
			repl = string(rs[i-1])
		case c == 'W' && isVowel(rs[i-1]):
			repl = string(rs[i-1])
		default:
			repl = string(c)
		}
		for _, r := range repl {
			if len(key) == 0 || key[len(key)-1] != r {
				key = append(key, r)
			}
		}
	}
	// Final transformations.
	out := string(key)
	if strings.HasSuffix(out, "S") && len(out) > 1 {
		out = out[:len(out)-1]
	}
	if strings.HasSuffix(out, "AY") {
		out = out[:len(out)-2] + "Y"
	}
	if strings.HasSuffix(out, "A") && len(out) > 1 {
		out = out[:len(out)-1]
	}
	if len(out) > 6 {
		out = out[:6]
	}
	return out
}
