// Package strutil provides approximate string comparison functions used
// in the record pair comparison step of entity resolution. All
// similarity functions return values in [0, 1] where 1 means identical
// and 0 means maximally different. The functions are the standard
// comparators from the record linkage literature (Christen, Data
// Matching, 2012): Jaro, Jaro-Winkler, Levenshtein (edit distance),
// token and q-gram Jaccard, Sørensen-Dice, Monge-Elkan, plus exact,
// numeric and year comparators, and phonetic encodings used for
// blocking keys.
package strutil

import (
	"math"
	"strings"
	"unicode"
)

// Jaro returns the Jaro similarity of two strings. It counts matching
// characters within a sliding window of half the longer string's length
// and penalises transpositions. Empty strings compare as 1 to each
// other and 0 to any non-empty string.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, la)
	matchedB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max(0, i-window)
		hi := min(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchedB[j] && ra[i] == rb[j] {
				matchedA[i] = true
				matchedB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions between the matched character sequences.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity, boosting the Jaro
// score for strings sharing a common prefix of up to four characters
// with the standard scaling factor p = 0.1. It is the comparator of
// choice for personal names (paper Section 5.1.1).
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	if j == 0 {
		return 0
	}
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// Levenshtein returns the minimum number of single-character edits
// (insertions, deletions, substitutions) transforming a into b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// EditSim converts Levenshtein distance into a similarity in [0, 1] by
// normalising with the longer string's length.
func EditSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	d := Levenshtein(a, b)
	return 1 - float64(d)/float64(max(la, lb))
}

// Tokens splits s into lower-cased word tokens on any non-alphanumeric
// boundary. It is the tokeniser behind token-based comparators and
// MinHash shingling of multi-word values.
func Tokens(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsNumber(r)
	})
}

// QGrams returns the padded character q-grams of s in lower case. The
// string is padded with q-1 leading and trailing '#' / '$' sentinel
// characters so that prefixes and suffixes are represented, following
// standard record linkage practice.
func QGrams(s string, q int) []string {
	if q <= 0 {
		return nil
	}
	ls := strings.ToLower(s)
	if ls == "" {
		return nil
	}
	padded := strings.Repeat("#", q-1) + ls + strings.Repeat("$", q-1)
	rs := []rune(padded)
	if len(rs) < q {
		return []string{string(rs)}
	}
	grams := make([]string, 0, len(rs)-q+1)
	for i := 0; i+q <= len(rs); i++ {
		grams = append(grams, string(rs[i:i+q]))
	}
	return grams
}

// JaccardTokens returns the Jaccard coefficient of the word-token sets
// of a and b. It is the comparator used for longer textual strings such
// as publication titles (paper Section 5.1.1).
func JaccardTokens(a, b string) float64 {
	return jaccard(Tokens(a), Tokens(b))
}

// JaccardQGrams returns the Jaccard coefficient of the q-gram sets of a
// and b; q = 2 (bigrams) is the common record linkage choice.
func JaccardQGrams(a, b string, q int) float64 {
	return jaccard(QGrams(a, q), QGrams(b, q))
}

func jaccard(sa, sb []string) float64 {
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	set := make(map[string]bool, len(sa))
	for _, t := range sa {
		set[t] = true
	}
	inter := 0
	seen := make(map[string]bool, len(sb))
	for _, t := range sb {
		if seen[t] {
			continue
		}
		seen[t] = true
		if set[t] {
			inter++
		}
	}
	union := len(set) + len(seen) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Dice returns the Sørensen-Dice coefficient over bigram sets:
// 2|A∩B| / (|A|+|B|).
func Dice(a, b string) float64 {
	sa, sb := QGrams(a, 2), QGrams(b, 2)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	set := make(map[string]int, len(sa))
	for _, t := range sa {
		set[t]++
	}
	inter := 0
	for _, t := range sb {
		if set[t] > 0 {
			set[t]--
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(sa)+len(sb))
}

// MongeElkan returns the Monge-Elkan similarity: for each token of a it
// takes the best JaroWinkler match among the tokens of b and averages.
// Note the measure is asymmetric; SymMongeElkan symmetrises it.
func MongeElkan(a, b string) float64 {
	ta, tb := Tokens(a), Tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := JaroWinkler(x, y); s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(ta))
}

// SymMongeElkan is the symmetrised Monge-Elkan similarity
// (mean of both directions).
func SymMongeElkan(a, b string) float64 {
	return (MongeElkan(a, b) + MongeElkan(b, a)) / 2
}

// Exact returns 1 if the strings are byte-identical after trimming
// surrounding space and lower-casing, 0 otherwise.
func Exact(a, b string) float64 {
	if strings.EqualFold(strings.TrimSpace(a), strings.TrimSpace(b)) {
		return 1
	}
	return 0
}

// NumericSim compares two numeric values with a maximum tolerated
// absolute difference maxDiff: identical values score 1, values whose
// difference reaches or exceeds maxDiff score 0, and the score decays
// linearly in between. A non-positive maxDiff degenerates to exact
// numeric equality.
func NumericSim(a, b, maxDiff float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return 0
	}
	d := math.Abs(a - b)
	if maxDiff <= 0 {
		if d == 0 {
			return 1
		}
		return 0
	}
	if d >= maxDiff {
		return 0
	}
	return 1 - d/maxDiff
}

// YearSim compares two integer years with a tolerance window of
// maxDiff years, the numeric comparator the paper applies to Year
// attributes.
func YearSim(a, b int, maxDiff int) float64 {
	return NumericSim(float64(a), float64(b), float64(maxDiff))
}

// Soundex returns the 4-character American Soundex code of s; it is
// used to build phonetic blocking keys for person names. Empty or
// non-alphabetic input yields an empty code.
func Soundex(s string) string {
	up := strings.ToUpper(strings.TrimSpace(s))
	var first byte
	var rest []byte
	for i := 0; i < len(up); i++ {
		c := up[i]
		if c < 'A' || c > 'Z' {
			continue
		}
		if first == 0 {
			first = c
			continue
		}
		rest = append(rest, c)
	}
	if first == 0 {
		return ""
	}
	code := []byte{first}
	last := soundexDigit(first)
	for _, c := range rest {
		d := soundexDigit(c)
		if d == 0 {
			if c != 'H' && c != 'W' {
				last = 0
			}
			continue
		}
		if d != last {
			code = append(code, '0'+d)
			if len(code) == 4 {
				break
			}
		}
		last = d
	}
	for len(code) < 4 {
		code = append(code, '0')
	}
	return string(code)
}

func soundexDigit(c byte) byte {
	switch c {
	case 'B', 'F', 'P', 'V':
		return 1
	case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
		return 2
	case 'D', 'T':
		return 3
	case 'L':
		return 4
	case 'M', 'N':
		return 5
	case 'R':
		return 6
	}
	return 0
}

// LongestCommonSubstring returns the length of the longest common
// contiguous substring of a and b.
func LongestCommonSubstring(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	best := 0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return best
}

// LCSSim normalises LongestCommonSubstring by the shorter string's
// length, yielding a similarity in [0, 1].
func LCSSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	return float64(LongestCommonSubstring(a, b)) / float64(min(la, lb))
}
