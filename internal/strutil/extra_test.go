package strutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSmithWaterman(t *testing.T) {
	if SmithWaterman("", "") != 1 {
		t.Errorf("empties should be 1")
	}
	if SmithWaterman("abc", "") != 0 {
		t.Errorf("one empty should be 0")
	}
	if SmithWaterman("hello", "hello") != 1 {
		t.Errorf("identical strings should be 1")
	}
	// Local alignment shines on shared substrings inside noise.
	sub := SmithWaterman("xxjohnxx", "john")
	if sub != 1 {
		t.Errorf("contained substring should align perfectly, got %v", sub)
	}
	far := SmithWaterman("aaaa", "zzzz")
	if far != 0 {
		t.Errorf("disjoint strings should be 0, got %v", far)
	}
	near := SmithWaterman("jonathan", "johnathan")
	if near < 0.7 {
		t.Errorf("near names should score high, got %v", near)
	}
}

func TestLongestCommonSubsequence(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"abcde", "ace", 3},
		{"abc", "def", 0},
		{"", "abc", 0},
		{"same", "same", 4},
		{"AGGTAB", "GXTXAYB", 4},
	}
	for _, c := range cases {
		if got := LongestCommonSubsequence(c.a, c.b); got != c.want {
			t.Errorf("LCSeq(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCSeqSim(t *testing.T) {
	if LCSeqSim("", "") != 1 {
		t.Errorf("empties should be 1")
	}
	if LCSeqSim("abc", "") != 0 {
		t.Errorf("one empty should be 0")
	}
	if LCSeqSim("abc", "abc") != 1 {
		t.Errorf("identical should be 1")
	}
	v := LCSeqSim("abcde", "ace")
	if math.Abs(v-2*3.0/8.0) > 1e-12 {
		t.Errorf("LCSeqSim = %v", v)
	}
}

func TestOverlapCoefficient(t *testing.T) {
	if OverlapCoefficient("", "") != 1 {
		t.Errorf("empties should be 1")
	}
	if OverlapCoefficient("a b", "") != 0 {
		t.Errorf("one empty should be 0")
	}
	// Subset: abbreviation against full form.
	if v := OverlapCoefficient("intl conf data eng", "intl conf data eng proceedings ieee"); v != 1 {
		t.Errorf("subset tokens should give 1, got %v", v)
	}
	if v := OverlapCoefficient("a b c d", "c d e f"); v != 0.5 {
		t.Errorf("half overlap = %v", v)
	}
}

func TestNYSIIS(t *testing.T) {
	// Equivalence classes the encoding must preserve.
	same := [][2]string{
		{"KNIGHT", "NIGHT"},
		{"PHILIP", "FILIP"},
	}
	for _, pair := range same {
		a, b := NYSIIS(pair[0]), NYSIIS(pair[1])
		if a == "" || a != b {
			t.Errorf("NYSIIS(%q)=%q != NYSIIS(%q)=%q", pair[0], a, pair[1], b)
		}
	}
	if NYSIIS("") != "" {
		t.Errorf("empty input should give empty code")
	}
	if NYSIIS("12 34") != "" {
		t.Errorf("non-alphabetic input should give empty code")
	}
	if got := NYSIIS("MACDONALD"); got == "" || got[0] != 'M' {
		t.Errorf("NYSIIS(MACDONALD) = %q", got)
	}
}

func TestPropertyExtraSimilarities(t *testing.T) {
	fns := map[string]func(a, b string) float64{
		"SmithWaterman": SmithWaterman,
		"LCSeqSim":      LCSeqSim,
		"Overlap":       OverlapCoefficient,
	}
	for name, fn := range fns {
		fn := fn
		prop := func(a, b string) bool {
			a, b = clip(a), clip(b)
			v := fn(a, b)
			if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
				return false
			}
			// identity
			return math.Abs(fn(a, a)-1) < 1e-9
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s property failed: %v", name, err)
		}
	}
}

func TestPropertyNYSIISStable(t *testing.T) {
	prop := func(s string) bool {
		s = clip(s)
		code := NYSIIS(s)
		if len(code) > 6 {
			return false
		}
		return NYSIIS(s) == code // deterministic
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("NYSIIS property failed: %v", err)
	}
}
