package strutil

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, eps float64, name string) {
	t.Helper()
	if math.Abs(got-want) > eps {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, eps)
	}
}

func TestJaroKnownValues(t *testing.T) {
	// Classic textbook value pairs.
	almost(t, Jaro("MARTHA", "MARHTA"), 0.944444, 1e-4, "Jaro(MARTHA,MARHTA)")
	almost(t, Jaro("DIXON", "DICKSONX"), 0.766667, 1e-4, "Jaro(DIXON,DICKSONX)")
	almost(t, Jaro("JELLYFISH", "SMELLYFISH"), 0.896296, 1e-4, "Jaro(JELLYFISH,SMELLYFISH)")
}

func TestJaroEdgeCases(t *testing.T) {
	if Jaro("", "") != 1 {
		t.Errorf("Jaro of two empty strings should be 1")
	}
	if Jaro("abc", "") != 0 {
		t.Errorf("Jaro with one empty string should be 0")
	}
	if Jaro("a", "a") != 1 {
		t.Errorf("Jaro of identical single chars should be 1")
	}
	if Jaro("ab", "cd") != 0 {
		t.Errorf("Jaro of disjoint strings should be 0")
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	almost(t, JaroWinkler("MARTHA", "MARHTA"), 0.961111, 1e-4, "JW(MARTHA,MARHTA)")
	almost(t, JaroWinkler("DWAYNE", "DUANE"), 0.84, 1e-2, "JW(DWAYNE,DUANE)")
	if JaroWinkler("smith", "smith") != 1 {
		t.Errorf("JW of identical strings should be 1")
	}
}

func TestJaroWinklerBoostsPrefix(t *testing.T) {
	// Shared prefix should be rewarded over a same-Jaro pair without one.
	withPrefix := JaroWinkler("prefixed", "prefixes")
	plain := Jaro("prefixed", "prefixes")
	if withPrefix <= plain {
		t.Errorf("JaroWinkler (%v) should exceed Jaro (%v) when prefix shared", withPrefix, plain)
	}
}

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"a", "b", 1},
		{"gumbo", "gambol", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditSim(t *testing.T) {
	if EditSim("", "") != 1 {
		t.Errorf("EditSim of empties should be 1")
	}
	almost(t, EditSim("kitten", "sitting"), 1-3.0/7.0, 1e-9, "EditSim(kitten,sitting)")
	if EditSim("abc", "abc") != 1 {
		t.Errorf("EditSim of identical strings should be 1")
	}
	if EditSim("abc", "xyz") != 0 {
		t.Errorf("EditSim of fully different equal-length strings should be 0")
	}
}

func TestTokens(t *testing.T) {
	got := Tokens("The Quick-Brown  fox, 42!")
	want := []string{"the", "quick", "brown", "fox", "42"}
	if len(got) != len(want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Tokens[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if Tokens("") != nil && len(Tokens("")) != 0 {
		t.Errorf("Tokens of empty string should be empty")
	}
}

func TestQGrams(t *testing.T) {
	grams := QGrams("ab", 2)
	// padded: #ab$ -> #a, ab, b$
	want := []string{"#a", "ab", "b$"}
	if len(grams) != len(want) {
		t.Fatalf("QGrams = %v, want %v", grams, want)
	}
	for i := range want {
		if grams[i] != want[i] {
			t.Errorf("QGrams[%d] = %q want %q", i, grams[i], want[i])
		}
	}
	if QGrams("", 2) != nil {
		t.Errorf("QGrams of empty string should be nil")
	}
	if QGrams("abc", 0) != nil {
		t.Errorf("QGrams with q=0 should be nil")
	}
}

func TestJaccardTokens(t *testing.T) {
	if JaccardTokens("data matching", "data matching") != 1 {
		t.Errorf("identical strings should have Jaccard 1")
	}
	almost(t, JaccardTokens("a b c", "b c d"), 0.5, 1e-9, "Jaccard(a b c, b c d)")
	if JaccardTokens("", "") != 1 {
		t.Errorf("two empty strings should compare as 1")
	}
	if JaccardTokens("abc", "") != 0 {
		t.Errorf("one empty string should compare as 0")
	}
	// Duplicated tokens must not inflate the intersection.
	almost(t, JaccardTokens("a a b", "a b b"), 1, 1e-9, "duplicate tokens collapse")
}

func TestDice(t *testing.T) {
	if Dice("night", "night") != 1 {
		t.Errorf("identical strings should have Dice 1")
	}
	if Dice("", "") != 1 {
		t.Errorf("two empties should have Dice 1")
	}
	if Dice("abc", "") != 0 {
		t.Errorf("one empty should have Dice 0")
	}
	d := Dice("night", "nacht")
	if d <= 0 || d >= 1 {
		t.Errorf("Dice(night, nacht) should be strictly between 0 and 1, got %v", d)
	}
}

func TestMongeElkan(t *testing.T) {
	if SymMongeElkan("peter christen", "christen peter") < 0.99 {
		t.Errorf("token order should not matter much for Monge-Elkan")
	}
	if MongeElkan("", "") != 1 {
		t.Errorf("empties should be 1")
	}
	if MongeElkan("abc", "") != 0 {
		t.Errorf("one empty should be 0")
	}
	a := SymMongeElkan("jon smith", "john smyth")
	if a < 0.7 {
		t.Errorf("near-identical names should score high, got %v", a)
	}
}

func TestExact(t *testing.T) {
	if Exact("  Foo ", "foo") != 1 {
		t.Errorf("Exact should trim and fold case")
	}
	if Exact("foo", "bar") != 0 {
		t.Errorf("Exact of different strings should be 0")
	}
}

func TestNumericSim(t *testing.T) {
	almost(t, NumericSim(10, 10, 5), 1, 1e-9, "identical")
	almost(t, NumericSim(10, 15, 5), 0, 1e-9, "at max diff")
	almost(t, NumericSim(10, 12.5, 5), 0.5, 1e-9, "half way")
	if NumericSim(math.NaN(), 1, 5) != 0 {
		t.Errorf("NaN input should give 0")
	}
	if NumericSim(3, 3, 0) != 1 || NumericSim(3, 4, 0) != 0 {
		t.Errorf("zero maxDiff should degenerate to exact equality")
	}
}

func TestYearSim(t *testing.T) {
	almost(t, YearSim(1970, 1971, 2), 0.5, 1e-9, "one year apart, tol 2")
	almost(t, YearSim(1970, 1970, 2), 1, 1e-9, "same year")
	almost(t, YearSim(1970, 1980, 2), 0, 1e-9, "far years")
}

func TestSoundex(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"},
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"", ""},
		{"123", ""},
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	if got := LongestCommonSubstring("abcdef", "zcdemn"); got != 3 {
		t.Errorf("LCS(abcdef,zcdemn) = %d, want 3 (cde)", got)
	}
	if got := LongestCommonSubstring("", "abc"); got != 0 {
		t.Errorf("LCS with empty should be 0")
	}
	if got := LongestCommonSubstring("abc", "abc"); got != 3 {
		t.Errorf("LCS of identical = %d, want 3", got)
	}
}

func TestLCSSim(t *testing.T) {
	if LCSSim("", "") != 1 {
		t.Errorf("empties should be 1")
	}
	if LCSSim("abc", "") != 0 {
		t.Errorf("one empty should be 0")
	}
	almost(t, LCSSim("abxy", "ab"), 1, 1e-9, "substring contained")
}

// --- property-based tests -------------------------------------------------

// limit generated strings to something printable and short so quick
// exercises interesting cases rather than enormous random runes.
func clip(s string) string {
	if len(s) > 24 {
		s = s[:24]
	}
	return strings.ToValidUTF8(s, "")
}

func TestPropertySimilarityRangeAndSymmetry(t *testing.T) {
	type simFn struct {
		name string
		fn   func(a, b string) float64
		sym  bool
	}
	fns := []simFn{
		{"Jaro", Jaro, true},
		{"JaroWinkler", JaroWinkler, true},
		{"EditSim", EditSim, true},
		{"JaccardTokens", JaccardTokens, true},
		{"Dice", Dice, true},
		{"SymMongeElkan", SymMongeElkan, true},
		{"LCSSim", LCSSim, true},
	}
	for _, f := range fns {
		f := f
		prop := func(a, b string) bool {
			a, b = clip(a), clip(b)
			v := f.fn(a, b)
			if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
				return false
			}
			if f.sym {
				w := f.fn(b, a)
				if math.Abs(v-w) > 1e-9 {
					return false
				}
			}
			// identity: sim(a,a) == 1
			return math.Abs(f.fn(a, a)-1) < 1e-9
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s violates range/symmetry/identity: %v", f.name, err)
		}
	}
}

func TestPropertyLevenshteinMetric(t *testing.T) {
	prop := func(a, b, c string) bool {
		a, b, c = clip(a), clip(b), clip(c)
		dab := Levenshtein(a, b)
		dba := Levenshtein(b, a)
		if dab != dba {
			return false // symmetry
		}
		if a == b && dab != 0 {
			return false // identity
		}
		if a != b && dab == 0 {
			return false // distinguishability
		}
		dac := Levenshtein(a, c)
		dcb := Levenshtein(c, b)
		return dab <= dac+dcb // triangle inequality
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("Levenshtein is not a metric: %v", err)
	}
}

func TestPropertySoundexStable(t *testing.T) {
	prop := func(s string) bool {
		s = clip(s)
		code := Soundex(s)
		if code == "" {
			return true
		}
		// Codes are always length 4, letter followed by digits.
		if len(code) != 4 {
			return false
		}
		if code[0] < 'A' || code[0] > 'Z' {
			return false
		}
		for i := 1; i < 4; i++ {
			if code[i] < '0' || code[i] > '9' {
				return false
			}
		}
		// Deterministic.
		return Soundex(s) == code
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("Soundex property failed: %v", err)
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		JaroWinkler("christen", "kristensen")
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Levenshtein("entity resolution", "entity reconciliation")
	}
}

func BenchmarkJaccardTokens(b *testing.B) {
	for i := 0; i < b.N; i++ {
		JaccardTokens("deep learning for entity matching", "entity matching with deep learning models")
	}
}
