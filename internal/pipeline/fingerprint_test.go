package pipeline

import (
	"strings"
	"testing"

	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/dataset"
)

func TestGenerateKeyIdentity(t *testing.T) {
	d := MustDataset("DBLP-ACM")
	if generateKey(d, 0.5) != generateKey(d, 0.5) {
		t.Fatalf("equal inputs produced different generate keys")
	}
	distinct := map[string]string{
		"base":            generateKey(d, 0.5),
		"other scale":     generateKey(d, 0.25),
		"other key":       generateKey(Dataset{Key: "other", Seed: d.Seed}, 0.5),
		"other seed":      generateKey(Dataset{Key: d.Key, Seed: d.Seed + 1}, 0.5),
		"other dataset":   generateKey(MustDataset("MSD"), 0.5),
		"tiny scale diff": generateKey(d, 0.5000001),
	}
	seen := map[string]string{}
	for name, k := range distinct {
		if prev, dup := seen[k]; dup {
			t.Errorf("generate keys collide: %q and %q -> %q", name, prev, k)
		}
		seen[k] = name
	}
}

func TestBlockKeyNormalisesDefaults(t *testing.T) {
	gen := fingerprint("test|gen")
	zero := blocking.MinHashConfig{}
	spelled := zero.Normalized()
	if blockKey(gen, zero) != blockKey(gen, spelled) {
		t.Errorf("zero config and spelled-out defaults must share a block key")
	}
	tighter := blocking.MinHashConfig{Bands: 12}
	if blockKey(gen, zero) == blockKey(gen, tighter) {
		t.Errorf("different band counts must not share a block key")
	}
	otherGen := fingerprint("test|gen2")
	if blockKey(gen, zero) == blockKey(otherGen, zero) {
		t.Errorf("block key must chain the upstream generate fingerprint")
	}
}

func TestCompareKeyExcludesWorkers(t *testing.T) {
	sch := dataset.Schema{Attributes: []dataset.Attribute{
		{Name: "title", Type: dataset.AttrName},
		{Name: "year", Type: dataset.AttrYear},
	}}
	blockFP := fingerprint("test|block")
	a := compare.DefaultScheme(sch)
	b := compare.DefaultScheme(sch)
	b.Workers = 8
	if compareKey(blockFP, a) != compareKey(blockFP, b) {
		t.Errorf("worker count leaked into the compare fingerprint")
	}
	c := a.WithQuantize(0.01)
	if compareKey(blockFP, a) == compareKey(blockFP, c) {
		t.Errorf("quantisation step must change the compare fingerprint")
	}
	d := a.WithMissing(compare.MissingHalf)
	if compareKey(blockFP, a) == compareKey(blockFP, d) {
		t.Errorf("missing policy must change the compare fingerprint")
	}
	e := a.With(0, "title_exact", compare.ExactMatch())
	if compareKey(blockFP, a) == compareKey(blockFP, e) {
		t.Errorf("extra comparator must change the compare fingerprint")
	}
}

func TestBuildPairMatchesStoreArtifacts(t *testing.T) {
	// The memoized path must produce exactly what the un-memoized
	// stage composition produces.
	st := NewStore()
	cached := st.Domain(Request{Dataset: MustDataset("DBLP-ACM"), Scale: 0.02, Workers: 1})
	direct := BuildPair(MustDataset("DBLP-ACM").Generate(0.02), 1)
	if cached.Name != direct.Name {
		t.Fatalf("name mismatch: %q vs %q", cached.Name, direct.Name)
	}
	if len(cached.Pairs) != len(direct.Pairs) || len(cached.X) != len(direct.X) {
		t.Fatalf("artifact sizes differ: %d/%d pairs, %d/%d rows",
			len(cached.Pairs), len(direct.Pairs), len(cached.X), len(direct.X))
	}
	for i := range cached.X {
		if cached.Y[i] != direct.Y[i] {
			t.Fatalf("label %d differs", i)
		}
		for j := range cached.X[i] {
			if cached.X[i][j] != direct.X[i][j] {
				t.Fatalf("feature (%d,%d) differs: %v vs %v", i, j, cached.X[i][j], direct.X[i][j])
			}
		}
	}
}

func TestCatalogCoversBuiltins(t *testing.T) {
	cat := Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalog has %d datasets, want 8", len(cat))
	}
	for _, d := range cat {
		got := MustDataset(d.Key)
		if got.Seed != d.Seed {
			t.Errorf("%s: seed %d from lookup, %d from catalog", d.Key, got.Seed, d.Seed)
		}
	}
	if _, ok := DatasetByKey("no-such-dataset"); ok {
		t.Errorf("unknown key reported as present")
	}
	refs := PaperTaskRefs()
	if len(refs) != 8 {
		t.Fatalf("paper task refs = %d, want 8", len(refs))
	}
	if got := refs[0].Name(); got != "DBLP-ACM -> DBLP-Scholar" {
		t.Errorf("task name = %q", got)
	}
	if len(RepresentativeTaskRefs()) != 3 {
		t.Errorf("representative task refs = %d, want 3", len(RepresentativeTaskRefs()))
	}
}

func TestDataFingerprint(t *testing.T) {
	db := &dataset.Database{
		Name:   "a",
		Schema: dataset.Schema{Attributes: []dataset.Attribute{{Name: "n", Type: dataset.AttrName}}},
		Records: []dataset.Record{
			{ID: "r1", EntityID: "e1", Values: []string{"ann"}},
			{ID: "r2", EntityID: "e2", Values: []string{"bob"}},
		},
	}
	base := DataFingerprint(db)
	if base.Hex() == "" || len(base.Hex()) != 64 {
		t.Fatalf("Hex() = %q, want 64 hex chars", base.Hex())
	}

	// The display name must not matter.
	renamed := *db
	renamed.Name = "other"
	if DataFingerprint(&renamed) != base {
		t.Errorf("renaming the database changed the fingerprint")
	}

	// Any content change must.
	changedVal := *db
	changedVal.Records = append([]dataset.Record(nil), db.Records...)
	changedVal.Records[1] = dataset.Record{ID: "r2", EntityID: "e2", Values: []string{"rob"}}
	if DataFingerprint(&changedVal) == base {
		t.Errorf("changing a value did not change the fingerprint")
	}
	changedEnt := *db
	changedEnt.Records = append([]dataset.Record(nil), db.Records...)
	changedEnt.Records[1] = dataset.Record{ID: "r2", EntityID: "e9", Values: []string{"bob"}}
	if DataFingerprint(&changedEnt) == base {
		t.Errorf("changing an entity id did not change the fingerprint")
	}
	changedSchema := *db
	changedSchema.Schema = dataset.Schema{Attributes: []dataset.Attribute{{Name: "n", Type: dataset.AttrText}}}
	if DataFingerprint(&changedSchema) == base {
		t.Errorf("changing an attribute type did not change the fingerprint")
	}
}

func TestSchemeSignature(t *testing.T) {
	sch := dataset.Schema{Attributes: []dataset.Attribute{
		{Name: "n", Type: dataset.AttrName},
		{Name: "y", Type: dataset.AttrYear},
	}}
	s := compare.DefaultScheme(sch)
	sig := SchemeSignature(s)
	for _, want := range []string{"n_jw", "y_yr", "quantize=0.05"} {
		if !strings.Contains(sig, want) {
			t.Errorf("signature %q lacks %q", sig, want)
		}
	}
	// Workers must not affect the signature; quantize must.
	w := s
	w.Workers = 17
	if SchemeSignature(w) != sig {
		t.Errorf("Workers changed the scheme signature")
	}
	q := s
	q.Quantize = 0.01
	if SchemeSignature(q) == sig {
		t.Errorf("Quantize did not change the scheme signature")
	}
}
