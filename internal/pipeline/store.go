package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"

	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/datagen"
	"transer/internal/dataset"
	"transer/internal/obs"
)

// Stats is a point-in-time snapshot of store activity. Hits counts
// artifact requests served from a completed or in-flight build; Misses
// counts builds actually performed; Bytes approximates the resident
// size of all memoized artifacts.
type Stats struct {
	Hits, Misses int64
	Bytes        int64
}

// Store memoizes pipeline stage outputs under their fingerprints. A
// single store may be shared by any number of concurrent workloads:
// requests for the same artifact are single-flighted, so each distinct
// (dataset, scale, blocking, scheme, seed) combination is generated,
// blocked, compared and labelled exactly once per store, no matter how
// many experiment cells ask for it at the same time.
//
// Artifacts returned from the store are shared and must be treated as
// read-only by every consumer — the same guarantee the experiment grid
// already relies on when fanning one built task out over many method
// cells.
type Store struct {
	mu      sync.Mutex
	entries map[Fingerprint]*entry

	hits, misses, bytes atomic.Int64

	// Observability (nil when uninstrumented): stage builds become
	// children of obsSpan, and the hit/miss/byte counters are mirrored
	// into the registry so run reports carry them.
	obsSpan     *obs.Span
	hitC, missC *obs.Counter
	bytesG      *obs.Gauge
}

// entry is one memoized artifact. done is closed once val (or pan) is
// final; waiters block on it rather than rebuilding.
type entry struct {
	done chan struct{}
	val  any
	pan  any // non-nil when the build panicked; re-raised to waiters
}

// NewStore returns an empty artifact store.
func NewStore() *Store {
	return &Store{entries: map[Fingerprint]*entry{}}
}

// Stats snapshots the hit/miss/byte counters.
func (s *Store) Stats() Stats {
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load(), Bytes: s.bytes.Load()}
}

// Instrument attaches the store to a tracer: every stage build becomes
// a span under a "pipeline" group span, and the hit/miss/byte counters
// are folded into the tracer's metrics registry
// (pipeline.store.hits_total, pipeline.store.misses_total,
// pipeline.store.bytes). Call before the first Domain request; a nil
// tracer leaves the store uninstrumented.
func (s *Store) Instrument(t *obs.Tracer) {
	if t == nil {
		return
	}
	s.obsSpan = t.Root().Child("pipeline")
	reg := t.Metrics()
	s.hitC = reg.Counter("pipeline.store.hits_total")
	s.missC = reg.Counter("pipeline.store.misses_total")
	s.bytesG = reg.Gauge("pipeline.store.bytes")
}

// stageSpan opens one stage-build span (nil when uninstrumented).
func (s *Store) stageSpan(stage, key string, scale float64) *obs.Span {
	return s.obsSpan.Child(fmt.Sprintf("%s:%s@%.2f", stage, key, scale))
}

// get returns the artifact under fp, building it with build on the
// first request (single-flight: concurrent requesters wait for the
// builder instead of duplicating work). size reports the approximate
// resident bytes of a freshly built artifact.
func (s *Store) get(fp Fingerprint, build func() (val any, size int64)) any {
	s.mu.Lock()
	if e, ok := s.entries[fp]; ok {
		s.mu.Unlock()
		<-e.done
		if e.pan != nil {
			panic(e.pan)
		}
		s.hits.Add(1)
		s.hitC.Add(1)
		return e.val
	}
	e := &entry{done: make(chan struct{})}
	s.entries[fp] = e
	s.mu.Unlock()

	s.misses.Add(1)
	s.missC.Add(1)
	defer close(e.done)
	defer func() {
		// A panicking build (e.g. a worker panic re-raised by the
		// parallel package) must not leave waiters blocked forever:
		// record the value for them, then let it propagate here.
		if r := recover(); r != nil {
			e.pan = r
			panic(r)
		}
	}()
	val, size := build()
	e.val = val
	s.bytesG.Set(float64(s.bytes.Add(size)))
	return val
}

// Request identifies one memoized domain build.
type Request struct {
	// Dataset is the generator identity (see Catalog / DatasetByKey).
	Dataset Dataset
	// Scale multiplies the generated data set sizes.
	Scale float64
	// Blocking overrides the dataset's recommended blocking
	// configuration; nil uses the recommendation.
	Blocking *blocking.MinHashConfig
	// Scheme derives the comparison scheme from the generated schema;
	// nil uses compare.DefaultScheme. Schemes are fingerprinted by
	// their comparator (attr, name) signature plus the missing-value
	// and quantisation settings, so custom comparators must carry
	// distinct names to be distinguished.
	Scheme func(dataset.Schema) compare.Scheme
	// Workers bounds build parallelism. It is deliberately not part of
	// any fingerprint: every stage output is byte-identical for every
	// worker count.
	Workers int
}

// Domain builds (or fetches) the fully staged domain artifact for the
// request: generate → block → compare → label, each stage memoized
// under its chained fingerprint.
func (s *Store) Domain(req Request) *Domain {
	genFP := fingerprint(generateKey(req.Dataset, req.Scale))
	pair := s.get(genFP, func() (any, int64) {
		sp := s.stageSpan("generate", req.Dataset.Key, req.Scale)
		defer sp.End()
		p := req.Dataset.Generate(req.Scale)
		sp.SetInt("records_a", int64(p.A.NumRecords()))
		sp.SetInt("records_b", int64(p.B.NumRecords()))
		return p, pairBytes(p)
	}).(datagen.DomainPair)

	cfg := pair.Blocking
	if req.Blocking != nil {
		cfg = *req.Blocking
	}
	blockFP := fingerprint(blockKey(genFP, cfg))
	pairs := s.get(blockFP, func() (any, int64) {
		sp := s.stageSpan("block", req.Dataset.Key, req.Scale)
		defer sp.End()
		ps := Block(pair.A, pair.B, cfg)
		sp.SetInt("candidate_pairs", int64(len(ps)))
		return ps, int64(len(ps)) * 16
	}).([]dataset.Pair)

	scheme := compare.DefaultScheme(pair.A.Schema)
	if req.Scheme != nil {
		scheme = req.Scheme(pair.A.Schema)
	}
	scheme.Workers = req.Workers
	compFP := fingerprint(compareKey(blockFP, scheme))
	x := s.get(compFP, func() (any, int64) {
		sp := s.stageSpan("compare", req.Dataset.Key, req.Scale)
		defer sp.End()
		m := Compare(pair.A, pair.B, pairs, scheme)
		sp.SetInt("rows", int64(len(m)))
		sp.SetInt("features", int64(scheme.NumFeatures()))
		return m, matrixBytes(m)
	}).([][]float64)

	labelFP := fingerprint(labelKey(blockFP))
	y := s.get(labelFP, func() (any, int64) {
		sp := s.stageSpan("label", req.Dataset.Key, req.Scale)
		defer sp.End()
		ls := Label(pairs, pair.Truth())
		matches := 0
		for _, l := range ls {
			if l == 1 {
				matches++
			}
		}
		sp.SetInt("labels", int64(len(ls)))
		sp.SetInt("matches", int64(matches))
		return ls, int64(len(ls)) * 8
	}).([]int)

	return &Domain{
		Name:   pair.Name,
		A:      pair.A,
		B:      pair.B,
		Pairs:  pairs,
		X:      x,
		Y:      y,
		Scheme: scheme,
	}
}

// pairBytes approximates the resident size of a generated domain pair.
func pairBytes(p datagen.DomainPair) int64 {
	var n int64
	for _, db := range []*dataset.Database{p.A, p.B} {
		if db == nil {
			continue
		}
		for _, r := range db.Records {
			n += 16 // record header
			for _, v := range r.Values {
				n += int64(len(v)) + 16
			}
		}
	}
	return n
}

// matrixBytes approximates the resident size of a feature matrix.
func matrixBytes(x [][]float64) int64 {
	var n int64
	for _, row := range x {
		n += int64(len(row))*8 + 24
	}
	return n
}
