package pipeline

import (
	"sync"
	"sync/atomic"
	"testing"

	"transer/internal/blocking"
	"transer/internal/datagen"
)

// testDataset returns a small real generator wrapped so builds can be
// counted.
func testDataset(builds *atomic.Int64) Dataset {
	return Dataset{
		Key:  "DBLP-ACM",
		Seed: 101,
		Make: func(scale float64) datagen.DomainPair {
			builds.Add(1)
			return datagen.DBLPACM(scale)
		},
	}
}

func TestStoreMemoizesAcrossRequests(t *testing.T) {
	var builds atomic.Int64
	st := NewStore()
	req := Request{Dataset: testDataset(&builds), Scale: 0.02, Workers: 1}

	first := st.Domain(req)
	if got := st.Stats(); got.Misses != 4 || got.Hits != 0 {
		t.Fatalf("cold build: stats = %+v, want 4 misses, 0 hits", got)
	}
	second := st.Domain(req)
	if builds.Load() != 1 {
		t.Fatalf("generator ran %d times, want 1", builds.Load())
	}
	if got := st.Stats(); got.Misses != 4 || got.Hits != 4 {
		t.Fatalf("warm build: stats = %+v, want 4 misses, 4 hits", got)
	}
	if b := st.Stats().Bytes; b <= 0 {
		t.Fatalf("memoized bytes = %d, want > 0", b)
	}
	// Shared artifacts, not copies.
	if &first.X[0][0] != &second.X[0][0] {
		t.Errorf("warm request returned a rebuilt matrix, want the memoized one")
	}
	if first.Name != second.Name || len(first.Pairs) != len(second.Pairs) {
		t.Errorf("cold and warm artifacts differ")
	}
}

func TestStoreMissesOnAnyDifferingInput(t *testing.T) {
	var builds atomic.Int64
	base := Request{Dataset: testDataset(&builds), Scale: 0.02, Workers: 1}
	blk := blocking.MinHashConfig{NumHashes: 60, Bands: 12}

	cases := []struct {
		name string
		mod  func(Request) Request
		// wantNewMisses is how many stage artifacts the modified
		// request must rebuild (downstream stages of the first
		// differing input).
		wantNewMisses int64
	}{
		{"different scale", func(r Request) Request { r.Scale = 0.03; return r }, 4},
		{"different dataset", func(r Request) Request { r.Dataset = MustDataset("MSD"); return r }, 4},
		{"different blocking", func(r Request) Request { r.Blocking = &blk; return r }, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := NewStore()
			st.Domain(base)
			before := st.Stats().Misses
			st.Domain(tc.mod(base))
			if got := st.Stats().Misses - before; got != tc.wantNewMisses {
				t.Errorf("misses after modified request = %d, want %d", got, tc.wantNewMisses)
			}
		})
	}
}

func TestStoreWorkerCountDoesNotFingerprint(t *testing.T) {
	var builds atomic.Int64
	st := NewStore()
	req := Request{Dataset: testDataset(&builds), Scale: 0.02, Workers: 1}
	st.Domain(req)
	req.Workers = 8
	st.Domain(req)
	if got := st.Stats(); got.Misses != 4 {
		t.Errorf("worker count changed the fingerprint: %d misses, want 4", got.Misses)
	}
}

// TestStoreSingleFlight hammers one store with concurrent requests for
// the same domain; the single-flight path must run the generator
// exactly once and give every caller the same artifact. Run under
// -race this also checks the entry synchronisation.
func TestStoreSingleFlight(t *testing.T) {
	var builds atomic.Int64
	st := NewStore()
	req := Request{Dataset: testDataset(&builds), Scale: 0.02, Workers: 1}

	const callers = 16
	out := make([]*Domain, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = st.Domain(req)
		}(i)
	}
	wg.Wait()

	if builds.Load() != 1 {
		t.Fatalf("generator ran %d times under concurrency, want 1", builds.Load())
	}
	if got := st.Stats(); got.Misses != 4 {
		t.Fatalf("stats = %+v, want exactly 4 misses", got)
	}
	for i := 1; i < callers; i++ {
		if &out[i].X[0][0] != &out[0].X[0][0] {
			t.Fatalf("caller %d received a different matrix artifact", i)
		}
	}
}

func TestStorePanicPropagatesToWaiters(t *testing.T) {
	st := NewStore()
	fp := fingerprint("test|panic")
	catch := func() (r any) {
		defer func() { r = recover() }()
		st.get(fp, func() (any, int64) { panic("boom") })
		return nil
	}
	if r := catch(); r != "boom" {
		t.Fatalf("builder panic = %v, want boom", r)
	}
	// A later requester must see the recorded panic, not hang.
	if r := catch(); r != "boom" {
		t.Fatalf("waiter panic = %v, want boom", r)
	}
}
