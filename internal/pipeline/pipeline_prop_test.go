package pipeline_test

// Property suite for the domain construction pipeline, driven by
// internal/testkit's database-pair generator. The pipeline's contract
// is bitwise determinism for fixed inputs (the premise of the memoized
// store), so rebuild comparisons use reflect.DeepEqual with no
// tolerances.

import (
	"reflect"
	"testing"

	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/dataset"
	"transer/internal/pipeline"
	"transer/internal/testkit"
)

// TestBuildDeterministicAcrossWorkers: building the same databases
// twice, and under different comparison worker counts, yields
// identical domains — pairs, features and labels all bitwise equal.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	testkit.Run(t, "pipeline/build-determinism", 8, func(pt *testkit.T) {
		a, b := testkit.DatabasePair(pt.Rng, pt.Size*3+6)
		one := pipeline.Build(a, b, pipeline.BuildSpec{Name: "p", Workers: 1})
		for _, workers := range []int{1, 2, 4} {
			again := pipeline.Build(a, b, pipeline.BuildSpec{Name: "p", Workers: workers})
			if !reflect.DeepEqual(one.Pairs, again.Pairs) ||
				!reflect.DeepEqual(one.X, again.X) ||
				!reflect.DeepEqual(one.Y, again.Y) {
				pt.Errorf("rebuild with %d workers produced a different domain", workers)
				return
			}
		}
	})
}

// TestBuildShapeAndFeatureBounds: one feature row per candidate pair,
// one label per pair when ground truth exists, every feature in the
// normalised [0, 1] space of the comparison functions, and every pair
// index in range.
func TestBuildShapeAndFeatureBounds(t *testing.T) {
	testkit.Run(t, "pipeline/build-shape", 8, func(pt *testkit.T) {
		a, b := testkit.DatabasePair(pt.Rng, pt.Size*3+6)
		d := pipeline.Build(a, b, pipeline.BuildSpec{Name: "p"})
		if len(d.X) != len(d.Pairs) {
			pt.Fatalf("%d feature rows for %d pairs", len(d.X), len(d.Pairs))
		}
		if len(d.Y) != 0 && len(d.Y) != len(d.Pairs) {
			pt.Fatalf("%d labels for %d pairs", len(d.Y), len(d.Pairs))
		}
		m := d.NumFeatures()
		for i, row := range d.X {
			if len(row) != m {
				pt.Fatalf("row %d has %d features, scheme has %d", i, len(row), m)
			}
			for j, v := range row {
				if v < 0 || v > 1 {
					pt.Fatalf("feature (%d,%d) = %v outside [0,1]", i, j, v)
				}
			}
		}
		for i, p := range d.Pairs {
			if p.A < 0 || p.A >= a.NumRecords() || p.B < 0 || p.B >= b.NumRecords() {
				pt.Fatalf("pair %d = %+v out of range (%d × %d records)",
					i, p, a.NumRecords(), b.NumRecords())
			}
		}
	})
}

// TestLabelsMatchEntityIDs: a pair is labelled 1 exactly when the two
// records carry the same non-empty entity id — the labelling stage
// must agree with a direct recomputation from the records.
func TestLabelsMatchEntityIDs(t *testing.T) {
	testkit.Run(t, "pipeline/label-consistency", 8, func(pt *testkit.T) {
		a, b := testkit.DatabasePair(pt.Rng, pt.Size*3+6)
		d := pipeline.Build(a, b, pipeline.BuildSpec{Name: "p"})
		if len(d.Y) == 0 {
			return // no true matches survived blocking-free truth derivation
		}
		for i, p := range d.Pairs {
			ra, rb := a.Records[p.A], b.Records[p.B]
			want := 0
			if ra.EntityID != "" && ra.EntityID == rb.EntityID {
				want = 1
			}
			if d.Y[i] != want {
				pt.Errorf("pair %d (%s, %s): label %d, entity ids say %d",
					i, ra.ID, rb.ID, d.Y[i], want)
				return
			}
		}
	})
}

// TestComparePairPermutationEquivariance: the comparison stage maps
// each pair to its feature row independently, so permuting the
// candidate pairs permutes the matrix rows — and the labelling stage
// commutes with the same permutation.
func TestComparePairPermutationEquivariance(t *testing.T) {
	testkit.Run(t, "pipeline/compare-permutation", 8, func(pt *testkit.T) {
		a, b := testkit.DatabasePair(pt.Rng, pt.Size*3+6)
		pairs := pipeline.Block(a, b, blocking.MinHashConfig{})
		if len(pairs) < 2 {
			return
		}
		scheme := compare.DefaultScheme(a.Schema)
		base := pipeline.Compare(a, b, pairs, scheme)
		p := testkit.Perm(pt.Rng, len(pairs))
		permPairs := testkit.Permute(p, pairs)
		perm := pipeline.Compare(a, b, permPairs, scheme)
		for i := range perm {
			if !testkit.EqualFloats(perm[i], base[p[i]]) {
				pt.Errorf("feature row %d does not track its pair under permutation", i)
				return
			}
		}
		truth := dataset.GroundTruth(a, b)
		if !testkit.EqualInts(pipeline.Label(permPairs, truth),
			testkit.Permute(p, pipeline.Label(pairs, truth))) {
			pt.Errorf("labelling does not commute with pair permutation")
		}
	})
}
