package pipeline

import (
	"transer/internal/datagen"
)

// Dataset is a cacheable dataset identity: a stable key, the generator
// seed baked into the dataset's spec, and the pure generator function.
// (Key, Seed, scale) fully determine the generated databases, which is
// what lets the store fingerprint generation.
type Dataset struct {
	Key  string
	Seed int64
	Make func(scale float64) datagen.DomainPair
}

// Generate runs the generation stage: a pure function of (Dataset,
// scale).
func (d Dataset) Generate(scale float64) datagen.DomainPair {
	return d.Make(scale)
}

// Catalog returns the built-in dataset stand-ins in Table 1 order.
func Catalog() []Dataset {
	builtins := datagen.Builtins()
	out := make([]Dataset, len(builtins))
	for i, b := range builtins {
		out[i] = Dataset{Key: b.Key, Seed: b.Seed, Make: b.Make}
	}
	return out
}

// DatasetByKey looks a built-in dataset up by its key.
func DatasetByKey(key string) (Dataset, bool) {
	b, ok := datagen.BuiltinByKey(key)
	if !ok {
		return Dataset{}, false
	}
	return Dataset{Key: b.Key, Seed: b.Seed, Make: b.Make}, true
}

// MustDataset is DatasetByKey for keys that are compile-time constants
// in the experiment harness; unknown keys are programmer errors.
func MustDataset(key string) Dataset {
	d, ok := DatasetByKey(key)
	if !ok {
		panic("pipeline: unknown built-in dataset " + key)
	}
	return d
}

// TaskRef identifies one source→target transfer task by dataset keys.
type TaskRef struct {
	Source, Target string
}

// Name formats the task the way experiment tables caption it.
func (t TaskRef) Name() string { return t.Source + " -> " + t.Target }

// PaperTaskRefs returns the eight source→target tasks of the paper's
// Table 2 as dataset key pairs.
func PaperTaskRefs() []TaskRef {
	return refsOf(datagen.PaperTaskKeys())
}

// RepresentativeTaskRefs returns the three tasks used for the
// sensitivity and ablation experiments (paper Sections 5.2.3-5.4).
func RepresentativeTaskRefs() []TaskRef {
	return refsOf(datagen.RepresentativeTaskKeys())
}

func refsOf(keys [][2]string) []TaskRef {
	out := make([]TaskRef, len(keys))
	for i, k := range keys {
		out[i] = TaskRef{Source: k[0], Target: k[1]}
	}
	return out
}
