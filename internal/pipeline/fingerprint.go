package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"transer/internal/blocking"
	"transer/internal/compare"
)

// Fingerprint is the deterministic cache key of one stage artifact:
// the SHA-256 of a canonical description of the stage and every input
// that can change its output. Stage fingerprints chain — the block key
// hashes the generate fingerprint, the compare and label keys hash the
// block fingerprint — so any differing upstream input propagates to
// every downstream key.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as short hex for diagnostics.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:8]) }

func fingerprint(key string) Fingerprint { return sha256.Sum256([]byte(key)) }

// generateKey identifies a generated domain pair: dataset identity
// (key + generator seed) and scale.
func generateKey(d Dataset, scale float64) string {
	return fmt.Sprintf("generate|dataset=%s|seed=%d|scale=%g", d.Key, d.Seed, scale)
}

// blockKey identifies a candidate pair set: the generated data it was
// blocked from plus the normalised blocking configuration (so the zero
// config and an explicitly spelled-out default hit the same entry).
func blockKey(gen Fingerprint, cfg blocking.MinHashConfig) string {
	c := cfg.Normalized()
	return fmt.Sprintf("block|%x|hashes=%d|bands=%d|q=%d|attrs=%v|seed=%d|maxbucket=%d",
		gen[:], c.NumHashes, c.Bands, c.Q, c.Attrs, c.Seed, c.MaxBucketSize)
}

// compareKey identifies a feature matrix: the candidate pairs it was
// computed over plus the comparison scheme signature. Scheme.Workers
// is deliberately excluded — the matrix is byte-identical for every
// worker count (the parallel package's determinism guarantee), so a
// hit computed at one worker count is exactly the artifact any other
// count would rebuild.
func compareKey(block Fingerprint, s compare.Scheme) string {
	var sig strings.Builder
	for _, c := range s.Comparators {
		fmt.Fprintf(&sig, "(%d:%s)", c.Attr, c.Name)
	}
	return fmt.Sprintf("compare|%x|comparators=%s|missing=%d|quantize=%g",
		block[:], sig.String(), s.Missing, s.Quantize)
}

// labelKey identifies a pair label vector: labels are a pure function
// of the blocked pairs and the generated data's ground truth, both of
// which the block fingerprint already pins.
func labelKey(block Fingerprint) string {
	return fmt.Sprintf("label|%x", block[:])
}
