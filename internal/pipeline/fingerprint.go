package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/dataset"
)

// Fingerprint is the deterministic cache key of one stage artifact:
// the SHA-256 of a canonical description of the stage and every input
// that can change its output. Stage fingerprints chain — the block key
// hashes the generate fingerprint, the compare and label keys hash the
// block fingerprint — so any differing upstream input propagates to
// every downstream key.
//
// TransER's SEL engine choice (core.Config.SELMode) is deliberately
// absent from every domain-stage key: the selector consumes feature
// matrices downstream of these artifacts and cannot change them, so
// runs under different SEL modes share one cached domain build. Where
// the mode CAN change an output — a trained model artifact under
// approximate selection — it is incorporated there instead, in
// model.TrainingSpec.SELMode.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as short hex for diagnostics.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:8]) }

func fingerprint(key string) Fingerprint { return sha256.Sum256([]byte(key)) }

// generateKey identifies a generated domain pair: dataset identity
// (key + generator seed) and scale.
func generateKey(d Dataset, scale float64) string {
	return fmt.Sprintf("generate|dataset=%s|seed=%d|scale=%g", d.Key, d.Seed, scale)
}

// blockKey identifies a candidate pair set: the generated data it was
// blocked from plus the normalised blocking configuration (so the zero
// config and an explicitly spelled-out default hit the same entry).
func blockKey(gen Fingerprint, cfg blocking.MinHashConfig) string {
	c := cfg.Normalized()
	return fmt.Sprintf("block|%x|hashes=%d|bands=%d|q=%d|attrs=%v|seed=%d|maxbucket=%d",
		gen[:], c.NumHashes, c.Bands, c.Q, c.Attrs, c.Seed, c.MaxBucketSize)
}

// SchemeSignature is the canonical description of a comparison scheme:
// the (attribute index, comparator name) list plus the missing-value
// policy and quantisation step. Scheme.Workers is deliberately
// excluded — the matrix is byte-identical for every worker count (the
// parallel package's determinism guarantee). It doubles as the
// compatibility check of model artifacts (internal/model): a model may
// only score vectors produced by a scheme with the same signature.
func SchemeSignature(s compare.Scheme) string {
	var sig strings.Builder
	for _, c := range s.Comparators {
		fmt.Fprintf(&sig, "(%d:%s)", c.Attr, c.Name)
	}
	return fmt.Sprintf("comparators=%s|missing=%d|quantize=%g",
		sig.String(), s.Missing, s.Quantize)
}

// compareKey identifies a feature matrix: the candidate pairs it was
// computed over plus the comparison scheme signature.
func compareKey(block Fingerprint, s compare.Scheme) string {
	return fmt.Sprintf("compare|%x|%s", block[:], SchemeSignature(s))
}

// DataFingerprint hashes a database's full content — schema attribute
// names and types, then every record's id, entity id and values — into
// the provenance fingerprint model artifacts carry. The display Name
// is excluded so renaming a CSV does not change the fingerprint.
func DataFingerprint(db *dataset.Database) Fingerprint {
	h := sha256.New()
	fmt.Fprintf(h, "data|attrs=")
	for _, a := range db.Schema.Attributes {
		fmt.Fprintf(h, "(%s:%s)", a.Name, a.Type)
	}
	for _, r := range db.Records {
		fmt.Fprintf(h, "|%s|%s|%q", r.ID, r.EntityID, r.Values)
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// Hex renders the full fingerprint as hex (String keeps the short
// diagnostic form).
func (f Fingerprint) Hex() string { return hex.EncodeToString(f[:]) }

// labelKey identifies a pair label vector: labels are a pure function
// of the blocked pairs and the generated data's ground truth, both of
// which the block fingerprint already pins.
func labelKey(block Fingerprint) string {
	return fmt.Sprintf("label|%x", block[:])
}
