// Package pipeline is the single owner of "how a Domain gets built".
// It decomposes domain construction into the paper's Figure 3 stages —
// generate → block → compare → label — where each stage is a pure
// function of its typed inputs, and provides a memoized artifact store
// (Store) that caches stage outputs under deterministic fingerprints
// so that every workload sharing a store builds each distinct artifact
// exactly once.
//
// The public API (transer.NewDomain and friends) composes the stage
// functions directly; the experiment harness and cmd/experiments go
// through a Store so the same domain is never generated, blocked or
// compared twice within a run. Because every stage is deterministic
// for fixed inputs (see the determinism guarantee in the parallel
// package), a cache hit returns bitwise the same artifact a rebuild
// would produce: rendered experiment output is byte-identical cold vs.
// warm, for any worker count, and for any cache-hit order.
package pipeline

import (
	"context"

	"transer/internal/blocking"
	"transer/internal/compare"
	"transer/internal/datagen"
	"transer/internal/dataset"
	"transer/internal/query"
)

// Domain is the fully built artifact of the construction pipeline: two
// databases, their blocked candidate pairs, the comparison feature
// matrix, and the ground-truth pair labels. Store-returned Domains are
// shared across callers and must be treated as read-only.
type Domain struct {
	Name   string
	A, B   *dataset.Database
	Pairs  []dataset.Pair
	X      [][]float64
	Y      []int
	Scheme compare.Scheme
}

// NumFeatures returns the feature space dimensionality m.
func (d *Domain) NumFeatures() int { return d.Scheme.NumFeatures() }

// Stage functions -----------------------------------------------------------
//
// Each stage is a pure function: equal inputs produce equal (bitwise
// identical) outputs regardless of worker count or scheduling, which
// is what makes memoizing them sound.

// Block reduces the quadratic pair space of two databases to the
// candidate pair set (the blocking stage). It runs on the query
// engine's single blocking entry point with a forced LSH operator —
// the same blocking.CandidatePairs computation as always, so
// fingerprinted artifacts are byte-identical across the rebase.
func Block(a, b *dataset.Database, cfg blocking.MinHashConfig) []dataset.Pair {
	return query.Candidates(a, b, query.BlockSpec{Strategy: query.StrategyLSH, LSH: cfg})
}

// Compare computes the n×m feature matrix over the candidate pairs
// (the comparison stage) on the query engine's vectorized compare
// operator. scheme.Workers bounds the goroutines used; rows are
// written to index-addressed slots in fixed row blocks, so the matrix
// is identical for every worker count.
func Compare(a, b *dataset.Database, pairs []dataset.Pair, scheme compare.Scheme) [][]float64 {
	// The background context never cancels, so the error is always nil.
	x, _ := query.CompareMatrix(context.Background(), a, b, scheme, pairs)
	return x
}

// Label derives pair labels from a ground-truth match set (the
// labelling stage).
func Label(pairs []dataset.Pair, truth dataset.PairSet) []int {
	return dataset.LabelPairs(pairs, truth)
}

// BuildSpec parameterises un-memoized domain construction.
type BuildSpec struct {
	// Name is the domain's display name.
	Name string
	// Blocking is the MinHash-LSH configuration (zero value = package
	// defaults).
	Blocking blocking.MinHashConfig
	// Scheme overrides the comparison scheme; nil derives
	// compare.DefaultScheme from A's schema.
	Scheme *compare.Scheme
	// Workers bounds comparison goroutines; 0 means one per CPU.
	Workers int
	// NoLabels suppresses the labelling stage even when ground truth
	// is available.
	NoLabels bool
}

// Build composes the block → compare → label stages over two databases
// without memoization — the path for arbitrary caller-supplied data,
// where no stable dataset identity exists to fingerprint. Labels are
// only attached when ground truth is present.
func Build(a, b *dataset.Database, spec BuildSpec) *Domain {
	scheme := compare.DefaultScheme(a.Schema)
	if spec.Scheme != nil {
		scheme = *spec.Scheme
	}
	if spec.Workers != 0 {
		scheme.Workers = spec.Workers
	}
	pairs := Block(a, b, spec.Blocking)
	d := &Domain{
		Name:   spec.Name,
		A:      a,
		B:      b,
		Pairs:  pairs,
		X:      Compare(a, b, pairs, scheme),
		Scheme: scheme,
	}
	if !spec.NoLabels {
		if truth := dataset.GroundTruth(a, b); len(truth) > 0 {
			d.Y = Label(pairs, truth)
		}
	}
	return d
}

// BuildPair builds a generated domain pair with its recommended
// blocking configuration and the default comparison scheme, labelling
// from the pair's ground truth — the un-memoized equivalent of
// Store.Domain for a DomainPair that is already in hand.
func BuildPair(p datagen.DomainPair, workers int) *Domain {
	return Build(p.A, p.B, BuildSpec{
		Name:     p.Name,
		Blocking: p.Blocking,
		Workers:  workers,
	})
}
