// Package sampling provides seeded, deterministic sampling utilities
// for the TransER pipeline: class re-balancing by under-sampling (the
// GetBalancedData step of Algorithm 1), label-fraction subsetting for
// the Figure 6 experiment, and stratified splits for tests.
package sampling

import "math/rand"

// UnderSample keeps all minority-class (match) rows and down-samples
// the majority class (non-match) so that the non-match : match ratio
// is at most ratio (the paper's b, default 3 for a 1:3 balance). If
// the data is already at least that balanced, it is returned
// unchanged. Row order within each class is preserved; the selection
// of retained majority rows is driven by seed.
func UnderSample(x [][]float64, y []int, ratio float64, seed int64) ([][]float64, []int) {
	if ratio <= 0 {
		return x, y
	}
	var matchIdx, nonIdx []int
	for i, l := range y {
		if l == 1 {
			matchIdx = append(matchIdx, i)
		} else {
			nonIdx = append(nonIdx, i)
		}
	}
	maxNon := int(float64(len(matchIdx)) * ratio)
	if len(nonIdx) <= maxNon || len(matchIdx) == 0 {
		return x, y
	}
	rng := rand.New(rand.NewSource(seed))
	keep := rng.Perm(len(nonIdx))[:maxNon]
	keepSet := make(map[int]bool, maxNon)
	for _, k := range keep {
		keepSet[nonIdx[k]] = true
	}
	outX := make([][]float64, 0, len(matchIdx)+maxNon)
	outY := make([]int, 0, len(matchIdx)+maxNon)
	for i, l := range y {
		if l == 1 || keepSet[i] {
			outX = append(outX, x[i])
			outY = append(outY, l)
		}
	}
	return outX, outY
}

// Fraction returns a random subset containing the given fraction of
// rows (at least 1 when frac > 0 and the input is non-empty),
// preserving original order. It models partially labelled source
// domains (paper Section 5.2.3).
func Fraction(x [][]float64, y []int, frac float64, seed int64) ([][]float64, []int) {
	if frac >= 1 {
		return x, y
	}
	if frac <= 0 || len(x) == 0 {
		return nil, nil
	}
	n := int(float64(len(x)) * frac)
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	keep := rng.Perm(len(x))[:n]
	keepSet := make(map[int]bool, n)
	for _, k := range keep {
		keepSet[k] = true
	}
	outX := make([][]float64, 0, n)
	outY := make([]int, 0, n)
	for i := range x {
		if keepSet[i] {
			outX = append(outX, x[i])
			outY = append(outY, y[i])
		}
	}
	return outX, outY
}

// StratifiedFraction is Fraction applied per class, guaranteeing both
// classes survive subsetting whenever both are present (each class
// keeps at least one row).
func StratifiedFraction(x [][]float64, y []int, frac float64, seed int64) ([][]float64, []int) {
	if frac >= 1 {
		return x, y
	}
	if frac <= 0 || len(x) == 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(seed))
	keepSet := make(map[int]bool)
	for _, class := range []int{0, 1} {
		var idx []int
		for i, l := range y {
			if l == class {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		n := int(float64(len(idx)) * frac)
		if n < 1 {
			n = 1
		}
		for _, k := range rng.Perm(len(idx))[:n] {
			keepSet[idx[k]] = true
		}
	}
	outX := make([][]float64, 0, len(keepSet))
	outY := make([]int, 0, len(keepSet))
	for i := range x {
		if keepSet[i] {
			outX = append(outX, x[i])
			outY = append(outY, y[i])
		}
	}
	return outX, outY
}

// Bootstrap returns n indices sampled with replacement from [0, n).
func Bootstrap(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	return idx
}
