package sampling

import (
	"testing"
	"testing/quick"
)

func makeImbalanced(nMatch, nNon int) ([][]float64, []int) {
	x := make([][]float64, 0, nMatch+nNon)
	y := make([]int, 0, nMatch+nNon)
	for i := 0; i < nMatch; i++ {
		x = append(x, []float64{1, float64(i)})
		y = append(y, 1)
	}
	for i := 0; i < nNon; i++ {
		x = append(x, []float64{0, float64(i)})
		y = append(y, 0)
	}
	return x, y
}

func counts(y []int) (m, n int) {
	for _, l := range y {
		if l == 1 {
			m++
		} else {
			n++
		}
	}
	return m, n
}

func TestUnderSampleRatio(t *testing.T) {
	x, y := makeImbalanced(50, 1000)
	bx, by := UnderSample(x, y, 3, 1)
	m, n := counts(by)
	if m != 50 {
		t.Errorf("matches dropped: %d", m)
	}
	if n != 150 {
		t.Errorf("non-matches = %d, want 150 (1:3)", n)
	}
	if len(bx) != len(by) {
		t.Errorf("x/y length mismatch")
	}
}

func TestUnderSampleAlreadyBalanced(t *testing.T) {
	x, y := makeImbalanced(50, 100)
	bx, by := UnderSample(x, y, 3, 1)
	if len(bx) != 150 || len(by) != 150 {
		t.Errorf("already-balanced data modified: %d rows", len(bx))
	}
}

func TestUnderSampleNoMatches(t *testing.T) {
	x, y := makeImbalanced(0, 100)
	bx, _ := UnderSample(x, y, 3, 1)
	if len(bx) != 100 {
		t.Errorf("no-match input should be returned unchanged, got %d", len(bx))
	}
}

func TestUnderSampleZeroRatio(t *testing.T) {
	x, y := makeImbalanced(10, 100)
	bx, _ := UnderSample(x, y, 0, 1)
	if len(bx) != 110 {
		t.Errorf("non-positive ratio should disable balancing")
	}
}

func TestUnderSampleDeterministic(t *testing.T) {
	x, y := makeImbalanced(20, 500)
	_, by1 := UnderSample(x, y, 2, 42)
	_, by2 := UnderSample(x, y, 2, 42)
	if len(by1) != len(by2) {
		t.Fatalf("sizes differ")
	}
	x1, _ := UnderSample(x, y, 2, 42)
	x2, _ := UnderSample(x, y, 2, 42)
	for i := range x1 {
		if x1[i][1] != x2[i][1] {
			t.Fatalf("selections differ at %d", i)
		}
	}
}

func TestFraction(t *testing.T) {
	x, y := makeImbalanced(50, 50)
	fx, fy := Fraction(x, y, 0.25, 1)
	if len(fx) != 25 || len(fy) != 25 {
		t.Errorf("25%% of 100 rows = %d", len(fx))
	}
	fx, _ = Fraction(x, y, 1.0, 1)
	if len(fx) != 100 {
		t.Errorf("full fraction should return everything")
	}
	fx, _ = Fraction(x, y, 0, 1)
	if fx != nil {
		t.Errorf("zero fraction should return nil")
	}
	fx, _ = Fraction(x, y, 0.001, 1)
	if len(fx) != 1 {
		t.Errorf("tiny fraction should keep at least 1 row, got %d", len(fx))
	}
}

func TestStratifiedFractionKeepsBothClasses(t *testing.T) {
	x, y := makeImbalanced(4, 1000)
	fx, fy := StratifiedFraction(x, y, 0.1, 1)
	m, n := counts(fy)
	if m == 0 {
		t.Errorf("stratified fraction lost all matches")
	}
	if n == 0 {
		t.Errorf("stratified fraction lost all non-matches")
	}
	if len(fx) != m+n {
		t.Errorf("x/y inconsistent")
	}
}

func TestBootstrap(t *testing.T) {
	idx := Bootstrap(100, 7)
	if len(idx) != 100 {
		t.Fatalf("bootstrap size %d", len(idx))
	}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
	}
	idx2 := Bootstrap(100, 7)
	for i := range idx {
		if idx[i] != idx2[i] {
			t.Fatalf("bootstrap not deterministic")
		}
	}
}

func TestPropertyUnderSampleInvariants(t *testing.T) {
	prop := func(nMatch, nNon uint8, ratio float64, seed int64) bool {
		if ratio < 0.1 {
			ratio = 0.1
		}
		if ratio > 10 {
			ratio = 10
		}
		x, y := makeImbalanced(int(nMatch)%60, int(nNon)%400)
		bx, by := UnderSample(x, y, ratio, seed)
		if len(bx) != len(by) {
			return false
		}
		m0, _ := counts(y)
		m1, n1 := counts(by)
		if m1 != m0 {
			return false // all matches preserved
		}
		if m1 > 0 && float64(n1) > float64(m1)*ratio+1 {
			return false // ratio respected
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("under-sampling invariant violated: %v", err)
	}
}
