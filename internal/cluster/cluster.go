// Package cluster post-processes pairwise match decisions into entity
// clusters — the step after classification in the ER process of the
// paper's Figure 1. Pairwise classifiers can emit inconsistent
// decisions (a matches b, b matches c, a does not match c); clustering
// resolves them into a consistent partition. Two standard algorithms
// are provided: transitive closure via connected components, and
// greedy best-match one-to-one assignment for clean two-database
// linkage where each record has at most one true match.
package cluster

import (
	"sort"

	"transer/internal/dataset"
)

// Edge is one predicted match between record A-side index and B-side
// index with its match probability.
type Edge struct {
	Pair  dataset.Pair
	Proba float64
}

// EdgesFromPrediction builds the match edge list from a candidate pair
// list and its predicted labels/probabilities.
func EdgesFromPrediction(pairs []dataset.Pair, labels []int, proba []float64) []Edge {
	out := make([]Edge, 0)
	for i, p := range pairs {
		if labels[i] == 1 {
			e := Edge{Pair: p}
			if proba != nil {
				e.Proba = proba[i]
			}
			out = append(out, e)
		}
	}
	return out
}

// Cluster is one resolved entity: the A-side and B-side record indices
// grouped together.
type Cluster struct {
	A, B []int
}

// union-find over a combined node space (A-side nodes then B-side
// nodes).
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// ConnectedComponents groups records by the transitive closure of the
// match edges. numA and numB are the record counts of the two
// databases; singletons (records without any match edge) are omitted.
// Clusters are returned in deterministic order (smallest A index, then
// smallest B index).
func ConnectedComponents(edges []Edge, numA, numB int) []Cluster {
	uf := newUnionFind(numA + numB)
	for _, e := range edges {
		uf.union(e.Pair.A, numA+e.Pair.B)
	}
	groups := map[int]*Cluster{}
	for _, e := range edges {
		root := uf.find(e.Pair.A)
		if groups[root] == nil {
			groups[root] = &Cluster{}
		}
	}
	seenA := make(map[int]bool)
	seenB := make(map[int]bool)
	for _, e := range edges {
		root := uf.find(e.Pair.A)
		g := groups[root]
		if !seenA[e.Pair.A] {
			g.A = append(g.A, e.Pair.A)
			seenA[e.Pair.A] = true
		}
		if !seenB[e.Pair.B] {
			g.B = append(g.B, e.Pair.B)
			seenB[e.Pair.B] = true
		}
	}
	out := make([]Cluster, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g.A)
		sort.Ints(g.B)
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := first(out[i].A), first(out[j].A)
		if ai != aj {
			return ai < aj
		}
		return first(out[i].B) < first(out[j].B)
	})
	return out
}

// DedupComponents groups the records of ONE database by the
// transitive closure of self-join match pairs (index pairs into the
// same record space, the output of a dedup query). Unlike
// ConnectedComponents it does not split nodes into A/B sides, so a
// record is one node and closure works across chained pairs. Every
// record 0..n-1 appears in exactly one component — singletons
// included — and components are returned sorted by smallest member,
// members ascending. This is the batch-side clustering the streaming
// entity store (internal/stream) is proven equivalent to.
func DedupComponents(pairs []dataset.Pair, n int) [][]int {
	uf := newUnionFind(n)
	for _, p := range pairs {
		uf.union(p.A, p.B)
	}
	members := make(map[int][]int)
	for i := 0; i < n; i++ {
		root := uf.find(i)
		members[root] = append(members[root], i)
	}
	out := make([][]int, 0, len(members))
	for _, m := range members {
		sort.Ints(m)
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func first(xs []int) int {
	if len(xs) == 0 {
		return int(^uint(0) >> 1)
	}
	return xs[0]
}

// GreedyOneToOne keeps at most one match per record on each side,
// preferring higher-probability edges (ties broken by pair indices for
// determinism). It implements the common post-processing for clean
// two-database linkage and returns the retained edges sorted by pair.
func GreedyOneToOne(edges []Edge) []Edge {
	sorted := append([]Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Proba != sorted[j].Proba {
			return sorted[i].Proba > sorted[j].Proba
		}
		if sorted[i].Pair.A != sorted[j].Pair.A {
			return sorted[i].Pair.A < sorted[j].Pair.A
		}
		return sorted[i].Pair.B < sorted[j].Pair.B
	})
	usedA := map[int]bool{}
	usedB := map[int]bool{}
	kept := make([]Edge, 0, len(sorted))
	for _, e := range sorted {
		if usedA[e.Pair.A] || usedB[e.Pair.B] {
			continue
		}
		usedA[e.Pair.A] = true
		usedB[e.Pair.B] = true
		kept = append(kept, e)
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pair.A != kept[j].Pair.A {
			return kept[i].Pair.A < kept[j].Pair.A
		}
		return kept[i].Pair.B < kept[j].Pair.B
	})
	return kept
}

// Labels converts a retained edge set back into a label vector aligned
// with the candidate pair list (1 for retained pairs), allowing the
// standard pairwise measures to evaluate the clustered result.
func Labels(pairs []dataset.Pair, kept []Edge) []int {
	set := make(dataset.PairSet, len(kept))
	for _, e := range kept {
		set[e.Pair] = true
	}
	out := make([]int, len(pairs))
	for i, p := range pairs {
		if set[p] {
			out[i] = 1
		}
	}
	return out
}
