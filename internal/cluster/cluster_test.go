package cluster

import (
	"testing"
	"testing/quick"

	"transer/internal/dataset"
)

func TestEdgesFromPrediction(t *testing.T) {
	pairs := []dataset.Pair{{A: 0, B: 0}, {A: 1, B: 1}, {A: 2, B: 2}}
	labels := []int{1, 0, 1}
	proba := []float64{0.9, 0.4, 0.8}
	edges := EdgesFromPrediction(pairs, labels, proba)
	if len(edges) != 2 {
		t.Fatalf("expected 2 edges, got %d", len(edges))
	}
	if edges[0].Pair != pairs[0] || edges[0].Proba != 0.9 {
		t.Errorf("edge 0 = %+v", edges[0])
	}
	// nil proba allowed
	edges = EdgesFromPrediction(pairs, labels, nil)
	if edges[0].Proba != 0 {
		t.Errorf("nil proba should give zero")
	}
}

func TestConnectedComponents(t *testing.T) {
	// a0-b0, a1-b0 (shared B record => one cluster), a2-b2 separate.
	edges := []Edge{
		{Pair: dataset.Pair{A: 0, B: 0}},
		{Pair: dataset.Pair{A: 1, B: 0}},
		{Pair: dataset.Pair{A: 2, B: 2}},
	}
	cs := ConnectedComponents(edges, 3, 3)
	if len(cs) != 2 {
		t.Fatalf("expected 2 clusters, got %d: %+v", len(cs), cs)
	}
	if len(cs[0].A) != 2 || len(cs[0].B) != 1 {
		t.Errorf("first cluster = %+v", cs[0])
	}
	if cs[0].A[0] != 0 || cs[0].A[1] != 1 || cs[0].B[0] != 0 {
		t.Errorf("first cluster members = %+v", cs[0])
	}
	if len(cs[1].A) != 1 || cs[1].A[0] != 2 || cs[1].B[0] != 2 {
		t.Errorf("second cluster = %+v", cs[1])
	}
}

func TestConnectedComponentsTransitivity(t *testing.T) {
	// a0-b0, a1-b0, a1-b1: all four records in one cluster.
	edges := []Edge{
		{Pair: dataset.Pair{A: 0, B: 0}},
		{Pair: dataset.Pair{A: 1, B: 0}},
		{Pair: dataset.Pair{A: 1, B: 1}},
	}
	cs := ConnectedComponents(edges, 2, 2)
	if len(cs) != 1 {
		t.Fatalf("expected 1 cluster, got %d", len(cs))
	}
	if len(cs[0].A) != 2 || len(cs[0].B) != 2 {
		t.Errorf("cluster = %+v", cs[0])
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	if cs := ConnectedComponents(nil, 5, 5); len(cs) != 0 {
		t.Errorf("no edges should give no clusters, got %v", cs)
	}
}

func TestGreedyOneToOne(t *testing.T) {
	edges := []Edge{
		{Pair: dataset.Pair{A: 0, B: 0}, Proba: 0.9},
		{Pair: dataset.Pair{A: 0, B: 1}, Proba: 0.8}, // loses A=0
		{Pair: dataset.Pair{A: 1, B: 0}, Proba: 0.7}, // loses B=0
		{Pair: dataset.Pair{A: 1, B: 1}, Proba: 0.6}, // wins leftovers
	}
	kept := GreedyOneToOne(edges)
	if len(kept) != 2 {
		t.Fatalf("expected 2 kept edges, got %d: %+v", len(kept), kept)
	}
	if kept[0].Pair != (dataset.Pair{A: 0, B: 0}) || kept[1].Pair != (dataset.Pair{A: 1, B: 1}) {
		t.Errorf("kept = %+v", kept)
	}
}

func TestGreedyOneToOneDeterministicTies(t *testing.T) {
	edges := []Edge{
		{Pair: dataset.Pair{A: 1, B: 0}, Proba: 0.5},
		{Pair: dataset.Pair{A: 0, B: 0}, Proba: 0.5},
	}
	kept := GreedyOneToOne(edges)
	if len(kept) != 1 || kept[0].Pair.A != 0 {
		t.Errorf("tie should prefer lower A index, got %+v", kept)
	}
}

func TestLabels(t *testing.T) {
	pairs := []dataset.Pair{{A: 0, B: 0}, {A: 1, B: 1}, {A: 2, B: 2}}
	kept := []Edge{{Pair: pairs[1]}}
	labels := Labels(pairs, kept)
	if labels[0] != 0 || labels[1] != 1 || labels[2] != 0 {
		t.Errorf("labels = %v", labels)
	}
}

func TestPropertyOneToOneInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		// Random edge soup; after GreedyOneToOne no A or B repeats and
		// no kept edge could be replaced by a strictly better unkept
		// edge on fully free endpoints.
		edges := randomEdges(seed, 40)
		kept := GreedyOneToOne(edges)
		seenA := map[int]bool{}
		seenB := map[int]bool{}
		for _, e := range kept {
			if seenA[e.Pair.A] || seenB[e.Pair.B] {
				return false
			}
			seenA[e.Pair.A] = true
			seenB[e.Pair.B] = true
		}
		for _, e := range edges {
			if !seenA[e.Pair.A] && !seenB[e.Pair.B] {
				return false // a free edge was skipped
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Errorf("one-to-one invariant violated: %v", err)
	}
}

func TestPropertyComponentsPartition(t *testing.T) {
	prop := func(seed int64) bool {
		edges := randomEdges(seed, 60)
		cs := ConnectedComponents(edges, 20, 20)
		seenA := map[int]int{}
		seenB := map[int]int{}
		for ci, c := range cs {
			for _, a := range c.A {
				if prev, ok := seenA[a]; ok && prev != ci {
					return false // A record in two clusters
				}
				seenA[a] = ci
			}
			for _, b := range c.B {
				if prev, ok := seenB[b]; ok && prev != ci {
					return false
				}
				seenB[b] = ci
			}
		}
		// Every edge's endpoints are in the same cluster.
		for _, e := range edges {
			if seenA[e.Pair.A] != seenB[e.Pair.B] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Errorf("components are not a partition: %v", err)
	}
}

func randomEdges(seed int64, n int) []Edge {
	// Simple deterministic LCG so testing/quick's seed drives layout.
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(mod int) int {
		state = state*2862933555777941757 + 3037000493
		return int(state>>33) % mod
	}
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{
			Pair:  dataset.Pair{A: next(20), B: next(20)},
			Proba: float64(next(100)) / 100,
		}
	}
	return edges
}

func TestDedupComponents(t *testing.T) {
	// Chained pairs close transitively: 0-1, 1-2 and 5-6 over 8 records.
	pairs := []dataset.Pair{{A: 0, B: 1}, {A: 1, B: 2}, {A: 5, B: 6}}
	got := DedupComponents(pairs, 8)
	want := [][]int{{0, 1, 2}, {3}, {4}, {5, 6}, {7}}
	if len(got) != len(want) {
		t.Fatalf("components = %v, want %v", got, want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("components = %v, want %v", got, want)
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("components = %v, want %v", got, want)
			}
		}
	}
	// Pair order does not matter.
	rev := []dataset.Pair{{A: 5, B: 6}, {A: 1, B: 2}, {A: 0, B: 1}}
	again := DedupComponents(rev, 8)
	for i := range got {
		for j := range got[i] {
			if again[i][j] != got[i][j] {
				t.Fatalf("pair order changed components: %v vs %v", again, got)
			}
		}
	}
}
