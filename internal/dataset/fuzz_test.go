package dataset

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzCSVDataset feeds arbitrary bytes to the CSV reader: it must
// either reject the input with an error or return a valid database
// that survives a write → read round trip unchanged.
func FuzzCSVDataset(f *testing.F) {
	f.Add([]byte("id,entity_id,name:name,year:year\nr1,e1,ada lovelace,1815\nr2,e1,ada king,1815\n"))
	f.Add([]byte("id,entity_id\nr1,e1\n"))
	f.Add([]byte("id,entity_id,desc:text\nr1,e1,\"quoted, with comma\"\n"))
	f.Add([]byte("id,entity_id,a\nr1,e1,bare-attr-defaults-to-text\n"))
	f.Add([]byte("not,a,database\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := ReadCSV(bytes.NewReader(data), "fuzz")
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if verr := db.Validate(); verr != nil {
			t.Fatalf("ReadCSV returned an invalid database: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteCSV(&buf, db); werr != nil {
			t.Fatalf("WriteCSV on a parsed database: %v", werr)
		}
		again, rerr := ReadCSV(bytes.NewReader(buf.Bytes()), "fuzz")
		if rerr != nil {
			t.Fatalf("re-reading our own output: %v\noutput:\n%s", rerr, buf.Bytes())
		}
		if !reflect.DeepEqual(db, again) {
			t.Fatalf("round trip changed the database:\nbefore %+v\nafter  %+v", db, again)
		}
	})
}
