// Package dataset defines the record model shared across the ER
// pipeline: schemas of typed attributes, records, databases, candidate
// record pairs, and ground-truth match sets, plus CSV serialisation so
// generated data sets can be inspected and reused.
package dataset

import (
	"fmt"
	"sort"
)

// AttrType describes how an attribute's values are compared in the
// record pair comparison step.
type AttrType int

const (
	// AttrName is a short personal-name-like string compared with
	// Jaro-Winkler (paper Section 5.1.1).
	AttrName AttrType = iota
	// AttrText is longer free text (titles, venues) compared with
	// token Jaccard.
	AttrText
	// AttrCode is a short code-like string (postcodes, catalogue ids)
	// compared with normalised edit distance.
	AttrCode
	// AttrYear is an integer year compared with a tolerance window.
	AttrYear
	// AttrNumeric is a general numeric value compared with a linear
	// tolerance.
	AttrNumeric
)

// String returns the attribute type's name.
func (t AttrType) String() string {
	switch t {
	case AttrName:
		return "name"
	case AttrText:
		return "text"
	case AttrCode:
		return "code"
	case AttrYear:
		return "year"
	case AttrNumeric:
		return "numeric"
	}
	return fmt.Sprintf("AttrType(%d)", int(t))
}

// Attribute is one typed column of a schema.
type Attribute struct {
	Name string
	Type AttrType
}

// Schema is the ordered attribute list of a database. Source and
// target domains in the homogeneous TL setting share the same schema
// (the same feature space X).
type Schema struct {
	Attributes []Attribute
}

// NumAttributes returns the schema width m.
func (s Schema) NumAttributes() int { return len(s.Attributes) }

// Names returns the attribute names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Attributes))
	for i, a := range s.Attributes {
		out[i] = a.Name
	}
	return out
}

// Equal reports whether two schemas have identical attribute names and
// types in the same order — the homogeneity precondition of TransER.
func (s Schema) Equal(o Schema) bool {
	if len(s.Attributes) != len(o.Attributes) {
		return false
	}
	for i := range s.Attributes {
		if s.Attributes[i] != o.Attributes[i] {
			return false
		}
	}
	return true
}

// Record is one entity description: an identifier, the identifier of
// the underlying true entity (ground truth, empty when unknown), and
// values aligned with the database schema.
type Record struct {
	ID       string
	EntityID string
	Values   []string
}

// Database is a schema plus its records.
type Database struct {
	Name    string
	Schema  Schema
	Records []Record
}

// NumRecords returns the record count.
func (db *Database) NumRecords() int { return len(db.Records) }

// Validate checks that every record matches the schema width and that
// record ids are unique.
func (db *Database) Validate() error {
	m := db.Schema.NumAttributes()
	seen := make(map[string]bool, len(db.Records))
	for i, r := range db.Records {
		if len(r.Values) != m {
			return fmt.Errorf("dataset: record %d (%s) has %d values, schema has %d attributes", i, r.ID, len(r.Values), m)
		}
		if r.ID == "" {
			return fmt.Errorf("dataset: record %d has empty id", i)
		}
		if seen[r.ID] {
			return fmt.Errorf("dataset: duplicate record id %q", r.ID)
		}
		seen[r.ID] = true
	}
	return nil
}

// Pair identifies a candidate record pair by indices into two
// databases (A-side and B-side).
type Pair struct {
	A, B int
}

// PairSet is a set of record pairs keyed by index pair.
type PairSet map[Pair]bool

// Add inserts a pair.
func (ps PairSet) Add(a, b int) { ps[Pair{a, b}] = true }

// Contains reports membership.
func (ps PairSet) Contains(a, b int) bool { return ps[Pair{a, b}] }

// Sorted returns the pairs in deterministic (A, then B) order.
func (ps PairSet) Sorted() []Pair {
	out := make([]Pair, 0, len(ps))
	for p := range ps {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// GroundTruth computes the true match pair set between two databases
// from their records' entity ids: a pair is a true match iff both
// records carry the same non-empty EntityID.
func GroundTruth(a, b *Database) PairSet {
	byEntity := make(map[string][]int)
	for i, r := range a.Records {
		if r.EntityID != "" {
			byEntity[r.EntityID] = append(byEntity[r.EntityID], i)
		}
	}
	out := make(PairSet)
	for j, r := range b.Records {
		if r.EntityID == "" {
			continue
		}
		for _, i := range byEntity[r.EntityID] {
			out.Add(i, j)
		}
	}
	return out
}

// LabelPairs converts candidate pairs into a binary label vector using
// the ground truth set: 1 for a match, 0 for a non-match.
func LabelPairs(pairs []Pair, truth PairSet) []int {
	labels := make([]int, len(pairs))
	for i, p := range pairs {
		if truth[p] {
			labels[i] = 1
		}
	}
	return labels
}
