package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func sampleDB() *Database {
	return &Database{
		Name: "test",
		Schema: Schema{Attributes: []Attribute{
			{Name: "title", Type: AttrText},
			{Name: "author", Type: AttrName},
			{Name: "year", Type: AttrYear},
		}},
		Records: []Record{
			{ID: "r1", EntityID: "e1", Values: []string{"a paper", "smith", "1990"}},
			{ID: "r2", EntityID: "e2", Values: []string{"other paper", "jones", "1991"}},
			{ID: "r3", EntityID: "e1", Values: []string{"a paper!", "smyth", "1990"}},
		},
	}
}

func TestValidate(t *testing.T) {
	db := sampleDB()
	if err := db.Validate(); err != nil {
		t.Fatalf("valid db rejected: %v", err)
	}
	bad := sampleDB()
	bad.Records[0].Values = bad.Records[0].Values[:2]
	if err := bad.Validate(); err == nil {
		t.Errorf("short record accepted")
	}
	dup := sampleDB()
	dup.Records[1].ID = "r1"
	if err := dup.Validate(); err == nil {
		t.Errorf("duplicate id accepted")
	}
	noid := sampleDB()
	noid.Records[2].ID = ""
	if err := noid.Validate(); err == nil {
		t.Errorf("empty id accepted")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := sampleDB().Schema
	b := sampleDB().Schema
	if !a.Equal(b) {
		t.Errorf("identical schemas not equal")
	}
	b.Attributes[0].Type = AttrName
	if a.Equal(b) {
		t.Errorf("different types considered equal")
	}
	c := Schema{Attributes: a.Attributes[:2]}
	if a.Equal(c) {
		t.Errorf("different widths considered equal")
	}
}

func TestAttrTypeString(t *testing.T) {
	want := map[AttrType]string{
		AttrName: "name", AttrText: "text", AttrCode: "code",
		AttrYear: "year", AttrNumeric: "numeric",
	}
	for k, v := range want {
		if k.String() != v {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), v)
		}
	}
	if !strings.Contains(AttrType(99).String(), "99") {
		t.Errorf("unknown type should include the number")
	}
}

func TestGroundTruthAndLabels(t *testing.T) {
	a := sampleDB()
	b := &Database{
		Name:   "other",
		Schema: a.Schema,
		Records: []Record{
			{ID: "s1", EntityID: "e1", Values: []string{"a paper", "smith", "1990"}},
			{ID: "s2", EntityID: "e9", Values: []string{"unrelated", "brown", "2000"}},
		},
	}
	truth := GroundTruth(a, b)
	// e1 appears twice in a (r1, r3) and once in b (s1) => 2 pairs.
	if len(truth) != 2 {
		t.Fatalf("truth size = %d, want 2", len(truth))
	}
	if !truth.Contains(0, 0) || !truth.Contains(2, 0) {
		t.Errorf("expected pairs (0,0) and (2,0), got %v", truth)
	}
	pairs := []Pair{{0, 0}, {1, 1}, {2, 0}}
	labels := LabelPairs(pairs, truth)
	if labels[0] != 1 || labels[1] != 0 || labels[2] != 1 {
		t.Errorf("labels = %v", labels)
	}
}

func TestGroundTruthIgnoresEmptyEntityIDs(t *testing.T) {
	a := &Database{Schema: Schema{}, Records: []Record{{ID: "x", EntityID: ""}}}
	b := &Database{Schema: Schema{}, Records: []Record{{ID: "y", EntityID: ""}}}
	if truth := GroundTruth(a, b); len(truth) != 0 {
		t.Errorf("empty entity ids should never match, got %v", truth)
	}
}

func TestPairSetSorted(t *testing.T) {
	ps := make(PairSet)
	ps.Add(2, 1)
	ps.Add(0, 5)
	ps.Add(2, 0)
	got := ps.Sorted()
	want := []Pair{{0, 5}, {2, 0}, {2, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, db); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf, "test")
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !back.Schema.Equal(db.Schema) {
		t.Errorf("schema mismatch after round trip: %+v", back.Schema)
	}
	if len(back.Records) != len(db.Records) {
		t.Fatalf("record count %d, want %d", len(back.Records), len(db.Records))
	}
	for i := range db.Records {
		if back.Records[i].ID != db.Records[i].ID ||
			back.Records[i].EntityID != db.Records[i].EntityID {
			t.Errorf("record %d identity mismatch", i)
		}
		for j := range db.Records[i].Values {
			if back.Records[i].Values[j] != db.Records[i].Values[j] {
				t.Errorf("record %d value %d mismatch", i, j)
			}
		}
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"",                              // empty
		"foo,bar\n1,2",                  // wrong header
		"id,entity_id,a:text\nr1",       // short row
		"id,entity_id,a:bogus\nr1,e1,x", // unknown type
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), "x"); err == nil {
			t.Errorf("case %d: malformed csv accepted", i)
		}
	}
}

func TestWriteMatrixCSV(t *testing.T) {
	var buf bytes.Buffer
	x := [][]float64{{0.5, 1}, {0, 0.25}}
	y := []int{1, 0}
	if err := WriteMatrixCSV(&buf, x, y, []string{"f1", "f2"}); err != nil {
		t.Fatalf("WriteMatrixCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d", len(lines))
	}
	if lines[0] != "f1,f2,label" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasSuffix(lines[1], ",1") || !strings.HasSuffix(lines[2], ",0") {
		t.Errorf("labels not in last column: %v", lines[1:])
	}
	// Without labels.
	buf.Reset()
	if err := WriteMatrixCSV(&buf, x, nil, []string{"f1", "f2"}); err != nil {
		t.Fatalf("WriteMatrixCSV no labels: %v", err)
	}
	if strings.Contains(strings.Split(buf.String(), "\n")[0], "label") {
		t.Errorf("label column present without labels")
	}
}
