package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteCSV serialises the database as CSV with a header row of
// "id,entity_id,<attr:type>...". Attribute types are encoded in the
// header so ReadCSV can reconstruct the schema.
func WriteCSV(w io.Writer, db *Database) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "entity_id"}
	for _, a := range db.Schema.Attributes {
		header = append(header, a.Name+":"+a.Type.String())
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	row := make([]string, 0, len(header))
	for _, r := range db.Records {
		row = row[:0]
		row = append(row, r.ID, r.EntityID)
		row = append(row, r.Values...)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing record %s: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the database to the named file.
func WriteCSVFile(path string, db *Database) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteCSV(f, db); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSV parses a database previously written by WriteCSV. The
// database name is taken from the argument since CSV has no place for
// it.
func ReadCSV(r io.Reader, name string) (*Database, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty csv")
	}
	header := rows[0]
	if len(header) < 2 || header[0] != "id" || header[1] != "entity_id" {
		return nil, fmt.Errorf("dataset: malformed header %v", header)
	}
	db := &Database{Name: name}
	for _, h := range header[2:] {
		parts := strings.SplitN(h, ":", 2)
		attr := Attribute{Name: parts[0], Type: AttrText}
		if len(parts) == 2 {
			t, err := parseAttrType(parts[1])
			if err != nil {
				return nil, err
			}
			attr.Type = t
		}
		db.Schema.Attributes = append(db.Schema.Attributes, attr)
	}
	m := db.Schema.NumAttributes()
	for i, row := range rows[1:] {
		if len(row) != m+2 {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", i+1, len(row), m+2)
		}
		db.Records = append(db.Records, Record{
			ID:       row[0],
			EntityID: row[1],
			Values:   append([]string(nil), row[2:]...),
		})
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	return db, nil
}

// ReadCSVFile reads a database from the named file.
func ReadCSVFile(path, name string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, name)
}

// ParseAttrType resolves an attribute type's String() form back to the
// constant — the inverse used by the CSV header reader and by model
// artifacts (internal/model) that persist schemas as text.
func ParseAttrType(s string) (AttrType, error) { return parseAttrType(s) }

func parseAttrType(s string) (AttrType, error) {
	switch s {
	case "name":
		return AttrName, nil
	case "text":
		return AttrText, nil
	case "code":
		return AttrCode, nil
	case "year":
		return AttrYear, nil
	case "numeric":
		return AttrNumeric, nil
	}
	return 0, fmt.Errorf("dataset: unknown attribute type %q", s)
}

// WriteMatrixCSV serialises a feature matrix with labels (label column
// may be nil) for offline inspection, mirroring the feature matrices
// the paper publishes alongside its code.
func WriteMatrixCSV(w io.Writer, x [][]float64, y []int, featureNames []string) error {
	cw := csv.NewWriter(w)
	header := append([]string(nil), featureNames...)
	if y != nil {
		header = append(header, "label")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, row := range x {
		fields := make([]string, 0, len(row)+1)
		for _, v := range row {
			fields = append(fields, strconv.FormatFloat(v, 'f', 6, 64))
		}
		if y != nil {
			fields = append(fields, strconv.Itoa(y[i]))
		}
		if err := cw.Write(fields); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
