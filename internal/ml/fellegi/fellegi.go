// Package fellegi implements the classic Fellegi-Sunter record linkage
// model fitted with expectation-maximisation — the standard
// unsupervised match classifier (Figure 1 of the paper allows either
// supervised or unsupervised classification). Features are binarised
// by an agreement threshold; EM estimates per-feature agreement
// probabilities among matches (m-probabilities) and non-matches
// (u-probabilities) plus the match prevalence, without any labels.
//
// It does not implement the ml.Classifier interface (it takes no
// labels); FitUnsupervised consumes the feature matrix alone.
package fellegi

import (
	"errors"
	"math"
)

// Config holds Fellegi-Sunter EM hyper-parameters.
type Config struct {
	// AgreeThreshold binarises features: value >= threshold counts as
	// agreement; 0 means 0.8.
	AgreeThreshold float64
	// MaxIterations of EM; 0 means 100.
	MaxIterations int
	// Tolerance on the log-likelihood change for convergence; 0 means
	// 1e-6.
	Tolerance float64
	// InitPrevalence is the initial match prevalence; 0 means 0.1.
	InitPrevalence float64
}

func (c Config) withDefaults() Config {
	if c.AgreeThreshold == 0 {
		c.AgreeThreshold = 0.8
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 100
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-6
	}
	if c.InitPrevalence == 0 {
		c.InitPrevalence = 0.1
	}
	return c
}

// Model is a fitted Fellegi-Sunter model.
type Model struct {
	cfg Config
	// M and U are the per-feature agreement probabilities among
	// matches and non-matches.
	M, U []float64
	// Prevalence is the estimated match fraction.
	Prevalence float64
	// Iterations actually run and whether EM converged.
	Iterations int
	Converged  bool
}

// FitUnsupervised estimates the model from an unlabelled feature
// matrix by EM.
func FitUnsupervised(x [][]float64, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(x) == 0 {
		return nil, errors.New("fellegi: empty feature matrix")
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, errors.New("fellegi: zero-width feature matrix")
	}
	// Binarise agreements once.
	agree := make([][]bool, len(x))
	for i, row := range x {
		if len(row) != dim {
			return nil, errors.New("fellegi: ragged feature matrix")
		}
		a := make([]bool, dim)
		for j, v := range row {
			a[j] = v >= cfg.AgreeThreshold
		}
		agree[i] = a
	}

	m := &Model{cfg: cfg, M: make([]float64, dim), U: make([]float64, dim), Prevalence: cfg.InitPrevalence}
	// Standard initialisation: matches mostly agree, non-matches mostly
	// disagree.
	for j := 0; j < dim; j++ {
		m.M[j] = 0.9
		m.U[j] = 0.1
	}
	resp := make([]float64, len(x))
	prevLL := math.Inf(-1)
	for it := 0; it < cfg.MaxIterations; it++ {
		// E-step: responsibilities P(match | agreements).
		ll := 0.0
		for i, a := range agree {
			logM := math.Log(m.Prevalence)
			logU := math.Log(1 - m.Prevalence)
			for j, ag := range a {
				if ag {
					logM += math.Log(m.M[j])
					logU += math.Log(m.U[j])
				} else {
					logM += math.Log(1 - m.M[j])
					logU += math.Log(1 - m.U[j])
				}
			}
			mx := logM
			if logU > mx {
				mx = logU
			}
			denom := math.Exp(logM-mx) + math.Exp(logU-mx)
			resp[i] = math.Exp(logM-mx) / denom
			ll += mx + math.Log(denom)
		}
		// M-step.
		sumR := 0.0
		for _, r := range resp {
			sumR += r
		}
		n := float64(len(x))
		m.Prevalence = clampProb(sumR / n)
		for j := 0; j < dim; j++ {
			agreeM, agreeU := 0.0, 0.0
			for i, a := range agree {
				if a[j] {
					agreeM += resp[i]
					agreeU += 1 - resp[i]
				}
			}
			m.M[j] = clampProb(agreeM / math.Max(sumR, 1e-12))
			m.U[j] = clampProb(agreeU / math.Max(n-sumR, 1e-12))
		}
		m.Iterations = it + 1
		if math.Abs(ll-prevLL) < cfg.Tolerance*math.Abs(ll) {
			m.Converged = true
			break
		}
		prevLL = ll
	}
	return m, nil
}

func clampProb(p float64) float64 {
	const eps = 1e-4
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// PredictProba returns P(match | row) under the fitted model.
func (m *Model) PredictProba(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		logM := math.Log(m.Prevalence)
		logU := math.Log(1 - m.Prevalence)
		for j, v := range row {
			if j >= len(m.M) {
				break
			}
			if v >= m.cfg.AgreeThreshold {
				logM += math.Log(m.M[j])
				logU += math.Log(m.U[j])
			} else {
				logM += math.Log(1 - m.M[j])
				logU += math.Log(1 - m.U[j])
			}
		}
		diff := logU - logM
		switch {
		case diff > 500:
			out[i] = 0
		case diff < -500:
			out[i] = 1
		default:
			out[i] = 1 / (1 + math.Exp(diff))
		}
	}
	return out
}

// MatchWeights returns the per-feature log2 agreement weights
// log2(m/u) used in traditional linkage practice to inspect feature
// informativeness.
func (m *Model) MatchWeights() []float64 {
	out := make([]float64, len(m.M))
	for j := range out {
		out[j] = math.Log2(m.M[j] / m.U[j])
	}
	return out
}
