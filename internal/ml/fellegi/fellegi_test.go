package fellegi

import (
	"math"
	"testing"

	"transer/internal/ml/mltest"
)

func TestFitUnsupervisedSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(600, 4, 0.1, 1)
	m, err := FitUnsupervised(x, Config{})
	if err != nil {
		t.Fatalf("FitUnsupervised: %v", err)
	}
	acc := mltest.Accuracy(m.PredictProba(x), y)
	// EM may swap the component meaning; accept either orientation but
	// demand strong separation.
	if acc < 0.9 && acc > 0.1 {
		t.Errorf("unsupervised accuracy %.3f — components not separated", acc)
	}
	if m.Prevalence <= 0 || m.Prevalence >= 1 {
		t.Errorf("prevalence %v out of range", m.Prevalence)
	}
}

func TestFitUnsupervisedErrors(t *testing.T) {
	if _, err := FitUnsupervised(nil, Config{}); err == nil {
		t.Errorf("empty matrix accepted")
	}
	if _, err := FitUnsupervised([][]float64{{}}, Config{}); err == nil {
		t.Errorf("zero-width matrix accepted")
	}
	if _, err := FitUnsupervised([][]float64{{1}, {1, 2}}, Config{}); err == nil {
		t.Errorf("ragged matrix accepted")
	}
}

func TestMatchWeightsInformative(t *testing.T) {
	// One informative feature, one noise feature: the informative one
	// must get a higher |log2(m/u)| weight.
	x, _ := mltest.TwoBlobs(400, 1, 0.08, 2)
	rows := make([][]float64, len(x))
	for i, r := range x {
		// A constant mid-value never crosses the agreement threshold in
		// either class, so its m- and u-probabilities coincide.
		rows[i] = []float64{r[0], 0.5}
	}
	m, err := FitUnsupervised(rows, Config{})
	if err != nil {
		t.Fatal(err)
	}
	w := m.MatchWeights()
	if math.Abs(w[0]) <= math.Abs(w[1]) {
		t.Errorf("informative feature weight %v not above noise %v", w[0], w[1])
	}
}

func TestConvergenceReported(t *testing.T) {
	x, _ := mltest.TwoBlobs(200, 3, 0.1, 3)
	m, err := FitUnsupervised(x, Config{MaxIterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Converged {
		t.Errorf("EM did not converge in 200 iterations on easy data")
	}
	if m.Iterations == 0 {
		t.Errorf("iterations not recorded")
	}
}

func TestProbabilityRange(t *testing.T) {
	x, _ := mltest.TwoBlobs(200, 4, 0.2, 4)
	m, err := FitUnsupervised(x, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.PredictProba(x) {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability %v out of range", p)
		}
	}
}
