// Package mltest provides shared synthetic classification problems for
// testing the classifier implementations.
package mltest

import "math/rand"

// TwoBlobs generates a linearly separable-ish binary problem: class 1
// centred at (0.8, ..., 0.8), class 0 at (0.2, ..., 0.2), with the
// given Gaussian spread. Returns n rows of dimension dim.
func TwoBlobs(n, dim int, spread float64, seed int64) (x [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	x = make([][]float64, n)
	y = make([]int, n)
	for i := range x {
		row := make([]float64, dim)
		label := i % 2
		centre := 0.2
		if label == 1 {
			centre = 0.8
		}
		for j := range row {
			v := centre + rng.NormFloat64()*spread
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			row[j] = v
		}
		x[i] = row
		y[i] = label
	}
	return x, y
}

// XOR generates the classic non-linearly-separable XOR problem in 2D
// with jitter, for testing non-linear classifiers.
func XOR(n int, jitter float64, seed int64) (x [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	x = make([][]float64, n)
	y = make([]int, n)
	for i := range x {
		a := rng.Intn(2)
		b := rng.Intn(2)
		x[i] = []float64{
			float64(a)*0.8 + 0.1 + rng.NormFloat64()*jitter,
			float64(b)*0.8 + 0.1 + rng.NormFloat64()*jitter,
		}
		if a != b {
			y[i] = 1
		}
	}
	return x, y
}

// Accuracy returns the fraction of probabilities on the correct side
// of 0.5.
func Accuracy(proba []float64, y []int) float64 {
	if len(proba) == 0 {
		return 0
	}
	correct := 0
	for i, p := range proba {
		pred := 0
		if p >= 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(proba))
}
