// Package mltest provides shared synthetic classification problems for
// testing the classifier implementations, plus the shared
// export→import→predict exactness check every ml.ParamClassifier must
// pass (the contract internal/model's artifacts rely on).
package mltest

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"transer/internal/ml"
)

// TwoBlobs generates a linearly separable-ish binary problem: class 1
// centred at (0.8, ..., 0.8), class 0 at (0.2, ..., 0.2), with the
// given Gaussian spread. Returns n rows of dimension dim.
func TwoBlobs(n, dim int, spread float64, seed int64) (x [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	x = make([][]float64, n)
	y = make([]int, n)
	for i := range x {
		row := make([]float64, dim)
		label := i % 2
		centre := 0.2
		if label == 1 {
			centre = 0.8
		}
		for j := range row {
			v := centre + rng.NormFloat64()*spread
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			row[j] = v
		}
		x[i] = row
		y[i] = label
	}
	return x, y
}

// XOR generates the classic non-linearly-separable XOR problem in 2D
// with jitter, for testing non-linear classifiers.
func XOR(n int, jitter float64, seed int64) (x [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	x = make([][]float64, n)
	y = make([]int, n)
	for i := range x {
		a := rng.Intn(2)
		b := rng.Intn(2)
		x[i] = []float64{
			float64(a)*0.8 + 0.1 + rng.NormFloat64()*jitter,
			float64(b)*0.8 + 0.1 + rng.NormFloat64()*jitter,
		}
		if a != b {
			y[i] = 1
		}
	}
	return x, y
}

// CheckParamRoundTrip asserts the ParamClassifier contract for one
// implementation: Params before Fit returns ml.ErrNotTrained; after
// Fit, a fresh instance restored via SetParams predicts bitwise
// identically to the trained original on held-out rows; and the
// restored instance re-exports byte-identical params (export is a
// fixed point). fresh must return a new untrained instance with the
// same configuration each call.
func CheckParamRoundTrip(tb testing.TB, fresh func() ml.ParamClassifier, seed int64) {
	tb.Helper()
	orig := fresh()
	if _, err := orig.Params(); !errors.Is(err, ml.ErrNotTrained) {
		tb.Fatalf("%s: Params before Fit returned %v, want ml.ErrNotTrained", orig.ClassifierType(), err)
	}
	xTrain, yTrain := TwoBlobs(200, 4, 0.15, seed)
	xEval, _ := TwoBlobs(97, 4, 0.25, seed+1)
	if err := orig.Fit(xTrain, yTrain); err != nil {
		tb.Fatalf("%s: Fit: %v", orig.ClassifierType(), err)
	}
	params, err := orig.Params()
	if err != nil {
		tb.Fatalf("%s: Params after Fit: %v", orig.ClassifierType(), err)
	}
	restored := fresh()
	if err := restored.SetParams(params); err != nil {
		tb.Fatalf("%s: SetParams: %v", orig.ClassifierType(), err)
	}
	if got, want := restored.ClassifierType(), orig.ClassifierType(); got != want {
		tb.Fatalf("restored classifier type %q, want %q", got, want)
	}
	want := orig.PredictProba(xEval)
	got := restored.PredictProba(xEval)
	for i := range want {
		if want[i] != got[i] {
			tb.Fatalf("%s: restored proba[%d] = %v, original %v (must be bitwise identical)",
				orig.ClassifierType(), i, got[i], want[i])
		}
	}
	reexport, err := restored.Params()
	if err != nil {
		tb.Fatalf("%s: re-export: %v", orig.ClassifierType(), err)
	}
	if !bytes.Equal(params, reexport) {
		tb.Fatalf("%s: re-exported params differ from the original export", orig.ClassifierType())
	}
	if err := restored.SetParams([]byte("{not json")); err == nil {
		tb.Fatalf("%s: SetParams accepted malformed JSON", orig.ClassifierType())
	}
}

// Accuracy returns the fraction of probabilities on the correct side
// of 0.5.
func Accuracy(proba []float64, y []int) float64 {
	if len(proba) == 0 {
		return 0
	}
	correct := 0
	for i, p := range proba {
		pred := 0
		if p >= 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(proba))
}
