package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func xorProblem(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		a, b := rng.Intn(2), rng.Intn(2)
		x[i] = []float64{float64(a) + rng.Float64()*0.1, float64(b) + rng.Float64()*0.1}
		y[i] = a ^ b
	}
	return x, y
}

// TestPredictProbaPureAndConcurrent pins the inference-purity contract
// of ml.Classifier that chunked parallel prediction relies on:
// PredictProba must not mutate the network (the training-time layer
// caches must stay untouched), so concurrent calls over disjoint row
// chunks return exactly what one serial call returns. Run under -race
// this also proves the absence of data races on the weights.
func TestPredictProbaPureAndConcurrent(t *testing.T) {
	x, y := xorProblem(200, 1)
	m := NewMLP(MLPConfig{Hidden: []int{8}, Epochs: 60, Seed: 3})
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt, _ := xorProblem(120, 2)
	d := NewDANN(DANNConfig{Seed: 3})
	if err := d.FitDomains(x, y, xt); err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]interface {
		PredictProba([][]float64) []float64
	}{"mlp": m, "dann": d} {
		serial := c.PredictProba(x)
		again := c.PredictProba(x)
		for i := range serial {
			if math.Float64bits(serial[i]) != math.Float64bits(again[i]) {
				t.Fatalf("%s: repeated prediction differs at row %d", name, i)
			}
		}
		// Predict disjoint chunks concurrently on the shared model.
		const chunks = 8
		out := make([]float64, len(x))
		var wg sync.WaitGroup
		size := (len(x) + chunks - 1) / chunks
		for lo := 0; lo < len(x); lo += size {
			hi := lo + size
			if hi > len(x) {
				hi = len(x)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				copy(out[lo:hi], c.PredictProba(x[lo:hi]))
			}(lo, hi)
		}
		wg.Wait()
		for i := range serial {
			if math.Float64bits(out[i]) != math.Float64bits(serial[i]) {
				t.Fatalf("%s: concurrent chunked prediction differs at row %d: %v vs %v",
					name, i, out[i], serial[i])
			}
		}
	}
}
