package nn

import (
	"errors"
	"math/rand"
)

// DANNConfig holds domain-adversarial network hyper-parameters; the
// zero value uses the defaults noted per field.
type DANNConfig struct {
	// EncoderHidden is the shared encoder's output width; 0 means 16.
	EncoderHidden int
	// Lambda scales the reversed domain gradient into the encoder
	// (the gradient reversal coefficient); 0 means 0.5.
	Lambda float64
	// LearningRate for SGD; 0 means 0.05.
	LearningRate float64
	// Epochs over the interleaved source/target stream; 0 means 60.
	Epochs int
	// Seed drives weight init and sample order.
	Seed int64
}

func (c DANNConfig) withDefaults() DANNConfig {
	if c.EncoderHidden == 0 {
		c.EncoderHidden = 16
	}
	if c.Lambda == 0 {
		c.Lambda = 0.5
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	return c
}

// DANN is a domain-adversarial neural network: shared encoder, label
// head trained on labelled source rows, and domain head whose gradient
// is reversed before entering the encoder so that encoded features
// become indistinguishable across domains.
type DANN struct {
	cfg     DANNConfig
	encoder *dense
	label   *dense
	domain  *dense
}

// NewDANN creates an untrained domain-adversarial network.
func NewDANN(cfg DANNConfig) *DANN { return &DANN{cfg: cfg.withDefaults()} }

// FitDomains trains on labelled source rows and unlabelled target
// rows. Each epoch interleaves (a) label steps on source rows and (b)
// domain-discrimination steps on both domains with the reversed
// gradient flowing into the encoder.
func (d *DANN) FitDomains(xSrc [][]float64, ySrc []int, xTgt [][]float64) error {
	if len(xSrc) == 0 {
		return errors.New("nn: no source training data")
	}
	if len(xSrc) != len(ySrc) {
		return errors.New("nn: source rows and labels differ in length")
	}
	dim := len(xSrc[0])
	rng := rand.New(rand.NewSource(d.cfg.Seed))
	d.encoder = newDense(dim, d.cfg.EncoderHidden, true, rng)
	d.label = newDense(d.cfg.EncoderHidden, 1, false, rng)
	d.domain = newDense(d.cfg.EncoderHidden, 1, false, rng)
	lr := d.cfg.LearningRate

	labelStep := func(x []float64, y int) {
		h := d.encoder.forward(x)
		out := d.label.forward(h)
		p := sigmoid(out[0])
		grad := []float64{p - float64(y)}
		gh := d.label.backwardNoUpdate(grad)
		d.label.update(grad, lr)
		d.encoder.backward(gh, lr)
	}

	// domainStep trains the domain head to tell domains apart while the
	// encoder receives the REVERSED gradient scaled by lambda: the head
	// descends its loss, the encoder ascends it.
	domainStep := func(x []float64, dom int) {
		h := d.encoder.forward(x)
		out := d.domain.forward(h)
		p := sigmoid(out[0])
		grad := []float64{p - float64(dom)}
		gh := d.domain.backwardNoUpdate(grad)
		d.domain.update(grad, lr)
		for j := range gh {
			gh[j] = -d.cfg.Lambda * gh[j] // gradient reversal layer
		}
		d.encoder.backward(gh, lr)
	}

	nS, nT := len(xSrc), len(xTgt)
	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		order := rng.Perm(nS)
		for _, i := range order {
			labelStep(xSrc[i], ySrc[i])
			domainStep(xSrc[i], 0)
			if nT > 0 {
				domainStep(xTgt[rng.Intn(nT)], 1)
			}
		}
	}
	return nil
}

// PredictProba returns the label head's match probability per row.
func (d *DANN) PredictProba(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		if d.encoder == nil {
			out[i] = 0.5
			continue
		}
		h := d.encoder.apply(row)
		out[i] = sigmoid(d.label.apply(h)[0])
	}
	return out
}

// DomainProba returns the domain head's P(target | row), used in tests
// to verify that adversarial training actually confuses the domains.
func (d *DANN) DomainProba(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		if d.encoder == nil {
			out[i] = 0.5
			continue
		}
		h := d.encoder.apply(row)
		out[i] = sigmoid(d.domain.apply(h)[0])
	}
	return out
}
