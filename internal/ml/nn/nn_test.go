package nn

import (
	"math"
	"math/rand"
	"testing"

	"transer/internal/ml"
	"transer/internal/ml/mltest"
)

func TestMLPSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(300, 4, 0.12, 1)
	m := NewMLP(MLPConfig{Seed: 1})
	if err := m.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := mltest.Accuracy(m.PredictProba(x), y); acc < 0.95 {
		t.Errorf("training accuracy %.3f", acc)
	}
}

func TestMLPXOR(t *testing.T) {
	x, y := mltest.XOR(600, 0.05, 2)
	m := NewMLP(MLPConfig{Hidden: []int{16}, Epochs: 150, Seed: 2})
	if err := m.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := mltest.Accuracy(m.PredictProba(x), y); acc < 0.9 {
		t.Errorf("XOR accuracy %.3f — MLP must solve non-linear problems", acc)
	}
}

func TestMLPErrorsAndUntrained(t *testing.T) {
	m := NewMLP(MLPConfig{})
	if err := m.Fit(nil, nil); err == nil {
		t.Errorf("empty fit accepted")
	}
	if p := m.PredictProba([][]float64{{0.5}}); p[0] != 0.5 {
		t.Errorf("untrained MLP should predict 0.5, got %v", p[0])
	}
}

func TestMLPDeterministic(t *testing.T) {
	x, y := mltest.TwoBlobs(100, 3, 0.15, 3)
	m1 := NewMLP(MLPConfig{Seed: 7})
	m2 := NewMLP(MLPConfig{Seed: 7})
	if err := m1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m1.PredictProba(x), m2.PredictProba(x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

// shiftedBlobs builds a target domain by translating the source blobs,
// simulating a marginal distribution shift.
func shiftedBlobs(n, dim int, shift float64, seed int64) ([][]float64, []int) {
	x, y := mltest.TwoBlobs(n, dim, 0.1, seed)
	for _, row := range x {
		for j := range row {
			row[j] += shift
			if row[j] > 1 {
				row[j] = 1
			}
		}
	}
	return x, y
}

func TestDANNLearnsLabels(t *testing.T) {
	xs, ys := mltest.TwoBlobs(300, 4, 0.1, 4)
	xt, yt := shiftedBlobs(300, 4, 0.1, 5)
	d := NewDANN(DANNConfig{Seed: 4})
	if err := d.FitDomains(xs, ys, xt); err != nil {
		t.Fatalf("FitDomains: %v", err)
	}
	if acc := mltest.Accuracy(d.PredictProba(xs), ys); acc < 0.9 {
		t.Errorf("source accuracy %.3f", acc)
	}
	if acc := mltest.Accuracy(d.PredictProba(xt), yt); acc < 0.8 {
		t.Errorf("target accuracy %.3f under small shift", acc)
	}
}

func TestDANNDomainConfusion(t *testing.T) {
	// With gradient reversal the domain head should NOT be able to
	// separate the domains sharply: its mean prediction gap between
	// source and target should stay modest.
	xs, ys := mltest.TwoBlobs(300, 4, 0.1, 6)
	xt, _ := shiftedBlobs(300, 4, 0.15, 7)
	d := NewDANN(DANNConfig{Lambda: 1.0, Seed: 6})
	if err := d.FitDomains(xs, ys, xt); err != nil {
		t.Fatal(err)
	}
	mean := func(p []float64) float64 {
		s := 0.0
		for _, v := range p {
			s += v
		}
		return s / float64(len(p))
	}
	gap := math.Abs(mean(d.DomainProba(xt)) - mean(d.DomainProba(xs)))
	if gap > 0.9 {
		t.Errorf("domain head separates domains perfectly (gap %.3f); gradient reversal ineffective", gap)
	}
}

func TestDANNErrors(t *testing.T) {
	d := NewDANN(DANNConfig{})
	if err := d.FitDomains(nil, nil, nil); err == nil {
		t.Errorf("empty source accepted")
	}
	if err := d.FitDomains([][]float64{{1}}, []int{1, 0}, nil); err == nil {
		t.Errorf("length mismatch accepted")
	}
	if p := d.PredictProba([][]float64{{0.1}}); p[0] != 0.5 {
		t.Errorf("untrained DANN should predict 0.5")
	}
	if p := d.DomainProba([][]float64{{0.1}}); p[0] != 0.5 {
		t.Errorf("untrained DANN domain head should predict 0.5")
	}
}

func TestDANNNoTargetStillTrains(t *testing.T) {
	xs, ys := mltest.TwoBlobs(200, 3, 0.1, 8)
	d := NewDANN(DANNConfig{Seed: 8})
	if err := d.FitDomains(xs, ys, nil); err != nil {
		t.Fatalf("FitDomains without target: %v", err)
	}
	if acc := mltest.Accuracy(d.PredictProba(xs), ys); acc < 0.9 {
		t.Errorf("source accuracy %.3f without target rows", acc)
	}
}

func TestDenseBackpropGradient(t *testing.T) {
	// Numerical gradient check on a tiny network: loss = 0.5*(out-1)^2.
	l := newDense(2, 1, false, rand.New(rand.NewSource(9)))
	x := []float64{0.3, 0.7}
	forwardLoss := func() float64 {
		out := l.forward(x)
		d := out[0] - 1
		return 0.5 * d * d
	}
	base := forwardLoss()
	_ = base
	out := l.forward(x)
	grad := []float64{out[0] - 1}
	// Analytic input gradient.
	gIn := l.backwardNoUpdate(grad)
	// Numerical input gradient.
	eps := 1e-6
	for j := range x {
		orig := x[j]
		x[j] = orig + eps
		up := forwardLoss()
		x[j] = orig - eps
		down := forwardLoss()
		x[j] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-gIn[j]) > 1e-4 {
			t.Errorf("input gradient %d: analytic %v vs numeric %v", j, gIn[j], num)
		}
	}
}

func BenchmarkMLPFit(b *testing.B) {
	x, y := mltest.TwoBlobs(500, 8, 0.15, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMLP(MLPConfig{Epochs: 20, Seed: int64(i)})
		if err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMLPParamsRoundTrip(t *testing.T) {
	mltest.CheckParamRoundTrip(t, func() ml.ParamClassifier { return NewMLP(MLPConfig{Seed: 3, Epochs: 20}) }, 7)
}
