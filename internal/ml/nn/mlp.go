package nn

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"transer/internal/ml"
)

// MLPConfig holds multilayer perceptron hyper-parameters; the zero
// value uses the defaults noted per field.
type MLPConfig struct {
	// Hidden layer widths; nil means [16].
	Hidden []int
	// LearningRate for SGD; 0 means 0.05.
	LearningRate float64
	// Epochs over the training data; 0 means 80.
	Epochs int
	// Seed drives weight init and sample order.
	Seed int64
}

func (c MLPConfig) withDefaults() MLPConfig {
	if c.Hidden == nil {
		c.Hidden = []int{16}
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Epochs == 0 {
		c.Epochs = 80
	}
	return c
}

// MLP is a feed-forward binary classifier with sigmoid output trained
// on cross-entropy loss by SGD.
type MLP struct {
	cfg    MLPConfig
	layers stack
}

// NewMLP creates an untrained MLP.
func NewMLP(cfg MLPConfig) *MLP { return &MLP{cfg: cfg.withDefaults()} }

// MLPFactory returns an ml.Factory producing MLPs with this config.
func MLPFactory(cfg MLPConfig) ml.Factory {
	return func() ml.Classifier { return NewMLP(cfg) }
}

// Fit trains the network by per-sample SGD.
func (m *MLP) Fit(x [][]float64, y []int) error {
	dim, err := ml.ValidateTrainingData(x, y)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	m.layers = nil
	prev := dim
	for _, h := range m.cfg.Hidden {
		m.layers = append(m.layers, newDense(prev, h, true, rng))
		prev = h
	}
	m.layers = append(m.layers, newDense(prev, 1, false, rng))

	n := len(x)
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		for _, i := range rng.Perm(n) {
			out := m.layers.forward(x[i])
			p := sigmoid(out[0])
			// dCE/dlogit = p - y
			m.layers.backward([]float64{p - float64(y[i])}, m.cfg.LearningRate)
		}
	}
	return nil
}

// ClassifierType implements ml.ParamClassifier.
func (m *MLP) ClassifierType() string { return "mlp" }

// MLPParams is the serialised state of a trained MLP: the configuration
// and every layer's weights in input-to-output order.
type MLPParams struct {
	Config MLPConfig     `json:"config"`
	Layers []LayerParams `json:"layers"`
}

// Params implements ml.ParamClassifier.
func (m *MLP) Params() ([]byte, error) {
	if m.layers == nil {
		return nil, ml.ErrNotTrained
	}
	p := MLPParams{Config: m.cfg, Layers: make([]LayerParams, len(m.layers))}
	for i, l := range m.layers {
		p.Layers[i] = l.params()
	}
	return json.Marshal(p)
}

// SetParams implements ml.ParamClassifier.
func (m *MLP) SetParams(b []byte) error {
	var p MLPParams
	if err := json.Unmarshal(b, &p); err != nil {
		return fmt.Errorf("nn: mlp params: %w", err)
	}
	if len(p.Layers) == 0 {
		return fmt.Errorf("nn: mlp params carry no layers")
	}
	layers := make(stack, len(p.Layers))
	for i, lp := range p.Layers {
		l, err := denseFromParams(lp)
		if err != nil {
			return fmt.Errorf("nn: mlp layer %d: %w", i, err)
		}
		if i > 0 && l.in != layers[i-1].out {
			return fmt.Errorf("nn: mlp layer %d expects %d inputs, previous layer emits %d", i, l.in, layers[i-1].out)
		}
		layers[i] = l
	}
	if last := layers[len(layers)-1]; last.out != 1 {
		return fmt.Errorf("nn: mlp output layer emits %d units, want 1", last.out)
	}
	m.cfg = p.Config.withDefaults()
	m.layers = layers
	return nil
}

// PredictProba returns the sigmoid output per row.
func (m *MLP) PredictProba(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		if m.layers == nil {
			out[i] = 0.5
			continue
		}
		out[i] = sigmoid(m.layers.apply(row)[0])
	}
	return out
}
