// Package nn implements small feed-forward neural networks with
// manual backpropagation: a plain MLP classifier and a
// domain-adversarial network (DANN) with a gradient reversal layer.
// The DANN is the transfer mechanism behind the DTAL* baseline (Kasai
// et al., 2019): a shared encoder feeds a label head trained on source
// labels and a domain head whose gradient is reversed into the
// encoder, pushing the encoder towards domain-invariant features.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// dense is one fully connected layer with optional ReLU activation.
type dense struct {
	in, out int
	w       []float64 // out*in, row-major per output unit
	b       []float64
	relu    bool

	// cached forward pass values for backprop
	lastIn  []float64
	lastPre []float64 // pre-activation
}

func newDense(in, out int, relu bool, rng *rand.Rand) *dense {
	d := &dense{in: in, out: out, relu: relu,
		w: make([]float64, in*out), b: make([]float64, out)}
	// He initialisation keeps ReLU activations well scaled.
	scale := math.Sqrt(2 / float64(in))
	for i := range d.w {
		d.w[i] = rng.NormFloat64() * scale
	}
	return d
}

// forward computes the layer output, caching inputs for backward.
func (d *dense) forward(x []float64) []float64 {
	d.lastIn = x
	if cap(d.lastPre) < d.out {
		d.lastPre = make([]float64, d.out)
	}
	d.lastPre = d.lastPre[:d.out]
	out := make([]float64, d.out)
	for o := 0; o < d.out; o++ {
		z := d.b[o]
		row := d.w[o*d.in : (o+1)*d.in]
		for j, v := range x {
			z += row[j] * v
		}
		d.lastPre[o] = z
		if d.relu && z < 0 {
			z = 0
		}
		out[o] = z
	}
	return out
}

// apply computes the layer output without caching backprop state.
// forward is for training only; inference must go through apply so
// that PredictProba stays pure and safe for concurrent row chunks.
func (d *dense) apply(x []float64) []float64 {
	out := make([]float64, d.out)
	for o := 0; o < d.out; o++ {
		z := d.b[o]
		row := d.w[o*d.in : (o+1)*d.in]
		for j, v := range x {
			z += row[j] * v
		}
		if d.relu && z < 0 {
			z = 0
		}
		out[o] = z
	}
	return out
}

// backward consumes dLoss/dOut, applies an SGD step with the given
// learning rate, and returns dLoss/dIn.
func (d *dense) backward(gradOut []float64, lr float64) []float64 {
	gradIn := make([]float64, d.in)
	for o := 0; o < d.out; o++ {
		g := gradOut[o]
		if d.relu && d.lastPre[o] <= 0 {
			continue
		}
		row := d.w[o*d.in : (o+1)*d.in]
		for j, v := range d.lastIn {
			gradIn[j] += row[j] * g
			row[j] -= lr * g * v
		}
		d.b[o] -= lr * g
	}
	return gradIn
}

// backwardNoUpdate returns dLoss/dIn without touching the weights;
// used when a head's gradient must flow into the encoder scaled
// separately (gradient reversal).
func (d *dense) backwardNoUpdate(gradOut []float64) []float64 {
	gradIn := make([]float64, d.in)
	for o := 0; o < d.out; o++ {
		g := gradOut[o]
		if d.relu && d.lastPre[o] <= 0 {
			continue
		}
		row := d.w[o*d.in : (o+1)*d.in]
		for j := range d.lastIn {
			gradIn[j] += row[j] * g
		}
	}
	return gradIn
}

// update applies the SGD step that backwardNoUpdate skipped.
func (d *dense) update(gradOut []float64, lr float64) {
	for o := 0; o < d.out; o++ {
		g := gradOut[o]
		if d.relu && d.lastPre[o] <= 0 {
			continue
		}
		row := d.w[o*d.in : (o+1)*d.in]
		for j, v := range d.lastIn {
			row[j] -= lr * g * v
		}
		d.b[o] -= lr * g
	}
}

// LayerParams is the serialised state of one dense layer.
type LayerParams struct {
	In   int       `json:"in"`
	Out  int       `json:"out"`
	ReLU bool      `json:"relu"`
	W    []float64 `json:"w"`
	B    []float64 `json:"b"`
}

// params exports the layer's weights for model serialisation.
func (d *dense) params() LayerParams {
	return LayerParams{In: d.in, Out: d.out, ReLU: d.relu, W: d.w, B: d.b}
}

// denseFromParams restores a layer from exported weights.
func denseFromParams(p LayerParams) (*dense, error) {
	if p.In < 1 || p.Out < 1 {
		return nil, fmt.Errorf("nn: layer dims %dx%d", p.In, p.Out)
	}
	if len(p.W) != p.In*p.Out || len(p.B) != p.Out {
		return nil, fmt.Errorf("nn: layer %dx%d has %d weights and %d biases", p.In, p.Out, len(p.W), len(p.B))
	}
	return &dense{in: p.In, out: p.Out, relu: p.ReLU, w: p.W, b: p.B}, nil
}

// stack is a sequence of dense layers.
type stack []*dense

func (s stack) forward(x []float64) []float64 {
	for _, l := range s {
		x = l.forward(x)
	}
	return x
}

func (s stack) apply(x []float64) []float64 {
	for _, l := range s {
		x = l.apply(x)
	}
	return x
}

func (s stack) backward(grad []float64, lr float64) []float64 {
	for i := len(s) - 1; i >= 0; i-- {
		grad = s[i].backward(grad, lr)
	}
	return grad
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}
