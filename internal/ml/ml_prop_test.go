package ml_test

// Property suite for the classifier layer, driven by internal/testkit.
// The shared invariants hold for every classifier behind ml.Classifier
// (row independence, determinism, probability bounds); the power-of-two
// scale invariance is asserted only for the classifiers whose decision
// functions are provably scale-free — trees and forests (count-based
// Gini gains over value *order*, midpoint thresholds that scale
// exactly) and unweighted k-NN (neighbour order and vote fractions).
// Multiplication by 2^k is exact in IEEE-754, so those assertions are
// bitwise, with no tolerances.

import (
	"math"
	"testing"

	"transer/internal/ml"
	"transer/internal/ml/bayes"
	"transer/internal/ml/forest"
	"transer/internal/ml/knn"
	"transer/internal/ml/logreg"
	"transer/internal/ml/svm"
	"transer/internal/ml/tree"
	"transer/internal/testkit"
)

// factories lists every classifier under the shared invariants.
func factories() map[string]ml.Factory {
	return map[string]ml.Factory{
		"tree":   tree.Factory(tree.Config{Seed: 1}),
		"forest": forest.Factory(forest.Config{NumTrees: 8, Seed: 1}),
		"knn":    knn.Factory(knn.Config{K: 5}),
		"svm":    svm.Factory(svm.Config{}),
		"logreg": logreg.Factory(logreg.Config{}),
		"bayes":  bayes.Factory(bayes.Config{}),
	}
}

// scaleFreeFactories lists the classifiers that must be exactly
// invariant under uniform power-of-two feature scaling.
func scaleFreeFactories() map[string]ml.Factory {
	return map[string]ml.Factory{
		"tree":   tree.Factory(tree.Config{Seed: 1}),
		"forest": forest.Factory(forest.Config{NumTrees: 8, Seed: 1}),
		"knn":    knn.Factory(knn.Config{K: 5}),
	}
}

func fitOn(pt *testkit.T, f ml.Factory, x [][]float64, y []int) ml.Classifier {
	c := f()
	if err := c.Fit(x, y); err != nil {
		pt.Fatalf("Fit: %v", err)
	}
	return c
}

// TestClassifierProbaBoundsAndDeterminism: every classifier emits one
// probability per row, inside [0, 1], NaN-free, and identically on a
// second train-and-predict cycle (classifiers are pure functions of
// their training set and config).
func TestClassifierProbaBoundsAndDeterminism(t *testing.T) {
	for name, f := range factories() {
		f := f
		testkit.Run(t, "ml/"+name+"/bounds-determinism", 8, func(pt *testkit.T) {
			d := testkit.NewDomain(pt.Rng, pt.Size)
			proba := fitOn(pt, f, d.XS, d.YS).PredictProba(d.XT)
			if len(proba) != len(d.XT) {
				pt.Fatalf("%d probabilities for %d rows", len(proba), len(d.XT))
			}
			for i, p := range proba {
				if math.IsNaN(p) || p < 0 || p > 1 {
					pt.Fatalf("probability %v at row %d outside [0,1]", p, i)
				}
			}
			again := fitOn(pt, f, d.XS, d.YS).PredictProba(d.XT)
			if !testkit.EqualFloats(proba, again) {
				pt.Errorf("two train/predict cycles disagree")
			}
		})
	}
}

// TestClassifierRowIndependence: PredictProba computes rows
// independently (the ml.Classifier contract ParallelProba relies on),
// so permuting the prediction rows must permute the output, and equal
// rows must get equal probabilities.
func TestClassifierRowIndependence(t *testing.T) {
	for name, f := range factories() {
		f := f
		testkit.Run(t, "ml/"+name+"/row-independence", 8, func(pt *testkit.T) {
			d := testkit.NewDomain(pt.Rng, pt.Size)
			c := fitOn(pt, f, d.XS, d.YS)
			// Inject duplicate prediction rows.
			for k := 0; k < len(d.XT)/4; k++ {
				d.XT[pt.Rng.Intn(len(d.XT))] = d.XT[pt.Rng.Intn(len(d.XT))]
			}
			base := c.PredictProba(d.XT)
			p := testkit.Perm(pt.Rng, len(d.XT))
			perm := c.PredictProba(testkit.Permute(p, d.XT))
			if !testkit.EqualFloats(perm, testkit.Permute(p, base)) {
				pt.Errorf("prediction not equivariant under row permutation")
			}
			for i := range d.XT {
				for j := i + 1; j < len(d.XT); j++ {
					if testkit.RowsEqual(d.XT[i], d.XT[j]) && base[i] != base[j] {
						pt.Errorf("equal rows %d and %d got probabilities %v and %v",
							i, j, base[i], base[j])
						return
					}
				}
			}
		})
	}
}

// TestScaleFreeClassifiersPow2Invariance: training and predicting on
// features scaled by 2^k yields bitwise identical probabilities for
// the order-based classifiers.
func TestScaleFreeClassifiersPow2Invariance(t *testing.T) {
	for name, f := range scaleFreeFactories() {
		f := f
		testkit.Run(t, "ml/"+name+"/pow2-invariance", 8, func(pt *testkit.T) {
			d := testkit.NewDomain(pt.Rng, pt.Size)
			base := fitOn(pt, f, d.XS, d.YS).PredictProba(d.XT)
			k := []int{-3, -1, 2, 4}[pt.Rng.Intn(4)]
			scaled := fitOn(pt, f, testkit.ScalePow2(d.XS, k), d.YS).
				PredictProba(testkit.ScalePow2(d.XT, k))
			if !testkit.EqualFloats(base, scaled) {
				pt.Errorf("predictions changed under uniform 2^%d feature scaling", k)
			}
		})
	}
}

// TestLabelsThresholdIdentities: ml.Labels is exact thresholding, and
// the positive count is non-increasing as the threshold rises.
func TestLabelsThresholdIdentities(t *testing.T) {
	testkit.Run(t, "ml/labels-threshold", 10, func(pt *testkit.T) {
		n := pt.Size * 4
		proba := make([]float64, n)
		for i := range proba {
			proba[i] = pt.Rng.Float64()
		}
		prev := -1
		for _, thr := range []float64{0, 0.25, 0.5, 0.75, 1} {
			labels := ml.Labels(proba, thr)
			ones := 0
			for i, l := range labels {
				want := 0
				if proba[i] >= thr {
					want = 1
				}
				if l != want {
					pt.Fatalf("label %d for probability %v at threshold %v", l, proba[i], thr)
				}
				ones += l
			}
			if prev >= 0 && ones > prev {
				pt.Fatalf("positive count rose from %d to %d as the threshold rose", prev, ones)
			}
			prev = ones
		}
	})
}

// TestConfidenceIdentity: ml.Confidence is max(p, 1-p), lands in
// [0.5, 1] for p in [0, 1], and is symmetric around p = 0.5.
func TestConfidenceIdentity(t *testing.T) {
	testkit.Run(t, "ml/confidence-identity", 10, func(pt *testkit.T) {
		for i := 0; i < pt.Size*4; i++ {
			p := pt.Rng.Float64()
			z := ml.Confidence(p)
			if z != math.Max(p, 1-p) {
				pt.Fatalf("Confidence(%v) = %v, want max(p, 1-p) = %v", p, z, math.Max(p, 1-p))
			}
			if z < 0.5 || z > 1 {
				pt.Fatalf("Confidence(%v) = %v outside [0.5, 1]", p, z)
			}
			if zz := ml.Confidence(1 - p); zz != z {
				pt.Fatalf("Confidence not symmetric: f(%v)=%v, f(%v)=%v", p, z, 1-p, zz)
			}
		}
	})
}

// TestParallelProbaAgreesAcrossWorkerCounts: chunked parallel
// prediction must be bitwise identical to the serial call for every
// worker count, including above the parallel dispatch threshold.
func TestParallelProbaAgreesAcrossWorkerCounts(t *testing.T) {
	testkit.Run(t, "ml/parallel-proba", 4, func(pt *testkit.T) {
		d := testkit.NewDomain(pt.Rng, pt.Size)
		c := fitOn(pt, tree.Factory(tree.Config{Seed: 1}), d.XS, d.YS)
		// Tile the target past the parallel threshold so chunked
		// dispatch actually happens.
		big := make([][]float64, 0, 600)
		for len(big) < 600 {
			big = append(big, d.XT...)
		}
		serial := c.PredictProba(big)
		for _, w := range []int{1, 2, 3, 7} {
			if got := ml.ParallelProba(c, big, w); !testkit.EqualFloats(got, serial) {
				pt.Fatalf("ParallelProba with %d workers differs from serial", w)
			}
		}
	})
}

// TestFitWithFallbackSingleClass: single-class training data must fall
// back to a constant classifier predicting that class.
func TestFitWithFallbackSingleClass(t *testing.T) {
	testkit.Run(t, "ml/fit-fallback", 8, func(pt *testkit.T) {
		label := pt.Rng.Intn(2)
		x := testkit.Matrix(pt.Rng, pt.Size+4, 3)
		y := make([]int, len(x))
		for i := range y {
			y[i] = label
		}
		c, err := ml.FitWithFallback(tree.Factory(tree.Config{Seed: 1}), x, y)
		if err != nil {
			pt.Fatalf("FitWithFallback: %v", err)
		}
		for _, p := range c.PredictProba(x[:2]) {
			if p != float64(label) {
				pt.Fatalf("fallback predicts %v for single-class label %d", p, label)
			}
		}
	})
}
