// Package bayes implements a Gaussian naive Bayes binary classifier —
// a classic ER match classifier (the Fellegi-Sunter model is naive
// Bayes over comparison features). Each feature is modelled as a
// per-class normal distribution; variances are floored to keep the
// likelihood finite on constant (often exactly-1.0 or 0.0 similarity)
// features.
package bayes

import (
	"encoding/json"
	"fmt"
	"math"

	"transer/internal/ml"
)

// Config holds naive Bayes hyper-parameters.
type Config struct {
	// VarFloor is the minimum per-feature variance; 0 means 1e-3.
	VarFloor float64
}

func (c Config) withDefaults() Config {
	if c.VarFloor == 0 {
		c.VarFloor = 1e-3
	}
	return c
}

// Bayes is a trained Gaussian naive Bayes classifier.
type Bayes struct {
	cfg Config
	// per class: prior, feature means and variances
	logPrior [2]float64
	mean     [2][]float64
	variance [2][]float64
	trained  bool
}

// New creates an untrained classifier.
func New(cfg Config) *Bayes { return &Bayes{cfg: cfg.withDefaults()} }

// Factory returns an ml.Factory producing classifiers with this
// config.
func Factory(cfg Config) ml.Factory {
	return func() ml.Classifier { return New(cfg) }
}

// Fit estimates class priors and per-feature Gaussians.
func (b *Bayes) Fit(x [][]float64, y []int) error {
	dim, err := ml.ValidateTrainingData(x, y)
	if err != nil {
		return err
	}
	var count [2]int
	for c := 0; c < 2; c++ {
		b.mean[c] = make([]float64, dim)
		b.variance[c] = make([]float64, dim)
	}
	for i, row := range x {
		c := y[i]
		count[c]++
		for j, v := range row {
			b.mean[c][j] += v
		}
	}
	for c := 0; c < 2; c++ {
		for j := range b.mean[c] {
			b.mean[c][j] /= float64(count[c])
		}
	}
	for i, row := range x {
		c := y[i]
		for j, v := range row {
			d := v - b.mean[c][j]
			b.variance[c][j] += d * d
		}
	}
	n := float64(len(x))
	for c := 0; c < 2; c++ {
		b.logPrior[c] = math.Log(float64(count[c]) / n)
		for j := range b.variance[c] {
			b.variance[c][j] /= float64(count[c])
			if b.variance[c][j] < b.cfg.VarFloor {
				b.variance[c][j] = b.cfg.VarFloor
			}
		}
	}
	b.trained = true
	return nil
}

// ClassifierType implements ml.ParamClassifier.
func (b *Bayes) ClassifierType() string { return "bayes" }

// Params is the serialised state of a trained Bayes classifier.
type Params struct {
	Config   Config       `json:"config"`
	LogPrior [2]float64   `json:"log_prior"`
	Mean     [2][]float64 `json:"mean"`
	Variance [2][]float64 `json:"variance"`
}

// Params implements ml.ParamClassifier.
func (b *Bayes) Params() ([]byte, error) {
	if !b.trained {
		return nil, ml.ErrNotTrained
	}
	return json.Marshal(Params{Config: b.cfg, LogPrior: b.logPrior, Mean: b.mean, Variance: b.variance})
}

// SetParams implements ml.ParamClassifier.
func (b *Bayes) SetParams(buf []byte) error {
	var p Params
	if err := json.Unmarshal(buf, &p); err != nil {
		return fmt.Errorf("bayes: params: %w", err)
	}
	for c := 0; c < 2; c++ {
		if len(p.Mean[c]) == 0 || len(p.Mean[c]) != len(p.Variance[c]) {
			return fmt.Errorf("bayes: class %d has %d means but %d variances", c, len(p.Mean[c]), len(p.Variance[c]))
		}
	}
	b.cfg = p.Config.withDefaults()
	b.logPrior = p.LogPrior
	b.mean = p.Mean
	b.variance = p.Variance
	b.trained = true
	return nil
}

// PredictProba returns P(match | row) under the Gaussian model.
func (b *Bayes) PredictProba(x [][]float64) []float64 {
	out := make([]float64, len(x))
	if !b.trained {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for i, row := range x {
		var ll [2]float64
		for c := 0; c < 2; c++ {
			ll[c] = b.logPrior[c]
			for j, v := range row {
				d := v - b.mean[c][j]
				ll[c] += -0.5*math.Log(2*math.Pi*b.variance[c][j]) - d*d/(2*b.variance[c][j])
			}
		}
		// p = 1 / (1 + exp(ll0 - ll1)) computed stably.
		diff := ll[0] - ll[1]
		switch {
		case diff > 500:
			out[i] = 0
		case diff < -500:
			out[i] = 1
		default:
			out[i] = 1 / (1 + math.Exp(diff))
		}
	}
	return out
}
