package bayes

import (
	"errors"
	"testing"

	"transer/internal/ml"
	"transer/internal/ml/mltest"
)

func TestBayesSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(300, 4, 0.12, 1)
	b := New(Config{})
	if err := b.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := mltest.Accuracy(b.PredictProba(x), y); acc < 0.95 {
		t.Errorf("training accuracy %.3f", acc)
	}
}

func TestBayesErrorsAndUntrained(t *testing.T) {
	b := New(Config{})
	if err := b.Fit(nil, nil); !errors.Is(err, ml.ErrNoTrainingData) {
		t.Errorf("empty fit error = %v", err)
	}
	if err := b.Fit([][]float64{{1}, {0}}, []int{1, 1}); !errors.Is(err, ml.ErrSingleClass) {
		t.Errorf("single class error = %v", err)
	}
	if p := b.PredictProba([][]float64{{0.5}}); p[0] != 0.5 {
		t.Errorf("untrained should predict 0.5, got %v", p[0])
	}
}

func TestBayesConstantFeature(t *testing.T) {
	// A feature that is identical in both classes must not blow up the
	// likelihood (variance floor).
	x := [][]float64{{1, 0.1}, {1, 0.2}, {1, 0.8}, {1, 0.9}}
	y := []int{0, 0, 1, 1}
	b := New(Config{})
	if err := b.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	p := b.PredictProba([][]float64{{1, 0.85}, {1, 0.15}})
	if p[0] < 0.5 || p[1] > 0.5 {
		t.Errorf("predictions wrong: %v", p)
	}
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("probability %v out of range", v)
		}
	}
}

func TestBayesExtremeLogOdds(t *testing.T) {
	// Far-away points should saturate to 0/1 without NaN.
	x, y := mltest.TwoBlobs(100, 2, 0.05, 2)
	b := New(Config{})
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p := b.PredictProba([][]float64{{100, 100}, {-100, -100}})
	if p[0] != 1 && p[0] != 0 { // whichever class wins must saturate
		if p[0] > 1e-12 && p[0] < 1-1e-12 {
			t.Errorf("expected saturated probability, got %v", p[0])
		}
	}
}

func TestBayesPriorInfluence(t *testing.T) {
	// With an extreme class prior, a mid-point leans to the majority.
	var x [][]float64
	var y []int
	for i := 0; i < 95; i++ {
		x = append(x, []float64{0.4})
		y = append(y, 0)
	}
	for i := 0; i < 5; i++ {
		x = append(x, []float64{0.6})
		y = append(y, 1)
	}
	b := New(Config{VarFloor: 0.05})
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p := b.PredictProba([][]float64{{0.5}})
	if p[0] >= 0.5 {
		t.Errorf("prior should pull the midpoint to non-match, got %v", p[0])
	}
}

func BenchmarkBayesFit(b *testing.B) {
	x, y := mltest.TwoBlobs(1000, 8, 0.15, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(Config{})
		if err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBayesParamsRoundTrip(t *testing.T) {
	mltest.CheckParamRoundTrip(t, func() ml.ParamClassifier { return New(Config{}) }, 7)
}
