// Package tree implements a CART-style binary decision tree classifier
// with Gini impurity splits. Leaf probabilities are Laplace-smoothed
// class fractions, which gives the graded confidence scores TransER's
// pseudo-label generator relies on.
package tree

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"transer/internal/ml"
)

// Config holds decision tree hyper-parameters. The zero value is
// usable: it is replaced by the defaults below.
type Config struct {
	// MaxDepth limits tree depth; 0 means 12.
	MaxDepth int
	// MinLeaf is the minimum number of samples per leaf; 0 means 2.
	MinLeaf int
	// MaxFeatures limits the number of features considered per split
	// (sampled without replacement); 0 means all features. Random
	// forests set this to sqrt(m).
	MaxFeatures int
	// Seed drives feature subsampling when MaxFeatures > 0.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxDepth == 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 2
	}
	return c
}

// Tree is a trained decision tree classifier.
type Tree struct {
	cfg  Config
	rng  *rand.Rand
	root *node
	dim  int
}

type node struct {
	// Leaf fields.
	leaf  bool
	proba float64
	// Split fields.
	feature     int
	threshold   float64
	left, right *node
}

// New creates an untrained tree with the given configuration.
func New(cfg Config) *Tree {
	cfg = cfg.withDefaults()
	return &Tree{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Factory returns an ml.Factory producing trees with this config.
func Factory(cfg Config) ml.Factory {
	return func() ml.Classifier { return New(cfg) }
}

// Fit grows the tree on x, y.
func (t *Tree) Fit(x [][]float64, y []int) error {
	dim, err := ml.ValidateTrainingData(x, y)
	if err != nil {
		return err
	}
	t.dim = dim
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(x, y, idx, 0)
	return nil
}

// FitBootstrap grows the tree on a provided index multiset (used by
// random forests to pass bagged samples without copying rows). It
// bypasses the single-class error: a single-class bag yields a
// single-leaf tree.
func (t *Tree) FitBootstrap(x [][]float64, y []int, idx []int) error {
	if len(x) == 0 || len(idx) == 0 {
		return ml.ErrNoTrainingData
	}
	t.dim = len(x[0])
	t.root = t.grow(x, y, idx, 0)
	return nil
}

func leafProba(y []int, idx []int) float64 {
	if len(idx) == 0 {
		return 0.5
	}
	ones := 0
	for _, i := range idx {
		ones += y[i]
	}
	// Raw class fractions, matching scikit-learn: pure leaves emit hard
	// 0/1 probabilities, which keeps confidence thresholds like
	// TransER's t_p = 0.99 attainable.
	return float64(ones) / float64(len(idx))
}

func (t *Tree) grow(x [][]float64, y []int, idx []int, depth int) *node {
	ones := 0
	for _, i := range idx {
		ones += y[i]
	}
	pure := ones == 0 || ones == len(idx)
	if pure || depth >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinLeaf {
		return &node{leaf: true, proba: leafProba(y, idx)}
	}
	feat, thr, ok := t.bestSplit(x, y, idx)
	if !ok {
		return &node{leaf: true, proba: leafProba(y, idx)}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.cfg.MinLeaf || len(right) < t.cfg.MinLeaf {
		return &node{leaf: true, proba: leafProba(y, idx)}
	}
	return &node{
		feature:   feat,
		threshold: thr,
		left:      t.grow(x, y, left, depth+1),
		right:     t.grow(x, y, right, depth+1),
	}
}

// bestSplit finds the (feature, threshold) pair minimising weighted
// Gini impurity over candidate features.
func (t *Tree) bestSplit(x [][]float64, y []int, idx []int) (feat int, thr float64, ok bool) {
	features := t.candidateFeatures()
	bestGini := gini(y, idx) // must strictly improve on the parent
	type fv struct {
		v float64
		y int
	}
	vals := make([]fv, 0, len(idx))
	for _, f := range features {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, fv{x[i][f], y[i]})
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		totalOnes := 0
		for _, v := range vals {
			totalOnes += v.y
		}
		n := len(vals)
		leftOnes := 0
		for i := 0; i < n-1; i++ {
			leftOnes += vals[i].y
			if vals[i].v == vals[i+1].v {
				continue // can only split between distinct values
			}
			nl := i + 1
			nr := n - nl
			gl := giniCounts(leftOnes, nl)
			gr := giniCounts(totalOnes-leftOnes, nr)
			g := (float64(nl)*gl + float64(nr)*gr) / float64(n)
			if g < bestGini-1e-12 {
				bestGini = g
				feat = f
				thr = (vals[i].v + vals[i+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func (t *Tree) candidateFeatures() []int {
	all := make([]int, t.dim)
	for i := range all {
		all[i] = i
	}
	if t.cfg.MaxFeatures <= 0 || t.cfg.MaxFeatures >= t.dim {
		return all
	}
	t.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	sub := all[:t.cfg.MaxFeatures]
	sort.Ints(sub)
	return sub
}

func gini(y []int, idx []int) float64 {
	ones := 0
	for _, i := range idx {
		ones += y[i]
	}
	return giniCounts(ones, len(idx))
}

func giniCounts(ones, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(ones) / float64(n)
	return 2 * p * (1 - p)
}

// PredictProba returns the leaf match probability for each row.
func (t *Tree) PredictProba(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = t.predictOne(row)
	}
	return out
}

func (t *Tree) predictOne(row []float64) float64 {
	n := t.root
	if n == nil {
		return 0.5
	}
	for !n.leaf {
		if row[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.proba
}

// ClassifierType implements ml.ParamClassifier.
func (t *Tree) ClassifierType() string { return "dtree" }

// NodeParams is the serialised form of one tree node: either a leaf
// (Leaf true, Proba set) or an internal split with two children.
type NodeParams struct {
	Leaf      bool        `json:"leaf,omitempty"`
	Proba     float64     `json:"proba,omitempty"`
	Feature   int         `json:"feature,omitempty"`
	Threshold float64     `json:"threshold,omitempty"`
	Left      *NodeParams `json:"left,omitempty"`
	Right     *NodeParams `json:"right,omitempty"`
}

// Params is the serialised state of a trained Tree.
type Params struct {
	Config Config      `json:"config"`
	Dim    int         `json:"dim"`
	Root   *NodeParams `json:"root"`
}

func nodeParams(n *node) *NodeParams {
	if n == nil {
		return nil
	}
	if n.leaf {
		return &NodeParams{Leaf: true, Proba: n.proba}
	}
	return &NodeParams{
		Feature:   n.feature,
		Threshold: n.threshold,
		Left:      nodeParams(n.left),
		Right:     nodeParams(n.right),
	}
}

func nodeFromParams(p *NodeParams, dim int) (*node, error) {
	if p == nil {
		return nil, fmt.Errorf("tree: missing node")
	}
	if p.Leaf {
		return &node{leaf: true, proba: p.Proba}, nil
	}
	if p.Feature < 0 || p.Feature >= dim {
		return nil, fmt.Errorf("tree: split feature %d out of range [0,%d)", p.Feature, dim)
	}
	left, err := nodeFromParams(p.Left, dim)
	if err != nil {
		return nil, err
	}
	right, err := nodeFromParams(p.Right, dim)
	if err != nil {
		return nil, err
	}
	return &node{feature: p.Feature, threshold: p.Threshold, left: left, right: right}, nil
}

// Params implements ml.ParamClassifier.
func (t *Tree) Params() ([]byte, error) {
	if t.root == nil {
		return nil, ml.ErrNotTrained
	}
	return json.Marshal(Params{Config: t.cfg, Dim: t.dim, Root: nodeParams(t.root)})
}

// SetParams implements ml.ParamClassifier. Prediction walks only the
// restored node structure, so the RNG (a fit-time concern) is reset.
func (t *Tree) SetParams(b []byte) error {
	var p Params
	if err := json.Unmarshal(b, &p); err != nil {
		return fmt.Errorf("tree: params: %w", err)
	}
	if p.Dim < 1 {
		return fmt.Errorf("tree: params dim %d", p.Dim)
	}
	root, err := nodeFromParams(p.Root, p.Dim)
	if err != nil {
		return err
	}
	cfg := p.Config.withDefaults()
	t.cfg = cfg
	t.rng = rand.New(rand.NewSource(cfg.Seed))
	t.dim = p.Dim
	t.root = root
	return nil
}

// Depth returns the depth of the trained tree (0 for a single leaf).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	dl, dr := depth(n.left), depth(n.right)
	if dl > dr {
		return dl + 1
	}
	return dr + 1
}
