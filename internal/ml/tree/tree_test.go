package tree

import (
	"errors"
	"strings"
	"testing"

	"transer/internal/ml"
	"transer/internal/ml/mltest"
)

func TestTreeSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(200, 4, 0.1, 1)
	tr := New(Config{})
	if err := tr.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := mltest.Accuracy(tr.PredictProba(x), y); acc < 0.95 {
		t.Errorf("training accuracy %.3f on separable data", acc)
	}
}

func TestTreeXOR(t *testing.T) {
	x, y := mltest.XOR(400, 0.05, 2)
	tr := New(Config{})
	if err := tr.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := mltest.Accuracy(tr.PredictProba(x), y); acc < 0.9 {
		t.Errorf("XOR accuracy %.3f — tree should handle non-linear splits", acc)
	}
}

func TestTreeErrors(t *testing.T) {
	tr := New(Config{})
	if err := tr.Fit(nil, nil); !errors.Is(err, ml.ErrNoTrainingData) {
		t.Errorf("empty fit error = %v", err)
	}
	if err := tr.Fit([][]float64{{1}, {2}}, []int{1, 1}); !errors.Is(err, ml.ErrSingleClass) {
		t.Errorf("single class error = %v", err)
	}
}

func TestTreeUntrainedPredicts(t *testing.T) {
	tr := New(Config{})
	p := tr.PredictProba([][]float64{{0.5}})
	if p[0] != 0.5 {
		t.Errorf("untrained tree should predict 0.5, got %v", p[0])
	}
}

func TestTreeDepthLimit(t *testing.T) {
	x, y := mltest.XOR(400, 0.1, 3)
	tr := New(Config{MaxDepth: 2})
	if err := tr.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if d := tr.Depth(); d > 2 {
		t.Errorf("depth %d exceeds limit 2", d)
	}
}

func TestTreeProbabilitiesHardOnPureLeaves(t *testing.T) {
	// Clean separable data grows pure leaves whose probabilities are
	// hard 0/1 — required so confidence thresholds near 1 (TransER's
	// t_p = 0.99) remain attainable, matching scikit-learn behaviour.
	x, y := mltest.TwoBlobs(100, 2, 0.05, 4)
	tr := New(Config{})
	if err := tr.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	sawHard := false
	for _, p := range tr.PredictProba(x) {
		if p < 0 || p > 1 {
			t.Fatalf("leaf probability %v out of range", p)
		}
		if p == 0 || p == 1 {
			sawHard = true
		}
	}
	if !sawHard {
		t.Errorf("no pure leaf produced a hard probability on separable data")
	}
}

func TestTreeConstantFeatures(t *testing.T) {
	// All feature values identical → no valid split → single leaf.
	x := [][]float64{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}
	y := []int{1, 0, 1, 0}
	tr := New(Config{})
	if err := tr.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	p := tr.PredictProba([][]float64{{0.5, 0.5}})
	if p[0] != 0.5 {
		t.Errorf("constant features should predict the prior 0.5, got %v", p[0])
	}
	if tr.Depth() != 0 {
		t.Errorf("expected single-leaf tree, depth %d", tr.Depth())
	}
}

func TestFitBootstrapSingleClass(t *testing.T) {
	// Bootstrap path tolerates single-class bags.
	x := [][]float64{{0.1}, {0.2}}
	y := []int{1, 1}
	tr := New(Config{})
	if err := tr.FitBootstrap(x, y, []int{0, 1}); err != nil {
		t.Fatalf("FitBootstrap: %v", err)
	}
	p := tr.PredictProba([][]float64{{0.15}})
	if p[0] < 0.5 {
		t.Errorf("single-class bag should lean towards that class, got %v", p[0])
	}
}

func TestFactory(t *testing.T) {
	f := Factory(Config{MaxDepth: 3})
	c1, c2 := f(), f()
	if c1 == c2 {
		t.Errorf("factory should create fresh instances")
	}
	x, y := mltest.TwoBlobs(50, 2, 0.1, 5)
	if err := c1.Fit(x, y); err != nil {
		t.Fatalf("factory classifier Fit: %v", err)
	}
}

func BenchmarkTreeFit(b *testing.B) {
	x, y := mltest.TwoBlobs(1000, 8, 0.15, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(Config{})
		if err := tr.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTreeParamsRoundTrip(t *testing.T) {
	mltest.CheckParamRoundTrip(t, func() ml.ParamClassifier { return New(Config{Seed: 3}) }, 7)
}

func TestTreeSetParamsRejectsBadFeature(t *testing.T) {
	tr := New(Config{})
	x, y := mltest.TwoBlobs(100, 3, 0.1, 1)
	if err := tr.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	b, err := tr.Params()
	if err != nil {
		t.Fatalf("Params: %v", err)
	}
	// Corrupt a split's feature index to point outside the feature
	// space; SetParams must reject the document.
	bad := []byte(strings.Replace(string(b), `"feature":`, `"feature":9`, 1))
	if !strings.Contains(string(b), `"feature":`) {
		t.Skip("tree degenerated to a single leaf; no split to corrupt")
	}
	if err := New(Config{}).SetParams(bad); err == nil {
		t.Fatalf("SetParams accepted a split feature outside the declared dim")
	}
}
