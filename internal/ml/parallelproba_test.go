package ml

import (
	"math"
	"testing"
)

// rowClassifier is a pure row-wise classifier stub: probability is a
// fixed function of the row's first feature.
type rowClassifier struct{}

func (rowClassifier) Fit(x [][]float64, y []int) error { return nil }

func (rowClassifier) PredictProba(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = 1 / (1 + math.Exp(-row[0]))
	}
	return out
}

func (rowClassifier) Name() string { return "row-stub" }

func probaInput(n int) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		x[i] = []float64{float64(i%17)/17 - 0.5, float64(i % 3)}
	}
	return x
}

// TestParallelProbaMatchesSerial: the chunked path must return the
// exact bits the plain call returns, for any worker count, including
// worker counts far above the row count.
func TestParallelProbaMatchesSerial(t *testing.T) {
	c := rowClassifier{}
	for _, n := range []int{0, 1, parallelProbaMinRows - 1, parallelProbaMinRows, 2000} {
		x := probaInput(n)
		want := c.PredictProba(x)
		for _, w := range []int{1, 2, 3, 8, 64} {
			got := ParallelProba(c, x, w)
			if len(got) != len(want) {
				t.Fatalf("n=%d workers=%d: got %d rows, want %d", n, w, len(got), len(want))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d workers=%d: row %d = %v, want %v", n, w, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelProbaSmallInputStaysSerial: below the row threshold the
// classifier must receive the whole matrix in one call (no chunking
// overhead for small batches).
func TestParallelProbaSmallInputStaysSerial(t *testing.T) {
	calls := 0
	c := countingClassifier{calls: &calls}
	ParallelProba(c, probaInput(parallelProbaMinRows-1), 8)
	if calls != 1 {
		t.Errorf("small input split into %d calls, want 1", calls)
	}
}

type countingClassifier struct{ calls *int }

func (countingClassifier) Fit(x [][]float64, y []int) error { return nil }

func (c countingClassifier) PredictProba(x [][]float64) []float64 {
	*c.calls++
	return make([]float64, len(x))
}

func (countingClassifier) Name() string { return "counting-stub" }
