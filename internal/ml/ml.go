// Package ml defines the classifier abstraction shared by the ER
// pipeline, the TransER framework and all transfer baselines, plus the
// registry of the four traditional classifiers the paper averages over
// (SVM, random forest, logistic regression, decision tree — Section
// 5.1.1).
//
// All classifiers are binary (match = 1, non-match = 0), consume dense
// feature matrices with values in [0, 1], and expose calibrated-ish
// match probabilities: the pseudo-label confidence scores of TransER's
// GEN phase are exactly these probabilities.
package ml

import (
	"encoding/json"
	"errors"
	"fmt"

	"transer/internal/parallel"
)

// Classifier is a binary probabilistic classifier.
type Classifier interface {
	// Fit trains on the feature matrix x with labels y in {0, 1}.
	Fit(x [][]float64, y []int) error
	// PredictProba returns P(label = 1 | row) for each row of x. It
	// must only be called after a successful Fit. Implementations must
	// compute rows independently and must not mutate the classifier,
	// so that disjoint row chunks can be predicted concurrently (see
	// ParallelProba).
	PredictProba(x [][]float64) []float64
}

// Factory creates a fresh, untrained classifier. TransER trains two
// classifiers per run (GEN and TCL), so it takes factories rather than
// instances.
type Factory func() Classifier

// ParamClassifier is a Classifier whose learned state can be exported
// and re-imported, the surface internal/model builds versioned model
// artifacts on. The contract is exactness: for a trained classifier c,
// a fresh instance restored with SetParams(c.Params()) must predict
// byte-identically to c on every input.
type ParamClassifier interface {
	Classifier
	// ClassifierType returns the stable identifier stored in model
	// artifacts ("logreg", "forest", ...). It never changes for a
	// given implementation once released.
	ClassifierType() string
	// Params serialises the learned state (plus whatever configuration
	// prediction needs) as a JSON document. It returns ErrNotTrained
	// when called before a successful Fit.
	Params() ([]byte, error)
	// SetParams restores a previously exported state into this
	// instance, replacing any trained state. After SetParams the
	// classifier predicts exactly as the exporting instance did.
	SetParams([]byte) error
}

// ErrNotTrained is returned by Params when the classifier has not been
// fitted (there is no learned state to export).
var ErrNotTrained = errors.New("ml: classifier is not trained")

// Named pairs a factory with a display name for experiment tables.
type Named struct {
	Name string
	New  Factory
}

// ErrNoTrainingData is returned by Fit when the training set is empty.
var ErrNoTrainingData = errors.New("ml: no training data")

// ErrSingleClass is returned by Fit when all training labels are
// identical; callers may fall back to a constant classifier.
var ErrSingleClass = errors.New("ml: training data contains a single class")

// ValidateTrainingData performs the shared Fit precondition checks and
// returns the feature dimensionality.
func ValidateTrainingData(x [][]float64, y []int) (dim int, err error) {
	if len(x) == 0 {
		return 0, ErrNoTrainingData
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("ml: %d rows but %d labels", len(x), len(y))
	}
	dim = len(x[0])
	for i, row := range x {
		if len(row) != dim {
			return 0, fmt.Errorf("ml: ragged feature matrix: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	seen0, seen1 := false, false
	for i, l := range y {
		switch l {
		case 0:
			seen0 = true
		case 1:
			seen1 = true
		default:
			return 0, fmt.Errorf("ml: label %d at row %d is not binary", l, i)
		}
	}
	if !seen0 || !seen1 {
		return dim, ErrSingleClass
	}
	return dim, nil
}

// Labels converts match probabilities into hard labels with the given
// decision threshold (0.5 for all experiments in this repository).
func Labels(proba []float64, threshold float64) []int {
	out := make([]int, len(proba))
	for i, p := range proba {
		if p >= threshold {
			out[i] = 1
		}
	}
	return out
}

// Confidence converts a match probability into the confidence of the
// predicted label: max(p, 1-p). This is the score Z^P of Algorithm 1.
func Confidence(p float64) float64 {
	if p >= 0.5 {
		return p
	}
	return 1 - p
}

// Constant is a trivial classifier that always predicts the same
// probability; it is the fallback when training data collapses to a
// single class.
type Constant struct{ P float64 }

// Fit accepts any input.
func (c *Constant) Fit(x [][]float64, y []int) error { return nil }

// PredictProba returns the constant probability for every row.
func (c *Constant) PredictProba(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i := range out {
		out[i] = c.P
	}
	return out
}

// ClassifierType implements ParamClassifier.
func (c *Constant) ClassifierType() string { return "constant" }

// constantParams is the serialised state of a Constant.
type constantParams struct {
	P float64 `json:"p"`
}

// Params implements ParamClassifier. A Constant is always "trained":
// its probability is its entire state.
func (c *Constant) Params() ([]byte, error) {
	return json.Marshal(constantParams{P: c.P})
}

// SetParams implements ParamClassifier.
func (c *Constant) SetParams(b []byte) error {
	var p constantParams
	if err := json.Unmarshal(b, &p); err != nil {
		return fmt.Errorf("ml: constant params: %w", err)
	}
	c.P = p.P
	return nil
}

// parallelProbaMinRows is the batch size below which chunked
// prediction is not worth the goroutine dispatch.
const parallelProbaMinRows = 512

// ParallelProba evaluates c.PredictProba over contiguous row chunks of
// x on at most workers goroutines (0 means GOMAXPROCS) and stitches
// the chunk outputs back together by index. Because PredictProba
// computes rows independently (the interface contract), the result is
// bitwise identical to a single serial call for every worker count.
func ParallelProba(c Classifier, x [][]float64, workers int) []float64 {
	w := parallel.Workers(workers)
	if w <= 1 || len(x) < parallelProbaMinRows {
		return c.PredictProba(x)
	}
	out := make([]float64, len(x))
	parallel.ForEachChunk(w, len(x), func(lo, hi int) {
		copy(out[lo:hi], c.PredictProba(x[lo:hi]))
	})
	return out
}

// FitWithFallback trains a fresh classifier from the factory; if the
// training data is single-class it falls back to a Constant classifier
// predicting that class, mirroring scikit-learn pipelines that keep
// running when a fold degenerates.
func FitWithFallback(f Factory, x [][]float64, y []int) (Classifier, error) {
	c := f()
	err := c.Fit(x, y)
	if err == nil {
		return c, nil
	}
	if errors.Is(err, ErrSingleClass) {
		p := 0.0
		if len(y) > 0 && y[0] == 1 {
			p = 1.0
		}
		return &Constant{P: p}, nil
	}
	return nil, err
}
