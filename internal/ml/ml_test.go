package ml

import (
	"errors"
	"testing"
)

func TestValidateTrainingData(t *testing.T) {
	x := [][]float64{{1, 0}, {0, 1}}
	y := []int{1, 0}
	dim, err := ValidateTrainingData(x, y)
	if err != nil || dim != 2 {
		t.Fatalf("valid data rejected: dim=%d err=%v", dim, err)
	}
	if _, err := ValidateTrainingData(nil, nil); !errors.Is(err, ErrNoTrainingData) {
		t.Errorf("empty data should give ErrNoTrainingData, got %v", err)
	}
	if _, err := ValidateTrainingData(x, []int{1}); err == nil {
		t.Errorf("length mismatch accepted")
	}
	if _, err := ValidateTrainingData([][]float64{{1}, {1, 2}}, y); err == nil {
		t.Errorf("ragged matrix accepted")
	}
	if _, err := ValidateTrainingData(x, []int{1, 2}); err == nil {
		t.Errorf("non-binary label accepted")
	}
	if _, err := ValidateTrainingData(x, []int{1, 1}); !errors.Is(err, ErrSingleClass) {
		t.Errorf("single class should give ErrSingleClass, got %v", err)
	}
}

func TestLabels(t *testing.T) {
	got := Labels([]float64{0.9, 0.5, 0.49, 0.1}, 0.5)
	want := []int{1, 1, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Labels[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestConfidence(t *testing.T) {
	if Confidence(0.9) != 0.9 {
		t.Errorf("Confidence(0.9) = %v", Confidence(0.9))
	}
	if Confidence(0.1) != 0.9 {
		t.Errorf("Confidence(0.1) = %v", Confidence(0.1))
	}
	if Confidence(0.5) != 0.5 {
		t.Errorf("Confidence(0.5) = %v", Confidence(0.5))
	}
}

func TestConstant(t *testing.T) {
	c := &Constant{P: 0.8}
	if err := c.Fit(nil, nil); err != nil {
		t.Fatalf("Constant.Fit: %v", err)
	}
	p := c.PredictProba([][]float64{{1}, {2}})
	if len(p) != 2 || p[0] != 0.8 || p[1] != 0.8 {
		t.Errorf("Constant proba = %v", p)
	}
}

func TestFitWithFallback(t *testing.T) {
	// Single-class data falls back to a constant of that class.
	f := func() Classifier { return &failOnSingle{} }
	c, err := FitWithFallback(f, [][]float64{{1}, {2}}, []int{1, 1})
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	p := c.PredictProba([][]float64{{3}})
	if p[0] != 1 {
		t.Errorf("fallback constant should predict 1, got %v", p[0])
	}
	c, err = FitWithFallback(f, [][]float64{{1}}, []int{0})
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if p := c.PredictProba([][]float64{{3}}); p[0] != 0 {
		t.Errorf("fallback constant should predict 0, got %v", p[0])
	}
	// Other errors propagate.
	g := func() Classifier { return &alwaysErr{} }
	if _, err := FitWithFallback(g, [][]float64{{1}}, []int{0}); err == nil {
		t.Errorf("non-single-class error should propagate")
	}
}

type failOnSingle struct{}

func (f *failOnSingle) Fit(x [][]float64, y []int) error {
	_, err := ValidateTrainingData(x, y)
	return err
}
func (f *failOnSingle) PredictProba(x [][]float64) []float64 { return make([]float64, len(x)) }

type alwaysErr struct{}

func (a *alwaysErr) Fit(x [][]float64, y []int) error     { return errors.New("boom") }
func (a *alwaysErr) PredictProba(x [][]float64) []float64 { return nil }

// Constant is the one ParamClassifier that is always trained (its
// probability is its whole state), so it gets a dedicated round-trip
// test instead of the shared mltest checker.
func TestConstantParamsRoundTrip(t *testing.T) {
	orig := &Constant{P: 0.125}
	b, err := orig.Params()
	if err != nil {
		t.Fatalf("Params: %v", err)
	}
	restored := &Constant{}
	if err := restored.SetParams(b); err != nil {
		t.Fatalf("SetParams: %v", err)
	}
	if restored.P != orig.P {
		t.Fatalf("restored P = %v, want %v", restored.P, orig.P)
	}
	if restored.ClassifierType() != "constant" {
		t.Fatalf("type %q", restored.ClassifierType())
	}
	if err := restored.SetParams([]byte("nope")); err == nil {
		t.Fatalf("SetParams accepted malformed JSON")
	}
}
