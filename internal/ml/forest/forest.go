// Package forest implements a random forest classifier: bagged CART
// trees with per-split feature subsampling. The predicted match
// probability is the mean of the trees' leaf probabilities, the usual
// soft voting scheme.
package forest

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"transer/internal/ml"
	"transer/internal/ml/tree"
)

// Config holds random forest hyper-parameters; the zero value uses the
// defaults noted per field.
type Config struct {
	// NumTrees is the ensemble size; 0 means 30.
	NumTrees int
	// MaxDepth per tree; 0 means 12.
	MaxDepth int
	// MinLeaf per tree; 0 means 2.
	MinLeaf int
	// MaxFeatures per split; 0 means round(sqrt(m)).
	MaxFeatures int
	// Seed drives bootstrap sampling and feature subsampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.NumTrees == 0 {
		c.NumTrees = 30
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 2
	}
	return c
}

// Forest is a random forest classifier.
type Forest struct {
	cfg   Config
	trees []*tree.Tree
}

// New creates an untrained forest.
func New(cfg Config) *Forest { return &Forest{cfg: cfg.withDefaults()} }

// Factory returns an ml.Factory producing forests with this config.
func Factory(cfg Config) ml.Factory {
	return func() ml.Classifier { return New(cfg) }
}

// Fit trains the ensemble on bootstrap samples of (x, y).
func (f *Forest) Fit(x [][]float64, y []int) error {
	dim, err := ml.ValidateTrainingData(x, y)
	if err != nil {
		return err
	}
	maxFeat := f.cfg.MaxFeatures
	if maxFeat == 0 {
		maxFeat = int(math.Round(math.Sqrt(float64(dim))))
		if maxFeat < 1 {
			maxFeat = 1
		}
	}
	rng := rand.New(rand.NewSource(f.cfg.Seed))
	n := len(x)
	f.trees = make([]*tree.Tree, 0, f.cfg.NumTrees)
	for t := 0; t < f.cfg.NumTrees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		tr := tree.New(tree.Config{
			MaxDepth:    f.cfg.MaxDepth,
			MinLeaf:     f.cfg.MinLeaf,
			MaxFeatures: maxFeat,
			Seed:        rng.Int63(),
		})
		if err := tr.FitBootstrap(x, y, idx); err != nil {
			return err
		}
		f.trees = append(f.trees, tr)
	}
	return nil
}

// ClassifierType implements ml.ParamClassifier.
func (f *Forest) ClassifierType() string { return "rf" }

// Params is the serialised state of a trained Forest: the configuration
// plus every tree's own exported parameters.
type Params struct {
	Config Config            `json:"config"`
	Trees  []json.RawMessage `json:"trees"`
}

// Params implements ml.ParamClassifier.
func (f *Forest) Params() ([]byte, error) {
	if len(f.trees) == 0 {
		return nil, ml.ErrNotTrained
	}
	p := Params{Config: f.cfg, Trees: make([]json.RawMessage, len(f.trees))}
	for i, tr := range f.trees {
		b, err := tr.Params()
		if err != nil {
			return nil, fmt.Errorf("forest: tree %d: %w", i, err)
		}
		p.Trees[i] = b
	}
	return json.Marshal(p)
}

// SetParams implements ml.ParamClassifier.
func (f *Forest) SetParams(b []byte) error {
	var p Params
	if err := json.Unmarshal(b, &p); err != nil {
		return fmt.Errorf("forest: params: %w", err)
	}
	if len(p.Trees) == 0 {
		return fmt.Errorf("forest: params carry no trees")
	}
	trees := make([]*tree.Tree, len(p.Trees))
	for i, tb := range p.Trees {
		tr := tree.New(tree.Config{})
		if err := tr.SetParams(tb); err != nil {
			return fmt.Errorf("forest: tree %d: %w", i, err)
		}
		trees[i] = tr
	}
	f.cfg = p.Config.withDefaults()
	f.trees = trees
	return nil
}

// PredictProba returns the ensemble-mean match probability per row.
func (f *Forest) PredictProba(x [][]float64) []float64 {
	out := make([]float64, len(x))
	if len(f.trees) == 0 {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for _, tr := range f.trees {
		p := tr.PredictProba(x)
		for i, v := range p {
			out[i] += v
		}
	}
	inv := 1 / float64(len(f.trees))
	for i := range out {
		out[i] *= inv
	}
	return out
}
