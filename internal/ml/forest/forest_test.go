package forest

import (
	"errors"
	"testing"

	"transer/internal/ml"
	"transer/internal/ml/mltest"
)

func TestForestSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(300, 4, 0.15, 1)
	f := New(Config{Seed: 1})
	if err := f.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := mltest.Accuracy(f.PredictProba(x), y); acc < 0.95 {
		t.Errorf("training accuracy %.3f", acc)
	}
}

func TestForestXORGeneralisation(t *testing.T) {
	xTrain, yTrain := mltest.XOR(400, 0.08, 2)
	xTest, yTest := mltest.XOR(200, 0.08, 3)
	f := New(Config{Seed: 2})
	if err := f.Fit(xTrain, yTrain); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := mltest.Accuracy(f.PredictProba(xTest), yTest); acc < 0.9 {
		t.Errorf("XOR test accuracy %.3f", acc)
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	x, y := mltest.TwoBlobs(200, 4, 0.2, 4)
	f1 := New(Config{Seed: 9})
	f2 := New(Config{Seed: 9})
	if err := f1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := f2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p1 := f1.PredictProba(x)
	p2 := f2.PredictProba(x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed produced different predictions at %d: %v vs %v", i, p1[i], p2[i])
		}
	}
}

func TestForestErrors(t *testing.T) {
	f := New(Config{})
	if err := f.Fit(nil, nil); !errors.Is(err, ml.ErrNoTrainingData) {
		t.Errorf("empty fit error = %v", err)
	}
	if err := f.Fit([][]float64{{1}, {2}}, []int{0, 0}); !errors.Is(err, ml.ErrSingleClass) {
		t.Errorf("single class error = %v", err)
	}
}

func TestForestUntrained(t *testing.T) {
	f := New(Config{})
	p := f.PredictProba([][]float64{{0.1}})
	if p[0] != 0.5 {
		t.Errorf("untrained forest should predict 0.5, got %v", p[0])
	}
}

func TestForestProbabilityAveraging(t *testing.T) {
	x, y := mltest.TwoBlobs(200, 4, 0.15, 5)
	f := New(Config{NumTrees: 50, Seed: 6})
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, p := range f.PredictProba(x) {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func BenchmarkForestFit(b *testing.B) {
	x, y := mltest.TwoBlobs(500, 8, 0.15, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := New(Config{Seed: int64(i)})
		if err := f.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestForestParamsRoundTrip(t *testing.T) {
	mltest.CheckParamRoundTrip(t, func() ml.ParamClassifier { return New(Config{Seed: 3, NumTrees: 10}) }, 7)
}
