package svm

import (
	"errors"
	"testing"

	"transer/internal/ml"
	"transer/internal/ml/mltest"
)

func TestSVMSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(300, 4, 0.12, 1)
	s := New(Config{Seed: 1})
	if err := s.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := mltest.Accuracy(s.PredictProba(x), y); acc < 0.95 {
		t.Errorf("training accuracy %.3f", acc)
	}
}

func TestSVMScoresSeparateClasses(t *testing.T) {
	x, y := mltest.TwoBlobs(200, 3, 0.1, 2)
	s := New(Config{Seed: 2})
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	scores := s.Score(x)
	var posMean, negMean float64
	var nPos, nNeg int
	for i, sc := range scores {
		if y[i] == 1 {
			posMean += sc
			nPos++
		} else {
			negMean += sc
			nNeg++
		}
	}
	posMean /= float64(nPos)
	negMean /= float64(nNeg)
	if posMean <= negMean {
		t.Errorf("positive score mean %.3f not above negative %.3f", posMean, negMean)
	}
}

func TestSVMPlattCalibration(t *testing.T) {
	x, y := mltest.TwoBlobs(400, 4, 0.15, 3)
	s := New(Config{Seed: 3})
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p := s.PredictProba(x)
	// Probabilities must be ordered consistently with the labels on
	// average and stay inside (0, 1).
	var posMean, negMean float64
	var nPos, nNeg int
	for i, v := range p {
		if v <= 0 || v >= 1 {
			t.Fatalf("probability %v outside (0,1)", v)
		}
		if y[i] == 1 {
			posMean += v
			nPos++
		} else {
			negMean += v
			nNeg++
		}
	}
	if posMean/float64(nPos) < negMean/float64(nNeg)+0.3 {
		t.Errorf("Platt probabilities poorly separated: pos %.3f vs neg %.3f",
			posMean/float64(nPos), negMean/float64(nNeg))
	}
}

func TestSVMErrors(t *testing.T) {
	s := New(Config{})
	if err := s.Fit(nil, nil); !errors.Is(err, ml.ErrNoTrainingData) {
		t.Errorf("empty fit error = %v", err)
	}
	if err := s.Fit([][]float64{{1}, {0}}, []int{0, 0}); !errors.Is(err, ml.ErrSingleClass) {
		t.Errorf("single class error = %v", err)
	}
}

func TestSVMDeterministicWithSeed(t *testing.T) {
	x, y := mltest.TwoBlobs(150, 3, 0.2, 5)
	s1, s2 := New(Config{Seed: 11}), New(Config{Seed: 11})
	if err := s1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := s2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p1, p2 := s1.PredictProba(x), s2.PredictProba(x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func BenchmarkSVMFit(b *testing.B) {
	x, y := mltest.TwoBlobs(1000, 8, 0.15, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(Config{Seed: int64(i)})
		if err := s.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSVMParamsRoundTrip(t *testing.T) {
	mltest.CheckParamRoundTrip(t, func() ml.ParamClassifier { return New(Config{Seed: 3}) }, 7)
}
