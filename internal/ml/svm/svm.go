// Package svm implements a linear support vector machine trained with
// the Pegasos primal sub-gradient method, followed by Platt scaling so
// decision values become match probabilities — the same recipe
// scikit-learn's probability=True SVC approximates for the linear case.
package svm

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"transer/internal/ml"
)

// Config holds SVM hyper-parameters; the zero value uses the defaults
// noted per field.
type Config struct {
	// Lambda is the Pegasos regularisation strength; 0 means 1e-3.
	Lambda float64
	// Epochs of passes over the data; 0 means 40.
	Epochs int
	// Seed drives the sampling order.
	Seed int64
	// PlattIterations for the probability calibration fit; 0 means 2000.
	PlattIterations int
	// NoClassWeight disables the inverse-frequency class weighting of
	// the hinge updates. By default updates are class-balanced, which
	// keeps the SVM from collapsing to the majority class on the
	// heavily imbalanced pair sets ER produces.
	NoClassWeight bool
}

func (c Config) withDefaults() Config {
	if c.Lambda == 0 {
		c.Lambda = 1e-3
	}
	if c.Epochs == 0 {
		c.Epochs = 40
	}
	if c.PlattIterations == 0 {
		c.PlattIterations = 2000
	}
	return c
}

// SVM is a linear SVM with Platt-scaled probability outputs.
type SVM struct {
	cfg  Config
	w    []float64
	bias float64
	// Platt sigmoid parameters: p = sigmoid(a*score + b).
	plattA, plattB float64
}

// New creates an untrained SVM.
func New(cfg Config) *SVM { return &SVM{cfg: cfg.withDefaults()} }

// Factory returns an ml.Factory producing SVMs with this config.
func Factory(cfg Config) ml.Factory {
	return func() ml.Classifier { return New(cfg) }
}

// Fit trains the margin with Pegasos, then calibrates probabilities
// with Platt scaling on the training scores.
func (s *SVM) Fit(x [][]float64, y []int) error {
	dim, err := ml.ValidateTrainingData(x, y)
	if err != nil {
		return err
	}
	s.w = make([]float64, dim)
	s.bias = 0
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	n := len(x)
	lambda := s.cfg.Lambda
	w1, w0 := 1.0, 1.0
	if !s.cfg.NoClassWeight {
		ones := 0
		for _, v := range y {
			ones += v
		}
		if ones > 0 && ones < n {
			w1 = float64(n) / (2 * float64(ones))
			w0 = float64(n) / (2 * float64(n-ones))
		}
	}
	t := 0
	for epoch := 0; epoch < s.cfg.Epochs; epoch++ {
		order := rng.Perm(n)
		for _, i := range order {
			t++
			eta := 1 / (lambda * float64(t))
			yi := float64(2*y[i] - 1) // {-1, +1}
			score := s.bias
			for j, v := range x[i] {
				score += s.w[j] * v
			}
			// w <- (1 - eta*lambda) w [+ cw*eta*yi*x on margin violation]
			decay := 1 - eta*lambda
			for j := range s.w {
				s.w[j] *= decay
			}
			if yi*score < 1 {
				cw := w0
				if y[i] == 1 {
					cw = w1
				}
				for j, v := range x[i] {
					s.w[j] += cw * eta * yi * v
				}
				s.bias += cw * eta * yi
			}
		}
	}
	s.fitPlatt(x, y)
	return nil
}

// Score returns the raw decision values w·x + b.
func (s *SVM) Score(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		z := s.bias
		for j, v := range row {
			z += s.w[j] * v
		}
		out[i] = z
	}
	return out
}

// fitPlatt fits p = sigmoid(a*score + b) by gradient descent on the
// cross-entropy with the Platt target smoothing.
func (s *SVM) fitPlatt(x [][]float64, y []int) {
	scores := s.Score(x)
	n := len(y)
	ones := 0
	for _, v := range y {
		ones += v
	}
	// Platt's smoothed targets guard against overconfident calibration.
	tPos := (float64(ones) + 1) / (float64(ones) + 2)
	tNeg := 1 / (float64(n-ones) + 2)
	a, b := 1.0, 0.0
	lr := 0.5
	for it := 0; it < s.cfg.PlattIterations; it++ {
		ga, gb := 0.0, 0.0
		for i, sc := range scores {
			target := tNeg
			if y[i] == 1 {
				target = tPos
			}
			p := sigmoid(a*sc + b)
			e := p - target
			ga += e * sc
			gb += e
		}
		inv := 1 / float64(n)
		a -= lr * ga * inv
		b -= lr * gb * inv
	}
	s.plattA, s.plattB = a, b
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// PredictProba returns the Platt-scaled match probabilities.
func (s *SVM) PredictProba(x [][]float64) []float64 {
	scores := s.Score(x)
	for i, sc := range scores {
		scores[i] = sigmoid(s.plattA*sc + s.plattB)
	}
	return scores
}

// ClassifierType implements ml.ParamClassifier.
func (s *SVM) ClassifierType() string { return "svm" }

// Params is the serialised state of a trained SVM: the configuration,
// the learned margin and the Platt calibration.
type Params struct {
	Config Config    `json:"config"`
	W      []float64 `json:"w"`
	Bias   float64   `json:"bias"`
	PlattA float64   `json:"platt_a"`
	PlattB float64   `json:"platt_b"`
}

// Params implements ml.ParamClassifier.
func (s *SVM) Params() ([]byte, error) {
	if s.w == nil {
		return nil, ml.ErrNotTrained
	}
	return json.Marshal(Params{Config: s.cfg, W: s.w, Bias: s.bias, PlattA: s.plattA, PlattB: s.plattB})
}

// SetParams implements ml.ParamClassifier.
func (s *SVM) SetParams(b []byte) error {
	var p Params
	if err := json.Unmarshal(b, &p); err != nil {
		return fmt.Errorf("svm: params: %w", err)
	}
	if len(p.W) == 0 {
		return fmt.Errorf("svm: params carry no weight vector")
	}
	s.cfg = p.Config.withDefaults()
	s.w = p.W
	s.bias = p.Bias
	s.plattA = p.PlattA
	s.plattB = p.PlattB
	return nil
}
