package logreg

import (
	"errors"
	"testing"

	"transer/internal/ml"
	"transer/internal/ml/mltest"
)

func TestLogRegSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(300, 4, 0.12, 1)
	l := New(Config{})
	if err := l.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := mltest.Accuracy(l.PredictProba(x), y); acc < 0.95 {
		t.Errorf("training accuracy %.3f", acc)
	}
}

func TestLogRegWeightsDirection(t *testing.T) {
	// Positive class at high feature values → positive weights.
	x, y := mltest.TwoBlobs(300, 3, 0.1, 2)
	l := New(Config{})
	if err := l.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	w, _ := l.Weights()
	for j, v := range w {
		if v <= 0 {
			t.Errorf("weight %d = %v, want positive", j, v)
		}
	}
}

func TestLogRegClassWeight(t *testing.T) {
	// Heavy imbalance: 10 positives vs 290 negatives. Class weighting
	// should recover more positives than unweighted training.
	x, y := mltest.TwoBlobs(600, 3, 0.25, 3)
	var xi [][]float64
	var yi []int
	pos := 0
	for i := range x {
		if y[i] == 1 {
			if pos >= 10 {
				continue
			}
			pos++
		}
		xi = append(xi, x[i])
		yi = append(yi, y[i])
	}
	plain := New(Config{})
	weighted := New(Config{ClassWeight: true})
	if err := plain.Fit(xi, yi); err != nil {
		t.Fatal(err)
	}
	if err := weighted.Fit(xi, yi); err != nil {
		t.Fatal(err)
	}
	xt, yt := mltest.TwoBlobs(200, 3, 0.25, 4)
	recall := func(p []float64) float64 {
		tp, fn := 0, 0
		for i, v := range p {
			if yt[i] == 1 {
				if v >= 0.5 {
					tp++
				} else {
					fn++
				}
			}
		}
		if tp+fn == 0 {
			return 0
		}
		return float64(tp) / float64(tp+fn)
	}
	rw := recall(weighted.PredictProba(xt))
	rp := recall(plain.PredictProba(xt))
	if rw < rp {
		t.Errorf("class weighting reduced recall: weighted %.3f < plain %.3f", rw, rp)
	}
}

func TestLogRegErrors(t *testing.T) {
	l := New(Config{})
	if err := l.Fit(nil, nil); !errors.Is(err, ml.ErrNoTrainingData) {
		t.Errorf("empty fit error = %v", err)
	}
	if err := l.Fit([][]float64{{1}, {0}}, []int{1, 1}); !errors.Is(err, ml.ErrSingleClass) {
		t.Errorf("single class error = %v", err)
	}
}

func TestLogRegProbabilityRange(t *testing.T) {
	x, y := mltest.TwoBlobs(200, 4, 0.2, 5)
	l := New(Config{})
	if err := l.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, p := range l.PredictProba(x) {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func TestLogRegDeterministic(t *testing.T) {
	x, y := mltest.TwoBlobs(100, 3, 0.15, 6)
	l1, l2 := New(Config{}), New(Config{})
	if err := l1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := l2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p1, p2 := l1.PredictProba(x), l2.PredictProba(x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func BenchmarkLogRegFit(b *testing.B) {
	x, y := mltest.TwoBlobs(1000, 8, 0.15, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := New(Config{})
		if err := l.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLogRegParamsRoundTrip(t *testing.T) {
	mltest.CheckParamRoundTrip(t, func() ml.ParamClassifier { return New(Config{ClassWeight: true}) }, 7)
}
