// Package logreg implements L2-regularised binary logistic regression
// trained with full-batch gradient descent. Features are already in
// [0, 1] in this repository, so no internal standardisation is needed.
package logreg

import (
	"encoding/json"
	"fmt"
	"math"

	"transer/internal/ml"
)

// Config holds logistic regression hyper-parameters; the zero value
// uses the defaults noted per field.
type Config struct {
	// LearningRate for gradient descent; 0 means 1.0.
	LearningRate float64
	// Epochs of full-batch updates; 0 means 800.
	Epochs int
	// L2 regularisation strength; 0 means 1e-4. (Set to a negative
	// value for explicitly unregularised training.)
	L2 float64
	// ClassWeight balances the loss by inverse class frequency when
	// true — useful on the heavily imbalanced ER pair sets.
	ClassWeight bool
}

func (c Config) withDefaults() Config {
	if c.LearningRate == 0 {
		c.LearningRate = 1.0
	}
	if c.Epochs == 0 {
		c.Epochs = 800
	}
	if c.L2 == 0 {
		c.L2 = 1e-4
	} else if c.L2 < 0 {
		c.L2 = 0
	}
	return c
}

// LogReg is a logistic regression classifier.
type LogReg struct {
	cfg  Config
	w    []float64
	bias float64
}

// New creates an untrained model.
func New(cfg Config) *LogReg { return &LogReg{cfg: cfg.withDefaults()} }

// Factory returns an ml.Factory producing models with this config.
func Factory(cfg Config) ml.Factory {
	return func() ml.Classifier { return New(cfg) }
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Fit trains with gradient descent on the logistic loss.
func (l *LogReg) Fit(x [][]float64, y []int) error {
	dim, err := ml.ValidateTrainingData(x, y)
	if err != nil {
		return err
	}
	l.w = make([]float64, dim)
	l.bias = 0
	n := len(x)

	w1, w0 := 1.0, 1.0
	if l.cfg.ClassWeight {
		ones := 0
		for _, v := range y {
			ones += v
		}
		zeros := n - ones
		// Inverse-frequency weights normalised to mean 1.
		w1 = float64(n) / (2 * float64(ones))
		w0 = float64(n) / (2 * float64(zeros))
	}

	grad := make([]float64, dim)
	for epoch := 0; epoch < l.cfg.Epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		gradB := 0.0
		for i, row := range x {
			z := l.bias
			for j, v := range row {
				z += l.w[j] * v
			}
			p := sigmoid(z)
			e := p - float64(y[i])
			if y[i] == 1 {
				e *= w1
			} else {
				e *= w0
			}
			for j, v := range row {
				grad[j] += e * v
			}
			gradB += e
		}
		inv := 1 / float64(n)
		lr := l.cfg.LearningRate
		for j := range l.w {
			l.w[j] -= lr * (grad[j]*inv + l.cfg.L2*l.w[j])
		}
		l.bias -= lr * gradB * inv
	}
	return nil
}

// PredictProba returns sigmoid(w·x + b) per row.
func (l *LogReg) PredictProba(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		z := l.bias
		for j, v := range row {
			z += l.w[j] * v
		}
		out[i] = sigmoid(z)
	}
	return out
}

// Weights returns a copy of the trained weight vector (for tests and
// model inspection).
func (l *LogReg) Weights() ([]float64, float64) {
	return append([]float64(nil), l.w...), l.bias
}

// ClassifierType implements ml.ParamClassifier.
func (l *LogReg) ClassifierType() string { return "logreg" }

// Params is the serialised state of a trained LogReg: the configuration
// plus the learned weight vector and bias.
type Params struct {
	Config Config    `json:"config"`
	W      []float64 `json:"w"`
	Bias   float64   `json:"bias"`
}

// Params implements ml.ParamClassifier.
func (l *LogReg) Params() ([]byte, error) {
	if l.w == nil {
		return nil, ml.ErrNotTrained
	}
	return json.Marshal(Params{Config: l.cfg, W: l.w, Bias: l.bias})
}

// SetParams implements ml.ParamClassifier.
func (l *LogReg) SetParams(b []byte) error {
	var p Params
	if err := json.Unmarshal(b, &p); err != nil {
		return fmt.Errorf("logreg: params: %w", err)
	}
	if len(p.W) == 0 {
		return fmt.Errorf("logreg: params carry no weight vector")
	}
	l.cfg = p.Config.withDefaults()
	l.w = p.W
	l.bias = p.Bias
	return nil
}
