// Package knn implements a k-nearest-neighbour binary classifier over
// the KD-tree index, with optional inverse-distance weighting. It is a
// strong lazy baseline on ER similarity features, where the class
// structure is locally smooth.
package knn

import (
	"encoding/json"
	"fmt"
	"math"

	"transer/internal/kdtree"
	"transer/internal/ml"
)

// Config holds k-NN hyper-parameters.
type Config struct {
	// K is the neighbourhood size; 0 means 7 (matching TransER's
	// default neighbourhood).
	K int
	// DistanceWeighted weights votes by inverse distance when true.
	DistanceWeighted bool
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 7
	}
	return c
}

// KNN is a trained k-NN classifier (training = indexing).
type KNN struct {
	cfg  Config
	tree *kdtree.Tree
	// x holds the indexed rows (the same slices the tree references),
	// retained so Params can export the training set.
	x [][]float64
	y []int
}

// New creates an untrained classifier.
func New(cfg Config) *KNN { return &KNN{cfg: cfg.withDefaults()} }

// Factory returns an ml.Factory producing classifiers with this
// config.
func Factory(cfg Config) ml.Factory {
	return func() ml.Classifier { return New(cfg) }
}

// Fit indexes the training data.
func (k *KNN) Fit(x [][]float64, y []int) error {
	if _, err := ml.ValidateTrainingData(x, y); err != nil {
		return err
	}
	// The tree references the rows; copy to decouple from the caller.
	rows := make([][]float64, len(x))
	for i, r := range x {
		rows[i] = append([]float64(nil), r...)
	}
	k.tree = kdtree.Build(rows)
	k.x = rows
	k.y = append([]int(nil), y...)
	return nil
}

// ClassifierType implements ml.ParamClassifier.
func (k *KNN) ClassifierType() string { return "knn" }

// Params is the serialised state of a trained KNN: the configuration
// and the indexed training set. The KD-tree itself is not serialised —
// kdtree.Build is deterministic for a fixed row order, so rebuilding
// from the exported rows reproduces the index (and therefore the
// predictions) exactly.
type Params struct {
	Config Config      `json:"config"`
	X      [][]float64 `json:"x"`
	Y      []int       `json:"y"`
}

// Params implements ml.ParamClassifier.
func (k *KNN) Params() ([]byte, error) {
	if k.tree == nil {
		return nil, ml.ErrNotTrained
	}
	return json.Marshal(Params{Config: k.cfg, X: k.x, Y: k.y})
}

// SetParams implements ml.ParamClassifier.
func (k *KNN) SetParams(b []byte) error {
	var p Params
	if err := json.Unmarshal(b, &p); err != nil {
		return fmt.Errorf("knn: params: %w", err)
	}
	if len(p.X) == 0 || len(p.X) != len(p.Y) {
		return fmt.Errorf("knn: params carry %d rows but %d labels", len(p.X), len(p.Y))
	}
	k.cfg = p.Config.withDefaults()
	k.tree = kdtree.Build(p.X)
	k.x = p.X
	k.y = p.Y
	return nil
}

// PredictProba returns the (weighted) match vote fraction per row.
func (k *KNN) PredictProba(x [][]float64) []float64 {
	out := make([]float64, len(x))
	if k.tree == nil {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for i, row := range x {
		nn := k.tree.KNN(row, k.cfg.K, nil)
		if len(nn) == 0 {
			out[i] = 0.5
			continue
		}
		var num, den float64
		for _, n := range nn {
			w := 1.0
			if k.cfg.DistanceWeighted {
				w = 1 / (math.Sqrt(n.Dist2) + 1e-9)
			}
			den += w
			if k.y[n.ID] == 1 {
				num += w
			}
		}
		out[i] = num / den
	}
	return out
}
