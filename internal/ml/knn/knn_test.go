package knn

import (
	"errors"
	"testing"

	"transer/internal/ml"
	"transer/internal/ml/mltest"
)

func TestKNNSeparable(t *testing.T) {
	x, y := mltest.TwoBlobs(300, 4, 0.12, 1)
	k := New(Config{})
	if err := k.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	xt, yt := mltest.TwoBlobs(100, 4, 0.12, 2)
	if acc := mltest.Accuracy(k.PredictProba(xt), yt); acc < 0.95 {
		t.Errorf("test accuracy %.3f", acc)
	}
}

func TestKNNXOR(t *testing.T) {
	x, y := mltest.XOR(500, 0.06, 3)
	k := New(Config{K: 5})
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(k.PredictProba(x), y); acc < 0.9 {
		t.Errorf("XOR accuracy %.3f", acc)
	}
}

func TestKNNErrorsAndUntrained(t *testing.T) {
	k := New(Config{})
	if err := k.Fit(nil, nil); !errors.Is(err, ml.ErrNoTrainingData) {
		t.Errorf("empty fit error = %v", err)
	}
	if err := k.Fit([][]float64{{1}, {0}}, []int{0, 0}); !errors.Is(err, ml.ErrSingleClass) {
		t.Errorf("single class error = %v", err)
	}
	if p := k.PredictProba([][]float64{{0.5}}); p[0] != 0.5 {
		t.Errorf("untrained should predict 0.5, got %v", p[0])
	}
}

func TestKNNDistanceWeighting(t *testing.T) {
	// Query next to a single match with two slightly farther
	// non-matches: unweighted 1/3 vs weighted > 1/3.
	x := [][]float64{{0.50}, {0.60}, {0.61}}
	y := []int{1, 0, 0}
	q := [][]float64{{0.505}}
	plain := New(Config{K: 3})
	weighted := New(Config{K: 3, DistanceWeighted: true})
	if err := plain.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := weighted.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pp := plain.PredictProba(q)[0]
	pw := weighted.PredictProba(q)[0]
	if pw <= pp {
		t.Errorf("distance weighting should favour the close match: %v vs %v", pw, pp)
	}
}

func TestKNNCopiesTrainingData(t *testing.T) {
	x := [][]float64{{0.1}, {0.9}}
	y := []int{0, 1}
	k := New(Config{K: 1})
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's slices must not affect the model.
	x[0][0] = 0.95
	y[0] = 1
	p := k.PredictProba([][]float64{{0.1}})
	if p[0] >= 0.5 {
		t.Errorf("model shares storage with caller: %v", p[0])
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	x, y := mltest.TwoBlobs(2000, 8, 0.15, 4)
	k := New(Config{})
	if err := k.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	q, _ := mltest.TwoBlobs(100, 8, 0.15, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.PredictProba(q)
	}
}

func TestKNNParamsRoundTrip(t *testing.T) {
	mltest.CheckParamRoundTrip(t, func() ml.ParamClassifier { return New(Config{DistanceWeighted: true}) }, 7)
}
