package core

import (
	"sort"

	"transer/internal/blocking"
	"transer/internal/kdtree"
)

// approxIndex answers approximate instance-level k-NN queries for the
// SELModeApprox engine: candidates come from MinHash-LSH buckets over
// the 0.05-quantized unique vectors (reusing internal/blocking's hash
// family), are ranked with the blocked float32 distance kernel, and
// expand to instances exactly like the exact index. When the buckets
// cover fewer instances than requested the query falls back to the
// exact weighted index, so sparse regions never degrade below exact.
//
// Determinism: bucket construction iterates unique vectors in order,
// candidates are sorted before ranking, and all hashing is seeded
// from the config seed — two runs with equal inputs return equal
// results (the metamorphic suite pins this).
type approxIndex struct {
	ix      *kdtree.WeightedIndex
	lsh     *blocking.VectorLSH
	buckets map[uint64][]int32
	// coords32 mirrors the unique vectors as one contiguous float32
	// matrix for the blocked kernel; approximate ranking is the one
	// place narrowed storage is allowed (DESIGN.md §10).
	coords32 []float32
	dim      int
}

func newApproxIndex(ix *kdtree.WeightedIndex, seed int64) *approxIndex {
	a := &approxIndex{
		ix:      ix,
		lsh:     blocking.NewVectorLSH(blocking.VectorLSHConfig{Seed: seed}),
		buckets: make(map[uint64][]int32),
	}
	vecs := ix.Set.Vecs
	if len(vecs) == 0 {
		return a
	}
	a.dim = len(vecs[0])
	a.coords32 = make([]float32, len(vecs)*a.dim)
	keys := make([]uint64, 0, a.lsh.Bands())
	for u, v := range vecs {
		for j, x := range v {
			a.coords32[u*a.dim+j] = float32(x)
		}
		keys = a.lsh.BandKeys(keys[:0], v)
		for _, key := range keys {
			ids := a.buckets[key]
			if n := len(ids); n > 0 && ids[n-1] == int32(u) {
				continue // same vector, colliding bands
			}
			a.buckets[key] = append(ids, int32(u))
		}
	}
	return a
}

// approxMaxCandidates caps the per-query candidate pool. Clustered
// quantized data can drop most unique vectors into a handful of giant
// buckets; ranking them all would turn every query into a
// near-brute-force scan of the unique set (measured: slower than the
// reference engine at table2 scale 0.5). Buckets join the pool
// smallest-first — a smaller bucket means a more selective band
// signature, hence closer candidates — and gathering stops at the
// cap. The shallow-bucket exact fallback below still guarantees
// every query covers at least k instances.
const approxMaxCandidates = 1024

// knn returns an approximate analogue of WeightedIndex.KNN: the k
// nearest instances among the LSH candidates of q, by (float32
// distance, unique id) with the same distance-closed boundary
// handling as the exact path. Safe for concurrent use.
func (a *approxIndex) knn(q []float64, k int) []kdtree.Neighbour {
	if k <= 0 {
		return nil
	}
	keys := a.lsh.BandKeys(make([]uint64, 0, a.lsh.Bands()), q)
	type bucketRef struct {
		ids  []int32
		band int
	}
	order := make([]bucketRef, 0, len(keys))
	for band, key := range keys {
		if ids := a.buckets[key]; len(ids) > 0 {
			order = append(order, bucketRef{ids: ids, band: band})
		}
	}
	// Size-ascending with band index as the tiebreak keeps gathering
	// deterministic for equal inputs.
	sort.Slice(order, func(i, j int) bool {
		if len(order[i].ids) != len(order[j].ids) {
			return len(order[i].ids) < len(order[j].ids)
		}
		return order[i].band < order[j].band
	})
	var cands []int32
	for _, b := range order {
		if len(cands) > 0 && len(cands)+len(b.ids) > approxMaxCandidates {
			break
		}
		cands = append(cands, b.ids...)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	uniq := cands[:0]
	var last int32 = -1
	weight := 0
	for _, u := range cands {
		if u == last {
			continue
		}
		uniq = append(uniq, u)
		last = u
		weight += len(a.ix.Set.Members[u])
	}
	if weight < k {
		// Buckets too shallow to even cover k instances: exact fallback.
		return a.ix.KNN(q, k)
	}

	q32 := make([]float32, a.dim)
	for j := 0; j < a.dim && j < len(q); j++ {
		q32[j] = float32(q[j])
	}
	type groupDist struct {
		u int32
		d float32
	}
	ds := make([]groupDist, len(uniq))
	for i, u := range uniq {
		row := a.coords32[int(u)*a.dim : (int(u)+1)*a.dim]
		ds[i] = groupDist{u: u, d: kdtree.SqDist32(q32, row)}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].d != ds[j].d {
			return ds[i].d < ds[j].d
		}
		return ds[i].u < ds[j].u
	})
	// Keep the minimal distance-closed prefix covering k instances.
	cut, cum := 0, 0
	for cut < len(ds) && cum < k {
		cum += len(a.ix.Set.Members[ds[cut].u])
		cut++
	}
	for cut < len(ds) && ds[cut].d == ds[cut-1].d {
		cut++
	}

	out := make([]kdtree.Neighbour, 0, k+8)
	for _, g := range ds[:cut] {
		mem := a.ix.Set.Members[g.u]
		take := len(mem)
		if take > k {
			take = k
		}
		for _, id := range mem[:take] {
			out = append(out, kdtree.Neighbour{ID: int(id), Dist2: float64(g.d)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist2 != out[j].Dist2 {
			return out[i].Dist2 < out[j].Dist2
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
