package core

import (
	"testing"

	"transer/internal/kdtree"
)

// Ablation benchmarks for implementation design choices: the
// duplicate-group optimisation of the SEL phase and the KD-tree
// neighbourhood index (vs brute force). Run with
//
//	go test -bench=Ablation ./internal/core/
func BenchmarkAblationSELGrouped(b *testing.B) {
	xs, ys, xt := quantizedProblem(3000, 6, 1)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectInstances(xs, ys, xt, cfg)
	}
}

func BenchmarkAblationSELPerInstance(b *testing.B) {
	xs, ys, xt := quantizedProblem(3000, 6, 1)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceSelect(xs, ys, xt, cfg)
	}
}

func BenchmarkAblationKDTreeKNN(b *testing.B) {
	xs, _, _ := quantizedProblem(5000, 6, 2)
	tree := kdtree.Build(xs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.KNN(xs[i%len(xs)], 7, nil)
	}
}

func BenchmarkAblationBruteKNN(b *testing.B) {
	xs, _, _ := quantizedProblem(5000, 6, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kdtree.BruteKNN(xs, xs[i%len(xs)], 7, nil)
	}
}
