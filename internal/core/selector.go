package core

import (
	"math"

	"transer/internal/kdtree"
	"transer/internal/parallel"
)

// decayRate is the exponential decay coefficient of Equation (2); the
// paper selects e^{-5x} from the candidates in Figure 5.
const decayRate = 5.0

// InstanceSimilarities holds the per-source-instance transferability
// scores of the SEL phase.
type InstanceSimilarities struct {
	// SimC is the class confidence similarity (Equation 1).
	SimC float64
	// SimL is the structural similarity (Equation 2).
	SimL float64
	// SimV is LocIT's covariance similarity (only computed when the
	// +sim_v ablation is enabled; otherwise 1).
	SimV float64
}

// selector computes SEL-phase similarities for all source instances.
type selector struct {
	xs  [][]float64
	ys  []int
	xt  [][]float64
	cfg Config

	srcTree, tgtTree *kdtree.Tree
	sqrtM            float64
}

func newSelector(xs [][]float64, ys []int, xt [][]float64, cfg Config) *selector {
	m := 0
	if len(xs) > 0 {
		m = len(xs[0])
	}
	return &selector{
		xs: xs, ys: ys, xt: xt, cfg: cfg,
		sqrtM: math.Sqrt(float64(m)),
	}
}

// ensureTrees lazily builds the per-instance pointer trees used by
// the reference engines and the diagnostic per-instance API. The fast
// paths never build them. Not goroutine-safe: call before fanning out.
func (s *selector) ensureTrees() {
	if s.srcTree == nil {
		s.srcTree = kdtree.Build(s.xs)
		s.tgtTree = kdtree.Build(s.xt)
	}
}

// similaritiesFor computes sim_c, sim_l (and sim_v if enabled) for the
// source instance at index i.
func (s *selector) similaritiesFor(i int) InstanceSimilarities {
	s.ensureTrees()
	x := s.xs[i]
	// k nearest source neighbours, excluding the instance itself — its
	// own label must not inflate its class confidence.
	k := s.cfg.K
	nnS := s.srcTree.KNN(x, k, func(id int) bool { return id == i })
	nnT := s.tgtTree.KNN(x, k, nil)
	return s.simsFrom(i, nnS, nnT)
}

// simsFrom evaluates Equations (1), (2) and the sim_v ablation for
// instance i given its already-resolved neighbourhoods.
func (s *selector) simsFrom(i int, nnS, nnT []kdtree.Neighbour) InstanceSimilarities {
	x := s.xs[i]

	sims := InstanceSimilarities{SimC: 1, SimL: 1, SimV: 1}

	// Equation (1): fraction of source neighbours sharing the label.
	if len(nnS) > 0 {
		same := 0
		for _, n := range nnS {
			if s.ys[n.ID] == s.ys[i] {
				same++
			}
		}
		sims.SimC = float64(same) / float64(len(nnS))
	}

	// Equation (2): exponential decay of the normalised distance
	// between the neighbourhood centroids.
	if len(nnS) > 0 && len(nnT) > 0 && s.sqrtM > 0 {
		cS := kdtree.Centroid(s.xs, nnS, len(x))
		cT := kdtree.Centroid(s.xt, nnT, len(x))
		dist := kdtree.Dist(cS, cT) / s.sqrtM
		sims.SimL = math.Exp(-decayRate * dist)
	}

	// LocIT covariance similarity (Table 4's "+ sim_v" ablation): the
	// Frobenius distance between the two neighbourhoods' covariance
	// matrices, pushed through the same decay.
	if s.cfg.EnableSimV && len(nnS) > 1 && len(nnT) > 1 {
		covS := neighbourhoodCovariance(s.xs, nnS, len(x))
		covT := neighbourhoodCovariance(s.xt, nnT, len(x))
		d := 0.0
		for j := range covS {
			diff := covS[j] - covT[j]
			d += diff * diff
		}
		m := float64(len(x))
		sims.SimV = math.Exp(-decayRate * math.Sqrt(d) / m)
	}
	return sims
}

// neighbourhoodCovariance returns the flattened covariance matrix of
// the neighbourhood points.
func neighbourhoodCovariance(points [][]float64, nn []kdtree.Neighbour, dim int) []float64 {
	mean := kdtree.Centroid(points, nn, dim)
	cov := make([]float64, dim*dim)
	for _, n := range nn {
		p := points[n.ID]
		for a := 0; a < dim; a++ {
			da := p[a] - mean[a]
			for b := 0; b < dim; b++ {
				cov[a*dim+b] += da * (p[b] - mean[b])
			}
		}
	}
	inv := 1 / float64(len(nn))
	for j := range cov {
		cov[j] *= inv
	}
	return cov
}

// accepted applies the configured thresholds/ablations.
func (s *selector) accepted(sims InstanceSimilarities) bool {
	if !s.cfg.DisableSimC && sims.SimC < s.cfg.TC {
		return false
	}
	if !s.cfg.DisableSimL && sims.SimL < s.cfg.TL {
		return false
	}
	if s.cfg.EnableSimV && sims.SimV < s.cfg.TV {
		return false
	}
	return true
}

// selectInstances runs the SEL phase and returns the indices of the
// transferred instances, in order.
//
// Real linkage feature matrices contain heavily repeated vectors
// (Table 1 of the paper counts them), and the SEL similarities depend
// on an instance only through its feature vector, its label and its
// self-exclusion from the source KNN query. Every engine therefore
// deduplicates before querying; they differ in what they deduplicate
// and what index answers the queries (DESIGN.md §10):
//
//   - reference: group by (vector, label), one (k+1)-NN pointer-tree
//     query per group (the original selector, kept as the oracle);
//   - dedup: group by vector only — the same pointer-tree query also
//     serves every label class sharing the vector;
//   - exact (default): group by vector and replace the per-instance
//     pointer trees with weighted flattened trees over the unique
//     vectors, so duplicate groups cost one point each instead of
//     being re-scanned by every query;
//   - approx: like exact, but candidates come from MinHash-LSH
//     buckets over the 0.05-quantized vectors and only the bucket
//     union is ranked (exact fallback when buckets run shallow).
//
// All engines run their query stage in parallel over cfg.Workers and
// record sel_dedup/sel_build/sel_query sub-spans under cfg.Obs. The
// three exact engines return bitwise-identical selections; see
// decideGroup and decideVector for the equivalence arguments.
func (s *selector) selectInstances() []int {
	keep := make([]bool, len(s.xs))
	switch s.cfg.selMode() {
	case SELModeReference:
		s.selectReference(keep)
	case SELModeDedup:
		s.selectDedup(keep)
	case SELModeApprox:
		s.selectFlat(keep, true)
	default:
		s.selectFlat(keep, false)
	}
	out := make([]int, 0, len(keep))
	for i, k := range keep {
		if k {
			out = append(out, i)
		}
	}
	return out
}

// selectReference is the seed engine: distinct (vector, label) groups
// against the per-instance pointer trees.
func (s *selector) selectReference(keep []bool) {
	n := len(s.xs)
	dedupSpan := s.cfg.Obs.Child("sel_dedup")
	byKey := make(map[string]*[]int)
	var order []*[]int
	var keyBuf []byte
	for i := 0; i < n; i++ {
		keyBuf = kdtree.VectorKey(keyBuf[:0], s.xs[i])
		keyBuf = append(keyBuf, byte('0'+s.ys[i]))
		k := string(keyBuf)
		g := byKey[k]
		if g == nil {
			g = new([]int)
			byKey[k] = g
			order = append(order, g)
		}
		*g = append(*g, i)
	}
	dedupSpan.SetInt("groups", int64(len(order)))
	dedupSpan.End()

	buildSpan := s.cfg.Obs.Child("sel_build")
	s.ensureTrees()
	buildSpan.End()

	querySpan := s.cfg.Obs.Child("sel_query")
	parallel.ForEachChunk(s.cfg.Workers, len(order), func(lo, hi int) {
		for _, g := range order[lo:hi] {
			s.decideGroup(*g, keep)
		}
	})
	querySpan.End()
}

// selectDedup isolates the dedup layer: distinct vectors (all label
// classes of a vector share one query) against the same pointer trees
// the reference engine uses.
func (s *selector) selectDedup(keep []bool) {
	dedupSpan := s.cfg.Obs.Child("sel_dedup")
	u := kdtree.Uniq(s.xs)
	dedupSpan.SetInt("groups", int64(u.Len()))
	dedupSpan.End()

	buildSpan := s.cfg.Obs.Child("sel_build")
	s.ensureTrees()
	buildSpan.End()

	k := s.cfg.K
	querySpan := s.cfg.Obs.Child("sel_query")
	parallel.ForEachChunk(s.cfg.Workers, u.Len(), func(lo, hi int) {
		for ui := lo; ui < hi; ui++ {
			v := u.Vecs[ui]
			cand := s.srcTree.KNN(v, k+1, nil)
			nnT := s.tgtTree.KNN(v, k, nil)
			s.decideVector(u.Members[ui], cand, nnT, keep)
		}
	})
	querySpan.End()
}

// selectFlat is the fast path: distinct vectors against weighted
// flattened trees over the unique vectors of both domains. With
// approx set, candidate search goes through the LSH index instead
// (still exactly re-ranked, with exact fallback).
func (s *selector) selectFlat(keep []bool, approx bool) {
	dedupSpan := s.cfg.Obs.Child("sel_dedup")
	uS := kdtree.Uniq(s.xs)
	uT := kdtree.Uniq(s.xt)
	dedupSpan.SetInt("groups", int64(uS.Len()))
	dedupSpan.SetInt("target_groups", int64(uT.Len()))
	dedupSpan.End()

	buildSpan := s.cfg.Obs.Child("sel_build")
	ixS := kdtree.NewWeightedIndex(uS)
	ixT := kdtree.NewWeightedIndex(uT)
	var lshS, lshT *approxIndex
	if approx {
		lshS = newApproxIndex(ixS, s.cfg.Seed)
		lshT = newApproxIndex(ixT, s.cfg.Seed+1)
	}
	buildSpan.End()

	k := s.cfg.K
	querySpan := s.cfg.Obs.Child("sel_query")
	parallel.ForEachChunk(s.cfg.Workers, uS.Len(), func(lo, hi int) {
		for ui := lo; ui < hi; ui++ {
			v := uS.Vecs[ui]
			var cand, nnT []kdtree.Neighbour
			if approx {
				cand = lshS.knn(v, k+1)
				nnT = lshT.knn(v, k)
			} else {
				cand = ixS.KNN(v, k+1)
				nnT = ixT.KNN(v, k)
			}
			s.decideVector(uS.Members[ui], cand, nnT, keep)
		}
	})
	querySpan.End()
}

// decideVector writes the SEL decision for every original row sharing
// one feature vector, given the vector's (k+1)-candidate source
// window and target neighbourhood. Rows with equal vectors but
// different labels form independent (vector, label) classes; each
// class resolves by exactly decideGroup's logic (see its equivalence
// argument), so a vector costs at most two sims evaluations per label
// class regardless of its multiplicity.
func (s *selector) decideVector(members []int32, cand, nnT []kdtree.Neighbour, keep []bool) {
	k := s.cfg.K
	type classDecision struct {
		label           int
		accIn, accOut   bool
		haveIn, haveOut bool
	}
	classes := make([]classDecision, 0, 2)
	inCand := func(id int) bool {
		for _, c := range cand {
			if c.ID == id {
				return true
			}
		}
		return false
	}
	for _, m32 := range members {
		m := int(m32)
		y := s.ys[m]
		ci := -1
		for j := range classes {
			if classes[j].label == y {
				ci = j
				break
			}
		}
		if ci < 0 {
			classes = append(classes, classDecision{label: y})
			ci = len(classes) - 1
		}
		dec := &classes[ci]
		if inCand(m) {
			if !dec.haveIn {
				nnS := make([]kdtree.Neighbour, 0, len(cand)-1)
				for _, c := range cand {
					if c.ID != m {
						nnS = append(nnS, c)
					}
				}
				dec.accIn = s.accepted(s.simsFrom(m, nnS, nnT))
				dec.haveIn = true
			}
			keep[m] = dec.accIn
		} else {
			if !dec.haveOut {
				nnS := cand
				if len(nnS) > k {
					nnS = nnS[:k]
				}
				dec.accOut = s.accepted(s.simsFrom(m, nnS, nnT))
				dec.haveOut = true
			}
			keep[m] = dec.accOut
		}
	}
}

// decideGroup writes the SEL decision for every member of one
// duplicate (vector, label) group into keep.
//
// The per-instance reference takes, for instance i, the k nearest
// source candidates in canonical (distance, id) order with i itself
// excluded. Querying k+1 candidates once without exclusion makes that
// derivable for every member: if i is among the k+1 candidates its
// neighbour set is the remaining k; otherwise it is the first k
// (dropping i from the tail changes nothing). The sims depend on
// neighbours only through coordinates and labels, and group members
// share both, so swapping one in-candidate member for another is
// invisible — at most two distinct outcomes exist per group (members
// inside the candidate window and members beyond it), and each is
// computed once.
func (s *selector) decideGroup(members []int, keep []bool) {
	x := s.xs[members[0]]
	k := s.cfg.K
	cand := s.srcTree.KNN(x, k+1, nil)
	nnT := s.tgtTree.KNN(x, k, nil)

	inCand := func(id int) bool {
		for _, c := range cand {
			if c.ID == id {
				return true
			}
		}
		return false
	}
	var accIn, accOut, haveIn, haveOut bool
	for _, m := range members {
		if inCand(m) {
			if !haveIn {
				nnS := make([]kdtree.Neighbour, 0, len(cand)-1)
				for _, c := range cand {
					if c.ID != m {
						nnS = append(nnS, c)
					}
				}
				accIn = s.accepted(s.simsFrom(m, nnS, nnT))
				haveIn = true
			}
			keep[m] = accIn
		} else {
			if !haveOut {
				nnS := cand
				if len(nnS) > k {
					nnS = nnS[:k]
				}
				accOut = s.accepted(s.simsFrom(m, nnS, nnT))
				haveOut = true
			}
			keep[m] = accOut
		}
	}
}

// SelectInstances exposes the SEL phase standalone: it returns the
// indices of the source instances TransER would transfer under cfg.
// It is used by ablation studies and by callers that want to reuse
// the selector with their own downstream classifier.
func SelectInstances(xs [][]float64, ys []int, xt [][]float64, cfg Config) []int {
	cfg = cfg.withDefaults()
	if cfg.DisableSEL {
		out := make([]int, len(xs))
		for i := range out {
			out[i] = i
		}
		return out
	}
	if cfg.SELCache == nil {
		return newSelector(xs, ys, xt, cfg).selectInstances()
	}
	key := selKey(xs, ys, xt, cfg)
	if sel, ok := cfg.SELCache.get(key); ok {
		if cfg.Obs != nil {
			hit := cfg.Obs.Child("sel_cache")
			hit.SetInt("kept", int64(len(sel)))
			hit.End()
		}
		return sel
	}
	sel := newSelector(xs, ys, xt, cfg).selectInstances()
	cfg.SELCache.put(key, sel)
	return sel
}

// Similarities computes the SEL similarity scores for every source
// instance without filtering (diagnostic API).
func Similarities(xs [][]float64, ys []int, xt [][]float64, cfg Config) []InstanceSimilarities {
	cfg = cfg.withDefaults()
	sel := newSelector(xs, ys, xt, cfg)
	out := make([]InstanceSimilarities, len(xs))
	for i := range xs {
		out[i] = sel.similaritiesFor(i)
	}
	return out
}
