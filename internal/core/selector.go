package core

import (
	"math"

	"transer/internal/kdtree"
	"transer/internal/parallel"
)

// decayRate is the exponential decay coefficient of Equation (2); the
// paper selects e^{-5x} from the candidates in Figure 5.
const decayRate = 5.0

// InstanceSimilarities holds the per-source-instance transferability
// scores of the SEL phase.
type InstanceSimilarities struct {
	// SimC is the class confidence similarity (Equation 1).
	SimC float64
	// SimL is the structural similarity (Equation 2).
	SimL float64
	// SimV is LocIT's covariance similarity (only computed when the
	// +sim_v ablation is enabled; otherwise 1).
	SimV float64
}

// selector computes SEL-phase similarities for all source instances.
type selector struct {
	xs  [][]float64
	ys  []int
	xt  [][]float64
	cfg Config

	srcTree, tgtTree *kdtree.Tree
	sqrtM            float64
}

func newSelector(xs [][]float64, ys []int, xt [][]float64, cfg Config) *selector {
	m := 0
	if len(xs) > 0 {
		m = len(xs[0])
	}
	return &selector{
		xs: xs, ys: ys, xt: xt, cfg: cfg,
		srcTree: kdtree.Build(xs),
		tgtTree: kdtree.Build(xt),
		sqrtM:   math.Sqrt(float64(m)),
	}
}

// similaritiesFor computes sim_c, sim_l (and sim_v if enabled) for the
// source instance at index i.
func (s *selector) similaritiesFor(i int) InstanceSimilarities {
	x := s.xs[i]
	// k nearest source neighbours, excluding the instance itself — its
	// own label must not inflate its class confidence.
	k := s.cfg.K
	nnS := s.srcTree.KNN(x, k, func(id int) bool { return id == i })
	nnT := s.tgtTree.KNN(x, k, nil)
	return s.simsFrom(i, nnS, nnT)
}

// simsFrom evaluates Equations (1), (2) and the sim_v ablation for
// instance i given its already-resolved neighbourhoods.
func (s *selector) simsFrom(i int, nnS, nnT []kdtree.Neighbour) InstanceSimilarities {
	x := s.xs[i]

	sims := InstanceSimilarities{SimC: 1, SimL: 1, SimV: 1}

	// Equation (1): fraction of source neighbours sharing the label.
	if len(nnS) > 0 {
		same := 0
		for _, n := range nnS {
			if s.ys[n.ID] == s.ys[i] {
				same++
			}
		}
		sims.SimC = float64(same) / float64(len(nnS))
	}

	// Equation (2): exponential decay of the normalised distance
	// between the neighbourhood centroids.
	if len(nnS) > 0 && len(nnT) > 0 && s.sqrtM > 0 {
		cS := kdtree.Centroid(s.xs, nnS, len(x))
		cT := kdtree.Centroid(s.xt, nnT, len(x))
		dist := kdtree.Dist(cS, cT) / s.sqrtM
		sims.SimL = math.Exp(-decayRate * dist)
	}

	// LocIT covariance similarity (Table 4's "+ sim_v" ablation): the
	// Frobenius distance between the two neighbourhoods' covariance
	// matrices, pushed through the same decay.
	if s.cfg.EnableSimV && len(nnS) > 1 && len(nnT) > 1 {
		covS := neighbourhoodCovariance(s.xs, nnS, len(x))
		covT := neighbourhoodCovariance(s.xt, nnT, len(x))
		d := 0.0
		for j := range covS {
			diff := covS[j] - covT[j]
			d += diff * diff
		}
		m := float64(len(x))
		sims.SimV = math.Exp(-decayRate * math.Sqrt(d) / m)
	}
	return sims
}

// neighbourhoodCovariance returns the flattened covariance matrix of
// the neighbourhood points.
func neighbourhoodCovariance(points [][]float64, nn []kdtree.Neighbour, dim int) []float64 {
	mean := kdtree.Centroid(points, nn, dim)
	cov := make([]float64, dim*dim)
	for _, n := range nn {
		p := points[n.ID]
		for a := 0; a < dim; a++ {
			da := p[a] - mean[a]
			for b := 0; b < dim; b++ {
				cov[a*dim+b] += da * (p[b] - mean[b])
			}
		}
	}
	inv := 1 / float64(len(nn))
	for j := range cov {
		cov[j] *= inv
	}
	return cov
}

// accepted applies the configured thresholds/ablations.
func (s *selector) accepted(sims InstanceSimilarities) bool {
	if !s.cfg.DisableSimC && sims.SimC < s.cfg.TC {
		return false
	}
	if !s.cfg.DisableSimL && sims.SimL < s.cfg.TL {
		return false
	}
	if s.cfg.EnableSimV && sims.SimV < s.cfg.TV {
		return false
	}
	return true
}

// selectInstances runs the SEL phase in parallel and returns the
// indices of the transferred instances, in order.
//
// Real linkage feature matrices contain heavily repeated vectors
// (Table 1 of the paper counts them), and the SEL similarities depend
// on an instance only through its feature vector, its label and its
// self-exclusion from the source KNN query. Instances are therefore
// grouped by distinct (vector, label) and each group resolves one
// shared (k+1)-NN query instead of one KNN query per instance, which
// turns the O(n) tree searches into O(#distinct groups) without
// changing any result (see decideGroup for the exact equivalence
// argument).
func (s *selector) selectInstances() []int {
	n := len(s.xs)
	byKey := make(map[string]*[]int)
	var order []*[]int
	var keyBuf []byte
	for i := 0; i < n; i++ {
		keyBuf = keyBuf[:0]
		for _, v := range s.xs[i] {
			keyBuf = appendFloatKey(keyBuf, v)
		}
		keyBuf = append(keyBuf, byte('0'+s.ys[i]))
		k := string(keyBuf)
		g := byKey[k]
		if g == nil {
			g = new([]int)
			byKey[k] = g
			order = append(order, g)
		}
		*g = append(*g, i)
	}

	keep := make([]bool, n)
	parallel.ForEachChunk(s.cfg.Workers, len(order), func(lo, hi int) {
		for _, g := range order[lo:hi] {
			s.decideGroup(*g, keep)
		}
	})
	out := make([]int, 0, n)
	for i, k := range keep {
		if k {
			out = append(out, i)
		}
	}
	return out
}

// decideGroup writes the SEL decision for every member of one
// duplicate (vector, label) group into keep.
//
// The per-instance reference takes, for instance i, the k nearest
// source candidates in canonical (distance, id) order with i itself
// excluded. Querying k+1 candidates once without exclusion makes that
// derivable for every member: if i is among the k+1 candidates its
// neighbour set is the remaining k; otherwise it is the first k
// (dropping i from the tail changes nothing). The sims depend on
// neighbours only through coordinates and labels, and group members
// share both, so swapping one in-candidate member for another is
// invisible — at most two distinct outcomes exist per group (members
// inside the candidate window and members beyond it), and each is
// computed once.
func (s *selector) decideGroup(members []int, keep []bool) {
	x := s.xs[members[0]]
	k := s.cfg.K
	cand := s.srcTree.KNN(x, k+1, nil)
	nnT := s.tgtTree.KNN(x, k, nil)

	inCand := func(id int) bool {
		for _, c := range cand {
			if c.ID == id {
				return true
			}
		}
		return false
	}
	var accIn, accOut, haveIn, haveOut bool
	for _, m := range members {
		if inCand(m) {
			if !haveIn {
				nnS := make([]kdtree.Neighbour, 0, len(cand)-1)
				for _, c := range cand {
					if c.ID != m {
						nnS = append(nnS, c)
					}
				}
				accIn = s.accepted(s.simsFrom(m, nnS, nnT))
				haveIn = true
			}
			keep[m] = accIn
		} else {
			if !haveOut {
				nnS := cand
				if len(nnS) > k {
					nnS = nnS[:k]
				}
				accOut = s.accepted(s.simsFrom(m, nnS, nnT))
				haveOut = true
			}
			keep[m] = accOut
		}
	}
}

// appendFloatKey appends a compact exact encoding of v.
func appendFloatKey(dst []byte, v float64) []byte {
	bits := math.Float64bits(v)
	for sh := 0; sh < 64; sh += 8 {
		dst = append(dst, byte(bits>>sh))
	}
	return dst
}

// SelectInstances exposes the SEL phase standalone: it returns the
// indices of the source instances TransER would transfer under cfg.
// It is used by ablation studies and by callers that want to reuse
// the selector with their own downstream classifier.
func SelectInstances(xs [][]float64, ys []int, xt [][]float64, cfg Config) []int {
	cfg = cfg.withDefaults()
	if cfg.DisableSEL {
		out := make([]int, len(xs))
		for i := range out {
			out[i] = i
		}
		return out
	}
	return newSelector(xs, ys, xt, cfg).selectInstances()
}

// Similarities computes the SEL similarity scores for every source
// instance without filtering (diagnostic API).
func Similarities(xs [][]float64, ys []int, xt [][]float64, cfg Config) []InstanceSimilarities {
	cfg = cfg.withDefaults()
	sel := newSelector(xs, ys, xt, cfg)
	out := make([]InstanceSimilarities, len(xs))
	for i := range xs {
		out[i] = sel.similaritiesFor(i)
	}
	return out
}
