package core

import (
	"testing"

	"transer/internal/ml/mltest"
)

// shiftRows returns a copy of x with every value shifted (a crude
// marginal distribution shift).
func shiftRows(x [][]float64, delta float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(row))
		for j, v := range row {
			v += delta
			if v > 1 {
				v = 1
			}
			r[j] = v
		}
		out[i] = r
	}
	return out
}

func TestRankSourcesPrefersCompatible(t *testing.T) {
	// Target and a matching source share distribution; a shifted source
	// does not — the matching source must rank first.
	xsGood, ysGood, xt, _ := transferProblem(300, 300, 0.0, 0.1, 30)
	xsBad, ysBad := shiftRows(xsGood, 0.35), ysGood
	ranking, err := RankSources([]Source{
		{Name: "shifted", X: xsBad, Y: ysBad},
		{Name: "aligned", X: xsGood, Y: ysGood},
	}, xt, DefaultConfig())
	if err != nil {
		t.Fatalf("RankSources: %v", err)
	}
	if ranking[0].Name != "aligned" {
		t.Errorf("expected aligned source first, got %v", ranking)
	}
	if ranking[0].Score < ranking[1].Score {
		t.Errorf("ranking not sorted by score: %v", ranking)
	}
	for _, r := range ranking {
		if r.MeanSimC < 0 || r.MeanSimC > 1 || r.MeanSimL < 0 || r.MeanSimL > 1 {
			t.Errorf("similarity out of range: %+v", r)
		}
	}
}

func TestRankSourcesValidation(t *testing.T) {
	_, _, xt, _ := transferProblem(50, 50, 0, 0, 32)
	if _, err := RankSources(nil, xt, DefaultConfig()); err == nil {
		t.Errorf("no sources accepted")
	}
	if _, err := RankSources([]Source{{X: [][]float64{{1}}, Y: []int{1}}}, nil, DefaultConfig()); err == nil {
		t.Errorf("empty target accepted")
	}
	if _, err := RankSources([]Source{{X: [][]float64{{1}}, Y: []int{1, 0}}}, xt, DefaultConfig()); err == nil {
		t.Errorf("misaligned source accepted")
	}
	if _, err := RankSources([]Source{{X: [][]float64{{1}}, Y: []int{1}}}, xt, DefaultConfig()); err == nil {
		t.Errorf("feature width mismatch accepted")
	}
}

func TestRunMultiSource(t *testing.T) {
	xsGood, ysGood, xt, yt := transferProblem(300, 300, 0.02, 0.15, 33)
	xsBad, ysBad := shiftRows(xsGood, 0.4), ysGood
	res, ranking, err := RunMultiSource([]Source{
		{Name: "bad", X: xsBad, Y: ysBad},
		{Name: "good", X: xsGood, Y: ysGood},
	}, xt, treeFactory(), DefaultConfig())
	if err != nil {
		t.Fatalf("RunMultiSource: %v", err)
	}
	if ranking[0].Name != "good" {
		t.Errorf("wrong source chosen: %v", ranking)
	}
	if acc := mltest.Accuracy(res.Proba, yt); acc < 0.85 {
		t.Errorf("multi-source accuracy %.3f", acc)
	}
}

func TestRunSemiSupervisedImproves(t *testing.T) {
	xs, ys, xt, yt := transferProblem(400, 400, 0.12, 0.3, 35)
	cfg := DefaultConfig()
	base, err := Run(xs, ys, xt, treeFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Label 15% of the target with ground truth.
	known := TargetLabels{}
	for i := 0; i < len(xt); i += 7 {
		known[i] = yt[i]
	}
	semi, err := RunSemiSupervised(xs, ys, xt, known, treeFactory(), cfg)
	if err != nil {
		t.Fatalf("RunSemiSupervised: %v", err)
	}
	baseAcc := mltest.Accuracy(base.Proba, yt)
	semiAcc := mltest.Accuracy(semi.Proba, yt)
	if semiAcc < baseAcc-0.02 {
		t.Errorf("target labels hurt accuracy: %.3f -> %.3f", baseAcc, semiAcc)
	}
	// Known labels must be respected exactly.
	for idx, l := range known {
		if semi.Labels[idx] != l {
			t.Fatalf("known label at %d not respected", idx)
		}
	}
}

func TestRunSemiSupervisedValidation(t *testing.T) {
	xs, ys, xt, _ := transferProblem(50, 50, 0, 0, 36)
	if _, err := RunSemiSupervised(xs, ys, xt, TargetLabels{999: 1}, treeFactory(), DefaultConfig()); err == nil {
		t.Errorf("out-of-range index accepted")
	}
	if _, err := RunSemiSupervised(xs, ys, xt, TargetLabels{0: 7}, treeFactory(), DefaultConfig()); err == nil {
		t.Errorf("non-binary label accepted")
	}
	// Empty known labels degrade to the base run.
	res, err := RunSemiSupervised(xs, ys, xt, nil, treeFactory(), DefaultConfig())
	if err != nil || len(res.Labels) != len(xt) {
		t.Errorf("empty known labels should run the base algorithm: %v", err)
	}
}

func TestRunActive(t *testing.T) {
	xs, ys, xt, yt := transferProblem(400, 400, 0.1, 0.3, 37)
	oracle := func(i int) int { return yt[i] }
	budget := 40
	res, err := RunActive(xs, ys, xt, treeFactory(), DefaultConfig(), oracle, budget, 4)
	if err != nil {
		t.Fatalf("RunActive: %v", err)
	}
	if len(res.Queried) == 0 || len(res.Queried) > budget {
		t.Fatalf("queried %d labels with budget %d", len(res.Queried), budget)
	}
	// No duplicate queries.
	seen := map[int]bool{}
	for _, q := range res.Queried {
		if seen[q] {
			t.Fatalf("index %d queried twice", q)
		}
		seen[q] = true
	}
	if acc := mltest.Accuracy(res.Proba, yt); acc < 0.85 {
		t.Errorf("active accuracy %.3f", acc)
	}
}

func TestRunActiveValidation(t *testing.T) {
	xs, ys, xt, _ := transferProblem(30, 30, 0, 0, 38)
	if _, err := RunActive(xs, ys, xt, treeFactory(), DefaultConfig(), nil, 5, 1); err == nil {
		t.Errorf("nil oracle accepted")
	}
	if _, err := RunActive(xs, ys, xt, treeFactory(), DefaultConfig(), func(int) int { return 0 }, 0, 1); err == nil {
		t.Errorf("zero budget accepted")
	}
}

func TestRunActiveBudgetExhaustsGracefully(t *testing.T) {
	// Budget larger than the target: every instance gets queried once.
	xs, ys, xt, yt := transferProblem(40, 20, 0.05, 0.2, 39)
	oracle := func(i int) int { return yt[i] }
	res, err := RunActive(xs, ys, xt, treeFactory(), DefaultConfig(), oracle, 100, 2)
	if err != nil {
		t.Fatalf("RunActive: %v", err)
	}
	if len(res.Queried) > len(xt) {
		t.Errorf("queried %d > |target| %d", len(res.Queried), len(xt))
	}
	// With the full target labelled, predictions should be perfect on
	// the queried set.
	for _, q := range res.Queried {
		if res.Labels[q] != yt[q] {
			t.Fatalf("labelled instance %d predicted wrongly", q)
		}
	}
}
