package core

import (
	"sync"
	"testing"

	"transer/internal/testkit"
)

// The SelectionCache must be invisible in output: a hit returns
// bitwise the selection a recompute would produce, cached slices
// never alias caller state, and distinct selection-relevant configs
// never share an entry.

// TestSelectionCacheHitIdentical: running the same selection twice
// through one cache yields the uncached selection both times and
// stores exactly one entry.
func TestSelectionCacheHitIdentical(t *testing.T) {
	testkit.Run(t, "selector/cache-hit-identical", 15, func(pt *testkit.T) {
		xs, ys, xt, cfg := selModesProblem(pt)
		want := SelectInstances(xs, ys, xt, cfg)

		cache := NewSelectionCache()
		cfg.SELCache = cache
		first := SelectInstances(xs, ys, xt, cfg)
		second := SelectInstances(xs, ys, xt, cfg)
		if !testkit.EqualInts(first, want) {
			pt.Errorf("cached miss differs from uncached: %v vs %v", first, want)
		}
		if !testkit.EqualInts(second, want) {
			pt.Errorf("cached hit differs from uncached: %v vs %v", second, want)
		}
		if cache.Len() != 1 {
			pt.Errorf("cache entries = %d, want 1", cache.Len())
		}
	})
}

// TestSelectionCacheReturnIsolated: mutating a returned selection
// must not corrupt the cache, and two returned selections must not
// alias each other.
func TestSelectionCacheReturnIsolated(t *testing.T) {
	testkit.Run(t, "selector/cache-return-isolated", 1, func(pt *testkit.T) {
		xs, ys, xt, cfg := selModesProblem(pt)
		cfg.SELCache = NewSelectionCache()

		first := SelectInstances(xs, ys, xt, cfg)
		if len(first) == 0 {
			return // empty selection, nothing to mutate
		}
		want := make([]int, len(first))
		copy(want, first)
		for i := range first {
			first[i] = -1
		}
		second := SelectInstances(xs, ys, xt, cfg)
		if !testkit.EqualInts(second, want) {
			pt.Errorf("hit after caller mutation = %v, want %v", second, want)
		}
		for i := range second {
			second[i] = -2
		}
		for i := range first {
			if first[i] != -1 {
				pt.Fatalf("returned selections alias each other at %d", i)
			}
		}
	})
}

// TestSelectionCacheKeySensitivity: any change to a selection-relevant
// input or parameter must land in a fresh entry, while worker count —
// selection-invariant by contract — must not.
func TestSelectionCacheKeySensitivity(t *testing.T) {
	testkit.Run(t, "selector/cache-key-sensitivity", 1, func(pt *testkit.T) {
		xs, ys, xt, cfg := selModesProblem(pt)
		cache := NewSelectionCache()
		cfg.SELCache = cache
		SelectInstances(xs, ys, xt, cfg)

		perturb := []struct {
			name string
			cfg  func(Config) Config
		}{
			{"K", func(c Config) Config { c.K++; return c }},
			{"TC", func(c Config) Config { c.TC = c.TC / 2; return c }},
			{"TL", func(c Config) Config { c.TL = c.TL / 2; return c }},
			{"Seed", func(c Config) Config { c.Seed++; return c }},
			{"SELMode", func(c Config) Config { c.SELMode = SELModeDedup; return c }},
			{"DisableSimC", func(c Config) Config { c.DisableSimC = !c.DisableSimC; return c }},
		}
		want := 1
		for _, p := range perturb {
			SelectInstances(xs, ys, xt, p.cfg(cfg))
			want++
			if cache.Len() != want {
				pt.Errorf("after perturbing %s: cache entries = %d, want %d", p.name, cache.Len(), want)
			}
		}

		workers := cfg
		workers.Workers = cfg.Workers + 3
		SelectInstances(xs, ys, xt, workers)
		if cache.Len() != want {
			pt.Errorf("worker count changed the key: entries = %d, want %d", cache.Len(), want)
		}

		ys2 := make([]int, len(ys))
		copy(ys2, ys)
		ys2[0] = 1 - ys2[0]
		SelectInstances(xs, ys2, xt, cfg)
		if cache.Len() != want+1 {
			pt.Errorf("label flip did not change the key: entries = %d, want %d", cache.Len(), want+1)
		}
	})
}

// TestSelectionCacheConcurrent: many goroutines sharing one cache
// over a mix of keys race-free and all agree with the uncached
// answer. Run under -race in CI.
func TestSelectionCacheConcurrent(t *testing.T) {
	testkit.Run(t, "selector/cache-concurrent", 1, func(pt *testkit.T) {
		xs, ys, xt, cfg := selModesProblem(pt)
		variants := []Config{cfg}
		for dk := 1; dk <= 3; dk++ {
			v := cfg
			v.K = cfg.K + dk
			variants = append(variants, v)
		}
		want := make([][]int, len(variants))
		for i, v := range variants {
			want[i] = SelectInstances(xs, ys, xt, v)
		}

		cache := NewSelectionCache()
		const rounds = 4
		got := make([][]int, len(variants)*rounds)
		var wg sync.WaitGroup
		for g := range got {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				v := variants[g%len(variants)]
				v.SELCache = cache
				got[g] = SelectInstances(xs, ys, xt, v)
			}(g)
		}
		wg.Wait()
		for g := range got {
			if !testkit.EqualInts(got[g], want[g%len(variants)]) {
				pt.Errorf("concurrent selection %d = %v, want %v", g, got[g], want[g%len(variants)])
			}
		}
		if cache.Len() != len(variants) {
			pt.Errorf("cache entries = %d, want %d", cache.Len(), len(variants))
		}
	})
}
