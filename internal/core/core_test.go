package core

import (
	"math"
	"math/rand"
	"testing"

	"transer/internal/ml"
	"transer/internal/ml/logreg"
	"transer/internal/ml/mltest"
	"transer/internal/ml/tree"
)

// transferProblem builds a synthetic TL-for-ER task:
//   - source: two blobs (matches high, non-matches low) plus a band of
//     conflicting-label instances (same region, mixed labels) that a
//     good instance selector should drop;
//   - target: the same blobs under a covariate shift.
func transferProblem(nS, nT int, shift float64, conflictFrac float64, seed int64) (xs [][]float64, ys []int, xt [][]float64, yt []int) {
	rng := rand.New(rand.NewSource(seed))
	gen := func(n int, offset float64, withConflicts bool) ([][]float64, []int) {
		x := make([][]float64, 0, n)
		y := make([]int, 0, n)
		for i := 0; i < n; i++ {
			label := i % 2
			centre := 0.2
			if label == 1 {
				centre = 0.8
			}
			row := make([]float64, 4)
			for j := range row {
				v := centre + offset + rng.NormFloat64()*0.08
				row[j] = clamp(v)
			}
			if withConflicts && rng.Float64() < conflictFrac {
				// Conflicting region: mid-similarity vectors whose label
				// is random — the "ambiguous feature vectors" of Table 1.
				for j := range row {
					row[j] = clamp(0.55 + rng.NormFloat64()*0.05)
				}
				label = rng.Intn(2)
			}
			x = append(x, row)
			y = append(y, label)
		}
		return x, y
	}
	xs, ys = gen(nS, 0, true)
	xt, yt = gen(nT, shift, false)
	return
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func treeFactory() ml.Factory { return tree.Factory(tree.Config{Seed: 1}) }

func TestRunBasic(t *testing.T) {
	xs, ys, xt, yt := transferProblem(400, 300, 0.05, 0.15, 1)
	res, err := Run(xs, ys, xt, treeFactory(), DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Labels) != len(xt) || len(res.Proba) != len(xt) {
		t.Fatalf("output sizes wrong: %d labels, %d proba", len(res.Labels), len(res.Proba))
	}
	if acc := mltest.Accuracy(res.Proba, yt); acc < 0.9 {
		t.Errorf("target accuracy %.3f", acc)
	}
	st := res.Stats
	if st.Selected == 0 || st.Selected > st.SourceInstances {
		t.Errorf("selected count %d implausible", st.Selected)
	}
	if !st.SelectedFallback && st.Selected == st.SourceInstances {
		t.Errorf("selector kept every instance despite conflicts")
	}
}

func TestRunSelectorDropsConflicts(t *testing.T) {
	xs, ys, xt, _ := transferProblem(600, 300, 0.0, 0.25, 2)
	cfg := DefaultConfig()
	selected := SelectInstances(xs, ys, xt, cfg)
	// Compute sim_c for all and verify dropped instances have lower
	// mean confidence than kept ones.
	sims := Similarities(xs, ys, xt, cfg)
	keptSet := make(map[int]bool)
	for _, i := range selected {
		keptSet[i] = true
	}
	var keptC, dropC float64
	var nKept, nDrop int
	for i, s := range sims {
		if keptSet[i] {
			keptC += s.SimC
			nKept++
		} else {
			dropC += s.SimC
			nDrop++
		}
	}
	if nKept == 0 || nDrop == 0 {
		t.Fatalf("selector degenerate: kept %d dropped %d", nKept, nDrop)
	}
	if keptC/float64(nKept) <= dropC/float64(nDrop) {
		t.Errorf("kept instances have lower class confidence than dropped ones")
	}
}

func TestRunBeatsNaiveUnderConflicts(t *testing.T) {
	// With a conflicting-label band in the source and a target shift,
	// TransER should beat the naive source-trained classifier (the
	// paper's central claim).
	xs, ys, xt, yt := transferProblem(800, 500, 0.08, 0.3, 3)
	factory := func() ml.Classifier { return logreg.New(logreg.Config{}) }

	naive, err := ml.FitWithFallback(factory, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	naiveAcc := mltest.Accuracy(naive.PredictProba(xt), yt)

	res, err := Run(xs, ys, xt, factory, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	transerAcc := mltest.Accuracy(res.Proba, yt)
	if transerAcc+1e-9 < naiveAcc-0.02 {
		t.Errorf("TransER (%.3f) materially worse than naive (%.3f)", transerAcc, naiveAcc)
	}
}

func TestRunDeterministic(t *testing.T) {
	xs, ys, xt, _ := transferProblem(300, 200, 0.05, 0.2, 4)
	cfg := DefaultConfig()
	cfg.Seed = 99
	r1, err := Run(xs, ys, xt, treeFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(xs, ys, xt, treeFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Labels {
		if r1.Labels[i] != r2.Labels[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
}

func TestRunInputValidation(t *testing.T) {
	xs, ys, xt, _ := transferProblem(50, 50, 0, 0, 5)
	if _, err := Run(nil, nil, xt, treeFactory(), DefaultConfig()); err == nil {
		t.Errorf("empty source accepted")
	}
	if _, err := Run(xs, ys[:10], xt, treeFactory(), DefaultConfig()); err == nil {
		t.Errorf("label length mismatch accepted")
	}
	if _, err := Run(xs, ys, nil, treeFactory(), DefaultConfig()); err == nil {
		t.Errorf("empty target accepted")
	}
	if _, err := Run(xs, ys, [][]float64{{1, 2}}, treeFactory(), DefaultConfig()); err == nil {
		t.Errorf("heterogeneous feature space accepted")
	}
	if _, err := Run(xs, ys, xt, nil, DefaultConfig()); err == nil {
		t.Errorf("nil factory accepted")
	}
	bad := DefaultConfig()
	bad.TC = 1.5
	if _, err := Run(xs, ys, xt, treeFactory(), bad); err == nil {
		t.Errorf("invalid config accepted")
	}
	bad = DefaultConfig()
	bad.K = -1
	if _, err := Run(xs, ys, xt, treeFactory(), bad); err == nil {
		t.Errorf("negative K accepted")
	}
}

func TestSelectionMonotoneInThresholds(t *testing.T) {
	xs, ys, xt, _ := transferProblem(400, 300, 0.05, 0.2, 6)
	prev := -1
	for _, tc := range []float64{0.5, 0.7, 0.9, 1.0} {
		cfg := DefaultConfig()
		cfg.TC = tc
		n := len(SelectInstances(xs, ys, xt, cfg))
		if prev >= 0 && n > prev {
			t.Errorf("selection grew when t_c tightened: %d -> %d at tc=%v", prev, n, tc)
		}
		prev = n
	}
	prev = -1
	for _, tl := range []float64{0.5, 0.7, 0.9, 0.99} {
		cfg := DefaultConfig()
		cfg.TL = tl
		n := len(SelectInstances(xs, ys, xt, cfg))
		if prev >= 0 && n > prev {
			t.Errorf("selection grew when t_l tightened: %d -> %d at tl=%v", prev, n, tl)
		}
		prev = n
	}
}

func TestAblationSwitches(t *testing.T) {
	xs, ys, xt, _ := transferProblem(400, 300, 0.05, 0.25, 7)

	// DisableSEL transfers everything.
	cfg := DefaultConfig()
	cfg.DisableSEL = true
	if n := len(SelectInstances(xs, ys, xt, cfg)); n != len(xs) {
		t.Errorf("DisableSEL selected %d of %d", n, len(xs))
	}

	// DisableSimC keeps at least as many as the full filter.
	base := len(SelectInstances(xs, ys, xt, DefaultConfig()))
	cfg = DefaultConfig()
	cfg.DisableSimC = true
	noC := len(SelectInstances(xs, ys, xt, cfg))
	if noC < base {
		t.Errorf("removing sim_c reduced selection: %d < %d", noC, base)
	}
	cfg = DefaultConfig()
	cfg.DisableSimL = true
	noL := len(SelectInstances(xs, ys, xt, cfg))
	if noL < base {
		t.Errorf("removing sim_l reduced selection: %d < %d", noL, base)
	}

	// EnableSimV keeps at most as many.
	cfg = DefaultConfig()
	cfg.EnableSimV = true
	withV := len(SelectInstances(xs, ys, xt, cfg))
	if withV > base {
		t.Errorf("adding sim_v increased selection: %d > %d", withV, base)
	}

	// DisableGENTCL returns GEN outputs as final.
	cfg = DefaultConfig()
	cfg.DisableGENTCL = true
	res, err := Run(xs, ys, xt, treeFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Labels {
		if res.Labels[i] != res.PseudoLabels[i] {
			t.Fatalf("DisableGENTCL: final label %d differs from pseudo label", i)
		}
	}
}

func TestTCLFallbackAtImpossibleThreshold(t *testing.T) {
	xs, ys, xt, _ := transferProblem(200, 150, 0.05, 0.1, 8)
	cfg := DefaultConfig()
	cfg.TP = 1.0 // a sigmoid never reaches exactly 1
	lrFactory := func() ml.Classifier { return logreg.New(logreg.Config{}) }
	res, err := Run(xs, ys, xt, lrFactory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.TCLFallback {
		t.Errorf("expected TCL fallback at t_p = 1.0 (high confidence count %d)", res.Stats.HighConfidence)
	}
	// Output still usable.
	if len(res.Labels) != len(xt) {
		t.Errorf("fallback produced wrong output size")
	}
}

func TestSelectorFallbackAtImpossibleThresholds(t *testing.T) {
	xs, ys, xt, _ := transferProblem(100, 100, 0.4, 0.0, 9)
	cfg := DefaultConfig()
	cfg.TL = 1.0 // requires exactly zero centroid distance
	res, err := Run(xs, ys, xt, treeFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.SelectedFallback {
		t.Errorf("expected SEL fallback at t_l = 1.0 with shifted target")
	}
}

func TestSimilaritiesRanges(t *testing.T) {
	xs, ys, xt, _ := transferProblem(150, 150, 0.1, 0.2, 10)
	cfg := DefaultConfig()
	cfg.EnableSimV = true
	for i, s := range Similarities(xs, ys, xt, cfg) {
		if s.SimC < 0 || s.SimC > 1 || math.IsNaN(s.SimC) {
			t.Fatalf("sim_c[%d] = %v out of range", i, s.SimC)
		}
		if s.SimL <= 0 || s.SimL > 1 || math.IsNaN(s.SimL) {
			t.Fatalf("sim_l[%d] = %v out of range", i, s.SimL)
		}
		if s.SimV <= 0 || s.SimV > 1 || math.IsNaN(s.SimV) {
			t.Fatalf("sim_v[%d] = %v out of range", i, s.SimV)
		}
	}
}

func TestSimLReflectsShift(t *testing.T) {
	// Larger marginal shift must lower the mean structural similarity.
	meanSimL := func(shift float64) float64 {
		xs, ys, xt, _ := transferProblem(200, 200, shift, 0, 11)
		sims := Similarities(xs, ys, xt, DefaultConfig())
		s := 0.0
		for _, v := range sims {
			s += v.SimL
		}
		return s / float64(len(sims))
	}
	small := meanSimL(0.02)
	large := meanSimL(0.3)
	if large >= small {
		t.Errorf("sim_l did not decrease under shift: %.3f (small) vs %.3f (large)", small, large)
	}
}

func TestBalancingRespected(t *testing.T) {
	xs, ys, xt, _ := transferProblem(600, 400, 0.05, 0.1, 12)
	cfg := DefaultConfig()
	cfg.B = 1 // 1:1 balance
	res, err := Run(xs, ys, xt, treeFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TCLFallback {
		t.Skip("TCL fallback; balancing not exercised at this seed")
	}
	if res.Stats.BalancedTrain > res.Stats.HighConfidence {
		t.Errorf("balanced set larger than its source")
	}
}

func TestKLargerThanData(t *testing.T) {
	xs, ys, xt, _ := transferProblem(10, 8, 0.05, 0, 13)
	cfg := DefaultConfig()
	cfg.K = 50
	if _, err := Run(xs, ys, xt, treeFactory(), cfg); err != nil {
		t.Fatalf("K larger than data should clamp, got error: %v", err)
	}
}

func BenchmarkTransERRun(b *testing.B) {
	xs, ys, xt, _ := transferProblem(1000, 800, 0.05, 0.2, 14)
	f := treeFactory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(xs, ys, xt, f, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectInstances(b *testing.B) {
	xs, ys, xt, _ := transferProblem(2000, 1500, 0.05, 0.2, 15)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectInstances(xs, ys, xt, cfg)
	}
}

// TestResultClassifierMatchesProba pins the export invariant: on every
// path (normal TCL, TCL fallback, GEN-only ablation) Result.Classifier
// is the classifier whose predictions Result.Proba holds, bitwise — the
// guarantee internal/model's artifacts depend on.
func TestResultClassifierMatchesProba(t *testing.T) {
	xs, ys, xt, _ := transferProblem(400, 300, 0.05, 0.15, 1)
	cases := map[string]Config{
		"normal":       DefaultConfig(),
		"tcl-fallback": {K: 7, TC: 0.9, TL: 0.9, TP: 1.0, B: 3},
		"gen-only": func() Config {
			c := DefaultConfig()
			c.DisableGENTCL = true
			return c
		}(),
	}
	for name, cfg := range cases {
		factory := treeFactory()
		if name == "tcl-fallback" {
			// A sigmoid never reaches confidence 1.0; tree leaves do.
			factory = func() ml.Classifier { return logreg.New(logreg.Config{}) }
		}
		res, err := Run(xs, ys, xt, factory, cfg)
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		if res.Classifier == nil {
			t.Fatalf("%s: Result.Classifier is nil", name)
		}
		if name == "tcl-fallback" && !res.Stats.TCLFallback {
			t.Fatalf("t_p=1.0 did not trigger the TCL fallback")
		}
		got := res.Classifier.PredictProba(xt)
		for i, p := range res.Proba {
			if got[i] != p {
				t.Fatalf("%s: Proba[%d]=%v but Classifier predicts %v", name, i, p, got[i])
			}
		}
	}
}
